// tenant_interference — multi-tenant serving: slowdown, fairness, tail latency.
//
// Runs each workload of a tenant mix solo, then the whole mix concurrently
// under each requested CTA-arbiter policy, and reports per tenant:
//
//   * slowdown vs solo      (mix finish_cycle / solo sm_cycles),
//   * Jain fairness index   over per-tenant normalized progress,
//   * per-tenant tail latency (p50/p95/p99 per request path class, from the
//     tenant-keyed request-lifecycle histograms).
//
// The default mix is the heterogeneous 3-tenant BFS+VADD+KMN serving mix;
// tenant 0 carries double weight (weighted-share) and the highest priority
// (strict-priority), so the policies visibly diverge.
//
//   tenant_interference
//   tenant_interference -w BFS,VADD,KMN --scale tiny
//   tenant_interference --arbiters rr,strict --stats-json out.json
//
// Options (plus the shared bench flags --stats-json/--progress):
//   -w, --workloads LIST  comma-separated tenant mix       (default BFS,VADD,KMN)
//       --scale S         tiny | small                     (default small)
//       --arbiters LIST   subset of rr,weighted,strict     (default all three)
//       --quota N         per-tenant NSU warp quota        (default 0 = off)
//       --credit-share F  per-tenant NoC credit cap        (default 0 = off)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Options {
  BenchOptions bench;
  std::vector<std::string> workloads{"BFS", "VADD", "KMN"};
  ProblemScale scale = ProblemScale::kSmall;
  std::vector<TenantArbiter> arbiters{TenantArbiter::kRoundRobin,
                                      TenantArbiter::kWeightedShare,
                                      TenantArbiter::kStrictPriority};
  unsigned quota = 0;
  double credit_share = 0.0;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-w W1,W2,...] [--scale tiny|small] "
               "[--arbiters rr,weighted,strict]\n"
               "          [--quota N] [--credit-share F] [--stats-json PATH] "
               "[--progress]\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    const std::string item = list.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(item);
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return out;
}

const char* arbiter_name(TenantArbiter a) {
  switch (a) {
    case TenantArbiter::kRoundRobin: return "round-robin";
    case TenantArbiter::kWeightedShare: return "weighted-share";
    case TenantArbiter::kStrictPriority: return "strict-priority";
  }
  return "?";
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-w" || a == "--workloads") {
      o.workloads = split_list(need_value(i));
    } else if (a == "--scale") {
      const std::string s = need_value(i);
      if (s == "tiny") o.scale = ProblemScale::kTiny;
      else if (s == "small") o.scale = ProblemScale::kSmall;
      else usage(argv[0]);
    } else if (a == "--arbiters") {
      o.arbiters.clear();
      for (const std::string& n : split_list(need_value(i))) {
        if (n == "rr") o.arbiters.push_back(TenantArbiter::kRoundRobin);
        else if (n == "weighted") o.arbiters.push_back(TenantArbiter::kWeightedShare);
        else if (n == "strict") o.arbiters.push_back(TenantArbiter::kStrictPriority);
        else usage(argv[0]);
      }
    } else if (a == "--quota") {
      o.quota = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--credit-share") {
      o.credit_share = std::strtod(need_value(i), nullptr);
    } else if (a == "--stats-json") {
      o.bench.stats_json = need_value(i);
    } else if (a == "--progress") {
      o.bench.progress = true;
    } else {
      usage(argv[0]);
    }
  }
  if (o.workloads.size() < 2 || o.arbiters.empty()) usage(argv[0]);
  return o;
}

// Jain's fairness index over per-tenant normalized progress x_t =
// solo_cycles / mix_finish_cycle (1.0 = no slowdown).  Equal slowdowns give
// 1.0 regardless of magnitude; starving one of N tenants approaches 1/N.
double jain_index(const std::vector<double>& xs) {
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  using WallClock = std::chrono::steady_clock;

  print_header("Multi-tenant interference: slowdown, fairness, tail latency",
               "the multi-tenant serving extension (DESIGN.md)");

  std::string mix_name;
  for (const std::string& n : o.workloads) {
    mix_name += (mix_name.empty() ? "" : "+") + n;
  }

  SystemConfig base = paper_config(OffloadMode::kDynamicCache);
  base.latency_trace = true;
  std::vector<SweepOutcome> outcomes;  // hand-built; exported as sndp-sweep-v1

  // Solo baselines: each tenant alone on the whole machine.
  std::vector<Cycle> solo_cycles;
  for (const std::string& name : o.workloads) {
    if (o.bench.progress) std::fprintf(stderr, "solo %s...\n", name.c_str());
    const auto start = WallClock::now();
    auto wl = make_workload(name, o.scale);
    SweepOutcome out;
    out.point.id = "tenant_interference/solo/" + name;
    out.point.workload = name;
    out.point.scale = o.scale;
    out.point.cfg = base;
    out.result = Simulator(base).run(*wl);
    out.ran = true;
    out.wall_seconds = std::chrono::duration<double>(WallClock::now() - start).count();
    if (!out.result.verified || !out.result.completed) {
      std::fprintf(stderr, "WARNING: solo %s did not complete cleanly\n", name.c_str());
    }
    solo_cycles.push_back(out.result.sm_cycles);
    outcomes.push_back(std::move(out));
  }

  // The mix under each arbiter.  Tenant 0 is the "latency-sensitive"
  // tenant: double weight under weighted-share, priority 0 (highest) under
  // strict-priority; the rest are best-effort batch tenants.
  struct MixRun {
    TenantArbiter arbiter{};
    RunResult result;
  };
  std::vector<MixRun> mixes;
  for (const TenantArbiter arb : o.arbiters) {
    if (o.bench.progress) {
      std::fprintf(stderr, "mix %s under %s...\n", mix_name.c_str(), arbiter_name(arb));
    }
    SystemConfig cfg = base;
    cfg.tenancy.arbiter = arb;
    cfg.tenancy.nsu_warp_quota = o.quota;
    cfg.tenancy.credit_share = o.credit_share;
    std::vector<std::unique_ptr<Workload>> wls;
    std::vector<TenantDesc> descs;
    for (unsigned t = 0; t < o.workloads.size(); ++t) {
      wls.push_back(make_workload(o.workloads[t], o.scale));
      descs.push_back(TenantDesc{wls.back().get(), t == 0 ? 2.0 : 1.0, t});
    }
    const auto start = WallClock::now();
    SweepOutcome out;
    out.point.id = std::string("tenant_interference/mix/") + arbiter_name(arb);
    out.point.workload = mix_name;
    out.point.scale = o.scale;
    out.point.cfg = cfg;
    out.result = Simulator(cfg).run_tenants(descs, mix_name);
    out.ran = true;
    out.wall_seconds = std::chrono::duration<double>(WallClock::now() - start).count();
    if (!out.result.verified || !out.result.completed) {
      std::fprintf(stderr, "WARNING: mix under %s did not complete cleanly\n",
                   arbiter_name(arb));
    }
    mixes.push_back(MixRun{arb, out.result});
    outcomes.push_back(std::move(out));
  }

  // ---- Slowdown + fairness table ----
  std::printf("\nPer-tenant slowdown vs solo (mix finish_cycle / solo sm_cycles)\n");
  std::printf("%-16s", "arbiter");
  for (const std::string& n : o.workloads) std::printf("  %10s", n.c_str());
  std::printf("  %8s\n", "fairness");
  for (const MixRun& m : mixes) {
    std::printf("%-16s", arbiter_name(m.arbiter));
    std::vector<double> progress;
    for (unsigned t = 0; t < o.workloads.size(); ++t) {
      const double slowdown = solo_cycles[t] == 0
                                  ? 0.0
                                  : static_cast<double>(m.result.tenants[t].finish_cycle) /
                                        static_cast<double>(solo_cycles[t]);
      progress.push_back(slowdown == 0.0 ? 0.0 : 1.0 / slowdown);
      std::printf("  %9.2fx", slowdown);
    }
    std::printf("  %8.3f\n", jain_index(progress));
  }

  // ---- Per-tenant tail latency ----
  for (const MixRun& m : mixes) {
    std::printf("\nTail latency under %s (ps)\n", arbiter_name(m.arbiter));
    std::printf("  %-8s %-14s %10s %10s %10s %10s\n", "tenant", "class", "count",
                "p50", "p95", "p99");
    for (unsigned t = 0; t < m.result.latency.per_tenant.size(); ++t) {
      for (std::size_t c = 0; c < kNumPathClasses; ++c) {
        const Log2Histogram& h = m.result.latency.per_tenant[t][c];
        if (h.count() == 0) continue;
        std::printf("  t%u %-5s %-14s %10llu %10.0f %10.0f %10.0f\n", t,
                    o.workloads[t].c_str(), path_class_name(static_cast<PathClass>(c)),
                    static_cast<unsigned long long>(h.count()), h.percentile(0.50),
                    h.percentile(0.95), h.percentile(0.99));
      }
    }
  }

  if (!o.bench.stats_json.empty() &&
      !write_sweep_json(o.bench.stats_json, outcomes, 1)) {
    std::fprintf(stderr, "WARNING: failed to write stats JSON to '%s'\n",
                 o.bench.stats_json.c_str());
  }

  int rc = 0;
  for (const SweepOutcome& out : outcomes) {
    if (!out.result.completed || !out.result.verified) rc = 1;
  }
  return rc;
}
