// Figure 10: normalized energy for the baselines and NDP mechanisms, broken
// into GPU / NSU / intra-HMC NoC / off-chip interconnect / DRAM.  The paper
// reports NDP(Dyn) saves 7.5% mean energy (up to 37.6% for KMN) and
// NDP(Dyn)_Cache 8.6%, while Baseline_MoreCore is energy-neutral.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Figure 10: normalized energy breakdown", "Fig. 10");
  std::printf("%-8s %-14s %8s %8s %8s %8s %8s %8s\n", "workload", "config", "GPU", "NSU",
              "HMC-NoC", "OffChip", "DRAM", "Total");

  BenchSweep sweep(opts, "fig10");
  struct Row {
    std::size_t base, more, dyn, dyn_cache;
  };
  std::vector<Row> rows;
  for (const std::string& name : workload_names()) {
    SystemConfig mc_cfg = SystemConfig::paper_more_core();
    mc_cfg.governor.mode = OffloadMode::kOff;
    mc_cfg.governor.epoch_cycles = kScaledEpoch;
    rows.push_back(Row{
        sweep.add(name + "/baseline", paper_config(OffloadMode::kOff), name),
        sweep.add(name + "/more-core", mc_cfg, name),
        sweep.add(name + "/dyn", paper_config(OffloadMode::kDynamic), name),
        sweep.add(name + "/dyn-cache", paper_config(OffloadMode::kDynamicCache), name),
    });
  }
  sweep.run();

  std::vector<double> dyn_ratio, cache_ratio, more_ratio;
  std::size_t row_idx = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& base = sweep.result(rows[row_idx].base);
    const RunResult& more = sweep.result(rows[row_idx].more);
    const RunResult& dyn = sweep.result(rows[row_idx].dyn);
    const RunResult& dyn_cache = sweep.result(rows[row_idx].dyn_cache);
    ++row_idx;

    const double norm = base.energy.total();
    auto row = [&](const char* cfg, const RunResult& r) {
      std::printf("%-8s %-14s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(), cfg,
                  r.energy.gpu_j / norm, r.energy.nsu_j / norm, r.energy.hmc_noc_j / norm,
                  r.energy.offchip_j / norm, r.energy.dram_j / norm,
                  r.energy.total() / norm);
    };
    row("Baseline", base);
    row("Base_MoreCore", more);
    row("NDP(Dyn)", dyn);
    row("NDP(Dyn)$", dyn_cache);
    more_ratio.push_back(more.energy.total() / norm);
    dyn_ratio.push_back(dyn.energy.total() / norm);
    cache_ratio.push_back(dyn_cache.energy.total() / norm);
  }
  std::printf("\nGMEAN normalized energy: MoreCore %.3f, NDP(Dyn) %.3f, NDP(Dyn)$ %.3f\n",
              geomean(more_ratio), geomean(dyn_ratio), geomean(cache_ratio));
  std::printf("paper: NDP(Dyn) 0.925 mean (KMN 0.624); NDP(Dyn)_Cache 0.914\n");
  return 0;
}
