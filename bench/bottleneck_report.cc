// Bottleneck attribution report (cycle-stack profiler, src/obs/cycle_stack.*).
//
// For every Table-1 workload and operator-library kernel, prints the machine
// top-down cycle tree — every SM / NSU lane / DRAM-vault cycle in exactly one
// bucket — with each leaf's share and its Amdahl what-if bound (the speedup
// ceiling if that leaf alone went to zero).  Two built-in validations:
//
//  * Mode invariance: each workload is re-run with fast-forward disabled and
//    again sharded across two time partitions; the stacks must be
//    bit-identical in all three modes (the profiler inherits the simulator's
//    determinism contract).
//
//  * What-if calibration: the workload whose stack shows the most DRAM
//    dep-wait cycles (dep_dram_local + dep_dram_remote) is re-run under
//    locality placement, which shortens exactly those waits by homing pages
//    near their accessors.  Removing the cycles entirely is the Amdahl
//    ceiling, so the measured speedup of any change that only shortens them
//    must land under the printed bound — a check of the report's bounds
//    against a real config change, not just arithmetic.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

bool stacks_equal(const CycleStackSummary& a, const CycleStackSummary& b) {
  return a.enabled == b.enabled && a.sm.rows == b.sm.rows &&
         a.nsu.rows == b.nsu.rows && a.vault.rows == b.vault.rows;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Bottleneck attribution: top-down cycle stacks + what-if bounds",
               "DESIGN.md \"Observability\"");

  BenchSweep sweep(opts, "bottleneck");
  struct Row {
    std::size_t base, noff, part2;
  };
  std::vector<Row> rows;
  for (const std::string& name : all_workload_names()) {
    const SystemConfig cfg = paper_config(OffloadMode::kDynamicCache);
    SystemConfig noff = cfg;
    noff.fast_forward = false;
    SystemConfig part2 = cfg;
    part2.parallel_partitions = 2;
    rows.push_back(Row{
        sweep.add(name + "/base", cfg, name),
        sweep.add(name + "/no-ff", noff, name),
        sweep.add(name + "/partitions2", part2, name),
    });
  }
  sweep.run();

  int rc = 0;
  std::size_t row_idx = 0;
  std::string worst_dram_wl;
  std::uint64_t worst_dram_cycles = 0;
  for (const std::string& name : all_workload_names()) {
    const RunResult& base = sweep.result(rows[row_idx].base);
    const RunResult& noff = sweep.result(rows[row_idx].noff);
    const RunResult& part2 = sweep.result(rows[row_idx].part2);
    ++row_idx;

    std::printf("== %-8s  %llu SM cycles  (bucket cycles, share, what-if bound) ==\n",
                name.c_str(), static_cast<unsigned long long>(base.sm_cycles));
    std::fputs(format_cycle_tree(base.cycle_stack).c_str(), stdout);
    const bool ff_ok = stacks_equal(base.cycle_stack, noff.cycle_stack);
    const bool p2_ok = stacks_equal(base.cycle_stack, part2.cycle_stack);
    std::printf("mode-invariance: ff-off %s, partitions=2 %s\n\n",
                ff_ok ? "identical" : "MISMATCH", p2_ok ? "identical" : "MISMATCH");
    if (!ff_ok || !p2_ok) rc = 1;

    const std::uint64_t dram_dep =
        base.cycle_stack.sm.bucket_total(
            static_cast<std::size_t>(SmBucket::kDepDramLocal)) +
        base.cycle_stack.sm.bucket_total(
            static_cast<std::size_t>(SmBucket::kDepDramRemote));
    if (dram_dep > worst_dram_cycles) {
      worst_dram_cycles = dram_dep;
      worst_dram_wl = name;
    }
  }

  // What-if calibration: attack the largest DRAM dep-wait leaf with the
  // locality placement policy and compare the measured speedup against the
  // bound the stack predicted.
  if (!worst_dram_wl.empty() && worst_dram_cycles > 0) {
    const RunResult before =
        run_workload(worst_dram_wl, paper_config(OffloadMode::kDynamicCache));
    SystemConfig loc_cfg = paper_config(OffloadMode::kDynamicCache);
    loc_cfg.placement.policy = PlacementPolicyKind::kLocality;
    const RunResult after = run_workload(worst_dram_wl, loc_cfg);
    const std::uint64_t total = before.cycle_stack.sm.total();
    const double bound = whatif_bound(total, worst_dram_cycles);
    const double measured = after.speedup_vs(before);
    std::printf("what-if calibration: DRAM dep-wait (dep_dram_*) on %s\n",
                worst_dram_wl.c_str());
    std::printf("  random placement  : %10llu cycles, dep_dram=%llu -> bound <=%.3fx\n",
                static_cast<unsigned long long>(before.sm_cycles),
                static_cast<unsigned long long>(worst_dram_cycles), bound);
    std::printf("  locality placement: %10llu cycles, measured speedup %.3fx (%s bound)\n",
                static_cast<unsigned long long>(after.sm_cycles), measured,
                measured <= bound ? "within" : "EXCEEDS");
    if (measured > bound) rc = 1;
  } else {
    std::printf("what-if calibration: no workload produced DRAM dep-wait cycles; skipped\n");
  }
  return rc;
}
