// Figure 5: impact of the target-NSU selection policy on off-chip memory
// traffic as the number of memory accesses in an offload block grows.
// Compares "first HMC accessed" (the paper's policy, bounded hardware)
// against the optimal all-access majority vote, on random placements over
// 8 HMCs.  The paper reports the first-access policy costs at most ~15%
// extra traffic, converging as accesses grow.
#include <cstdio>

#include "bench_util.h"

using namespace sndp;

int main(int argc, char** argv) {
  // Monte Carlo, not a Simulator sweep: runs in milliseconds, so --jobs is
  // accepted for interface uniformity but the trials stay serial.
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::print_header("Figure 5: target NSU selection policy vs off-chip traffic",
                      "Fig. 5");
  constexpr unsigned kHmcs = 8;
  constexpr unsigned kTrials = 100000;
  std::printf("%10s %16s %16s %10s\n", "#accesses", "first-HMC", "optimal-HMC", "overhead");
  double max_overhead = 0.0;
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("sndp-bench-v1");
  json.key("bench").value("fig05");
  json.key("rows").begin_array();
  for (unsigned n : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    Rng rng_a(42), rng_b(42);
    const auto first =
        simulate_target_selection(kHmcs, n, TargetPolicy::kFirstAccess, kTrials, rng_a);
    const auto opt =
        simulate_target_selection(kHmcs, n, TargetPolicy::kOptimal, kTrials, rng_b);
    const double overhead =
        opt.mean_traffic > 0 ? first.mean_traffic / opt.mean_traffic - 1.0 : 0.0;
    max_overhead = std::max(max_overhead, overhead);
    std::printf("%10u %16.4f %16.4f %9.1f%%\n", n, first.mean_traffic, opt.mean_traffic,
                100.0 * overhead);
    json.begin_object();
    json.key("accesses").value(n);
    json.key("first_hmc_traffic").value(first.mean_traffic);
    json.key("optimal_hmc_traffic").value(opt.mean_traffic);
    json.key("overhead").value(overhead);
    json.end_object();
  }
  json.end_array();
  json.key("max_overhead").value(max_overhead);
  json.end_object();
  bench::write_bench_json(opts, json);
  std::printf("\nmax traffic overhead of the first-HMC policy: %.1f%% "
              "(paper: at most ~15%%)\n", 100.0 * max_overhead);
  return 0;
}
