// Figure 9: performance as the offload ratio is statically varied
// (0.2..1.0), plus the dynamic offload-ratio controller (Algorithm 1) and
// the cache-locality-aware variant (§7.3).  Speedups over the baseline.
//
// Paper's shape: different workloads peak at different static ratios (no
// single static ratio wins), cache-friendly workloads (BPROP/STN/STCL) are
// hurt by offloading, NDP(Dyn) tracks near the per-workload optimum, and
// NDP(Dyn)_Cache rescues the cache-friendly workloads, lifting the mean
// from +14.9% to +17.9%.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Figure 9: static offload ratios vs dynamic offloading (speedup)",
               "Fig. 9");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %10s\n", "workload", "NDP(0.2)", "NDP(0.4)",
              "NDP(0.6)", "NDP(0.8)", "NDP(1.0)", "NDP(Dyn)", "NDP(Dyn)$");

  const double ratios[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  BenchSweep sweep(opts, "fig09");
  struct Row {
    std::size_t base;
    std::size_t statics[5];
    std::size_t dyn, dyn_cache;
  };
  std::vector<Row> rows;
  for (const std::string& name : workload_names()) {
    Row row;
    row.base = sweep.add(name + "/off", paper_config(OffloadMode::kOff), name);
    unsigned i = 0;
    for (double r : ratios) {
      row.statics[i++] = sweep.add(name + "/static" + std::to_string(r).substr(0, 3),
                                   paper_config(OffloadMode::kStaticRatio, r), name);
    }
    row.dyn = sweep.add(name + "/dyn", paper_config(OffloadMode::kDynamic), name);
    row.dyn_cache =
        sweep.add(name + "/dyn-cache", paper_config(OffloadMode::kDynamicCache), name);
    rows.push_back(row);
  }
  sweep.run();

  std::vector<std::vector<double>> columns(7);
  std::size_t row_idx = 0;
  for (const std::string& name : workload_names()) {
    const Row& row = rows[row_idx++];
    const RunResult& base = sweep.result(row.base);
    std::printf("%-8s", name.c_str());
    unsigned col = 0;
    for (std::size_t idx : row.statics) {
      const double x = sweep.result(idx).speedup_vs(base);
      columns[col++].push_back(x);
      std::printf(" %7.3fx", x);
    }
    const RunResult& dyn = sweep.result(row.dyn);
    const RunResult& dyn_cache = sweep.result(row.dyn_cache);
    columns[col++].push_back(dyn.speedup_vs(base));
    columns[col++].push_back(dyn_cache.speedup_vs(base));
    std::printf(" %7.3fx %9.3fx\n", dyn.speedup_vs(base), dyn_cache.speedup_vs(base));
  }
  std::printf("%-8s", "GMEAN");
  for (const auto& colv : columns) std::printf(" %7.3fx", geomean(colv));
  std::printf("\n\npaper: NDP(Dyn) +14.9%% mean (up to +66.8%% KMN); NDP(Dyn)_Cache +17.9%% mean\n");
  return 0;
}
