// placement_sweep — data-placement policy grid over workloads and stacks.
//
// Runs every Table 1 workload (or a subset) under each placement policy
// (random / first-touch / locality / migration) and each requested HMC
// stack count, with the latency tracer on, and reports the remote-traffic
// picture behind the paper's unrestricted-placement argument (§4/§6): the
// p95 end-to-end latency and count of the remote path classes (rdf_remote,
// nsu_write_remote) against their local counterparts, the remote share of
// NSU traffic, and how many pages the migration policy re-homed.
//
//   placement_sweep
//   placement_sweep -w BFS,VADD --policies random,locality --stacks 4,6,8
//   placement_sweep --csv placement.csv --stats-json placement.json --jobs 0
//
// Options (plus the shared bench flags --jobs/--stats-json/--progress):
//   -w, --workloads LIST   comma-separated Table 1 workloads (default: all)
//   -p, --policies LIST    subset of random,first_touch,locality,migration
//                          (default: all four)
//   -s, --stacks LIST      comma-separated HMC counts; non-powers-of-two
//                          are legal placements (default: 8)
//       --threshold N      migration re-home threshold   (default 64)
//       --sample N         latency span-sampling period  (default 64)
//       --csv FILE         machine-readable per-point percentile rows
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Options {
  BenchOptions bench;
  std::vector<std::string> workloads;
  std::vector<PlacementPolicyKind> policies;
  std::vector<unsigned> stacks;
  unsigned threshold = 64;
  unsigned sample = 64;
  std::string csv;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-w W1,W2,...] [-p random,first_touch,locality,migration]\n"
               "          [-s 4,6,8] [--threshold N] [--sample N] [--csv FILE]\n"
               "          [--jobs N] [--stats-json PATH] [--progress]\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    const std::string item = list.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(item);
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-w" || a == "--workloads" || a == "--workload") {
      o.workloads = split_list(need_value(i));
    } else if (a == "-p" || a == "--policies") {
      for (const std::string& name : split_list(need_value(i))) {
        PlacementPolicyKind kind;
        if (!parse_placement_policy(name, &kind)) usage(argv[0]);
        o.policies.push_back(kind);
      }
    } else if (a == "-s" || a == "--stacks") {
      for (const std::string& n : split_list(need_value(i))) {
        o.stacks.push_back(static_cast<unsigned>(std::strtoul(n.c_str(), nullptr, 10)));
      }
    } else if (a == "--threshold") {
      o.threshold = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--sample") {
      o.sample = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--csv") {
      o.csv = need_value(i);
    } else if (a == "--jobs" || a == "-j") {
      o.bench.jobs = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--stats-json") {
      o.bench.stats_json = need_value(i);
    } else if (a == "--progress") {
      o.bench.progress = true;
    } else {
      usage(argv[0]);
    }
  }
  if (o.workloads.empty()) o.workloads = all_workload_names();
  if (o.policies.empty()) {
    o.policies = {PlacementPolicyKind::kRandom, PlacementPolicyKind::kFirstTouch,
                  PlacementPolicyKind::kLocality, PlacementPolicyKind::kMigration};
  }
  if (o.stacks.empty()) o.stacks = {8};
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  print_header("Data-placement policy sweep: remote traffic by policy",
               "the §4/§6 unrestricted-placement argument");

  BenchSweep sweep(o.bench, "placement");
  struct PointInfo {
    std::size_t index;
    std::string workload;
    PlacementPolicyKind policy;
    unsigned stacks;
  };
  std::vector<PointInfo> grid;
  for (unsigned stacks : o.stacks) {
    for (PlacementPolicyKind policy : o.policies) {
      for (const std::string& name : o.workloads) {
        SystemConfig cfg = paper_config(OffloadMode::kStaticRatio, 1.0);
        cfg.num_hmcs = stacks;
        cfg.latency_sample = o.sample;
        cfg.placement.policy = policy;
        cfg.placement.migration_threshold = o.threshold;
        const std::string id = name + "/" + placement_policy_name(policy) + "/" +
                               std::to_string(stacks) + "-stack";
        grid.push_back({sweep.add(id, cfg, name), name, policy, stacks});
      }
    }
  }
  sweep.run();

  std::FILE* csv = nullptr;
  if (!o.csv.empty()) {
    csv = std::fopen(o.csv.c_str(), "w");
    if (csv == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0], o.csv.c_str());
      return 1;
    }
    std::fprintf(csv,
                 "workload,policy,stacks,runtime_ps,rdf_local_count,rdf_local_p95_ps,"
                 "rdf_remote_count,rdf_remote_p95_ps,nsu_write_local_count,"
                 "nsu_write_local_p95_ps,nsu_write_remote_count,"
                 "nsu_write_remote_p95_ps,remote_share,pages_migrated\n");
  }

  std::printf("\n%-8s %-12s %6s  %12s %10s %12s %10s %7s %9s\n", "workload", "policy",
              "stacks", "rdf_rem_p95", "rdf_rem_n", "nsuw_rem_p95", "nsuw_rem_n",
              "rem%", "migrated");

  int rc = 0;
  for (const PointInfo& pt : grid) {
    const RunResult& r = sweep.result(pt.index);
    if (!r.verified || !r.completed) rc = 1;
    const LatencySummary& lat = r.latency;
    auto hist = [&](PathClass c) -> const Log2Histogram& {
      return lat.per_class[static_cast<std::size_t>(c)];
    };
    const Log2Histogram& rdf_l = hist(PathClass::kRdfLocal);
    const Log2Histogram& rdf_r = hist(PathClass::kRdfRemote);
    const Log2Histogram& nw_l = hist(PathClass::kNsuWriteLocal);
    const Log2Histogram& nw_r = hist(PathClass::kNsuWriteRemote);
    const std::uint64_t local = rdf_l.count() + nw_l.count();
    const std::uint64_t remote = rdf_r.count() + nw_r.count();
    const double remote_share =
        local + remote == 0 ? 0.0
                            : static_cast<double>(remote) / static_cast<double>(local + remote);
    const auto migrated = static_cast<std::uint64_t>(r.stats.get("mem.pages_migrated"));

    std::printf("%-8s %-12s %6u  %12.0f %10llu %12.0f %10llu %6.1f%% %9llu\n",
                pt.workload.c_str(), placement_policy_name(pt.policy), pt.stacks,
                rdf_r.percentile(0.95), static_cast<unsigned long long>(rdf_r.count()),
                nw_r.percentile(0.95), static_cast<unsigned long long>(nw_r.count()),
                100.0 * remote_share, static_cast<unsigned long long>(migrated));

    if (csv != nullptr) {
      std::fprintf(csv, "%s,%s,%u,%llu,%llu,%.1f,%llu,%.1f,%llu,%.1f,%llu,%.1f,%.6f,%llu\n",
                   pt.workload.c_str(), placement_policy_name(pt.policy), pt.stacks,
                   static_cast<unsigned long long>(r.runtime_ps),
                   static_cast<unsigned long long>(rdf_l.count()), rdf_l.percentile(0.95),
                   static_cast<unsigned long long>(rdf_r.count()), rdf_r.percentile(0.95),
                   static_cast<unsigned long long>(nw_l.count()), nw_l.percentile(0.95),
                   static_cast<unsigned long long>(nw_r.count()), nw_r.percentile(0.95),
                   remote_share, static_cast<unsigned long long>(migrated));
    }
  }
  if (csv != nullptr && std::fclose(csv) != 0) rc = 1;
  return rc;
}
