// epoch_dump — per-epoch metrics timeline as CSV (Fig. 8-style dynamics).
//
// Runs one workload and dumps the governor's EpochTimeline — offload ratio,
// hill-climb step/direction, epoch and SM IPC, cache hit rates, link
// utilizations, NSU occupancy — one CSV row per epoch, for plotting how the
// dynamic controller converges.
//
//   epoch_dump --workload BFS --mode dyn-cache --scale small --csv bfs.csv
//   epoch_dump -w VADD -m dyn --epoch 1000 --trace vadd-trace.json
//
// Options:
//   -w, --workload NAME   Table 1 workload                (default VADD)
//   -s, --scale S         tiny | small | large            (default small)
//   -m, --mode M          off | always | static | dyn | dyn-cache
//                                                         (default dyn-cache)
//   -r, --ratio R         static offload ratio            (default 0.5)
//   -e, --epoch N         epoch length in SM cycles       (default 1000,
//                         the scaled epoch — see EXPERIMENTS.md)
//       --seed N          page-placement seed
//       --csv FILE        write CSV to FILE               (default stdout)
//       --trace FILE      also write a Perfetto trace with the same series
//                         as counter events
#include <cstdio>
#include <cstring>
#include <string>

#include "sndp.h"

using namespace sndp;

namespace {

struct Options {
  std::string workload = "VADD";
  ProblemScale scale = ProblemScale::kSmall;
  OffloadMode mode = OffloadMode::kDynamicCache;
  double ratio = 0.5;
  Cycle epoch = 1000;
  std::uint64_t seed = 0x5EED;
  std::string csv;
  std::string trace_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-w WORKLOAD] [-s tiny|small|large] "
               "[-m off|always|static|dyn|dyn-cache] [-r RATIO] [-e EPOCH]\n"
               "          [--seed N] [--csv FILE] [--trace FILE]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-w" || a == "--workload") {
      o.workload = need_value(i);
    } else if (a == "-s" || a == "--scale") {
      const std::string s = need_value(i);
      o.scale = s == "tiny"    ? ProblemScale::kTiny
                : s == "large" ? ProblemScale::kLarge
                : s == "small" ? ProblemScale::kSmall
                               : (usage(argv[0]), ProblemScale::kSmall);
    } else if (a == "-m" || a == "--mode") {
      const std::string m = need_value(i);
      if (m == "off") o.mode = OffloadMode::kOff;
      else if (m == "always") o.mode = OffloadMode::kAlways;
      else if (m == "static") o.mode = OffloadMode::kStaticRatio;
      else if (m == "dyn") o.mode = OffloadMode::kDynamic;
      else if (m == "dyn-cache") o.mode = OffloadMode::kDynamicCache;
      else usage(argv[0]);
    } else if (a == "-r" || a == "--ratio") {
      o.ratio = std::stod(need_value(i));
    } else if (a == "-e" || a == "--epoch") {
      o.epoch = std::stoull(need_value(i));
    } else if (a == "--seed") {
      o.seed = std::stoull(need_value(i));
    } else if (a == "--csv") {
      o.csv = need_value(i);
    } else if (a == "--trace") {
      o.trace_path = need_value(i);
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = o.mode;
  cfg.governor.static_ratio = o.ratio;
  cfg.governor.epoch_cycles = o.epoch;
  cfg.placement_seed = o.seed;
  cfg.trace_path = o.trace_path;

  auto wl = make_workload(o.workload, o.scale);
  const RunResult r = Simulator(cfg).run(*wl);
  if (!r.verified) {
    std::fprintf(stderr, "WARNING: %s failed functional verification!\n", o.workload.c_str());
  }
  if (!r.completed) {
    std::fprintf(stderr, "WARNING: %s hit the simulated-time limit!\n", o.workload.c_str());
  }

  if (!write_epoch_csv(o.csv, r.timeline)) {
    std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], o.csv.c_str());
    return 1;
  }

  std::fprintf(stderr, "%s: %zu epochs, final ratio %.3f, %s\n", o.workload.c_str(),
               r.timeline.size(), r.timeline.empty() ? 0.0 : r.timeline.back().ratio,
               r.verified && r.completed ? "ok" : "FAILED");
  return r.verified && r.completed ? 0 : 1;
}
