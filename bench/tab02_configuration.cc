// Table 2: the simulated system configuration.  Prints every parameter the
// paper lists so a reader can diff this reproduction against the original.
#include <cstdio>

#include "bench_util.h"

using namespace sndp;

int main() {
  bench::print_header("Table 2: system configuration", "Table 2");
  const SystemConfig c = SystemConfig::paper();
  std::printf("GPU\n");
  std::printf("  # of SMs                : %u\n", c.num_sms);
  std::printf("  # of HMCs               : %u\n", c.num_hmcs);
  std::printf("  Off-chip link BW        : %.0f GB/s per direction, %u bidirectional links\n",
              c.link.gb_per_s, c.num_hmcs);
  std::printf("  SM                      : %u threads, %u CTAs, %u registers, %llu KB scratchpad,"
              " warp width %u\n",
              c.sm.max_threads, c.sm.max_ctas, c.sm.max_registers,
              static_cast<unsigned long long>(c.sm.scratchpad_bytes / 1024), c.sm.warp_width);
  std::printf("  L1 data cache           : %llu KB, %u-way, %u B line, MSHR: %u\n",
              static_cast<unsigned long long>(c.sm.l1d.size_bytes / 1024), c.sm.l1d.ways,
              c.sm.l1d.line_bytes, c.sm.l1d.mshr_entries);
  std::printf("  L2 cache                : %llu MB, %u-way, %u B line, MSHR: %u\n",
              static_cast<unsigned long long>(c.l2.size_bytes / (1024 * 1024)), c.l2.ways,
              c.l2.line_bytes, c.l2.mshr_entries);
  std::printf("  SM, Xbar, L2 clock      : %llu, %llu, %llu MHz\n",
              static_cast<unsigned long long>(c.clocks.sm_khz / 1000),
              static_cast<unsigned long long>(c.clocks.xbar_khz / 1000),
              static_cast<unsigned long long>(c.clocks.l2_khz / 1000));
  std::printf("HMC\n");
  std::printf("  Organization            : 16 vaults x %u banks/vault\n",
              c.hmc.banks_per_vault);
  std::printf("  Memory size             : %llu GB\n",
              static_cast<unsigned long long>(c.hmc.memory_bytes / (1024ull * 1024 * 1024)));
  std::printf("  Memory scheduler        : FR-FCFS, vault request queue size: %u\n",
              c.hmc.vault_queue_size);
  std::printf("  DRAM timing             : tCK=1.50ns, tRP=%u, tCCD=%u, tRCD=%u, tCL=%u,"
              " tWR=%u, tRAS=%u\n",
              c.hmc.timing.tRP, c.hmc.timing.tCCD, c.hmc.timing.tRCD, c.hmc.timing.tCL,
              c.hmc.timing.tWR, c.hmc.timing.tRAS);
  std::printf("  Off-chip link BW        : %.0f GB/s per direction, 4 links (1 GPU + 3 network)\n",
              c.link.gb_per_s);
  std::printf("NDP-specific\n");
  std::printf("  NSU                     : %llu MHz, %u warps, warp width %u, %u physical lanes,"
              " %llu KB const cache, %llu KB i-cache\n",
              static_cast<unsigned long long>(c.clocks.nsu_khz / 1000), c.nsu.max_warps,
              c.nsu.warp_width, c.nsu.simd_lanes,
              static_cast<unsigned long long>(c.nsu.const_cache_bytes / 1024),
              static_cast<unsigned long long>(c.nsu.icache_bytes / 1024));
  std::printf("  Buffers in GPU SM       : 8 B x %u pending, 8 B x %u ready\n",
              c.ndp_buffers.sm_pending_entries, c.ndp_buffers.sm_ready_entries);
  std::printf("  Buffers in NSU          : 128 B x %u read data, 128 B x %u write address,"
              " %u offload command entries\n",
              c.ndp_buffers.nsu_read_data_entries, c.ndp_buffers.nsu_write_addr_entries,
              c.ndp_buffers.nsu_cmd_entries);
  return 0;
}
