// Table 2: the simulated system configuration.  Prints every parameter the
// paper lists so a reader can diff this reproduction against the original.
#include <cstdio>

#include "bench_util.h"

using namespace sndp;

int main(int argc, char** argv) {
  // Pure configuration dump; --stats-json exports the machine-readable
  // Table 2 so downstream tooling can diff configurations between runs.
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::print_header("Table 2: system configuration", "Table 2");
  const SystemConfig c = SystemConfig::paper();

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("sndp-bench-v1");
  json.key("bench").value("tab02");
  json.key("config").begin_object();
  json.key("num_sms").value(c.num_sms);
  json.key("num_hmcs").value(c.num_hmcs);
  json.key("clocks_khz").begin_object();
  json.key("sm").value(static_cast<std::uint64_t>(c.clocks.sm_khz));
  json.key("xbar").value(static_cast<std::uint64_t>(c.clocks.xbar_khz));
  json.key("l2").value(static_cast<std::uint64_t>(c.clocks.l2_khz));
  json.key("dram").value(static_cast<std::uint64_t>(c.clocks.dram_khz));
  json.key("nsu").value(static_cast<std::uint64_t>(c.clocks.nsu_khz));
  json.end_object();
  json.key("sm").begin_object();
  json.key("max_threads").value(c.sm.max_threads);
  json.key("max_ctas").value(c.sm.max_ctas);
  json.key("max_registers").value(c.sm.max_registers);
  json.key("scratchpad_bytes").value(static_cast<std::uint64_t>(c.sm.scratchpad_bytes));
  json.key("l1d_bytes").value(static_cast<std::uint64_t>(c.sm.l1d.size_bytes));
  json.key("l1d_ways").value(c.sm.l1d.ways);
  json.key("l1d_mshr").value(c.sm.l1d.mshr_entries);
  json.end_object();
  json.key("l2").begin_object();
  json.key("size_bytes").value(static_cast<std::uint64_t>(c.l2.size_bytes));
  json.key("ways").value(c.l2.ways);
  json.key("line_bytes").value(c.l2.line_bytes);
  json.key("mshr").value(c.l2.mshr_entries);
  json.end_object();
  json.key("hmc").begin_object();
  json.key("num_vaults").value(c.hmc.num_vaults);
  json.key("banks_per_vault").value(c.hmc.banks_per_vault);
  json.key("memory_bytes").value(static_cast<std::uint64_t>(c.hmc.memory_bytes));
  json.key("vault_queue_size").value(c.hmc.vault_queue_size);
  json.key("timing_tck").begin_object();
  json.key("tRP").value(c.hmc.timing.tRP);
  json.key("tCCD").value(c.hmc.timing.tCCD);
  json.key("tRCD").value(c.hmc.timing.tRCD);
  json.key("tCL").value(c.hmc.timing.tCL);
  json.key("tWR").value(c.hmc.timing.tWR);
  json.key("tRAS").value(c.hmc.timing.tRAS);
  json.end_object();
  json.end_object();
  json.key("link").begin_object();
  json.key("gb_per_s").value(c.link.gb_per_s);
  json.key("header_bytes").value(c.link.header_bytes);
  json.end_object();
  json.key("nsu").begin_object();
  json.key("max_warps").value(c.nsu.max_warps);
  json.key("warp_width").value(c.nsu.warp_width);
  json.key("simd_lanes").value(c.nsu.simd_lanes);
  json.key("icache_bytes").value(static_cast<std::uint64_t>(c.nsu.icache_bytes));
  json.key("const_cache_bytes").value(static_cast<std::uint64_t>(c.nsu.const_cache_bytes));
  json.end_object();
  json.key("ndp_buffers").begin_object();
  json.key("sm_pending_entries").value(c.ndp_buffers.sm_pending_entries);
  json.key("sm_ready_entries").value(c.ndp_buffers.sm_ready_entries);
  json.key("nsu_read_data_entries").value(c.ndp_buffers.nsu_read_data_entries);
  json.key("nsu_write_addr_entries").value(c.ndp_buffers.nsu_write_addr_entries);
  json.key("nsu_cmd_entries").value(c.ndp_buffers.nsu_cmd_entries);
  json.end_object();
  json.end_object();
  json.end_object();
  bench::write_bench_json(opts, json);
  std::printf("GPU\n");
  std::printf("  # of SMs                : %u\n", c.num_sms);
  std::printf("  # of HMCs               : %u\n", c.num_hmcs);
  std::printf("  Off-chip link BW        : %.0f GB/s per direction, %u bidirectional links\n",
              c.link.gb_per_s, c.num_hmcs);
  std::printf("  SM                      : %u threads, %u CTAs, %u registers, %llu KB scratchpad,"
              " warp width %u\n",
              c.sm.max_threads, c.sm.max_ctas, c.sm.max_registers,
              static_cast<unsigned long long>(c.sm.scratchpad_bytes / 1024), c.sm.warp_width);
  std::printf("  L1 data cache           : %llu KB, %u-way, %u B line, MSHR: %u\n",
              static_cast<unsigned long long>(c.sm.l1d.size_bytes / 1024), c.sm.l1d.ways,
              c.sm.l1d.line_bytes, c.sm.l1d.mshr_entries);
  std::printf("  L2 cache                : %llu MB, %u-way, %u B line, MSHR: %u\n",
              static_cast<unsigned long long>(c.l2.size_bytes / (1024 * 1024)), c.l2.ways,
              c.l2.line_bytes, c.l2.mshr_entries);
  std::printf("  SM, Xbar, L2 clock      : %llu, %llu, %llu MHz\n",
              static_cast<unsigned long long>(c.clocks.sm_khz / 1000),
              static_cast<unsigned long long>(c.clocks.xbar_khz / 1000),
              static_cast<unsigned long long>(c.clocks.l2_khz / 1000));
  std::printf("HMC\n");
  std::printf("  Organization            : 16 vaults x %u banks/vault\n",
              c.hmc.banks_per_vault);
  std::printf("  Memory size             : %llu GB\n",
              static_cast<unsigned long long>(c.hmc.memory_bytes / (1024ull * 1024 * 1024)));
  std::printf("  Memory scheduler        : FR-FCFS, vault request queue size: %u\n",
              c.hmc.vault_queue_size);
  std::printf("  DRAM timing             : tCK=1.50ns, tRP=%u, tCCD=%u, tRCD=%u, tCL=%u,"
              " tWR=%u, tRAS=%u\n",
              c.hmc.timing.tRP, c.hmc.timing.tCCD, c.hmc.timing.tRCD, c.hmc.timing.tCL,
              c.hmc.timing.tWR, c.hmc.timing.tRAS);
  std::printf("  Off-chip link BW        : %.0f GB/s per direction, 4 links (1 GPU + 3 network)\n",
              c.link.gb_per_s);
  std::printf("NDP-specific\n");
  std::printf("  NSU                     : %llu MHz, %u warps, warp width %u, %u physical lanes,"
              " %llu KB const cache, %llu KB i-cache\n",
              static_cast<unsigned long long>(c.clocks.nsu_khz / 1000), c.nsu.max_warps,
              c.nsu.warp_width, c.nsu.simd_lanes,
              static_cast<unsigned long long>(c.nsu.const_cache_bytes / 1024),
              static_cast<unsigned long long>(c.nsu.icache_bytes / 1024));
  std::printf("  Buffers in GPU SM       : 8 B x %u pending, 8 B x %u ready\n",
              c.ndp_buffers.sm_pending_entries, c.ndp_buffers.sm_ready_entries);
  std::printf("  Buffers in NSU          : 128 B x %u read data, 128 B x %u write address,"
              " %u offload command entries\n",
              c.ndp_buffers.nsu_read_data_entries, c.ndp_buffers.nsu_write_addr_entries,
              c.ndp_buffers.nsu_cmd_entries);
  return 0;
}
