// Figure 8: breakdown of instruction no-issue cycles on the GPU
// (ExecUnitBusy / Warp Idle / Dependency Stall), normalized to the
// baseline's total no-issue cycles, for Baseline, Baseline_MoreCore, and
// NaiveNDP.  The paper's signature: baselines are dominated by dependency
// stalls (memory-bound), while naive NDP inflates warp-idle cycles (warps
// parked at OFLD.END waiting for NSU acknowledgments).
#include <cstdio>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Breakdown {
  double busy, idle, dep;
  double total() const { return busy + idle + dep; }
};

Breakdown breakdown_of(const RunResult& r) {
  return Breakdown{static_cast<double>(r.stall_exec_busy),
                   static_cast<double>(r.stall_warp_idle),
                   static_cast<double>(r.stall_dependency)};
}

}  // namespace

int main() {
  print_header("Figure 8: no-issue cycle breakdown (normalized to baseline total)",
               "Fig. 8");
  std::printf("%-8s %-14s %10s %10s %10s %10s\n", "workload", "config", "ExecBusy",
              "WarpIdle", "DepStall", "total");

  for (const std::string& name : workload_names()) {
    const RunResult base = run_workload(name, paper_config(OffloadMode::kOff));
    SystemConfig mc_cfg = SystemConfig::paper_more_core();
    mc_cfg.governor.mode = OffloadMode::kOff;
    mc_cfg.governor.epoch_cycles = kScaledEpoch;
    const RunResult more = run_workload(name, mc_cfg);
    const RunResult naive = run_workload(name, paper_config(OffloadMode::kAlways));

    const double norm = breakdown_of(base).total();
    auto row = [&](const char* cfg, const RunResult& r) {
      const Breakdown b = breakdown_of(r);
      std::printf("%-8s %-14s %10.3f %10.3f %10.3f %10.3f\n", name.c_str(), cfg,
                  b.busy / norm, b.idle / norm, b.dep / norm, b.total() / norm);
    };
    row("Baseline", base);
    row("Base_MoreCore", more);
    row("NaiveNDP", naive);
  }
  std::printf("\npaper: baselines dominated by dependency stalls; naive NDP shifts the"
              " mix toward warp-idle\n");
  return 0;
}
