// Figure 8: breakdown of instruction no-issue cycles on the GPU
// (ExecUnitBusy / Warp Idle / Dependency Stall), normalized to the
// baseline's total no-issue cycles, for Baseline, Baseline_MoreCore, and
// NaiveNDP.  The paper's signature: baselines are dominated by dependency
// stalls (memory-bound), while naive NDP inflates warp-idle cycles (warps
// parked at OFLD.END waiting for NSU acknowledgments).
#include <cstdio>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Breakdown {
  double busy, idle, dep;
  double total() const { return busy + idle + dep; }
};

// Derived from the fine-grained cycle stacks (src/obs/cycle_stack.*): each
// legacy column is the sum of the bucket group that refines it.  StatsAudit
// enforces group == legacy counter on every run, so the figure is
// byte-identical to the coarse-counter version — but the stacks also say
// *why* (which memory level the dep-waits hit, credit-wait vs. unit-busy,
// acks vs. barriers), which `bottleneck_report` drills into.
Breakdown breakdown_of(const RunResult& r) {
  if (!r.cycle_stack.enabled) {
    return Breakdown{static_cast<double>(r.stall_exec_busy),
                     static_cast<double>(r.stall_warp_idle),
                     static_cast<double>(r.stall_dependency)};
  }
  Breakdown b{0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < kNumSmBuckets; ++i) {
    const double cycles = static_cast<double>(r.cycle_stack.sm.bucket_total(i));
    switch (sm_bucket_group(static_cast<SmBucket>(i))) {
      case SmBucketGroup::kExecBusy: b.busy += cycles; break;
      case SmBucketGroup::kWarpIdle: b.idle += cycles; break;
      case SmBucketGroup::kDep: b.dep += cycles; break;
      case SmBucketGroup::kIssue:
      case SmBucketGroup::kNoWarp: break;
    }
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Figure 8: no-issue cycle breakdown (normalized to baseline total)",
               "Fig. 8");
  std::printf("%-8s %-14s %10s %10s %10s %10s\n", "workload", "config", "ExecBusy",
              "WarpIdle", "DepStall", "total");

  BenchSweep sweep(opts, "fig08");
  struct Row {
    std::size_t base, more, naive;
  };
  std::vector<Row> rows;
  for (const std::string& name : workload_names()) {
    SystemConfig mc_cfg = SystemConfig::paper_more_core();
    mc_cfg.governor.mode = OffloadMode::kOff;
    mc_cfg.governor.epoch_cycles = kScaledEpoch;
    rows.push_back(Row{
        sweep.add(name + "/baseline", paper_config(OffloadMode::kOff), name),
        sweep.add(name + "/more-core", mc_cfg, name),
        sweep.add(name + "/naive", paper_config(OffloadMode::kAlways), name),
    });
  }
  sweep.run();

  std::size_t row_idx = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& base = sweep.result(rows[row_idx].base);
    const RunResult& more = sweep.result(rows[row_idx].more);
    const RunResult& naive = sweep.result(rows[row_idx].naive);
    ++row_idx;

    const double norm = breakdown_of(base).total();
    auto row = [&](const char* cfg, const RunResult& r) {
      const Breakdown b = breakdown_of(r);
      std::printf("%-8s %-14s %10.3f %10.3f %10.3f %10.3f\n", name.c_str(), cfg,
                  b.busy / norm, b.idle / norm, b.dep / norm, b.total() / norm);
    };
    row("Baseline", base);
    row("Base_MoreCore", more);
    row("NaiveNDP", naive);
  }
  std::printf("\npaper: baselines dominated by dependency stalls; naive NDP shifts the"
              " mix toward warp-idle\n");
  return 0;
}
