// Ablations of the design choices DESIGN.md calls out:
//  (a) NSU read-only cache (paper §7.1's suggested fix for BPROP),
//  (b) the cache-aware score's hit-push-cost extension (vs the paper's
//      plain Benefit equation) on the cache-sensitive workloads,
//  (c) target-NSU selection policy in the full simulator: the paper's
//      first-access policy vs the buffer-hungry optimal policy (Fig. 5's
//      question, answered with end-to-end runs).
#include <cstdio>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Ablations: RO-cache, hit-push score term, target policy",
               "§7.1 / §7.3 / Fig. 5");

  BenchSweep sweep(opts, "ablations");

  // (a) NSU read-only cache on BPROP at a mixed ratio: inline instances
  // warm the GPU caches; offloaded instances then push the cached input
  // structure over the GPU links unless the NSU caches it.
  const std::size_t a_base = sweep.add("BPROP/off", paper_config(OffloadMode::kOff), "BPROP");
  SystemConfig ro_on = paper_config(OffloadMode::kStaticRatio, 0.5);
  ro_on.nsu.read_only_cache = true;
  const std::size_t a_with = sweep.add("BPROP/static0.5+ro-cache", ro_on, "BPROP");
  const std::size_t a_without =
      sweep.add("BPROP/static0.5", paper_config(OffloadMode::kStaticRatio, 0.5), "BPROP");

  // (b) Hit-push-cost score extension on STCL/STN under NDP(Dyn)_Cache.
  struct BRow {
    std::size_t base, paper_eq, extended;
  };
  std::vector<BRow> b_rows;
  for (const char* name : {"STN", "STCL"}) {
    SystemConfig plain = paper_config(OffloadMode::kDynamicCache);
    plain.governor.model_hit_push_cost = false;
    b_rows.push_back(BRow{
        sweep.add(std::string(name) + "/off", paper_config(OffloadMode::kOff), name),
        sweep.add(std::string(name) + "/dyn-cache-paper-eq", plain, name),
        sweep.add(std::string(name) + "/dyn-cache",
                  paper_config(OffloadMode::kDynamicCache), name),
    });
  }

  // (c) Target policy in the full simulator (the paper chose first-access
  // to avoid unbounded buffering; the optimal policy holds every packet in
  // the pending buffer until OFLD.END).
  struct CRow {
    std::size_t base, first, optimal;
  };
  std::vector<CRow> c_rows;
  for (const char* name : {"VADD", "BFS", "KMN"}) {
    SystemConfig opt_cfg = paper_config(OffloadMode::kStaticRatio, 0.4);
    opt_cfg.optimal_target_selection = true;
    c_rows.push_back(CRow{
        sweep.add(std::string(name) + "/off", paper_config(OffloadMode::kOff), name),
        sweep.add(std::string(name) + "/static0.4",
                  paper_config(OffloadMode::kStaticRatio, 0.4), name),
        sweep.add(std::string(name) + "/static0.4+optimal-target", opt_cfg, name),
    });
  }

  sweep.run();

  {
    const RunResult& base = sweep.result(a_base);
    const RunResult& with_cache = sweep.result(a_with);
    const RunResult& without = sweep.result(a_without);
    std::printf("\n(a) NSU read-only cache, BPROP @ static ratio 0.5\n");
    std::printf("    without: %.3fx   with 2KB RO cache: %.3fx   (RO hits: %.0f)\n",
                without.speedup_vs(base), with_cache.speedup_vs(base),
                with_cache.stats.get("rocache.hits"));
  }

  std::printf("\n(b) cache-aware score: paper Benefit eq. vs +hit-push-cost extension\n");
  {
    std::size_t i = 0;
    for (const char* name : {"STN", "STCL"}) {
      const RunResult& base = sweep.result(b_rows[i].base);
      const RunResult& paper_eq = sweep.result(b_rows[i].paper_eq);
      const RunResult& extended = sweep.result(b_rows[i].extended);
      ++i;
      std::printf("    %-5s  paper eq: %.3fx   extended: %.3fx\n", name,
                  paper_eq.speedup_vs(base), extended.speedup_vs(base));
    }
  }

  std::printf("\n(c) target-NSU policy (static ratio 0.4)\n");
  {
    std::size_t i = 0;
    for (const char* name : {"VADD", "BFS", "KMN"}) {
      const RunResult& base = sweep.result(c_rows[i].base);
      const RunResult& first = sweep.result(c_rows[i].first);
      const RunResult& optimal = sweep.result(c_rows[i].optimal);
      ++i;
      std::printf(
          "    %-5s  first-access: %.3fx (cube %5.2f MB)   optimal: %.3fx (cube %5.2f MB)\n",
          name, first.speedup_vs(base), first.cube_link_bytes / 1e6,
          optimal.speedup_vs(base), optimal.cube_link_bytes / 1e6);
    }
  }
  std::printf("\npaper: the first-access policy costs at most ~15%% extra traffic (Fig. 5)\n");
  return 0;
}
