// Ablations of the design choices DESIGN.md calls out:
//  (a) NSU read-only cache (paper §7.1's suggested fix for BPROP),
//  (b) the cache-aware score's hit-push-cost extension (vs the paper's
//      plain Benefit equation) on the cache-sensitive workloads,
//  (c) target-NSU selection policy in the full simulator: the paper's
//      first-access policy vs the buffer-hungry optimal policy (Fig. 5's
//      question, answered with end-to-end runs).
#include <cstdio>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main() {
  print_header("Ablations: RO-cache, hit-push score term, target policy",
               "§7.1 / §7.3 / Fig. 5");

  // (a) NSU read-only cache on BPROP at a mixed ratio: inline instances
  // warm the GPU caches; offloaded instances then push the cached input
  // structure over the GPU links unless the NSU caches it.
  {
    const RunResult base = run_workload("BPROP", paper_config(OffloadMode::kOff));
    SystemConfig on = paper_config(OffloadMode::kStaticRatio, 0.5);
    on.nsu.read_only_cache = true;
    const RunResult with_cache = run_workload("BPROP", on);
    const RunResult without =
        run_workload("BPROP", paper_config(OffloadMode::kStaticRatio, 0.5));
    std::printf("\n(a) NSU read-only cache, BPROP @ static ratio 0.5\n");
    std::printf("    without: %.3fx   with 2KB RO cache: %.3fx   (RO hits: %.0f)\n",
                without.speedup_vs(base), with_cache.speedup_vs(base),
                with_cache.stats.get("rocache.hits"));
  }

  // (b) Hit-push-cost score extension on STCL/STN under NDP(Dyn)_Cache.
  std::printf("\n(b) cache-aware score: paper Benefit eq. vs +hit-push-cost extension\n");
  for (const char* name : {"STN", "STCL"}) {
    const RunResult base = run_workload(name, paper_config(OffloadMode::kOff));
    SystemConfig plain = paper_config(OffloadMode::kDynamicCache);
    plain.governor.model_hit_push_cost = false;
    const RunResult paper_eq = run_workload(name, plain);
    const RunResult extended = run_workload(name, paper_config(OffloadMode::kDynamicCache));
    std::printf("    %-5s  paper eq: %.3fx   extended: %.3fx\n", name,
                paper_eq.speedup_vs(base), extended.speedup_vs(base));
  }

  // (c) Target policy in the full simulator (the paper chose first-access
  // to avoid unbounded buffering; the optimal policy holds every packet in
  // the pending buffer until OFLD.END).
  std::printf("\n(c) target-NSU policy (static ratio 0.4)\n");
  for (const char* name : {"VADD", "BFS", "KMN"}) {
    const RunResult base = run_workload(name, paper_config(OffloadMode::kOff));
    const RunResult first =
        run_workload(name, paper_config(OffloadMode::kStaticRatio, 0.4));
    SystemConfig opt = paper_config(OffloadMode::kStaticRatio, 0.4);
    opt.optimal_target_selection = true;
    const RunResult optimal = run_workload(name, opt);
    std::printf("    %-5s  first-access: %.3fx (cube %5.2f MB)   optimal: %.3fx (cube %5.2f MB)\n",
                name, first.speedup_vs(base), first.cube_link_bytes / 1e6,
                optimal.speedup_vs(base), optimal.cube_link_bytes / 1e6);
  }
  std::printf("\npaper: the first-access policy costs at most ~15%% extra traffic (Fig. 5)\n");
  return 0;
}
