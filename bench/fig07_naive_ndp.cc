// Figure 7: performance of the naive NDP mechanism (offload every block
// instance) against the baseline and Baseline_MoreCore (+8 SMs).  The paper
// finds naive NDP degrades every workload (up to -86% for STN, -52% mean)
// while the extra SMs barely help (<3% except KMN's +25.7%).
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Figure 7: naive NDP vs baselines (speedup over Baseline)", "Fig. 7");
  std::printf("%-8s %12s %16s %12s %12s %12s\n", "workload", "Baseline", "Base_MoreCore",
              "NaiveNDP", "more-core x", "naive x");

  BenchSweep sweep(opts, "fig07");
  struct Row {
    std::size_t base, more, naive;
  };
  std::vector<Row> rows;
  for (const std::string& name : workload_names()) {
    SystemConfig mc_cfg = SystemConfig::paper_more_core();
    mc_cfg.governor.mode = OffloadMode::kOff;
    mc_cfg.governor.epoch_cycles = kScaledEpoch;
    rows.push_back(Row{
        sweep.add(name + "/baseline", paper_config(OffloadMode::kOff), name),
        sweep.add(name + "/more-core", mc_cfg, name),
        sweep.add(name + "/naive", paper_config(OffloadMode::kAlways), name),
    });
  }
  sweep.run();

  std::vector<double> more_core_x, naive_x;
  std::size_t row = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& base = sweep.result(rows[row].base);
    const RunResult& more = sweep.result(rows[row].more);
    const RunResult& naive = sweep.result(rows[row].naive);
    ++row;

    more_core_x.push_back(more.speedup_vs(base));
    naive_x.push_back(naive.speedup_vs(base));
    std::printf("%-8s %12llu %16llu %12llu %11.3fx %11.3fx\n", name.c_str(),
                static_cast<unsigned long long>(base.sm_cycles),
                static_cast<unsigned long long>(more.sm_cycles),
                static_cast<unsigned long long>(naive.sm_cycles), more_core_x.back(),
                naive_x.back());
  }
  std::printf("%-8s %12s %16s %12s %11.3fx %11.3fx\n", "GMEAN", "", "", "",
              geomean(more_core_x), geomean(naive_x));
  std::printf("\npaper: naive NDP degrades all workloads (avg -52%%); MoreCore <3%% except KMN\n");
  return 0;
}
