// latency_breakdown — request-lifecycle latency percentiles per path class.
//
// Runs every Table 1 workload (or a selected subset) with the latency tracer
// on and prints, per workload, the p50/p95/p99/mean end-to-end latency of
// each request path class (GPU read at L2 vs DRAM, RDF local vs remote, NSU
// writeback, offload round-trip, credit) plus the per-segment time split —
// the remote-vs-local breakdown behind the paper's unrestricted-placement
// argument (§4/§6).
//
//   latency_breakdown
//   latency_breakdown -w BFS,VADD --csv lat.csv --trace-dir traces/
//   latency_breakdown --jobs 0 --stats-json lat.json
//
// Options (plus the shared bench flags --jobs/--stats-json/--progress):
//   -w, --workloads LIST  comma-separated Table 1 workloads (default: all)
//   -m, --mode M          off | always | static | dyn | dyn-cache
//                                                   (default dyn-cache)
//       --sample N        span-sampling period           (default 64)
//       --csv FILE        machine-readable per-class rows
//       --trace-dir DIR   write one Perfetto trace per workload (sampled
//                         request spans as flow events) into DIR
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Options {
  BenchOptions bench;
  std::vector<std::string> workloads;
  OffloadMode mode = OffloadMode::kDynamicCache;
  unsigned sample = 64;
  std::string csv;
  std::string trace_dir;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-w W1,W2,...] [-m off|always|static|dyn|dyn-cache] "
               "[--sample N] [--csv FILE] [--trace-dir DIR]\n"
               "          [--jobs N] [--stats-json PATH] [--progress]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-w" || a == "--workloads" || a == "--workload") {
      std::string list = need_value(i);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(pos, comma - pos);
        if (!name.empty()) o.workloads.push_back(name);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (a == "-m" || a == "--mode") {
      const std::string m = need_value(i);
      if (m == "off") o.mode = OffloadMode::kOff;
      else if (m == "always") o.mode = OffloadMode::kAlways;
      else if (m == "static") o.mode = OffloadMode::kStaticRatio;
      else if (m == "dyn") o.mode = OffloadMode::kDynamic;
      else if (m == "dyn-cache") o.mode = OffloadMode::kDynamicCache;
      else usage(argv[0]);
    } else if (a == "--sample") {
      o.sample = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--csv") {
      o.csv = need_value(i);
    } else if (a == "--trace-dir") {
      o.trace_dir = need_value(i);
    } else if (a == "--jobs" || a == "-j") {
      o.bench.jobs = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--stats-json") {
      o.bench.stats_json = need_value(i);
    } else if (a == "--progress") {
      o.bench.progress = true;
    } else {
      usage(argv[0]);
    }
  }
  if (o.workloads.empty()) o.workloads = all_workload_names();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  print_header("Request-lifecycle latency breakdown by path class",
               "the §4/§6 remote-vs-local placement argument");

  BenchSweep sweep(o.bench, "latency");
  std::vector<std::size_t> points;
  for (const std::string& name : o.workloads) {
    SystemConfig cfg = paper_config(o.mode);
    cfg.latency_sample = o.sample;
    if (!o.trace_dir.empty()) {
      cfg.trace_path = o.trace_dir + "/" + name + "-latency-trace.json";
    }
    points.push_back(sweep.add(name + "/latency", cfg, name));
  }
  sweep.run();

  std::FILE* csv = nullptr;
  if (!o.csv.empty()) {
    csv = std::fopen(o.csv.c_str(), "w");
    if (csv == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0], o.csv.c_str());
      return 1;
    }
    std::fprintf(csv,
                 "workload,path_class,count,sum_ps,min_ps,max_ps,p50_ps,p95_ps,"
                 "p99_ps,queue_ps,link_ps,dram_ps,cache_ps,other_ps\n");
  }

  int rc = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::string& name = o.workloads[i];
    const RunResult& r = sweep.result(points[i]);
    if (!r.verified || !r.completed) rc = 1;
    const LatencySummary& lat = r.latency;
    std::printf("\n%s  (spans started %llu, finished %llu, cancelled %llu, "
                "sampled %llu, dropped %llu)\n",
                name.c_str(), static_cast<unsigned long long>(lat.started),
                static_cast<unsigned long long>(lat.finished),
                static_cast<unsigned long long>(lat.cancelled),
                static_cast<unsigned long long>(lat.spans_sampled),
                static_cast<unsigned long long>(lat.spans_dropped));
    print_latency_table(lat, "  ");
    if (csv != nullptr) {
      for (std::size_t c = 0; c < kNumPathClasses; ++c) {
        const Log2Histogram& h = lat.per_class[c];
        std::fprintf(csv,
                     "%s,%s,%llu,%llu,%llu,%llu,%.1f,%.1f,%.1f,%llu,%llu,%llu,"
                     "%llu,%llu\n",
                     name.c_str(), path_class_name(static_cast<PathClass>(c)),
                     static_cast<unsigned long long>(h.count()),
                     static_cast<unsigned long long>(h.sum()),
                     static_cast<unsigned long long>(h.min()),
                     static_cast<unsigned long long>(h.max()),
                     h.percentile(0.50), h.percentile(0.95), h.percentile(0.99),
                     static_cast<unsigned long long>(lat.seg_sum_ps[c][0]),
                     static_cast<unsigned long long>(lat.seg_sum_ps[c][1]),
                     static_cast<unsigned long long>(lat.seg_sum_ps[c][2]),
                     static_cast<unsigned long long>(lat.seg_sum_ps[c][3]),
                     static_cast<unsigned long long>(lat.seg_sum_ps[c][4]));
      }
    }
  }
  if (csv != nullptr && std::fclose(csv) != 0) rc = 1;
  return rc;
}
