// Differential correctness oracle driver (see src/ref/diff_oracle.h).
//
// Runs every workload through the scalar reference interpreter and through
// the timing simulator under the standing configuration matrix (baseline,
// static offload ratios, dynamic governor, 1/2/4 stacks), and reports
// whether every final memory image is byte-identical to the reference.
// Exit status 0 iff every (workload, config) point matched.
//
//   diff_check [--scale tiny|small] [--workload NAME]...
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sndp;

  ProblemScale scale = ProblemScale::kTiny;
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--scale" && i + 1 < argc) {
      const std::string s = argv[++i];
      if (s == "tiny") {
        scale = ProblemScale::kTiny;
      } else if (s == "small") {
        scale = ProblemScale::kSmall;
      } else {
        std::fprintf(stderr, "unknown scale '%s'\n", s.c_str());
        return 2;
      }
    } else if (a == "--workload" && i + 1 < argc) {
      selected.emplace_back(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--scale tiny|small] [--workload NAME]...\n",
                   argv[0]);
      return 2;
    }
  }
  if (selected.empty()) selected = all_workload_names();

  SystemConfig base = SystemConfig::paper();
  base.governor.epoch_cycles = bench::kScaledEpoch;
  const std::vector<OraclePoint> matrix = oracle_matrix(base);

  bench::print_header("Differential oracle: reference interpreter vs timing simulator",
                      "the §3 semantics-preservation claim");
  std::printf("%zu workloads x %zu configurations, byte-exact comparison\n\n",
              selected.size(), matrix.size());

  bool all_ok = true;
  for (const std::string& name : selected) {
    const DiffReport report = diff_check_workload(name, scale, matrix);
    std::fputs(to_string(report).c_str(), stdout);
    if (!report.ok()) all_ok = false;
  }
  std::printf("\n%s\n", all_ok ? "ALL MATCH" : "DIVERGENCE DETECTED");
  return all_ok ? 0 : 1;
}
