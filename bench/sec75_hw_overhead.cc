// §7.5: hardware overhead of the NDP mechanism on the GPU — the pending and
// ready packet buffer storage per SM against the existing on-chip storage.
// The paper reports 2.84 KB per SM and 1.8% of total on-chip storage.
#include <cstdio>

#include "bench_util.h"

using namespace sndp;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::print_header("Section 7.5: hardware overhead", "§7.5");
  const SystemConfig c = SystemConfig::paper();

  const double pending_bytes = 8.0 * c.ndp_buffers.sm_pending_entries;
  const double ready_bytes = 8.0 * c.ndp_buffers.sm_ready_entries;
  const double per_sm_ndp = pending_bytes + ready_bytes;

  // Existing per-SM storage: L1D + scratchpad + register file (+ 4 KB L1I
  // and constant cache as in Table 2).
  const double per_sm_existing = static_cast<double>(c.sm.l1d.size_bytes) +
                                 static_cast<double>(c.sm.scratchpad_bytes) +
                                 8.0 * c.sm.max_registers + 4096.0 /*L1I*/ + 4096.0 /*const*/;
  const double gpu_existing =
      per_sm_existing * c.num_sms + static_cast<double>(c.l2.size_bytes);
  const double gpu_ndp = per_sm_ndp * c.num_sms;

  std::printf("per-SM NDP packet buffers : %.2f KB (pending %.2f + ready %.2f)\n",
              per_sm_ndp / 1024, pending_bytes / 1024, ready_bytes / 1024);
  std::printf("   paper: 2.84 KB per SM\n");
  std::printf("per-SM existing storage   : %.1f KB\n", per_sm_existing / 1024);
  std::printf("GPU total on-chip storage : %.1f KB\n", gpu_existing / 1024);
  std::printf("NDP storage overhead      : %.2f%% of total on-chip storage\n",
              100.0 * gpu_ndp / gpu_existing);
  std::printf("   paper: 1.8%%\n");

  // NSU-side cost (Table 2 buffers).
  const double nsu_bytes = 128.0 * c.ndp_buffers.nsu_read_data_entries +
                           128.0 * c.ndp_buffers.nsu_write_addr_entries +
                           64.0 * c.ndp_buffers.nsu_cmd_entries +
                           static_cast<double>(c.nsu.icache_bytes) +
                           static_cast<double>(c.nsu.const_cache_bytes);
  std::printf("per-NSU storage           : %.1f KB (no MMU, no TLB, no data cache)\n",
              nsu_bytes / 1024);

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("sndp-bench-v1");
  json.key("bench").value("sec75");
  json.key("per_sm_ndp_bytes").value(per_sm_ndp);
  json.key("per_sm_existing_bytes").value(per_sm_existing);
  json.key("gpu_existing_bytes").value(gpu_existing);
  json.key("gpu_ndp_bytes").value(gpu_ndp);
  json.key("ndp_storage_overhead").value(gpu_ndp / gpu_existing);
  json.key("per_nsu_bytes").value(nsu_bytes);
  json.end_object();
  bench::write_bench_json(opts, json);
  return 0;
}
