// Simulator self-timing harness: how fast does the simulator itself run?
//
// Runs each Table 1 workload baseline (mode=off) and NDP (mode=dyn-cache),
// once with idle fast-forward enabled (the default) and once with naive
// edge-by-edge stepping (`sim.fast_forward = false`), and reports wall time,
// simulated-cycles-per-second, and the fast-forward speedup per row plus the
// geometric-mean speedup across all rows.  The two stepping modes are
// required to be bit-identical (same sm_cycles and runtime_ps); the harness
// checks this on every row and fails loudly on a mismatch.
//
//   perf_throughput [--quick] [--stats-json FILE]
//
//   --quick            tiny-scale three-workload subset (CI smoke)
//   --stats-json FILE  machine-readable results (sndp-bench-v1 JSON),
//                      e.g. BENCH_sim_throughput.json
//
// Wall-clock numbers are machine- and load-dependent; the speedup column is
// a ratio on the same machine and is the number the ISSUE targets refer to.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sndp.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Options {
  bool quick = false;
  std::string stats_json;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      o.quick = true;
    } else if (a == "--stats-json" && i + 1 < argc) {
      o.stats_json = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--stats-json FILE]\n", argv[0]);
      std::exit(2);
    }
  }
  return o;
}

struct Row {
  std::string workload;
  std::string mode;
  std::uint64_t sim_cycles = 0;
  TimePs runtime_ps = 0;
  double wall_ff_s = 0.0;
  double wall_naive_s = 0.0;
  bool identical = false;
};

double timed_run(const std::string& workload, ProblemScale scale, const SystemConfig& cfg,
                 RunResult* out) {
  auto wl = make_workload(workload, scale);
  const auto t0 = std::chrono::steady_clock::now();
  *out = Simulator(cfg).run(*wl);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  const std::vector<std::string> workloads =
      opt.quick ? std::vector<std::string>{"VADD", "BFS", "KMN"} : workload_names();
  const ProblemScale scale = opt.quick ? ProblemScale::kTiny : ProblemScale::kSmall;
  const std::vector<OffloadMode> modes = {OffloadMode::kOff, OffloadMode::kDynamicCache};

  print_header("Simulator throughput: idle fast-forward vs naive stepping",
               "the simulator itself (no paper figure)");
  std::printf("%-8s %-9s %12s %10s %10s %12s %12s %8s\n", "workload", "mode", "sim_cycles",
              "ff_wall_s", "naive_s", "Mcyc/s(ff)", "Mcyc/s(nv)", "speedup");

  std::vector<Row> rows;
  bool all_identical = true;
  for (const std::string& w : workloads) {
    for (OffloadMode mode : modes) {
      SystemConfig cfg = paper_config(mode);
      // Throughput baseline: latency tracing off, so the recorded
      // edges-per-second measures the simulator core (and the ≤2%
      // tracing-disabled regression budget is checked against it).
      cfg.latency_trace = false;
      cfg.fast_forward = true;
      RunResult ff;
      const double wall_ff = timed_run(w, scale, cfg, &ff);
      cfg.fast_forward = false;
      RunResult naive;
      const double wall_naive = timed_run(w, scale, cfg, &naive);

      Row r;
      r.workload = w;
      r.mode = mode == OffloadMode::kOff ? "off" : "dyn-cache";
      r.sim_cycles = ff.sm_cycles;
      r.runtime_ps = ff.runtime_ps;
      r.wall_ff_s = wall_ff;
      r.wall_naive_s = wall_naive;
      r.identical = ff.sm_cycles == naive.sm_cycles && ff.runtime_ps == naive.runtime_ps &&
                    ff.stats.values() == naive.stats.values();
      if (!r.identical) {
        all_identical = false;
        std::fprintf(stderr, "ERROR: %s/%s diverges between stepping modes!\n", w.c_str(),
                     r.mode.c_str());
      }
      const double mcyc_ff = static_cast<double>(r.sim_cycles) / wall_ff / 1e6;
      const double mcyc_nv = static_cast<double>(naive.sm_cycles) / wall_naive / 1e6;
      std::printf("%-8s %-9s %12llu %10.3f %10.3f %12.2f %12.2f %7.2fx\n", w.c_str(),
                  r.mode.c_str(), static_cast<unsigned long long>(r.sim_cycles), wall_ff,
                  wall_naive, mcyc_ff, mcyc_nv, wall_naive / wall_ff);
      rows.push_back(std::move(r));
    }
  }

  std::vector<double> speedups;
  for (const Row& r : rows) speedups.push_back(r.wall_naive_s / r.wall_ff_s);
  const double gm = geomean(speedups);
  std::printf("\ngeomean fast-forward speedup over %zu rows: %.2fx\n", rows.size(), gm);
  if (!all_identical) std::printf("STEPPING MODES DIVERGED — see errors above\n");

  if (!opt.stats_json.empty()) {
    JsonWriter j;
    j.begin_object();
    j.key("schema").value("sndp-bench-v1");
    j.key("bench").value("perf_throughput");
    j.key("quick").value(opt.quick);
    j.key("scale").value(opt.quick ? "tiny" : "small");
    j.key("geomean_speedup").value(gm);
    j.key("all_identical").value(all_identical);
    j.key("rows").begin_array();
    for (const Row& r : rows) {
      j.begin_object();
      j.key("workload").value(r.workload);
      j.key("mode").value(r.mode);
      j.key("sim_cycles").value(static_cast<std::uint64_t>(r.sim_cycles));
      j.key("runtime_ps").value(static_cast<std::uint64_t>(r.runtime_ps));
      j.key("wall_ff_s").value(r.wall_ff_s);
      j.key("wall_naive_s").value(r.wall_naive_s);
      j.key("speedup").value(r.wall_naive_s / r.wall_ff_s);
      j.key("identical").value(r.identical);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    if (!j.write_file(opt.stats_json)) {
      std::fprintf(stderr, "failed to write '%s'\n", opt.stats_json.c_str());
      return 1;
    }
  }
  return all_identical ? 0 : 1;
}
