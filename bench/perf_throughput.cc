// Simulator self-timing harness: how fast does the simulator itself run?
//
// Runs each Table 1 workload baseline (mode=off) and NDP (mode=dyn-cache),
// once with idle fast-forward enabled (the default) and once with naive
// edge-by-edge stepping (`sim.fast_forward = false`), and reports wall time,
// simulated-cycles-per-second, and the fast-forward speedup per row plus the
// geometric-mean speedup across all rows.  The two stepping modes are
// required to be bit-identical (same sm_cycles and runtime_ps); the harness
// checks this on every row and fails loudly on a mismatch.
//
// A second axis measures parallel-in-time execution (`--partitions`): each
// workload runs with 1, 2, and 4 partitions (fast-forward on, dyn-cache),
// checks bit-identity against the serial row, and reports the wall-clock
// speedup per row plus the geomean.  The JSON records the host's hardware
// thread count alongside the numbers: on a machine with fewer cores than
// partitions the barriers degrade to yields and the honest speedup is ~1x
// (or below) — the recorded ratios are only meaningful relative to
// `hw_threads`.
//
//   perf_throughput [--quick] [--stats-json FILE]
//
//   --quick            tiny-scale three-workload subset (CI smoke)
//   --stats-json FILE  machine-readable results (sndp-bench-v1 JSON),
//                      e.g. BENCH_sim_throughput.json
//
// Wall-clock numbers are machine- and load-dependent; the speedup column is
// a ratio on the same machine and is the number the ISSUE targets refer to.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sndp.h"

using namespace sndp;
using namespace sndp::bench;

namespace {

struct Options {
  bool quick = false;
  std::string stats_json;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      o.quick = true;
    } else if (a == "--stats-json" && i + 1 < argc) {
      o.stats_json = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--stats-json FILE]\n", argv[0]);
      std::exit(2);
    }
  }
  return o;
}

struct Row {
  std::string workload;
  std::string mode;
  std::uint64_t sim_cycles = 0;
  TimePs runtime_ps = 0;
  double wall_ff_s = 0.0;
  double wall_naive_s = 0.0;
  bool identical = false;
};

double timed_run(const std::string& workload, ProblemScale scale, const SystemConfig& cfg,
                 RunResult* out) {
  auto wl = make_workload(workload, scale);
  const auto t0 = std::chrono::steady_clock::now();
  *out = Simulator(cfg).run(*wl);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Partition-count rows: serial vs 2 and 4 partitions, same workload/mode.
struct ParRow {
  std::string workload;
  double wall_s1 = 0.0;
  double wall_s2 = 0.0;
  double wall_s4 = 0.0;
  bool identical = false;  // both partition counts bit-identical to serial
};

// Everything except the intentionally partition-dependent diagnostics must
// match bit-for-bit (latency tracing is off in this bench, so the
// span-sampling keys are absent anyway).
std::map<std::string, double> partition_comparable(const StatSet& s) {
  std::map<std::string, double> m = s.values();
  m.erase("sim.parallel_partitions");
  m.erase("sim.parallel_windows");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  const std::vector<std::string> workloads =
      opt.quick ? std::vector<std::string>{"VADD", "GEMM", "KMN"} : all_workload_names();
  const ProblemScale scale = opt.quick ? ProblemScale::kTiny : ProblemScale::kSmall;
  const std::vector<OffloadMode> modes = {OffloadMode::kOff, OffloadMode::kDynamicCache};

  print_header("Simulator throughput: idle fast-forward vs naive stepping",
               "the simulator itself (no paper figure)");
  std::printf("%-8s %-9s %12s %10s %10s %12s %12s %8s\n", "workload", "mode", "sim_cycles",
              "ff_wall_s", "naive_s", "Mcyc/s(ff)", "Mcyc/s(nv)", "speedup");

  std::vector<Row> rows;
  bool all_identical = true;
  for (const std::string& w : workloads) {
    for (OffloadMode mode : modes) {
      SystemConfig cfg = paper_config(mode);
      // Throughput baseline: latency tracing and the cycle-stack profiler
      // off, so the recorded edges-per-second measures the simulator core
      // (the profiler's own cost is measured separately below).
      cfg.latency_trace = false;
      cfg.profile = false;
      cfg.fast_forward = true;
      RunResult ff;
      const double wall_ff = timed_run(w, scale, cfg, &ff);
      cfg.fast_forward = false;
      RunResult naive;
      const double wall_naive = timed_run(w, scale, cfg, &naive);

      Row r;
      r.workload = w;
      r.mode = mode == OffloadMode::kOff ? "off" : "dyn-cache";
      r.sim_cycles = ff.sm_cycles;
      r.runtime_ps = ff.runtime_ps;
      r.wall_ff_s = wall_ff;
      r.wall_naive_s = wall_naive;
      r.identical = ff.sm_cycles == naive.sm_cycles && ff.runtime_ps == naive.runtime_ps &&
                    ff.stats.values() == naive.stats.values();
      if (!r.identical) {
        all_identical = false;
        std::fprintf(stderr, "ERROR: %s/%s diverges between stepping modes!\n", w.c_str(),
                     r.mode.c_str());
      }
      const double mcyc_ff = static_cast<double>(r.sim_cycles) / wall_ff / 1e6;
      const double mcyc_nv = static_cast<double>(naive.sm_cycles) / wall_naive / 1e6;
      std::printf("%-8s %-9s %12llu %10.3f %10.3f %12.2f %12.2f %7.2fx\n", w.c_str(),
                  r.mode.c_str(), static_cast<unsigned long long>(r.sim_cycles), wall_ff,
                  wall_naive, mcyc_ff, mcyc_nv, wall_naive / wall_ff);
      rows.push_back(std::move(r));
    }
  }

  std::vector<double> speedups;
  for (const Row& r : rows) speedups.push_back(r.wall_naive_s / r.wall_ff_s);
  const double gm = geomean(speedups);
  std::printf("\ngeomean fast-forward speedup over %zu rows: %.2fx\n", rows.size(), gm);
  if (!all_identical) std::printf("STEPPING MODES DIVERGED — see errors above\n");

  // --- partition-count axis: parallel-in-time execution -------------------
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("\nParallel-in-time execution (dyn-cache, fast-forward on; host has %u hardware "
              "thread%s)\n",
              hw_threads, hw_threads == 1 ? "" : "s");
  std::printf("%-8s %10s %10s %10s %9s %9s %5s\n", "workload", "wall_p1_s", "wall_p2_s",
              "wall_p4_s", "speedup2", "speedup4", "ident");
  std::vector<ParRow> par_rows;
  bool par_all_identical = true;
  for (const std::string& w : workloads) {
    SystemConfig cfg = paper_config(OffloadMode::kDynamicCache);
    cfg.latency_trace = false;
    cfg.profile = false;
    cfg.fast_forward = true;

    ParRow pr;
    pr.workload = w;
    cfg.parallel_partitions = 1;
    RunResult r1;
    pr.wall_s1 = timed_run(w, scale, cfg, &r1);
    cfg.parallel_partitions = 2;
    RunResult r2;
    pr.wall_s2 = timed_run(w, scale, cfg, &r2);
    cfg.parallel_partitions = 4;
    RunResult r4;
    pr.wall_s4 = timed_run(w, scale, cfg, &r4);

    pr.identical = r2.runtime_ps == r1.runtime_ps && r4.runtime_ps == r1.runtime_ps &&
                   partition_comparable(r2.stats) == partition_comparable(r1.stats) &&
                   partition_comparable(r4.stats) == partition_comparable(r1.stats);
    if (!pr.identical) {
      par_all_identical = false;
      std::fprintf(stderr, "ERROR: %s diverges between partition counts!\n", w.c_str());
    }
    std::printf("%-8s %10.3f %10.3f %10.3f %8.2fx %8.2fx %5s\n", w.c_str(), pr.wall_s1,
                pr.wall_s2, pr.wall_s4, pr.wall_s1 / pr.wall_s2, pr.wall_s1 / pr.wall_s4,
                pr.identical ? "yes" : "NO");
    par_rows.push_back(std::move(pr));
  }
  std::vector<double> sp2, sp4;
  for (const ParRow& pr : par_rows) {
    sp2.push_back(pr.wall_s1 / pr.wall_s2);
    sp4.push_back(pr.wall_s1 / pr.wall_s4);
  }
  const double gm_p2 = geomean(sp2);
  const double gm_p4 = geomean(sp4);
  std::printf("geomean parallel speedup: %.2fx (2 partitions), %.2fx (4 partitions)\n", gm_p2,
              gm_p4);
  if (!par_all_identical) std::printf("PARTITION COUNTS DIVERGED — see errors above\n");

  // --- cycle-stack profiler A/B: on-vs-off overhead -----------------------
  // Every timed row above pins cfg.profile = false; this axis measures what
  // turning the profiler back on (the shipping default) costs per workload.
  std::printf("\nCycle-stack profiler overhead (dyn-cache, fast-forward on)\n");
  std::printf("%-8s %11s %11s %9s\n", "workload", "wall_off_s", "wall_on_s", "overhead");
  struct ProfRow {
    std::string workload;
    double wall_off_s = 0.0;
    double wall_on_s = 0.0;
  };
  std::vector<ProfRow> prof_rows;
  for (const std::string& w : workloads) {
    SystemConfig cfg = paper_config(OffloadMode::kDynamicCache);
    cfg.latency_trace = false;
    cfg.fast_forward = true;

    ProfRow pf;
    pf.workload = w;
    cfg.profile = false;
    RunResult off;
    pf.wall_off_s = timed_run(w, scale, cfg, &off);
    cfg.profile = true;
    RunResult on;
    pf.wall_on_s = timed_run(w, scale, cfg, &on);
    std::printf("%-8s %11.3f %11.3f %8.2fx\n", w.c_str(), pf.wall_off_s, pf.wall_on_s,
                pf.wall_on_s / pf.wall_off_s);
    prof_rows.push_back(std::move(pf));
  }
  std::vector<double> overheads;
  for (const ProfRow& pf : prof_rows) overheads.push_back(pf.wall_on_s / pf.wall_off_s);
  const double gm_prof = geomean(overheads);
  std::printf("geomean profiler overhead over %zu rows: %.2fx\n", prof_rows.size(), gm_prof);

  if (!opt.stats_json.empty()) {
    JsonWriter j;
    j.begin_object();
    j.key("schema").value("sndp-bench-v1");
    j.key("bench").value("perf_throughput");
    j.key("quick").value(opt.quick);
    j.key("scale").value(opt.quick ? "tiny" : "small");
    j.key("geomean_speedup").value(gm);
    j.key("all_identical").value(all_identical);
    j.key("rows").begin_array();
    for (const Row& r : rows) {
      j.begin_object();
      j.key("workload").value(r.workload);
      j.key("mode").value(r.mode);
      j.key("sim_cycles").value(static_cast<std::uint64_t>(r.sim_cycles));
      j.key("runtime_ps").value(static_cast<std::uint64_t>(r.runtime_ps));
      j.key("wall_ff_s").value(r.wall_ff_s);
      j.key("wall_naive_s").value(r.wall_naive_s);
      j.key("speedup").value(r.wall_naive_s / r.wall_ff_s);
      j.key("identical").value(r.identical);
      j.end_object();
    }
    j.end_array();
    j.key("parallel").begin_object();
    j.key("hw_threads").value(static_cast<std::uint64_t>(hw_threads));
    j.key("mode").value("dyn-cache");
    j.key("geomean_speedup_p2").value(gm_p2);
    j.key("geomean_speedup_p4").value(gm_p4);
    j.key("all_identical").value(par_all_identical);
    j.key("rows").begin_array();
    for (const ParRow& pr : par_rows) {
      j.begin_object();
      j.key("workload").value(pr.workload);
      j.key("wall_p1_s").value(pr.wall_s1);
      j.key("wall_p2_s").value(pr.wall_s2);
      j.key("wall_p4_s").value(pr.wall_s4);
      j.key("speedup_p2").value(pr.wall_s1 / pr.wall_s2);
      j.key("speedup_p4").value(pr.wall_s1 / pr.wall_s4);
      j.key("identical").value(pr.identical);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.key("profiling").begin_object();
    j.key("mode").value("dyn-cache");
    j.key("geomean_overhead").value(gm_prof);
    j.key("rows").begin_array();
    for (const ProfRow& pf : prof_rows) {
      j.begin_object();
      j.key("workload").value(pf.workload);
      j.key("wall_off_s").value(pf.wall_off_s);
      j.key("wall_on_s").value(pf.wall_on_s);
      j.key("overhead").value(pf.wall_on_s / pf.wall_off_s);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.end_object();
    if (!j.write_file(opt.stats_json)) {
      std::fprintf(stderr, "failed to write '%s'\n", opt.stats_json.c_str());
      return 1;
    }
  }
  return all_identical && par_all_identical ? 0 : 1;
}
