// Regression diff between two perf_throughput result files.
//
//   bench_compare BASELINE.json CURRENT.json [--cycles-threshold PCT]
//                 [--time-threshold PCT]
//
// Both inputs are `perf_throughput --stats-json` output (sndp-bench-v1, e.g.
// the committed BENCH_sim_throughput.json).  Rows are matched by
// workload/mode.  A row regresses when
//
//   * sim_cycles grows by more than --cycles-threshold percent (default 0:
//     simulated cycles are deterministic, so any growth is a real model
//     change and must be acknowledged by refreshing the baseline), or
//   * wall_ff_s grows by more than --time-threshold percent (default 50:
//     wall clock is machine- and load-dependent, so only large slowdowns are
//     flagged).
//
// Prints one line per changed row and exits 1 when any regression was
// flagged, 0 otherwise (missing rows in CURRENT also flag).  The two files
// must record the same problem scale — tiny-scale smoke rows against a
// small-scale baseline are not comparable and exit 2.  Intended as a
// non-gating CI step: the exit code marks the PR for a human look, not a
// hard failure.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Minimal JSON reader for the fixed sndp-bench-v1 shape.  Numbers are kept
// as doubles (sim_cycles fits a double exactly below 2^53).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool number(JsonValue* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Escaped code points never appear in the keys/ids this tool
            // compares; keep the raw digits rather than decoding.
            out->push_back('u');
            continue;
          default: c = esc; break;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

struct BenchRow {
  double sim_cycles = 0.0;
  double wall_ff_s = 0.0;
};

bool load_rows(const char* path, std::map<std::string, BenchRow>* rows,
               std::string* scale) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open '%s'\n", path);
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonValue root;
  if (!JsonParser(text).parse(&root) || root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_compare: '%s' is not valid JSON\n", path);
    return false;
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->str != "sndp-bench-v1") {
    std::fprintf(stderr, "bench_compare: '%s' is not sndp-bench-v1\n", path);
    return false;
  }
  if (const JsonValue* s = root.find("scale")) *scale = s->str;
  const JsonValue* arr = root.find("rows");
  if (arr == nullptr || arr->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_compare: '%s' has no rows array\n", path);
    return false;
  }
  for (const JsonValue& r : arr->array) {
    const JsonValue* wl = r.find("workload");
    const JsonValue* mode = r.find("mode");
    const JsonValue* cyc = r.find("sim_cycles");
    const JsonValue* wall = r.find("wall_ff_s");
    if (wl == nullptr || mode == nullptr || cyc == nullptr || wall == nullptr) continue;
    (*rows)[wl->str + "/" + mode->str] = BenchRow{cyc->number, wall->number};
  }
  return true;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--cycles-threshold PCT] "
               "[--time-threshold PCT]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double cycles_pct = 0.0;
  double time_pct = 50.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--cycles-threshold" && i + 1 < argc) {
      cycles_pct = std::strtod(argv[++i], nullptr);
    } else if (a == "--time-threshold" && i + 1 < argc) {
      time_pct = std::strtod(argv[++i], nullptr);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) usage(argv[0]);

  std::map<std::string, BenchRow> base, cur;
  std::string base_scale, cur_scale;
  if (!load_rows(baseline_path, &base, &base_scale) ||
      !load_rows(current_path, &cur, &cur_scale)) {
    return 2;
  }
  // Rows are only comparable at the same problem scale: a tiny-scale smoke
  // run against a small-scale baseline would flag every row.
  if (base_scale != cur_scale) {
    std::fprintf(stderr,
                 "bench_compare: scale mismatch (baseline '%s' vs current '%s'); "
                 "rows are not comparable\n",
                 base_scale.c_str(), cur_scale.c_str());
    return 2;
  }

  int regressions = 0;
  for (const auto& [id, b] : base) {
    const auto it = cur.find(id);
    if (it == cur.end()) {
      std::printf("MISSING  %-22s row absent from %s\n", id.c_str(), current_path);
      ++regressions;
      continue;
    }
    const BenchRow& c = it->second;
    const double cyc_delta_pct = b.sim_cycles > 0.0
        ? 100.0 * (c.sim_cycles - b.sim_cycles) / b.sim_cycles : 0.0;
    const double wall_delta_pct = b.wall_ff_s > 0.0
        ? 100.0 * (c.wall_ff_s - b.wall_ff_s) / b.wall_ff_s : 0.0;
    if (cyc_delta_pct > cycles_pct) {
      std::printf("CYCLES   %-22s %12.0f -> %12.0f  (%+.2f%% > %.2f%%)\n", id.c_str(),
                  b.sim_cycles, c.sim_cycles, cyc_delta_pct, cycles_pct);
      ++regressions;
    }
    if (wall_delta_pct > time_pct) {
      std::printf("TIME     %-22s %10.3fs -> %10.3fs  (%+.1f%% > %.1f%%)\n", id.c_str(),
                  b.wall_ff_s, c.wall_ff_s, wall_delta_pct, time_pct);
      ++regressions;
    }
  }
  if (regressions == 0) {
    std::printf("bench_compare: %zu rows, no regressions (cycles >%.2f%%, time >%.1f%%)\n",
                base.size(), cycles_pct, time_pct);
    return 0;
  }
  std::printf("bench_compare: %d regression%s flagged\n", regressions,
              regressions == 1 ? "" : "s");
  return 1;
}
