// §7.3 (last paragraph): sensitivity to a more powerful GPU — with the
// number of compute units doubled in all configurations, the proposed
// offloading still speeds the system up (+11.6% mean in the paper): the
// off-chip links remain the bottleneck.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Section 7.3: doubled GPU compute units", "§7.3");
  std::printf("%-8s %14s %14s %10s\n", "workload", "2x-SM base", "2x-SM NDP$", "speedup");

  BenchSweep sweep(opts, "sec73");
  struct Row {
    std::size_t base, ndp;
  };
  std::vector<Row> rows;
  for (const std::string& name : workload_names()) {
    SystemConfig base_cfg = SystemConfig::paper_2x();
    base_cfg.governor.mode = OffloadMode::kOff;
    base_cfg.governor.epoch_cycles = kScaledEpoch;

    SystemConfig ndp_cfg = SystemConfig::paper_2x();
    ndp_cfg.governor.mode = OffloadMode::kDynamicCache;
    ndp_cfg.governor.epoch_cycles = kScaledEpoch;

    rows.push_back(Row{sweep.add(name + "/2x-off", base_cfg, name),
                       sweep.add(name + "/2x-dyn-cache", ndp_cfg, name)});
  }
  sweep.run();

  std::vector<double> xs;
  std::size_t row_idx = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& base = sweep.result(rows[row_idx].base);
    const RunResult& ndp = sweep.result(rows[row_idx].ndp);
    ++row_idx;

    xs.push_back(ndp.speedup_vs(base));
    std::printf("%-8s %14llu %14llu %9.3fx\n", name.c_str(),
                static_cast<unsigned long long>(base.sm_cycles),
                static_cast<unsigned long long>(ndp.sm_cycles), xs.back());
  }
  std::printf("%-8s %14s %14s %9.3fx\n", "GMEAN", "", "", geomean(xs));
  std::printf("\npaper: +11.6%% mean speedup with doubled compute units\n");
  return 0;
}
