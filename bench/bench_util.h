// Shared helpers for the per-figure/table benchmark harnesses.
//
// Scaling note (see EXPERIMENTS.md): inputs are scaled down from the paper
// so each simulation finishes in seconds, and the dynamic-offload epoch is
// scaled with them (1,000 SM cycles instead of 30,000) so runs span a
// comparable number of epochs.  The GPU/HMC configuration itself is the
// paper's Table 2.
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sndp.h"

namespace sndp::bench {

inline constexpr Cycle kScaledEpoch = 1000;

inline SystemConfig paper_config(OffloadMode mode, double static_ratio = 1.0) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = mode;
  cfg.governor.static_ratio = static_ratio;
  cfg.governor.epoch_cycles = kScaledEpoch;
  return cfg;
}

inline RunResult run_workload(const std::string& name, const SystemConfig& cfg,
                              ProblemScale scale = ProblemScale::kSmall) {
  auto wl = make_workload(name, scale);
  RunResult r = Simulator(cfg).run(*wl);
  if (!r.verified) {
    std::fprintf(stderr, "WARNING: %s failed functional verification!\n", name.c_str());
  }
  if (!r.completed) {
    std::fprintf(stderr, "WARNING: %s hit the simulated-time limit!\n", name.c_str());
  }
  return r;
}

// Geometric mean of a list of per-workload ratios.
inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(xs.size()));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; shapes, not absolute numbers — see EXPERIMENTS.md)\n",
              paper_ref);
  std::printf("================================================================\n");
}

}  // namespace sndp::bench
