// Shared helpers for the per-figure/table benchmark harnesses.
//
// Scaling note (see EXPERIMENTS.md): inputs are scaled down from the paper
// so each simulation finishes in seconds, and the dynamic-offload epoch is
// scaled with them (1,000 SM cycles instead of 30,000) so runs span a
// comparable number of epochs.  The GPU/HMC configuration itself is the
// paper's Table 2.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sndp.h"

namespace sndp::bench {

inline constexpr Cycle kScaledEpoch = 1000;

inline SystemConfig paper_config(OffloadMode mode, double static_ratio = 1.0) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = mode;
  cfg.governor.static_ratio = static_ratio;
  cfg.governor.epoch_cycles = kScaledEpoch;
  return cfg;
}

// Flags every bench binary accepts (see EXPERIMENTS.md):
//   --jobs N          run the experiment's simulation points on N threads
//                     (0 = all hardware threads; results are identical to
//                     --jobs 1 — determinism is a tested invariant)
//   --stats-json PATH write every point's full RunResult + StatSet as
//                     sndp-sweep-v1 JSON
//   --progress        live progress line on stderr
struct BenchOptions {
  unsigned jobs = 1;
  std::string stats_json;
  bool progress = false;
};

inline BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" || a == "-j") {
      o.jobs = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
    } else if (a == "--stats-json") {
      o.stats_json = need_value(i);
    } else if (a == "--progress") {
      o.progress = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--stats-json PATH] [--progress]\n", argv[0]);
      std::exit(2);
    }
  }
  return o;
}

// Sweep wrapper used by every simulation-driven bench: queue all of the
// experiment's (config, workload) points up front, execute them on the
// shared SweepRunner (parallel under --jobs), then print the tables from
// the collected results.  Output is identical to the old serial loops for
// any job count; the per-run WARNING lines are emitted in submission order
// right after the sweep finishes.
class BenchSweep {
 public:
  BenchSweep(const BenchOptions& opts, std::string bench_name)
      : opts_(opts),
        bench_name_(std::move(bench_name)),
        runner_({.jobs = opts.jobs, .point_timeout_s = 0.0, .progress = opts.progress}) {}

  std::size_t add(const std::string& id, const SystemConfig& cfg, const std::string& workload,
                  ProblemScale scale = ProblemScale::kSmall) {
    SweepPoint p;
    p.id = bench_name_ + "/" + id;
    p.workload = workload;
    p.scale = scale;
    p.cfg = cfg;
    return runner_.add(std::move(p));
  }

  // Runs every queued point, replays the classic WARNING lines, and writes
  // the stats JSON when requested.
  void run() {
    runner_.run();
    for (const SweepOutcome& o : runner_.outcomes()) {
      if (!o.ran) {
        std::fprintf(stderr, "WARNING: %s failed: %s\n", o.point.id.c_str(),
                     o.error.c_str());
        continue;
      }
      if (!o.result.verified) {
        std::fprintf(stderr, "WARNING: %s failed functional verification!\n",
                     o.point.workload.c_str());
      }
      if (!o.result.completed) {
        std::fprintf(stderr, "WARNING: %s hit the simulated-time limit!\n",
                     o.point.workload.c_str());
      }
    }
    if (!opts_.stats_json.empty() &&
        !write_sweep_json(opts_.stats_json, runner_.outcomes(), opts_.jobs)) {
      std::fprintf(stderr, "WARNING: failed to write stats JSON to '%s'\n",
                   opts_.stats_json.c_str());
    }
  }

  const RunResult& result(std::size_t index) const { return runner_.result(index); }

 private:
  BenchOptions opts_;
  std::string bench_name_;
  SweepRunner runner_;
};

// Writes a hand-built JSON document for the benches that do not run the
// simulator (configuration/overhead tables, Monte Carlo sweeps).
inline void write_bench_json(const BenchOptions& opts, const JsonWriter& w) {
  if (opts.stats_json.empty()) return;
  if (!w.write_file(opts.stats_json)) {
    std::fprintf(stderr, "WARNING: failed to write stats JSON to '%s'\n",
                 opts.stats_json.c_str());
  }
}

inline RunResult run_workload(const std::string& name, const SystemConfig& cfg,
                              ProblemScale scale = ProblemScale::kSmall) {
  auto wl = make_workload(name, scale);
  RunResult r = Simulator(cfg).run(*wl);
  if (!r.verified) {
    std::fprintf(stderr, "WARNING: %s failed functional verification!\n", name.c_str());
  }
  if (!r.completed) {
    std::fprintf(stderr, "WARNING: %s hit the simulated-time limit!\n", name.c_str());
  }
  return r;
}

// Geometric mean of a list of per-workload ratios.
inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(xs.size()));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; shapes, not absolute numbers — see EXPERIMENTS.md)\n",
              paper_ref);
  std::printf("================================================================\n");
}

}  // namespace sndp::bench
