// Table 1: evaluated workloads and the offload blocks the static analyzer
// extracts from each (instruction counts after translation for the NSU,
// i.e., with address-calculation instructions removed).  Also reports the
// per-thread register transfer averages the paper quotes in §5
// (0.41 sent / 0.47 received per thread on average).
#include <cstdio>

#include "bench_util.h"

using namespace sndp;

int main(int argc, char** argv) {
  // Static analysis only (no timed simulation), so --jobs has nothing to
  // parallelize; --stats-json still exports the table.
  const bench::BenchOptions opts = bench::parse_bench_options(argc, argv);
  bench::print_header("Table 1: workloads and offload blocks", "Table 1 + §5");
  std::printf("%-8s %-44s %-18s %5s %5s\n", "Abbr.", "Description", "NSU instrs/block",
              "in", "out");

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("sndp-bench-v1");
  json.key("bench").value("tab01");
  json.key("workloads").begin_array();

  double total_in = 0.0, total_out = 0.0;
  unsigned total_blocks = 0;
  for (const std::string& name : workload_names()) {
    auto wl = make_workload(name, ProblemScale::kSmall);
    GlobalMemory mem;
    MemoryAllocator alloc;
    Rng rng(7);
    wl->setup(mem, alloc, rng);
    const KernelImage image = analyze_and_generate(wl->program());

    json.begin_object();
    json.key("workload").value(name);
    json.key("description").value(wl->description());
    json.key("blocks").begin_array();
    std::string counts;
    for (const auto& b : image.blocks) {
      if (!counts.empty()) counts += ",";
      counts += std::to_string(b.nsu_inst_count);
      if (b.indirect_single_load) counts += "*";
      total_in += static_cast<double>(b.regs_in.size());
      total_out += static_cast<double>(b.regs_out.size());
      ++total_blocks;
      json.begin_object();
      json.key("nsu_inst_count").value(b.nsu_inst_count);
      json.key("indirect_single_load").value(b.indirect_single_load);
      json.key("regs_in").value(static_cast<std::uint64_t>(b.regs_in.size()));
      json.key("regs_out").value(static_cast<std::uint64_t>(b.regs_out.size()));
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("%-8s %-44s %-18s", name.c_str(), wl->description().c_str(), counts.c_str());
    double in_regs = 0.0, out_regs = 0.0;
    for (const auto& b : image.blocks) {
      in_regs += static_cast<double>(b.regs_in.size());
      out_regs += static_cast<double>(b.regs_out.size());
    }
    std::printf(" %5.1f %5.1f\n", in_regs, out_regs);
  }
  json.end_array();
  json.key("avg_regs_in")
      .value(total_blocks ? total_in / total_blocks : 0.0);
  json.key("avg_regs_out")
      .value(total_blocks ? total_out / total_blocks : 0.0);
  json.end_object();
  bench::write_bench_json(opts, json);
  std::printf("\n(* = single-instruction indirect-load block, §4.4)\n");
  if (total_blocks > 0) {
    std::printf("average registers transferred per block: %.2f in, %.2f out\n",
                total_in / total_blocks, total_out / total_blocks);
  }
  std::printf("(paper §5: GPU transmitted 0.41 / received 0.47 registers per thread on average)\n");
  return 0;
}
