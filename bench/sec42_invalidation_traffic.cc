// §4.2: cache-coherence overhead of the NDP write path — every NSU DRAM
// write sends an invalidation to the GPU caches.  The paper measures the
// additional off-chip traffic at up to 1.42% (0.38% mean).
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Section 4.2: cache-invalidation traffic overhead", "§4.2");
  std::printf("%-8s %14s %14s %10s\n", "workload", "inval bytes", "offchip bytes",
              "overhead");
  BenchSweep sweep(opts, "sec42");
  std::vector<std::size_t> points;
  for (const std::string& name : workload_names()) {
    points.push_back(sweep.add(name + "/dyn-cache",
                               paper_config(OffloadMode::kDynamicCache), name));
  }
  sweep.run();

  std::vector<double> overheads;
  std::size_t point_idx = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& r = sweep.result(points[point_idx++]);
    const double total = static_cast<double>(r.counters.offchip_bytes);
    const double inval = static_cast<double>(r.inval_bytes);
    const double pct = total > 0 ? 100.0 * inval / total : 0.0;
    overheads.push_back(pct);
    std::printf("%-8s %14.0f %14.0f %9.2f%%\n", name.c_str(), inval, total, pct);
  }
  double avg = 0.0, mx = 0.0;
  for (double v : overheads) {
    avg += v;
    mx = std::max(mx, v);
  }
  std::printf("\ninvalidation traffic: max %.2f%%, mean %.2f%% of off-chip bytes\n", mx,
              avg / overheads.size());
  std::printf("paper: up to 1.42%%, 0.38%% mean\n");
  return 0;
}
