// §7.6: performance sensitivity to the NSU clock frequency.  Halving the
// NSU to 175 MHz keeps most of the benefit (paper: +14.1% mean vs +17.9% at
// 350 MHz), supporting cheap, low-power NSU implementations.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Section 7.6: NSU frequency sensitivity (NDP(Dyn)_Cache)", "§7.6");
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "workload", "baseline", "350MHz",
              "175MHz", "350 x", "175 x");

  BenchSweep sweep(opts, "sec76");
  struct Row {
    std::size_t base, mhz350, mhz175;
  };
  std::vector<Row> rows;
  for (const std::string& name : workload_names()) {
    SystemConfig cfg175 = paper_config(OffloadMode::kDynamicCache);
    cfg175.clocks.nsu_khz = 175'000;
    rows.push_back(Row{
        sweep.add(name + "/off", paper_config(OffloadMode::kOff), name),
        sweep.add(name + "/nsu350", paper_config(OffloadMode::kDynamicCache), name),
        sweep.add(name + "/nsu175", cfg175, name),
    });
  }
  sweep.run();

  std::vector<double> full, half;
  std::size_t row_idx = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& base = sweep.result(rows[row_idx].base);
    const RunResult& ndp350 = sweep.result(rows[row_idx].mhz350);
    const RunResult& ndp175 = sweep.result(rows[row_idx].mhz175);
    ++row_idx;

    full.push_back(ndp350.speedup_vs(base));
    half.push_back(ndp175.speedup_vs(base));
    std::printf("%-8s %12llu %12llu %12llu %9.3fx %9.3fx\n", name.c_str(),
                static_cast<unsigned long long>(base.sm_cycles),
                static_cast<unsigned long long>(ndp350.sm_cycles),
                static_cast<unsigned long long>(ndp175.sm_cycles), full.back(), half.back());
  }
  std::printf("%-8s %12s %12s %12s %9.3fx %9.3fx\n", "GMEAN", "", "", "", geomean(full),
              geomean(half));
  std::printf("\npaper: 350 MHz +17.9%% mean; 175 MHz keeps +14.1%% mean\n");
  return 0;
}
