// Figure 11: NSU instruction-cache utilization and average warp occupancy
// under NDP(Dyn)_Cache.  The paper reports ~23.7% mean I-cache utilization
// (of 4 KB) and at most 39.3% / 22.1% mean warp occupancy — evidence the
// NSU can be built small and cheap.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace sndp;
using namespace sndp::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_header("Figure 11: NSU I-cache utilization and warp occupancy", "Fig. 11");
  std::printf("%-8s %18s %18s\n", "workload", "icache util", "warp occupancy");

  BenchSweep sweep(opts, "fig11");
  std::vector<std::size_t> points;
  for (const std::string& name : workload_names()) {
    points.push_back(sweep.add(name + "/dyn-cache",
                               paper_config(OffloadMode::kDynamicCache), name));
  }
  sweep.run();

  std::vector<double> icache, occ;
  std::size_t point_idx = 0;
  for (const std::string& name : workload_names()) {
    const RunResult& r = sweep.result(points[point_idx++]);
    // Aggregate over the 8 NSUs.
    double iu = 0.0, oc = 0.0;
    unsigned n = 0;
    for (unsigned h = 0;; ++h) {
      const std::string prefix = "hmc" + std::to_string(h) + ".nsu";
      if (!r.stats.contains(prefix + ".avg_occupancy")) break;
      iu += r.stats.get(prefix + ".icache_utilization");
      oc += r.stats.get(prefix + ".avg_occupancy");
      ++n;
    }
    iu /= n;
    oc /= n;
    icache.push_back(iu);
    occ.push_back(oc);
    std::printf("%-8s %17.1f%% %17.1f%%\n", name.c_str(), 100.0 * iu, 100.0 * oc);
  }
  double iu_avg = 0.0, oc_avg = 0.0;
  for (double v : icache) iu_avg += v;
  for (double v : occ) oc_avg += v;
  std::printf("%-8s %17.1f%% %17.1f%%\n", "AVG", 100.0 * iu_avg / icache.size(),
              100.0 * oc_avg / occ.size());
  std::printf("\npaper: 23.7%% mean I-cache utilization; warp occupancy <= 39.3%%,"
              " 22.1%% mean\n");
  return 0;
}
