// google-benchmark microbenchmarks of the simulator substrates: cache,
// DRAM/vault timing, hypercube routing, coalescer, analyzer, and the
// functional memory.  Useful for guarding the simulator's own performance.
#include <benchmark/benchmark.h>

#include "sndp.h"

using namespace sndp;

namespace {

void BM_CacheAccess(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 32 * KiB;
  cfg.ways = 4;
  Cache cache(cfg, "bm");
  Rng rng(1);
  std::uint64_t token = 0;
  for (auto _ : state) {
    const Addr line = (rng.next_below(1024)) * 128;
    auto result = cache.access_read(line, ++token);
    if (result == CacheAccessResult::kMissNew || result == CacheAccessResult::kMshrFull) {
      benchmark::DoNotOptimize(cache.fill(line));
    }
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CoalesceUnit(benchmark::State& state) {
  Coalescer c(128);
  std::array<Addr, kWarpWidth> addrs{};
  Rng rng(2);
  const bool divergent = state.range(0) != 0;
  for (unsigned i = 0; i < kWarpWidth; ++i) {
    addrs[i] = divergent ? rng.next_below(1 << 20) * 8 : 0x1000 + i * 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.coalesce(addrs, kFullMask, 8));
  }
}
BENCHMARK(BM_CoalesceUnit)->Arg(0)->Arg(1);

void BM_HypercubeRoute(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const unsigned a = static_cast<unsigned>(rng.next_below(8));
    const unsigned b = static_cast<unsigned>(rng.next_below(8));
    benchmark::DoNotOptimize(hypercube_route(a, b));
  }
}
BENCHMARK(BM_HypercubeRoute);

void BM_HypercubeRouteFixedBuffer(benchmark::State& state) {
  // The allocation-free overload used on the Network::send fast path.
  Rng rng(3);
  unsigned buf[kMaxRouteNodes];
  for (auto _ : state) {
    const unsigned a = static_cast<unsigned>(rng.next_below(8));
    const unsigned b = static_cast<unsigned>(rng.next_below(8));
    benchmark::DoNotOptimize(hypercube_route(a, b, buf));
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_HypercubeRouteFixedBuffer);

void BM_GlobalMemoryReadWrite(benchmark::State& state) {
  GlobalMemory mem;
  Rng rng(4);
  for (auto _ : state) {
    const Addr a = rng.next_below(64 * MiB) & ~7ull;
    mem.write_u64(a, a);
    benchmark::DoNotOptimize(mem.read_u64(a));
  }
}
BENCHMARK(BM_GlobalMemoryReadWrite);

void BM_AnalyzerVadd(benchmark::State& state) {
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  GlobalMemory mem;
  MemoryAllocator alloc;
  Rng rng(5);
  wl->setup(mem, alloc, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_and_generate(wl->program()));
  }
}
BENCHMARK(BM_AnalyzerVadd);

void BM_VaultStreamingReads(benchmark::State& state) {
  // Throughput of the FR-FCFS vault model under a streaming read pattern.
  const SystemConfig cfg = SystemConfig::paper();
  std::uint64_t completions = 0;
  VaultController vault(cfg.hmc, cfg.clocks.dram_khz,
                        [&](const DramRequest&, TimePs) { ++completions; });
  AddressMap amap(cfg);
  Cycle cycle = 0;
  Addr next = 0;
  for (auto _ : state) {
    if (vault.can_accept()) {
      DramRequest req;
      req.line_addr = next;
      next += 128 * cfg.hmc.num_vaults;  // stay in this vault
      req.coord = amap.decode(req.line_addr);
      vault.enqueue(req);
    }
    vault.tick(cycle, tick_time_ps(cycle, cfg.clocks.dram_khz));
    ++cycle;
  }
  state.counters["lines_per_kcycle"] =
      benchmark::Counter(static_cast<double>(completions) * 1000.0 /
                         static_cast<double>(cycle));
}
BENCHMARK(BM_VaultStreamingReads);

void BM_TinySimulationEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg = SystemConfig::small_test();
    cfg.governor.mode = OffloadMode::kDynamicCache;
    cfg.governor.epoch_cycles = 500;
    auto wl = make_workload("VADD", ProblemScale::kTiny);
    RunResult r = Simulator(cfg).run(*wl);
    benchmark::DoNotOptimize(r.sm_cycles);
  }
}
BENCHMARK(BM_TinySimulationEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
