
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_map.cc" "tests/CMakeFiles/sndp_tests.dir/test_address_map.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_address_map.cc.o.d"
  "/root/repo/tests/test_analyzer.cc" "tests/CMakeFiles/sndp_tests.dir/test_analyzer.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_analyzer.cc.o.d"
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/sndp_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_buffer_manager.cc" "tests/CMakeFiles/sndp_tests.dir/test_buffer_manager.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_buffer_manager.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/sndp_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_aware.cc" "tests/CMakeFiles/sndp_tests.dir/test_cache_aware.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_cache_aware.cc.o.d"
  "/root/repo/tests/test_clock.cc" "tests/CMakeFiles/sndp_tests.dir/test_clock.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_clock.cc.o.d"
  "/root/repo/tests/test_coalescer.cc" "tests/CMakeFiles/sndp_tests.dir/test_coalescer.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_coalescer.cc.o.d"
  "/root/repo/tests/test_codegen.cc" "tests/CMakeFiles/sndp_tests.dir/test_codegen.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_codegen.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/sndp_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_dataflow.cc" "tests/CMakeFiles/sndp_tests.dir/test_dataflow.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_dataflow.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/sndp_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/sndp_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_hill_climb.cc" "tests/CMakeFiles/sndp_tests.dir/test_hill_climb.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_hill_climb.cc.o.d"
  "/root/repo/tests/test_hmc.cc" "tests/CMakeFiles/sndp_tests.dir/test_hmc.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_hmc.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/sndp_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/sndp_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_memfunc.cc" "tests/CMakeFiles/sndp_tests.dir/test_memfunc.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_memfunc.cc.o.d"
  "/root/repo/tests/test_ndp_buffers.cc" "tests/CMakeFiles/sndp_tests.dir/test_ndp_buffers.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_ndp_buffers.cc.o.d"
  "/root/repo/tests/test_ndp_extensions.cc" "tests/CMakeFiles/sndp_tests.dir/test_ndp_extensions.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_ndp_extensions.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/sndp_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_nsu.cc" "tests/CMakeFiles/sndp_tests.dir/test_nsu.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_nsu.cc.o.d"
  "/root/repo/tests/test_scoreboard.cc" "tests/CMakeFiles/sndp_tests.dir/test_scoreboard.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_scoreboard.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/sndp_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_sm.cc" "tests/CMakeFiles/sndp_tests.dir/test_sm.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_sm.cc.o.d"
  "/root/repo/tests/test_target_selection.cc" "tests/CMakeFiles/sndp_tests.dir/test_target_selection.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_target_selection.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/sndp_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/sndp_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/sndp_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sndp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
