# Empty dependencies file for sndp_tests.
# This may be replaced when dependencies are built.
