# Empty dependencies file for sec73_bigger_gpu.
# This may be replaced when dependencies are built.
