file(REMOVE_RECURSE
  "CMakeFiles/sec73_bigger_gpu.dir/sec73_bigger_gpu.cc.o"
  "CMakeFiles/sec73_bigger_gpu.dir/sec73_bigger_gpu.cc.o.d"
  "sec73_bigger_gpu"
  "sec73_bigger_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_bigger_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
