file(REMOVE_RECURSE
  "CMakeFiles/fig07_naive_ndp.dir/fig07_naive_ndp.cc.o"
  "CMakeFiles/fig07_naive_ndp.dir/fig07_naive_ndp.cc.o.d"
  "fig07_naive_ndp"
  "fig07_naive_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_naive_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
