# Empty compiler generated dependencies file for fig07_naive_ndp.
# This may be replaced when dependencies are built.
