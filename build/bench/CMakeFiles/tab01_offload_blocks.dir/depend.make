# Empty dependencies file for tab01_offload_blocks.
# This may be replaced when dependencies are built.
