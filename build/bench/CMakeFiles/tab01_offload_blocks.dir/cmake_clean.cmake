file(REMOVE_RECURSE
  "CMakeFiles/tab01_offload_blocks.dir/tab01_offload_blocks.cc.o"
  "CMakeFiles/tab01_offload_blocks.dir/tab01_offload_blocks.cc.o.d"
  "tab01_offload_blocks"
  "tab01_offload_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_offload_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
