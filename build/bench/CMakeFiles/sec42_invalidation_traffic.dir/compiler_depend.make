# Empty compiler generated dependencies file for sec42_invalidation_traffic.
# This may be replaced when dependencies are built.
