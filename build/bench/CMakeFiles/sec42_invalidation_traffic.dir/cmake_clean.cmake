file(REMOVE_RECURSE
  "CMakeFiles/sec42_invalidation_traffic.dir/sec42_invalidation_traffic.cc.o"
  "CMakeFiles/sec42_invalidation_traffic.dir/sec42_invalidation_traffic.cc.o.d"
  "sec42_invalidation_traffic"
  "sec42_invalidation_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_invalidation_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
