# Empty dependencies file for sec75_hw_overhead.
# This may be replaced when dependencies are built.
