file(REMOVE_RECURSE
  "CMakeFiles/sec75_hw_overhead.dir/sec75_hw_overhead.cc.o"
  "CMakeFiles/sec75_hw_overhead.dir/sec75_hw_overhead.cc.o.d"
  "sec75_hw_overhead"
  "sec75_hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec75_hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
