# Empty dependencies file for tab02_configuration.
# This may be replaced when dependencies are built.
