file(REMOVE_RECURSE
  "CMakeFiles/tab02_configuration.dir/tab02_configuration.cc.o"
  "CMakeFiles/tab02_configuration.dir/tab02_configuration.cc.o.d"
  "tab02_configuration"
  "tab02_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
