file(REMOVE_RECURSE
  "CMakeFiles/sec76_nsu_frequency.dir/sec76_nsu_frequency.cc.o"
  "CMakeFiles/sec76_nsu_frequency.dir/sec76_nsu_frequency.cc.o.d"
  "sec76_nsu_frequency"
  "sec76_nsu_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec76_nsu_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
