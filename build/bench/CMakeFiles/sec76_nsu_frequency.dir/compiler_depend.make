# Empty compiler generated dependencies file for sec76_nsu_frequency.
# This may be replaced when dependencies are built.
