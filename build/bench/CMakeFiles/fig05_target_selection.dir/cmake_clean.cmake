file(REMOVE_RECURSE
  "CMakeFiles/fig05_target_selection.dir/fig05_target_selection.cc.o"
  "CMakeFiles/fig05_target_selection.dir/fig05_target_selection.cc.o.d"
  "fig05_target_selection"
  "fig05_target_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_target_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
