# Empty dependencies file for fig05_target_selection.
# This may be replaced when dependencies are built.
