# Empty compiler generated dependencies file for sndp.
# This may be replaced when dependencies are built.
