
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/sndp.dir/common/config.cc.o" "gcc" "src/CMakeFiles/sndp.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/sndp.dir/common/log.cc.o" "gcc" "src/CMakeFiles/sndp.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/sndp.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/sndp.dir/common/stats.cc.o.d"
  "/root/repo/src/ctrl/cache_aware.cc" "src/CMakeFiles/sndp.dir/ctrl/cache_aware.cc.o" "gcc" "src/CMakeFiles/sndp.dir/ctrl/cache_aware.cc.o.d"
  "/root/repo/src/ctrl/governor.cc" "src/CMakeFiles/sndp.dir/ctrl/governor.cc.o" "gcc" "src/CMakeFiles/sndp.dir/ctrl/governor.cc.o.d"
  "/root/repo/src/ctrl/hill_climb.cc" "src/CMakeFiles/sndp.dir/ctrl/hill_climb.cc.o" "gcc" "src/CMakeFiles/sndp.dir/ctrl/hill_climb.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/sndp.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/sndp.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/gpu/buffer_manager.cc" "src/CMakeFiles/sndp.dir/gpu/buffer_manager.cc.o" "gcc" "src/CMakeFiles/sndp.dir/gpu/buffer_manager.cc.o.d"
  "/root/repo/src/gpu/coalescer.cc" "src/CMakeFiles/sndp.dir/gpu/coalescer.cc.o" "gcc" "src/CMakeFiles/sndp.dir/gpu/coalescer.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/sndp.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/sndp.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/scoreboard.cc" "src/CMakeFiles/sndp.dir/gpu/scoreboard.cc.o" "gcc" "src/CMakeFiles/sndp.dir/gpu/scoreboard.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/CMakeFiles/sndp.dir/gpu/sm.cc.o" "gcc" "src/CMakeFiles/sndp.dir/gpu/sm.cc.o.d"
  "/root/repo/src/gpu/warp.cc" "src/CMakeFiles/sndp.dir/gpu/warp.cc.o" "gcc" "src/CMakeFiles/sndp.dir/gpu/warp.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/sndp.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/sndp.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/sndp.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/sndp.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/sndp.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/sndp.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/address_map.cc" "src/CMakeFiles/sndp.dir/mem/address_map.cc.o" "gcc" "src/CMakeFiles/sndp.dir/mem/address_map.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/sndp.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/sndp.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/sndp.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/sndp.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hmc.cc" "src/CMakeFiles/sndp.dir/mem/hmc.cc.o" "gcc" "src/CMakeFiles/sndp.dir/mem/hmc.cc.o.d"
  "/root/repo/src/mem/vault.cc" "src/CMakeFiles/sndp.dir/mem/vault.cc.o" "gcc" "src/CMakeFiles/sndp.dir/mem/vault.cc.o.d"
  "/root/repo/src/memfunc/global_memory.cc" "src/CMakeFiles/sndp.dir/memfunc/global_memory.cc.o" "gcc" "src/CMakeFiles/sndp.dir/memfunc/global_memory.cc.o.d"
  "/root/repo/src/ndp/ndp_buffers.cc" "src/CMakeFiles/sndp.dir/ndp/ndp_buffers.cc.o" "gcc" "src/CMakeFiles/sndp.dir/ndp/ndp_buffers.cc.o.d"
  "/root/repo/src/ndp/nsu.cc" "src/CMakeFiles/sndp.dir/ndp/nsu.cc.o" "gcc" "src/CMakeFiles/sndp.dir/ndp/nsu.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/sndp.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/sndp.dir/noc/link.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/sndp.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/sndp.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/CMakeFiles/sndp.dir/noc/packet.cc.o" "gcc" "src/CMakeFiles/sndp.dir/noc/packet.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/sndp.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/sndp.dir/noc/router.cc.o.d"
  "/root/repo/src/offload/analyzer.cc" "src/CMakeFiles/sndp.dir/offload/analyzer.cc.o" "gcc" "src/CMakeFiles/sndp.dir/offload/analyzer.cc.o.d"
  "/root/repo/src/offload/codegen.cc" "src/CMakeFiles/sndp.dir/offload/codegen.cc.o" "gcc" "src/CMakeFiles/sndp.dir/offload/codegen.cc.o.d"
  "/root/repo/src/offload/dataflow.cc" "src/CMakeFiles/sndp.dir/offload/dataflow.cc.o" "gcc" "src/CMakeFiles/sndp.dir/offload/dataflow.cc.o.d"
  "/root/repo/src/offload/target_selection.cc" "src/CMakeFiles/sndp.dir/offload/target_selection.cc.o" "gcc" "src/CMakeFiles/sndp.dir/offload/target_selection.cc.o.d"
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/sndp.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/sndp.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/sndp.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/sndp.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/sndp.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/sndp.dir/sim/trace.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/sndp.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/bicg.cc" "src/CMakeFiles/sndp.dir/workloads/bicg.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/bicg.cc.o.d"
  "/root/repo/src/workloads/bprop.cc" "src/CMakeFiles/sndp.dir/workloads/bprop.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/bprop.cc.o.d"
  "/root/repo/src/workloads/fwt.cc" "src/CMakeFiles/sndp.dir/workloads/fwt.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/fwt.cc.o.d"
  "/root/repo/src/workloads/kmn.cc" "src/CMakeFiles/sndp.dir/workloads/kmn.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/kmn.cc.o.d"
  "/root/repo/src/workloads/minife.cc" "src/CMakeFiles/sndp.dir/workloads/minife.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/minife.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/sndp.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/sp.cc" "src/CMakeFiles/sndp.dir/workloads/sp.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/sp.cc.o.d"
  "/root/repo/src/workloads/stcl.cc" "src/CMakeFiles/sndp.dir/workloads/stcl.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/stcl.cc.o.d"
  "/root/repo/src/workloads/stn.cc" "src/CMakeFiles/sndp.dir/workloads/stn.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/stn.cc.o.d"
  "/root/repo/src/workloads/vadd.cc" "src/CMakeFiles/sndp.dir/workloads/vadd.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/vadd.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/sndp.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/sndp.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
