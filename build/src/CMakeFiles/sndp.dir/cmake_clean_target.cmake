file(REMOVE_RECURSE
  "libsndp.a"
)
