file(REMOVE_RECURSE
  "CMakeFiles/sndpsim.dir/sndpsim.cpp.o"
  "CMakeFiles/sndpsim.dir/sndpsim.cpp.o.d"
  "sndpsim"
  "sndpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
