# Empty dependencies file for sndpsim.
# This may be replaced when dependencies are built.
