// Tests for the set-associative cache model with MSHRs.
#include <gtest/gtest.h>

#include "mem/cache.h"

namespace sndp {
namespace {

CacheConfig small_cfg() {
  CacheConfig c;
  c.size_bytes = 2048;  // 4 sets x 4 ways x 128 B
  c.ways = 4;
  c.line_bytes = 128;
  c.mshr_entries = 4;
  return c;
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_cfg(), "t");
  EXPECT_EQ(cache.access_read(0x0, 1), CacheAccessResult::kMissNew);
  cache.fill(0x0);
  EXPECT_EQ(cache.access_read(0x0, 2), CacheAccessResult::kHit);
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.misses, 1u);
}

TEST(Cache, MshrMergesSameLine) {
  Cache cache(small_cfg(), "t");
  EXPECT_EQ(cache.access_read(0x100, 10), CacheAccessResult::kMissNew);
  EXPECT_EQ(cache.access_read(0x100, 11), CacheAccessResult::kMissMerged);
  EXPECT_EQ(cache.access_read(0x100, 12), CacheAccessResult::kMissMerged);
  auto waiters = cache.fill(0x100);
  ASSERT_EQ(waiters.size(), 3u);
  EXPECT_EQ(waiters[0], 10u);
  EXPECT_EQ(waiters[1], 11u);
  EXPECT_EQ(waiters[2], 12u);
}

TEST(Cache, MshrFullStalls) {
  Cache cache(small_cfg(), "t");
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(cache.access_read(0x1000 * (i + 1), i), CacheAccessResult::kMissNew);
  }
  EXPECT_EQ(cache.mshr_free(), 0u);
  EXPECT_EQ(cache.access_read(0x9000, 99), CacheAccessResult::kMshrFull);
  EXPECT_EQ(cache.mshr_stalls, 1u);
  cache.fill(0x1000);
  EXPECT_EQ(cache.mshr_free(), 1u);
  EXPECT_EQ(cache.access_read(0x9000, 99), CacheAccessResult::kMissNew);
}

TEST(Cache, LruEvictionOrder) {
  CacheConfig cfg = small_cfg();
  Cache cache(cfg, "t");
  // 4 sets: line k * 0x200 maps to set 0 for every k.
  for (unsigned k = 0; k < 4; ++k) {
    cache.access_read(k * 0x200, k);
    cache.fill(k * 0x200);
  }
  // Touch line 0 so line 0x200 becomes LRU.
  EXPECT_EQ(cache.access_read(0x0, 9), CacheAccessResult::kHit);
  // Insert a 5th line into set 0: must evict 0x200 (LRU), not 0x0.
  cache.access_read(4 * 0x200, 5);
  cache.fill(4 * 0x200);
  EXPECT_EQ(cache.evictions, 1u);
  EXPECT_EQ(cache.access_read(0x0, 9), CacheAccessResult::kHit);
  EXPECT_EQ(cache.access_read(0x200, 9), CacheAccessResult::kMissNew);
}

TEST(Cache, ProbeDoesNotAllocateMshr) {
  Cache cache(small_cfg(), "t");
  EXPECT_FALSE(cache.probe(0x300));
  EXPECT_EQ(cache.mshr_free(), 4u);
  cache.access_read(0x300, 1);
  cache.fill(0x300);
  EXPECT_TRUE(cache.probe(0x300));
}

TEST(Cache, WriteTouchNoAllocate) {
  Cache cache(small_cfg(), "t");
  EXPECT_FALSE(cache.write_touch(0x80));  // miss: no allocation
  EXPECT_EQ(cache.access_read(0x80, 1), CacheAccessResult::kMissNew);
  cache.fill(0x80);
  EXPECT_TRUE(cache.write_touch(0x80));
  EXPECT_EQ(cache.write_hits, 1u);
  EXPECT_EQ(cache.write_misses, 1u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache cache(small_cfg(), "t");
  cache.access_read(0x400, 1);
  cache.fill(0x400);
  EXPECT_TRUE(cache.invalidate(0x400));
  EXPECT_FALSE(cache.invalidate(0x400));  // already gone
  EXPECT_EQ(cache.access_read(0x400, 2), CacheAccessResult::kMissNew);
}

TEST(Cache, FillWithoutMshrInstallsLine) {
  // Fills may arrive for lines without waiters (e.g. after invalidation).
  Cache cache(small_cfg(), "t");
  EXPECT_TRUE(cache.fill(0x500).empty());
  EXPECT_EQ(cache.access_read(0x500, 1), CacheAccessResult::kHit);
}

TEST(Cache, StatsExport) {
  Cache cache(small_cfg(), "l1");
  cache.access_read(0x0, 1);
  cache.fill(0x0);
  cache.access_read(0x0, 1);
  StatSet stats;
  cache.export_stats(stats);
  EXPECT_DOUBLE_EQ(stats.get("l1.hits"), 1.0);
  EXPECT_DOUBLE_EQ(stats.get("l1.misses"), 1.0);
}

// Property-style sweep: for any geometry, filling 2N distinct lines that
// map to the same set keeps exactly `ways` residents (the rest evict), and
// the most-recently-filled lines survive.
class CacheGeometry : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(CacheGeometry, SetBoundedResidencyAndCounts) {
  const auto [ways, sets] = GetParam();
  CacheConfig cfg;
  cfg.line_bytes = 128;
  cfg.ways = ways;
  cfg.size_bytes = static_cast<std::uint64_t>(ways) * sets * 128;
  cfg.mshr_entries = 64;
  Cache cache(cfg, "t");
  ASSERT_EQ(cfg.num_sets(), sets);

  const unsigned n = 2 * ways;
  for (unsigned k = 0; k < n; ++k) {
    const Addr line = static_cast<Addr>(k) * sets * 128;
    EXPECT_EQ(cache.access_read(line, k), CacheAccessResult::kMissNew);
    cache.fill(line);
  }
  EXPECT_EQ(cache.evictions, n - ways);
  for (unsigned k = n - ways; k < n; ++k) {
    EXPECT_TRUE(cache.probe(static_cast<Addr>(k) * sets * 128));
  }
  EXPECT_EQ(cache.hits + cache.misses, n + ways);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                                            ::testing::Values(4u, 64u, 512u)));

}  // namespace
}  // namespace sndp
