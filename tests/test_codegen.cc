// Tests for offload code generation (§3.2, Fig. 3).
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "offload/codegen.h"

namespace sndp {
namespace {

Program vadd_like() {
  return assemble(R"(
    MOVI R16, 0x10000
    MOVI R17, 0x20000
    MOVI R18, 0x30000
    IMAD R8, R0, 8, R16
    IMAD R9, R0, 8, R17
    IMAD R10, R0, 8, R18
    LD   R11, [R8+0]
    LD   R12, [R9+0]
    FADD R13, R11, R12
    ST   [R10+0], R13
    EXIT
  )");
}

TEST(Codegen, MarkersBracketTheBlock) {
  const KernelImage img = analyze_and_generate(vadd_like());
  ASSERT_EQ(img.blocks.size(), 1u);
  const OffloadBlockInfo& b = img.blocks[0];
  EXPECT_EQ(img.gpu.at(b.gpu_begin).op, Opcode::kOfldBeg);
  EXPECT_EQ(img.gpu.at(b.gpu_end).op, Opcode::kOfldEnd);
  EXPECT_EQ(img.gpu.at(b.gpu_begin).imm, 0);
  EXPECT_EQ(b.body_size(), 4u);  // LD LD FADD ST
  EXPECT_NO_THROW(img.gpu.validate());
  EXPECT_NO_THROW(img.nsu.validate());
}

TEST(Codegen, NsuCodeExcludesAddressCalc) {
  const KernelImage img = analyze_and_generate(vadd_like());
  const OffloadBlockInfo& b = img.blocks[0];
  // NSU program: OFLD.BEG, LD, LD, FADD, ST, OFLD.END.
  EXPECT_EQ(img.nsu.at(b.nsu_entry).op, Opcode::kOfldBeg);
  EXPECT_EQ(img.nsu.at(b.nsu_entry + 1).op, Opcode::kLd);
  EXPECT_EQ(img.nsu.at(b.nsu_entry + 2).op, Opcode::kLd);
  EXPECT_EQ(img.nsu.at(b.nsu_entry + 3).op, Opcode::kFAdd);
  EXPECT_EQ(img.nsu.at(b.nsu_entry + 4).op, Opcode::kSt);
  EXPECT_EQ(img.nsu.at(b.nsu_entry + 5).op, Opcode::kOfldEnd);
  EXPECT_EQ(b.nsu_inst_count, 4u);
  for (const Instr& in : img.nsu.code()) {
    EXPECT_NE(in.op, Opcode::kIMad) << "address calculation leaked into NSU code";
    EXPECT_NE(in.op, Opcode::kMovI);
  }
}

TEST(Codegen, GpuInstructionsKeepRolesStamped) {
  const KernelImage img = analyze_and_generate(vadd_like());
  const OffloadBlockInfo& b = img.blocks[0];
  unsigned on_nsu_count = 0;
  for (unsigned i = b.gpu_begin + 1; i < b.gpu_end; ++i) {
    if (img.gpu.at(i).on_nsu) ++on_nsu_count;
  }
  EXPECT_EQ(on_nsu_count, 1u);  // the FADD
}

TEST(Codegen, BranchTargetsRemappedAroundInsertions) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    MOV  R7, R0
  loop:
    IMAD R8, R7, 8, R16
    LD   R10, [R8+0]
    FADD R11, R10, R10
    ST   [R8+0], R11
    IADD R7, R7, R1
    ISETP P0, LT, R7, R6
    @P0 BRA loop
    EXIT
  )");
  const KernelImage img = analyze_and_generate(p);
  ASSERT_EQ(img.blocks.size(), 1u);
  // Find the branch in the GPU program and check it still points at the
  // IMAD (the loop head), i.e. the old target shifted by the insertions.
  const Instr* bra = nullptr;
  for (const Instr& in : img.gpu.code()) {
    if (in.op == Opcode::kBra) bra = &in;
  }
  ASSERT_NE(bra, nullptr);
  EXPECT_EQ(img.gpu.at(static_cast<unsigned>(bra->target)).op, Opcode::kIMad);
  EXPECT_NO_THROW(img.gpu.validate());
}

TEST(Codegen, BranchToBlockStartLandsOnMarker) {
  // When a block starts exactly at a branch target, the branch must land on
  // the OFLD.BEG so the offload decision is made every iteration.
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    MOV  R7, R0
  loop:
    LD   R10, [R16+0]
    FADD R11, R10, R10
    ST   [R16+0], R11
    IADD R7, R7, R1
    ISETP P0, LT, R7, R6
    @P0 BRA loop
    EXIT
  )");
  const KernelImage img = analyze_and_generate(p);
  ASSERT_EQ(img.blocks.size(), 1u);
  const Instr* bra = nullptr;
  for (const Instr& in : img.gpu.code()) {
    if (in.op == Opcode::kBra) bra = &in;
  }
  ASSERT_NE(bra, nullptr);
  EXPECT_EQ(img.gpu.at(static_cast<unsigned>(bra->target)).op, Opcode::kOfldBeg);
}

TEST(Codegen, MultipleBlocksNumberedInOrder) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    LD   R10, [R16+0]
    FADD R11, R10, R10
    ST   [R16+0], R11
    BAR
    LD   R12, [R16+64]
    FADD R13, R12, R12
    ST   [R16+64], R13
    EXIT
  )");
  const KernelImage img = analyze_and_generate(p);
  ASSERT_EQ(img.blocks.size(), 2u);
  EXPECT_EQ(img.blocks[0].block_id, 0u);
  EXPECT_EQ(img.blocks[1].block_id, 1u);
  EXPECT_LT(img.blocks[0].gpu_end, img.blocks[1].gpu_begin);
  EXPECT_LT(img.blocks[0].nsu_entry, img.blocks[1].nsu_entry);
  // Each NSU block region ends with OFLD.END before the next begins.
  EXPECT_EQ(img.nsu.at(img.blocks[1].nsu_entry).op, Opcode::kOfldBeg);
}

TEST(Codegen, OverlappingBlocksRejected) {
  const Program p = vadd_like();
  AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  std::vector<BlockCandidate> bad = {r.accepted[0], r.accepted[0]};
  EXPECT_THROW(generate(p, bad), std::invalid_argument);
}

TEST(Codegen, NoBlocksPassesThrough) {
  const Program p = assemble("IADD R1, R0, 1\nEXIT\n");
  const KernelImage img = analyze_and_generate(p);
  EXPECT_EQ(img.blocks.size(), 0u);
  EXPECT_EQ(img.gpu.size(), p.size());
  EXPECT_EQ(img.nsu.size(), 0u);
}

}  // namespace
}  // namespace sndp
