// Tests for routing, links (virtual channels), and the network fabric.
#include <gtest/gtest.h>
#include <bit>

#include "noc/link.h"
#include "noc/network.h"
#include "noc/packet.h"
#include "noc/router.h"

namespace sndp {
namespace {

TEST(Hypercube, DistanceIsPopcount) {
  EXPECT_EQ(hypercube_distance(0, 0), 0u);
  EXPECT_EQ(hypercube_distance(0, 7), 3u);
  EXPECT_EQ(hypercube_distance(5, 6), 2u);
}

TEST(Hypercube, RouteEndpointsAndLength) {
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      const auto path = hypercube_route(a, b);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(path.size(), hypercube_distance(a, b) + 1);
      // Property: each hop flips exactly one bit, lowest-first (dimension
      // order).
      unsigned last_dim = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const unsigned diff = path[i] ^ path[i + 1];
        EXPECT_EQ(diff & (diff - 1), 0u) << "hop flips more than one bit";
        const unsigned dim = static_cast<unsigned>(std::countr_zero(diff));
        if (i > 0) {
          EXPECT_GT(dim, last_dim);
        }
        last_dim = dim;
      }
    }
  }
}

TEST(Hypercube, Dimensions) {
  EXPECT_EQ(hypercube_dimensions(1), 0u);
  EXPECT_EQ(hypercube_dimensions(8), 3u);
  EXPECT_EQ(hypercube_dimensions(16), 4u);
  // Non-powers-of-two embed in the enclosing cube.
  EXPECT_EQ(hypercube_dimensions(3), 2u);
  EXPECT_EQ(hypercube_dimensions(5), 3u);
  EXPECT_EQ(hypercube_dimensions(6), 3u);
  EXPECT_EQ(hypercube_dimensions(7), 3u);
}

TEST(Hypercube, IncompleteRouteStaysInsideTheNodeSet) {
  // Every (a, b) pair of every incomplete cube: the route's endpoints are
  // right, every hop flips exactly one bit (a real cube edge), and — the
  // property plain dimension-order routing violates (6 -> 1 visits 7 in a
  // 7-node cube) — every intermediate node exists.
  for (unsigned n : {3u, 5u, 6u, 7u}) {
    for (unsigned a = 0; a < n; ++a) {
      for (unsigned b = 0; b < n; ++b) {
        const auto path = incomplete_hypercube_route(a, b, n);
        ASSERT_GE(path.size(), 1u);
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const unsigned diff = path[i] ^ path[i + 1];
          EXPECT_NE(diff, 0u) << "null hop";
          EXPECT_EQ(diff & (diff - 1), 0u) << "hop flips more than one bit";
        }
        for (unsigned node : path) {
          EXPECT_LT(node, n) << "route " << a << "->" << b << " in " << n
                             << "-node cube leaves the node set";
        }
      }
    }
  }
}

TEST(Hypercube, IncompleteRouteMatchesDistanceWhenDirectPathExists) {
  // Descend-then-ascend never takes more hops than popcount(a ^ b) plus the
  // detour bits, and collapses to the direct route when a and b are cube
  // neighbours.
  const auto path = incomplete_hypercube_route(4, 5, 6);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 4u);
  EXPECT_EQ(path[1], 5u);
  // 6 -> 1 must detour (direct dimension-order passes through 7): descend
  // 6 -> 4 -> 0, then ascend 0 -> 1.
  const auto detour = incomplete_hypercube_route(6, 1, 7);
  EXPECT_EQ(detour.front(), 6u);
  EXPECT_EQ(detour.back(), 1u);
  for (unsigned node : detour) EXPECT_LT(node, 7u);
}

TEST(Link, SerializationAndPropagation) {
  Link link(20.0, 3000);
  // 100 B at 20 GB/s = 5000 ps on the wire.
  EXPECT_EQ(link.transmit(0, 100), 8000u);
  EXPECT_EQ(link.free_at(), 5000u);
  // Back-to-back: second waits for the wire.
  EXPECT_EQ(link.transmit(0, 100), 13000u);
  EXPECT_EQ(link.bytes_transmitted(), 200u);
}

TEST(Link, UrgentPreemptsBulkBacklog) {
  Link link(20.0, 0);
  link.transmit(0, 100000);  // 5 us of bulk backlog
  const TimePs urgent = link.transmit(0, 10, LinkTier::kUrgent);
  EXPECT_EQ(urgent, 500u);  // only its own serialization
  // The bulk channel was pushed back by the urgent packet.
  EXPECT_GE(link.free_at(), 5000000u + 500u);
}

TEST(Link, ControlWaitsBehindControlOnly) {
  Link link(20.0, 0);
  link.transmit(0, 100000);                        // bulk
  link.transmit(0, 100, LinkTier::kControl);       // 5000 ps
  const TimePs second = link.transmit(0, 100, LinkTier::kControl);
  EXPECT_EQ(second, 10000u);  // behind first control, not behind bulk
}

TEST(Link, TierOrderingUrgentAboveControl) {
  Link link(20.0, 0);
  link.transmit(0, 1000, LinkTier::kControl);  // 50 us... 50000 ps
  const TimePs urgent = link.transmit(0, 10, LinkTier::kUrgent);
  EXPECT_EQ(urgent, 500u);
}

TEST(Network, GpuToHmcDirectLink) {
  const SystemConfig cfg = SystemConfig::paper();
  Network net(cfg);
  Packet p;
  p.type = PacketType::kMemRead;
  p.src_node = static_cast<std::uint16_t>(net.gpu_node());
  p.dst_node = 3;
  p.size_bytes = 16;
  const TimePs arrival = net.send(p, 1000);
  EXPECT_GT(arrival, 1000u);
  EXPECT_EQ(net.gpu_up_bytes(), 16u);
  EXPECT_EQ(net.cube_bytes(), 0u);
  ASSERT_TRUE(net.rx(3).ready(arrival));
  EXPECT_EQ(net.rx(3).front().type, PacketType::kMemRead);
}

TEST(Network, HmcToHmcUsesCubeLinksPerHop) {
  const SystemConfig cfg = SystemConfig::paper();
  Network net(cfg);
  Packet p;
  p.type = PacketType::kRdfResp;
  p.src_node = 0;
  p.dst_node = 7;  // 3 hops
  p.size_bytes = 100;
  net.send(p, 0);
  EXPECT_EQ(net.cube_bytes(), 300u);  // per-hop accounting
  EXPECT_EQ(net.gpu_up_bytes(), 0u);
  EXPECT_EQ(net.gpu_down_bytes(), 0u);
}

TEST(Network, MoreHopsTakeLonger) {
  const SystemConfig cfg = SystemConfig::paper();
  Network net1(cfg), net3(cfg);
  Packet p;
  p.type = PacketType::kRdfResp;
  p.size_bytes = 64;
  p.src_node = 0;
  p.dst_node = 1;  // 1 hop
  const TimePs t1 = net1.send(p, 0);
  p.dst_node = 7;  // 3 hops
  const TimePs t3 = net3.send(p, 0);
  EXPECT_GT(t3, t1);
}

TEST(Network, RejectsBadEndpoints) {
  Network net(SystemConfig::paper());
  Packet p;
  p.src_node = 2;
  p.dst_node = 2;
  EXPECT_THROW(net.send(p, 0), std::logic_error);
  p.dst_node = 99;
  EXPECT_THROW(net.send(p, 0), std::logic_error);
}

TEST(Network, TrafficAccountingByType) {
  Network net(SystemConfig::paper());
  Packet p;
  p.type = PacketType::kCacheInval;
  p.src_node = 1;
  p.dst_node = static_cast<std::uint16_t>(net.gpu_node());
  p.size_bytes = 16;
  net.send(p, 0);
  net.send(p, 100);
  EXPECT_EQ(net.bytes_by_type().at(PacketType::kCacheInval), 32u);
  EXPECT_EQ(net.gpu_down_bytes(), 32u);
  StatSet stats;
  net.export_stats(stats);
  EXPECT_DOUBLE_EQ(stats.get("net.bytes.INVAL"), 32.0);
}

TEST(Network, IdleAfterDrain) {
  Network net(SystemConfig::paper());
  EXPECT_TRUE(net.idle());
  Packet p;
  p.type = PacketType::kMemRead;
  p.src_node = static_cast<std::uint16_t>(net.gpu_node());
  p.dst_node = 0;
  p.size_bytes = 16;
  const TimePs arrival = net.send(p, 0);
  EXPECT_FALSE(net.idle());
  ASSERT_TRUE(net.rx(0).pop_ready(arrival).has_value());
  EXPECT_TRUE(net.idle());
}

TEST(PacketSizes, MatchFigure4Fields) {
  // CMD: hdr(8) + oid(4) + PC(8) + mask(4) + target(1) [+ regs + preds].
  EXPECT_EQ(cmd_packet_bytes(0, 32, false), 25u);
  EXPECT_EQ(cmd_packet_bytes(1, 32, false), 25u + 8 * 32);
  EXPECT_EQ(cmd_packet_bytes(0, 32, true), 25u + 32);
  // RDF/WTA: hdr + oid + addr + mask + target [+ per-lane offsets].
  EXPECT_EQ(rdf_wta_packet_bytes(32, false), 25u);
  EXPECT_EQ(rdf_wta_packet_bytes(32, true), 25u + 32);
  // RDF response: hdr + oid + addr + mask + only touched words.
  EXPECT_EQ(rdf_resp_packet_bytes(4, 8), 24u + 32);
  EXPECT_EQ(mem_read_resp_bytes(), 8u + 128);
  EXPECT_EQ(mem_write_req_bytes(64), 8u + 8 + 4 + 64);
  EXPECT_LT(small_packet_bytes(), 16u + 1);
}

TEST(PacketClasses, TierAssignments) {
  EXPECT_TRUE(is_urgent_packet(PacketType::kOfldCmd));
  EXPECT_TRUE(is_urgent_packet(PacketType::kOfldAck));
  EXPECT_TRUE(is_urgent_packet(PacketType::kCredit));
  EXPECT_FALSE(is_urgent_packet(PacketType::kRdf));
  EXPECT_TRUE(is_control_packet(PacketType::kRdf));
  EXPECT_TRUE(is_control_packet(PacketType::kMemRead));
  EXPECT_FALSE(is_control_packet(PacketType::kMemReadResp));
  EXPECT_FALSE(is_control_packet(PacketType::kNsuWrite));
}

}  // namespace
}  // namespace sndp
