// Cycle-stack profiler tests (src/obs/cycle_stack.*; ctest label:
// integration — every case is an end-to-end simulator run).
//
//  * Sum-to-runtime: for every Table-1 workload and operator kernel, under
//    fast-forward on/off × 1/2 time partitions, the machine SM stack must
//    cover every consumed SM edge of every SM, the bucket groups must
//    reproduce the legacy Fig. 8 stall counters, and the stacks must be
//    bit-identical across all four stepping modes.  (Per-component
//    sum==counted is additionally enforced by StatsAudit on each of these
//    runs — a violation throws out of Simulator::run.)
//
//  * Tenant partition: on multi-tenant runs under every CTA arbiter, the
//    tenant rows plus the shared row partition each machine bucket total,
//    and each tenant's issue row equals its issued-instruction counter.
//
//  * Zero-cost disable: with SystemConfig::profile off, the stat set is
//    byte-identical to the profiled run minus the cyc.* keys, and no bucket
//    row exists at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sndp.h"

namespace sndp {
namespace {

SystemConfig tiny_cfg() {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = OffloadMode::kDynamicCache;
  cfg.governor.epoch_cycles = 1000;  // scaled epoch (EXPERIMENTS.md)
  return cfg;
}

RunResult run_tiny(const std::string& wl, const SystemConfig& cfg) {
  auto w = make_workload(wl, ProblemScale::kTiny);
  RunResult r = Simulator(cfg).run(*w);
  EXPECT_TRUE(r.completed) << wl;
  EXPECT_TRUE(r.verified) << wl;
  return r;
}

void expect_stacks_equal(const CycleStackSummary& a, const CycleStackSummary& b,
                         const std::string& what) {
  EXPECT_EQ(a.enabled, b.enabled) << what;
  EXPECT_EQ(a.sm.rows, b.sm.rows) << what << ": sm stack diverged";
  EXPECT_EQ(a.nsu.rows, b.nsu.rows) << what << ": nsu stack diverged";
  EXPECT_EQ(a.vault.rows, b.vault.rows) << what << ": vault stack diverged";
}

TEST(CycleStack, SumToRuntimeAllWorkloadsAllModes) {
  for (const std::string& wl : all_workload_names()) {
    SystemConfig base = tiny_cfg();
    const RunResult r = run_tiny(wl, base);
    ASSERT_TRUE(r.cycle_stack.enabled) << wl;

    // Exhaustiveness: the SM stack covers every consumed SM edge (cycles
    // 0..sm_cycles inclusive) of every SM — nothing dropped, nothing
    // double-counted.
    const std::uint64_t edges_per_sm = static_cast<std::uint64_t>(r.sm_cycles) + 1;
    EXPECT_EQ(r.cycle_stack.sm.total(), base.num_sms * edges_per_sm) << wl;

    // The bucket groups reproduce the legacy Fig. 8 counters exactly.
    std::uint64_t exec = 0, dep = 0, idle = 0;
    for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
      const std::uint64_t n = r.cycle_stack.sm.bucket_total(b);
      switch (sm_bucket_group(static_cast<SmBucket>(b))) {
        case SmBucketGroup::kExecBusy: exec += n; break;
        case SmBucketGroup::kDep: dep += n; break;
        case SmBucketGroup::kWarpIdle: idle += n; break;
        case SmBucketGroup::kIssue:
        case SmBucketGroup::kNoWarp: break;
      }
    }
    EXPECT_EQ(exec, r.stall_exec_busy) << wl;
    EXPECT_EQ(dep, r.stall_dependency) << wl;
    EXPECT_EQ(idle, r.stall_warp_idle) << wl;
    // All retroactive dep attributions resolved by the end of a drained run.
    EXPECT_EQ(r.cycle_stack.sm.bucket_total(
                  static_cast<std::size_t>(SmBucket::kDepPending)),
              0u)
        << wl;

    // Bit-identity across stepping modes: fast-forward off, and sharded
    // across two time partitions, each must reproduce the same stacks.
    SystemConfig noff = base;
    noff.fast_forward = false;
    expect_stacks_equal(r.cycle_stack, run_tiny(wl, noff).cycle_stack,
                        wl + " ff-off");
    SystemConfig part2 = base;
    part2.parallel_partitions = 2;
    expect_stacks_equal(r.cycle_stack, run_tiny(wl, part2).cycle_stack,
                        wl + " partitions=2");
  }
}

TEST(CycleStack, TenantRowsPartitionTotalsUnderEveryArbiter) {
  for (TenantArbiter arb : {TenantArbiter::kRoundRobin, TenantArbiter::kWeightedShare,
                            TenantArbiter::kStrictPriority}) {
    SystemConfig cfg = tiny_cfg();
    cfg.tenancy.arbiter = arb;
    auto wl_a = make_workload("VADD", ProblemScale::kTiny);
    auto wl_b = make_workload("KMN", ProblemScale::kTiny);
    std::vector<TenantDesc> descs{{wl_a.get(), 2.0, 0}, {wl_b.get(), 1.0, 1}};
    const RunResult r = Simulator(cfg).run_tenants(descs, "VADD+KMN");
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.verified);
    ASSERT_TRUE(r.cycle_stack.enabled);
    ASSERT_EQ(r.cycle_stack.tenants, 2u);
    ASSERT_EQ(r.cycle_stack.sm.rows.size(), 3u);  // t0, t1, shared

    // Tenant rows + shared row partition every machine bucket total, for
    // every component stack.
    for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
      std::uint64_t rows = 0;
      for (const auto& row : r.cycle_stack.sm.rows) rows += row[b];
      EXPECT_EQ(rows, r.cycle_stack.sm.bucket_total(b));
    }
    // Each tenant's issue row is exactly its issued-instruction counter (no
    // cross-tenant bleed), and the shared row never issues.
    ASSERT_EQ(r.tenants.size(), 2u);
    const auto issue = static_cast<std::size_t>(SmBucket::kIssue);
    EXPECT_EQ(r.cycle_stack.sm.rows[0][issue], r.tenants[0].issued);
    EXPECT_EQ(r.cycle_stack.sm.rows[1][issue], r.tenants[1].issued);
    EXPECT_EQ(r.cycle_stack.sm.rows[2][issue], 0u);
    // Idle/drained machine time lands on the shared row only.
    const auto drained = static_cast<std::size_t>(SmBucket::kDrained);
    EXPECT_EQ(r.cycle_stack.sm.rows[0][drained], 0u);
    EXPECT_EQ(r.cycle_stack.sm.rows[1][drained], 0u);
  }
}

TEST(CycleStack, DisabledProfilerIsZeroCostAndBitIdentical) {
  for (const std::string& wl : {std::string("VADD"), std::string("SPMV")}) {
    SystemConfig on_cfg = tiny_cfg();
    on_cfg.profile = true;
    const RunResult on = run_tiny(wl, on_cfg);
    SystemConfig off_cfg = tiny_cfg();
    off_cfg.profile = false;
    const RunResult off = run_tiny(wl, off_cfg);

    // Disabled: no summary, no rows, no cyc.* keys.
    EXPECT_FALSE(off.cycle_stack.enabled);
    EXPECT_TRUE(off.cycle_stack.sm.rows.empty());
    EXPECT_TRUE(off.cycle_stack.nsu.rows.empty());
    EXPECT_TRUE(off.cycle_stack.vault.rows.empty());
    for (const auto& [key, value] : off.stats.values()) {
      EXPECT_EQ(key.rfind("cyc.", 0), std::string::npos)
          << wl << ": disabled run exported " << key;
    }

    // The profiler observes, never perturbs: stripping the cyc.* keys from
    // the profiled run must leave the exact disabled-run stat set.
    // (audit.checks is the audit's own meter — the profiler legitimately
    // adds invariant checks, so that one key is compared by >= instead.)
    std::map<std::string, double> on_stats = on.stats.values();
    std::map<std::string, double> off_stats = off.stats.values();
    EXPECT_GE(on_stats["audit.checks"], off_stats["audit.checks"]) << wl;
    on_stats.erase("audit.checks");
    off_stats.erase("audit.checks");
    for (auto it = on_stats.begin(); it != on_stats.end();) {
      it = it->first.rfind("cyc.", 0) == 0 ? on_stats.erase(it) : std::next(it);
    }
    EXPECT_EQ(on_stats, off_stats) << wl;
    EXPECT_EQ(on.sm_cycles, off.sm_cycles) << wl;
    EXPECT_EQ(on.runtime_ps, off.runtime_ps) << wl;
  }
}

}  // namespace
}  // namespace sndp
