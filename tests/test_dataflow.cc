// Tests for the dataflow analyses behind offload-block identification.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "offload/dataflow.h"

namespace sndp {
namespace {

TEST(Dataflow, ReadWriteSets) {
  const Program p = assemble("IADD R3, R1, R2\nEXIT\n");
  const RegSet reads = read_set(p.at(0));
  EXPECT_TRUE(reads.test(1));
  EXPECT_TRUE(reads.test(2));
  EXPECT_FALSE(reads.test(3));
  EXPECT_TRUE(write_set(p.at(0)).test(3));
}

TEST(Dataflow, AddressSliceMarksChain) {
  const Program p = assemble(R"(
    MOVI R4, 4096
    IMAD R5, R0, 8, R4
    LD   R6, [R5+0]
    FADD R7, R6, R6
    ST   [R5+0], R7
    EXIT
  )");
  const auto slice = address_slice(p, 0, 5);
  EXPECT_TRUE(slice[0]);   // MOVI feeds the IMAD
  EXPECT_TRUE(slice[1]);   // IMAD computes the address
  EXPECT_FALSE(slice[2]);  // the LD itself is not ALU slice
  EXPECT_FALSE(slice[3]);  // value computation
}

TEST(Dataflow, AddressSliceScopedToRange) {
  const Program p = assemble(R"(
    MOVI R4, 4096
    IMAD R5, R0, 8, R4
    LD   R6, [R5+0]
    EXIT
  )");
  // Range starting after the IMAD: nothing in range feeds the address.
  const auto slice = address_slice(p, 2, 3);
  EXPECT_FALSE(slice[0]);
}

TEST(Dataflow, LoadDataConsumersPropagateTaint) {
  const Program p = assemble(R"(
    LD   R1, [R0+0]
    IADD R2, R1, 1
    IADD R3, R2, 1
    MOVI R2, 7
    IADD R4, R2, 1
    EXIT
  )");
  const auto consumers = load_data_consumers(p, 0, 5);
  EXPECT_FALSE(consumers[0]);  // the load itself
  EXPECT_TRUE(consumers[1]);   // reads R1
  EXPECT_TRUE(consumers[2]);   // reads tainted R2
  EXPECT_FALSE(consumers[3]);  // MOVI kills taint on R2
  EXPECT_FALSE(consumers[4]);  // reads clean R2
}

TEST(Dataflow, LivenessKillsOnRedefinition) {
  const Program p = assemble(R"(
    MOVI R1, 1
    MOVI R1, 2
    IADD R2, R1, R1
    EXIT
  )");
  // At point 1 (before the second MOVI), R1's value is dead (rewritten).
  EXPECT_FALSE(live_registers_at(p, 1).test(1));
  // At point 2 it is live (the IADD reads it).
  EXPECT_TRUE(live_registers_at(p, 2).test(1));
}

TEST(Dataflow, LivenessThroughLoopBackEdge) {
  const Program p = assemble(R"(
    MOVI R1, 0
  top:
    IADD R1, R1, 1
    ISETP P0, LT, R1, 10
    @P0 BRA top
    EXIT
  )");
  // R1 is live at the loop head (read by the IADD of the next iteration).
  EXPECT_TRUE(live_registers_at(p, 1).test(1));
  // ...and live at the point after the branch? No: nothing reads it later.
  EXPECT_FALSE(live_registers_at(p, 4).test(1));
}

TEST(Dataflow, GuardedWriteDoesNotKill) {
  const Program p = assemble(R"(
    MOVI R1, 1
    @P0 MOVI R1, 2
    IADD R2, R1, R1
    EXIT
  )");
  // The guarded MOVI may not execute, so R1 stays live across it.
  EXPECT_TRUE(live_registers_at(p, 1).test(1));
}

TEST(Dataflow, LiveOutsideOfRange) {
  const Program p = assemble(R"(
    LD   R1, [R0+0]
    FADD R2, R1, R1
    ST   [R0+0], R2
    FADD R3, R2, R2
    EXIT
  )");
  // R2 is read at 3 -> live at the end of block [0,3).
  EXPECT_TRUE(live_outside(p, 0, 3, 2));
  // R1 is not read after instruction 1.
  EXPECT_FALSE(live_outside(p, 0, 3, 1));
}

TEST(Dataflow, UnconditionalBranchHasNoFallthrough) {
  const Program p = assemble(R"(
    MOVI R1, 5
    BRA  skip
    IADD R2, R1, R1
  skip:
    EXIT
  )");
  // The IADD at index 2 is unreachable; R1 is not live at point 1's
  // successor chain through it.
  EXPECT_FALSE(live_registers_at(p, 3).test(1));
}

}  // namespace
}  // namespace sndp
