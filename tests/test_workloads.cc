// Tests for the workload generators: structural validity, analyzability,
// and oracle self-consistency.
#include <gtest/gtest.h>

#include "offload/codegen.h"
#include "ref/ref_interp.h"
#include "workloads/registry.h"
#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {
namespace {

TEST(Registry, AllTableOneWorkloadsPresent) {
  const auto& names = workload_names();
  ASSERT_EQ(names.size(), 10u);
  for (const auto& n : names) {
    auto wl = make_workload(n, ProblemScale::kTiny);
    EXPECT_EQ(wl->name(), n);
    EXPECT_FALSE(wl->description().empty());
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("NOPE", ProblemScale::kTiny), std::invalid_argument);
}

TEST(WlUtil, DeterministicValueAndIndex) {
  EXPECT_DOUBLE_EQ(wl::value(42, 7), wl::value(42, 7));
  EXPECT_NE(wl::value(42, 7), wl::value(43, 7));
  EXPECT_NE(wl::value(42, 7), wl::value(42, 8));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(wl::index(i, 100, 3), 100u);
    const double v = wl::value(i, 5);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

class WorkloadStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadStructure, BuildsValidAnalyzableKernel) {
  auto wl = make_workload(GetParam(), ProblemScale::kTiny);
  GlobalMemory mem;
  MemoryAllocator alloc;
  Rng rng(1);
  wl->setup(mem, alloc, rng);

  // Program structurally valid.
  EXPECT_NO_THROW(wl->program().validate());
  EXPECT_GT(wl->program().size(), 0u);
  // Ends reachable: last instruction is EXIT.
  EXPECT_EQ(wl->program().at(wl->program().size() - 1).op, Opcode::kExit);

  // Launch geometry is warp-aligned and non-empty.
  const LaunchParams& lp = wl->launch();
  EXPECT_GT(lp.num_ctas, 0u);
  EXPECT_EQ(lp.cta_threads % kWarpWidth, 0u);

  // Analyzer + codegen succeed and produce at least one offload block
  // (every Table 1 workload has some).
  const KernelImage img = analyze_and_generate(wl->program());
  EXPECT_GE(img.blocks.size(), 1u) << GetParam();
  for (const auto& b : img.blocks) {
    EXPECT_EQ(img.gpu.at(b.gpu_begin).op, Opcode::kOfldBeg);
    EXPECT_EQ(img.gpu.at(b.gpu_end).op, Opcode::kOfldEnd);
    EXPECT_GT(b.nsu_inst_count, 0u);
    EXPECT_LE(b.num_loads, 64u);
    EXPECT_LE(b.num_stores, 64u);
  }

  // Fresh memory fails verification (outputs not yet computed) — guards
  // against vacuous oracles.  KMN is excluded: (x-1)^2 can be 0 for x==1
  // only, so unwritten zeros... actually zero output requires x==1: the
  // oracle is non-vacuous for random data.
  EXPECT_FALSE(wl->verify(mem)) << GetParam() << ": oracle passed on unwritten output";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadStructure,
                         ::testing::ValuesIn(workload_names()));

TEST(WorkloadTable1, BlockShapesMatchPaperCharacter) {
  // Spot-check the analyzer output against Table 1's block structure.
  auto check = [](const std::string& name, auto&& predicate) {
    auto wl = make_workload(name, ProblemScale::kTiny);
    GlobalMemory mem;
    MemoryAllocator alloc;
    Rng rng(1);
    wl->setup(mem, alloc, rng);
    const KernelImage img = analyze_and_generate(wl->program());
    predicate(img);
  };

  check("VADD", [](const KernelImage& img) {
    ASSERT_EQ(img.blocks.size(), 1u);
    EXPECT_EQ(img.blocks[0].nsu_inst_count, 4u);  // Table 1: "4"
    EXPECT_EQ(img.blocks[0].num_loads, 2u);
    EXPECT_EQ(img.blocks[0].num_stores, 1u);
  });
  check("BICG", [](const KernelImage& img) {
    ASSERT_EQ(img.blocks.size(), 2u);  // Table 1: "4,4"
    EXPECT_EQ(img.blocks[0].nsu_inst_count, 4u);
    EXPECT_EQ(img.blocks[1].nsu_inst_count, 4u);
  });
  check("BFS", [](const KernelImage& img) {
    // §4.4: single-instruction indirect-load blocks present.
    unsigned indirect = 0;
    for (const auto& b : img.blocks) indirect += b.indirect_single_load ? 1 : 0;
    EXPECT_GE(indirect, 2u);
  });
  check("STN", [](const KernelImage& img) {
    ASSERT_EQ(img.blocks.size(), 1u);
    EXPECT_NEAR(img.blocks[0].nsu_inst_count, 15.0, 2.0);  // Table 1: "15"
    EXPECT_GE(img.blocks[0].regs_in.size(), 2u);  // alpha, beta live-ins
  });
  check("STCL", [](const KernelImage& img) {
    ASSERT_GE(img.blocks.size(), 1u);
    // The running total crosses instances: live-in AND live-out.
    EXPECT_GE(img.blocks[0].regs_in.size(), 1u);
    EXPECT_GE(img.blocks[0].regs_out.size(), 1u);
  });
  check("BPROP", [](const KernelImage& img) {
    ASSERT_EQ(img.blocks.size(), 1u);
    EXPECT_GT(img.blocks[0].nsu_inst_count, 30u);  // large unrolled block
    EXPECT_EQ(img.blocks[0].num_loads, 2u * BpropWorkload::kInputs);
  });
}

TEST(Workloads, OutputRegionManifestIsWellFormed) {
  // Every workload declares where its results live (the differential
  // oracle compares those regions byte-for-byte).  Regions must be named,
  // non-empty, non-overlapping, and inside allocated memory.
  for (const std::string& name : workload_names()) {
    SCOPED_TRACE(name);
    auto wl = make_workload(name, ProblemScale::kTiny);
    GlobalMemory mem;
    MemoryAllocator alloc;
    Rng rng(0x5EED);
    wl->setup(mem, alloc, rng);
    const auto regions = wl->output_regions();
    ASSERT_FALSE(regions.empty());
    for (std::size_t i = 0; i < regions.size(); ++i) {
      EXPECT_FALSE(regions[i].name.empty());
      EXPECT_GT(regions[i].bytes, 0u);
      EXPECT_LE(regions[i].base + regions[i].bytes, alloc.high_water());
      for (std::size_t j = i + 1; j < regions.size(); ++j) {
        const bool disjoint = regions[i].base + regions[i].bytes <= regions[j].base ||
                              regions[j].base + regions[j].bytes <= regions[i].base;
        EXPECT_TRUE(disjoint) << regions[i].name << " overlaps " << regions[j].name;
      }
    }
  }
}

TEST(Workloads, OutputRegionsActuallyChangeDuringExecution) {
  // The manifest would be useless if it pointed at untouched memory: after
  // a (reference) run, each declared region must differ from its initial
  // contents for at least one workload-declared output.
  for (const std::string& name : workload_names()) {
    SCOPED_TRACE(name);
    auto wl = make_workload(name, ProblemScale::kTiny);
    GlobalMemory mem;
    MemoryAllocator alloc;
    Rng rng(0x5EED);
    wl->setup(mem, alloc, rng);
    const GlobalMemory before = mem;
    const RefResult r = ref_run(wl->program(), wl->launch(), mem);
    ASSERT_TRUE(r.completed) << r.error;
    bool any_written = false;
    for (const auto& region : wl->output_regions()) {
      if (!mem.equal_range(before, region.base, region.bytes)) any_written = true;
    }
    EXPECT_TRUE(any_written);
  }
}

}  // namespace
}  // namespace sndp
