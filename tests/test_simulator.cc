// Simulator-facade tests: safety valve, analyzer options, config plumbing.
#include <gtest/gtest.h>

#include <cstdio>

#include "sndp.h"

namespace sndp {
namespace {

TEST(SimulatorFacade, SafetyValveStopsRunaway) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.max_time_ps = 50'000;  // 50 ns: far too little to finish
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.verified);
  EXPECT_GE(r.runtime_ps, 50'000u);
}

TEST(SimulatorFacade, SafetyValveRuntimeTightlyBounded) {
  // Regression: the main loop used to step 64 edges between valve checks,
  // so runtime_ps could overshoot max_time_ps by a whole burst.  With the
  // in-burst check the overshoot is at most one clock edge — bounded by
  // the slowest domain's period (NSU @ 350 MHz ~ 2858 ps).
  SystemConfig cfg = SystemConfig::small_test();
  cfg.max_time_ps = 50'000;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_FALSE(r.completed);
  const auto overshoot = r.runtime_ps - cfg.max_time_ps;
  EXPECT_LE(overshoot, 3000u);
  // ... and the overshoot is exported so incomplete runs are diagnosable.
  EXPECT_DOUBLE_EQ(r.stats.get("sim.valve_overshoot_ps"), static_cast<double>(overshoot));
  EXPECT_DOUBLE_EQ(r.stats.get("sim.completed"), 0.0);
  EXPECT_DOUBLE_EQ(r.stats.get("sim.aborted"), 0.0);
}

TEST(SimulatorFacade, CompletedRunReportsZeroOvershoot) {
  SystemConfig cfg = SystemConfig::small_test();
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.stats.get("sim.valve_overshoot_ps"), 0.0);
}

TEST(SimulatorFacade, AbortPollStopsRun) {
  SystemConfig cfg = SystemConfig::small_test();
  Simulator sim(cfg);
  sim.set_abort_poll([] { return true; });  // abort at the first burst
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = sim.run(*wl);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.completed);
  EXPECT_DOUBLE_EQ(r.stats.get("sim.aborted"), 1.0);
}

TEST(SimulatorFacade, RejectsInvalidConfig) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.num_hmcs = 0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
}

TEST(SimulatorFacade, AnalyzerOptionsChangeBlockExtraction) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;

  Simulator normal(cfg);
  auto wl1 = make_workload("VADD", ProblemScale::kTiny);
  const RunResult with_blocks = normal.run(*wl1);
  EXPECT_GT(with_blocks.stats.get("governor.decisions"), 0.0);

  // A prohibitive minimum score extracts no blocks: the run degenerates to
  // the baseline even in always-offload mode.
  Simulator strict(cfg);
  AnalyzerOptions opts;
  opts.min_score = 1e9;
  opts.indirect_rule = false;
  strict.set_analyzer_options(opts);
  auto wl2 = make_workload("VADD", ProblemScale::kTiny);
  const RunResult no_blocks = strict.run(*wl2);
  EXPECT_TRUE(no_blocks.verified);
  EXPECT_DOUBLE_EQ(no_blocks.stats.get("governor.decisions"), 0.0);
  EXPECT_DOUBLE_EQ(no_blocks.stats.get_or("net.bytes.OFLD_CMD", 0.0), 0.0);
}

TEST(SimulatorFacade, NsuFrequencyScalesNdpRuntime) {
  // §7.6 in miniature: a slower NSU lengthens always-offload runs.
  SystemConfig fast_cfg = SystemConfig::small_test();
  fast_cfg.governor.mode = OffloadMode::kAlways;
  SystemConfig slow_cfg = fast_cfg;
  slow_cfg.clocks.nsu_khz = 87'500;  // 1/4 speed
  auto wl1 = make_workload("SP", ProblemScale::kTiny);
  auto wl2 = make_workload("SP", ProblemScale::kTiny);
  const RunResult fast = Simulator(fast_cfg).run(*wl1);
  const RunResult slow = Simulator(slow_cfg).run(*wl2);
  EXPECT_TRUE(slow.verified);
  EXPECT_GT(slow.sm_cycles, fast.sm_cycles);
}

TEST(SimulatorFacade, HmcCountChangesPlacementSpread) {
  SystemConfig cfg1 = SystemConfig::small_test();
  cfg1.num_hmcs = 1;  // degenerate hypercube: everything is local
  cfg1.governor.mode = OffloadMode::kAlways;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg1).run(*wl);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.cube_link_bytes, 0u);  // no inter-stack links exist
}

// Fast-forward determinism (the ISSUE's acceptance bar): idle fast-forward
// must be a pure wall-clock optimisation.  Every workload, run with
// sim.fast_forward on and off, must produce byte-identical stat maps and
// the exact same final runtime_ps / sm_cycles.
class FastForwardDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(FastForwardDeterminism, StatsAreByteIdenticalToNaiveStepping) {
  const std::string name = GetParam();
  for (OffloadMode mode : {OffloadMode::kOff, OffloadMode::kDynamicCache}) {
    SystemConfig cfg = SystemConfig::small_test();
    cfg.governor.mode = mode;

    cfg.fast_forward = true;
    auto wl_ff = make_workload(name, ProblemScale::kTiny);
    const RunResult ff = Simulator(cfg).run(*wl_ff);

    cfg.fast_forward = false;
    auto wl_nv = make_workload(name, ProblemScale::kTiny);
    const RunResult naive = Simulator(cfg).run(*wl_nv);

    EXPECT_TRUE(ff.completed);
    EXPECT_EQ(ff.runtime_ps, naive.runtime_ps) << name;
    EXPECT_EQ(ff.sm_cycles, naive.sm_cycles) << name;
    // The full exported stat maps (every counter in the system) must match
    // key-for-key and bit-for-bit.
    EXPECT_EQ(ff.stats.values(), naive.stats.values()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FastForwardDeterminism,
                         ::testing::Values("BPROP", "BFS", "BICG", "FWT", "KMN", "MiniFE",
                                           "SP", "STN", "STCL", "VADD"));

// Parallel-in-time determinism (DESIGN.md "Parallel-in-time simulation"):
// sharding one run across partitions must be a pure wall-clock optimisation.
// Only the intentionally partition-dependent keys may differ: the
// `sim.parallel_*` diagnostics and the span-sampling bookkeeping
// (`sim.latency_spans*` — parallel runs force span capture off).
std::map<std::string, double> partition_comparable(const StatSet& s) {
  std::map<std::string, double> m = s.values();
  m.erase("sim.parallel_partitions");
  m.erase("sim.parallel_windows");
  m.erase("sim.latency_spans");
  m.erase("sim.latency_spans_dropped");
  return m;
}

class ParallelDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelDeterminism, StatsAndMemoryAreByteIdenticalToSerial) {
  const std::string name = GetParam();
  for (const bool ff : {true, false}) {
    SystemConfig cfg = SystemConfig::small_test();  // 4 stacks
    cfg.fast_forward = ff;

    cfg.parallel_partitions = 1;
    GlobalMemory serial_mem;
    Simulator serial_sim(cfg);
    serial_sim.set_final_memory_sink(&serial_mem);
    auto wl_s = make_workload(name, ProblemScale::kTiny);
    const RunResult serial = serial_sim.run(*wl_s);
    ASSERT_TRUE(serial.completed) << name;

    for (const unsigned parts : {2u, 4u}) {
      cfg.parallel_partitions = parts;
      GlobalMemory par_mem;
      Simulator par_sim(cfg);
      par_sim.set_final_memory_sink(&par_mem);
      auto wl_p = make_workload(name, ProblemScale::kTiny);
      const RunResult par = par_sim.run(*wl_p);

      EXPECT_TRUE(par.completed) << name;
      EXPECT_TRUE(par.verified) << name;
      EXPECT_EQ(par.runtime_ps, serial.runtime_ps) << name << " parts=" << parts;
      EXPECT_EQ(par.sm_cycles, serial.sm_cycles) << name << " parts=" << parts;
      EXPECT_DOUBLE_EQ(par.stats.get("sim.parallel_partitions"), static_cast<double>(parts));
      EXPECT_EQ(partition_comparable(par.stats), partition_comparable(serial.stats))
          << name << " parts=" << parts << " ff=" << ff;
      Addr diff = 0;
      EXPECT_TRUE(par_mem.equal_contents(serial_mem, &diff))
          << name << " parts=" << parts << " first diff @ 0x" << std::hex << diff;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParallelDeterminism,
                         ::testing::Values("BPROP", "BFS", "BICG", "FWT", "KMN", "MiniFE",
                                           "SP", "STN", "STCL", "VADD"));

TEST(ParallelSimulation, ThreeStackIncompleteHypercubeMatchesSerial) {
  // The PR-6 non-power-of-two geometry: 3 stacks ride an incomplete
  // hypercube, and a partition request above stacks+hub clamps to 4.
  SystemConfig cfg = SystemConfig::small_test();
  cfg.num_hmcs = 3;
  for (const char* name : {"VADD", "STN"}) {
    cfg.parallel_partitions = 1;
    auto wl_s = make_workload(name, ProblemScale::kTiny);
    const RunResult serial = Simulator(cfg).run(*wl_s);
    cfg.parallel_partitions = 8;  // clamps to 3 stacks + hub
    auto wl_p = make_workload(name, ProblemScale::kTiny);
    const RunResult par = Simulator(cfg).run(*wl_p);
    EXPECT_TRUE(par.verified) << name;
    EXPECT_DOUBLE_EQ(par.stats.get("sim.parallel_partitions"), 4.0);
    EXPECT_EQ(par.runtime_ps, serial.runtime_ps) << name;
    EXPECT_EQ(partition_comparable(par.stats), partition_comparable(serial.stats)) << name;
  }
}

TEST(ParallelSimulation, ValveStoppedRunMatchesSerial) {
  // The safety-valve step is a global decision; a valve-stopped parallel
  // run must stop at the same edge with the same overshoot as serial.
  SystemConfig cfg = SystemConfig::small_test();
  cfg.max_time_ps = 50'000;
  cfg.parallel_partitions = 1;
  auto wl_s = make_workload("VADD", ProblemScale::kTiny);
  const RunResult serial = Simulator(cfg).run(*wl_s);
  ASSERT_FALSE(serial.completed);
  cfg.parallel_partitions = 4;
  auto wl_p = make_workload("VADD", ProblemScale::kTiny);
  const RunResult par = Simulator(cfg).run(*wl_p);
  EXPECT_FALSE(par.completed);
  EXPECT_EQ(par.runtime_ps, serial.runtime_ps);
  EXPECT_EQ(partition_comparable(par.stats), partition_comparable(serial.stats));
}

TEST(ParallelSimulation, FinalFastForwardFlushEpochIsAudited) {
  // Regression: gpu.finalize() replays the fast-forwarded governor epoch
  // clock after the last horizon barrier, and can roll one final epoch
  // there.  Serial mode audits that epoch inline from the observer; the
  // parallel path defers it, and an early version dropped the deferred
  // entry by draining the queue before the finalize flush.  A short epoch
  // makes the boundary land inside the trailing fast-forward region.
  // FWT/tiny with a 131-cycle epoch leaves exactly one boundary inside the
  // trailing fast-forward region (serial audits 10 epochs, a parallel run
  // with the drain misplaced audits 9).
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kDynamicCache;
  cfg.governor.epoch_cycles = 131;
  cfg.parallel_partitions = 1;
  auto wl_s = make_workload("FWT", ProblemScale::kTiny);
  const RunResult serial = Simulator(cfg).run(*wl_s);
  ASSERT_TRUE(serial.completed);
  ASSERT_GE(serial.stats.get("audit.epochs"), 2.0);
  cfg.parallel_partitions = 4;
  auto wl_p = make_workload("FWT", ProblemScale::kTiny);
  const RunResult par = Simulator(cfg).run(*wl_p);
  EXPECT_EQ(par.stats.get("audit.epochs"), serial.stats.get("audit.epochs"));
  EXPECT_EQ(partition_comparable(par.stats), partition_comparable(serial.stats));
}

TEST(ParallelSimulation, MutatingPlacementFallsBackToSerial) {
  // First-touch / migration placement mutate the page map on lookups from
  // every partition; the run must fall back to serial rather than race.
  for (const PlacementPolicyKind policy :
       {PlacementPolicyKind::kFirstTouch, PlacementPolicyKind::kMigration}) {
    SystemConfig cfg = SystemConfig::small_test();
    cfg.placement.policy = policy;
    cfg.parallel_partitions = 4;
    auto wl = make_workload("VADD", ProblemScale::kTiny);
    const RunResult r = Simulator(cfg).run(*wl);
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(r.stats.get("sim.parallel_partitions"), 1.0);
  }
}

TEST(ParallelSimulation, AbortPollStopsParallelRun) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.parallel_partitions = 4;
  Simulator sim(cfg);
  sim.set_abort_poll([] { return true; });  // abort at the first barrier
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = sim.run(*wl);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.completed);
}

TEST(SimulatorFacade, EnergyCountersAreConsistent) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kDynamicCache;
  auto wl = make_workload("BICG", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  EXPECT_EQ(r.counters.offchip_bytes, r.gpu_link_bytes + r.cube_link_bytes);
  EXPECT_GT(r.counters.sm_lane_ops, 0u);
  EXPECT_GT(r.counters.dram_read_bytes, 0u);
  EXPECT_GT(r.counters.sm_active_seconds, 0.0);
  EXPECT_GT(r.energy.total(), 0.0);
}

TEST(SimulatorFacade, NsuLaneOpsFoldIntoEnergy) {
  // Regression (found by the flow audit's energy-mirror check): NSU lane
  // ops were counted per NSU but never folded into EnergyCounters, so the
  // NSU dynamic energy term was always zero for any offloading run.
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_TRUE(r.verified);
  ASSERT_GT(r.stats.get("governor.offloads"), 0.0);
  EXPECT_GT(r.counters.nsu_lane_ops, 0u);
  EXPECT_GT(r.energy.nsu_j, 0.0);
  // The counter mirrors the per-NSU totals exactly.
  EXPECT_EQ(static_cast<double>(r.counters.nsu_lane_ops),
            r.stats.sum_matching("hmc", ".nsu.lane_ops"));
}

TEST(SimulatorFacade, MigrationChargesPageCopyTraffic) {
  // Regression: a migration re-home used to flip the page map for free.
  // Now the old home reads the page line-by-line, ships one bulk packet
  // over the cube links, and the new home writes the lines back through
  // its vaults — and the flow audit pairs that traffic with
  // mem.pages_migrated exactly on a drained run.
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;
  cfg.placement.policy = PlacementPolicyKind::kMigration;
  cfg.placement.migration_threshold = 1;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_TRUE(r.verified);
  ASSERT_TRUE(r.completed);
  const double migrated = r.stats.get("mem.pages_migrated");
  ASSERT_GT(migrated, 0.0);
  const double lines = static_cast<double>(cfg.page_bytes / cfg.l2.line_bytes);
  EXPECT_EQ(r.stats.sum_matching("hmc", ".page_copy_reads"), migrated * lines);
  EXPECT_EQ(r.stats.sum_matching("hmc", ".page_copy_writes"), migrated * lines);
  // Each migrated page crosses the inter-stack links at least once.
  EXPECT_GE(static_cast<double>(r.cube_link_bytes),
            migrated * static_cast<double>(cfg.page_bytes));
  EXPECT_EQ(r.stats.get("audit.violations"), 0.0);
}

TEST(SimulatorFacade, TraceWriteFailureIsSurfacedInStats) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.trace_path = ::testing::TempDir() + "/no_such_dir_sndp/trace.json";
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);  // must not throw
  EXPECT_TRUE(r.verified);
  EXPECT_DOUBLE_EQ(r.stats.get("sim.trace_write_failed"), 1.0);

  // ... and the stat reads 0 when the path is writable.
  cfg.trace_path = ::testing::TempDir() + "/sndp_writable_trace.json";
  auto wl2 = make_workload("VADD", ProblemScale::kTiny);
  const RunResult ok = Simulator(cfg).run(*wl2);
  EXPECT_DOUBLE_EQ(ok.stats.get("sim.trace_write_failed"), 0.0);
  std::remove(cfg.trace_path.c_str());
}

}  // namespace
}  // namespace sndp
