// Tests for the Fig. 5 target-NSU selection model.
#include <gtest/gtest.h>

#include "offload/target_selection.h"

namespace sndp {
namespace {

TEST(TargetSelection, SingleAccessAlwaysLocal) {
  Rng rng(1);
  const auto s = simulate_target_selection(8, 1, TargetPolicy::kFirstAccess, 1000, rng);
  EXPECT_DOUBLE_EQ(s.mean_traffic, 0.0);
}

TEST(TargetSelection, PoliciesIdenticalForTwoAccesses) {
  // With two accesses, the first-touched HMC is always among the maxima.
  Rng a(2), b(2);
  const auto first = simulate_target_selection(8, 2, TargetPolicy::kFirstAccess, 20000, a);
  const auto opt = simulate_target_selection(8, 2, TargetPolicy::kOptimal, 20000, b);
  EXPECT_NEAR(first.mean_traffic, opt.mean_traffic, 1e-9);
}

TEST(TargetSelection, OptimalNeverWorse) {
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    Rng a(3), b(3);
    const auto first = simulate_target_selection(8, n, TargetPolicy::kFirstAccess, 20000, a);
    const auto opt = simulate_target_selection(8, n, TargetPolicy::kOptimal, 20000, b);
    EXPECT_LE(opt.mean_traffic, first.mean_traffic + 1e-9) << n;
  }
}

TEST(TargetSelection, OverheadBoundedAsInPaper) {
  // Fig. 5: the first-HMC policy costs at most ~15% extra traffic.
  double max_overhead = 0.0;
  for (unsigned n : {4u, 8u, 16u, 32u, 64u}) {
    Rng a(4), b(4);
    const auto first = simulate_target_selection(8, n, TargetPolicy::kFirstAccess, 50000, a);
    const auto opt = simulate_target_selection(8, n, TargetPolicy::kOptimal, 50000, b);
    if (opt.mean_traffic > 0) {
      max_overhead = std::max(max_overhead, first.mean_traffic / opt.mean_traffic - 1.0);
    }
  }
  EXPECT_LT(max_overhead, 0.16);
  EXPECT_GT(max_overhead, 0.05);  // the difference is real, not noise
}

TEST(TargetSelection, ConvergesTowardUniformRemainder) {
  // As accesses grow, traffic approaches (H-1)/H for both policies.
  Rng rng(5);
  const auto s = simulate_target_selection(8, 512, TargetPolicy::kFirstAccess, 5000, rng);
  EXPECT_NEAR(s.mean_traffic, 7.0 / 8.0, 0.02);
}

TEST(TargetSelection, RejectsZeroInputs) {
  Rng rng(6);
  EXPECT_THROW(simulate_target_selection(0, 4, TargetPolicy::kOptimal, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_target_selection(8, 0, TargetPolicy::kOptimal, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_target_selection(8, 4, TargetPolicy::kOptimal, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sndp
