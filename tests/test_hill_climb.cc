// Tests for the hill-climbing dynamic offload-ratio controller (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "ctrl/hill_climb.h"

namespace sndp {
namespace {

GovernorConfig cfg() {
  GovernorConfig g;
  g.initial_ratio = 0.1;
  g.initial_step = 0.15;
  g.step_unit = 0.05;
  g.step_min = 0.05;
  g.step_max = 0.15;
  g.history_window = 4;
  return g;
}

// Drives the controller against a synthetic throughput landscape.
double run_epochs(HillClimbController& hc, const std::function<double(double)>& ipc_of,
                  unsigned epochs) {
  for (unsigned i = 0; i < epochs; ++i) hc.end_epoch(ipc_of(hc.ratio()));
  return hc.ratio();
}

TEST(HillClimb, InitialState) {
  HillClimbController hc(cfg());
  EXPECT_DOUBLE_EQ(hc.ratio(), 0.1);
  EXPECT_DOUBLE_EQ(hc.step(), 0.15);
}

TEST(HillClimb, FirstEpochOnlyRecordsBaseline) {
  HillClimbController hc(cfg());
  hc.end_epoch(1.0);
  EXPECT_DOUBLE_EQ(hc.ratio(), 0.1);  // unchanged after the first epoch
  hc.end_epoch(2.0);
  EXPECT_NE(hc.ratio(), 0.1);  // moves from the second epoch on
}

TEST(HillClimb, ClimbsTowardUnimodalOptimum) {
  // Property: for any unimodal landscape peaking at p, the controller's
  // time-averaged ratio approaches p within the max step size.
  for (double peak : {0.3, 0.5, 0.7}) {
    HillClimbController hc(cfg());
    auto ipc = [peak](double r) { return 1.0 - (r - peak) * (r - peak); };
    double avg = 0.0;
    constexpr unsigned kEpochs = 60;
    for (unsigned i = 0; i < kEpochs; ++i) {
      hc.end_epoch(ipc(hc.ratio()));
      if (i >= kEpochs / 2) avg += hc.ratio();
    }
    avg /= kEpochs / 2;
    EXPECT_NEAR(avg, peak, 0.2) << "peak " << peak;
  }
}

TEST(HillClimb, MonotonicDecreasingLandscapeDrivesRatioDown) {
  HillClimbController hc(cfg());
  run_epochs(hc, [](double r) { return 1.0 - r; }, 40);
  EXPECT_LT(hc.ratio(), 0.2);
}

TEST(HillClimb, MonotonicIncreasingLandscapeDrivesRatioUp) {
  HillClimbController hc(cfg());
  run_epochs(hc, [](double r) { return r; }, 40);
  EXPECT_GT(hc.ratio(), 0.8);
}

TEST(HillClimb, BouncesOffWalls) {
  HillClimbController hc(cfg());
  // Always-worse signal: direction flips every epoch; ratio must stay in
  // [0,1] and keep probing (the paper notes it never settles exactly).
  double prev = 2.0;
  for (unsigned i = 0; i < 50; ++i) {
    hc.end_epoch(prev);
    prev *= 0.9;  // strictly decreasing IPC regardless of ratio
    EXPECT_GE(hc.ratio(), 0.0);
    EXPECT_LE(hc.ratio(), 1.0);
  }
  EXPECT_EQ(std::abs(hc.direction()), 1);
}

TEST(HillClimb, StepShrinksUnderOscillation) {
  HillClimbController hc(cfg());
  // Every epoch looks worse than the last: the direction reverses each
  // time (oscillation around a sharp optimum) and the step must shrink to
  // its minimum.
  double ipc = 10.0;
  double min_seen = 1.0;
  for (unsigned i = 0; i < 12; ++i) {
    hc.end_epoch(ipc);
    ipc -= 0.5;
    min_seen = std::min(min_seen, hc.step());
  }
  // Algorithm 1 reaches the minimum step, then (per its else-branch) grows
  // one notch and shrinks again — it never exceeds step_min + step_unit.
  EXPECT_DOUBLE_EQ(min_seen, 0.05);
  EXPECT_LE(hc.step(), 0.05 + 0.05 + 1e-12);
}

TEST(HillClimb, StepGrowsUnderSteadyProgress) {
  GovernorConfig g = cfg();
  g.initial_step = 0.05;
  HillClimbController hc(g);
  double ipc = 1.0;
  for (unsigned i = 0; i < 10; ++i) {
    ipc += 0.1;  // monotone improvement
    hc.end_epoch(ipc);
  }
  EXPECT_DOUBLE_EQ(hc.step(), 0.15);
}

TEST(HillClimb, NoSignalEpochHoldsAllState) {
  // Regression: an idle epoch (no offload-block instruction retired) used
  // to feed ipc=0 into the climb, which read as a collapse and reversed
  // direction every time.  A no-signal epoch must hold ratio, step and
  // direction entirely.
  HillClimbController hc(cfg());
  hc.end_epoch(1.0);  // baseline
  hc.end_epoch(2.0);  // improving: moves up
  const double ratio = hc.ratio();
  const double step = hc.step();
  const int dir = hc.direction();
  for (int i = 0; i < 5; ++i) hc.end_epoch(0.0, /*has_signal=*/false);
  EXPECT_DOUBLE_EQ(hc.ratio(), ratio);
  EXPECT_DOUBLE_EQ(hc.step(), step);
  EXPECT_EQ(hc.direction(), dir);
  // The next informative epoch compares against the last informative
  // baseline (2.0), not against the held zeros: 3.0 > 2.0 keeps climbing.
  hc.end_epoch(3.0);
  EXPECT_EQ(hc.direction(), dir);
  EXPECT_GT(hc.ratio(), ratio);
}

TEST(HillClimb, NoSignalFirstEpochsDoNotSetBaseline) {
  HillClimbController a(cfg()), b(cfg());
  a.end_epoch(0.0, /*has_signal=*/false);
  a.end_epoch(0.0, /*has_signal=*/false);
  a.end_epoch(1.0);  // first informative epoch records the baseline...
  b.end_epoch(1.0);
  a.end_epoch(2.0);  // ...so both controllers climb in lockstep
  b.end_epoch(2.0);
  EXPECT_DOUBLE_EQ(a.ratio(), b.ratio());
  EXPECT_EQ(a.direction(), b.direction());
}

TEST(HillClimb, TiedIpcDoesNotReverseDirection) {
  // avg_ipc == prev_ipc_ is "not worse": the direction must hold and the
  // no-change epoch counts as steady progress for the step adaptation.
  HillClimbController hc(cfg());
  hc.end_epoch(1.0);
  hc.end_epoch(1.0);  // tie with the baseline
  EXPECT_EQ(hc.direction(), +1);
  const double after_first_tie = hc.ratio();
  EXPECT_GT(after_first_tie, 0.1);  // still moved forward
  hc.end_epoch(1.0);  // ties keep not reversing
  EXPECT_EQ(hc.direction(), +1);
  EXPECT_GT(hc.ratio(), after_first_tie);
}

TEST(HillClimb, WallBounceSetsInwardDirection) {
  // Reaching a wall must flip the direction inward so the climber keeps
  // probing (the ratio would otherwise stick at the boundary forever).
  GovernorConfig g = cfg();
  g.initial_ratio = 0.95;
  HillClimbController hc(g);
  hc.end_epoch(1.0);
  hc.end_epoch(2.0);  // improving at dir=+1: 0.95 + 0.15 clamps to 1.0
  EXPECT_DOUBLE_EQ(hc.ratio(), 1.0);
  EXPECT_EQ(hc.direction(), -1);

  GovernorConfig low = cfg();
  low.initial_ratio = 0.05;
  HillClimbController lc(low);
  lc.end_epoch(2.0);
  lc.end_epoch(1.0);  // worse: reverse to dir=-1, 0.05 - step clamps to 0.0
  EXPECT_DOUBLE_EQ(lc.ratio(), 0.0);
  EXPECT_EQ(lc.direction(), +1);
}

TEST(HillClimb, StepStaysWithinBounds) {
  HillClimbController hc(cfg());
  Rng rng(5);
  for (unsigned i = 0; i < 200; ++i) {
    hc.end_epoch(rng.next_double());
    EXPECT_GE(hc.step(), 0.05);
    EXPECT_LE(hc.step(), 0.15);
    EXPECT_GE(hc.ratio(), 0.0);
    EXPECT_LE(hc.ratio(), 1.0);
  }
}

}  // namespace
}  // namespace sndp
