// Tests for the cross-component flow-conservation audit: consistent books
// pass silently, a corrupted counter trips an epoch-precise violation with
// the offending component and delta, and real simulator runs balance.
#include <gtest/gtest.h>

#include "sndp.h"

namespace sndp {
namespace {

// A self-consistent snapshot scaled by `k`: every instant invariant and
// every drained conservation equality holds, and fields grow monotonically
// with k.  Mirrors a plausible flow: 5k L1 misses of which k are RDF-probe
// misses, 4k kMemRead packets, 2k L2 fill misses, k RDF DRAM reads.
AuditSnapshot consistent(std::uint64_t k) {
  AuditSnapshot s;
  s.sm_issued = 100 * k;
  s.l1_hits = 10 * k;
  s.l1_miss_new = 5 * k;
  s.l1_merged = k;
  s.sm_rdf_probes = 2 * k;
  s.sm_rdf_l1_hits = k;  // k probe misses travel on as RDF packets
  s.offloads_started = 2 * k;
  s.inline_blocks = k;
  s.ofld_acks = 2 * k;
  s.inline_block_instrs = 10 * k;
  s.acked_block_instrs = 20 * k;
  s.gov_block_instrs = 30 * k;

  s.l2_read_reqs = 4 * k;  // == mem_reads_created()
  s.rdf_l2_probes = k;
  s.rdf_l2_hits = 0;
  s.l2_hits = 2 * k;
  s.l2_miss_new = 3 * k;  // 2k demand fills + k RDF probe misses
  s.l2_merged = 0;
  s.mem_read_resps = 2 * k;  // == l2_fill_misses()
  s.gpu_rx_packets = 5 * k;

  s.net_injected = 11 * k;
  s.hmc_rx_packets = 6 * k;
  s.net_in_flight = 0;
  s.link_bytes = 1000 * k;
  s.class_bytes = 1000 * k;

  s.vault_reads = 3 * k;
  s.vault_writes = k;
  s.vault_activates = 3 * k;
  s.mem_read_completions = 2 * k;
  s.rdf_completions = k;
  s.mem_write_completions = k;
  s.nsu_write_completions = 0;
  s.dram_read_bytes = 3 * k * s.line_bytes;
  s.dram_write_bytes = 64 * k;

  s.nsu_blocks_completed = 2 * k;
  s.nsu_instrs = 2 * k;
  s.nsu_lane_ops = 50 * k;
  s.nsu_finished_block_instrs = 20 * k;

  s.buf_free_cmd = s.buf_cap_cmd = 8 * k;
  s.buf_free_read_data = s.buf_cap_read_data = 8 * k;
  s.buf_free_write_addr = s.buf_cap_write_addr = 8 * k;

  s.energy_dram_activates = 3 * k;
  s.energy_offchip_bytes = 1000 * k;
  s.energy_nsu_lane_ops = 50 * k;
  return s;
}

TEST(StatsAudit, ConsistentSnapshotsPassEveryCheck) {
  StatsAudit audit;
  for (std::uint64_t e = 0; e < 5; ++e) audit.check_epoch(e, consistent(e + 1));
  audit.check_final(consistent(6), /*drained=*/true);
  EXPECT_TRUE(audit.ok());
  EXPECT_TRUE(audit.violations().empty());
  EXPECT_GT(audit.checks_run(), 0u);
}

TEST(StatsAudit, DefaultSnapshotIsVacuouslyConsistent) {
  StatsAudit audit;
  audit.check_epoch(0, AuditSnapshot{});
  audit.check_final(AuditSnapshot{}, /*drained=*/true);
  EXPECT_TRUE(audit.ok());
}

TEST(StatsAudit, CorruptedCounterTripsEpochPreciseViolation) {
  StatsAudit audit;
  for (std::uint64_t e = 0; e < 3; ++e) audit.check_epoch(e, consistent(e + 1));
  ASSERT_TRUE(audit.ok());

  // Lose one injected packet at epoch 3: the NoC books no longer balance.
  AuditSnapshot bad = consistent(4);
  bad.net_injected -= 1;
  audit.check_epoch(3, bad);

  ASSERT_FALSE(audit.ok());
  const AuditViolation& v = audit.violations().front();
  EXPECT_EQ(v.epoch, 3);
  EXPECT_EQ(v.component, "network");
  EXPECT_EQ(v.check, "packet_conservation");
  EXPECT_DOUBLE_EQ(v.delta(), -1.0);
  EXPECT_NE(v.to_string().find("epoch 3"), std::string::npos);
  EXPECT_NE(audit.first_violation_message().find("network.packet_conservation"),
            std::string::npos);
}

TEST(StatsAudit, BackwardsCounterTripsMonotonicityCheck) {
  StatsAudit audit;
  audit.check_epoch(0, consistent(2));
  AuditSnapshot shrunk = consistent(2);
  shrunk.vault_reads -= 1;  // a cumulative counter must never decrease
  audit.check_epoch(1, shrunk);
  ASSERT_FALSE(audit.ok());
  // The regressed total also breaks flow identities; the monotone check must
  // be among the findings and carry the offending epoch.
  bool found = false;
  for (const AuditViolation& v : audit.violations()) {
    if (v.component == "monotone" && v.check == "vault_reads") {
      EXPECT_EQ(v.epoch, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StatsAudit, UnfoldedEnergyMirrorTripsFinalCheck) {
  // The motivating bug: NSU lane-ops were counted by every NSU but never
  // folded into EnergyCounters, silently zeroing the NSU dynamic energy.
  StatsAudit audit;
  AuditSnapshot s = consistent(3);
  s.energy_nsu_lane_ops = 0;
  audit.check_final(s, /*drained=*/true);
  ASSERT_FALSE(audit.ok());
  const AuditViolation& v = audit.violations().front();
  EXPECT_EQ(v.epoch, -1);  // end-of-run
  EXPECT_EQ(v.component, "energy");
  EXPECT_EQ(v.check, "nsu_lane_ops_mirror");
  EXPECT_NE(v.to_string().find("end-of-run"), std::string::npos);
}

TEST(StatsAudit, UndrainedRunSkipsStrictEqualities) {
  // Mid-flight snapshot: packets in the network, blocks not yet completed.
  AuditSnapshot s = consistent(3);
  s.net_in_flight = 2;
  s.net_injected += 2;
  s.nsu_blocks_completed -= 1;
  s.ofld_acks -= 1;
  StatsAudit audit;
  audit.check_final(s, /*drained=*/false);
  EXPECT_TRUE(audit.ok());  // inequalities hold; equalities not asserted
  StatsAudit strict;
  strict.check_final(s, /*drained=*/true);
  EXPECT_FALSE(strict.ok());
}

TEST(StatsAudit, ViolationListIsBoundedButCounted) {
  StatsAudit audit;
  AuditSnapshot s = consistent(1);
  s.net_injected += 1;  // one violated check per epoch
  for (std::uint64_t e = 0; e < 200; ++e) audit.check_epoch(e, s);
  EXPECT_LE(audit.violations().size(), 64u);
  StatSet out;
  audit.export_stats(out);
  EXPECT_DOUBLE_EQ(out.get("audit.violations"), 200.0);
  EXPECT_DOUBLE_EQ(out.get("audit.epochs"), 200.0);
}

TEST(StatsAudit, RealRunsBalanceAcrossModes) {
  for (OffloadMode mode : {OffloadMode::kOff, OffloadMode::kAlways,
                           OffloadMode::kDynamicCache}) {
    SystemConfig cfg = SystemConfig::small_test();
    cfg.governor.mode = mode;
    cfg.governor.epoch_cycles = 500;  // force many epoch-boundary checks
    auto wl = make_workload("BFS", ProblemScale::kTiny);
    const RunResult r = Simulator(cfg).run(*wl);  // throws if the audit fails
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(r.stats.get("audit.violations"), 0.0);
    EXPECT_GT(r.stats.get("audit.checks"), 0.0);
    EXPECT_GT(r.stats.get("audit.epochs"), 0.0);
  }
}

TEST(StatsAudit, DisabledByConfigFlag) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.audit = false;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  EXPECT_TRUE(r.verified);
  EXPECT_DOUBLE_EQ(r.stats.get_or("audit.checks", -1.0), -1.0);
}

}  // namespace
}  // namespace sndp
