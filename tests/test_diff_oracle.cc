// Differential-oracle tests (ctest label: diff).  Every workload, run
// through the timing simulator under the full configuration matrix, must
// produce a final memory image byte-identical to the reference
// interpreter's.  This is the repo's strongest correctness gate: a
// single corrupted byte anywhere in the memory system fails it.
#include <gtest/gtest.h>

#include "sndp.h"

namespace sndp {
namespace {

SystemConfig oracle_base() {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.epoch_cycles = 1000;  // scaled epoch, as the benches use
  return cfg;
}

TEST(OracleMatrix, CoversTheClaimedConfigurations) {
  const auto points = oracle_matrix(oracle_base());
  ASSERT_EQ(points.size(), 15u);
  std::vector<std::string> labels;
  for (const auto& p : points) labels.push_back(p.label);
  EXPECT_EQ(labels[0], "baseline");
  EXPECT_NE(std::find(labels.begin(), labels.end(), "ndp@0.25"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "dyn-cache"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "ndp@1.00/1-stack"), labels.end());
  // The stack-count points really change the topology.
  EXPECT_EQ(points[points.size() - 6].cfg.num_hmcs, 4u);
  EXPECT_EQ(points[points.size() - 8].cfg.num_hmcs, 1u);
  // The placement-policy points really change the policy, and the migration
  // point's threshold is low enough that pages move during a tiny run.
  EXPECT_EQ(points[points.size() - 5].cfg.placement.policy,
            PlacementPolicyKind::kFirstTouch);
  EXPECT_EQ(points[points.size() - 4].cfg.placement.policy,
            PlacementPolicyKind::kLocality);
  EXPECT_EQ(points[points.size() - 3].cfg.placement.policy,
            PlacementPolicyKind::kMigration);
  EXPECT_LE(points[points.size() - 3].cfg.placement.migration_threshold, 16u);
  // The parallel-in-time spot checks really shard the run.
  EXPECT_EQ(labels[points.size() - 2], "dyn-cache/2-part");
  EXPECT_EQ(points[points.size() - 2].cfg.parallel_partitions, 2u);
  EXPECT_EQ(labels[points.size() - 1], "dyn-cache/4-part");
  EXPECT_EQ(points.back().cfg.parallel_partitions, 4u);
}

class DiffOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(DiffOracle, SimulatorMatchesReferenceByteForByte) {
  const DiffReport report =
      diff_check_workload(GetParam(), ProblemScale::kTiny, oracle_matrix(oracle_base()));
  ASSERT_TRUE(report.ref_completed) << report.ref_error;
  EXPECT_TRUE(report.ok()) << to_string(report);
  EXPECT_EQ(report.outcomes.size(), 15u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DiffOracle,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

// Operator library (src/workloads/ops): same full matrix as the Table-1
// kernels.  The operators are built to stress the offload pipeline (IDIV
// index math, data-dependent gathers, fat accumulator boundaries, guarded
// non-self-reading producers), so byte-identity here is the strongest
// analyzer/codegen gate in the tier.
INSTANTIATE_TEST_SUITE_P(Operators, DiffOracle,
                         ::testing::ValuesIn(operator_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

// Multi-tenant axis: representative slice of the matrix (full breadth is
// covered single-tenant above; tenancy changes scheduling, not semantics,
// so the interesting points are the ones with the most concurrency and
// placement churn).
std::vector<OraclePoint> tenant_points() {
  const auto all = oracle_matrix(oracle_base());
  const std::vector<std::string> keep = {
      "baseline",           "ndp@0.50",           "dyn-cache",
      "ndp@1.00/1-stack",   "ndp@1.00/migration", "dyn-cache/2-part"};
  std::vector<OraclePoint> points;
  for (const auto& p : all) {
    if (std::find(keep.begin(), keep.end(), p.label) != keep.end()) points.push_back(p);
  }
  return points;
}

TEST(DiffOracleTenants, HomogeneousPairMatchesIndependentReplay) {
  const DiffReport report =
      diff_check_tenants({"VADD", "VADD"}, ProblemScale::kTiny, tenant_points());
  ASSERT_TRUE(report.ref_completed) << report.ref_error;
  EXPECT_TRUE(report.ok()) << to_string(report);
  EXPECT_EQ(report.outcomes.size(), 6u);
}

TEST(DiffOracleTenants, HeterogeneousTripleMatchesIndependentReplay) {
  const DiffReport report =
      diff_check_tenants({"BFS", "VADD", "KMN"}, ProblemScale::kTiny, tenant_points());
  ASSERT_TRUE(report.ref_completed) << report.ref_error;
  EXPECT_TRUE(report.ok()) << to_string(report);
  EXPECT_EQ(report.outcomes.size(), 6u);
}

TEST(DiffOracle, IncompleteSimulationIsReportedNotMasked) {
  // A point whose run hits the safety valve must surface as a failed
  // outcome with a diagnosis, never as a vacuous "match".
  std::vector<OraclePoint> points;
  OraclePoint p;
  p.label = "starved";
  p.cfg = oracle_base();
  p.cfg.governor.mode = OffloadMode::kOff;
  p.cfg.max_time_ps = 50'000;  // 50 ns: cannot finish
  points.push_back(p);
  const DiffReport report = diff_check_workload("VADD", ProblemScale::kTiny, points);
  ASSERT_TRUE(report.ref_completed) << report.ref_error;
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.outcomes[0].sim_completed);
  EXPECT_NE(report.outcomes[0].detail.find("valve"), std::string::npos)
      << report.outcomes[0].detail;
  EXPECT_NE(to_string(report).find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace sndp
