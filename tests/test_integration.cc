// End-to-end integration tests: whole-system simulations on a shrunk
// configuration, checking functional equivalence across execution modes,
// determinism, protocol invariants, and the paper's qualitative behaviors.
#include <gtest/gtest.h>

#include "sndp.h"

namespace sndp {
namespace {

SystemConfig test_cfg(OffloadMode mode, double ratio = 1.0) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = mode;
  cfg.governor.static_ratio = ratio;
  cfg.governor.epoch_cycles = 500;
  return cfg;
}

RunResult run(const std::string& name, const SystemConfig& cfg) {
  auto wl = make_workload(name, ProblemScale::kTiny);
  return Simulator(cfg).run(*wl);
}

// --- Functional equivalence --------------------------------------------------
// The partitioned protocol moves real data: every workload must produce
// oracle-correct output under every execution mode.

class ModeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, OffloadMode>> {};

TEST_P(ModeEquivalence, VerifiesAndCompletes) {
  const auto& [name, mode] = GetParam();
  const RunResult r = run(name, test_cfg(mode));
  EXPECT_TRUE(r.completed) << name;
  EXPECT_TRUE(r.verified) << name << " produced wrong results";
  EXPECT_GT(r.sm_cycles, 0u);
}

std::string mode_param_name(const ::testing::TestParamInfo<std::tuple<std::string, OffloadMode>>& info) {
  const std::string name = std::get<0>(info.param);
  const OffloadMode mode = std::get<1>(info.param);
  const char* m = mode == OffloadMode::kOff      ? "Baseline"
                  : mode == OffloadMode::kAlways ? "Naive"
                                                 : "DynCache";
  return name + "_" + m;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllModes, ModeEquivalence,
    ::testing::Combine(::testing::ValuesIn(workload_names()),
                       ::testing::Values(OffloadMode::kOff, OffloadMode::kAlways,
                                         OffloadMode::kDynamicCache)),
    mode_param_name);

// --- Determinism -------------------------------------------------------------

TEST(Determinism, IdenticalRunsIdenticalResults) {
  for (const char* name : {"VADD", "BFS", "STCL"}) {
    const RunResult a = run(name, test_cfg(OffloadMode::kDynamicCache));
    const RunResult b = run(name, test_cfg(OffloadMode::kDynamicCache));
    EXPECT_EQ(a.sm_cycles, b.sm_cycles) << name;
    EXPECT_EQ(a.runtime_ps, b.runtime_ps) << name;
    EXPECT_EQ(a.gpu_link_bytes, b.gpu_link_bytes) << name;
    EXPECT_EQ(a.cube_link_bytes, b.cube_link_bytes) << name;
    EXPECT_EQ(a.counters.dram_activates, b.counters.dram_activates) << name;
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total()) << name;
  }
}

TEST(Determinism, PlacementSeedChangesTiming) {
  SystemConfig cfg = test_cfg(OffloadMode::kOff);
  const RunResult a = run("VADD", cfg);
  cfg.placement_seed ^= 0xF00D;
  const RunResult b = run("VADD", cfg);
  EXPECT_TRUE(b.verified);
  EXPECT_NE(a.sm_cycles, b.sm_cycles);  // different page placement
}

// --- Protocol invariants -----------------------------------------------------

TEST(Invariants, NdpTrafficOnlyWhenOffloading) {
  const RunResult base = run("VADD", test_cfg(OffloadMode::kOff));
  EXPECT_EQ(base.cube_link_bytes, 0u);
  EXPECT_EQ(base.stats.get_or("net.bytes.OFLD_CMD", 0.0), 0.0);
  EXPECT_EQ(base.stats.get_or("net.bytes.RDF", 0.0), 0.0);
  EXPECT_EQ(base.inval_bytes, 0u);

  const RunResult ndp = run("VADD", test_cfg(OffloadMode::kAlways));
  EXPECT_GT(ndp.stats.get("net.bytes.OFLD_CMD"), 0.0);
  EXPECT_GT(ndp.stats.get("net.bytes.OFLD_ACK"), 0.0);
  EXPECT_GT(ndp.stats.get("net.bytes.WTA"), 0.0);
}

TEST(Invariants, CommandsMatchAcksAndGrants) {
  const RunResult r = run("SP", test_cfg(OffloadMode::kAlways));
  const double grants = r.stats.get("bufmgr.grants");
  const double offloads = r.stats.get("governor.offloads");
  EXPECT_DOUBLE_EQ(grants, offloads);
  // Every offload completes exactly once on some NSU.
  double completed = 0;
  for (unsigned h = 0; h < 4; ++h) {
    completed += r.stats.get("hmc" + std::to_string(h) + ".nsu.blocks_completed");
  }
  EXPECT_DOUBLE_EQ(completed, offloads);
}

TEST(Invariants, EveryNsuWriteInvalidates) {
  const RunResult r = run("VADD", test_cfg(OffloadMode::kAlways));
  double writes = 0;
  for (unsigned h = 0; h < 4; ++h) {
    writes += r.stats.get("hmc" + std::to_string(h) + ".nsu.write_packets");
  }
  EXPECT_DOUBLE_EQ(r.stats.get("gpu.invalidations"), writes);
}

TEST(Invariants, StallTaxonomyCoversNoIssueCycles) {
  const RunResult r = run("KMN", test_cfg(OffloadMode::kOff));
  const double no_issue = static_cast<double>(r.stall_dependency + r.stall_exec_busy +
                                              r.stall_warp_idle);
  const double issued = r.stats.get("gpu.issued_instrs");
  // Cycles with at least one live warp = issued + no-issue (per SM, summed).
  const double active = r.stats.sum_matching("sm", ".active_cycles");
  // Only the first 4 SMs export detailed stats; use aggregate identity
  // loosely: issued + stalls >= active for the exported SMs.
  EXPECT_GT(no_issue, 0.0);
  EXPECT_GT(issued, 0.0);
  EXPECT_GT(active, 0.0);
}

TEST(Invariants, DivergentLoadsSaveDownlinkBytes) {
  // BFS: the §4.4 claim — offloading indirect loads fetches only touched
  // words, cutting HMC->GPU traffic.  Shrink the L2 so the tiny node
  // arrays cannot hide on-chip (as in the paper's 1M-node inputs).
  SystemConfig base_cfg = test_cfg(OffloadMode::kOff);
  base_cfg.l2.size_bytes = 32 * KiB;
  SystemConfig ndp_cfg = test_cfg(OffloadMode::kAlways);
  ndp_cfg.l2.size_bytes = 32 * KiB;
  const RunResult base = run("BFS", base_cfg);
  const RunResult ndp = run("BFS", ndp_cfg);
  EXPECT_LT(ndp.stats.get("net.gpu_down_bytes"), base.stats.get("net.gpu_down_bytes"));
}

TEST(Invariants, InvalTrafficSmallFraction) {
  // §4.2: coherence overhead is small.
  const RunResult r = run("VADD", test_cfg(OffloadMode::kDynamicCache));
  EXPECT_LT(static_cast<double>(r.inval_bytes),
            0.05 * static_cast<double>(r.counters.offchip_bytes));
}

// --- Qualitative paper behaviors ---------------------------------------------

TEST(Behaviors, CacheAwareProtectsStencil) {
  // §7.3: STN must not lose more than a few percent under NDP(Dyn)_Cache.
  const RunResult base = run("STN", test_cfg(OffloadMode::kOff));
  const RunResult naive = run("STN", test_cfg(OffloadMode::kAlways));
  const RunResult guarded = run("STN", test_cfg(OffloadMode::kDynamicCache));
  EXPECT_LT(naive.speedup_vs(base), 0.9);     // naive offload hurts badly
  EXPECT_GT(guarded.speedup_vs(base), 0.9);   // suppression rescues it
}

TEST(Behaviors, EnergyAccountingTracksTraffic) {
  const RunResult base = run("VADD", test_cfg(OffloadMode::kOff));
  const RunResult ndp = run("VADD", test_cfg(OffloadMode::kAlways));
  // NDP moves read data over the memory network instead of GPU links.
  EXPECT_GT(ndp.cube_link_bytes, 0u);
  EXPECT_LT(ndp.stats.get_or("net.bytes.MEM_RD_RESP", 0.0),
            base.stats.get("net.bytes.MEM_RD_RESP"));
  EXPECT_GT(ndp.energy.nsu_j, 0.0);
  EXPECT_DOUBLE_EQ(base.energy.nsu_j, 0.0);
}

TEST(Behaviors, MoreSmsNeverSlower) {
  SystemConfig big = test_cfg(OffloadMode::kOff);
  big.num_sms = 8;
  const RunResult base = run("SP", test_cfg(OffloadMode::kOff));
  const RunResult more = run("SP", big);
  EXPECT_LE(more.sm_cycles, base.sm_cycles * 11 / 10);
}

TEST(Behaviors, NsuStatsPopulatedUnderOffload) {
  const RunResult r = run("VADD", test_cfg(OffloadMode::kAlways));
  double occupancy = 0, icache = 0;
  for (unsigned h = 0; h < 4; ++h) {
    const std::string p = "hmc" + std::to_string(h) + ".nsu";
    occupancy += r.stats.get(p + ".avg_occupancy");
    icache += r.stats.get(p + ".icache_utilization");
  }
  EXPECT_GT(occupancy, 0.0);
  EXPECT_GT(icache, 0.0);
  EXPECT_LT(icache / 4, 1.0);  // small footprint (Fig. 11)
}

TEST(Behaviors, RunImageDirectInterface) {
  // The lower-level run_image API used by custom frontends.
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  GlobalMemory mem;
  MemoryAllocator alloc;
  Rng rng(SystemConfig::small_test().placement_seed ^ 0xABCDEF);
  wl->setup(mem, alloc, rng);
  const KernelImage img = analyze_and_generate(wl->program());
  Simulator sim(test_cfg(OffloadMode::kStaticRatio, 0.5));
  const RunResult r = sim.run_image(img, wl->launch(), mem, "vadd-direct");
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(wl->verify(mem));
}

}  // namespace
}  // namespace sndp
