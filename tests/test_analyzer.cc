// Tests for offload-block identification (§3.1) and its structural rules.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "offload/analyzer.h"

namespace sndp {
namespace {

// The canonical VADD block: two loads, an add, a store.
Program vadd_like() {
  return assemble(R"(
    MOVI R16, 0x10000
    MOVI R17, 0x20000
    MOVI R18, 0x30000
    IMAD R8, R0, 8, R16
    IMAD R9, R0, 8, R17
    IMAD R10, R0, 8, R18
    LD   R11, [R8+0]
    LD   R12, [R9+0]
    FADD R13, R11, R12
    ST   [R10+0], R13
    EXIT
  )");
}

TEST(Analyzer, VaddProducesOneBlock) {
  const AnalysisResult r = analyze(vadd_like());
  ASSERT_EQ(r.accepted.size(), 1u);
  const BlockCandidate& c = r.accepted[0];
  EXPECT_EQ(c.begin, 6u);  // first LD
  EXPECT_EQ(c.end, 10u);   // one past the ST
  EXPECT_EQ(c.num_loads, 2u);
  EXPECT_EQ(c.num_stores, 1u);
  EXPECT_TRUE(c.regs_in.empty());
  EXPECT_TRUE(c.regs_out.empty());
  // Score: 3 x 8 B of data traffic, no register transfers.
  EXPECT_DOUBLE_EQ(c.score, 24.0);
  // FADD is NSU-side; nothing in the span is address calculation.
  EXPECT_FALSE(c.on_nsu[0]);  // LD
  EXPECT_TRUE(c.on_nsu[2]);   // FADD
}

TEST(Analyzer, ScratchpadSplitsBlocks) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    IMAD R8, R0, 8, R16
    LD   R11, [R8+0]
    FADD R13, R11, R11
    ST   [R8+0], R13
    SHM.ST [R3+0], R13
    LD   R12, [R8+64]
    FADD R14, R12, R12
    ST   [R8+64], R14
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 2u);
  EXPECT_LE(r.accepted[0].end, 5u);   // first block ends at/before the SHM.ST
  EXPECT_GT(r.accepted[1].begin, 5u); // second after it
}

TEST(Analyzer, BarrierSplitsBlocks) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    IMAD R8, R0, 8, R16
    LD   R11, [R8+0]
    FADD R13, R11, R11
    ST   [R8+0], R13
    BAR
    LD   R12, [R8+64]
    FADD R14, R12, R12
    ST   [R8+64], R14
    EXIT
  )");
  EXPECT_EQ(analyze(p).accepted.size(), 2u);
}

TEST(Analyzer, IndirectLoadSplitsAndSalvages) {
  // x = B[A[i]] — the §4.4 pattern: the A-load's value feeds the B-load's
  // address.  The A-load region scores 0 (one 8 B load vs one 8 B register
  // out) and is rejected; the B-load region also scores 0 (its value is
  // consumed on the GPU afterwards), but the §4.4 rule salvages it as a
  // single-instruction indirect block.
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    MOVI R17, 0x20000
    IMAD R8, R0, 8, R16
    LD   R10, [R8+0]
    IMAD R11, R10, 8, R17
    LD   R12, [R11+0]
    SHM.ST [R3+0], R12
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  const BlockCandidate& c = r.accepted[0];
  EXPECT_TRUE(c.indirect_single_load);
  EXPECT_EQ(c.begin, 5u);
  EXPECT_EQ(c.num_loads, 1u);
  EXPECT_EQ(c.num_stores, 0u);
  // The loaded value returns to the GPU as a live-out register.
  ASSERT_EQ(c.regs_out.size(), 1u);
  EXPECT_EQ(c.regs_out[0], 12u);
}

TEST(Analyzer, IndirectRuleCanBeDisabled) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    MOVI R17, 0x20000
    IMAD R8, R0, 8, R16
    LD   R10, [R8+0]
    IMAD R11, R10, 8, R17
    LD   R12, [R11+0]
    SHM.ST [R3+0], R12
    EXIT
  )");
  AnalyzerOptions opts;
  opts.indirect_rule = false;
  EXPECT_TRUE(analyze(p, opts).accepted.empty());
}

TEST(Analyzer, SetpConsumingLoadDataSplits) {
  // A compare on loaded data must stay on the GPU, so the block ends after
  // the feeding load.
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    IMAD R8, R0, 8, R16
    LD   R10, [R8+0]
    LD   R11, [R8+8]
    FADD R12, R10, R11
    ST   [R8+16], R12
    ISETP P0, LT, R10, 100
    @P0 IADD R13, R13, 1
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_FALSE(r.accepted.empty());
  for (const auto& c : r.accepted) {
    for (unsigned i = c.begin; i < c.end; ++i) {
      EXPECT_FALSE(p.at(i).writes_pred())
          << "Setp inside accepted block [" << c.begin << "," << c.end << ")";
    }
  }
}

TEST(Analyzer, LiveInRegistersDetected) {
  // Store data computed before the region -> live-in transfer.
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    BAR
    IMAD R8, R0, 8, R16
    LD   R10, [R8+0]
    FADD R12, R10, R20
    ST   [R8+0], R12
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  ASSERT_EQ(r.accepted[0].regs_in.size(), 1u);
  EXPECT_EQ(r.accepted[0].regs_in[0], 20u);
}

TEST(Analyzer, LiveOutRegistersDetected) {
  // The FADD result is consumed after the block -> live-out transfer.
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    IMAD R8, R0, 8, R16
    LD   R10, [R8+0]
    LD   R11, [R8+8]
    FADD R12, R10, R11
    ST   [R8+16], R12
    BAR
    SHM.ST [R3+0], R12
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  ASSERT_EQ(r.accepted[0].regs_out.size(), 1u);
  EXPECT_EQ(r.accepted[0].regs_out[0], 12u);
}

TEST(Analyzer, GuardedBlockNeedsPreds) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    ISETP P1, LT, R0, 100
    BAR
    IMAD R8, R0, 8, R16
    @P1 LD R10, [R8+0]
    @P1 FADD R12, R10, R10
    @P1 ST [R8+0], R12
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  EXPECT_TRUE(r.accepted[0].needs_preds);
}

TEST(Analyzer, PredDefinedInRegionSplitsGuardedUse) {
  // Setp inside the region defining a guard used by a later mem access:
  // the block must start after the Setp.
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    IMAD R8, R0, 8, R16
    ISETP P1, LT, R0, 100
    @P1 LD R10, [R8+0]
    @P1 FADD R12, R10, R10
    @P1 ST [R8+0], R12
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  EXPECT_GE(r.accepted[0].begin, 3u);  // after the ISETP
}

// Regression (found by the GEMM/ATTN operator library): a *guarded*
// producer pulled onto the NSU only defines the active lanes, so the
// register's pre-block value is still needed for the inactive ones and
// must be marshalled in.  The old backward walk reset the need at any
// write, guarded or not, so regs_in lost R5 and the NSU's inactive lanes
// computed with garbage.  (Never seen before: every guarded producer in
// the seed workloads reads its own destination, which re-adds the need.)
TEST(Analyzer, GuardedProducerKeepsLiveIn) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    ISETP P1, LT, R0, 100
    BAR
    IMAD R8, R0, 8, R16
    @P1 MOVI R5, 0
    FADD R7, R5, R5
    ST   [R8+0], R7
    ST   [R8+8], R7
    ST   [R8+16], R7
    ST   [R8+24], R7
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  const BlockCandidate& c = r.accepted[0];
  // The guarded MOVI is NSU-side (it feeds store data through the FADD)...
  bool movi_on_nsu = false;
  for (unsigned i = c.begin; i < c.end; ++i) {
    if (p.at(i).op == Opcode::kMovI && c.on_nsu[i - c.begin]) movi_on_nsu = true;
  }
  EXPECT_TRUE(movi_on_nsu);
  // ...but R5's pre-block value must still arrive as a live-in for the
  // lanes where P1 is false.
  EXPECT_TRUE(std::find(c.regs_in.begin(), c.regs_in.end(), 5) != c.regs_in.end())
      << to_string(c);
}

TEST(Analyzer, ComputeOnlyRegionRejected) {
  const Program p = assemble(R"(
    IADD R1, R0, 1
    IMUL R2, R1, R1
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  EXPECT_TRUE(r.accepted.empty());
  EXPECT_TRUE(r.rejected.empty());  // no memory at all: not even a candidate
}

TEST(Analyzer, DuplicatedAddressValueProducer) {
  // R9 feeds BOTH a later store's address and (via FADD) its data:
  // the analyzer duplicates it (addr_calc on GPU, on_nsu for the value).
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    LD   R10, [R16+0]
    IADD R9, R0, 8
    I2F  R11, R9
    FADD R12, R10, R11
    IMAD R13, R9, 8, R16
    ST   [R13+0], R12
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  const BlockCandidate& c = r.accepted[0];
  // Find the IADD inside the span; it must be both addr_calc and on_nsu
  // (or its value chain pulled in via I2F with R9 live-in).
  bool value_path_available = false;
  for (unsigned i = c.begin; i < c.end; ++i) {
    const unsigned rel = i - c.begin;
    if (p.at(i).op == Opcode::kIAdd && c.on_nsu[rel]) value_path_available = true;
  }
  const bool via_live_in =
      std::find(c.regs_in.begin(), c.regs_in.end(), 9) != c.regs_in.end();
  EXPECT_TRUE(value_path_available || via_live_in);
}

TEST(Analyzer, LoopBodyIsOwnCandidate) {
  const Program p = assemble(R"(
    MOVI R16, 0x10000
    MOV  R7, R0
  loop:
    IMAD R8, R7, 8, R16
    LD   R10, [R8+0]
    FADD R11, R10, R10
    ST   [R8+0], R11
    IADD R7, R7, R1
    ISETP P0, LT, R7, R6
    @P0 BRA loop
    EXIT
  )");
  const AnalysisResult r = analyze(p);
  ASSERT_EQ(r.accepted.size(), 1u);
  EXPECT_GE(r.accepted[0].begin, 2u);  // inside the loop body
  EXPECT_LE(r.accepted[0].end, 7u);
}

TEST(Analyzer, MaxMemInstsBound) {
  // A block with more loads than the seq field allows is rejected.
  ProgramBuilder b;
  b.movi(16, 0x10000);
  for (int i = 0; i < 70; ++i) b.ld(10, 16, i * 8);
  b.st(16, 10).exit();
  AnalyzerOptions opts;
  opts.max_mem_insts = 64;
  const AnalysisResult r = analyze(b.build(), opts);
  EXPECT_TRUE(r.accepted.empty());
}

}  // namespace
}  // namespace sndp
