// Tests for address decomposition and random page placement.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "mem/address_map.h"

namespace sndp {
namespace {

TEST(AddressMap, LineRounding) {
  AddressMap amap(SystemConfig::paper());
  EXPECT_EQ(amap.line_of(0), 0u);
  EXPECT_EQ(amap.line_of(127), 0u);
  EXPECT_EQ(amap.line_of(128), 128u);
  EXPECT_EQ(amap.line_of(0x12345), 0x12345u & ~127u);
}

TEST(AddressMap, SamePageSameHmc) {
  const SystemConfig cfg = SystemConfig::paper();
  AddressMap amap(cfg);
  for (Addr page = 0; page < 64; ++page) {
    const Addr base = page * cfg.page_bytes;
    const HmcId h = amap.hmc_of(base);
    EXPECT_EQ(amap.hmc_of(base + cfg.page_bytes - 1), h);
    EXPECT_EQ(amap.hmc_of(base + 128), h);
    EXPECT_LT(h, cfg.num_hmcs);
  }
}

TEST(AddressMap, PlacementRoughlyUniform) {
  const SystemConfig cfg = SystemConfig::paper();
  AddressMap amap(cfg);
  std::map<HmcId, unsigned> counts;
  constexpr unsigned kPages = 80000;
  for (unsigned p = 0; p < kPages; ++p) ++counts[amap.hmc_of_page(p)];
  ASSERT_EQ(counts.size(), cfg.num_hmcs);
  for (const auto& [h, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), kPages / 8.0, kPages / 8.0 * 0.1);
  }
}

TEST(AddressMap, PlacementDependsOnSeed) {
  SystemConfig a = SystemConfig::paper();
  SystemConfig b = SystemConfig::paper();
  b.placement_seed = a.placement_seed + 1;
  AddressMap ma(a), mb(b);
  unsigned diffs = 0;
  for (unsigned p = 0; p < 1000; ++p) diffs += ma.hmc_of_page(p) != mb.hmc_of_page(p) ? 1 : 0;
  EXPECT_GT(diffs, 500u);
}

TEST(AddressMap, ConsecutiveLinesInterleaveVaults) {
  const SystemConfig cfg = SystemConfig::paper();
  AddressMap amap(cfg);
  // Lines within one page must cycle through all 16 vaults.
  std::map<VaultId, unsigned> vaults;
  for (unsigned l = 0; l < cfg.page_bytes / 128; ++l) {
    ++vaults[amap.decode(l * 128).vault];
  }
  EXPECT_EQ(vaults.size(), cfg.hmc.num_vaults);
}

TEST(AddressMap, VaultLocalLinesInterleaveBanksInRowBursts) {
  const SystemConfig cfg = SystemConfig::paper();
  AddressMap amap(cfg);
  // Successive lines landing in vault 0 share a (bank, row) for 4-line
  // bursts (row locality), then rotate through all banks (parallelism).
  const unsigned stride = cfg.hmc.num_vaults * 128;
  std::map<unsigned, unsigned> banks;
  for (unsigned i = 0; i < 4 * cfg.hmc.banks_per_vault; ++i) {
    const DramCoord c = amap.decode(static_cast<Addr>(i) * stride);
    EXPECT_EQ(c.vault, 0u);
    ++banks[c.bank];
    // Lines within one 4-line burst share bank and row.
    const DramCoord first = amap.decode(static_cast<Addr>(i - i % 4) * stride);
    EXPECT_EQ(c.bank, first.bank);
    EXPECT_EQ(c.row, first.row);
  }
  EXPECT_EQ(banks.size(), cfg.hmc.banks_per_vault);
  for (const auto& [bank, count] : banks) EXPECT_EQ(count, 4u) << bank;
}

TEST(AddressMap, DecodeFieldsWithinBounds) {
  const SystemConfig cfg = SystemConfig::paper();
  AddressMap amap(cfg);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const Addr a = rng.next_u64() & ((1ull << 34) - 1);
    const DramCoord c = amap.decode(a);
    EXPECT_LT(c.hmc, cfg.num_hmcs);
    EXPECT_LT(c.vault, cfg.hmc.num_vaults);
    EXPECT_LT(c.bank, cfg.hmc.banks_per_vault);
    EXPECT_LT(c.column, cfg.hmc.row_bytes / 128);
  }
}

TEST(AddressMap, DecodeIsDeterministic) {
  AddressMap a(SystemConfig::paper());
  AddressMap b(SystemConfig::paper());
  for (Addr addr = 0; addr < 1 << 20; addr += 4093) {
    const DramCoord ca = a.decode(addr);
    const DramCoord cb = b.decode(addr);
    EXPECT_EQ(ca.hmc, cb.hmc);
    EXPECT_EQ(ca.vault, cb.vault);
    EXPECT_EQ(ca.bank, cb.bank);
    EXPECT_EQ(ca.row, cb.row);
  }
}

}  // namespace
}  // namespace sndp
