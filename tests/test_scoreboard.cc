// Tests for the per-warp scoreboard hazard logic.
#include <gtest/gtest.h>

#include "gpu/scoreboard.h"

namespace sndp {
namespace {

Instr add(unsigned rd, unsigned rs0, unsigned rs1) {
  Instr in;
  in.op = Opcode::kIAdd;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.src[1] = static_cast<std::uint8_t>(rs1);
  return in;
}

TEST(Scoreboard, FreshBoardIssuesAnything) {
  Scoreboard sb;
  EXPECT_TRUE(sb.can_issue(add(0, 1, 2), 0));
}

TEST(Scoreboard, RawHazard) {
  Scoreboard sb;
  sb.set_reg_ready_at(1, 10);
  EXPECT_FALSE(sb.can_issue(add(0, 1, 2), 9));
  EXPECT_TRUE(sb.can_issue(add(0, 1, 2), 10));
}

TEST(Scoreboard, WawHazardOnDestination) {
  Scoreboard sb;
  sb.set_reg_ready_at(0, 20);
  EXPECT_FALSE(sb.can_issue(add(0, 1, 2), 5));
  EXPECT_TRUE(sb.can_issue(add(0, 1, 2), 20));
}

TEST(Scoreboard, PendingLoadBlocksUntilCompleted) {
  Scoreboard sb;
  sb.mark_load_pending(3);
  EXPECT_FALSE(sb.can_issue(add(0, 3, 2), 1'000'000));
  sb.complete_load(3, 42);
  EXPECT_TRUE(sb.can_issue(add(0, 3, 2), 42));
}

TEST(Scoreboard, GuardPredicateHazard) {
  Scoreboard sb;
  sb.set_pred_ready_at(1, 30);
  Instr in = add(0, 1, 2);
  in.guard_pred = 1;
  EXPECT_FALSE(sb.can_issue(in, 29));
  EXPECT_TRUE(sb.can_issue(in, 30));
}

TEST(Scoreboard, SetpDestinationHazard) {
  Scoreboard sb;
  sb.set_pred_ready_at(2, 15);
  Instr setp;
  setp.op = Opcode::kISetp;
  setp.pred_dst = 2;
  setp.src[0] = 1;
  setp.use_imm = true;
  EXPECT_FALSE(sb.can_issue(setp, 14));
  EXPECT_TRUE(sb.can_issue(setp, 15));
}

TEST(Scoreboard, ImmediateSlotNotChecked) {
  Scoreboard sb;
  sb.set_reg_ready_at(kNoReg == 255 ? 31 : 31, 100);  // poison an unrelated reg
  Instr in;
  in.op = Opcode::kIAdd;
  in.dst = 0;
  in.src[0] = 1;
  in.use_imm = true;
  in.imm = 5;
  in.src[1] = 31;  // stale id in the immediate slot must be ignored
  EXPECT_TRUE(sb.can_issue(in, 0));
}

TEST(Scoreboard, ResetClearsState) {
  Scoreboard sb;
  sb.mark_load_pending(7);
  sb.reset();
  EXPECT_TRUE(sb.can_issue(add(0, 7, 7), 0));
}

}  // namespace
}  // namespace sndp
