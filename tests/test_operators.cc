// Operator-library tests (integration tier).  Three properties beyond the
// per-operator structural checks:
//  * generation is deterministic — same scale/config, same rng seed, same
//    program bytes and same initial memory image;
//  * the timing simulator is byte-identical to the reference interpreter
//    for every operator across a spread of tile/size configs (the full
//    15-point config matrix runs in the diff tier; here the matrix is the
//    tile axis instead);
//  * a mixed tenant set (operator + classic Table-1 kernel) matches
//    independent reference replay under every arbiter.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sndp.h"

namespace sndp {
namespace {

SystemConfig ndp_config() {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;
  return cfg;
}

// Runs one explicitly-configured operator instance through the reference
// interpreter and the timing simulator on identical images.  Empty string:
// byte-identical; otherwise a failure description.
std::string diff_operator(Workload& wl, const SystemConfig& cfg) {
  GlobalMemory initial;
  MemoryAllocator alloc;
  Rng rng(11);
  wl.setup(initial, alloc, rng);

  GlobalMemory ref_mem = initial;
  const RefResult ref = ref_run(wl.program(), wl.launch(), ref_mem);
  if (!ref.completed) {
    return "reference failed: " + (ref.error.empty() ? "budget exhausted" : ref.error);
  }

  GlobalMemory sim_mem = initial;
  const KernelImage image = analyze_and_generate(wl.program());
  Simulator sim(cfg);
  const RunResult r = sim.run_image(image, wl.launch(), sim_mem, wl.name());
  if (!r.completed) return "simulator did not complete";
  if (!wl.verify(sim_mem)) return "host verify failed on the sim image";

  Addr where = 0;
  if (!sim_mem.equal_contents(ref_mem, &where)) {
    return "memory mismatch at 0x" + std::to_string(where);
  }
  return {};
}

TEST(Operators, RegisteredAndDistinctFromTableOne) {
  ASSERT_EQ(operator_names().size(), 4u);
  EXPECT_EQ(all_workload_names().size(), workload_names().size() + 4u);
  for (const auto& n : operator_names()) {
    auto wl = make_workload(n, ProblemScale::kTiny);
    EXPECT_EQ(wl->name(), n);
    EXPECT_FALSE(wl->description().empty());
  }
}

TEST(Operators, GenerationIsDeterministic) {
  for (const auto& name : operator_names()) {
    GlobalMemory mem_a, mem_b;
    MemoryAllocator alloc_a, alloc_b;
    auto a = make_workload(name, ProblemScale::kTiny);
    auto b = make_workload(name, ProblemScale::kTiny);
    Rng rng_a(7), rng_b(7);
    a->setup(mem_a, alloc_a, rng_a);
    b->setup(mem_b, alloc_b, rng_b);
    EXPECT_EQ(a->program().disassemble(), b->program().disassemble()) << name;
    EXPECT_TRUE(mem_a.equal_contents(mem_b)) << name << ": initial images differ";
  }
}

TEST(Operators, TileConfigChangesTheKernelShape) {
  // The tile axis is real: different unroll factors emit different kernels
  // (same config twice stays byte-identical — covered above via the scale
  // presets — so a differing disassembly means the config reached codegen).
  GlobalMemory mem;
  MemoryAllocator alloc;
  Rng rng(7);
  GemmOperator narrow(ProblemScale::kTiny, GemmConfig{16, 16, 16, 1});
  GemmOperator wide(ProblemScale::kTiny, GemmConfig{16, 16, 16, 8});
  narrow.setup(mem, alloc, rng);
  {
    GlobalMemory m2;
    MemoryAllocator a2;
    Rng r2(7);
    wide.setup(m2, a2, r2);
  }
  EXPECT_NE(narrow.program().disassemble(), wide.program().disassemble());
  EXPECT_GT(wide.program().size(), narrow.program().size());
}

TEST(Operators, GemmMatchesReferenceAcrossTileConfigs) {
  const GemmConfig configs[] = {
      {16, 16, 16, 1},  // score 0: analyzer keeps it on the GPU
      {16, 16, 16, 2},  {8, 16, 32, 8}, {24, 8, 16, 4}};
  for (const GemmConfig& c : configs) {
    GemmOperator wl(ProblemScale::kTiny, c);
    EXPECT_EQ(diff_operator(wl, ndp_config()), "")
        << "GEMM " << c.m << "x" << c.n << "x" << c.k << "/t" << c.tile_k;
  }
}

TEST(Operators, SpmvMatchesReferenceAcrossTileConfigs) {
  const SpmvConfig configs[] = {{128, 2, 64}, {256, 4, 128}, {64, 8, 32}};
  for (const SpmvConfig& c : configs) {
    SpmvOperator wl(ProblemScale::kTiny, c);
    EXPECT_EQ(diff_operator(wl, ndp_config()), "")
        << "SPMV rows=" << c.rows << " nnz=" << c.max_nnz;
  }
}

TEST(Operators, ReduceMatchesReferenceAcrossTileConfigs) {
  const ReduceConfig configs[] = {{128, 8, 2, false},   // rejected (score <= 0)
                                  {64, 16, 4, true},
                                  {64, 8, 8, true},     // offloaded, interleaved
                                  {256, 4, 4, false}};
  for (const ReduceConfig& c : configs) {
    ReduceOperator wl(ProblemScale::kTiny, c);
    EXPECT_EQ(diff_operator(wl, ndp_config()), "")
        << "REDUCE batches=" << c.batches << " len=" << c.len << " unroll=" << c.unroll
        << (c.interleaved ? " interleaved" : "");
  }
}

TEST(Operators, AttnMatchesReferenceAcrossTileConfigs) {
  const AttnConfig configs[] = {{64, 4, 32, true},
                                {64, 2, 32, false},
                                {128, 8, 64, true},   // masked: guarded producer
                                {64, 4, 16, false}};
  for (const AttnConfig& c : configs) {
    AttnOperator wl(ProblemScale::kTiny, c);
    EXPECT_EQ(diff_operator(wl, ndp_config()), "")
        << "ATTN q=" << c.queries << " ctx=" << c.ctx << " keys=" << c.keys
        << (c.masked ? " masked" : "");
  }
}

TEST(Operators, TenantMixMatchesReferenceUnderEveryArbiter) {
  // One operator tenant sharing the machine with a classic Table-1 tenant;
  // arbitration changes scheduling, never bytes.
  const std::pair<TenantArbiter, const char*> arbiters[] = {
      {TenantArbiter::kRoundRobin, "round-robin"},
      {TenantArbiter::kWeightedShare, "weighted-share"},
      {TenantArbiter::kStrictPriority, "strict-priority"}};
  for (const auto& [arb, label] : arbiters) {
    OraclePoint p;
    p.label = label;
    p.cfg = SystemConfig::paper();
    p.cfg.governor.epoch_cycles = 1000;
    p.cfg.governor.mode = OffloadMode::kAlways;
    p.cfg.tenancy.arbiter = arb;
    const DiffReport report =
        diff_check_tenants({"ATTN", "VADD"}, ProblemScale::kTiny, {p});
    ASSERT_TRUE(report.ref_completed) << label << ": " << report.ref_error;
    EXPECT_TRUE(report.ok()) << label << "\n" << to_string(report);
    EXPECT_EQ(report.outcomes.size(), 1u);
  }
}

}  // namespace
}  // namespace sndp
