// Tests for the request-lifecycle latency tracer (src/obs/latency.*): the
// log2 histogram core (bucket edges, overflow, merge associativity,
// percentile interpolation), the tracer's span bookkeeping (sampling,
// bounded span table, cancel/finish lifecycle), and the system-level
// determinism pins — latency histograms must be bit-identical with idle
// fast-forward on/off and across serial/parallel sweeps, and a run with
// tracing disabled must simulate the exact same machine.
#include <gtest/gtest.h>

#include <cstdint>

#include "sndp.h"

namespace sndp {
namespace {

// ---------------------------------------------------------------------------
// Log2Histogram core
// ---------------------------------------------------------------------------

TEST(Log2Histogram, BucketEdges) {
  // Bucket 0 is exactly the value 0; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  for (unsigned k = 1; k < 46; ++k) {
    const std::uint64_t pow = std::uint64_t{1} << k;
    EXPECT_EQ(Log2Histogram::bucket_of(pow - 1), k) << "2^" << k << "-1";
    EXPECT_EQ(Log2Histogram::bucket_of(pow), k + 1) << "2^" << k;
    EXPECT_EQ(Log2Histogram::bucket_of(pow + 1), k + 1) << "2^" << k << "+1";
  }
  // lo/hi are a partition: every bucket's endpoints map back to it.
  for (unsigned b = 0; b < Log2Histogram::kNumBuckets - 1; ++b) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_hi(b)), b);
    EXPECT_EQ(Log2Histogram::bucket_lo(b + 1),
              b == 0 ? 1u : Log2Histogram::bucket_hi(b) + 1);
  }
}

TEST(Log2Histogram, OverflowBucketCatchesEverythingLarge) {
  const unsigned last = Log2Histogram::kNumBuckets - 1;
  EXPECT_EQ(Log2Histogram::bucket_of(std::uint64_t{1} << 46), last);
  EXPECT_EQ(Log2Histogram::bucket_of(UINT64_MAX), last);
  EXPECT_EQ(Log2Histogram::bucket_hi(last), UINT64_MAX);

  Log2Histogram h;
  h.record(std::uint64_t{1} << 50);
  h.record(UINT64_MAX / 2);
  EXPECT_EQ(h.bucket_count(last), 2u);
  // Count/sum/min/max stay exact even for overflow-bucket values.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), (std::uint64_t{1} << 50) + UINT64_MAX / 2);
  EXPECT_EQ(h.min(), std::uint64_t{1} << 50);
  EXPECT_EQ(h.max(), UINT64_MAX / 2);
}

TEST(Log2Histogram, EmptyHistogramIsInert) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Log2Histogram, MergeIsAssociativeAndMatchesDirectRecording) {
  const std::uint64_t va[] = {0, 1, 7, 100, 4096};
  const std::uint64_t vb[] = {3, 3, 900'000};
  const std::uint64_t vc[] = {1u << 20, (std::uint64_t{1} << 50), 42};
  Log2Histogram a, b, c, direct;
  for (auto v : va) { a.record(v); direct.record(v); }
  for (auto v : vb) { b.record(v); direct.record(v); }
  for (auto v : vc) { c.record(v); direct.record(v); }

  Log2Histogram ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  Log2Histogram bc = b;     // a + (b + c)
  bc.merge(c);
  Log2Histogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, direct);
  // Merging an empty histogram is the identity.
  Log2Histogram with_empty = ab_c;
  with_empty.merge(Log2Histogram{});
  EXPECT_EQ(with_empty, ab_c);
}

TEST(Log2Histogram, PercentileInterpolation) {
  // {1, 3}: the p50 rank (0.5) lands in the [2,3] bucket holding the single
  // value 3, so the midpoint 2.5 is reported.
  Log2Histogram two;
  two.record(1);
  two.record(3);
  EXPECT_DOUBLE_EQ(two.percentile(0.5), 2.5);
  // q<=0 / q>=1 are the exact envelope.
  EXPECT_DOUBLE_EQ(two.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(two.percentile(1.0), 3.0);

  // A single repeated value reports exactly that value at every quantile
  // (interpolation is clamped to [min, max]).
  Log2Histogram rep;
  for (int i = 0; i < 17; ++i) rep.record(1000);
  for (double q : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(rep.percentile(q), 1000.0) << q;
  }

  // Uniform fill of one bucket: interpolation is monotone in q and stays
  // inside the bucket's range.
  Log2Histogram uni;
  for (std::uint64_t v = 64; v < 128; ++v) uni.record(v);
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double p = uni.percentile(q);
    EXPECT_GE(p, 64.0);
    EXPECT_LE(p, 127.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(uni.percentile(0.5), 64.0 + 0.5 * (127.0 - 64.0));
}

// ---------------------------------------------------------------------------
// LatencyTracer span bookkeeping
// ---------------------------------------------------------------------------

TEST(LatencyTracer, SegmentAccountingAndOtherRemainder) {
  LatencyTracer t(0);  // histograms only, no spans
  Packet p;
  p.type = PacketType::kMemRead;
  t.start(p, 1000, 0);
  t.queue_hop(p, 1400, "q", 0);       // 400 queue
  t.add_link(p, 100, 250);            // +100 queue, 250 link
  t.add_cache(p, 50);                 // 50 cache
  t.add_vault(p, /*enqueue=*/2000, /*done=*/2600, /*service=*/200, 0);
  // vault: 200 dram + 400 queue; finish 500 ps after the last stamp.
  t.finish(p, PathClass::kGpuReadDram, 3100, 0);

  const LatencySummary& s = t.summary();
  EXPECT_EQ(s.started, 1u);
  EXPECT_EQ(s.finished, 1u);
  EXPECT_EQ(s.cancelled, 0u);
  const auto ci = static_cast<std::size_t>(PathClass::kGpuReadDram);
  EXPECT_EQ(s.per_class[ci].count(), 1u);
  EXPECT_EQ(s.per_class[ci].sum(), 2100u);  // 3100 - 1000
  EXPECT_EQ(s.seg_sum_ps[ci][static_cast<std::size_t>(LatSegment::kQueue)], 900u);
  EXPECT_EQ(s.seg_sum_ps[ci][static_cast<std::size_t>(LatSegment::kLink)], 250u);
  EXPECT_EQ(s.seg_sum_ps[ci][static_cast<std::size_t>(LatSegment::kDram)], 200u);
  EXPECT_EQ(s.seg_sum_ps[ci][static_cast<std::size_t>(LatSegment::kCache)], 50u);
  // kOther = total - explicit = 2100 - 1400.
  EXPECT_EQ(s.seg_sum_ps[ci][static_cast<std::size_t>(LatSegment::kOther)], 700u);
  // The stamp is deactivated: further calls are no-ops.
  t.finish(p, PathClass::kGpuReadDram, 9999, 0);
  EXPECT_EQ(t.summary().finished, 1u);
}

TEST(LatencyTracer, CancelBalancesLifecycle) {
  LatencyTracer t(0);
  Packet a, b;
  a.type = b.type = PacketType::kMemRead;
  t.start(a, 10, 0);
  t.start(b, 20, 0);
  t.cancel(a);
  t.finish(b, PathClass::kGpuReadL2, 120, 0);
  EXPECT_EQ(t.summary().started, 2u);
  EXPECT_EQ(t.summary().finished, 1u);
  EXPECT_EQ(t.summary().cancelled, 1u);
  // An inactive (never-started) packet is ignored entirely.
  Packet idle;
  t.queue_hop(idle, 50, "q", 0);
  t.finish(idle, PathClass::kGpuWrite, 60, 0);
  EXPECT_EQ(t.summary().started, 2u);
  EXPECT_EQ(t.summary().finished, 1u);
}

TEST(LatencyTracer, StratifiedSamplingIsDeterministicPerType) {
  // sample=2: ordinals 0, 2, 4 of each packet type get spans.
  LatencyTracer t(2);
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.type = PacketType::kMemRead;
    t.start(p, i, 0);
    EXPECT_EQ(p.lt.span_id != 0, i % 2 == 0) << i;
  }
  // A different type has its own ordinal stream.
  Packet q;
  q.type = PacketType::kRdf;
  t.start(q, 99, 0);
  EXPECT_NE(q.lt.span_id, 0u);
  EXPECT_EQ(t.summary().spans_sampled, 4u);
  EXPECT_EQ(t.summary().spans_dropped, 0u);
}

TEST(LatencyTracer, SpanTableOverflowIsCountedNeverSilent) {
  LatencyTracer t(/*sample=*/1, /*max_spans=*/2);
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.type = PacketType::kMemRead;
    t.start(p, i, 0);
    t.finish(p, PathClass::kGpuReadL2, i + 10, 0);
  }
  EXPECT_EQ(t.summary().spans_sampled, 5u);
  EXPECT_EQ(t.summary().spans_dropped, 3u);
  StatSet stats;
  t.export_stats(stats);
  EXPECT_EQ(stats.get("sim.latency_spans"), 2.0);
  EXPECT_EQ(stats.get("sim.latency_spans_dropped"), 3.0);
}

// ---------------------------------------------------------------------------
// System-level determinism pins
// ---------------------------------------------------------------------------

RunResult run_one(const std::string& workload, bool fast_forward, bool latency_on) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kDynamicCache;
  cfg.fast_forward = fast_forward;
  cfg.latency_trace = latency_on;
  auto wl = make_workload(workload, ProblemScale::kTiny);
  return Simulator(cfg).run(*wl);
}

TEST(LatencySystem, HistogramsBitIdenticalWithFastForwardOnOff) {
  for (const char* w : {"VADD", "BFS"}) {
    const RunResult ff = run_one(w, /*fast_forward=*/true, /*latency_on=*/true);
    const RunResult naive = run_one(w, /*fast_forward=*/false, /*latency_on=*/true);
    ASSERT_TRUE(ff.completed) << w;
    ASSERT_TRUE(ff.latency_enabled);
    EXPECT_EQ(ff.latency, naive.latency) << w;
    EXPECT_EQ(ff.stats.values(), naive.stats.values()) << w;
  }
}

TEST(LatencySystem, DisabledTracerDoesNotPerturbTheMachine) {
  const RunResult on = run_one("VADD", true, /*latency_on=*/true);
  const RunResult off = run_one("VADD", true, /*latency_on=*/false);
  EXPECT_TRUE(on.latency_enabled);
  EXPECT_FALSE(off.latency_enabled);
  EXPECT_EQ(off.latency, LatencySummary{});
  // Identical simulation: same cycles, same runtime.
  EXPECT_EQ(on.sm_cycles, off.sm_cycles);
  EXPECT_EQ(on.runtime_ps, off.runtime_ps);
  // No lat.* keys exported when disabled.
  for (const auto& [name, value] : off.stats.values()) {
    EXPECT_TRUE(name.rfind("lat.", 0) != 0 &&
                name.rfind("sim.latency", 0) != 0)
        << name;
  }
  // Enabled run reconciles: finished == sum of per-class counts, and the
  // lifecycle balances (also enforced at runtime by the stats audit).
  std::uint64_t class_total = 0;
  for (const auto& h : on.latency.per_class) class_total += h.count();
  EXPECT_EQ(class_total, on.latency.finished);
  EXPECT_EQ(on.latency.started, on.latency.finished + on.latency.cancelled);
  EXPECT_EQ(on.stats.get("audit.violations"), 0.0);
}

TEST(LatencySystem, SerialAndParallelSweepsAgree) {
  auto build = [](unsigned jobs) {
    SweepRunner runner({.jobs = jobs, .point_timeout_s = 0.0, .progress = false});
    for (const char* w : {"VADD", "KMN", "STN", "FWT"}) {
      SweepPoint p;
      p.id = std::string(w) + "/lat";
      p.workload = w;
      p.scale = ProblemScale::kTiny;
      p.cfg = SystemConfig::small_test();
      p.cfg.governor.mode = OffloadMode::kDynamicCache;
      runner.add(std::move(p));
    }
    return runner;
  };
  SweepRunner serial = build(1);
  SweepRunner parallel = build(4);
  serial.run();
  parallel.run();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(serial.outcome(i).ran);
    ASSERT_TRUE(parallel.outcome(i).ran);
    EXPECT_EQ(serial.result(i).latency, parallel.result(i).latency) << i;
    EXPECT_EQ(serial.result(i).stats.values(), parallel.result(i).stats.values()) << i;
  }
}

}  // namespace
}  // namespace sndp
