// Tests for the common layer: RNG determinism, stats, units, config.
#include <gtest/gtest.h>

#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace sndp {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedReproduces) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next_u64());
  rng.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff = any_diff || (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  std::array<unsigned, 8> counts{};
  constexpr unsigned kDraws = 80000;
  for (unsigned i = 0; i < kDraws; ++i) ++counts[rng.next_below(8)];
  for (unsigned c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 8.0, kDraws / 8.0 * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  unsigned hits = 0;
  constexpr unsigned kDraws = 100000;
  for (unsigned i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(StatSet, SetGetAdd) {
  StatSet s;
  s.set("a", 1.0);
  s.add("a", 2.0);
  EXPECT_DOUBLE_EQ(s.get("a"), 3.0);
  EXPECT_THROW(s.get("missing"), std::out_of_range);
  EXPECT_DOUBLE_EQ(s.get_or("missing", -1.0), -1.0);
}

TEST(StatSet, MergeWithPrefix) {
  StatSet a, b;
  b.set("hits", 5.0);
  a.merge("l1.", b);
  a.merge("l1.", b);
  EXPECT_DOUBLE_EQ(a.get("l1.hits"), 10.0);
}

TEST(StatSet, SumMatching) {
  StatSet s;
  s.set("sm0.stall", 1.0);
  s.set("sm1.stall", 2.0);
  s.set("sm1.other", 7.0);
  EXPECT_DOUBLE_EQ(s.sum_matching("sm", ".stall"), 3.0);
}

TEST(Distribution, Moments) {
  Distribution d;
  d.record(1.0);
  d.record(3.0);
  d.record(2.0);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 3.0);
}

TEST(Units, LinkSerialization) {
  // 20 GB/s -> 50 ps per byte.
  EXPECT_EQ(serialize_ps(1, 20.0), 50u);
  EXPECT_EQ(serialize_ps(128, 20.0), 6400u);
}

TEST(Units, TickTimeExactNoDrift) {
  // 700 MHz = 700'000 kHz; tick n maps to n * 1e9 / 700e3 ps exactly.
  const std::uint64_t khz = 700'000;
  EXPECT_EQ(tick_time_ps(0, khz), 0u);
  EXPECT_EQ(tick_time_ps(7, khz), 10000u);  // 7 cycles = 10 ns exactly
  // No cumulative drift: 7,000,000 cycles = 10 ms exactly.
  EXPECT_EQ(tick_time_ps(7'000'000, khz), 10'000'000'000ull);
}

TEST(Config, PaperPresetMatchesTable2) {
  const SystemConfig c = SystemConfig::paper();
  EXPECT_EQ(c.num_sms, 64u);
  EXPECT_EQ(c.num_hmcs, 8u);
  EXPECT_EQ(c.sm.max_threads, 1536u);
  EXPECT_EQ(c.sm.max_ctas, 8u);
  EXPECT_EQ(c.sm.max_registers, 32768u);
  EXPECT_EQ(c.sm.scratchpad_bytes, 48u * 1024);
  EXPECT_EQ(c.sm.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(c.sm.l1d.ways, 4u);
  EXPECT_EQ(c.sm.l1d.mshr_entries, 48u);
  EXPECT_EQ(c.l2.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(c.l2.ways, 16u);
  EXPECT_EQ(c.hmc.num_vaults, 16u);
  EXPECT_EQ(c.hmc.banks_per_vault, 16u);
  EXPECT_EQ(c.hmc.vault_queue_size, 64u);
  EXPECT_EQ(c.hmc.timing.tRP, 9u);
  EXPECT_EQ(c.hmc.timing.tCCD, 4u);
  EXPECT_EQ(c.hmc.timing.tRCD, 9u);
  EXPECT_EQ(c.hmc.timing.tCL, 9u);
  EXPECT_EQ(c.hmc.timing.tWR, 12u);
  EXPECT_EQ(c.hmc.timing.tRAS, 24u);
  EXPECT_EQ(c.clocks.sm_khz, 700'000u);
  EXPECT_EQ(c.clocks.xbar_khz, 1'250'000u);
  EXPECT_EQ(c.clocks.nsu_khz, 350'000u);
  EXPECT_DOUBLE_EQ(c.link.gb_per_s, 20.0);
  EXPECT_EQ(c.nsu.max_warps, 48u);
  EXPECT_EQ(c.ndp_buffers.sm_pending_entries, 300u);
  EXPECT_EQ(c.ndp_buffers.sm_ready_entries, 64u);
  EXPECT_EQ(c.ndp_buffers.nsu_read_data_entries, 256u);
  EXPECT_EQ(c.ndp_buffers.nsu_write_addr_entries, 256u);
  EXPECT_EQ(c.ndp_buffers.nsu_cmd_entries, 10u);
  EXPECT_EQ(c.governor.epoch_cycles, 30'000u);
  EXPECT_DOUBLE_EQ(c.governor.initial_ratio, 0.1);
  EXPECT_DOUBLE_EQ(c.governor.initial_step, 0.15);
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, MoreCoreAnd2xPresets) {
  EXPECT_EQ(SystemConfig::paper_more_core().num_sms, 72u);
  EXPECT_EQ(SystemConfig::paper_2x().num_sms, 128u);
  EXPECT_NO_THROW(SystemConfig::paper_more_core().validate());
  EXPECT_NO_THROW(SystemConfig::paper_2x().validate());
  EXPECT_NO_THROW(SystemConfig::small_test().validate());
}

TEST(Config, ValidateRejectsBadShapes) {
  SystemConfig c = SystemConfig::paper();
  c.num_hmcs = 0;  // need at least one stack
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::paper();
  c.num_hmcs = 6;  // non-power-of-two counts ride the incomplete hypercube
  EXPECT_NO_THROW(c.validate());

  c = SystemConfig::paper();
  c.num_hmcs = 300;  // exceeds the 8-bit node-id space
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::paper();
  c.placement.policy = PlacementPolicyKind::kMigration;
  c.placement.migration_threshold = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::paper();
  c.num_sms = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::paper();
  c.page_bytes = 3000;  // not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::paper();
  c.sm.l1d.line_bytes = 64;  // mismatched with L2
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::paper();
  c.governor.step_min = 0.5;
  c.governor.step_max = 0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CacheConfigTest, SetCountArithmetic) {
  CacheConfig c;
  c.size_bytes = 32 * 1024;
  c.ways = 4;
  c.line_bytes = 128;
  EXPECT_EQ(c.num_sets(), 64u);
}

}  // namespace
}  // namespace sndp
