// Reference-interpreter tests: the scalar executor must implement the
// mini-ISA's architectural semantics exactly (launch registers, predication,
// warp-uniform branching, CTA barriers + scratchpad, f32 conversion) and
// must reject the programs the timing simulator rejects (divergent
// branches, barrier deadlock) instead of silently producing values.
#include <gtest/gtest.h>

#include "sndp.h"

namespace sndp {
namespace {

constexpr Addr kOut = 0x10000;

TEST(RefInterp, LaunchRegistersFollowTheConvention) {
  // OUT[4 * gtid + k] = Rk for k in 0..3.
  ProgramBuilder pb;
  pb.movi(10, static_cast<std::int64_t>(kOut));
  pb.madi(11, 0, 32, 10);  // &OUT[4 * gtid] with 8-byte slots
  for (unsigned k = 0; k < 4; ++k) pb.st(11, k, 8 * k);
  pb.exit();
  const Program prog = pb.build();

  GlobalMemory mem;
  const LaunchParams launch{48, 2};  // partial warps: 48 = 32 + 16
  const RefResult r = ref_run(prog, launch, mem);
  ASSERT_TRUE(r.completed) << r.error;
  for (unsigned cta = 0; cta < 2; ++cta) {
    for (unsigned t = 0; t < 48; ++t) {
      const unsigned gtid = cta * 48 + t;
      const Addr base = kOut + 32 * gtid;
      EXPECT_EQ(mem.read_u64(base + 0), gtid);       // R0: global thread id
      EXPECT_EQ(mem.read_u64(base + 8), 96u);        // R1: total threads
      EXPECT_EQ(mem.read_u64(base + 16), cta);       // R2: CTA id
      EXPECT_EQ(mem.read_u64(base + 24), t);         // R3: tid in CTA
    }
  }
}

TEST(RefInterp, UniformLoopAndPredicationMatchHandComputation) {
  // acc = sum_{i=1..5} i, but only even threads add; odd threads keep 0.
  ProgramBuilder pb;
  pb.movi(10, static_cast<std::int64_t>(kOut))
      .movi(4, 0)   // loop counter
      .movi(5, 0)   // acc
      .alui(Opcode::kAnd, 6, 0, 1)
      .isetpi(1, CmpOp::kEq, 6, 0)  // P1: gtid even
      .label("body")
      .alui(Opcode::kIAdd, 4, 4, 1)
      .pred(1)
      .alu(Opcode::kIAdd, 5, 5, 4)
      .isetpi(0, CmpOp::kLt, 4, 5)
      .pred(0)
      .bra("body")
      .madi(11, 0, 8, 10)
      .st(11, 5)
      .exit();
  GlobalMemory mem;
  const RefResult r = ref_run(pb.build(), LaunchParams{64, 1}, mem);
  ASSERT_TRUE(r.completed) << r.error;
  for (unsigned t = 0; t < 64; ++t) {
    EXPECT_EQ(mem.read_u64(kOut + 8 * t), (t % 2 == 0) ? 15u : 0u) << "thread " << t;
  }
}

TEST(RefInterp, BarrierOrdersScratchpadAcrossWarps) {
  // shm[tid] = gtid; BAR; OUT[gtid] = shm[(tid + 1) % 64].  The rotation
  // crosses the warp boundary, so it only works if BAR really synchronizes
  // both warps of the CTA and the scratchpad is CTA-private.
  ProgramBuilder pb2;
  pb2.movi(10, static_cast<std::int64_t>(kOut))
      .movi(9, 0)
      .madi(12, 3, 8, 9)  // shm addr = tid * 8
      .shm_st(12, 0)      // shm[tid] = gtid
      .bar()
      .alui(Opcode::kIAdd, 13, 3, 1)
      .alui(Opcode::kAnd, 13, 13, 63)
      .madi(13, 13, 8, 9)
      .shm_ld(14, 13)     // shm[(tid + 1) % 64]
      .madi(15, 0, 8, 10)
      .st(15, 14)
      .exit();
  GlobalMemory mem;
  const RefResult r = ref_run(pb2.build(), LaunchParams{64, 2}, mem);
  ASSERT_TRUE(r.completed) << r.error;
  for (unsigned cta = 0; cta < 2; ++cta) {
    for (unsigned t = 0; t < 64; ++t) {
      EXPECT_EQ(mem.read_u64(kOut + 8 * (cta * 64 + t)), cta * 64 + (t + 1) % 64);
    }
  }
}

TEST(RefInterp, F32WidthConversionRoundTrips) {
  ProgramBuilder pb;
  pb.movi(10, static_cast<std::int64_t>(kOut))
      .movi(5, 3)
      .unary(Opcode::kI2F, 5, 5)          // 3.0
      .madi(11, 0, 4, 10)
      .st(11, 5, 0, 4, true)              // store as f32
      .ld(6, 11, 0, 4, true)              // load back as f32 -> double
      .madi(12, 0, 8, 10)
      .st(12, 6, 4096)                    // full f64 result after the f32 slots
      .exit();
  GlobalMemory mem;
  const RefResult r = ref_run(pb.build(), LaunchParams{32, 1}, mem);
  ASSERT_TRUE(r.completed) << r.error;
  for (unsigned t = 0; t < 32; ++t) {
    EXPECT_EQ(mem.read_f64(kOut + 4096 + 8 * t), 3.0);
  }
}

TEST(RefInterp, DivergentBranchIsAnError) {
  ProgramBuilder pb;
  pb.isetpi(1, CmpOp::kLt, 3, 7)  // lanes 0..6 of each warp take the branch
      .pred(1)
      .bra("skip")
      .label("skip")
      .exit();
  GlobalMemory mem;
  const RefResult r = ref_run(pb.build(), LaunchParams{32, 1}, mem);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("divergent"), std::string::npos) << r.error;
}

TEST(RefInterp, BarrierDeadlockIsAnError) {
  // Warp 0 (uniformly) skips the barrier and exits; warp 1 waits forever.
  ProgramBuilder pb;
  pb.isetpi(1, CmpOp::kLt, 3, 32)
      .pred(1)
      .bra("skip")
      .bar()
      .label("skip")
      .exit();
  GlobalMemory mem;
  const RefResult r = ref_run(pb.build(), LaunchParams{64, 1}, mem);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos) << r.error;
}

TEST(RefInterp, InstructionBudgetStopsRunaway) {
  ProgramBuilder pb;
  pb.movi(4, 0)
      .label("body")
      .alui(Opcode::kIAdd, 4, 4, 1)
      .isetpi(0, CmpOp::kLt, 4, 1'000'000'000)
      .pred(0)
      .bra("body")
      .exit();
  GlobalMemory mem;
  RefOptions opts;
  opts.max_instrs = 10'000;
  const RefResult r = ref_run(pb.build(), LaunchParams{32, 1}, mem, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.error.empty());
}

TEST(RefInterp, PassesEveryWorkloadHostOracle) {
  // The ten paper workloads each carry a host-side verifier; the reference
  // execution must satisfy all of them without any timing machinery.
  for (const std::string& name : workload_names()) {
    SCOPED_TRACE(name);
    auto wl = make_workload(name, ProblemScale::kTiny);
    GlobalMemory mem;
    MemoryAllocator alloc;
    Rng rng(SystemConfig::small_test().placement_seed ^ 0xABCDEF);
    wl->setup(mem, alloc, rng);
    const RefResult r = ref_run(wl->program(), wl->launch(), mem);
    ASSERT_TRUE(r.completed) << r.error;
    EXPECT_TRUE(wl->verify(mem));
    EXPECT_GT(r.instrs, 0u);
  }
}

}  // namespace
}  // namespace sndp
