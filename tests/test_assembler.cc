// Tests for the textual assembler.
#include <gtest/gtest.h>

#include "isa/assembler.h"

namespace sndp {
namespace {

TEST(Assembler, BasicProgram) {
  const Program p = assemble(R"(
    MOVI R1, 0x100
    IADD R2, R1, 8
    LD   R3, [R2+0]
    ST   [R2+8], R3
    EXIT
  )");
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.at(0).op, Opcode::kMovI);
  EXPECT_EQ(p.at(0).imm, 0x100);
  EXPECT_EQ(p.at(1).op, Opcode::kIAdd);
  EXPECT_TRUE(p.at(1).use_imm);
  EXPECT_EQ(p.at(2).op, Opcode::kLd);
  EXPECT_EQ(p.at(2).mem_width, 8u);
  EXPECT_EQ(p.at(3).op, Opcode::kSt);
  EXPECT_EQ(p.at(3).imm, 8);
  EXPECT_EQ(p.at(4).op, Opcode::kExit);
}

TEST(Assembler, WidthSuffixes) {
  const Program p = assemble(R"(
    LD.32  R1, [R0+0]
    LD.F32 R2, [R0+4]
    LD.64  R3, [R0+8]
    EXIT
  )");
  EXPECT_EQ(p.at(0).mem_width, 4u);
  EXPECT_FALSE(p.at(0).mem_f32);
  EXPECT_EQ(p.at(1).mem_width, 4u);
  EXPECT_TRUE(p.at(1).mem_f32);
  EXPECT_EQ(p.at(2).mem_width, 8u);
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
    MOVI R1, 0
  loop:
    IADD R1, R1, 1
    ISETP P0, LT, R1, 10
    @P0 BRA loop
    EXIT
  )");
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.at(3).op, Opcode::kBra);
  EXPECT_EQ(p.at(3).target, 1);
  EXPECT_EQ(p.at(3).guard_pred, 0);
  EXPECT_TRUE(p.at(3).guard_sense);
}

TEST(Assembler, NegatedGuard) {
  const Program p = assemble("@!P3 IADD R1, R1, 1\nEXIT\n");
  EXPECT_EQ(p.at(0).guard_pred, 3);
  EXPECT_FALSE(p.at(0).guard_sense);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
    ; full-line comment
    MOVI R1, 1   ; trailing comment
    # hash comment
    EXIT
  )");
  EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, MadWithImmediateAndRegister) {
  const Program p = assemble(R"(
    IMAD R4, R0, 8, R2
    IMAD R5, R0, R1, R2
    EXIT
  )");
  EXPECT_TRUE(p.at(0).use_imm);
  EXPECT_EQ(p.at(0).imm, 8);
  EXPECT_FALSE(p.at(1).use_imm);
}

TEST(Assembler, ScratchpadOps) {
  const Program p = assemble(R"(
    SHM.ST [R1+0], R2
    SHM.LD R3, [R1+0]
    EXIT
  )");
  EXPECT_EQ(p.at(0).op, Opcode::kShmSt);
  EXPECT_EQ(p.at(1).op, Opcode::kShmLd);
}

TEST(Assembler, NegativeOffsetsAndImmediates) {
  const Program p = assemble(R"(
    LD R1, [R2-24]
    IADD R3, R3, -5
    EXIT
  )");
  EXPECT_EQ(p.at(0).imm, -24);
  EXPECT_EQ(p.at(1).imm, -5);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble("FROB R1, R2\n"), AsmError);
}

TEST(AssemblerErrors, UndefinedLabel) {
  EXPECT_THROW(assemble("BRA nowhere\nEXIT\n"), AsmError);
}

TEST(AssemblerErrors, RegisterOutOfRange) {
  EXPECT_THROW(assemble("MOVI R32, 1\n"), AsmError);
  EXPECT_THROW(assemble("ISETP P9, LT, R0, 1\nEXIT\n"), AsmError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("IADD R1, R2\n"), AsmError);
  EXPECT_THROW(assemble("LD R1\n"), AsmError);
}

TEST(AssemblerErrors, BadCompareOp) {
  EXPECT_THROW(assemble("ISETP P0, QQ, R0, R1\n"), AsmError);
}

TEST(AssemblerErrors, ReportsLineNumber) {
  try {
    assemble("MOVI R1, 1\nBOGUS\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

}  // namespace
}  // namespace sndp
