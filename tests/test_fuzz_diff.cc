// NDP-equivalence fuzzing (ctest label: fuzz).
//
// Seeds 1..N (default 100; override with SNDP_FUZZ_SEEDS=N) each generate a
// random well-formed kernel plus a random configuration and cross-check the
// timing simulator against the reference interpreter byte-for-byte.  A
// divergence is shrunk to a minimal op list and dumped as a reproducer file
// (directory: SNDP_FUZZ_ARTIFACT_DIR, default the test temp dir); replay a
// dump with SNDP_FUZZ_REPRO=<file>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sndp.h"

namespace sndp {
namespace {

TEST(FuzzDiff, GenerationIsAPureFunctionOfTheSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
    const FuzzSpec a = generate_spec(seed);
    const FuzzSpec b = generate_spec(seed);
    EXPECT_EQ(a.to_text(), b.to_text());
    EXPECT_GE(a.ops.size(), 3u);
    // The program builds and validates.
    EXPECT_NO_THROW(build_fuzz_program(a).validate());
  }
}

TEST(FuzzDiff, SpecTextRoundTrips) {
  const FuzzSpec spec = generate_spec(42);
  const auto parsed = FuzzSpec::from_text(spec.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_text(), spec.to_text());
  EXPECT_FALSE(FuzzSpec::from_text("not a reproducer").has_value());
  EXPECT_FALSE(FuzzSpec::from_text("sndp-fuzz-repro-v1\nseed 1\n").has_value());
}

TEST(FuzzDiff, PlacementLineRoundTripsAndDefaultsToRandom) {
  // New reproducers carry the placement axis...
  FuzzSpec spec = generate_spec(42);
  spec.placement = PlacementPolicyKind::kMigration;
  spec.migration_threshold = 3;
  const auto parsed = FuzzSpec::from_text(spec.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->placement, PlacementPolicyKind::kMigration);
  EXPECT_EQ(parsed->migration_threshold, 3u);
  // ...while pre-placement reproducers (no `placement` line) still parse and
  // default to the random policy those runs actually used.
  const auto legacy = FuzzSpec::from_text(
      "sndp-fuzz-repro-v1\nseed 5\nlaunch 32 1\nloop 0\nmode 1 1\nhmcs 2\n"
      "op 3 1 2 4\nend\n");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->placement, PlacementPolicyKind::kRandom);
}

TEST(FuzzDiff, PartitionsLineRoundTripsAndDefaultsToSerial) {
  // New reproducers carry the parallel-in-time axis...
  FuzzSpec spec = generate_spec(42);
  spec.partitions = 4;
  const auto parsed = FuzzSpec::from_text(spec.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->partitions, 4u);
  EXPECT_EQ(fuzz_config(*parsed).parallel_partitions, 4u);
  // ...while pre-parallel reproducers (no `partitions` line) still parse
  // and replay serial, as those runs actually executed.
  const auto legacy = FuzzSpec::from_text(
      "sndp-fuzz-repro-v1\nseed 5\nlaunch 32 1\nloop 0\nmode 1 1\nhmcs 2\n"
      "op 3 1 2 4\nend\n");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->partitions, 1u);
  // The generator draws sharded cases often enough to matter, and only for
  // placements that do not fall back to serial.
  unsigned sharded = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzSpec s = generate_spec(seed);
    if (s.partitions > 1) {
      ++sharded;
      EXPECT_TRUE(s.placement == PlacementPolicyKind::kRandom ||
                  s.placement == PlacementPolicyKind::kLocality)
          << "seed " << seed;
    }
  }
  EXPECT_GE(sharded, 8u);
}

TEST(FuzzDiff, TenantsLineRoundTripsAndDefaultsToSingle) {
  // New reproducers carry the tenant axis...
  FuzzSpec spec = generate_spec(42);
  spec.tenants = 3;
  spec.arbiter = 2;
  const auto parsed = FuzzSpec::from_text(spec.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tenants, 3u);
  EXPECT_EQ(parsed->arbiter, 2u);
  EXPECT_EQ(fuzz_config(*parsed).tenancy.arbiter, TenantArbiter::kStrictPriority);
  // ...while pre-tenant reproducers (no `tenants` line) still parse and
  // replay single-tenant, as those runs actually executed.
  const auto legacy = FuzzSpec::from_text(
      "sndp-fuzz-repro-v1\nseed 5\nlaunch 32 1\nloop 0\nmode 1 1\nhmcs 2\n"
      "op 3 1 2 4\nend\n");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->tenants, 1u);
  // The axis is drawn last: the generator finds multi-tenant cases often
  // enough to matter, and drawing it never perturbs the pre-tenant shape.
  unsigned multi = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzSpec s = generate_spec(seed);
    if (s.tenants > 1) ++multi;
  }
  EXPECT_GE(multi, 8u);
}

TEST(FuzzDiff, TenantProgramsAreBaseShiftedCopies) {
  const FuzzSpec spec = generate_spec(7);
  // Tenant 0 is the classic program byte-for-byte; tenant 1 differs only
  // in its array bases (same length, same opcodes).
  EXPECT_EQ(build_fuzz_program(spec).disassemble(),
            build_fuzz_program(spec, 0).disassemble());
  const Program p0 = build_fuzz_program(spec, 0);
  const Program p1 = build_fuzz_program(spec, 1);
  EXPECT_EQ(p0.size(), p1.size());
  EXPECT_NE(p0.disassemble(), p1.disassemble());
}

TEST(FuzzDiff, TenantMixesMatchReference) {
  // Forced multi-tenant sweeps across all three arbiters; the seeds keep
  // their organically generated kernel/config shape.
  unsigned checked = 0;
  for (std::uint64_t seed : {2ull, 5ull, 13ull, 21ull, 34ull, 55ull}) {
    FuzzSpec spec = generate_spec(seed);
    spec.tenants = 2 + static_cast<unsigned>(seed % 2);
    spec.arbiter = static_cast<unsigned>(seed % 3);
    const auto divergence = run_fuzz_case(spec);
    EXPECT_FALSE(divergence.has_value())
        << "seed " << seed << ": " << *divergence << "\nspec:\n" << spec.to_text();
    ++checked;
  }
  EXPECT_EQ(checked, 6u);
}

TEST(FuzzDiff, OperatorLineRoundTripsAndDefaultsToEmpty) {
  // New reproducers carry the operator axis...
  FuzzSpec spec = generate_spec(42);
  spec.op_workload = "GEMM";
  spec.op_variant = 2;
  const auto parsed = FuzzSpec::from_text(spec.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op_workload, "GEMM");
  EXPECT_EQ(parsed->op_variant, 2u);
  // ...while pre-operator reproducers (no `opwl` line) still parse and
  // replay the generated kernel, as those runs actually executed.
  const auto legacy = FuzzSpec::from_text(
      "sndp-fuzz-repro-v1\nseed 5\nlaunch 32 1\nloop 0\nmode 1 1\nhmcs 2\n"
      "op 3 1 2 4\nend\n");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_TRUE(legacy->op_workload.empty());
  // The axis is drawn last: the generator picks operator cases often enough
  // to matter, and drawing it never perturbs the pre-operator shape.
  unsigned op_cases = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzSpec s = generate_spec(seed);
    if (!s.op_workload.empty()) ++op_cases;
  }
  EXPECT_GE(op_cases, 6u);
}

TEST(FuzzDiff, OperatorKernelsMatchReference) {
  // Every operator x every tile-config variant, over a few organically
  // generated config shapes (placement / offload mode / stack count vary
  // with the seed; the operator replaces the generated kernel).
  unsigned checked = 0;
  for (const std::string& name : operator_names()) {
    for (unsigned variant = 0; variant < 4; ++variant) {
      const std::uint64_t seed = 11 + 7 * variant;
      FuzzSpec spec = generate_spec(seed);
      spec.op_workload = name;
      spec.op_variant = variant;
      const auto divergence = run_fuzz_case(spec);
      EXPECT_FALSE(divergence.has_value())
          << name << " variant " << variant << ": " << *divergence
          << "\nspec:\n" << spec.to_text();
      ++checked;
    }
  }
  EXPECT_EQ(checked, 4u * static_cast<unsigned>(operator_names().size()));
}

TEST(FuzzDiff, ReproducerFileIsReplayable) {
  const FuzzSpec spec = generate_spec(9);
  const std::string path = ::testing::TempDir() + "/sndp_fuzz_repro_test.txt";
  ASSERT_TRUE(write_fuzz_reproducer(path, spec, "unit-test detail"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto parsed = FuzzSpec::from_text(ss.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_text(), spec.to_text());
  std::remove(path.c_str());
}

// Regression: fuzz seed 132 (shrunk).  A MOV pulled onto the NSU as a
// store-data producer was not duplicated on the GPU, and the NSU's stale
// copy of the register was written back over a later GPU-side
// redefinition.  Fixed in the analyzer (clean pulled producers are
// duplicated; regs_out excludes GPU-redefined registers).
TEST(FuzzDiff, RegressionStaleLiveOutWriteback) {
  const char* text =
      "sndp-fuzz-repro-v1\n"
      "seed 132\n"
      "launch 32 1\n"
      "loop 0\n"
      "mode 1 1\n"
      "hmcs 1\n"
      "op 0 1297819140 3550617306 16\n"
      "op 5 2078359683 3154170877 19\n"
      "op 4 3622310777 1576909848 4\n"
      "op 0 2302930005 3065292651 13\n"
      "op 0 3452833698 628654046 3\n"
      "op 2 1815697264 1796338291 19\n"
      "end\n";
  const auto spec = FuzzSpec::from_text(text);
  ASSERT_TRUE(spec.has_value());
  const auto divergence = run_fuzz_case(*spec);
  EXPECT_FALSE(divergence.has_value()) << *divergence;
}

// Migration storm: threshold-1 migration on 4-stack kernels re-homes a page
// on its first remote access, so the mapping churns throughout the run.
// Every in-flight transaction must keep using the slice/stack it was pinned
// to at issue time, or bytes land in the wrong cache and diverge.
TEST(FuzzDiff, MigrationStormMatchesReference) {
  for (std::uint64_t seed : {3ull, 11ull, 42ull}) {
    FuzzSpec spec = generate_spec(seed);
    spec.num_hmcs = 4;
    spec.placement = PlacementPolicyKind::kMigration;
    spec.migration_threshold = 1;
    const auto divergence = run_fuzz_case(spec);
    EXPECT_FALSE(divergence.has_value())
        << "seed " << seed << ": " << *divergence << "\nspec:\n" << spec.to_text();
  }
}

TEST(FuzzDiff, RandomKernelsMatchReference) {
  unsigned seeds = 100;
  if (const char* env = std::getenv("SNDP_FUZZ_SEEDS")) {
    seeds = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  std::string artifact_dir = ::testing::TempDir();
  if (const char* env = std::getenv("SNDP_FUZZ_ARTIFACT_DIR")) artifact_dir = env;
  if (!artifact_dir.empty() && artifact_dir.back() != '/') artifact_dir += '/';

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const FuzzSpec spec = generate_spec(seed);
    const auto divergence = run_fuzz_case(spec);
    if (!divergence.has_value()) continue;
    const FuzzSpec minimal = shrink_fuzz_case(spec);
    const std::string path =
        artifact_dir + "fuzz_repro_seed" + std::to_string(seed) + ".txt";
    write_fuzz_reproducer(path, minimal, *divergence);
    ADD_FAILURE() << "seed " << seed << " diverges: " << *divergence
                  << "\nminimal reproducer (" << minimal.ops.size()
                  << " ops) written to " << path << "\nspec:\n"
                  << minimal.to_text();
  }
}

// Committed reproducers (tests/repros/*.txt): every shrunk divergence that
// led to a fix is kept as a replay file and must stay green.
TEST(FuzzDiff, CommittedReproducersReplayClean) {
#ifndef SNDP_COMMITTED_REPRO_DIR
  GTEST_SKIP() << "SNDP_COMMITTED_REPRO_DIR not defined";
#else
  unsigned replayed = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(SNDP_COMMITTED_REPRO_DIR)) {
    if (entry.path().extension() != ".txt") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in) << "cannot open " << entry.path();
    std::stringstream ss;
    ss << in.rdbuf();
    const auto spec = FuzzSpec::from_text(ss.str());
    ASSERT_TRUE(spec.has_value()) << "unparseable reproducer " << entry.path();
    const auto divergence = run_fuzz_case(*spec);
    EXPECT_FALSE(divergence.has_value())
        << entry.path() << ": " << *divergence << "\nspec:\n" << spec->to_text();
    ++replayed;
  }
  EXPECT_GE(replayed, 1u);
#endif
}

TEST(FuzzDiff, ReplayEnvReproducer) {
  const char* path = std::getenv("SNDP_FUZZ_REPRO");
  if (path == nullptr) {
    GTEST_SKIP() << "set SNDP_FUZZ_REPRO=<file> to replay a reproducer";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const auto spec = FuzzSpec::from_text(ss.str());
  ASSERT_TRUE(spec.has_value()) << "unparseable reproducer " << path;
  const auto divergence = run_fuzz_case(*spec);
  EXPECT_FALSE(divergence.has_value())
      << *divergence << "\nspec:\n" << spec->to_text();
}

}  // namespace
}  // namespace sndp
