// Tests for the memory-access coalescer and the §4.1.1 alignment rule.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gpu/coalescer.h"
#include "noc/packet.h"

namespace sndp {
namespace {

std::array<Addr, kWarpWidth> lane_addrs(Addr base, std::int64_t stride) {
  std::array<Addr, kWarpWidth> a{};
  for (unsigned i = 0; i < kWarpWidth; ++i) {
    a[i] = static_cast<Addr>(static_cast<std::int64_t>(base) + stride * i);
  }
  return a;
}

TEST(Coalescer, FullyCoalescedUnitStride8B) {
  Coalescer c(128);
  // 32 lanes x 8 B = 256 B = exactly 2 lines, lane i at word i.
  const auto lines = c.coalesce(lane_addrs(0x1000, 8), kFullMask, 8);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].line_addr, 0x1000u);
  EXPECT_EQ(lines[1].line_addr, 0x1080u);
  EXPECT_EQ(popcount_mask(lines[0].lanes), 16u);
  // Lane i sits at line_base + i*8 in the first line: aligned.
  EXPECT_FALSE(lines[0].misaligned);
  // Second line: lanes 16..31 sit at slots 0..15 of THAT line — the slot
  // index restarts per line, so a unit-stride 8 B warp is fully coalesced.
  // (Regression: the slot used to be the absolute lane id, falsely marking
  // every multi-line access misaligned.)
  EXPECT_FALSE(lines[1].misaligned);
}

TEST(Coalescer, MultiLine4ByteHalfWarpsAligned) {
  Coalescer c(64);
  // 64 B lines, 4 B words: lanes 0..15 fill line 0, lanes 16..31 line 1.
  const auto lines = c.coalesce(lane_addrs(0x4000, 4), kFullMask, 4);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& la : lines) EXPECT_FALSE(la.misaligned);
}

TEST(Coalescer, UnitStrideNotLineAlignedIsMisaligned) {
  Coalescer c(128);
  // Same unit stride but starting one word into the line: the first active
  // lane of each line is not at slot 0, so both lines ship offsets.
  const auto lines = c.coalesce(lane_addrs(0x1008, 8), kFullMask, 8);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[0].misaligned);
}

TEST(Coalescer, FourLine8ByteQuarterWarpsAligned) {
  Coalescer c(64);
  // 64 B lines, 8 B words: each group of 8 lanes fills one line exactly.
  const auto lines = c.coalesce(lane_addrs(0x8000, 8), kFullMask, 8);
  ASSERT_EQ(lines.size(), 4u);
  for (unsigned i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].line_addr, 0x8000u + i * 64);
    EXPECT_EQ(popcount_mask(lines[i].lanes), 8u);
    EXPECT_FALSE(lines[i].misaligned) << "line " << i;
  }
}

TEST(Coalescer, GapInSecondLineIsMisaligned) {
  Coalescer c(128);
  // Lanes 16..31 cover the second line but lane 17 skips a word: slot 1
  // expects base+8, lane 17 reads base+16.
  auto addrs = lane_addrs(0x1000, 8);
  for (unsigned i = 17; i < kWarpWidth; ++i) addrs[i] += 8;
  const auto lines = c.coalesce(addrs, kFullMask, 8);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_FALSE(lines[0].misaligned);
  EXPECT_TRUE(lines[1].misaligned);
}

TEST(Coalescer, SingleLine4Byte) {
  Coalescer c(128);
  // 32 lanes x 4 B = 128 B = one line, perfectly aligned.
  const auto lines = c.coalesce(lane_addrs(0x2000, 4), kFullMask, 4);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(lines[0].misaligned);
  EXPECT_EQ(lines[0].lanes, kFullMask);
}

TEST(Coalescer, BroadcastSameAddress) {
  Coalescer c(128);
  const auto lines = c.coalesce(lane_addrs(0x3000, 0), kFullMask, 8);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].lanes, kFullMask);
  EXPECT_TRUE(lines[0].misaligned);  // lane 1 is not at base + 8
}

TEST(Coalescer, FullyDivergent) {
  Coalescer c(128);
  std::array<Addr, kWarpWidth> addrs{};
  for (unsigned i = 0; i < kWarpWidth; ++i) addrs[i] = 0x10000 + i * 4096;
  const auto lines = c.coalesce(addrs, kFullMask, 8);
  EXPECT_EQ(lines.size(), 32u);
  for (const auto& la : lines) EXPECT_EQ(popcount_mask(la.lanes), 1u);
}

TEST(Coalescer, InactiveLanesIgnored) {
  Coalescer c(128);
  const LaneMask half = 0x0000FFFF;
  const auto lines = c.coalesce(lane_addrs(0x1000, 8), half, 8);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].lanes, half);
}

TEST(Coalescer, DuplicateLinesMerge) {
  Coalescer c(128);
  std::array<Addr, kWarpWidth> addrs{};
  for (unsigned i = 0; i < kWarpWidth; ++i) addrs[i] = 0x5000 + (i % 4) * 8;
  const auto lines = c.coalesce(addrs, kFullMask, 8);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].lanes, kFullMask);
}

TEST(Coalescer, LineOrderFollowsFirstTouch) {
  Coalescer c(128);
  std::array<Addr, kWarpWidth> addrs{};
  addrs[0] = 0x9000;  // line B
  addrs[1] = 0x8000;  // line A
  const auto lines = c.coalesce(addrs, 0b11, 8);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].line_addr, 0x9000u);
  EXPECT_EQ(lines[1].line_addr, 0x8000u);
}

// Property sweep: lane masks across all lines partition the input mask, and
// every lane's address belongs to its line.
class CoalescerProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CoalescerProperty, PartitionInvariant) {
  Coalescer c(128);
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::array<Addr, kWarpWidth> addrs{};
    const LaneMask mask = static_cast<LaneMask>(rng.next_u64());
    for (unsigned i = 0; i < kWarpWidth; ++i) {
      addrs[i] = rng.next_below(1 << 18) * 8;
    }
    const auto lines = c.coalesce(addrs, mask, 8);
    LaneMask uni = 0;
    for (const auto& la : lines) {
      EXPECT_EQ(uni & la.lanes, 0u) << "lane in two lines";
      uni |= la.lanes;
      for (unsigned i = 0; i < kWarpWidth; ++i) {
        if (la.lanes & (LaneMask{1} << i)) {
          EXPECT_EQ(addrs[i] & ~Addr{127}, la.line_addr);
        }
      }
    }
    EXPECT_EQ(uni, mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerProperty, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace sndp
