// Tests for the Chrome-trace writer and its simulator integration.
#include <gtest/gtest.h>

#include <cstdio>

#include "sndp.h"

namespace sndp {
namespace {

TEST(Trace, EmitsWellFormedJson) {
  TraceWriter t;
  t.name_row(0, "HMC 0");
  t.complete("RDF", "packet", 0, 1000, 500);
  t.instant("spawn", "nsu", 1, 2000);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"RDF\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Balanced braces/brackets (cheap structural check).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, EscapesQuotes) {
  TraceWriter t;
  t.complete("a\"b", "c\\d", 0, 0, 1);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
  EXPECT_NE(json.find("c\\\\d"), std::string::npos);
}

TEST(Trace, EscapesControlCharacters) {
  TraceWriter t;
  // Regression: newline/tab/raw control bytes in names used to be copied
  // through verbatim, producing invalid Chrome-trace JSON.
  t.complete("line1\nline2", "tab\there", 0, 0, 1);
  t.instant(std::string("nul-ish\x01\x1f"), "bell\x07", 0, 5);
  t.name_row(0, "row\r\nname");
  const std::string json = t.to_json();
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_NE(json.find("row\\r\\nname"), std::string::npos);
  // No raw control characters may survive anywhere in the document.
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Trace, BackspaceAndFormFeedUseShortEscapes) {
  TraceWriter t;
  t.complete("a\bb\fc", "x", 0, 0, 1);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("a\\bb\\fc"), std::string::npos);
}

TEST(Trace, CounterEventsCarryValueArgs) {
  TraceWriter t;
  t.counter("offload_ratio", 3, 2'000'000, 0.25);
  t.counter("epoch_ipc", 3, 2'000'000, 12.0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"offload_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":0.25}"), std::string::npos);
  // Integral values print without decimal noise (JsonWriter::number rule).
  EXPECT_NE(json.find("\"args\":{\"value\":12}"), std::string::npos);
  // Counter events have no duration or instant-scope field.
  EXPECT_EQ(json.find("\"dur\""), std::string::npos);
  EXPECT_EQ(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(Trace, CounterNonFiniteValuesBecomeNull) {
  // NaN/Inf would make the whole trace unparseable; they must serialize as
  // null like every other number in the project's JSON.
  TraceWriter t;
  t.counter("bad", 0, 0, 0.0 / 0.0);
  t.counter("worse", 0, 0, 1.0 / 0.0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"args\":{\"value\":null}"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Trace, CounterEventsRespectCapacity) {
  TraceWriter t;
  t.set_capacity(1);
  t.counter("a", 0, 0, 1.0);
  t.counter("b", 0, 0, 2.0);  // dropped
  t.complete("c", "x", 0, 0, 1);  // also dropped
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_NE(t.to_json().find("\"dropped_events\":2"), std::string::npos);
}

TEST(Trace, CapacityDropsExcess) {
  TraceWriter t;
  t.set_capacity(2);
  t.complete("a", "x", 0, 0, 1);
  t.complete("b", "x", 0, 0, 1);
  t.complete("c", "x", 0, 0, 1);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
  // The drop counter is surfaced in the document's metadata block so a
  // truncated trace file is self-describing.
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"metadata\":{\"emitted_events\":2,\"dropped_events\":1}"),
            std::string::npos);
}

TEST(Trace, MetadataReportsZeroDropsByDefault) {
  TraceWriter t;
  t.complete("a", "x", 0, 0, 1);
  EXPECT_NE(t.to_json().find("\"dropped_events\":0"), std::string::npos);
}

TEST(Trace, TimestampsInMicroseconds) {
  TraceWriter t;
  t.complete("a", "x", 0, 2'000'000, 1'000'000);  // 2 us start, 1 us duration
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1"), std::string::npos);
}

TEST(Trace, SimulatorWritesTraceFile) {
  const std::string path = ::testing::TempDir() + "/sndp_trace_test.json";
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;
  cfg.trace_path = path;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  EXPECT_GT(r.stats.get("trace.events"), 0.0);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 100);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sndp
