// Tests for ISA semantics (execute_alu), predication, program structure.
#include <gtest/gtest.h>

#include "isa/isa.h"
#include "isa/program.h"

namespace sndp {
namespace {

Instr binary(Opcode op, unsigned rd, unsigned rs0, unsigned rs1) {
  Instr in;
  in.op = op;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.src[1] = static_cast<std::uint8_t>(rs1);
  return in;
}

Instr binary_imm(Opcode op, unsigned rd, unsigned rs0, std::int64_t imm) {
  Instr in;
  in.op = op;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.imm = imm;
  in.use_imm = true;
  return in;
}

TEST(IsaExec, IntegerArithmetic) {
  ThreadCtx t;
  t.regs[1] = 10;
  t.regs[2] = static_cast<RegValue>(-3);
  execute_alu(binary(Opcode::kIAdd, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), 7);
  execute_alu(binary(Opcode::kISub, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), 13);
  execute_alu(binary(Opcode::kIMul, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), -30);
  execute_alu(binary(Opcode::kIDiv, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), -3);
  execute_alu(binary(Opcode::kIRem, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), 1);
  execute_alu(binary(Opcode::kIMin, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), -3);
  execute_alu(binary(Opcode::kIMax, 0, 1, 2), t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), 10);
}

TEST(IsaExec, DivisionByZeroYieldsZero) {
  ThreadCtx t;
  t.regs[1] = 42;
  t.regs[2] = 0;
  execute_alu(binary(Opcode::kIDiv, 0, 1, 2), t);
  EXPECT_EQ(t.regs[0], 0u);
  execute_alu(binary(Opcode::kIRem, 0, 1, 2), t);
  EXPECT_EQ(t.regs[0], 0u);
}

TEST(IsaExec, BitOpsAndShifts) {
  ThreadCtx t;
  t.regs[1] = 0b1100;
  t.regs[2] = 0b1010;
  execute_alu(binary(Opcode::kAnd, 0, 1, 2), t);
  EXPECT_EQ(t.regs[0], 0b1000u);
  execute_alu(binary(Opcode::kOr, 0, 1, 2), t);
  EXPECT_EQ(t.regs[0], 0b1110u);
  execute_alu(binary(Opcode::kXor, 0, 1, 2), t);
  EXPECT_EQ(t.regs[0], 0b0110u);
  execute_alu(binary_imm(Opcode::kShl, 0, 1, 4), t);
  EXPECT_EQ(t.regs[0], 0b11000000u);
  execute_alu(binary_imm(Opcode::kShr, 0, 1, 2), t);
  EXPECT_EQ(t.regs[0], 0b11u);
}

TEST(IsaExec, FloatArithmetic) {
  ThreadCtx t;
  t.regs[1] = f64_to_bits(1.5);
  t.regs[2] = f64_to_bits(2.25);
  execute_alu(binary(Opcode::kFAdd, 0, 1, 2), t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 3.75);
  execute_alu(binary(Opcode::kFMul, 0, 1, 2), t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 3.375);
  execute_alu(binary(Opcode::kFDiv, 0, 1, 2), t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 1.5 / 2.25);
}

TEST(IsaExec, FloatImmediateIsIntegerCast) {
  ThreadCtx t;
  t.regs[1] = f64_to_bits(10.0);
  execute_alu(binary_imm(Opcode::kFDiv, 0, 1, 8), t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 1.25);
}

TEST(IsaExec, FusedOps) {
  ThreadCtx t;
  t.regs[1] = 3;
  t.regs[2] = 4;
  t.regs[3] = 5;
  Instr mad = binary(Opcode::kIMad, 0, 1, 2);
  mad.src[2] = 3;
  execute_alu(mad, t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), 17);

  t.regs[1] = f64_to_bits(2.0);
  t.regs[2] = f64_to_bits(3.0);
  t.regs[3] = f64_to_bits(1.0);
  Instr fma = binary(Opcode::kFFma, 0, 1, 2);
  fma.src[2] = 3;
  execute_alu(fma, t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 7.0);
}

TEST(IsaExec, UnaryAndConversions) {
  ThreadCtx t;
  t.regs[1] = f64_to_bits(-2.25);
  Instr in;
  in.dst = 0;
  in.src[0] = 1;
  in.op = Opcode::kFAbs;
  execute_alu(in, t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 2.25);
  in.op = Opcode::kFNeg;
  execute_alu(in, t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 2.25);
  t.regs[1] = static_cast<RegValue>(-7);
  in.op = Opcode::kI2F;
  execute_alu(in, t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), -7.0);
  t.regs[1] = f64_to_bits(9.75);
  in.op = Opcode::kF2I;
  execute_alu(in, t);
  EXPECT_EQ(static_cast<std::int64_t>(t.regs[0]), 9);
  t.regs[1] = f64_to_bits(16.0);
  in.op = Opcode::kFSqrt;
  execute_alu(in, t);
  EXPECT_DOUBLE_EQ(bits_to_f64(t.regs[0]), 4.0);
}

TEST(IsaExec, PredicateCompare) {
  ThreadCtx t;
  t.regs[1] = 5;
  Instr setp;
  setp.op = Opcode::kISetp;
  setp.pred_dst = 2;
  setp.cmp = CmpOp::kLt;
  setp.src[0] = 1;
  setp.imm = 10;
  setp.use_imm = true;
  execute_alu(setp, t);
  EXPECT_TRUE(t.preds[2]);
  setp.cmp = CmpOp::kGe;
  execute_alu(setp, t);
  EXPECT_FALSE(t.preds[2]);
}

TEST(IsaGuard, SenseAndAbsence) {
  ThreadCtx t;
  t.preds[1] = true;
  Instr in;
  EXPECT_TRUE(guard_passes(in, t));  // unguarded
  in.guard_pred = 1;
  in.guard_sense = true;
  EXPECT_TRUE(guard_passes(in, t));
  in.guard_sense = false;
  EXPECT_FALSE(guard_passes(in, t));
  t.preds[1] = false;
  EXPECT_TRUE(guard_passes(in, t));
}

TEST(IsaMeta, ExecClassAssignments) {
  EXPECT_EQ(binary(Opcode::kIAdd, 0, 1, 2).exec_class(), ExecClass::kAlu);
  EXPECT_EQ(binary(Opcode::kIMul, 0, 1, 2).exec_class(), ExecClass::kSfu);
  EXPECT_EQ(binary(Opcode::kFFma, 0, 1, 2).exec_class(), ExecClass::kSfu);
  Instr ld;
  ld.op = Opcode::kLd;
  EXPECT_EQ(ld.exec_class(), ExecClass::kMem);
  Instr bra;
  bra.op = Opcode::kBra;
  EXPECT_EQ(bra.exec_class(), ExecClass::kCtrl);
}

TEST(IsaMeta, ForEachSrcRegSkipsImmediateSlot) {
  Instr in = binary_imm(Opcode::kIAdd, 0, 1, 42);
  std::vector<unsigned> regs;
  for_each_src_reg(in, [&](std::uint8_t r) { regs.push_back(r); });
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0], 1u);

  Instr mad = binary(Opcode::kIMad, 0, 1, 2);
  mad.src[2] = 3;
  regs.clear();
  for_each_src_reg(mad, [&](std::uint8_t r) { regs.push_back(r); });
  EXPECT_EQ(regs.size(), 3u);

  // IMAD with immediate middle operand reads only src0 and src2.
  Instr madi = mad;
  madi.use_imm = true;
  madi.src[1] = kNoReg;
  regs.clear();
  for_each_src_reg(madi, [&](std::uint8_t r) { regs.push_back(r); });
  EXPECT_EQ(regs.size(), 2u);
}

TEST(IsaText, EffectiveAddress) {
  ThreadCtx t;
  t.regs[4] = 1000;
  Instr ld;
  ld.op = Opcode::kLd;
  ld.src[0] = 4;
  ld.imm = -16;
  EXPECT_EQ(effective_address(ld, t), 984u);
}

TEST(ProgramStructure, ValidateCatchesBadBranch) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kBra;
  code[0].target = 99;
  code[1].op = Opcode::kExit;
  Program prog(std::move(code));
  EXPECT_THROW(prog.validate(), std::invalid_argument);
}

TEST(ProgramStructure, ValidateCatchesUnbalancedOfld) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kOfldEnd;
  code[1].op = Opcode::kExit;
  EXPECT_THROW(Program(std::move(code)).validate(), std::invalid_argument);
}

TEST(ProgramStructure, BasicBlockStartsAtTargetsAndAfterBranches) {
  ProgramBuilder b;
  b.movi(0, 0)
      .label("top")
      .alui(Opcode::kIAdd, 0, 0, 1)
      .isetpi(0, CmpOp::kLt, 0, 10)
      .pred(0)
      .bra("top")
      .exit();
  Program prog = b.build();
  const auto starts = prog.basic_block_starts();
  // Starts: 0 (entry), 1 (branch target "top"), 4 (after the branch).
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 1u);
  EXPECT_EQ(starts[2], 4u);
}

TEST(ProgramStructure, DisassembleRoundTripsMnemonics) {
  ProgramBuilder b;
  b.movi(1, 42).ld(2, 1, 8).st(1, 2, 16).exit();
  const std::string text = b.build().disassemble();
  EXPECT_NE(text.find("MOVI R1, 42"), std::string::npos);
  EXPECT_NE(text.find("LD.64 R2, [R1+8]"), std::string::npos);
  EXPECT_NE(text.find("ST.64 [R1+16], R2"), std::string::npos);
  EXPECT_NE(text.find("EXIT"), std::string::npos);
}

}  // namespace
}  // namespace sndp
