// Tests for the energy model (§5 constants, Fig. 10 categories).
#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace sndp {
namespace {

TEST(Energy, DramActivationUsesPaperConstant) {
  EnergyModel model(EnergyConfig{});
  EnergyCounters c;
  c.dram_activates = 1000;
  const EnergyBreakdown e = model.compute(c, 0, 0, 0, false);
  EXPECT_DOUBLE_EQ(e.dram_j, 1000 * 11.8e-9);
}

TEST(Energy, DramRowReadPerBit) {
  EnergyModel model(EnergyConfig{});
  EnergyCounters c;
  c.dram_read_bytes = 128;
  const EnergyBreakdown e = model.compute(c, 0, 0, 0, false);
  EXPECT_DOUBLE_EQ(e.dram_j, 128 * 8 * 4e-12);
}

TEST(Energy, OffchipTwoPicojoulePerBit) {
  EnergyModel model(EnergyConfig{});
  EnergyCounters c;
  c.offchip_bytes = 1'000'000;
  const EnergyBreakdown e = model.compute(c, 0, 0, 0, false);
  EXPECT_DOUBLE_EQ(e.offchip_j, 1e6 * 8 * 2e-12);
}

TEST(Energy, StaticPowerScalesWithTimeAndActivity) {
  const EnergyConfig cfg{};
  EnergyModel model(cfg);
  EnergyCounters none;
  const TimePs second_ps = 1'000'000'000'000ull;  // 1 s
  // SM static power accrues per active SM-second (idle SMs power-gate):
  // more SMs alone change nothing; more aggregate activity does.
  const EnergyBreakdown e64 = model.compute(none, second_ps, 64, 8, false);
  const EnergyBreakdown e72 = model.compute(none, second_ps, 72, 8, false);
  EXPECT_DOUBLE_EQ(e72.gpu_j, e64.gpu_j);
  EnergyCounters busy;
  busy.sm_active_seconds = 3.0;  // e.g. 3 SMs active for the whole second
  const EnergyBreakdown eb = model.compute(busy, second_ps, 64, 8, false);
  EXPECT_NEAR(eb.gpu_j - e64.gpu_j, 3.0 * cfg.sm_static_w, 1e-9);
  // Chip-level static (L2 etc.) still scales with wall time.
  const EnergyBreakdown e2s = model.compute(none, 2 * second_ps, 64, 8, false);
  EXPECT_NEAR(e2s.gpu_j, 2 * e64.gpu_j, 1e-9);
}

TEST(Energy, NdpPowerGatedWhenOff) {
  const EnergyConfig cfg{};
  EnergyModel model(cfg);
  EnergyCounters none;
  const TimePs t = 1'000'000'000ull;
  const EnergyBreakdown off = model.compute(none, t, 64, 8, false);
  const EnergyBreakdown on = model.compute(none, t, 64, 8, true);
  EXPECT_DOUBLE_EQ(off.nsu_j, 0.0);
  EXPECT_GT(on.nsu_j, 0.0);
  EXPECT_GT(on.offchip_j, off.offchip_j);  // memory-network links powered
}

TEST(Energy, TotalIsSumOfCategories) {
  EnergyModel model(EnergyConfig{});
  EnergyCounters c;
  c.sm_lane_ops = 1000;
  c.nsu_lane_ops = 100;
  c.l1_accesses = 50;
  c.l2_accesses = 20;
  c.gpu_wire_bytes = 4096;
  c.hmc_noc_bytes = 2048;
  c.dram_activates = 3;
  c.dram_read_bytes = 256;
  c.dram_write_bytes = 128;
  c.offchip_bytes = 512;
  const EnergyBreakdown e = model.compute(c, 12345678, 64, 8, true);
  EXPECT_DOUBLE_EQ(e.total(), e.gpu_j + e.nsu_j + e.hmc_noc_j + e.offchip_j + e.dram_j);
  EXPECT_GT(e.gpu_j, 0.0);
  EXPECT_GT(e.hmc_noc_j, 0.0);
}

TEST(Energy, ExportNamesStable) {
  EnergyBreakdown e;
  e.gpu_j = 1;
  e.dram_j = 2;
  StatSet stats;
  e.export_stats(stats);
  EXPECT_DOUBLE_EQ(stats.get("energy.gpu_j"), 1.0);
  EXPECT_DOUBLE_EQ(stats.get("energy.dram_j"), 2.0);
  EXPECT_DOUBLE_EQ(stats.get("energy.total_j"), 3.0);
}

}  // namespace
}  // namespace sndp
