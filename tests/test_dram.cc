// Tests for DRAM bank timing and the FR-FCFS vault controller.
#include <gtest/gtest.h>

#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "mem/address_map.h"
#include "mem/dram.h"
#include "mem/vault.h"

namespace sndp {
namespace {

DramTiming timing() { return SystemConfig::paper().hmc.timing; }

TEST(DramBank, ActivateEnablesCasAfterTrcd) {
  DramBank bank;
  const DramTiming t = timing();
  EXPECT_TRUE(bank.can_activate(0));
  bank.activate(0, /*row=*/5, t);
  EXPECT_TRUE(bank.row_open(5));
  EXPECT_FALSE(bank.can_cas(t.tRCD - 1));
  EXPECT_TRUE(bank.can_cas(t.tRCD));
}

TEST(DramBank, PrechargeRespectsTras) {
  DramBank bank;
  const DramTiming t = timing();
  bank.activate(0, 5, t);
  EXPECT_FALSE(bank.can_precharge(t.tRAS - 1));
  EXPECT_TRUE(bank.can_precharge(t.tRAS));
  bank.precharge(t.tRAS, t);
  EXPECT_TRUE(bank.closed());
  EXPECT_FALSE(bank.can_activate(t.tRAS + t.tRP - 1));
  EXPECT_TRUE(bank.can_activate(t.tRAS + t.tRP));
}

TEST(DramBank, WriteRecoveryDelaysPrecharge) {
  DramBank bank;
  const DramTiming t = timing();
  bank.activate(0, 1, t);
  const Cycle cas_at = t.tRCD;
  bank.cas(cas_at, /*is_write=*/true, t);
  // Write: precharge blocked until cas + tBURST + tWR (beyond tRAS here? compare both).
  const Cycle wr_limit = cas_at + t.tBURST + t.tWR;
  EXPECT_FALSE(bank.can_precharge(wr_limit - 1));
  EXPECT_TRUE(bank.can_precharge(std::max<Cycle>(wr_limit, t.tRAS)));
}

TEST(DramBank, CasToCasGap) {
  DramBank bank;
  const DramTiming t = timing();
  bank.activate(0, 1, t);
  bank.cas(t.tRCD, false, t);
  EXPECT_FALSE(bank.can_cas(t.tRCD + t.tCCD - 1));
  EXPECT_TRUE(bank.can_cas(t.tRCD + t.tCCD));
}

// --- Vault controller ------------------------------------------------------

struct VaultHarness {
  explicit VaultHarness(const SystemConfig& cfg = SystemConfig::paper())
      : config(cfg),
        amap(config),
        vault(config.hmc, config.clocks.dram_khz,
              [this](const DramRequest& r, TimePs done) { completions.emplace_back(r, done); }) {}

  void run(Cycle cycles) {
    for (Cycle c = 0; c < cycles; ++c) {
      vault.tick(cycle, tick_time_ps(cycle, config.clocks.dram_khz));
      ++cycle;
    }
  }

  void push(Addr line_addr, bool write = false, std::uint64_t token = 0) {
    DramRequest req;
    req.line_addr = line_addr;
    req.is_write = write;
    req.token = token;
    req.coord = amap.decode(line_addr);
    req.enqueue_ps = tick_time_ps(cycle, config.clocks.dram_khz);
    vault.enqueue(req);
  }

  SystemConfig config;
  AddressMap amap;
  std::vector<std::pair<DramRequest, TimePs>> completions;
  VaultController vault;
  Cycle cycle = 0;
};

TEST(Vault, SingleReadLatency) {
  VaultHarness h;
  h.push(0);
  h.run(100);
  ASSERT_EQ(h.completions.size(), 1u);
  // Closed bank: ACT at cycle 0, CAS at tRCD, data at tRCD + tCL + tBURST.
  const DramTiming t = h.config.hmc.timing;
  const TimePs expect = tick_time_ps(t.tRCD + t.tCL + t.tBURST, h.config.clocks.dram_khz);
  EXPECT_EQ(h.completions[0].second, expect);
}

TEST(Vault, RowHitIsFasterThanConflict) {
  VaultHarness h;
  const unsigned stride = h.config.hmc.num_vaults * 128;  // next line, same vault
  // Two lines in the same row (consecutive vault-local lines share bank+row
  // only if the bank bits match: use the same line twice shifted by 0 —
  // instead, same address twice guarantees a row hit).
  h.push(0, false, 1);
  h.push(0, false, 2);
  h.run(200);
  ASSERT_EQ(h.completions.size(), 2u);
  const TimePs gap_hit = h.completions[1].second - h.completions[0].second;

  VaultHarness h2;
  // Same bank, different row -> precharge + activate between CAS's.
  const DramCoord c0 = h2.amap.decode(0);
  Addr conflict = stride;
  while (h2.amap.decode(conflict).bank != c0.bank || h2.amap.decode(conflict).row == c0.row ||
         h2.amap.decode(conflict).vault != c0.vault) {
    conflict += stride;
  }
  h2.push(0, false, 1);
  h2.push(conflict, false, 2);
  h2.run(400);
  ASSERT_EQ(h2.completions.size(), 2u);
  const TimePs gap_conflict = h2.completions[1].second - h2.completions[0].second;
  EXPECT_LT(gap_hit, gap_conflict);
}

TEST(Vault, FrfcfsPrefersRowHitOverOlderConflict) {
  VaultHarness h;
  const unsigned stride = h.config.hmc.num_vaults * 128;
  const DramCoord c0 = h.amap.decode(0);
  // A conflicting request (same bank, different row) arrives FIRST, then a
  // row-hit request: after the first access opens row 0, FR-FCFS must
  // serve the row hit before the conflict.
  Addr conflict = stride;
  while (h.amap.decode(conflict).bank != c0.bank || h.amap.decode(conflict).row == c0.row ||
         h.amap.decode(conflict).vault != c0.vault) {
    conflict += stride;
  }
  h.push(0, false, 1);
  h.run(14);  // row 0 is open, first CAS issued
  h.push(conflict, false, 2);  // older in queue
  h.push(0, false, 3);         // row hit
  h.run(400);
  ASSERT_EQ(h.completions.size(), 3u);
  EXPECT_EQ(h.completions[1].first.token, 3u);  // the row hit overtook
  EXPECT_EQ(h.completions[2].first.token, 2u);
}

TEST(Vault, BackToBackThroughputBoundedByTccd) {
  VaultHarness h;
  // 16 requests to the same row: after the first, one CAS per tCCD.
  for (int i = 0; i < 16; ++i) h.push(0, false, i);
  h.run(200);
  ASSERT_EQ(h.completions.size(), 16u);
  const DramTiming t = h.config.hmc.timing;
  const double ccd_ps =
      static_cast<double>(t.tCCD) * 1e9 / static_cast<double>(h.config.clocks.dram_khz);
  for (int i = 1; i < 16; ++i) {
    const TimePs gap = h.completions[i].second - h.completions[i - 1].second;
    // tick->ps mapping floors, so consecutive gaps may differ by 1 ps.
    EXPECT_NEAR(static_cast<double>(gap), ccd_ps, 1.0);
  }
}

TEST(Vault, CapacityEnforced) {
  VaultHarness h;
  for (unsigned i = 0; i < h.config.hmc.vault_queue_size; ++i) h.push(i * 0x10000, false, i);
  EXPECT_FALSE(h.vault.can_accept());
  EXPECT_THROW(h.push(0x999000), std::logic_error);
  h.run(2000);
  EXPECT_TRUE(h.vault.can_accept());
  EXPECT_EQ(h.completions.size(), h.config.hmc.vault_queue_size);
}

TEST(Vault, BankParallelismOverlapsActivates) {
  // Requests to N different banks should complete much faster than N
  // row-conflicts to one bank.
  VaultHarness h;
  const unsigned stride = h.config.hmc.num_vaults * 128;
  // Different banks: consecutive vault-local lines.
  for (unsigned i = 0; i < 8; ++i) h.push(i * stride, false, i);
  h.run(400);
  ASSERT_EQ(h.completions.size(), 8u);
  const TimePs parallel_done = h.completions.back().second;

  VaultHarness h2;
  const DramCoord c0 = h2.amap.decode(0);
  Addr addr = 0;
  unsigned pushed = 0;
  // 8 distinct rows of the same bank.
  std::uint64_t last_row = ~0ull;
  while (pushed < 8) {
    const DramCoord c = h2.amap.decode(addr);
    if (c.vault == c0.vault && c.bank == c0.bank && c.row != last_row) {
      h2.push(addr, false, pushed++);
      last_row = c.row;
    }
    addr += stride;
  }
  h2.run(2000);
  ASSERT_EQ(h2.completions.size(), 8u);
  EXPECT_LT(parallel_done, h2.completions.back().second);
}

// The pre-compaction two-pass FR-FCFS scheduler, kept as a reference model
// for the production single-pass version: pass 1 finds the oldest CAS-ready
// row hit, pass 2 the oldest request that can advance its bank's state, and
// retirement middle-erases the queue vector.  Built only from the public
// DramBank API.
class TwoPassReferenceVault {
 public:
  TwoPassReferenceVault(const HmcConfig& cfg, std::uint64_t khz) : cfg_(cfg), khz_(khz) {
    banks_.resize(cfg_.banks_per_vault);
  }

  bool can_accept() const { return queue_.size() < cfg_.vault_queue_size; }
  bool idle() const { return queue_.empty(); }
  void enqueue(const DramRequest& r) { queue_.push_back(r); }

  void tick(Cycle cycle) {
    if (queue_.empty()) return;
    const DramTiming& t = cfg_.timing;
    const bool bus_ready = cycle >= bus_free_;

    // Pass 1: oldest request whose row is open and can CAS.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      DramBank& bank = banks_[queue_[i].coord.bank];
      if (!bank.row_open(queue_[i].coord.row)) continue;
      if (!(bus_ready && bank.can_cas(cycle))) continue;
      const DramRequest req = queue_[i];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      bank.cas(cycle, req.is_write, t);
      bus_free_ = cycle + t.tCCD;
      const Cycle done = req.is_write ? cycle + t.tBURST : cycle + t.tCL + t.tBURST;
      const TimePs done_ps = tick_time_ps(done, khz_);
      latency.record(static_cast<double>(done_ps - req.enqueue_ps));
      cas_order.push_back(req.token);
      return;
    }

    // Pass 2: oldest request that can advance its bank's state.
    for (const DramRequest& r : queue_) {
      DramBank& bank = banks_[r.coord.bank];
      if (bank.row_open(r.coord.row)) continue;
      if (bank.closed()) {
        if (bank.can_activate(cycle)) {
          bank.activate(cycle, r.coord.row, t);
          return;
        }
      } else if (bank.can_precharge(cycle)) {
        bank.precharge(cycle, t);
        return;
      }
    }
  }

  Distribution latency;
  std::vector<std::uint64_t> cas_order;

 private:
  HmcConfig cfg_;
  std::uint64_t khz_;
  std::vector<DramBank> banks_;
  std::vector<DramRequest> queue_;
  Cycle bus_free_ = 0;
};

TEST(Vault, SinglePassMatchesTwoPassReferenceOnSeededStream) {
  // Drive the production controller and the reference model with an
  // identical seeded random request stream (mixed reads/writes, random
  // banks/rows, bursty arrivals) and require the exact same CAS order and
  // a bit-identical queue_latency_ps distribution.
  VaultHarness h;
  TwoPassReferenceVault ref(h.config.hmc, h.config.clocks.dram_khz);
  Rng rng(0xD12A);
  const unsigned stride = h.config.hmc.num_vaults * 128;  // stay in vault 0

  std::uint64_t token = 0;
  for (Cycle c = 0; c < 20'000; ++c) {
    if (rng.next_below(4) == 0 && h.vault.can_accept()) {
      DramRequest req;
      req.line_addr = rng.next_below(4096) * stride;
      req.is_write = rng.next_below(3) == 0;
      req.token = token++;
      req.coord = h.amap.decode(req.line_addr);
      req.enqueue_ps = tick_time_ps(c, h.config.clocks.dram_khz);
      h.vault.enqueue(req);
      ref.enqueue(req);
    }
    h.vault.tick(c, tick_time_ps(c, h.config.clocks.dram_khz));
    ref.tick(c);
    h.cycle = c + 1;
  }
  const Cycle drain_start = h.cycle;
  h.run(5'000);  // drain
  for (Cycle c = drain_start; c < drain_start + 5'000; ++c) ref.tick(c);
  ASSERT_TRUE(h.vault.idle());
  ASSERT_TRUE(ref.idle());

  EXPECT_GT(token, 1000u);  // the stream actually exercised the queue
  std::vector<std::uint64_t> got_order;
  for (const auto& [req, done] : h.completions) got_order.push_back(req.token);
  EXPECT_EQ(got_order, ref.cas_order);
  EXPECT_EQ(h.vault.queue_latency_ps.count(), ref.latency.count());
  EXPECT_EQ(h.vault.queue_latency_ps.sum(), ref.latency.sum());
  EXPECT_EQ(h.vault.queue_latency_ps.min(), ref.latency.min());
  EXPECT_EQ(h.vault.queue_latency_ps.max(), ref.latency.max());
}

}  // namespace
}  // namespace sndp
