// Tests for the functional global memory and allocator.
#include <gtest/gtest.h>

#include "isa/isa.h"
#include "memfunc/global_memory.h"

namespace sndp {
namespace {

TEST(GlobalMemory, ZeroInitialized) {
  GlobalMemory mem;
  EXPECT_EQ(mem.read_u64(0x1234), 0u);
  EXPECT_EQ(mem.frames_allocated(), 0u);  // reads never allocate
}

TEST(GlobalMemory, ReadBackWrites) {
  GlobalMemory mem;
  mem.write_u64(0x1000, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(mem.read_u64(0x1000), 0xDEADBEEFCAFEBABEull);
  mem.write_u32(0x2000, 0x12345678u);
  EXPECT_EQ(mem.read_u32(0x2000), 0x12345678u);
}

TEST(GlobalMemory, LittleEndianByteOrder) {
  GlobalMemory mem;
  mem.write_u64(0x100, 0x0807060504030201ull);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.read(0x100 + i, 1), i + 1);
  }
}

TEST(GlobalMemory, CrossFrameAccess) {
  GlobalMemory mem;
  const Addr boundary = GlobalMemory::kFrameBytes;
  mem.write_u64(boundary - 4, 0x1122334455667788ull);
  EXPECT_EQ(mem.read_u64(boundary - 4), 0x1122334455667788ull);
  EXPECT_EQ(mem.frames_allocated(), 2u);
}

TEST(GlobalMemory, SparseAllocation) {
  GlobalMemory mem;
  mem.write_u64(0, 1);
  mem.write_u64(1ull << 33, 2);  // 8 GiB away
  EXPECT_EQ(mem.frames_allocated(), 2u);
  EXPECT_EQ(mem.read_u64(0), 1u);
  EXPECT_EQ(mem.read_u64(1ull << 33), 2u);
}

TEST(GlobalMemory, FloatHelpers) {
  GlobalMemory mem;
  mem.write_f64(0x10, 3.14159);
  EXPECT_DOUBLE_EQ(mem.read_f64(0x10), 3.14159);
  mem.write_f32(0x20, 2.5f);
  EXPECT_FLOAT_EQ(mem.read_f32(0x20), 2.5f);
}

TEST(GlobalMemory, LoadRegF32ConvertsToDouble) {
  GlobalMemory mem;
  mem.write_f32(0x30, 1.5f);
  const RegValue v = mem.load_reg(0x30, 4, true);
  EXPECT_DOUBLE_EQ(bits_to_f64(v), 1.5);
}

TEST(GlobalMemory, StoreRegF32Truncates) {
  GlobalMemory mem;
  mem.store_reg(0x40, f64_to_bits(0.1), 4, true);
  EXPECT_FLOAT_EQ(mem.read_f32(0x40), 0.1f);
}

TEST(GlobalMemory, LoadReg32ZeroExtends) {
  GlobalMemory mem;
  mem.write_u64(0x50, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(mem.load_reg(0x50, 4, false), 0xFFFFFFFFull);
}

TEST(GlobalMemory, BadWidthThrows) {
  GlobalMemory mem;
  EXPECT_THROW(mem.read(0, 0), std::invalid_argument);
  EXPECT_THROW(mem.read(0, 9), std::invalid_argument);
  EXPECT_THROW(mem.write(0, 0, 16), std::invalid_argument);
}

TEST(MemoryAllocator, AlignmentAndMonotonicity) {
  MemoryAllocator alloc(0x1000, 128);
  const Addr a = alloc.alloc(100);
  const Addr b = alloc.alloc(1);
  EXPECT_EQ(a % 128, 0u);
  EXPECT_EQ(b % 128, 0u);
  EXPECT_GE(b, a + 100);
  const Addr c = alloc.alloc(8, 4096);
  EXPECT_EQ(c % 4096, 0u);
}

TEST(MemoryAllocator, RejectsBadAlignment) {
  MemoryAllocator alloc;
  EXPECT_THROW(alloc.alloc(8, 3), std::invalid_argument);
  EXPECT_THROW(alloc.alloc(8, 0), std::invalid_argument);
}

TEST(GlobalMemory, EqualContentsFindsTheLowestDifferingByte) {
  GlobalMemory a, b;
  a.write_u64(0x1000, 0xDEADBEEF);
  b.write_u64(0x1000, 0xDEADBEEF);
  Addr where = 0;
  EXPECT_TRUE(a.equal_contents(b, &where));

  b.write(0x1003, 0x00, 1);  // flip one byte mid-word
  EXPECT_FALSE(a.equal_contents(b, &where));
  EXPECT_EQ(where, 0x1003u);

  // Differences in both directions: the lowest address wins even when it
  // lives in a frame only one side has touched.
  GlobalMemory c = a;
  c.write_u64(0x100000, 1);  // far frame absent from `a` (nonzero vs implicit 0)
  c.write(0x1001, 0xFF, 1);
  EXPECT_FALSE(a.equal_contents(c, &where));
  EXPECT_EQ(where, 0x1001u);
}

TEST(GlobalMemory, EqualContentsTreatsUntouchedFramesAsZero) {
  GlobalMemory a, b;
  a.write_u64(0x200000, 0);  // touched, but still all-zero
  Addr where = 0;
  EXPECT_TRUE(a.equal_contents(b, &where));
  EXPECT_TRUE(b.equal_contents(a, &where));
}

TEST(GlobalMemory, EqualRangeIsWindowed) {
  GlobalMemory a, b;
  for (Addr off = 0; off < 64; off += 8) {
    a.write_u64(0x3000 + off, off);
    b.write_u64(0x3000 + off, off);
  }
  b.write_u64(0x3038, 999);  // corrupt the last word
  Addr where = 0;
  EXPECT_TRUE(a.equal_range(b, 0x3000, 0x38, &where));   // window excludes it
  EXPECT_FALSE(a.equal_range(b, 0x3000, 0x40, &where));  // window includes it
  EXPECT_EQ(where & ~Addr{7}, 0x3038u);
}

}  // namespace
}  // namespace sndp
