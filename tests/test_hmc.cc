// Direct HMC unit tests: drive one stack through the network with baseline
// and NDP packets and observe the logic layer's responses.
#include <gtest/gtest.h>

#include "sndp.h"

#include "mem/hmc.h"

namespace sndp {
namespace {

struct HmcHarness {
  HmcHarness()
      : cfg(SystemConfig::small_test()),
        amap(cfg),
        net(cfg),
        governor(cfg.governor, 8, 128, 1),
        bufmgr(cfg.ndp_buffers, cfg.num_hmcs),
        ro_cache(cfg.num_hmcs, cfg.nsu, 128),
        wta(cfg.num_hmcs) {
    ProgramBuilder b;
    b.movi(16, 0).ld(9, 16).alu(Opcode::kFAdd, 10, 9, 9).st(16, 10).exit();
    image = analyze_and_generate(b.build());
    ctx.cfg = &cfg;
    ctx.amap = &amap;
    ctx.gmem = &gmem;
    ctx.net = &port;
    ctx.governor = &governor;
    ctx.bufmgr = &bufmgr;
    ctx.energy = &energy;
    ctx.ro_cache = &ro_cache;
    ctx.wta_tracker = &wta;
    ctx.image = &image;
    hmc = std::make_unique<Hmc>(0, ctx);
  }

  void tick(unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      hmc->tick(cycle, tick_time_ps(cycle, cfg.clocks.dram_khz));
      ++cycle;
    }
  }

  // Drains packets the HMC sent to `node` into a vector.
  std::vector<Packet> drain(unsigned node) {
    std::vector<Packet> out;
    while (auto p = net.rx(node).pop_ready(kTimeNever - 1)) out.push_back(std::move(*p));
    return out;
  }

  // Finds an address owned by HMC 0 (so the harness HMC serves it).
  Addr local_line(unsigned n = 0) {
    Addr a = 0;
    unsigned found = 0;
    while (true) {
      if (amap.hmc_of(a) == 0) {
        if (found == n) return a;
        ++found;
      }
      a += cfg.page_bytes;
    }
  }

  SystemConfig cfg;
  AddressMap amap;
  GlobalMemory gmem;
  Network net;
  NetworkPort port{net};
  OffloadGovernor governor;
  NdpBufferManager bufmgr;
  RoCacheMirror ro_cache;
  WtaInflightTracker wta;
  EnergyCounters energy;
  KernelImage image;
  SystemContext ctx;
  std::unique_ptr<Hmc> hmc;
  Cycle cycle = 0;
};

TEST(HmcUnit, BaselineReadReturnsLine) {
  HmcHarness h;
  const Addr line = h.local_line();
  Packet req;
  req.type = PacketType::kMemRead;
  req.src_node = static_cast<std::uint16_t>(h.net.gpu_node());
  req.dst_node = 0;
  req.line_addr = line;
  req.token = 42;
  req.size_bytes = mem_read_req_bytes();
  h.net.send(std::move(req), 0);

  h.tick(200);
  const auto out = h.drain(h.net.gpu_node());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, PacketType::kMemReadResp);
  EXPECT_EQ(out[0].line_addr, line);
  EXPECT_EQ(out[0].token, 42u);
  EXPECT_EQ(out[0].size_bytes, mem_read_resp_bytes());
  EXPECT_EQ(h.hmc->total_reads(), 1u);
  EXPECT_TRUE(h.hmc->idle());
}

TEST(HmcUnit, RdfForwardsOnlyTouchedWordsToRemoteNsu) {
  HmcHarness h;
  const Addr line = h.local_line();
  h.gmem.write_f64(line + 8, 7.5);

  Packet rdf;
  rdf.type = PacketType::kRdf;
  rdf.src_node = static_cast<std::uint16_t>(h.net.gpu_node());
  rdf.dst_node = 0;
  rdf.line_addr = line;
  rdf.oid = OffloadPacketId{3, 4, 0, 0, 9};
  rdf.mask = 0b10;  // one lane
  rdf.expected_mask = 0b10;
  rdf.target_nsu = 2;  // remote stack
  rdf.mem_width = 8;
  rdf.lane_addrs.assign(kWarpWidth, 0);
  rdf.lane_addrs[1] = line + 8;
  rdf.size_bytes = rdf_wta_packet_bytes(1, false);
  h.net.send(std::move(rdf), 0);

  h.tick(200);
  const auto out = h.drain(2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, PacketType::kRdfResp);
  EXPECT_DOUBLE_EQ(bits_to_f64(out[0].lane_data[1]), 7.5);
  // Only one 8 B word rides the response, not a 128 B line.
  EXPECT_EQ(out[0].size_bytes, rdf_resp_packet_bytes(1, 8));
  EXPECT_LT(out[0].size_bytes, mem_read_resp_bytes());
}

TEST(HmcUnit, NsuWriteAppliesAcksAndInvalidates) {
  HmcHarness h;
  const Addr line = h.local_line();

  Packet wr;
  wr.type = PacketType::kNsuWrite;
  wr.src_node = 1;  // issued by HMC 1's NSU
  wr.dst_node = 0;
  wr.line_addr = line;
  wr.oid = OffloadPacketId{0, 1, 2, 0, 5};
  wr.mask = 0b1;
  wr.mem_width = 8;
  wr.lane_addrs.assign(kWarpWidth, 0);
  wr.lane_addrs[0] = line + 16;
  wr.lane_data.assign(kWarpWidth, 0);
  wr.lane_data[0] = f64_to_bits(2.5);
  wr.size_bytes = nsu_write_packet_bytes(1, 8, false);
  h.net.send(std::move(wr), 0);

  h.tick(200);
  // Functional write applied at completion.
  EXPECT_DOUBLE_EQ(h.gmem.read_f64(line + 16), 2.5);
  EXPECT_EQ(h.hmc->total_writes(), 1u);
  // Ack to the issuing NSU's stack, invalidation to the GPU.
  const auto to_nsu = h.drain(1);
  ASSERT_EQ(to_nsu.size(), 1u);
  EXPECT_EQ(to_nsu[0].type, PacketType::kNsuWriteAck);
  EXPECT_EQ(to_nsu[0].oid.instance, 5u);
  const auto to_gpu = h.drain(h.net.gpu_node());
  ASSERT_EQ(to_gpu.size(), 1u);
  EXPECT_EQ(to_gpu[0].type, PacketType::kCacheInval);
  EXPECT_EQ(to_gpu[0].line_addr, line);
}

TEST(HmcUnit, WriteThroughStoreConsumesNoResponse) {
  HmcHarness h;
  Packet wr;
  wr.type = PacketType::kMemWrite;
  wr.src_node = static_cast<std::uint16_t>(h.net.gpu_node());
  wr.dst_node = 0;
  wr.line_addr = h.local_line();
  wr.size_bytes = mem_write_req_bytes(128);
  h.net.send(std::move(wr), 0);
  h.tick(200);
  EXPECT_TRUE(h.drain(h.net.gpu_node()).empty());
  EXPECT_EQ(h.hmc->total_writes(), 1u);
  EXPECT_TRUE(h.hmc->idle());
}

TEST(HmcUnit, ManyReadsSaturateVaultsAndDrain) {
  HmcHarness h;
  // Enqueue far more reads than one vault queue holds; the backlog channel
  // must absorb and eventually drain them all.
  constexpr unsigned kReads = 300;
  for (unsigned i = 0; i < kReads; ++i) {
    Packet req;
    req.type = PacketType::kMemRead;
    req.src_node = static_cast<std::uint16_t>(h.net.gpu_node());
    req.dst_node = 0;
    req.line_addr = h.local_line(i);
    req.token = i;
    req.size_bytes = mem_read_req_bytes();
    h.net.send(std::move(req), 0);
  }
  h.tick(5000);
  EXPECT_EQ(h.drain(h.net.gpu_node()).size(), kReads);
  EXPECT_TRUE(h.hmc->idle());
  EXPECT_EQ(h.hmc->total_reads(), kReads);
}

TEST(HmcUnit, DramCountersFeedEnergy) {
  HmcHarness h;
  for (unsigned i = 0; i < 8; ++i) {
    Packet req;
    req.type = PacketType::kMemRead;
    req.src_node = static_cast<std::uint16_t>(h.net.gpu_node());
    req.dst_node = 0;
    req.line_addr = h.local_line(i);
    req.size_bytes = mem_read_req_bytes();
    h.net.send(std::move(req), 0);
  }
  h.tick(1000);
  EXPECT_GT(h.hmc->total_activates(), 0u);
  EXPECT_EQ(h.energy.dram_read_bytes, 8u * 128);
  EXPECT_GT(h.energy.hmc_noc_bytes, 0u);
}

}  // namespace
}  // namespace sndp
