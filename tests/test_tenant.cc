// Multi-tenant serving test matrix (ctest label: integration).
//
// Pins the tenancy contract from DESIGN.md "Multi-tenant serving":
//
//  * one tenant is the classic single-kernel path, bit-identical stats;
//  * multi-tenant runs are deterministic and bit-identical across
//    fast-forward on/off and serial/parallel stepping;
//  * a strict-priority top tenant's output bytes are identical to a solo
//    run of the same workload (disjoint address spaces + issue-time
//    functional writes make outputs interference-independent);
//  * the run only completes once EVERY tenant's CTA queue has drained —
//    not just tenant 0's;
//  * per-tenant offload governors do not cross-contaminate: each tenant's
//    completed-block-instruction total in a mix equals its solo total;
//  * the StatsAudit per-tenant splits sum to the fabric totals, and the
//    per-tenant latency histograms partition the per-class histograms.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sndp.h"

namespace sndp {
namespace {

SystemConfig tenant_cfg() {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = OffloadMode::kDynamicCache;
  cfg.governor.epoch_cycles = 1000;  // scaled epoch (EXPERIMENTS.md)
  cfg.audit = true;
  return cfg;
}

struct Mix {
  std::string name;
  ProblemScale scale = ProblemScale::kTiny;
  double weight = 1.0;
  unsigned priority = 0;
};

RunResult run_mix(const SystemConfig& cfg, const std::vector<Mix>& mix,
                  GlobalMemory* sink = nullptr,
                  std::vector<std::unique_ptr<Workload>>* keep = nullptr) {
  std::vector<std::unique_ptr<Workload>> local;
  std::vector<std::unique_ptr<Workload>>& wls = keep != nullptr ? *keep : local;
  std::vector<TenantDesc> descs;
  for (const Mix& m : mix) {
    wls.push_back(make_workload(m.name, m.scale));
    descs.push_back(TenantDesc{wls.back().get(), m.weight, m.priority});
  }
  Simulator sim(cfg);
  if (sink != nullptr) sim.set_final_memory_sink(sink);
  return sim.run_tenants(descs, "mix");
}

// Stats with the intentionally stepping-dependent keys removed (the same
// exclusions the parallel identity tests use).
std::map<std::string, double> comparable_stats(const RunResult& r) {
  std::map<std::string, double> out;
  for (const auto& [k, v] : r.stats.values()) {
    if (k.rfind("sim.parallel_", 0) == 0) continue;
    if (k.rfind("sim.latency_spans", 0) == 0) continue;
    out.emplace(k, v);
  }
  return out;
}

TEST(Tenant, SingleTenantBitIdenticalToClassicPath) {
  const SystemConfig cfg = tenant_cfg();
  auto solo = make_workload("VADD", ProblemScale::kTiny);
  RunResult classic = Simulator(cfg).run(*solo);
  RunResult one = run_mix(cfg, {{"VADD"}});
  EXPECT_TRUE(classic.completed && classic.verified);
  EXPECT_TRUE(one.completed && one.verified);
  EXPECT_EQ(classic.sm_cycles, one.sm_cycles);
  EXPECT_TRUE(one.tenants.empty());  // single-tenant results stay classic
  EXPECT_EQ(classic.stats.values(), one.stats.values());
  // No tenant-keyed stats leak into single-tenant output.
  for (const auto& [k, v] : one.stats.values()) {
    EXPECT_EQ(k.rfind("gpu.t0", 0), std::string::npos) << k;
    (void)v;
  }
}

TEST(Tenant, MultiTenantDeterministicAcrossFastForwardAndPartitions) {
  const std::vector<Mix> mix{{"VADD"}, {"KMN"}};
  std::vector<RunResult> runs;
  std::vector<GlobalMemory> mems(4);
  unsigned i = 0;
  for (const bool ff : {true, false}) {
    for (const unsigned parts : {1u, 2u}) {
      SystemConfig cfg = tenant_cfg();
      cfg.fast_forward = ff;
      cfg.parallel_partitions = parts;
      runs.push_back(run_mix(cfg, mix, &mems[i++]));
    }
  }
  for (const RunResult& r : runs) {
    ASSERT_TRUE(r.completed && r.verified);
    ASSERT_EQ(r.tenants.size(), 2u);
  }
  const auto ref_stats = comparable_stats(runs[0]);
  for (unsigned k = 1; k < runs.size(); ++k) {
    EXPECT_EQ(runs[0].sm_cycles, runs[k].sm_cycles) << "variant " << k;
    EXPECT_EQ(ref_stats, comparable_stats(runs[k])) << "variant " << k;
    for (unsigned t = 0; t < 2; ++t) {
      EXPECT_EQ(runs[0].tenants[t].finish_cycle, runs[k].tenants[t].finish_cycle);
      EXPECT_EQ(runs[0].tenants[t].issued, runs[k].tenants[t].issued);
      EXPECT_EQ(runs[0].tenants[t].l2_misses, runs[k].tenants[t].l2_misses);
    }
    Addr diff = 0;
    EXPECT_TRUE(mems[0].equal_contents(mems[k], &diff))
        << "variant " << k << " memory diverges at 0x" << std::hex << diff;
  }
}

TEST(Tenant, StrictPriorityTopTenantByteIdenticalToSolo) {
  SystemConfig cfg = tenant_cfg();
  auto solo = make_workload("VADD", ProblemScale::kTiny);
  GlobalMemory solo_mem;
  {
    Simulator sim(cfg);
    sim.set_final_memory_sink(&solo_mem);
    ASSERT_TRUE(sim.run(*solo).verified);
  }
  cfg.tenancy.arbiter = TenantArbiter::kStrictPriority;
  GlobalMemory mix_mem;
  std::vector<std::unique_ptr<Workload>> wls;
  const RunResult r = run_mix(
      cfg, {{"VADD", ProblemScale::kTiny, 1.0, 0}, {"KMN", ProblemScale::kTiny, 1.0, 1}},
      &mix_mem, &wls);
  ASSERT_TRUE(r.completed && r.verified);
  // Tenant 0 shares its base address and setup seed with the solo run, so
  // its entire output must match the solo bytes exactly.
  for (const OutputRegion& region : wls[0]->output_regions()) {
    Addr diff = 0;
    EXPECT_TRUE(mix_mem.equal_range(solo_mem, region.base, region.bytes, &diff))
        << region.name << " diverges at 0x" << std::hex << diff;
  }
}

TEST(Tenant, CompletionWaitsForEveryTenant) {
  // Tenant 1 has strictly more work (kSmall) than tenant 0 (kTiny): the
  // run may only report completed once tenant 1's queue drained too.
  const RunResult r =
      run_mix(tenant_cfg(), {{"VADD", ProblemScale::kTiny}, {"KMN", ProblemScale::kSmall}});
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_TRUE(r.tenants[0].verified);
  EXPECT_TRUE(r.tenants[1].verified);
  EXPECT_GT(r.tenants[1].finish_cycle, 0u);
  EXPECT_GT(r.tenants[1].finish_cycle, r.tenants[0].finish_cycle);
  EXPECT_LE(r.tenants[1].finish_cycle, r.sm_cycles);
  EXPECT_GT(r.tenants[1].issued, r.tenants[0].issued);
}

TEST(Tenant, PerTenantGovernorsDoNotCrossContaminate) {
  // Every block instance completes exactly once, so a workload's total
  // completed-block-instruction count is a timing-independent constant.
  // With a shared governor both tenants' completions would fold into one
  // counter; per-tenant governors must reproduce each solo total exactly.
  const SystemConfig cfg = tenant_cfg();
  std::map<std::string, double> solo_instrs;
  for (const std::string& name : {std::string("VADD"), std::string("KMN")}) {
    auto wl = make_workload(name, ProblemScale::kTiny);
    solo_instrs[name] = Simulator(cfg).run(*wl).stats.get("governor.block_instrs");
  }
  const RunResult r = run_mix(cfg, {{"VADD"}, {"KMN"}});
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(static_cast<double>(r.tenants[0].gov_block_instrs), solo_instrs["VADD"]);
  EXPECT_EQ(static_cast<double>(r.tenants[1].gov_block_instrs), solo_instrs["KMN"]);
}

TEST(Tenant, AuditSumsAndLatencyPartitionByTenant) {
  SystemConfig cfg = tenant_cfg();
  cfg.latency_trace = true;  // audit also reconciles the tracer's books
  const RunResult r = run_mix(cfg, {{"BFS"}, {"VADD"}, {"KMN"}});
  ASSERT_TRUE(r.completed && r.verified);  // audit throws on violation
  ASSERT_EQ(r.tenants.size(), 3u);
  double issued = 0, l2 = 0;
  for (unsigned t = 0; t < 3; ++t) {
    const std::string p = "gpu.t" + std::to_string(t);
    issued += r.stats.get(p + ".issued_instrs");
    l2 += r.stats.get(p + ".l2_hits") + r.stats.get(p + ".l2_misses") +
          r.stats.get(p + ".l2_merged");
  }
  EXPECT_EQ(issued, r.stats.get("gpu.issued_instrs"));
  EXPECT_EQ(l2, r.stats.get("gpu.l2_read_reqs"));
  // The per-tenant histograms partition each path class exactly.
  ASSERT_EQ(r.latency.per_tenant.size(), 3u);
  for (std::size_t c = 0; c < kNumPathClasses; ++c) {
    std::uint64_t sum = 0;
    for (const auto& per_class : r.latency.per_tenant) sum += per_class[c].count();
    EXPECT_EQ(sum, r.latency.per_class[c].count())
        << path_class_name(static_cast<PathClass>(c));
  }
}

TEST(Tenant, QosKnobsAndArbitersCompleteDeterministically) {
  for (const TenantArbiter arb :
       {TenantArbiter::kRoundRobin, TenantArbiter::kWeightedShare,
        TenantArbiter::kStrictPriority}) {
    SystemConfig cfg = tenant_cfg();
    cfg.tenancy.arbiter = arb;
    cfg.tenancy.nsu_warp_quota = 4;
    cfg.tenancy.credit_share = 0.5;
    const std::vector<Mix> mix{{"VADD", ProblemScale::kTiny, 2.0, 1},
                               {"KMN", ProblemScale::kTiny, 1.0, 0}};
    const RunResult a = run_mix(cfg, mix);
    const RunResult b = run_mix(cfg, mix);
    ASSERT_TRUE(a.completed && a.verified) << static_cast<int>(arb);
    EXPECT_EQ(a.sm_cycles, b.sm_cycles) << static_cast<int>(arb);
    EXPECT_EQ(a.stats.values(), b.stats.values()) << static_cast<int>(arb);
    EXPECT_GE(a.stats.get("bufmgr.denials_qos"), 0.0);
  }
}

}  // namespace
}  // namespace sndp
