// Tests for the NDP extensions: the §4.1.1 WTA in-flight tracker (dynamic
// memory management), the §7.1 NSU read-only cache, and the optimal-target
// ablation.
#include <gtest/gtest.h>

#include "sndp.h"

namespace sndp {
namespace {

// --- WtaInflightTracker ------------------------------------------------------

TEST(WtaTracker, CountsPerHmc) {
  WtaInflightTracker t(4);
  t.on_wta_generated(1);
  t.on_wta_generated(1);
  t.on_wta_generated(2);
  EXPECT_EQ(t.inflight(1), 2u);
  EXPECT_EQ(t.inflight(2), 1u);
  EXPECT_TRUE(t.quiescent(0));
  EXPECT_FALSE(t.quiescent(1));
  EXPECT_FALSE(t.all_quiescent());
  t.on_invalidation(1);
  t.on_invalidation(1);
  t.on_invalidation(2);
  EXPECT_TRUE(t.all_quiescent());
  EXPECT_EQ(t.max_seen(), 2u);
  EXPECT_EQ(t.total(), 3u);
}

TEST(WtaTracker, UnderflowThrows) {
  WtaInflightTracker t(2);
  EXPECT_THROW(t.on_invalidation(0), std::logic_error);
}

TEST(WtaTracker, SimulationTracksAndDrains) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_TRUE(r.completed);
  // WTAs flowed during the run (max > 0) and all drained (the simulator
  // throws on leaks, so completing is itself the invariant).
  EXPECT_GT(r.stats.get("wta.max_inflight"), 0.0);
  EXPECT_GT(r.stats.get("wta.total"), 0.0);
}

TEST(WtaTracker, BaselineGeneratesNone) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kOff;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  EXPECT_DOUBLE_EQ(r.stats.get("wta.total"), 0.0);
}

// --- RoCacheMirror ------------------------------------------------------------

NsuConfig ro_cfg(unsigned lines) {
  NsuConfig c;
  c.read_only_cache = true;
  c.read_only_cache_bytes = static_cast<std::uint64_t>(lines) * 128;
  return c;
}

TEST(RoCache, DisabledNeverHits) {
  NsuConfig c;
  c.read_only_cache = false;
  RoCacheMirror m(2, c, 128);
  EXPECT_FALSE(m.enabled());
  EXPECT_FALSE(m.lookup_or_insert(0, 0x1000));
  EXPECT_FALSE(m.lookup_or_insert(0, 0x1000));
}

TEST(RoCache, SecondTouchHits) {
  RoCacheMirror m(2, ro_cfg(4), 128);
  EXPECT_FALSE(m.lookup_or_insert(0, 0x1000));
  EXPECT_TRUE(m.lookup_or_insert(0, 0x1000));
  EXPECT_EQ(m.hits(), 1u);
  EXPECT_EQ(m.fills(), 1u);
}

TEST(RoCache, PerNsuIsolation) {
  RoCacheMirror m(2, ro_cfg(4), 128);
  m.lookup_or_insert(0, 0x1000);
  EXPECT_FALSE(m.lookup_or_insert(1, 0x1000));  // other NSU: cold
}

TEST(RoCache, LruEviction) {
  RoCacheMirror m(1, ro_cfg(2), 128);
  m.lookup_or_insert(0, 0x100);
  m.lookup_or_insert(0, 0x200);
  EXPECT_TRUE(m.lookup_or_insert(0, 0x100));   // refresh 0x100
  m.lookup_or_insert(0, 0x300);                // evicts 0x200 (LRU)
  EXPECT_TRUE(m.lookup_or_insert(0, 0x100));
  EXPECT_FALSE(m.lookup_or_insert(0, 0x200));  // was evicted
}

TEST(RoCache, StoreInvalidatesEverywhere) {
  RoCacheMirror m(2, ro_cfg(4), 128);
  m.lookup_or_insert(0, 0x1000);
  m.lookup_or_insert(1, 0x1000);
  m.invalidate(0x1000);
  EXPECT_EQ(m.invalidations(), 2u);
  EXPECT_FALSE(m.lookup_or_insert(0, 0x1000));
  EXPECT_FALSE(m.lookup_or_insert(1, 0x1000));
}

TEST(RoCache, ReducesBpropLinkTraffic) {
  // End-to-end: BPROP's cache-resident input pushes shrink with the RO
  // cache enabled (§7.1: "can benefit from adding a small read-only cache").
  // A mixed ratio is needed: inline instances warm the GPU caches, and the
  // offloaded instances then push the cached lines (the §7.1 pathology).
  SystemConfig off = SystemConfig::small_test();
  off.governor.mode = OffloadMode::kStaticRatio;
  off.governor.static_ratio = 0.5;
  auto wl1 = make_workload("BPROP", ProblemScale::kTiny);
  const RunResult without = Simulator(off).run(*wl1);

  SystemConfig on = off;
  on.nsu.read_only_cache = true;
  auto wl2 = make_workload("BPROP", ProblemScale::kTiny);
  const RunResult with = Simulator(on).run(*wl2);

  EXPECT_TRUE(with.verified);
  EXPECT_GT(with.stats.get("rocache.hits"), 0.0);
  EXPECT_LT(with.stats.get("net.gpu_up_bytes"), without.stats.get("net.gpu_up_bytes"));
  EXPECT_LE(with.sm_cycles, without.sm_cycles);
}

// --- Optimal target selection ablation ---------------------------------------

TEST(OptimalTarget, VerifiesAndUsesPendingBuffer) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kAlways;
  cfg.optimal_target_selection = true;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST(OptimalTarget, NoWorseNetworkTrafficThanFirstAccess) {
  // The optimal policy minimizes remote accesses: inter-stack bytes must
  // not exceed the first-access policy's (Fig. 5's premise), on average.
  SystemConfig first_cfg = SystemConfig::small_test();
  first_cfg.governor.mode = OffloadMode::kAlways;
  auto wl1 = make_workload("MiniFE", ProblemScale::kTiny);
  const RunResult first = Simulator(first_cfg).run(*wl1);

  SystemConfig opt_cfg = first_cfg;
  opt_cfg.optimal_target_selection = true;
  auto wl2 = make_workload("MiniFE", ProblemScale::kTiny);
  const RunResult opt = Simulator(opt_cfg).run(*wl2);

  EXPECT_TRUE(opt.verified);
  EXPECT_LE(opt.cube_link_bytes, first.cube_link_bytes);
}

}  // namespace
}  // namespace sndp
