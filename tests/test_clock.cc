// Tests for the clock-domain scheduler and timed channels.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "sim/timed_channel.h"

namespace sndp {
namespace {

class Recorder final : public Tickable {
 public:
  void tick(Cycle cycle, TimePs now) override { events.emplace_back(cycle, now); }
  std::vector<std::pair<Cycle, TimePs>> events;
};

TEST(ClockDomain, TicksMapToExactTimes) {
  ClockDomain dom("test", 1'000'000);  // 1 GHz -> 1000 ps period
  Recorder r;
  dom.add(&r);
  for (int i = 0; i < 5; ++i) dom.run_tick();
  ASSERT_EQ(r.events.size(), 5u);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_EQ(r.events[i].first, i);
    EXPECT_EQ(r.events[i].second, i * 1000u);
  }
}

TEST(Scheduler, InterleavesDomainsByTime) {
  ClockDomain fast("fast", 1'000'000);  // 1000 ps
  ClockDomain slow("slow", 400'000);    // 2500 ps
  Recorder rf, rs;
  fast.add(&rf);
  slow.add(&rs);
  Scheduler sched;
  sched.add(&fast);
  sched.add(&slow);
  // Advance until the fast domain has ticked 10 times.
  while (rf.events.size() < 10) sched.step();
  // Slow domain must have ticked at 0, 2500, 5000, 7500 within 9000 ps.
  ASSERT_GE(rs.events.size(), 4u);
  EXPECT_EQ(rs.events[1].second, 2500u);
  EXPECT_EQ(rs.events[3].second, 7500u);
  // Monotonic global time.
  EXPECT_GE(sched.now(), 9000u);
}

TEST(Scheduler, CoincidentEdgesTickBothDomains) {
  ClockDomain a("a", 1'000'000), b("b", 500'000);
  Recorder ra, rb;
  a.add(&ra);
  b.add(&rb);
  Scheduler sched;
  sched.add(&a);
  sched.add(&b);
  sched.step();  // t=0: both fire
  EXPECT_EQ(ra.events.size(), 1u);
  EXPECT_EQ(rb.events.size(), 1u);
  sched.step();  // t=1000: only a
  EXPECT_EQ(ra.events.size(), 2u);
  EXPECT_EQ(rb.events.size(), 1u);
  sched.step();  // t=2000: both again
  EXPECT_EQ(ra.events.size(), 3u);
  EXPECT_EQ(rb.events.size(), 2u);
}

TEST(Scheduler, FractionalPeriodNoDrift) {
  // 666'667 kHz (tCK = 1.5 ns nominal): after 1e6 ticks, time must match
  // the exact rational n*1e9/khz, not an accumulated rounded period.
  ClockDomain dram("dram", 666'667);
  for (int i = 0; i < 1000; ++i) dram.run_tick();
  EXPECT_EQ(dram.next_time(), tick_time_ps(1000, 666'667));
  EXPECT_NEAR(static_cast<double>(dram.next_time()), 1000 * 1499.99925, 1.0);
}

TEST(TimedChannel, FifoDelivery) {
  TimedChannel<int> ch;
  ch.push(1, 100);
  ch.push(2, 200);
  EXPECT_FALSE(ch.ready(50));
  EXPECT_TRUE(ch.ready(100));
  EXPECT_EQ(*ch.pop_ready(150), 1);
  EXPECT_FALSE(ch.ready(150));
  EXPECT_EQ(*ch.pop_ready(200), 2);
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, MonotonicClampPreservesFifo) {
  TimedChannel<int> ch;
  ch.push(1, 500);
  ch.push(2, 100);  // would overtake: clamped to 500
  EXPECT_FALSE(ch.ready(499));
  EXPECT_TRUE(ch.ready(500));
  EXPECT_EQ(*ch.pop_ready(500), 1);
  EXPECT_TRUE(ch.ready(500));
  EXPECT_EQ(*ch.pop_ready(500), 2);
}

TEST(TimedChannel, PopNotReadyReturnsNullopt) {
  TimedChannel<int> ch;
  EXPECT_EQ(ch.pop_ready(1000), std::nullopt);
  ch.push(5, 2000);
  EXPECT_EQ(ch.pop_ready(1999), std::nullopt);
  EXPECT_EQ(ch.size(), 1u);
}

TEST(SchedulerRunUntilIdle, StopsAtDeadline) {
  ClockDomain dom("d", 1'000'000);
  Recorder r;
  dom.add(&r);
  Scheduler sched;
  sched.add(&dom);
  const bool became_idle = sched.run_until_idle([] { return false; }, 10'000);
  EXPECT_FALSE(became_idle);
  EXPECT_GE(sched.now(), 10'000u);
}

// --- fast-forward ----------------------------------------------------------

// A worker with an explicit work schedule (domain tick indices).  The hint
// reports the exact edge of the next scheduled cycle; tick() records every
// invocation and consumes the schedule entry when one lands.
class ScheduledWorker final : public Tickable {
 public:
  ScheduledWorker(std::vector<Cycle> schedule, std::uint64_t khz)
      : schedule_(std::move(schedule)), khz_(khz) {}

  void tick(Cycle cycle, TimePs now) override {
    ticks.emplace_back(cycle, now);
    if (idx_ < schedule_.size() && schedule_[idx_] == cycle) {
      work.emplace_back(cycle, now);
      ++idx_;
    }
  }
  TimePs next_work_ps(TimePs) override {
    return idx_ < schedule_.size() ? tick_time_ps(schedule_[idx_], khz_) : kTimeNever;
  }
  bool drained() const { return idx_ >= schedule_.size(); }

  std::vector<std::pair<Cycle, TimePs>> ticks;
  std::vector<std::pair<Cycle, TimePs>> work;

 private:
  std::vector<Cycle> schedule_;
  std::size_t idx_ = 0;
  std::uint64_t khz_;
};

TEST(SchedulerFastForward, MatchesNaiveWorkSequenceAcrossDomains) {
  // Two phase-incommensurate domains (the DRAM frequency has a fractional
  // period) with sparse work.  Fast-forward must deliver the exact same
  // (tick index, ps timestamp) pairs to the workers as naive stepping, and
  // finish on the same edge.
  const std::vector<Cycle> sched_a = {0, 1, 7, 40, 41, 200};
  const std::vector<Cycle> sched_b = {3, 5, 90, 91, 150};

  auto run = [&](bool ff) {
    ClockDomain da("a", 1'000'000);
    ClockDomain db("b", 666'667);
    ScheduledWorker wa(sched_a, 1'000'000);
    ScheduledWorker wb(sched_b, 666'667);
    da.add(&wa);
    db.add(&wb);
    Scheduler sched(ff);
    sched.add(&da);
    sched.add(&db);
    while (!wa.drained() || !wb.drained()) sched.step();
    return std::tuple(wa.work, wb.work, sched.now(), da.next_cycle(), db.next_cycle());
  };

  const auto naive = run(false);
  const auto fast = run(true);
  EXPECT_EQ(std::get<0>(fast), std::get<0>(naive));
  EXPECT_EQ(std::get<1>(fast), std::get<1>(naive));
  EXPECT_EQ(std::get<2>(fast), std::get<2>(naive));  // final global time
  // Skipped edges still advance the tick indices: cycle counts match too.
  EXPECT_EQ(std::get<3>(fast), std::get<3>(naive));
  EXPECT_EQ(std::get<4>(fast), std::get<4>(naive));
}

TEST(SchedulerFastForward, SkipsQuiescentEdgesButKeepsTickIndices) {
  ClockDomain dom("d", 1'000'000);
  ScheduledWorker w({0, 100}, 1'000'000);
  dom.add(&w);
  Scheduler sched(/*fast_forward=*/true);
  sched.add(&dom);
  sched.step();
  EXPECT_EQ(sched.now(), 0u);
  sched.step();
  EXPECT_EQ(sched.now(), 100'000u);
  // Only the two work edges were actually ticked...
  ASSERT_EQ(w.ticks.size(), 2u);
  EXPECT_EQ(w.ticks[1], (std::pair<Cycle, TimePs>{100, 100'000}));
  // ...but the 99 skipped edges were consumed, not lost.
  EXPECT_EQ(dom.next_cycle(), 101u);
}

TEST(SchedulerFastForward, QuiescentStepDoesNotAdvance) {
  ClockDomain dom("d", 1'000'000);
  ScheduledWorker w({3}, 1'000'000);
  dom.add(&w);
  Scheduler sched(/*fast_forward=*/true);
  sched.add(&dom);
  sched.step();
  EXPECT_EQ(sched.now(), 3000u);
  EXPECT_FALSE(sched.quiescent());
  sched.step();  // no work anywhere: flag set, time frozen
  EXPECT_TRUE(sched.quiescent());
  EXPECT_EQ(sched.now(), 3000u);
  EXPECT_EQ(w.ticks.size(), 1u);
}

TEST(SchedulerFastForward, AdvanceToLimitLandsOnNaiveValveEdge) {
  // A naive loop guarded by `now() >= limit` ticks dead edges up to the
  // first edge at/after the limit and stops there; the fast-forward
  // dead-march must land on the same edge with the same consumed-edge count.
  auto run = [&](bool ff) {
    ClockDomain dom("d", 1'000'000);
    ScheduledWorker w({}, 1'000'000);  // never any work
    dom.add(&w);
    Scheduler sched(ff);
    sched.set_time_limit(10'500);
    sched.add(&dom);
    if (ff) {
      sched.advance_to_limit();
    } else {
      while (sched.now() < 10'500) sched.step();
    }
    return std::pair(sched.now(), dom.next_cycle());
  };
  EXPECT_EQ(run(true), run(false));
}

// Domain A's member pushes same-instant-consumable work into domain B's
// member when it ticks.  The pre-step hints cannot see that work, so the
// scheduler must re-poll at the target edge or B would be skip-ticked where
// naive stepping ticks it.
class InstantSink final : public Tickable {
 public:
  void tick(Cycle cycle, TimePs now) override {
    if (wake <= now) work.emplace_back(cycle, now);
    wake = kTimeNever;
  }
  TimePs next_work_ps(TimePs) override { return wake; }
  TimePs wake = kTimeNever;
  std::vector<std::pair<Cycle, TimePs>> work;
};

class InstantPusher final : public Tickable {
 public:
  InstantPusher(InstantSink* sink, Cycle push_cycle, std::uint64_t khz)
      : sink_(sink), push_cycle_(push_cycle), khz_(khz) {}
  void tick(Cycle cycle, TimePs now) override {
    if (cycle == push_cycle_) {
      sink_->wake = now;
      done_ = true;
    }
  }
  TimePs next_work_ps(TimePs) override {
    return done_ ? kTimeNever : tick_time_ps(push_cycle_, khz_);
  }

 private:
  InstantSink* sink_;
  Cycle push_cycle_;
  std::uint64_t khz_;
  bool done_ = false;
};

TEST(SchedulerFastForward, SameInstantCrossDomainPushIsNotSkipped) {
  ClockDomain da("a", 1'000'000);
  ClockDomain db("b", 1'000'000);  // coincident edges with a
  InstantSink sink;
  InstantPusher pusher(&sink, /*push_cycle=*/2, 1'000'000);
  da.add(&pusher);
  db.add(&sink);
  Scheduler sched(/*fast_forward=*/true);
  sched.add(&da);  // a ticks before b at coincident edges
  sched.add(&db);
  sched.step();  // jumps to cycle 2; pusher wakes the sink mid-edge
  ASSERT_EQ(sink.work.size(), 1u);
  EXPECT_EQ(sink.work[0], (std::pair<Cycle, TimePs>{2, 2000}));
}

// --- parallel-in-time windows ---------------------------------------------

TEST(SchedulerWindows, PollBidIsPureAndMatchesNextWork) {
  ClockDomain dom("d", 1'000'000);
  ScheduledWorker w({5, 9}, 1'000'000);
  dom.add(&w);
  Scheduler part(/*fast_forward=*/true);
  part.add(&dom);
  EXPECT_EQ(part.poll_bid(), 5000u);
  EXPECT_EQ(part.poll_bid(), 5000u);  // nothing advanced
  EXPECT_EQ(dom.next_cycle(), 0u);
  EXPECT_TRUE(w.ticks.empty());
}

// A windowed run over partition-local schedulers must reproduce the serial
// scheduler's exact (tick index, timestamp) sequence per worker and leave
// every domain's consumed-edge count on the serial value.  Exercised at the
// geometry the simulator uses for 3 stacks + hub: incommensurate
// frequencies, one two-domain "hub" partition, uneven work schedules.
TEST(SchedulerWindows, WindowedRunMatchesSerialAcrossThreePartitions) {
  const std::vector<Cycle> sched_hub_a = {0, 1, 7, 40, 41, 200};
  const std::vector<Cycle> sched_hub_b = {3, 90, 150};
  const std::vector<Cycle> sched_s1 = {2, 5, 91, 180};
  const std::vector<Cycle> sched_s2 = {10, 11, 12, 199};
  const std::uint64_t khz_a = 1'000'000, khz_b = 666'667, khz_s = 350'000;

  auto build = [&](auto&& body) {
    ClockDomain da("a", khz_a), db("b", khz_b), d1("s1", khz_s), d2("s2", khz_s);
    ScheduledWorker wa(sched_hub_a, khz_a), wb(sched_hub_b, khz_b);
    ScheduledWorker w1(sched_s1, khz_s), w2(sched_s2, khz_s);
    da.add(&wa);
    db.add(&wb);
    d1.add(&w1);
    d2.add(&w2);
    body(da, db, d1, d2);
    return std::tuple(wa.work, wb.work, w1.work, w2.work, da.next_cycle(), db.next_cycle(),
                      d1.next_cycle(), d2.next_cycle());
  };

  for (const bool ff : {true, false}) {
    const auto serial = build([&](auto& da, auto& db, auto& d1, auto& d2) {
      Scheduler sched(ff);
      sched.add(&da);
      sched.add(&db);
      sched.add(&d1);
      sched.add(&d2);
      while (true) {
        if (ff) {
          if (sched.quiescent()) break;
          sched.step();
        } else {
          // Naive serial loop with an idle predicate, as the simulator runs.
          if (sched.poll_bid() == kTimeNever) break;
          sched.step();
        }
      }
      // Serial termination leaves the final work edge consumed; mirror the
      // coordinator's finish_to afterwards for the windowed variant.
    });

    const auto windowed = build([&](auto& da, auto& db, auto& d1, auto& d2) {
      Scheduler hub(ff), p1(ff), p2(ff);
      hub.add(&da);
      hub.add(&db);
      p1.add(&d1);
      p2.add(&d2);
      std::vector<Scheduler*> parts = {&hub, &p1, &p2};
      const TimePs lookahead = 4'000;  // any positive horizon is valid here
      bool any_window = false;
      while (true) {
        TimePs w = kTimeNever;
        for (Scheduler* p : parts) w = std::min(w, p->poll_bid());
        if (w == kTimeNever) break;
        for (Scheduler* p : parts) p->run_window(w + lookahead);
        any_window = true;
      }
      TimePs f = 0;
      for (Scheduler* p : parts) f = std::max(f, p->now());
      if (any_window) {
        for (Scheduler* p : parts) p->finish_to(f, /*consume_edge_at_f=*/true);
      }
    });

    EXPECT_EQ(windowed, serial) << "ff=" << ff;
  }
}

TEST(SchedulerWindows, RunWindowNeverExecutesAtOrPastLimitAndValveMatchesSerial) {
  // All remaining work lies at/after the limit: run_window must refuse it
  // (the valve step is a global decision), and run_valve_step at the global
  // valve edge must land exactly where the serial valve lands.
  auto run = [&](bool windowed) {
    ClockDomain dom("d", 1'000'000);
    ScheduledWorker w({20}, 1'000'000);  // work at 20'000 ps, past the limit
    dom.add(&w);
    Scheduler sched(/*fast_forward=*/true);
    sched.set_time_limit(10'500);
    sched.add(&dom);
    if (windowed) {
      const TimePs bid = sched.run_window(5'000);  // horizon below the work
      EXPECT_EQ(bid, 20'000u);
      EXPECT_TRUE(w.ticks.empty());  // nothing executed
      sched.run_valve_step(sched.local_valve_edge());
    } else {
      sched.advance_to_limit();
    }
    return std::pair(sched.now(), dom.next_cycle());
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(SchedulerWindows, FinishToConsumesTrailingEdgesLikeSerial) {
  // After its last work edge a lagging partition must end with the same
  // consumed-edge count serial stepping produces when another domain's
  // final tick lands at `f`.
  ClockDomain dom("d", 1'000'000);
  ScheduledWorker w({2}, 1'000'000);
  dom.add(&w);
  Scheduler part(/*fast_forward=*/true);
  part.add(&dom);
  part.run_window(100'000);
  EXPECT_EQ(dom.next_cycle(), 3u);
  part.finish_to(10'000, /*consume_edge_at_f=*/true);
  // Edges 3..9 skipped, plus the edge at exactly 10'000 ps consumed.
  EXPECT_EQ(dom.next_cycle(), 11u);
  // Ticks delivered: only the work edge.
  ASSERT_EQ(w.ticks.size(), 1u);
  EXPECT_EQ(w.ticks[0], (std::pair<Cycle, TimePs>{2, 2000}));
}

// The order probe publishes the calling tick context before each member
// tick — the replay key deferred sends are sorted by.
class ProbeReader final : public Tickable {
 public:
  explicit ProbeReader(const TickOrderProbe* probe) : probe_(probe) {}
  void tick(Cycle, TimePs) override { seen.push_back(*probe_); }
  std::vector<TickOrderProbe> seen;

 private:
  const TickOrderProbe* probe_;
};

TEST(ClockDomain, OrderProbePublishesTickContextPerMember) {
  ClockDomain dom("d", 1'000'000);
  TickOrderProbe probe;
  ProbeReader m0(&probe), m1(&probe);
  dom.add(&m0);
  dom.add(&m1);
  dom.set_order_probe(&probe, /*domain_rank=*/2, /*member_base=*/5);
  dom.run_tick();
  dom.run_tick();
  ASSERT_EQ(m0.seen.size(), 2u);
  ASSERT_EQ(m1.seen.size(), 2u);
  EXPECT_EQ(m0.seen[0].now, 0u);
  EXPECT_EQ(m0.seen[0].domain_rank, 2u);
  EXPECT_EQ(m0.seen[0].member_rank, 5u);
  EXPECT_EQ(m1.seen[0].member_rank, 6u);
  EXPECT_EQ(m1.seen[1].now, 1000u);
}

}  // namespace
}  // namespace sndp
