// Tests for the clock-domain scheduler and timed channels.
#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/timed_channel.h"

namespace sndp {
namespace {

class Recorder final : public Tickable {
 public:
  void tick(Cycle cycle, TimePs now) override { events.emplace_back(cycle, now); }
  std::vector<std::pair<Cycle, TimePs>> events;
};

TEST(ClockDomain, TicksMapToExactTimes) {
  ClockDomain dom("test", 1'000'000);  // 1 GHz -> 1000 ps period
  Recorder r;
  dom.add(&r);
  for (int i = 0; i < 5; ++i) dom.run_tick();
  ASSERT_EQ(r.events.size(), 5u);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_EQ(r.events[i].first, i);
    EXPECT_EQ(r.events[i].second, i * 1000u);
  }
}

TEST(Scheduler, InterleavesDomainsByTime) {
  ClockDomain fast("fast", 1'000'000);  // 1000 ps
  ClockDomain slow("slow", 400'000);    // 2500 ps
  Recorder rf, rs;
  fast.add(&rf);
  slow.add(&rs);
  Scheduler sched;
  sched.add(&fast);
  sched.add(&slow);
  // Advance until the fast domain has ticked 10 times.
  while (rf.events.size() < 10) sched.step();
  // Slow domain must have ticked at 0, 2500, 5000, 7500 within 9000 ps.
  ASSERT_GE(rs.events.size(), 4u);
  EXPECT_EQ(rs.events[1].second, 2500u);
  EXPECT_EQ(rs.events[3].second, 7500u);
  // Monotonic global time.
  EXPECT_GE(sched.now(), 9000u);
}

TEST(Scheduler, CoincidentEdgesTickBothDomains) {
  ClockDomain a("a", 1'000'000), b("b", 500'000);
  Recorder ra, rb;
  a.add(&ra);
  b.add(&rb);
  Scheduler sched;
  sched.add(&a);
  sched.add(&b);
  sched.step();  // t=0: both fire
  EXPECT_EQ(ra.events.size(), 1u);
  EXPECT_EQ(rb.events.size(), 1u);
  sched.step();  // t=1000: only a
  EXPECT_EQ(ra.events.size(), 2u);
  EXPECT_EQ(rb.events.size(), 1u);
  sched.step();  // t=2000: both again
  EXPECT_EQ(ra.events.size(), 3u);
  EXPECT_EQ(rb.events.size(), 2u);
}

TEST(Scheduler, FractionalPeriodNoDrift) {
  // 666'667 kHz (tCK = 1.5 ns nominal): after 1e6 ticks, time must match
  // the exact rational n*1e9/khz, not an accumulated rounded period.
  ClockDomain dram("dram", 666'667);
  for (int i = 0; i < 1000; ++i) dram.run_tick();
  EXPECT_EQ(dram.next_time(), tick_time_ps(1000, 666'667));
  EXPECT_NEAR(static_cast<double>(dram.next_time()), 1000 * 1499.99925, 1.0);
}

TEST(TimedChannel, FifoDelivery) {
  TimedChannel<int> ch;
  ch.push(1, 100);
  ch.push(2, 200);
  EXPECT_FALSE(ch.ready(50));
  EXPECT_TRUE(ch.ready(100));
  EXPECT_EQ(*ch.pop_ready(150), 1);
  EXPECT_FALSE(ch.ready(150));
  EXPECT_EQ(*ch.pop_ready(200), 2);
  EXPECT_TRUE(ch.empty());
}

TEST(TimedChannel, MonotonicClampPreservesFifo) {
  TimedChannel<int> ch;
  ch.push(1, 500);
  ch.push(2, 100);  // would overtake: clamped to 500
  EXPECT_FALSE(ch.ready(499));
  EXPECT_TRUE(ch.ready(500));
  EXPECT_EQ(*ch.pop_ready(500), 1);
  EXPECT_TRUE(ch.ready(500));
  EXPECT_EQ(*ch.pop_ready(500), 2);
}

TEST(TimedChannel, PopNotReadyReturnsNullopt) {
  TimedChannel<int> ch;
  EXPECT_EQ(ch.pop_ready(1000), std::nullopt);
  ch.push(5, 2000);
  EXPECT_EQ(ch.pop_ready(1999), std::nullopt);
  EXPECT_EQ(ch.size(), 1u);
}

TEST(SchedulerRunUntilIdle, StopsAtDeadline) {
  ClockDomain dom("d", 1'000'000);
  Recorder r;
  dom.add(&r);
  Scheduler sched;
  sched.add(&dom);
  const bool became_idle = sched.run_until_idle([] { return false; }, 10'000);
  EXPECT_FALSE(became_idle);
  EXPECT_GE(sched.now(), 10'000u);
}

}  // namespace
}  // namespace sndp
