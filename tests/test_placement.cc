// Tests for the pluggable data-placement policy engine (mem/placement.*)
// and its AddressMap integration: unbiased non-power-of-two reduction,
// first-touch determinism, locality profiles, migration re-homing, and the
// decode/routing single-lookup contract.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "mem/address_map.h"
#include "mem/placement.h"
#include "ref/placement_profile.h"
#include "workloads/registry.h"

namespace sndp {
namespace {

SystemConfig config_with(PlacementPolicyKind kind, unsigned num_hmcs = 8) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.placement.policy = kind;
  cfg.num_hmcs = num_hmcs;
  return cfg;
}

TEST(Placement, PolicyNamesRoundTrip) {
  for (PlacementPolicyKind kind :
       {PlacementPolicyKind::kRandom, PlacementPolicyKind::kFirstTouch,
        PlacementPolicyKind::kLocality, PlacementPolicyKind::kMigration}) {
    PlacementPolicyKind parsed;
    ASSERT_TRUE(parse_placement_policy(placement_policy_name(kind), &parsed))
        << placement_policy_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  PlacementPolicyKind parsed;
  EXPECT_TRUE(parse_placement_policy("first-touch", &parsed));
  EXPECT_EQ(parsed, PlacementPolicyKind::kFirstTouch);
  EXPECT_FALSE(parse_placement_policy("hottest-bank", &parsed));
  EXPECT_FALSE(parse_placement_policy("", &parsed));
}

TEST(Placement, FactoryBuildsTheSelectedPolicy) {
  for (PlacementPolicyKind kind :
       {PlacementPolicyKind::kRandom, PlacementPolicyKind::kFirstTouch,
        PlacementPolicyKind::kLocality, PlacementPolicyKind::kMigration}) {
    const auto policy = make_placement_policy(config_with(kind));
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->volatile_mapping(), kind == PlacementPolicyKind::kMigration);
  }
}

// Satellite bugfix 1: the historic `hash & (num_hmcs - 1)` reduction is only
// correct for power-of-two stack counts.  The unbiased reduction must keep
// every page in range and stay near-uniform for 3/5/6/7-stack sweeps.
TEST(Placement, NonPowerOfTwoReductionIsInRangeAndBalanced) {
  constexpr unsigned kPages = 90000;
  for (unsigned n : {3u, 5u, 6u, 7u}) {
    std::vector<unsigned> counts(n, 0);
    for (std::uint64_t p = 0; p < kPages; ++p) {
      const HmcId h = random_page_home(p, 0x5EED, n);
      ASSERT_LT(h, n) << "page " << p << " with " << n << " stacks";
      ++counts[h];
    }
    const double expect = static_cast<double>(kPages) / n;
    for (unsigned h = 0; h < n; ++h) {
      EXPECT_NEAR(static_cast<double>(counts[h]), expect, expect * 0.1)
          << "stack " << h << " of " << n;
    }
  }
}

TEST(Placement, AddressMapSupportsNonPowerOfTwoStackCounts) {
  SystemConfig cfg = config_with(PlacementPolicyKind::kRandom, 6);
  ASSERT_NO_THROW(cfg.validate());
  AddressMap amap(cfg);
  std::map<HmcId, unsigned> counts;
  for (unsigned p = 0; p < 60000; ++p) {
    const HmcId h = amap.hmc_of_page(p);
    ASSERT_LT(h, 6u);
    ++counts[h];
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [h, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 1000.0) << "stack " << h;
  }
}

// Satellite bugfix 1 (second half): log2u silently returned garbage for
// non-power-of-two geometry; the AddressMap now refuses such geometry
// outright rather than mis-slicing vault/bank/row bits.
TEST(Placement, AddressMapRejectsNonPowerOfTwoGeometry) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.hmc.num_vaults = 12;
  EXPECT_THROW(AddressMap{cfg}, std::invalid_argument);
}

TEST(Placement, RandomPolicyMatchesTheSharedHash) {
  const SystemConfig cfg = config_with(PlacementPolicyKind::kRandom);
  AddressMap amap(cfg);
  for (std::uint64_t p = 0; p < 4096; ++p) {
    EXPECT_EQ(amap.hmc_of_page(p), random_page_home(p, cfg.placement_seed, cfg.num_hmcs));
  }
}

TEST(Placement, FirstTouchIsRoundRobinAndSticky) {
  const auto policy = make_placement_policy(config_with(PlacementPolicyKind::kFirstTouch, 4));
  // Distinct pages, in first-touch order, get stacks 0,1,2,3,0,1,...
  for (std::uint64_t p = 0; p < 12; ++p) {
    EXPECT_EQ(policy->home_of_page(1000 + p), static_cast<HmcId>(p % 4));
  }
  EXPECT_EQ(policy->pages_assigned(), 12u);
  // Re-lookups never reassign, in any order.
  for (std::uint64_t p = 12; p-- > 0;) {
    EXPECT_EQ(policy->home_of_page(1000 + p), static_cast<HmcId>(p % 4));
  }
  EXPECT_EQ(policy->pages_assigned(), 12u);
  EXPECT_EQ(policy->pages_migrated(), 0u);
}

TEST(Placement, LocalityFollowsProfileWithRandomFallback) {
  SystemConfig cfg = config_with(PlacementPolicyKind::kLocality, 4);
  auto profile = std::make_shared<PlacementProfile>();
  profile->home[5] = 2;
  profile->home[6] = 9;  // stale profile from a wider topology: out of range
  profile->pages_profiled = 2;
  cfg.placement.locality_profile = profile;
  const auto policy = make_placement_policy(cfg);
  EXPECT_EQ(policy->home_of_page(5), 2u);
  // Unprofiled and out-of-range pages fall back to the random hash.
  EXPECT_EQ(policy->home_of_page(6), random_page_home(6, cfg.placement_seed, 4));
  EXPECT_EQ(policy->home_of_page(7), random_page_home(7, cfg.placement_seed, 4));
}

TEST(Placement, LocalityWithoutProfileDegradesToRandom) {
  const SystemConfig cfg = config_with(PlacementPolicyKind::kLocality);
  const auto policy = make_placement_policy(cfg);
  for (std::uint64_t p = 0; p < 256; ++p) {
    EXPECT_EQ(policy->home_of_page(p), random_page_home(p, cfg.placement_seed, cfg.num_hmcs));
  }
}

TEST(Placement, MigrationRehomesAtTheThreshold) {
  SystemConfig cfg = config_with(PlacementPolicyKind::kMigration, 4);
  cfg.placement.migration_threshold = 3;
  const auto policy = make_placement_policy(cfg);
  const std::uint64_t page = 42;
  const HmcId home = policy->home_of_page(page);
  const HmcId mover = static_cast<HmcId>((home + 1) % 4);

  // Local accesses and out-of-topology accessors never feed the heat map.
  policy->note_remote_access(page, home);
  policy->note_remote_access(page, 200);
  policy->note_remote_access(page, mover);
  policy->note_remote_access(page, mover);
  EXPECT_EQ(policy->home_of_page(page), home);
  EXPECT_EQ(policy->pages_migrated(), 0u);

  policy->note_remote_access(page, mover);  // third remote access: threshold
  EXPECT_EQ(policy->home_of_page(page), mover);
  EXPECT_EQ(policy->pages_migrated(), 1u);
  EXPECT_EQ(policy->migration_bytes(), cfg.page_bytes);

  // The new home is stable, and traffic from it no longer counts as remote.
  policy->note_remote_access(page, mover);
  policy->note_remote_access(page, mover);
  policy->note_remote_access(page, mover);
  EXPECT_EQ(policy->home_of_page(page), mover);
  EXPECT_EQ(policy->pages_migrated(), 1u);
}

// A re-home is not a free map flip: the policy reports the completed move
// so the serving stack can charge the page-copy traffic (reads at the old
// home, a bulk cube-link hop, writes at the new home).
TEST(Placement, MigrationReportsTheMoveForTheCopyCharge) {
  SystemConfig cfg = config_with(PlacementPolicyKind::kMigration, 4);
  cfg.placement.migration_threshold = 2;
  const auto policy = make_placement_policy(cfg);
  const std::uint64_t page = 42;
  const HmcId home = policy->home_of_page(page);
  const HmcId mover = static_cast<HmcId>((home + 1) % 4);
  EXPECT_FALSE(policy->note_remote_access(page, mover).moved);  // below threshold
  const PageMove mv = policy->note_remote_access(page, mover);
  ASSERT_TRUE(mv.moved);
  EXPECT_EQ(mv.page_id, page);
  EXPECT_EQ(mv.from, home);
  EXPECT_EQ(mv.to, mover);
  // Post-move accesses from the new home are local again: no further move.
  EXPECT_FALSE(policy->note_remote_access(page, mover).moved);
  // Static policies never report one.
  const auto random = make_placement_policy(config_with(PlacementPolicyKind::kRandom));
  EXPECT_FALSE(random->note_remote_access(page, 1).moved);
}

TEST(Placement, MigrationPicksTheMajorityAccessor) {
  SystemConfig cfg = config_with(PlacementPolicyKind::kMigration, 4);
  cfg.placement.migration_threshold = 5;
  const auto policy = make_placement_policy(cfg);
  const std::uint64_t page = 7;
  const HmcId home = policy->home_of_page(page);
  const HmcId minority = static_cast<HmcId>((home + 1) % 4);
  const HmcId majority = static_cast<HmcId>((home + 2) % 4);
  policy->note_remote_access(page, minority);
  policy->note_remote_access(page, majority);
  policy->note_remote_access(page, majority);
  policy->note_remote_access(page, minority);
  policy->note_remote_access(page, majority);  // 5th: re-home to the majority
  EXPECT_EQ(policy->home_of_page(page), majority);
  EXPECT_EQ(policy->pages_migrated(), 1u);
}

// Satellite bugfix 3: decode() must agree with the routing target.  Under
// every policy, the hmc field of a live decode equals the policy's current
// home, and decode_at() preserves a caller-resolved home verbatim while
// keeping the intra-stack fields identical.
TEST(Placement, DecodeAgreesWithRoutingUnderEveryPolicy) {
  for (PlacementPolicyKind kind :
       {PlacementPolicyKind::kRandom, PlacementPolicyKind::kFirstTouch,
        PlacementPolicyKind::kLocality, PlacementPolicyKind::kMigration}) {
    AddressMap amap(config_with(kind));
    for (Addr addr = 0; addr < (1u << 22); addr += 4093) {
      const HmcId routed = amap.hmc_of(addr);
      const DramCoord live = amap.decode(addr);
      EXPECT_EQ(live.hmc, routed) << placement_policy_name(kind);
      const DramCoord pinned = amap.decode_at(addr, routed);
      EXPECT_EQ(pinned.hmc, routed);
      EXPECT_EQ(pinned.vault, live.vault);
      EXPECT_EQ(pinned.bank, live.bank);
      EXPECT_EQ(pinned.row, live.row);
      EXPECT_EQ(pinned.column, live.column);
    }
  }
}

TEST(Placement, DecodeAtPreservesThePinnedHomeAfterMigration) {
  SystemConfig cfg = config_with(PlacementPolicyKind::kMigration, 4);
  cfg.placement.migration_threshold = 1;
  AddressMap amap(cfg);
  const Addr addr = 17 * cfg.page_bytes + 512;
  const HmcId before = amap.hmc_of(addr);
  const HmcId mover = static_cast<HmcId>((before + 1) % 4);
  amap.policy().note_remote_access(addr / cfg.page_bytes, mover);
  ASSERT_EQ(amap.hmc_of(addr), mover);  // the live mapping moved...
  // ...but a transaction pinned to the old home still decodes there, with
  // identical intra-stack coordinates.
  const DramCoord pinned = amap.decode_at(addr, before);
  EXPECT_EQ(pinned.hmc, before);
  const DramCoord live = amap.decode(addr);
  EXPECT_EQ(live.hmc, mover);
  EXPECT_EQ(pinned.vault, live.vault);
  EXPECT_EQ(pinned.bank, live.bank);
  EXPECT_EQ(pinned.row, live.row);
}

TEST(Placement, ProfilePrePassCoversOffloadedPages) {
  const SystemConfig cfg = config_with(PlacementPolicyKind::kLocality);
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  GlobalMemory mem;
  MemoryAllocator alloc;
  Rng rng(cfg.placement_seed ^ 0xABCDEF);
  wl->setup(mem, alloc, rng);

  const auto profile = build_placement_profile(wl->program(), wl->launch(), mem, cfg);
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->pages_profiled, 0u);
  EXPECT_GT(profile->votes, 0u);
  EXPECT_EQ(profile->pages_profiled, profile->home.size());
  for (const auto& [page, home] : profile->home) {
    EXPECT_LT(home, cfg.num_hmcs) << "page " << page;
  }

  // The pre-pass is deterministic and side-effect-free.
  GlobalMemory untouched;
  MemoryAllocator alloc2;
  Rng rng2(cfg.placement_seed ^ 0xABCDEF);
  wl->setup(untouched, alloc2, rng2);
  Addr where = 0;
  EXPECT_TRUE(mem.equal_contents(untouched, &where)) << "pre-pass wrote 0x" << std::hex << where;
  const auto again = build_placement_profile(wl->program(), wl->launch(), mem, cfg);
  EXPECT_EQ(again->home, profile->home);
}

}  // namespace
}  // namespace sndp
