// Golden-stats regression test (ctest label: integration).
//
// Pins the headline numbers of the paper's two central performance results
// at the kTiny/scaled-epoch configuration the repo's benches use:
//
//  * Fig. 7 — naive NDP (offload every block instance) *degrades*
//    performance: geomean speedup well below 1.
//  * Fig. 9 — the dynamic governor recovers the loss (geomean ~1) and the
//    cache-aware variant does slightly better; the hill climb converges to
//    low offload ratios for cache-friendly workloads and higher ones for
//    BPROP/BFS.
//
// The pinned values were measured on the current timing model; tolerances
// are deliberately explicit and loose enough (±0.02 absolute on geomeans,
// ±0.16 on converged ratios — one hill-climb step) to survive small,
// intentional timing-model adjustments while still catching real
// performance regressions.  If a deliberate change moves a number outside
// its window, re-pin it in this file and say so in the commit message.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sndp.h"

namespace sndp {
namespace {

RunResult run_tiny(const std::string& wl, OffloadMode mode) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = mode;
  cfg.governor.epoch_cycles = 1000;  // scaled epoch (EXPERIMENTS.md)
  auto w = make_workload(wl, ProblemScale::kTiny);
  RunResult r = Simulator(cfg).run(*w);
  EXPECT_TRUE(r.completed) << wl;
  EXPECT_TRUE(r.verified) << wl;
  return r;
}

class GoldenStats : public ::testing::Test {
 protected:
  // One shared sweep for the whole fixture: 10 workloads x 4 modes.
  static void SetUpTestSuite() {
    for (const std::string& name : workload_names()) {
      base_[name] = run_tiny(name, OffloadMode::kOff);
      naive_[name] = run_tiny(name, OffloadMode::kAlways);
      dyn_[name] = run_tiny(name, OffloadMode::kDynamic);
      cache_[name] = run_tiny(name, OffloadMode::kDynamicCache);
    }
  }
  static double gmean_speedup(const std::map<std::string, RunResult>& runs) {
    std::vector<double> xs;
    for (const auto& [name, r] : runs) xs.push_back(r.speedup_vs(base_.at(name)));
    double log_sum = 0.0;
    for (double x : xs) log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
  }
  static std::map<std::string, RunResult> base_, naive_, dyn_, cache_;
};
std::map<std::string, RunResult> GoldenStats::base_, GoldenStats::naive_,
    GoldenStats::dyn_, GoldenStats::cache_;

TEST_F(GoldenStats, Fig07NaiveNdpDegradesGeomean) {
  // Measured 0.675: naive NDP costs ~1/3 of performance overall.
  EXPECT_NEAR(gmean_speedup(naive_), 0.675, 0.02);
  // The paper's worst case is STN; it must stay the worst by a margin.
  EXPECT_NEAR(naive_.at("STN").speedup_vs(base_.at("STN")), 0.325, 0.02);
  for (const auto& [name, r] : naive_) {
    if (name == "FWT") continue;  // the one workload naive offload helps
    EXPECT_LT(r.speedup_vs(base_.at(name)), 1.0) << name;
  }
}

TEST_F(GoldenStats, Fig09DynamicGovernorRecoversTheLoss) {
  const double dyn = gmean_speedup(dyn_);
  const double cache = gmean_speedup(cache_);
  EXPECT_NEAR(dyn, 1.005, 0.02);
  EXPECT_NEAR(cache, 1.016, 0.02);
  // Ordering invariants of Fig. 9: dynamic beats naive everywhere on the
  // geomean, and cache-awareness never hurts.
  EXPECT_GT(dyn, gmean_speedup(naive_));
  EXPECT_GE(cache, dyn - 1e-9);
}

TEST_F(GoldenStats, Fig09ConvergedOffloadRatios) {
  // The hill climb settles near the floor for cache-friendly workloads and
  // meaningfully higher for BFS (0.25).  BPROP re-pinned 0.40 -> 0.15 when
  // empty epochs stopped feeding ipc=0 into the climb (idle epochs used to
  // read as regressions and bounce the ratio upward); near-floor matches
  // the paper's shape for a cache-friendly workload.
  const std::map<std::string, double> expected = {
      {"BPROP", 0.15}, {"BFS", 0.25}, {"BICG", 0.10}, {"FWT", 0.10},
      {"KMN", 0.10},   {"MiniFE", 0.10}, {"SP", 0.10}, {"STN", 0.10},
      {"STCL", 0.10},  {"VADD", 0.10},
  };
  for (const auto& [name, want] : expected) {
    EXPECT_NEAR(cache_.at(name).stats.get("governor.final_ratio"), want, 0.16) << name;
  }
}

}  // namespace
}  // namespace sndp
