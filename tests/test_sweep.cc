// Tests for the JSON writer and the parallel sweep runner: serial and
// parallel executions of the same sweep must be indistinguishable (modulo
// wall-clock metadata), per-point failures must be contained, and the JSON
// export must be deterministic and structurally sound.
#include <gtest/gtest.h>

#include <cstdio>

#include "sndp.h"

namespace sndp {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(json_escape(std::string("\x01\x1f")), "\\u0001\\u001f");
}

TEST(Json, NumbersAreDeterministicAndIntegerFriendly) {
  EXPECT_EQ(JsonWriter::number(0.0), "0");
  EXPECT_EQ(JsonWriter::number(123456789.0), "123456789");
  EXPECT_EQ(JsonWriter::number(-42.0), "-42");
  EXPECT_EQ(JsonWriter::number(0.5), "0.5");
  EXPECT_EQ(JsonWriter::number(1.0 / 0.0), "null");
  EXPECT_EQ(JsonWriter::number(0.0 / 0.0), "null");
  // Round-trippable precision for non-integral values.
  EXPECT_EQ(JsonWriter::number(0.1), "0.10000000000000001");
}

TEST(Json, NumberBoundaryCases) {
  // Negative zero normalizes to plain "0" (two runs whose only difference
  // is a -0.0 vs 0.0 counter must still diff clean).
  EXPECT_EQ(JsonWriter::number(-0.0), "0");
  // 2^53 is the largest double range where integers are exact; the integer
  // fast path covers everything strictly below it and %.17g takes over at
  // the boundary — both sides must still print digits-only.
  EXPECT_EQ(JsonWriter::number(9007199254740991.0), "9007199254740991");  // 2^53-1
  EXPECT_EQ(JsonWriter::number(9007199254740992.0), "9007199254740992");  // 2^53
  EXPECT_EQ(JsonWriter::number(-9007199254740991.0), "-9007199254740991");
  EXPECT_EQ(JsonWriter::number(-1.0 / 0.0), "null");
  // Integral doubles past 2^53 take the %.17g path but still print
  // digits-only (exponent 16 < the 17-digit precision keeps %g fixed).
  EXPECT_EQ(JsonWriter::number(1.5e16), "15000000000000000");
}

TEST(Json, WriterBuildsNestedDocuments) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("x\ny");
  w.key("count").value(std::uint64_t{3});
  w.key("ok").value(true);
  w.key("list").begin_array().value(1).value(2.5).null().end_array();
  w.key("inner").begin_object().key("d").value(0.25).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"x\\ny\",\"count\":3,\"ok\":true,"
            "\"list\":[1,2.5,null],\"inner\":{\"d\":0.25}}");
}

TEST(Json, WriterRejectsMalformedSequences) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1.0), std::logic_error);   // value without key
  EXPECT_THROW(w.end_array(), std::logic_error);  // wrong closer
  EXPECT_THROW(w.str(), std::logic_error);        // unterminated scope
}

// ---------------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------------

SweepPoint test_point(const std::string& workload, OffloadMode mode) {
  SweepPoint p;
  p.id = workload + "/" + std::to_string(static_cast<int>(mode));
  p.workload = workload;
  p.scale = ProblemScale::kTiny;
  p.cfg = SystemConfig::small_test();
  p.cfg.governor.mode = mode;
  p.cfg.governor.epoch_cycles = 500;
  return p;
}

std::vector<SweepOutcome> run_sweep(unsigned jobs) {
  SweepRunner runner({.jobs = jobs});
  for (const char* wl : {"VADD", "BFS", "STN"}) {
    runner.add(test_point(wl, OffloadMode::kOff));
    runner.add(test_point(wl, OffloadMode::kAlways));
    runner.add(test_point(wl, OffloadMode::kDynamicCache));
  }
  return runner.run();
}

TEST(Sweep, ParallelMatchesSerialExactly) {
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].point.id);
    ASSERT_TRUE(serial[i].ran);
    ASSERT_TRUE(parallel[i].ran);
    EXPECT_EQ(serial[i].point.id, parallel[i].point.id);
    const RunResult& a = serial[i].result;
    const RunResult& b = parallel[i].result;
    EXPECT_EQ(a.sm_cycles, b.sm_cycles);
    EXPECT_EQ(a.runtime_ps, b.runtime_ps);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.gpu_link_bytes, b.gpu_link_bytes);
    EXPECT_EQ(a.cube_link_bytes, b.cube_link_bytes);
    // The full counter map — every stat, not just headline metrics.
    EXPECT_EQ(a.stats.values(), b.stats.values());
  }
}

TEST(Sweep, JsonExportIsIdenticalModuloTiming) {
  // Byte-identical documents once the (explicitly segregated) wall-clock
  // metadata is neutralized.
  auto neutralize = [](std::vector<SweepOutcome> outcomes) {
    for (auto& o : outcomes) {
      o.wall_seconds = 0.0;
      o.timed_out = false;
    }
    return sweep_to_json(outcomes, 0);
  };
  EXPECT_EQ(neutralize(run_sweep(1)), neutralize(run_sweep(4)));
}

TEST(Sweep, OutcomesKeepSubmissionOrder) {
  SweepRunner runner({.jobs = 3});
  const auto i0 = runner.add(test_point("VADD", OffloadMode::kOff));
  const auto i1 = runner.add(test_point("BFS", OffloadMode::kOff));
  const auto i2 = runner.add(test_point("VADD", OffloadMode::kAlways));
  runner.run();
  EXPECT_EQ(runner.outcome(i0).point.workload, "VADD");
  EXPECT_EQ(runner.outcome(i1).point.workload, "BFS");
  EXPECT_EQ(runner.outcome(i2).point.id, "VADD/1");
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(i2, 2u);
}

TEST(Sweep, BadPointIsContainedAndReported) {
  SweepRunner runner({.jobs = 2});
  SweepPoint bad = test_point("VADD", OffloadMode::kOff);
  bad.id = "bad";
  bad.cfg.num_hmcs = 0;  // fails SystemConfig::validate()
  const auto good_idx = runner.add(test_point("VADD", OffloadMode::kOff));
  const auto bad_idx = runner.add(bad);
  runner.run();
  EXPECT_TRUE(runner.outcome(good_idx).ran);
  EXPECT_NO_THROW(runner.result(good_idx));
  EXPECT_FALSE(runner.outcome(bad_idx).ran);
  EXPECT_NE(runner.outcome(bad_idx).error.find("HMC count"), std::string::npos);
  EXPECT_THROW(runner.result(bad_idx), std::runtime_error);
}

TEST(Sweep, WallClockTimeoutAbortsPoint) {
  SweepRunner runner({.jobs = 1, .point_timeout_s = 1e-9});
  SweepPoint p = test_point("KMN", OffloadMode::kOff);
  p.scale = ProblemScale::kSmall;  // long enough to hit the first poll
  const auto idx = runner.add(p);
  runner.run();
  const SweepOutcome& o = runner.outcome(idx);
  ASSERT_TRUE(o.ran);
  EXPECT_TRUE(o.timed_out);
  EXPECT_TRUE(o.result.aborted);
  EXPECT_FALSE(o.result.completed);
}

TEST(Sweep, TimeoutIsContainedToTheOffendingPoint) {
  // One starving point must not poison its siblings: they complete,
  // verify, and keep their submission slots, while the timed-out point is
  // flagged in both the outcome and the exported stats.
  SweepRunner runner({.jobs = 2, .point_timeout_s = 1e-9});
  SweepPoint slow = test_point("KMN", OffloadMode::kOff);
  slow.id = "slow";
  slow.scale = ProblemScale::kSmall;
  const auto slow_idx = runner.add(slow);
  const auto fast_idx = runner.add(test_point("VADD", OffloadMode::kOff));
  runner.run();

  const SweepOutcome& timed = runner.outcome(slow_idx);
  ASSERT_TRUE(timed.ran);
  EXPECT_TRUE(timed.timed_out);
  EXPECT_TRUE(timed.result.aborted);
  EXPECT_FALSE(timed.result.completed);
  EXPECT_FALSE(timed.result.verified);
  EXPECT_DOUBLE_EQ(timed.result.stats.get("sim.aborted"), 1.0);
  EXPECT_DOUBLE_EQ(timed.result.stats.get("sim.completed"), 0.0);
  // An abort is not a valve hit: the overshoot diagnostic stays zero.
  EXPECT_DOUBLE_EQ(timed.result.stats.get("sim.valve_overshoot_ps"), 0.0);

  // KMN at kSmall needs far longer than one abort-poll burst; the partial
  // run must have stopped early rather than simulated to the end.
  EXPECT_LT(timed.result.runtime_ps, SystemConfig::small_test().max_time_ps);

  const SweepOutcome& ok = runner.outcome(fast_idx);
  ASSERT_TRUE(ok.ran);
  EXPECT_FALSE(ok.timed_out);
  EXPECT_TRUE(ok.result.completed);
  EXPECT_TRUE(ok.result.verified);

  const std::string json = sweep_to_json(runner.outcomes(), 2);
  EXPECT_NE(json.find("\"timed_out\":true"), std::string::npos);
  EXPECT_NE(json.find("\"timed_out\":false"), std::string::npos);
}

TEST(Sweep, AbortPollIsPolledUntilItFires) {
  // The poll is sampled periodically during the run (every burst), not just
  // once at the start: a poll that turns true after N samples still aborts,
  // and a finished run stops consulting it.
  SystemConfig cfg = SystemConfig::small_test();
  unsigned calls = 0;
  Simulator sim(cfg);
  sim.set_abort_poll([&calls] { return ++calls >= 3; });
  auto wl = make_workload("KMN", ProblemScale::kSmall);
  const RunResult r = sim.run(*wl);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(calls, 3u);

  // A quick run that completes before the poll budget is exhausted reports
  // a clean (non-aborted) completion.
  unsigned calls2 = 0;
  Simulator sim2(cfg);
  sim2.set_abort_poll([&calls2] { ++calls2; return false; });
  auto wl2 = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r2 = sim2.run(*wl2);
  EXPECT_TRUE(r2.completed);
  EXPECT_FALSE(r2.aborted);
  EXPECT_DOUBLE_EQ(r2.stats.get("sim.aborted"), 0.0);
}

TEST(Sweep, DerivedSeedsAreStableAndPointSpecific) {
  const auto a = SweepRunner::derived_seed(0x5EED, "fig09/VADD/0.4");
  EXPECT_EQ(a, SweepRunner::derived_seed(0x5EED, "fig09/VADD/0.4"));
  EXPECT_NE(a, SweepRunner::derived_seed(0x5EED, "fig09/VADD/0.6"));
  EXPECT_NE(a, SweepRunner::derived_seed(0x5EEE, "fig09/VADD/0.4"));
}

TEST(Sweep, JsonExportIsStructurallySound) {
  SweepRunner runner({.jobs = 2});
  runner.add(test_point("VADD", OffloadMode::kOff));
  runner.add(test_point("VADD", OffloadMode::kDynamicCache));
  runner.run();
  const std::string json = sweep_to_json(runner.outcomes(), 2);
  EXPECT_NE(json.find("\"schema\":\"sndp-sweep-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"VADD/0\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.sm_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  const std::string path = ::testing::TempDir() + "/sndp_sweep_test.json";
  ASSERT_TRUE(write_sweep_json(path, runner.outcomes(), 2));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<std::size_t>(std::ftell(f)), json.size() + 1);  // + newline
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sndp
