// Direct SM unit tests: drive one SM with a hand-built kernel image and
// observe its packet stream, stall accounting, and CTA management.
#include <gtest/gtest.h>

#include "sndp.h"

#include "gpu/sm.h"
#include "ndp/nsu.h"

namespace sndp {
namespace {

struct SmHarness {
  explicit SmHarness(Program prog, unsigned cta_threads = 64, unsigned num_ctas = 1,
                     OffloadMode mode = OffloadMode::kOff)
      : cfg(make_cfg(mode)),
        amap(cfg),
        net(cfg),
        governor(cfg.governor, 8, 128, 1),
        bufmgr(cfg.ndp_buffers, cfg.num_hmcs),
        ro_cache(cfg.num_hmcs, cfg.nsu, 128),
        wta(cfg.num_hmcs) {
    image = analyze_and_generate(prog);
    ctx.cfg = &cfg;
    ctx.amap = &amap;
    ctx.gmem = &gmem;
    ctx.net = &port;
    ctx.governor = &governor;
    ctx.bufmgr = &bufmgr;
    ctx.energy = &energy;
    ctx.ro_cache = &ro_cache;
    ctx.wta_tracker = &wta;
    ctx.image = &image;
    ctx.launch = LaunchParams{cta_threads, num_ctas};
    sm = std::make_unique<Sm>(0, ctx);
  }

  static SystemConfig make_cfg(OffloadMode mode) {
    SystemConfig c = SystemConfig::small_test();
    c.governor.mode = mode;
    return c;
  }

  // Tick the SM, draining its egress into `sent` each cycle.
  void tick(unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      const TimePs now = tick_time_ps(cycle, cfg.clocks.sm_khz);
      sm->tick(cycle, now);
      while (auto p = sm->out().pop_ready(kTimeNever - 1)) sent.push_back(std::move(*p));
      ++cycle;
    }
  }

  unsigned count(PacketType t) const {
    unsigned n = 0;
    for (const Packet& p : sent) n += p.type == t ? 1 : 0;
    return n;
  }

  SystemConfig cfg;
  AddressMap amap;
  GlobalMemory gmem;
  Network net;
  NetworkPort port{net};
  OffloadGovernor governor;
  NdpBufferManager bufmgr;
  RoCacheMirror ro_cache;
  WtaInflightTracker wta;
  EnergyCounters energy;
  KernelImage image;
  SystemContext ctx;
  std::unique_ptr<Sm> sm;
  std::vector<Packet> sent;
  Cycle cycle = 0;
};

Program alu_only() {
  ProgramBuilder b;
  b.movi(4, 7).alui(Opcode::kIAdd, 5, 4, 1).alu(Opcode::kIMul, 6, 5, 5).exit();
  return b.build();
}

TEST(SmUnit, CtaLifecycle) {
  SmHarness h(alu_only(), 64, 2);
  EXPECT_TRUE(h.sm->can_accept_cta());
  h.sm->assign_cta(0);
  EXPECT_TRUE(h.sm->busy());
  h.tick(200);
  EXPECT_FALSE(h.sm->busy());  // CTA ran to EXIT and freed its slot
  h.sm->assign_cta(1);
  EXPECT_TRUE(h.sm->busy());
  h.tick(200);
  EXPECT_FALSE(h.sm->busy());
  EXPECT_GT(h.sm->issued_instrs, 0u);
}

TEST(SmUnit, ThreadRegistersInitialized) {
  // Kernel: store R0 (gtid) to memory, one thread per slot.
  ProgramBuilder b;
  b.movi(16, 0x40000).madi(8, 0, 8, 16).st(8, 0).exit();
  SmHarness h(b.build(), 64, 1);
  h.sm->assign_cta(0);
  h.tick(300);
  for (unsigned tid = 0; tid < 64; ++tid) {
    EXPECT_EQ(h.gmem.read_u64(0x40000 + 8 * tid), tid) << tid;
  }
}

TEST(SmUnit, StoresEmitWriteThroughPackets) {
  ProgramBuilder b;
  b.movi(16, 0x40000).madi(8, 0, 8, 16).st(8, 0).exit();
  SmHarness h(b.build(), 64, 1);
  h.sm->assign_cta(0);
  h.tick(300);
  // 2 warps x 2 lines (32 lanes x 8 B) = 4 write-through packets.
  EXPECT_EQ(h.count(PacketType::kMemWrite), 4u);
}

TEST(SmUnit, LoadsMissAndBlockUntilDelivered) {
  ProgramBuilder b;
  b.movi(16, 0x50000)
      .madi(8, 0, 8, 16)
      .ld(9, 8)
      .alui(Opcode::kIAdd, 10, 9, 1)  // depends on the load
      .exit();
  SmHarness h(b.build(), 32, 1);
  h.gmem.write_u64(0x50000, 41);
  h.sm->assign_cta(0);
  h.tick(100);
  // One warp, 32 lanes x 8 B = 2 lines -> 2 read requests; warp stuck.
  EXPECT_EQ(h.count(PacketType::kMemRead), 2u);
  EXPECT_TRUE(h.sm->busy());
  EXPECT_GT(h.sm->stall_dependency, 0u);

  // Deliver both lines; the warp finishes.
  const TimePs now = tick_time_ps(h.cycle, h.cfg.clocks.sm_khz);
  h.sm->deliver_line(0x50000, now);
  h.sm->deliver_line(0x50080, now);
  h.tick(100);
  EXPECT_FALSE(h.sm->busy());
}

TEST(SmUnit, BarrierSynchronizesWarpsOfCta) {
  // Warp-dependent spin would deadlock if BAR released early; here we just
  // check all warps stop at the barrier until the last arrives.
  ProgramBuilder b;
  b.movi(4, 1).bar().movi(5, 2).exit();
  SmHarness h(b.build(), 128, 1);  // 4 warps
  h.sm->assign_cta(0);
  h.tick(300);
  EXPECT_FALSE(h.sm->busy());
}

TEST(SmUnit, StallTaxonomySumsWithIssue) {
  SmHarness h(alu_only(), 64, 1);
  h.sm->assign_cta(0);
  h.tick(100);
  const std::uint64_t accounted = h.sm->issued_instrs + h.sm->stall_dependency +
                                  h.sm->stall_exec_busy + h.sm->stall_warp_idle;
  // Every active cycle is either an issue or a classified stall.
  EXPECT_EQ(accounted, h.sm->active_cycles);
}

TEST(SmUnit, OffloadHoldsPacketsUntilCreditsGranted) {
  // VADD-style block under always-offload.
  ProgramBuilder b;
  b.movi(16, 0x10000)
      .movi(17, 0x20000)
      .madi(8, 0, 8, 16)
      .madi(9, 0, 8, 17)
      .ld(11, 8)
      .alu(Opcode::kFAdd, 12, 11, 11)
      .st(9, 12)
      .exit();
  SmHarness h(b.build(), 32, 1, OffloadMode::kAlways);
  h.sm->assign_cta(0);
  h.tick(200);
  // CMD + RDF/WTA packets left the SM once the target was known and the
  // buffer manager granted credits.
  EXPECT_EQ(h.count(PacketType::kOfldCmd), 1u);
  EXPECT_GT(h.count(PacketType::kRdf) + h.count(PacketType::kRdfResp), 0u);
  EXPECT_GT(h.count(PacketType::kWta), 0u);
  // The warp is parked at OFLD.END awaiting the ACK.
  EXPECT_TRUE(h.sm->busy());
  EXPECT_GT(h.sm->stall_warp_idle, 0u);

  // Deliver the ACK: live-out register set is empty for this block.
  Packet ack;
  ack.type = PacketType::kOfldAck;
  for (const Packet& p : h.sent) {
    if (p.type == PacketType::kOfldCmd) ack.oid = p.oid;
  }
  h.sm->deliver_ofld_ack(std::move(ack), tick_time_ps(h.cycle, h.cfg.clocks.sm_khz));
  h.tick(50);
  EXPECT_FALSE(h.sm->busy());
}

TEST(SmUnit, OffloadDeniedCreditsKeepsPacketsPending) {
  ProgramBuilder b;
  b.movi(16, 0x10000)
      .madi(8, 0, 8, 16)
      .ld(11, 8)
      .alu(Opcode::kFAdd, 12, 11, 11)
      .st(8, 12)
      .exit();
  SmHarness h(b.build(), 32, 1, OffloadMode::kAlways);
  // Exhaust every HMC's command credits first.
  for (unsigned hmc = 0; hmc < h.cfg.num_hmcs; ++hmc) {
    while (h.bufmgr.try_reserve(hmc, 0, 0)) {
    }
  }
  h.sm->assign_cta(0);
  h.tick(100);
  EXPECT_EQ(h.count(PacketType::kOfldCmd), 0u);  // still pending
  EXPECT_TRUE(h.sm->busy());
  // Return credits: the pending packets flush.
  for (unsigned hmc = 0; hmc < h.cfg.num_hmcs; ++hmc) {
    h.bufmgr.release(hmc, h.cfg.ndp_buffers.nsu_cmd_entries, 0, 0);
  }
  h.tick(50);
  EXPECT_EQ(h.count(PacketType::kOfldCmd), 1u);
}

TEST(SmUnit, DivergentBranchThrows) {
  // A guarded branch whose lanes disagree must be rejected (kernels use
  // predication for divergence).
  ProgramBuilder b;
  b.alui(Opcode::kIRem, 4, 0, 2)      // lane parity
      .isetpi(0, CmpOp::kEq, 4, 0)
      .label("skip")
      .pred(0)
      .bra("skip")                     // taken by even lanes only
      .exit();
  SmHarness h(b.build(), 32, 1);
  h.sm->assign_cta(0);
  EXPECT_THROW(h.tick(100), std::logic_error);
}

TEST(SmUnit, InvalidateDropsL1Line) {
  // The second load's address depends on the first load's data, so it can
  // only issue after the line is filled — and must then hit in the L1.
  ProgramBuilder b;
  b.movi(16, 0x60000)
      .ld(9, 16)
      .alui(Opcode::kAnd, 5, 9, 0)      // 0, but data-dependent on the load
      .alu(Opcode::kIAdd, 5, 5, 16)     // == base again
      .ld(10, 5)
      .exit();
  SmHarness h(b.build(), 32, 1);
  h.sm->assign_cta(0);
  h.tick(50);
  EXPECT_EQ(h.count(PacketType::kMemRead), 1u);  // broadcast: one line
  h.sm->deliver_line(0x60000, tick_time_ps(h.cycle, h.cfg.clocks.sm_khz));
  h.tick(50);
  EXPECT_FALSE(h.sm->busy());
  EXPECT_EQ(h.sm->l1().hits, 1u);  // second load hit
  h.sm->invalidate_line(0x60000);
  EXPECT_EQ(h.sm->l1().invalidations, 1u);
}

}  // namespace
}  // namespace sndp
