// Tests for the NSU-side NDP buffers (read-data / write-address / command).
#include <gtest/gtest.h>

#include "ndp/ndp_buffers.h"

namespace sndp {
namespace {

Packet rdf_resp(OffloadPacketId oid, LaneMask mask, LaneMask expected, RegValue base_val) {
  Packet p;
  p.type = PacketType::kRdfResp;
  p.oid = oid;
  p.mask = mask;
  p.expected_mask = expected;
  p.lane_data.assign(kWarpWidth, 0);
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (mask & (LaneMask{1} << lane)) p.lane_data[lane] = base_val + lane;
  }
  return p;
}

Packet wta(OffloadPacketId oid, LaneMask mask, LaneMask expected, Addr base) {
  Packet p;
  p.type = PacketType::kWta;
  p.oid = oid;
  p.mask = mask;
  p.expected_mask = expected;
  p.mem_width = 8;
  p.lane_addrs.assign(kWarpWidth, 0);
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (mask & (LaneMask{1} << lane)) p.lane_addrs[lane] = base + 8 * lane;
  }
  return p;
}

TEST(ReadDataBuffer, SinglePacketCompletes) {
  ReadDataBuffer buf(4);
  const OffloadPacketId oid{1, 2, 0, 0, 42};
  buf.deposit(rdf_resp(oid, kFullMask, kFullMask, 100));
  EXPECT_TRUE(buf.complete(NdpBufferKey::of(oid)));
  const auto entry = buf.take(NdpBufferKey::of(oid));
  EXPECT_EQ(entry.data[0], 100u);
  EXPECT_EQ(entry.data[31], 131u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ReadDataBuffer, DivergentResponsesMergeByMask) {
  ReadDataBuffer buf(4);
  const OffloadPacketId oid{0, 0, 3, 1, 7};
  const LaneMask lo = 0x0000FFFF, hi = 0xFFFF0000;
  buf.deposit(rdf_resp(oid, lo, kFullMask, 0));
  EXPECT_FALSE(buf.complete(NdpBufferKey::of(oid)));
  buf.deposit(rdf_resp(oid, hi, kFullMask, 1000));
  EXPECT_TRUE(buf.complete(NdpBufferKey::of(oid)));
  const auto entry = buf.take(NdpBufferKey::of(oid));
  EXPECT_EQ(entry.data[0], 0u);
  EXPECT_EQ(entry.data[31], 1031u);
}

TEST(ReadDataBuffer, SeqNumbersKeepLoadsSeparate) {
  ReadDataBuffer buf(4);
  OffloadPacketId a{0, 0, 0, 0, 9};
  OffloadPacketId b = a;
  b.seq = 1;
  buf.deposit(rdf_resp(a, kFullMask, kFullMask, 10));
  buf.deposit(rdf_resp(b, kFullMask, kFullMask, 20));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.take(NdpBufferKey::of(b)).data[0], 20u);
  EXPECT_EQ(buf.take(NdpBufferKey::of(a)).data[0], 10u);
}

TEST(ReadDataBuffer, DuplicateLanesRejected) {
  ReadDataBuffer buf(4);
  const OffloadPacketId oid{0, 0, 0, 0, 1};
  buf.deposit(rdf_resp(oid, 0b1, kFullMask, 0));
  EXPECT_THROW(buf.deposit(rdf_resp(oid, 0b1, kFullMask, 0)), std::logic_error);
}

TEST(ReadDataBuffer, CapacityEnforced) {
  ReadDataBuffer buf(2);
  for (std::uint64_t i = 0; i < 2; ++i) {
    buf.deposit(rdf_resp(OffloadPacketId{0, 0, 0, 0, i}, 1, 1, 0));
  }
  EXPECT_THROW(buf.deposit(rdf_resp(OffloadPacketId{0, 0, 0, 0, 99}, 1, 1, 0)),
               std::logic_error);
}

TEST(ReadDataBuffer, TakeAbsentThrows) {
  ReadDataBuffer buf(2);
  EXPECT_THROW(buf.take(NdpBufferKey{0, 0, 0, 0}), std::logic_error);
}

TEST(WriteAddrBuffer, MergesAndCarriesAttributes) {
  WriteAddrBuffer buf(4);
  const OffloadPacketId oid{3, 4, 1, 0, 5};
  Packet p1 = wta(oid, 0x0000FFFF, kFullMask, 0x1000);
  p1.misaligned = true;
  buf.deposit(p1);
  buf.deposit(wta(oid, 0xFFFF0000, kFullMask, 0x1000));
  ASSERT_TRUE(buf.complete(NdpBufferKey::of(oid)));
  const auto entry = buf.take(NdpBufferKey::of(oid));
  EXPECT_EQ(entry.addrs[5], 0x1000u + 40);
  EXPECT_EQ(entry.width, 8u);
  EXPECT_TRUE(entry.misaligned);  // sticky across merges
}

TEST(WriteAddrBuffer, IncompleteUntilAllLanes) {
  WriteAddrBuffer buf(4);
  const OffloadPacketId oid{0, 0, 0, 0, 2};
  buf.deposit(wta(oid, 0b0011, 0b1111, 0x2000));
  EXPECT_FALSE(buf.complete(NdpBufferKey::of(oid)));
  buf.deposit(wta(oid, 0b1100, 0b1111, 0x2000));
  EXPECT_TRUE(buf.complete(NdpBufferKey::of(oid)));
}

TEST(CmdBuffer, FifoOrderAndCapacity) {
  CmdBuffer buf(2);
  Packet a, b;
  a.oid.instance = 1;
  b.oid.instance = 2;
  buf.push(a);
  buf.push(b);
  EXPECT_THROW(buf.push(a), std::logic_error);
  EXPECT_EQ(buf.pop().oid.instance, 1u);
  EXPECT_EQ(buf.pop().oid.instance, 2u);
  EXPECT_TRUE(buf.empty());
}

TEST(NdpKeys, HashDistinguishesFields) {
  NdpBufferKeyHash h;
  const NdpBufferKey a{1, 2, 3, 4};
  NdpBufferKey b = a;
  EXPECT_EQ(h(a), h(b));
  b.seq = 5;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sndp
