// Tests for the credit-based NDP buffer manager (§4.3).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gpu/buffer_manager.h"

namespace sndp {
namespace {

NdpBufferConfig cfg() {
  NdpBufferConfig c;
  c.nsu_cmd_entries = 2;
  c.nsu_read_data_entries = 8;
  c.nsu_write_addr_entries = 4;
  return c;
}

TEST(BufferManager, GrantConsumesCredits) {
  NdpBufferManager mgr(cfg(), 2);
  EXPECT_TRUE(mgr.try_reserve(0, 3, 2));
  EXPECT_EQ(mgr.free_cmd(0), 1u);
  EXPECT_EQ(mgr.free_read_data(0), 5u);
  EXPECT_EQ(mgr.free_write_addr(0), 2u);
  // The other HMC's credits are untouched.
  EXPECT_EQ(mgr.free_cmd(1), 2u);
}

TEST(BufferManager, DenialLeavesCreditsIntact) {
  NdpBufferManager mgr(cfg(), 1);
  EXPECT_FALSE(mgr.try_reserve(0, 9, 0));  // too many read-data entries
  EXPECT_EQ(mgr.free_cmd(0), 2u);
  EXPECT_EQ(mgr.free_read_data(0), 8u);
  EXPECT_TRUE(mgr.all_idle());
}

TEST(BufferManager, CmdExhaustionBlocks) {
  NdpBufferManager mgr(cfg(), 1);
  EXPECT_TRUE(mgr.try_reserve(0, 1, 1));
  EXPECT_TRUE(mgr.try_reserve(0, 1, 1));
  EXPECT_FALSE(mgr.try_reserve(0, 1, 1));  // command entries gone
  mgr.release(0, 1, 0, 0);
  EXPECT_TRUE(mgr.try_reserve(0, 1, 0));
}

TEST(BufferManager, ZeroDataBlocksStillNeedCmd) {
  NdpBufferManager mgr(cfg(), 1);
  EXPECT_TRUE(mgr.try_reserve(0, 0, 0));
  EXPECT_EQ(mgr.free_cmd(0), 1u);
}

TEST(BufferManager, ReleaseRestoresIdle) {
  NdpBufferManager mgr(cfg(), 2);
  EXPECT_TRUE(mgr.try_reserve(1, 4, 3));
  EXPECT_FALSE(mgr.all_idle());
  mgr.release(1, 0, 4, 3);  // data credits (piggybacked on the ACK)
  mgr.release(1, 1, 0, 0);  // command credit (at spawn)
  EXPECT_TRUE(mgr.all_idle());
}

TEST(BufferManager, OverReleaseThrows) {
  NdpBufferManager mgr(cfg(), 1);
  EXPECT_THROW(mgr.release(0, 1, 0, 0), std::logic_error);
  EXPECT_TRUE(mgr.try_reserve(0, 2, 0));
  EXPECT_THROW(mgr.release(0, 0, 3, 0), std::logic_error);
}

TEST(BufferManager, StatsCountGrantsAndDenials) {
  NdpBufferManager mgr(cfg(), 1);
  mgr.try_reserve(0, 0, 0);
  mgr.try_reserve(0, 99, 0);
  StatSet stats;
  mgr.export_stats(stats);
  EXPECT_DOUBLE_EQ(stats.get("bufmgr.grants"), 1.0);
  EXPECT_DOUBLE_EQ(stats.get("bufmgr.denials"), 1.0);
  EXPECT_DOUBLE_EQ(stats.get("bufmgr.denials_rd"), 1.0);
}

// Property: a random sequence of reserve/release pairs never exceeds
// capacity and always returns to idle.
TEST(BufferManager, RandomizedConservation) {
  NdpBufferManager mgr(cfg(), 4);
  Rng rng(31);
  struct Grant {
    unsigned hmc, rd, wta;
  };
  std::vector<Grant> outstanding;
  for (int step = 0; step < 5000; ++step) {
    if (rng.bernoulli(0.6) || outstanding.empty()) {
      const unsigned hmc = static_cast<unsigned>(rng.next_below(4));
      const unsigned rd = static_cast<unsigned>(rng.next_below(5));
      const unsigned wta = static_cast<unsigned>(rng.next_below(3));
      if (mgr.try_reserve(hmc, rd, wta)) outstanding.push_back({hmc, rd, wta});
    } else {
      const std::size_t pick = rng.next_below(outstanding.size());
      const Grant g = outstanding[pick];
      outstanding.erase(outstanding.begin() + static_cast<std::ptrdiff_t>(pick));
      mgr.release(g.hmc, 1, g.rd, g.wta);
    }
  }
  for (const Grant& g : outstanding) mgr.release(g.hmc, 1, g.rd, g.wta);
  EXPECT_TRUE(mgr.all_idle());
}

}  // namespace
}  // namespace sndp
