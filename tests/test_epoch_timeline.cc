// Tests for the per-epoch metrics timeline: deterministic boundary math,
// delta/rate assembly, capacity capping, fast-forward invariance of the
// recorded samples, and the timeline's three export surfaces (RunResult,
// sweep JSON, Chrome-trace counter events).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sndp.h"

namespace sndp {
namespace {

SystemConfig timeline_cfg() {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = OffloadMode::kDynamicCache;
  cfg.governor.epoch_cycles = 500;
  return cfg;
}

TEST(EpochTimeline, BoundaryMatchesClockMath) {
  SystemConfig cfg = timeline_cfg();
  EpochTimeline tl(cfg, cfg.num_hmcs);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(tl.boundary_ps(k),
              tick_time_ps((k + 1) * cfg.governor.epoch_cycles, cfg.clocks.sm_khz));
  }
}

TEST(EpochTimeline, AssemblesPerEpochDeltas) {
  SystemConfig cfg = timeline_cfg();
  EpochTimeline tl(cfg, cfg.num_hmcs);
  // Epoch 0: 300 of 400 L1 accesses hit; epoch 1: 200 of 400.
  tl.on_epoch(0, 2.0, 1000, 0.5, 0.15, +1, /*issued=*/4000, 300, 100);
  tl.on_epoch(1, 1.5, 750, 0.65, 0.15, +1, /*issued=*/6000, 500, 300);
  // L2 saw 80 of 100 accesses hit in epoch 0, then nothing.
  tl.finalize(/*l2_hits=*/80, /*l2_misses=*/20, /*up=*/0, /*down=*/0,
              /*cube=*/0, std::vector<std::uint64_t>(cfg.num_hmcs, 0));

  ASSERT_EQ(tl.samples().size(), 2u);
  const EpochSample& a = tl.samples()[0];
  EXPECT_EQ(a.epoch, 0u);
  EXPECT_EQ(a.end_cycle, cfg.governor.epoch_cycles);
  EXPECT_EQ(a.end_ps, tl.boundary_ps(0));
  EXPECT_DOUBLE_EQ(a.ratio, 0.5);
  EXPECT_DOUBLE_EQ(a.epoch_ipc, 2.0);
  EXPECT_EQ(a.block_instrs, 1000u);
  EXPECT_DOUBLE_EQ(a.sm_ipc, 4000.0 / (500.0 * cfg.num_sms));
  EXPECT_DOUBLE_EQ(a.l1_hit_rate, 0.75);

  const EpochSample& b = tl.samples()[1];
  EXPECT_DOUBLE_EQ(b.sm_ipc, 2000.0 / (500.0 * cfg.num_sms));
  EXPECT_DOUBLE_EQ(b.l1_hit_rate, 0.5);  // (500-300)/((500-300)+(300-100))

  // The un-polled L2 series was flushed with the final totals: all activity
  // lands in epoch 0's delta, epoch 1 is empty (rate 0).
  EXPECT_DOUBLE_EQ(tl.samples()[0].l2_hit_rate, 0.8);
  EXPECT_DOUBLE_EQ(tl.samples()[1].l2_hit_rate, 0.0);
  EXPECT_EQ(tl.dropped(), 0u);
}

TEST(EpochTimeline, EmptyEpochHasZeroRates) {
  SystemConfig cfg = timeline_cfg();
  EpochTimeline tl(cfg, cfg.num_hmcs);
  tl.on_epoch(0, 0.0, 0, 0.1, 0.15, +1, 0, 0, 0);
  tl.finalize(0, 0, 0, 0, 0, std::vector<std::uint64_t>(cfg.num_hmcs, 0));
  ASSERT_EQ(tl.samples().size(), 1u);
  const EpochSample& s = tl.samples()[0];
  EXPECT_DOUBLE_EQ(s.sm_ipc, 0.0);
  EXPECT_DOUBLE_EQ(s.l1_hit_rate, 0.0);  // no accesses: defined as 0, not NaN
  EXPECT_DOUBLE_EQ(s.l2_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(s.nsu_occupancy, 0.0);
}

TEST(EpochTimeline, SimulatorRecordsDynamicRun) {
  SystemConfig cfg = timeline_cfg();
  auto wl = make_workload("BFS", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_TRUE(r.completed);
  ASSERT_FALSE(r.timeline.empty());
  EXPECT_DOUBLE_EQ(r.stats.get("timeline.epochs"),
                   static_cast<double>(r.timeline.size()));
  EXPECT_DOUBLE_EQ(static_cast<double>(r.timeline.size()),
                   r.stats.get("governor.epochs"));
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    const EpochSample& s = r.timeline[i];
    EXPECT_EQ(s.epoch, i);
    EXPECT_GE(s.ratio, 0.0);
    EXPECT_LE(s.ratio, 1.0);
    EXPECT_GE(s.l1_hit_rate, 0.0);
    EXPECT_LE(s.l1_hit_rate, 1.0);
    EXPECT_GE(s.l2_hit_rate, 0.0);
    EXPECT_LE(s.l2_hit_rate, 1.0);
    EXPECT_GE(s.gpu_up_util, 0.0);
    EXPECT_LE(s.gpu_up_util, 1.0 + 1e-9);
    EXPECT_GE(s.nsu_occupancy, 0.0);
    EXPECT_LE(s.nsu_occupancy, 1.0 + 1e-9);
    EXPECT_GT(s.valve_pressure, 0.0);
    EXPECT_LE(s.valve_pressure, 1.0);
    if (i > 0) {
      EXPECT_GT(s.end_ps, r.timeline[i - 1].end_ps);
    }
  }
  // The run did work, so some epoch must show SM throughput and traffic.
  double max_sm_ipc = 0.0, max_up = 0.0;
  for (const EpochSample& s : r.timeline) {
    max_sm_ipc = std::max(max_sm_ipc, s.sm_ipc);
    max_up = std::max(max_up, s.gpu_up_util);
  }
  EXPECT_GT(max_sm_ipc, 0.0);
  EXPECT_GT(max_up, 0.0);
}

TEST(EpochTimeline, FastForwardProducesIdenticalSamples) {
  // The FF-invariance contract, end to end: every field of every sample is
  // bit-identical between fast-forward and naive stepping.
  for (const char* name : {"VADD", "BFS", "STN"}) {
    SystemConfig cfg = timeline_cfg();
    cfg.fast_forward = true;
    auto wl_ff = make_workload(name, ProblemScale::kTiny);
    const RunResult ff = Simulator(cfg).run(*wl_ff);

    cfg.fast_forward = false;
    auto wl_nv = make_workload(name, ProblemScale::kTiny);
    const RunResult naive = Simulator(cfg).run(*wl_nv);

    ASSERT_EQ(ff.timeline.size(), naive.timeline.size()) << name;
    for (std::size_t i = 0; i < ff.timeline.size(); ++i) {
      EXPECT_EQ(ff.timeline[i], naive.timeline[i]) << name << " epoch " << i;
    }
  }
}

TEST(EpochTimeline, StaticModeStillRecordsTimeline) {
  SystemConfig cfg = timeline_cfg();
  cfg.governor.mode = OffloadMode::kStaticRatio;
  cfg.governor.static_ratio = 0.4;
  auto wl = make_workload("VADD", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_FALSE(r.timeline.empty());
  for (const EpochSample& s : r.timeline) EXPECT_DOUBLE_EQ(s.ratio, 0.4);
}

TEST(EpochTimeline, SweepJsonCarriesTimelineArray) {
  SweepRunner runner({.jobs = 1});
  SweepPoint p;
  p.id = "timeline/BFS";
  p.workload = "BFS";
  p.scale = ProblemScale::kTiny;
  p.cfg = timeline_cfg();
  runner.add(std::move(p));
  runner.run();

  const std::string path = ::testing::TempDir() + "/sndp_timeline_sweep.json";
  ASSERT_TRUE(write_sweep_json(path, runner.outcomes(), 1));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(path.c_str());

  EXPECT_NE(doc.find("\"timeline\":[{"), std::string::npos);
  EXPECT_NE(doc.find("\"epoch\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"nsu_occupancy\":"), std::string::npos);
  // Determinism rule: the timeline must come before the wall-clock-varying
  // "timing" object in each point.
  EXPECT_LT(doc.find("\"timeline\":"), doc.find("\"timing\":"));
}

TEST(EpochTimeline, TraceCarriesCounterEvents) {
  const std::string path = ::testing::TempDir() + "/sndp_timeline_trace.json";
  SystemConfig cfg = timeline_cfg();
  cfg.trace_path = path;
  auto wl = make_workload("BFS", ProblemScale::kTiny);
  const RunResult r = Simulator(cfg).run(*wl);
  ASSERT_FALSE(r.timeline.empty());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(path.c_str());

  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"offload_ratio\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"nsu_occupancy\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"Governor\""), std::string::npos);  // row name
  EXPECT_DOUBLE_EQ(r.stats.get("sim.trace_write_failed"), 0.0);
}

TEST(EpochTimeline, CapsSamplesAndCountsDrops) {
  SystemConfig cfg = timeline_cfg();
  EpochTimeline tl(cfg, cfg.num_hmcs);
  constexpr std::uint64_t kOver = 100'500;  // past the 100k cap
  for (std::uint64_t e = 0; e < kOver; ++e) {
    tl.on_epoch(e, 0.0, 0, 0.1, 0.15, +1, e, 0, 0);
  }
  tl.finalize(0, 0, 0, 0, 0, std::vector<std::uint64_t>(cfg.num_hmcs, 0));
  EXPECT_EQ(tl.samples().size(), 100'000u);
  EXPECT_EQ(tl.dropped(), kOver - 100'000);
  StatSet out;
  tl.export_stats(out);
  EXPECT_DOUBLE_EQ(out.get("timeline.dropped"), static_cast<double>(kOver - 100'000));
}

}  // namespace
}  // namespace sndp
