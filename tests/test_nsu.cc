// Direct NSU unit tests: drive one NSU with hand-built protocol packets and
// observe its outputs (write packets, acks, credits) without a full system.
#include <gtest/gtest.h>

#include "sndp.h"

#include "gpu/sm.h"
#include "ndp/nsu.h"

namespace sndp {
namespace {

// A VADD-style kernel whose single block is (LD, LD, FADD, ST).
Program block_program() {
  ProgramBuilder b;
  b.movi(16, 0x10000)
      .movi(17, 0x20000)
      .movi(18, 0x30000)
      .madi(8, 0, 8, 16)
      .madi(9, 0, 8, 17)
      .madi(10, 0, 8, 18)
      .ld(11, 8)
      .ld(12, 9)
      .alu(Opcode::kFAdd, 13, 11, 12)
      .st(10, 13)
      .exit();
  return b.build();
}

struct NsuHarness {
  NsuHarness() : cfg(SystemConfig::small_test()), amap(cfg), net(cfg),
                 governor(cfg.governor, 8, 128, 1), bufmgr(cfg.ndp_buffers, cfg.num_hmcs),
                 ro_cache(cfg.num_hmcs, cfg.nsu, 128), wta(cfg.num_hmcs) {
    image = analyze_and_generate(block_program());
    ctx.cfg = &cfg;
    ctx.amap = &amap;
    ctx.gmem = &gmem;
    ctx.net = &port;
    ctx.governor = &governor;
    ctx.bufmgr = &bufmgr;
    ctx.energy = &energy;
    ctx.ro_cache = &ro_cache;
    ctx.wta_tracker = &wta;
    ctx.image = &image;
    nsu = std::make_unique<Nsu>(
        0, ctx, [this](Packet&& p, TimePs) { to_network.push_back(std::move(p)); },
        [this](Packet&& p, TimePs) { to_local_vault.push_back(std::move(p)); });
  }

  void tick(unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      nsu->tick(cycle, tick_time_ps(cycle, cfg.clocks.nsu_khz));
      ++cycle;
    }
  }

  Packet cmd(std::uint64_t instance, LaneMask mask = kFullMask) {
    Packet p;
    p.type = PacketType::kOfldCmd;
    p.oid = OffloadPacketId{0, 0, 0, 0, instance};
    p.line_addr = image.blocks[0].nsu_entry;
    p.mask = mask;
    p.size_bytes = cmd_packet_bytes(0, popcount_mask(mask), false);
    return p;
  }

  Packet rdf_resp(std::uint64_t instance, std::uint32_t seq, double value) {
    Packet p;
    p.type = PacketType::kRdfResp;
    p.oid = OffloadPacketId{0, 0, seq, 0, instance};
    p.mask = kFullMask;
    p.expected_mask = kFullMask;
    p.mem_width = 8;
    p.lane_data.assign(kWarpWidth, f64_to_bits(value));
    p.size_bytes = rdf_resp_packet_bytes(kWarpWidth, 8);
    return p;
  }

  Packet wta_pkt(std::uint64_t instance, std::uint32_t seq, Addr base) {
    Packet p;
    p.type = PacketType::kWta;
    p.oid = OffloadPacketId{0, 0, seq, 0, instance};
    p.mask = kFullMask;
    p.expected_mask = kFullMask;
    p.mem_width = 8;
    p.lane_addrs.assign(kWarpWidth, 0);
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) p.lane_addrs[lane] = base + 8 * lane;
    p.size_bytes = rdf_wta_packet_bytes(kWarpWidth, false);
    return p;
  }

  // Count packets of a type in to_network.
  unsigned count(PacketType t) const {
    unsigned n = 0;
    for (const Packet& p : to_network) n += p.type == t ? 1 : 0;
    return n;
  }

  SystemConfig cfg;
  AddressMap amap;
  GlobalMemory gmem;
  Network net;
  NetworkPort port{net};
  OffloadGovernor governor;
  NdpBufferManager bufmgr;
  RoCacheMirror ro_cache;
  WtaInflightTracker wta;
  EnergyCounters energy;
  KernelImage image;
  SystemContext ctx;
  std::unique_ptr<Nsu> nsu;
  std::vector<Packet> to_network;
  std::vector<Packet> to_local_vault;
  Cycle cycle = 0;
};

TEST(NsuUnit, SpawnReturnsCommandCredit) {
  NsuHarness h;
  h.nsu->receive(h.cmd(1), 0);
  h.tick(2);
  ASSERT_EQ(h.count(PacketType::kCredit), 1u);
  EXPECT_EQ(h.nsu->active_warps(), 1u);
  EXPECT_FALSE(h.nsu->idle());
}

TEST(NsuUnit, WarpStallsUntilReadDataArrives) {
  NsuHarness h;
  h.nsu->receive(h.cmd(1), 0);
  h.tick(50);
  // Warp is parked at the first LD with no data: nothing but the credit out.
  EXPECT_EQ(h.to_network.size(), 1u);
  EXPECT_EQ(h.nsu->active_warps(), 1u);
}

TEST(NsuUnit, FullBlockLifecycle) {
  NsuHarness h;
  h.nsu->receive(h.cmd(1), 0);
  h.nsu->receive(h.rdf_resp(1, 0, 1.5), 0);
  h.nsu->receive(h.rdf_resp(1, 1, 2.25), 0);
  h.nsu->receive(h.wta_pkt(1, 2, 0x30000), 0);
  h.tick(100);

  // The 32-lane, 8 B store spans two lines.
  const unsigned writes_net = h.count(PacketType::kNsuWrite);
  const auto writes_local = static_cast<unsigned>(h.to_local_vault.size());
  EXPECT_EQ(writes_net + writes_local, 2u);
  // Still waiting for write acks: no OFLD ACK yet.
  EXPECT_EQ(h.count(PacketType::kOfldAck), 0u);

  // Deliver the write acks.
  for (const auto* vec : {&h.to_network, &h.to_local_vault}) {
    for (const Packet& p : *vec) {
      if (p.type != PacketType::kNsuWrite) continue;
      Packet ack;
      ack.type = PacketType::kNsuWriteAck;
      ack.oid = p.oid;
      h.nsu->receive(Packet(ack), tick_time_ps(h.cycle, h.cfg.clocks.nsu_khz));
      // The write carries the computed FADD result for every lane.
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (p.mask & (LaneMask{1} << lane)) {
          EXPECT_DOUBLE_EQ(bits_to_f64(p.lane_data[lane]), 3.75);
        }
      }
    }
  }
  h.tick(20);
  EXPECT_EQ(h.count(PacketType::kOfldAck), 1u);
  EXPECT_EQ(h.nsu->active_warps(), 0u);
  EXPECT_TRUE(h.nsu->idle());

  // The ACK piggybacks the data-buffer credits (§4.3).
  for (const Packet& p : h.to_network) {
    if (p.type == PacketType::kOfldAck) {
      EXPECT_EQ(p.credit_read_data, h.image.blocks[0].num_loads);
      EXPECT_EQ(p.credit_write_addr, h.image.blocks[0].num_stores);
    }
  }
}

TEST(NsuUnit, OutOfOrderPacketArrival) {
  // Data may arrive before the command (RDF responses race the CMD).
  NsuHarness h;
  h.nsu->receive(h.rdf_resp(1, 0, 1.0), 0);
  h.nsu->receive(h.rdf_resp(1, 1, 2.0), 0);
  h.tick(5);
  EXPECT_EQ(h.nsu->active_warps(), 0u);  // no warp yet
  h.nsu->receive(h.cmd(1), tick_time_ps(h.cycle, h.cfg.clocks.nsu_khz));
  h.nsu->receive(h.wta_pkt(1, 2, 0x30000), tick_time_ps(h.cycle, h.cfg.clocks.nsu_khz));
  h.tick(100);
  EXPECT_EQ(h.count(PacketType::kNsuWrite) + h.to_local_vault.size(), 2u);
}

TEST(NsuUnit, ConcurrentWarpsKeepInstancesApart) {
  NsuHarness h;
  h.nsu->receive(h.cmd(1), 0);
  h.nsu->receive(h.cmd(2), 0);
  h.nsu->receive(h.rdf_resp(1, 0, 1.0), 0);
  h.nsu->receive(h.rdf_resp(1, 1, 1.0), 0);
  h.nsu->receive(h.rdf_resp(2, 0, 5.0), 0);
  h.nsu->receive(h.rdf_resp(2, 1, 5.0), 0);
  h.nsu->receive(h.wta_pkt(1, 2, 0x30000), 0);
  h.nsu->receive(h.wta_pkt(2, 2, 0x40000), 0);
  h.tick(200);
  EXPECT_EQ(h.nsu->active_warps(), 2u);  // both at OFLD.END awaiting acks
  double sum = 0;
  for (const auto* vec : {&h.to_network, &h.to_local_vault}) {
    for (const Packet& p : *vec) {
      if (p.type == PacketType::kNsuWrite && (p.mask & 1)) {
        sum += bits_to_f64(p.lane_data[0]);
      }
    }
  }
  EXPECT_DOUBLE_EQ(sum, 2.0 + 10.0);  // instance 1 writes 2.0, instance 2 writes 10.0
}

TEST(NsuUnit, OccupancyAndIcacheStatsAccumulate) {
  NsuHarness h;
  h.nsu->receive(h.cmd(1), 0);
  h.nsu->receive(h.rdf_resp(1, 0, 1.0), 0);
  h.nsu->receive(h.rdf_resp(1, 1, 1.0), 0);
  h.nsu->receive(h.wta_pkt(1, 2, 0x30000), 0);
  h.tick(64);
  EXPECT_GT(h.nsu->avg_occupancy(), 0.0);
  EXPECT_GT(h.nsu->icache_utilization(), 0.0);
  EXPECT_GT(h.nsu->lane_ops(), 0u);
}

TEST(NsuUnit, PredicatedOffLanesSkipBuffers) {
  // All lanes inactive on the loads: the NSU must not wait for data that
  // the GPU will never send.
  NsuHarness h;
  // Build a guarded variant: reuse the standard image but send a command
  // whose active mask has no lanes passing... simplest: empty active mask.
  Packet c = h.cmd(1, /*mask=*/0);
  h.nsu->receive(std::move(c), 0);
  Packet w = h.wta_pkt(1, 2, 0x30000);
  w.mask = 0;
  w.expected_mask = 0;
  (void)w;  // with no active lanes the GPU sends nothing at all
  h.tick(100);
  // The block completes immediately: loads/stores skip, ACK goes out.
  EXPECT_EQ(h.count(PacketType::kOfldAck), 1u);
}

}  // namespace
}  // namespace sndp
