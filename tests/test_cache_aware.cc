// Tests for the cache-locality-aware offload decision (§7.3).
#include <gtest/gtest.h>
#include <cmath>

#include "ctrl/cache_aware.h"
#include "ctrl/governor.h"

namespace sndp {
namespace {

GovernorConfig gcfg() {
  GovernorConfig g;
  g.warmup_instances = 4;
  g.model_hit_push_cost = false;  // test the paper's plain Benefit equation
  return g;
}

OffloadBlockInfo block_with(unsigned loads, unsigned stores, unsigned in, unsigned out) {
  OffloadBlockInfo b;
  b.block_id = 0;
  b.num_loads = loads;
  b.num_stores = stores;
  for (unsigned i = 0; i < in; ++i) b.regs_in.push_back(static_cast<std::uint8_t>(i));
  for (unsigned i = 0; i < out; ++i) b.regs_out.push_back(static_cast<std::uint8_t>(16 + i));
  return b;
}

TEST(CacheAware, OptimisticDuringWarmup) {
  CacheAwareTable table(1, gcfg(), 128);
  const auto info = block_with(1, 0, 4, 4);
  table.record_instance(0, 32);
  EXPECT_TRUE(table.should_offload(0, info));
  EXPECT_TRUE(std::isinf(table.score(0, info)));
}

TEST(CacheAware, StreamingMissesKeepOffloading) {
  CacheAwareTable table(1, gcfg(), 128);
  const auto info = block_with(2, 1, 0, 0);
  for (int i = 0; i < 10; ++i) {
    table.record_instance(0, 32);
    for (int l = 0; l < 4; ++l) table.record_load_line(0, false, 0);  // all misses
    table.record_store_bytes(0, 256);
  }
  // Benefit = ceil(4 * 1.0) * 128 + 256 = 768 > 0 overhead.
  EXPECT_DOUBLE_EQ(table.score(0, info), 768.0);
  EXPECT_TRUE(table.should_offload(0, info));
}

TEST(CacheAware, CacheResidentLoadsSuppress) {
  CacheAwareTable table(1, gcfg(), 128);
  const auto info = block_with(2, 0, 1, 1);  // 2 regs -> 512 B overhead at 32 lanes
  for (int i = 0; i < 10; ++i) {
    table.record_instance(0, 32);
    for (int l = 0; l < 4; ++l) table.record_load_line(0, true, 256);  // all hits
  }
  // Benefit = ceil(4 * 0) * 128 + 0 = 0 < 512 overhead.
  EXPECT_LT(table.score(0, info), 0.0);
  EXPECT_FALSE(table.should_offload(0, info));
}

TEST(CacheAware, CeilingOnFractionalLines) {
  CacheAwareTable table(1, gcfg(), 128);
  const auto info = block_with(1, 0, 0, 0);
  // 10 instances, 10 lines, 9 hits: 1 * 0.1 -> ceil = 1 line.
  for (int i = 0; i < 10; ++i) {
    table.record_instance(0, 32);
  }
  for (int l = 0; l < 10; ++l) table.record_load_line(0, l < 9, l < 9 ? 256 : 0);
  EXPECT_DOUBLE_EQ(table.score(0, info), 128.0);
}

TEST(CacheAware, StoreTermUsesMeasuredBytes) {
  CacheAwareTable table(1, gcfg(), 128);
  const auto info = block_with(0, 1, 0, 0);
  for (int i = 0; i < 8; ++i) {
    table.record_instance(0, 32);
    table.record_store_bytes(0, 8 * 32);  // WordSize x SIMDWidth
  }
  EXPECT_DOUBLE_EQ(table.score(0, info), 256.0);
}

TEST(CacheAware, HitPushCostExtensionSuppressesBorderline) {
  GovernorConfig g = gcfg();
  g.model_hit_push_cost = true;
  CacheAwareTable table(1, g, 128);
  const auto info = block_with(4, 0, 0, 0);  // no register overhead at all
  for (int i = 0; i < 10; ++i) {
    table.record_instance(0, 32);
    // 8 lines, 6 hits, broadcast-style pushes (256 B per hit line).
    for (int l = 0; l < 8; ++l) table.record_load_line(0, l < 6, l < 6 ? 256 : 0);
  }
  // Benefit = ceil(8*0.25)*128 = 256; hit-push cost = ceil(8*0.75)*128 = 768.
  EXPECT_LT(table.score(0, info), 0.0);

  CacheAwareTable plain(1, gcfg(), 128);
  for (int i = 0; i < 10; ++i) {
    plain.record_instance(0, 32);
    for (int l = 0; l < 8; ++l) plain.record_load_line(0, l < 6, l < 6 ? 256 : 0);
  }
  EXPECT_GT(plain.score(0, info), 0.0);  // the paper's equation alone accepts
}

TEST(Governor, ModesControlDecisions) {
  const auto info = block_with(2, 1, 0, 0);
  {
    GovernorConfig g;
    g.mode = OffloadMode::kOff;
    OffloadGovernor gov(g, 1, 128, 1);
    for (int i = 0; i < 100; ++i) EXPECT_FALSE(gov.decide(info, 32));
  }
  {
    GovernorConfig g;
    g.mode = OffloadMode::kAlways;
    OffloadGovernor gov(g, 1, 128, 1);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(gov.decide(info, 32));
  }
  {
    GovernorConfig g;
    g.mode = OffloadMode::kStaticRatio;
    g.static_ratio = 0.5;
    OffloadGovernor gov(g, 1, 128, 1);
    unsigned yes = 0;
    for (int i = 0; i < 10000; ++i) yes += gov.decide(info, 32) ? 1 : 0;
    EXPECT_NEAR(yes / 10000.0, 0.5, 0.05);
  }
}

TEST(Governor, EpochAdvancesWithSmCycles) {
  GovernorConfig g;
  g.mode = OffloadMode::kDynamic;
  g.epoch_cycles = 100;
  OffloadGovernor gov(g, 1, 128, 1);
  for (int i = 0; i < 250; ++i) gov.on_sm_cycle();
  StatSet stats;
  gov.export_stats(stats);
  EXPECT_DOUBLE_EQ(stats.get("governor.epochs"), 2.0);
}

TEST(Governor, StaticModesRollEpochsWithoutClimbing) {
  // The epoch clock runs in every mode (it drives the per-epoch metrics
  // timeline), but only the dynamic modes feed the hill climb: a static
  // governor's ratio must not move however many epochs elapse.
  GovernorConfig g;
  g.mode = OffloadMode::kStaticRatio;
  g.static_ratio = 0.5;
  g.epoch_cycles = 10;
  OffloadGovernor gov(g, 1, 128, 1);
  unsigned observed = 0;
  gov.set_epoch_observer([&](const EpochRollInfo& info) {
    ++observed;
    EXPECT_DOUBLE_EQ(info.ratio, 0.5);
  });
  for (int i = 0; i < 100; ++i) gov.on_sm_cycle();
  StatSet stats;
  gov.export_stats(stats);
  EXPECT_DOUBLE_EQ(stats.get("governor.epochs"), 10.0);
  EXPECT_EQ(observed, 10u);
  EXPECT_DOUBLE_EQ(stats.get("governor.final_ratio"), 0.5);
}

TEST(Governor, DeterministicForSeed) {
  const auto info = block_with(2, 1, 0, 0);
  GovernorConfig g;
  g.mode = OffloadMode::kStaticRatio;
  g.static_ratio = 0.3;
  OffloadGovernor a(g, 1, 128, 99), b(g, 1, 128, 99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.decide(info, 32), b.decide(info, 32));
}

}  // namespace
}  // namespace sndp
