// One HMC stack: 16 vault controllers behind the logic-layer switch, plus
// the NSU.  The logic layer demultiplexes arriving packets to vaults or the
// NSU, turns vault completions into response packets (baseline line fills,
// RDF forwards, NSU write acks + GPU cache invalidations), and provides the
// NSU its local-vault fast path.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "mem/vault.h"
#include "ndp/nsu.h"
#include "noc/packet.h"
#include "sim/clock.h"
#include "sim/context.h"
#include "sim/timed_channel.h"

namespace sndp {

class EpochTimeline;

class Hmc final : public Tickable {
 public:
  Hmc(HmcId id, const SystemContext& ctx);

  // Ticks in the DRAM clock domain; the NSU is registered separately in the
  // NSU domain by the Simulator.
  void tick(Cycle cycle, TimePs now) override;

  // Earliest pending work: the network RX head, plus a cached minimum over
  // vault backlogs and vault controllers (recomputed after each real tick,
  // lowered eagerly by cross-domain pushes from the NSU).  Dead ticks here
  // are exact no-ops, so no skipped-cycle compensation is needed.
  TimePs next_work_ps(TimePs now) override;

  Nsu& nsu() { return *nsu_; }
  const Nsu& nsu() const { return *nsu_; }

  bool idle() const;

  // DRAM energy/traffic counters aggregated over vaults.
  std::uint64_t total_activates() const;
  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;

  // Flow-audit accessors: per-type vault completions (incremented in the
  // same handler as the dram_*_bytes energy counters) and NoC ejections.
  std::uint64_t mem_reads_completed() const { return mem_reads_completed_; }
  std::uint64_t mem_writes_completed() const { return mem_writes_completed_; }
  std::uint64_t rdf_completed() const { return rdf_completed_; }
  std::uint64_t nsu_writes_completed() const { return nsu_writes_completed_; }
  std::uint64_t page_copy_reads_completed() const { return page_copy_reads_completed_; }
  std::uint64_t page_copy_writes_completed() const { return page_copy_writes_completed_; }
  std::uint64_t packets_routed() const { return packets_routed_; }

  // Cycle-stack profiler: derive each vault's idle tail (end_cycle minus its
  // counted busy edges), then read the per-stack aggregate.  finalize() is
  // called once by the Simulator with the DRAM domain's naive-equivalent
  // edge count before stats are read.
  void finalize(Cycle end_cycle);
  VaultCycleStack vault_cycle_stack() const;
  std::uint64_t vault_counted_cycles() const;
  unsigned num_vaults() const { return static_cast<unsigned>(vaults_.size()); }
  const VaultController& vault(unsigned v) const { return *vaults_[v]; }

  void export_stats(StatSet& out, const std::string& prefix) const;

  // Epoch-timeline hookup for the placement-migration counter (dram-domain
  // lazy poll; see the poll in tick()).  Set on stack 0 only — one poller
  // suffices for the shared policy counter.
  void set_timeline(EpochTimeline* timeline) { timeline_ = timeline; }

 private:
  void route_packet(Packet&& p, TimePs now);
  void enqueue_vault(Packet&& p, TimePs now);
  TimePs compute_internal_wake() const;
  void on_vault_complete(const DramRequest& req, TimePs done_ps);
  void send_from_stack(Packet&& p, TimePs now);
  // Page-migration copy flow: begin_page_copy dispatches the move reported
  // by the placement policy (local start, or a cross-stack kick when the
  // page's lines live elsewhere); start_page_copy enqueues the per-line
  // vault reads here and ships the bulk packet once they all complete.
  void begin_page_copy(std::uint64_t page_id, HmcId from, HmcId to, TimePs now);
  void start_page_copy(std::uint64_t page_id, HmcId to, TimePs now);

  HmcId id_;
  const SystemContext& ctx_;
  std::vector<std::unique_ptr<VaultController>> vaults_;
  std::unique_ptr<Nsu> nsu_;

  // Requests waiting for a full vault queue, one overflow FIFO per vault.
  std::vector<TimedChannel<Packet>> vault_backlog_;
  // In-flight DRAM requests: vault token -> originating packet.
  std::unordered_map<std::uint64_t, Packet> inflight_;
  std::uint64_t next_token_ = 1;

  // Outstanding page copies this stack is reading for: copy cookie ->
  // remaining line reads + destination.  The bulk packet ships when the
  // last read completes.
  struct PageCopy {
    std::uint64_t page_id = 0;
    HmcId to = 0;
    unsigned lines_left = 0;
  };
  std::unordered_map<std::uint64_t, PageCopy> pending_copies_;
  std::uint64_t next_copy_ = 1;

  // The intra-stack NoC latency between logic layer and a vault / the NSU.
  TimePs noc_latency_ps_ = 0;

  // Fast-forward wake hint over backlogs + vaults (see next_work_ps).
  TimePs wake_internal_ = 0;
  bool fast_forward_ = false;

  EpochTimeline* timeline_ = nullptr;

  std::uint64_t packets_routed_ = 0;
  std::uint64_t mem_reads_completed_ = 0;
  std::uint64_t mem_writes_completed_ = 0;
  std::uint64_t rdf_completed_ = 0;
  std::uint64_t nsu_writes_completed_ = 0;
  std::uint64_t page_copy_reads_completed_ = 0;
  std::uint64_t page_copy_writes_completed_ = 0;
};

}  // namespace sndp
