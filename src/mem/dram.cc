// DramBank is header-only; this TU anchors the module and keeps the build
// layout uniform (one .cc per module).
#include "mem/dram.h"
