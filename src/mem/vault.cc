#include "mem/vault.h"

#include <stdexcept>

namespace sndp {

VaultController::VaultController(const HmcConfig& cfg, std::uint64_t dram_khz,
                                 CompletionFn on_complete)
    : cfg_(cfg), dram_khz_(dram_khz), on_complete_(std::move(on_complete)) {
  banks_.resize(cfg_.banks_per_vault);
}

void VaultController::enqueue(const DramRequest& req) {
  if (!can_accept()) throw std::logic_error("VaultController: enqueue past capacity");
  queue_.push_back(req);
}

void VaultController::tick(Cycle cycle, TimePs now) {
  // Deliver finished bursts.
  while (completed_.ready(now)) {
    const TimePs done_ps = completed_.front_ready_ps();
    const DramRequest req = completed_.pop();
    on_complete_(req, done_ps);
  }

  if (queue_.empty()) return;

  const DramTiming& t = cfg_.timing;

  // FR-FCFS pass 1: oldest request whose bank has its row open and can CAS.
  std::size_t pick = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    DramBank& bank = banks_[queue_[i].coord.bank];
    if (bank.row_open(queue_[i].coord.row) && bank.can_cas(cycle) && cycle >= bus_free_) {
      pick = i;
      break;
    }
  }

  if (pick < queue_.size()) {
    // Issue the CAS and retire the request.
    DramRequest req = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    DramBank& bank = banks_[req.coord.bank];
    bank.cas(cycle, req.is_write, t);
    bus_free_ = cycle + t.tCCD;
    const Cycle done_cycle = req.is_write ? cycle + t.tBURST : cycle + t.tCL + t.tBURST;
    const TimePs done_ps = tick_time_ps(done_cycle, dram_khz_);
    if (req.is_write) ++writes; else ++reads;
    queue_latency_ps.record(static_cast<double>(done_ps - req.enqueue_ps));
    completed_.push(req, done_ps);
    return;
  }

  // FR-FCFS pass 2: oldest request that can make *state* progress
  // (precharge a conflicting row or activate its own).  One command per
  // cycle per vault.
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    DramBank& bank = banks_[queue_[i].coord.bank];
    if (bank.closed()) {
      if (bank.can_activate(cycle)) {
        bank.activate(cycle, queue_[i].coord.row, t);
        ++activates;
        ++row_misses;
        return;
      }
    } else if (!bank.row_open(queue_[i].coord.row)) {
      if (bank.can_precharge(cycle)) {
        bank.precharge(cycle, t);
        ++precharges;
        return;
      }
    }
    // Row already open and matching but CAS-blocked: wait (handled in pass 1).
  }
}

}  // namespace sndp
