#include "mem/vault.h"

#include <stdexcept>

namespace sndp {

VaultController::VaultController(const HmcConfig& cfg, std::uint64_t dram_khz,
                                 CompletionFn on_complete)
    : cfg_(cfg), dram_khz_(dram_khz), on_complete_(std::move(on_complete)) {
  banks_.resize(cfg_.banks_per_vault);
}

void VaultController::enqueue(const DramRequest& req) {
  if (!can_accept()) throw std::logic_error("VaultController: enqueue past capacity");
  queue_.push_back(req);
}

void VaultController::enable_profile(unsigned tenants) {
  profile_ = true;
  cyc_.init(tenants);
}

void VaultController::bill_cycle(const DramRequest& req, VaultBucket bucket) {
  ++counted_cycles_;
  const unsigned row = req.page_copy ? cyc_.shared_row() : req.tenant;
  cyc_.add(row, static_cast<std::size_t>(bucket), 1);
}

void VaultController::finalize(Cycle end_cycle) {
  if (!profile_) return;
  if (end_cycle > counted_cycles_) {
    cyc_.add(cyc_.shared_row(), static_cast<std::size_t>(VaultBucket::kIdle),
             end_cycle - counted_cycles_);
    counted_cycles_ = end_cycle;
  }
}

void VaultController::tick(Cycle cycle, TimePs now) {
  // Deliver finished bursts.
  while (completed_.ready(now)) {
    const TimePs done_ps = completed_.front_ready_ps();
    const DramRequest req = completed_.pop();
    on_complete_(req, done_ps);
  }

  if (queue_.empty()) return;

  const DramTiming& t = cfg_.timing;

  // Single FR-FCFS scan.  Look for the oldest request whose bank has its
  // row open and can CAS (the old "pass 1"); while scanning, remember the
  // oldest request that could make *state* progress instead — activate a
  // closed bank or precharge a conflicting row (the old "pass 2") — so the
  // queue is walked at most once per cycle.  One command per cycle per
  // vault; pick order is identical to the two-pass version.
  const bool bus_ready = cycle >= bus_free_;
  std::size_t pick = queue_.size();
  enum class StateOp { kNone, kActivate, kPrecharge };
  StateOp fallback = StateOp::kNone;
  std::size_t fb = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    DramBank& bank = banks_[queue_[i].coord.bank];
    if (bank.row_open(queue_[i].coord.row)) {
      if (bus_ready && bank.can_cas(cycle)) {
        pick = i;
        break;
      }
      // Row open and matching but CAS-blocked: wait.
    } else if (fallback == StateOp::kNone) {
      if (bank.closed()) {
        if (bank.can_activate(cycle)) {
          fallback = StateOp::kActivate;
          fb = i;
        }
      } else if (bank.can_precharge(cycle)) {
        fallback = StateOp::kPrecharge;
        fb = i;
      }
    }
  }

  if (pick < queue_.size()) {
    // Issue the CAS and retire the request with an order-preserving
    // compaction (shift the tail left) instead of a vector middle-erase.
    DramRequest req = queue_[pick];
    std::move(queue_.begin() + static_cast<std::ptrdiff_t>(pick) + 1, queue_.end(),
              queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    queue_.pop_back();
    DramBank& bank = banks_[req.coord.bank];
    bank.cas(cycle, req.is_write, t);
    if (profile_) {
      bill_cycle(req, req.page_copy ? VaultBucket::kPageCopy : VaultBucket::kService);
    }
    bus_free_ = cycle + t.tCCD;
    const Cycle done_cycle = req.is_write ? cycle + t.tBURST : cycle + t.tCL + t.tBURST;
    const TimePs done_ps = tick_time_ps(done_cycle, dram_khz_);
    if (req.is_write) ++writes; else ++reads;
    queue_latency_ps.record(static_cast<double>(done_ps - req.enqueue_ps));
    completed_.push(req, done_ps);
    return;
  }

  if (fallback == StateOp::kActivate) {
    banks_[queue_[fb].coord.bank].activate(cycle, queue_[fb].coord.row, t);
    ++activates;
    ++row_misses;
    if (profile_) {
      bill_cycle(queue_[fb],
                 queue_[fb].page_copy ? VaultBucket::kPageCopy : VaultBucket::kService);
    }
  } else if (fallback == StateOp::kPrecharge) {
    banks_[queue_[fb].coord.bank].precharge(cycle, t);
    ++precharges;
    if (profile_) {
      bill_cycle(queue_[fb],
                 queue_[fb].page_copy ? VaultBucket::kPageCopy : VaultBucket::kService);
    }
  } else if (profile_) {
    // No command issuable this edge (CAS/activate/precharge all timing- or
    // bus-blocked) with requests waiting: the queue is the bottleneck.  The
    // oldest request defines the wait.
    bill_cycle(queue_[0], VaultBucket::kQueueBound);
  }
}

}  // namespace sndp
