#include "mem/cache.h"

#include <algorithm>

namespace sndp {

Cache::Cache(const CacheConfig& cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)), num_sets_(cfg.num_sets()) {
  lines_.resize(static_cast<std::size_t>(num_sets_) * cfg_.ways);
  mshrs_.reserve(cfg_.mshr_entries);
}

unsigned Cache::set_of(Addr line_addr) const {
  return static_cast<unsigned>((line_addr / cfg_.line_bytes) % num_sets_);
}

Cache::Line* Cache::find_line(Addr line_addr) {
  const unsigned set = set_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == line_addr) return &base[w];
  }
  return nullptr;
}

bool Cache::mshr_pending(Addr line_addr) const {
  return std::any_of(mshrs_.begin(), mshrs_.end(),
                     [&](const Mshr& m) { return m.line_addr == line_addr; });
}

CacheAccessResult Cache::access_read(Addr line_addr, std::uint64_t token) {
  if (Line* line = find_line(line_addr)) {
    line->lru = ++stamp_;
    ++hits;
    return CacheAccessResult::kHit;
  }
  for (Mshr& m : mshrs_) {
    if (m.line_addr == line_addr) {
      m.waiters.push_back(token);
      ++merged_misses;
      return CacheAccessResult::kMissMerged;
    }
  }
  if (mshrs_.size() >= cfg_.mshr_entries) {
    ++mshr_stalls;
    return CacheAccessResult::kMshrFull;
  }
  mshrs_.push_back(Mshr{line_addr, {token}});
  ++misses;
  return CacheAccessResult::kMissNew;
}

bool Cache::probe(Addr line_addr) {
  if (Line* line = find_line(line_addr)) {
    line->lru = ++stamp_;
    ++hits;
    return true;
  }
  ++misses;
  return false;
}

bool Cache::write_touch(Addr line_addr) {
  if (Line* line = find_line(line_addr)) {
    line->lru = ++stamp_;
    ++write_hits;
    return true;
  }
  ++write_misses;
  return false;
}

std::vector<std::uint64_t> Cache::fill(Addr line_addr) {
  std::vector<std::uint64_t> waiters;
  for (auto it = mshrs_.begin(); it != mshrs_.end(); ++it) {
    if (it->line_addr == line_addr) {
      waiters = std::move(it->waiters);
      mshrs_.erase(it);
      break;
    }
  }
  // Install, unless it raced with an earlier fill of the same line.
  if (!find_line(line_addr)) {
    const unsigned set = set_of(line_addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    Line* victim = &base[0];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    if (victim->valid) ++evictions;
    victim->valid = true;
    victim->tag = line_addr;
    victim->lru = ++stamp_;
  }
  return waiters;
}

bool Cache::invalidate(Addr line_addr) {
  if (Line* line = find_line(line_addr)) {
    line->valid = false;
    ++invalidations;
    return true;
  }
  return false;
}

void Cache::export_stats(StatSet& out) const {
  out.set(name_ + ".hits", static_cast<double>(hits));
  out.set(name_ + ".misses", static_cast<double>(misses));
  out.set(name_ + ".merged_misses", static_cast<double>(merged_misses));
  out.set(name_ + ".mshr_stalls", static_cast<double>(mshr_stalls));
  out.set(name_ + ".evictions", static_cast<double>(evictions));
  out.set(name_ + ".invalidations", static_cast<double>(invalidations));
  out.set(name_ + ".write_hits", static_cast<double>(write_hits));
  out.set(name_ + ".write_misses", static_cast<double>(write_misses));
}

}  // namespace sndp
