#include "mem/address_map.h"

namespace sndp {
namespace {

// Fast 64-bit mixer (SplitMix64 finalizer): turns page ids into uniformly
// distributed placements while staying deterministic for a given seed.
std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

unsigned log2u(std::uint64_t v) { return static_cast<unsigned>(std::countr_zero(v)); }

}  // namespace

AddressMap::AddressMap(const SystemConfig& cfg)
    : line_bytes_(cfg.l2.line_bytes),
      line_shift_(log2u(cfg.l2.line_bytes)),
      page_shift_(log2u(cfg.page_bytes)),
      num_hmcs_(cfg.num_hmcs),
      vault_bits_(log2u(cfg.hmc.num_vaults)),
      bank_bits_(log2u(cfg.hmc.banks_per_vault)),
      column_bits_(log2u(cfg.hmc.row_bytes / cfg.l2.line_bytes)),
      seed_(cfg.placement_seed) {}

HmcId AddressMap::hmc_of_page(std::uint64_t page_id) const {
  return static_cast<HmcId>(mix64(page_id ^ seed_) & (num_hmcs_ - 1));
}

DramCoord AddressMap::decode(Addr addr) const {
  DramCoord c;
  c.hmc = hmc_of(addr);
  std::uint64_t a = addr >> line_shift_;  // line address
  c.vault = static_cast<VaultId>(a & ((1u << vault_bits_) - 1));
  a >>= vault_bits_;
  // Low column slice below the bank bits: consecutive vault-local lines
  // stay in one row for a short burst before rotating banks.
  const unsigned col_lo_bits = column_bits_ < 2 ? column_bits_ : 2;
  const unsigned col_lo = static_cast<unsigned>(a & ((1u << col_lo_bits) - 1));
  a >>= col_lo_bits;
  c.bank = static_cast<unsigned>(a & ((1u << bank_bits_) - 1));
  a >>= bank_bits_;
  const unsigned col_hi_bits = column_bits_ - col_lo_bits;
  const unsigned col_hi = static_cast<unsigned>(a & ((1u << col_hi_bits) - 1));
  a >>= col_hi_bits;
  c.column = col_lo | (col_hi << col_lo_bits);
  c.row = a;
  return c;
}

}  // namespace sndp
