#include "mem/address_map.h"

#include <bit>
#include <stdexcept>

#include "common/stats.h"

namespace sndp {
namespace {

// Exact log2 for the power-of-two geometry parameters.  countr_zero of a
// non-power-of-two would silently return the position of the lowest set bit
// (e.g. log2u(6) == 1), shredding the vault/bank/column bit slicing — so
// this hard-asserts instead of relying on config validation alone.
unsigned log2u(std::uint64_t v) {
  if (!std::has_single_bit(v)) {
    throw std::invalid_argument("AddressMap: geometry parameter must be a power of two");
  }
  return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace

AddressMap::AddressMap(const SystemConfig& cfg)
    : line_bytes_(cfg.l2.line_bytes),
      line_shift_(log2u(cfg.l2.line_bytes)),
      page_shift_(log2u(cfg.page_bytes)),
      num_hmcs_(cfg.num_hmcs),
      vault_bits_(log2u(cfg.hmc.num_vaults)),
      bank_bits_(log2u(cfg.hmc.banks_per_vault)),
      column_bits_(log2u(cfg.hmc.row_bytes / cfg.l2.line_bytes)),
      policy_(make_placement_policy(cfg)) {}

DramCoord AddressMap::decode(Addr addr) {
  return decode_at(addr, hmc_of(addr));
}

DramCoord AddressMap::decode_at(Addr addr, HmcId home) const {
  DramCoord c;
  c.hmc = home;
  std::uint64_t a = addr >> line_shift_;  // line address
  c.vault = static_cast<VaultId>(a & ((1u << vault_bits_) - 1));
  a >>= vault_bits_;
  // Low column slice below the bank bits: consecutive vault-local lines
  // stay in one row for a short burst before rotating banks.
  const unsigned col_lo_bits = column_bits_ < 2 ? column_bits_ : 2;
  const unsigned col_lo = static_cast<unsigned>(a & ((1u << col_lo_bits) - 1));
  a >>= col_lo_bits;
  c.bank = static_cast<unsigned>(a & ((1u << bank_bits_) - 1));
  a >>= bank_bits_;
  const unsigned col_hi_bits = column_bits_ - col_lo_bits;
  const unsigned col_hi = static_cast<unsigned>(a & ((1u << col_hi_bits) - 1));
  a >>= col_hi_bits;
  c.column = col_lo | (col_hi << col_lo_bits);
  c.row = a;
  return c;
}

void AddressMap::export_stats(StatSet& stats) const {
  stats.set("mem.placement_policy", static_cast<double>(policy_->kind()));
  stats.set("mem.pages_migrated", static_cast<double>(policy_->pages_migrated()));
  stats.set("mem.migration_bytes", static_cast<double>(policy_->migration_bytes()));
  stats.set("mem.pages_first_touch", static_cast<double>(policy_->pages_assigned()));
}

}  // namespace sndp
