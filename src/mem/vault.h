// Vault controller: a bounded FR-FCFS request queue in front of a set of
// DRAM banks sharing one data TSV bus (peak 128 B per tCCD = ~21 GB/s per
// vault, ~340 GB/s per 16-vault stack — the paper's ~320 GB/s figure).
#pragma once

#include <functional>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/address_map.h"
#include "mem/dram.h"
#include "obs/cycle_stack.h"
#include "sim/clock.h"
#include "sim/timed_channel.h"

namespace sndp {

struct DramRequest {
  Addr line_addr = 0;
  bool is_write = false;
  std::uint64_t token = 0;  // opaque owner cookie, round-tripped on completion
  DramCoord coord{};
  TimePs enqueue_ps = 0;
  std::uint8_t tenant = 0;  // owning tenant (cycle-stack attribution)
  bool page_copy = false;   // migration copy traffic, not demand
};

// Ticks in the DRAM clock domain.  The owner (HMC logic layer) pushes
// requests with `enqueue` (bounded by vault_queue_size; check `can_accept`)
// and receives completions through the callback, timestamped with the cycle
// the data burst finishes (reads: +tCL+tBURST after CAS).
class VaultController final : public Tickable {
 public:
  using CompletionFn = std::function<void(const DramRequest&, TimePs done_ps)>;

  VaultController(const HmcConfig& cfg, std::uint64_t dram_khz, CompletionFn on_complete);

  bool can_accept() const { return queue_.size() < cfg_.vault_queue_size; }
  std::size_t queue_depth() const { return queue_.size(); }
  bool idle() const { return queue_.empty() && completed_.empty(); }

  void enqueue(const DramRequest& req);

  void tick(Cycle cycle, TimePs now) override;

  // Queued requests need command scheduling every DRAM edge; an empty
  // queue only wakes for pending completion bursts.  Skipped ticks are
  // exact no-ops here (no per-cycle counters).
  TimePs next_work_ps(TimePs /*now*/) override {
    if (!queue_.empty()) return 0;
    if (!completed_.empty()) return completed_.front_ready_ps();
    return kTimeNever;
  }

  // Stats.
  std::uint64_t activates = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t precharges = 0;
  // Row hits = (reads + writes) - activates: every activate serves exactly
  // one conflicting/closed-row request in this model.
  std::uint64_t row_misses = 0;
  Distribution queue_latency_ps;

  // Cycle-stack profiler (src/obs/cycle_stack.*).  Busy edges (queue
  // non-empty) are classified live — the vault never sleeps while its queue
  // is non-empty, so the busy classification is fast-forward-invariant.
  // Idle is derived once at finalize() as end_cycle minus counted busy
  // edges.  Bucket sum == counted_cycles() at any instant.
  void enable_profile(unsigned tenants);
  void finalize(Cycle end_cycle);
  const VaultCycleStack& cycle_stack() const { return cyc_; }
  std::uint64_t counted_cycles() const { return counted_cycles_; }

 private:
  // Bill one busy edge to the request that defines it.  Page-copy traffic
  // belongs to the migration machinery, not any tenant: shared row.
  void bill_cycle(const DramRequest& req, VaultBucket bucket);

  HmcConfig cfg_;
  std::uint64_t dram_khz_;
  CompletionFn on_complete_;
  std::vector<DramBank> banks_;
  std::vector<DramRequest> queue_;  // FR-FCFS scans; arrival order preserved
  Cycle bus_free_ = 0;              // shared vault data bus (tCCD pacing)
  TimedChannel<DramRequest> completed_;

  bool profile_ = false;
  VaultCycleStack cyc_;
  std::uint64_t counted_cycles_ = 0;
};

}  // namespace sndp
