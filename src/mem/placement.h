// Pluggable page->stack data-placement policies.
//
// The paper's "unrestricted data placement" (§5) is a seeded random hash of
// 4 KB pages onto HMC stacks.  CODA-style follow-up work shows the next win
// is co-locating data with the NSU that computes on it, so the AddressMap
// delegates the page->stack decision to a PlacementPolicy:
//
//   kRandom      seeded hash (the paper's model; bit-compatible default —
//                for power-of-two stack counts it reproduces the historic
//                mask reduction exactly)
//   kFirstTouch  round-robin assignment at the first lookup of each page
//                (the simulation is deterministic, so "first touch" is too)
//   kLocality    page->stack map from a reference-interpreter profiling
//                pre-pass (src/ref/placement_profile.*): each page lives on
//                the stack whose NSU touches it most; unprofiled pages fall
//                back to the random hash
//   kMigration   starts random; a page re-homes onto the NSU stack that
//                generates the most remote traffic to it once that traffic
//                crosses cfg.placement.migration_threshold
//
// Every component consults ONE shared policy through ctx.amap — SM target
// voting, L2 slice selection, HMC routing, NSU write routing, the latency
// tracer's local/remote classes, and the stats audit all see the same live
// mapping.  Policies whose mapping can change mid-run (volatile_mapping())
// additionally require callers to pin lookups they cache (see DESIGN.md
// "Data placement" for the pinned classification points).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

// Output of the reference-interpreter profiling pre-pass: the preferred
// stack for every page an accepted offload block touches.  Built by
// build_placement_profile() (src/ref/placement_profile.*) and carried in
// SystemConfig::placement.locality_profile.
struct PlacementProfile {
  std::unordered_map<std::uint64_t, HmcId> home;  // page id -> stack
  std::uint64_t pages_profiled = 0;               // == home.size()
  std::uint64_t votes = 0;  // weighted lane-access votes recorded
};

// The shared random primitive: unbiased page->stack hash.  Power-of-two
// stack counts use the historic mask (bit-compatible with the seed repo);
// other counts use a fixed-point multiply (Lemire reduction) instead of the
// silently-biased mask.
HmcId random_page_home(std::uint64_t page_id, std::uint64_t seed, unsigned num_hmcs);

const char* placement_policy_name(PlacementPolicyKind kind);
// Parses "random" / "first_touch" / "locality" / "migration" (also accepts
// "first-touch").  Returns false on anything else.
bool parse_placement_policy(const std::string& text, PlacementPolicyKind* out);

// A re-home completed by a note_remote_access call.  The policy only flips
// the mapping; the caller (the stack that served the access) must charge the
// physical page copy `from` -> `to` through the fabric (Hmc page-copy flow),
// so a migration is never a free re-home.  `from != to` always.
struct PageMove {
  bool moved = false;
  std::uint64_t page_id = 0;
  HmcId from = 0;
  HmcId to = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  PlacementPolicyKind kind() const { return kind_; }
  const char* name() const { return placement_policy_name(kind_); }

  // Current home stack of a page.  Non-const: first-touch assigns lazily,
  // so the result for a given page is stable from its first lookup on.
  virtual HmcId home_of_page(std::uint64_t page_id) = 0;

  // Migration feed, called at the pinned serving-stack completion sites
  // (Hmc::on_vault_complete) for every RDF / NSU-write whose consuming NSU
  // is not the serving stack.  Static policies ignore it.  When the call
  // crosses the migration threshold the returned PageMove tells the caller
  // to start the page-copy traffic (reads at `from`, bulk hop, writes at
  // `to`); `moved` is false otherwise.
  virtual PageMove note_remote_access(std::uint64_t /*page_id*/, HmcId /*accessor*/) {
    return {};
  }

  // True when home_of_page can change over a run (migration).  Callers that
  // resolve a lookup and act on it later must carry the resolved value in
  // the packet instead of re-resolving; the GPU also widens invalidations
  // and collapses the WTA in-flight tracker to one aggregate counter.
  virtual bool volatile_mapping() const { return false; }

  std::uint64_t pages_migrated() const { return pages_migrated_; }
  std::uint64_t migration_bytes() const { return migration_bytes_; }
  std::uint64_t pages_assigned() const { return pages_assigned_; }

 protected:
  explicit PlacementPolicy(PlacementPolicyKind kind) : kind_(kind) {}

  PlacementPolicyKind kind_;
  std::uint64_t pages_migrated_ = 0;
  std::uint64_t migration_bytes_ = 0;
  std::uint64_t pages_assigned_ = 0;  // first-touch: pages given a home
};

// Builds the policy cfg.placement selects.  kLocality with a null profile
// is allowed (every page falls back to the random hash) so run_image-only
// callers degrade gracefully; Simulator::run builds the profile first.
std::unique_ptr<PlacementPolicy> make_placement_policy(const SystemConfig& cfg);

}  // namespace sndp
