// Timing model of a set-associative cache with MSHRs.
//
// The simulator keeps functional data in GlobalMemory (write-through keeps
// memory always current), so the cache tracks tags + replacement state only.
// Used for both the per-SM L1D and the shared L2 slices.
//
// Policies (paper §5): write-through, no write-allocate, LRU.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace sndp {

enum class CacheAccessResult {
  kHit,         // line present
  kMissNew,     // miss, MSHR allocated — caller must send a fill request
  kMissMerged,  // miss, merged into an existing MSHR — no new request
  kMshrFull,    // structural stall: no MSHR available, retry later
};

class Cache {
 public:
  // `name` namespaces the exported stats.
  Cache(const CacheConfig& cfg, std::string name);

  // Read access for `line_addr` on behalf of `token` (an opaque requester
  // id returned by fill()).  Updates LRU on hit.
  CacheAccessResult access_read(Addr line_addr, std::uint64_t token);

  // Probe without side effects on the MSHRs (used for NDP RDF probes which
  // never fill the cache).  Updates LRU on hit.
  bool probe(Addr line_addr);

  // Write-through, no-allocate: refreshes LRU if the line is present.
  // Returns true if the line was present.
  bool write_touch(Addr line_addr);

  // A fill arrived for `line_addr`: install the line (evicting LRU) and
  // return the tokens of all merged waiters.
  std::vector<std::uint64_t> fill(Addr line_addr);

  // Coherence invalidation (NSU wrote DRAM underneath us).  Returns true if
  // a line was invalidated.
  bool invalidate(Addr line_addr);

  unsigned mshr_free() const { return cfg_.mshr_entries - static_cast<unsigned>(mshrs_.size()); }
  bool mshr_pending(Addr line_addr) const;

  void export_stats(StatSet& out) const;

  // Counters (also exported via export_stats).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        // kMissNew only
  std::uint64_t merged_misses = 0;
  std::uint64_t mshr_stalls = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  // last-touch stamp
  };
  struct Mshr {
    Addr line_addr;
    std::vector<std::uint64_t> waiters;
  };

  unsigned set_of(Addr line_addr) const;
  Line* find_line(Addr line_addr);

  CacheConfig cfg_;
  std::string name_;
  unsigned num_sets_;
  std::vector<Line> lines_;  // num_sets x ways
  std::vector<Mshr> mshrs_;
  std::uint64_t stamp_ = 0;
};

}  // namespace sndp
