// Physical address decomposition.
//
// Pages (4 KB, §5) are placed on HMCs by a pluggable PlacementPolicy
// (mem/placement.h); the default random hash is the paper's "random mapping
// of pages" that models unrestricted data placement under dynamic memory
// management.  Within a stack, cache lines interleave across vaults first,
// then a small low column slice, then banks (HMC-style fine-grained
// interleave balancing bank-level parallelism against row locality: 4
// consecutive vault-local lines share a row before the bank advances — one
// activation serves 512 B of streaming per bank):
//
//   addr bits:  [ row | col_hi | bank | col_lo(2) | vault | line offset ]
#pragma once

#include <cstdint>
#include <memory>

#include "common/config.h"
#include "common/types.h"
#include "mem/placement.h"

namespace sndp {

class StatSet;

struct DramCoord {
  HmcId hmc = 0;
  VaultId vault = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  unsigned column = 0;  // line index within the row
};

// One AddressMap per simulation, shared through SimContext: every consumer
// (SM target voting, L2 slicing, HMC/NSU routing, latency classification)
// sees the same live page->stack mapping.  Lookups are non-const because
// first-touch placement assigns lazily.
class AddressMap {
 public:
  explicit AddressMap(const SystemConfig& cfg);
  AddressMap(const AddressMap&) = delete;
  AddressMap& operator=(const AddressMap&) = delete;

  HmcId hmc_of(Addr addr) { return hmc_of_page(addr >> page_shift_); }
  HmcId hmc_of_page(std::uint64_t page_id) { return policy_->home_of_page(page_id); }

  Addr line_of(Addr addr) const { return addr & ~static_cast<Addr>(line_bytes_ - 1); }
  unsigned line_bytes() const { return line_bytes_; }
  std::uint64_t page_bytes() const { return std::uint64_t{1} << page_shift_; }
  unsigned num_hmcs() const { return num_hmcs_; }

  // Live-mapping decode: resolves the page's current home.
  DramCoord decode(Addr addr);
  // Decode against a caller-resolved home — the single-lookup contract: a
  // caller that already routed a packet to `home` decodes with that same
  // value, so vault/bank/row can never disagree with routing even after the
  // page migrates.
  DramCoord decode_at(Addr addr, HmcId home) const;

  PlacementPolicy& policy() { return *policy_; }
  const PlacementPolicy& policy() const { return *policy_; }

  // Emits mem.placement_policy plus the policy's counters
  // (mem.pages_migrated / mem.migration_bytes / mem.pages_first_touch).
  void export_stats(StatSet& stats) const;

 private:
  unsigned line_bytes_;
  unsigned line_shift_;
  unsigned page_shift_;
  unsigned num_hmcs_;
  unsigned vault_bits_;
  unsigned bank_bits_;
  unsigned column_bits_;  // log2(lines per row)
  std::unique_ptr<PlacementPolicy> policy_;
};

}  // namespace sndp
