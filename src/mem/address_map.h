// Physical address decomposition.
//
// Pages (4 KB, §5) are placed on HMCs by a seeded hash — the paper's
// "random mapping of pages" that models unrestricted data placement under
// dynamic memory management.  Within a stack, cache lines interleave across
// vaults first, then a small low column slice, then banks (HMC-style
// fine-grained interleave balancing bank-level parallelism against row
// locality: 4 consecutive vault-local lines share a row before the bank
// advances — one activation serves 512 B of streaming per bank):
//
//   addr bits:  [ row | col_hi | bank | col_lo(2) | vault | line offset ]
#pragma once

#include <bit>
#include <cstdint>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

struct DramCoord {
  HmcId hmc = 0;
  VaultId vault = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  unsigned column = 0;  // line index within the row
};

class AddressMap {
 public:
  AddressMap(const SystemConfig& cfg);

  HmcId hmc_of(Addr addr) const { return hmc_of_page(addr >> page_shift_); }
  HmcId hmc_of_page(std::uint64_t page_id) const;

  Addr line_of(Addr addr) const { return addr & ~static_cast<Addr>(line_bytes_ - 1); }
  unsigned line_bytes() const { return line_bytes_; }
  std::uint64_t page_bytes() const { return std::uint64_t{1} << page_shift_; }
  unsigned num_hmcs() const { return num_hmcs_; }

  DramCoord decode(Addr addr) const;

 private:
  unsigned line_bytes_;
  unsigned line_shift_;
  unsigned page_shift_;
  unsigned num_hmcs_;
  unsigned vault_bits_;
  unsigned bank_bits_;
  unsigned column_bits_;  // log2(lines per row)
  std::uint64_t seed_;
};

}  // namespace sndp
