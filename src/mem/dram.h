// DRAM bank timing state (per-bank row state + command legality times).
//
// Commands are modeled at request granularity: the vault controller selects
// a request with FR-FCFS and advances it through PRE -> ACT -> CAS according
// to these per-bank timestamps, one command per vault-cycle.  All times are
// in DRAM-domain cycles (tCK = 1.5 ns per Table 2).
#pragma once

#include <cstdint>
#include <limits>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

class DramBank {
 public:
  static constexpr std::uint64_t kNoRow = std::numeric_limits<std::uint64_t>::max();

  bool row_open(std::uint64_t row) const { return open_row_ == row; }
  bool closed() const { return open_row_ == kNoRow; }
  std::uint64_t open_row() const { return open_row_; }

  bool can_activate(Cycle now) const { return closed() && now >= act_allowed_; }
  bool can_precharge(Cycle now) const { return !closed() && now >= pre_allowed_; }
  bool can_cas(Cycle now) const { return !closed() && now >= cas_allowed_; }

  void activate(Cycle now, std::uint64_t row, const DramTiming& t) {
    open_row_ = row;
    cas_allowed_ = now + t.tRCD;
    pre_allowed_ = now + t.tRAS;
  }

  void precharge(Cycle now, const DramTiming& t) {
    open_row_ = kNoRow;
    act_allowed_ = now + t.tRP;
  }

  // CAS for a read or write.  Write recovery (tWR) delays the next
  // precharge; both delay the next CAS by tCCD at the vault level (tracked
  // by the controller's shared data bus).
  void cas(Cycle now, bool is_write, const DramTiming& t) {
    if (is_write) {
      pre_allowed_ = std::max(pre_allowed_, now + t.tBURST + t.tWR);
    } else {
      pre_allowed_ = std::max(pre_allowed_, now + t.tBURST);
    }
    cas_allowed_ = std::max(cas_allowed_, now + t.tCCD);
  }

 private:
  std::uint64_t open_row_ = kNoRow;
  Cycle act_allowed_ = 0;
  Cycle cas_allowed_ = 0;
  Cycle pre_allowed_ = 0;
};

}  // namespace sndp
