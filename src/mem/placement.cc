#include "mem/placement.h"

#include <bit>
#include <stdexcept>
#include <vector>

namespace sndp {
namespace {

// Fast 64-bit mixer (SplitMix64 finalizer): turns page ids into uniformly
// distributed placements while staying deterministic for a given seed.
std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class RandomPlacement final : public PlacementPolicy {
 public:
  RandomPlacement(std::uint64_t seed, unsigned num_hmcs)
      : PlacementPolicy(PlacementPolicyKind::kRandom), seed_(seed), num_hmcs_(num_hmcs) {}

  HmcId home_of_page(std::uint64_t page_id) override {
    return random_page_home(page_id, seed_, num_hmcs_);
  }

 private:
  std::uint64_t seed_;
  unsigned num_hmcs_;
};

class FirstTouchPlacement final : public PlacementPolicy {
 public:
  explicit FirstTouchPlacement(unsigned num_hmcs)
      : PlacementPolicy(PlacementPolicyKind::kFirstTouch), num_hmcs_(num_hmcs) {}

  HmcId home_of_page(std::uint64_t page_id) override {
    const auto [it, inserted] = home_.try_emplace(page_id, static_cast<HmcId>(next_));
    if (inserted) {
      next_ = (next_ + 1) % num_hmcs_;
      ++pages_assigned_;
    }
    return it->second;
  }

 private:
  unsigned num_hmcs_;
  unsigned next_ = 0;  // round-robin cursor over stacks
  std::unordered_map<std::uint64_t, HmcId> home_;
};

class LocalityPlacement final : public PlacementPolicy {
 public:
  LocalityPlacement(std::shared_ptr<const PlacementProfile> profile, std::uint64_t seed,
                    unsigned num_hmcs)
      : PlacementPolicy(PlacementPolicyKind::kLocality),
        profile_(std::move(profile)),
        seed_(seed),
        num_hmcs_(num_hmcs) {}

  HmcId home_of_page(std::uint64_t page_id) override {
    if (profile_ != nullptr) {
      const auto it = profile_->home.find(page_id);
      // A profiled home outside the configured stack count (profile built
      // for a different topology) is ignored rather than misrouted.
      if (it != profile_->home.end() && it->second < num_hmcs_) return it->second;
    }
    return random_page_home(page_id, seed_, num_hmcs_);
  }

 private:
  std::shared_ptr<const PlacementProfile> profile_;
  std::uint64_t seed_;
  unsigned num_hmcs_;
};

class MigrationPlacement final : public PlacementPolicy {
 public:
  MigrationPlacement(std::uint64_t seed, unsigned num_hmcs, std::uint32_t threshold,
                     std::uint64_t page_bytes)
      : PlacementPolicy(PlacementPolicyKind::kMigration),
        seed_(seed),
        num_hmcs_(num_hmcs),
        threshold_(threshold),
        page_bytes_(page_bytes) {}

  HmcId home_of_page(std::uint64_t page_id) override {
    const auto it = moved_.find(page_id);
    return it != moved_.end() ? it->second : random_page_home(page_id, seed_, num_hmcs_);
  }

  PageMove note_remote_access(std::uint64_t page_id, HmcId accessor) override {
    if (accessor >= num_hmcs_) return {};
    const HmcId old_home = home_of_page(page_id);
    if (accessor == old_home) return {};  // in-flight before a move
    PageHeat& heat = heat_[page_id];
    if (heat.votes.empty()) heat.votes.assign(num_hmcs_, 0);
    ++heat.votes[accessor];
    if (++heat.total < threshold_) return {};
    // Re-home onto the majority remote accessor (ties: lowest stack id) and
    // restart the page's counters from zero.
    HmcId best = 0;
    for (unsigned h = 1; h < num_hmcs_; ++h) {
      if (heat.votes[h] > heat.votes[best]) best = static_cast<HmcId>(h);
    }
    heat_.erase(page_id);
    if (best == old_home) return {};
    moved_[page_id] = best;
    ++pages_migrated_;
    migration_bytes_ += page_bytes_;
    // The mapping has flipped; the caller owes the fabric the actual copy.
    return {true, page_id, old_home, best};
  }

  bool volatile_mapping() const override { return true; }

 private:
  struct PageHeat {
    std::vector<std::uint32_t> votes;  // remote accesses per candidate stack
    std::uint32_t total = 0;           // since the page's last move
  };

  std::uint64_t seed_;
  unsigned num_hmcs_;
  std::uint32_t threshold_;
  std::uint64_t page_bytes_;
  std::unordered_map<std::uint64_t, HmcId> moved_;
  std::unordered_map<std::uint64_t, PageHeat> heat_;
};

}  // namespace

HmcId random_page_home(std::uint64_t page_id, std::uint64_t seed, unsigned num_hmcs) {
  const std::uint64_t h = mix64(page_id ^ seed);
  if (std::has_single_bit(num_hmcs)) {
    return static_cast<HmcId>(h & (num_hmcs - 1));  // historic bit-compatible path
  }
  // Lemire fixed-point reduction: maps the full 64-bit hash onto [0, N)
  // without the modulo bias a mask-and-wrap would introduce.
  return static_cast<HmcId>(
      (static_cast<unsigned __int128>(h) * static_cast<unsigned __int128>(num_hmcs)) >> 64);
}

const char* placement_policy_name(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kRandom: return "random";
    case PlacementPolicyKind::kFirstTouch: return "first_touch";
    case PlacementPolicyKind::kLocality: return "locality";
    case PlacementPolicyKind::kMigration: return "migration";
  }
  return "?";
}

bool parse_placement_policy(const std::string& text, PlacementPolicyKind* out) {
  if (text == "random") {
    *out = PlacementPolicyKind::kRandom;
  } else if (text == "first_touch" || text == "first-touch") {
    *out = PlacementPolicyKind::kFirstTouch;
  } else if (text == "locality") {
    *out = PlacementPolicyKind::kLocality;
  } else if (text == "migration") {
    *out = PlacementPolicyKind::kMigration;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<PlacementPolicy> make_placement_policy(const SystemConfig& cfg) {
  switch (cfg.placement.policy) {
    case PlacementPolicyKind::kRandom:
      return std::make_unique<RandomPlacement>(cfg.placement_seed, cfg.num_hmcs);
    case PlacementPolicyKind::kFirstTouch:
      return std::make_unique<FirstTouchPlacement>(cfg.num_hmcs);
    case PlacementPolicyKind::kLocality:
      return std::make_unique<LocalityPlacement>(cfg.placement.locality_profile,
                                                 cfg.placement_seed, cfg.num_hmcs);
    case PlacementPolicyKind::kMigration:
      return std::make_unique<MigrationPlacement>(cfg.placement_seed, cfg.num_hmcs,
                                                  cfg.placement.migration_threshold,
                                                  cfg.page_bytes);
  }
  throw std::invalid_argument("make_placement_policy: unknown policy kind");
}

}  // namespace sndp
