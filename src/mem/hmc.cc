#include "mem/hmc.h"

#include <stdexcept>

#include "energy/energy_model.h"
#include "mem/address_map.h"
#include "memfunc/global_memory.h"
#include "noc/net_port.h"
#include "obs/epoch_timeline.h"
#include "obs/latency.h"

namespace sndp {

Hmc::Hmc(HmcId id, const SystemContext& ctx) : id_(id), ctx_(ctx) {
  const SystemConfig& cfg = *ctx_.cfg;
  fast_forward_ = cfg.fast_forward;
  noc_latency_ps_ = 2 * tick_time_ps(1, cfg.clocks.dram_khz);  // ~3 ns switch traversal

  vaults_.reserve(cfg.hmc.num_vaults);
  for (unsigned v = 0; v < cfg.hmc.num_vaults; ++v) {
    vaults_.push_back(std::make_unique<VaultController>(
        cfg.hmc, cfg.clocks.dram_khz,
        [this](const DramRequest& req, TimePs done) { on_vault_complete(req, done); }));
    if (cfg.profile) vaults_.back()->enable_profile(ctx_.num_tenants());
  }
  vault_backlog_.resize(cfg.hmc.num_vaults);

  nsu_ = std::make_unique<Nsu>(
      id_, ctx_,
      /*send_network=*/[this](Packet&& p, TimePs now) { send_from_stack(std::move(p), now); },
      /*send_local_vault=*/
      [this](Packet&& p, TimePs now) {
        ctx_.energy->hmc_noc_bytes += p.size_bytes;
        enqueue_vault(std::move(p), now + noc_latency_ps_);
      });
}

bool Hmc::idle() const {
  if (!inflight_.empty() || !pending_copies_.empty()) return false;
  for (const auto& v : vaults_) {
    if (!v->idle()) return false;
  }
  for (const auto& b : vault_backlog_) {
    if (!b.empty()) return false;
  }
  return nsu_->idle();
}

std::uint64_t Hmc::total_activates() const {
  std::uint64_t n = 0;
  for (const auto& v : vaults_) n += v->activates;
  return n;
}
std::uint64_t Hmc::total_reads() const {
  std::uint64_t n = 0;
  for (const auto& v : vaults_) n += v->reads;
  return n;
}
std::uint64_t Hmc::total_writes() const {
  std::uint64_t n = 0;
  for (const auto& v : vaults_) n += v->writes;
  return n;
}

void Hmc::finalize(Cycle end_cycle) {
  for (auto& v : vaults_) v->finalize(end_cycle);
}

VaultCycleStack Hmc::vault_cycle_stack() const {
  VaultCycleStack agg;
  agg.init(ctx_.num_tenants());
  if (!ctx_.cfg->profile) return agg;
  for (const auto& v : vaults_) agg.accumulate(v->cycle_stack());
  return agg;
}

std::uint64_t Hmc::vault_counted_cycles() const {
  std::uint64_t n = 0;
  for (const auto& v : vaults_) n += v->counted_cycles();
  return n;
}

void Hmc::send_from_stack(Packet&& p, TimePs now) {
  p.src_node = static_cast<std::uint16_t>(id_);
  ctx_.energy->hmc_noc_bytes += p.size_bytes;  // logic layer -> I/O port
  ctx_.net->send(std::move(p), now);
}

TimePs Hmc::compute_internal_wake() const {
  TimePs w = kTimeNever;
  for (const auto& b : vault_backlog_) {
    if (!b.empty() && b.front_ready_ps() < w) w = b.front_ready_ps();
  }
  for (const auto& v : vaults_) {
    const TimePs t = v->next_work_ps(0);
    if (t < w) w = t;
  }
  return w;
}

TimePs Hmc::next_work_ps(TimePs /*now*/) {
  TimePs w = wake_internal_;
  const auto& rx = ctx_.net->rx(id_);
  if (!rx.empty() && rx.front_ready_ps() < w) w = rx.front_ready_ps();
  return w;
}

void Hmc::tick(Cycle cycle, TimePs now) {
  // Migration-counter sampling, BEFORE the fast-forward early-return: this
  // runs at every dram edge in either stepping mode, and migrations only
  // mutate later in a tick (vault completions), so the sampled value is the
  // boundary value regardless of which edges get skipped.
  if (timeline_ != nullptr && timeline_->migrations_due(now)) {
    timeline_->poll_migrations(now, ctx_.amap->policy().pages_migrated());
  }
  if (fast_forward_ && next_work_ps(now) > now) return;  // still asleep
  // Drain the network RX into vaults / the NSU.
  auto& rx = ctx_.net->rx(id_);
  while (rx.ready(now)) {
    Packet p = rx.pop();
    if (ctx_.latency != nullptr) ctx_.latency->queue_hop(p, now, "hmc_rx", id_);
    route_packet(std::move(p), now);
  }

  // Retry backlogged vault requests.
  for (unsigned v = 0; v < vault_backlog_.size(); ++v) {
    auto& backlog = vault_backlog_[v];
    while (backlog.ready(now) && vaults_[v]->can_accept()) {
      Packet p = backlog.pop();
      if (ctx_.latency != nullptr) ctx_.latency->queue_hop(p, now, "vault_queue", id_);
      const DramCoord coord = ctx_.amap->decode_at(p.line_addr, id_);
      const bool is_write = p.type == PacketType::kMemWrite ||
                            p.type == PacketType::kNsuWrite ||
                            p.type == PacketType::kPageCopyWrite;
      const bool page_copy = p.type == PacketType::kPageCopyRead ||
                             p.type == PacketType::kPageCopyWrite;
      const std::uint64_t token = next_token_++;
      vaults_[v]->enqueue(
          DramRequest{p.line_addr, is_write, token, coord, now, p.tenant, page_copy});
      inflight_.emplace(token, std::move(p));
    }
  }

  for (auto& v : vaults_) v->tick(cycle, now);

  // Maintained in both stepping modes: naive serial stepping never reads
  // it, but a naive *parallel* partition paces its windows on these hints.
  wake_internal_ = compute_internal_wake();
}

void Hmc::route_packet(Packet&& p, TimePs now) {
  ++packets_routed_;
  switch (p.type) {
    case PacketType::kMemRead:
    case PacketType::kMemWrite:
    case PacketType::kRdf:
    case PacketType::kNsuWrite:
      ctx_.energy->hmc_noc_bytes += p.size_bytes;
      enqueue_vault(std::move(p), now + noc_latency_ps_);
      break;
    case PacketType::kOfldCmd:
    case PacketType::kRdfResp:
    case PacketType::kWta:
    case PacketType::kNsuWriteAck:
      ctx_.energy->hmc_noc_bytes += p.size_bytes;
      if (ctx_.latency != nullptr) ctx_.latency->add_link(p, 0, noc_latency_ps_);
      nsu_->receive(std::move(p), now + noc_latency_ps_);
      break;
    case PacketType::kPageCopyRead:
      // A re-home triggered at a stack that no longer holds the page: the
      // lines live here, so the copy reads start here.
      ctx_.energy->hmc_noc_bytes += p.size_bytes;
      start_page_copy(p.line_addr / ctx_.amap->page_bytes(),
                      static_cast<HmcId>(p.target_nsu), now);
      break;
    case PacketType::kPageCopy: {
      // Bulk page arrival at the new home: write it back line-by-line
      // through the vaults, competing with demand traffic.
      ctx_.energy->hmc_noc_bytes += p.size_bytes;
      const unsigned line_bytes = ctx_.amap->line_bytes();
      const std::uint64_t page_bytes = ctx_.amap->page_bytes();
      for (std::uint64_t off = 0; off < page_bytes; off += line_bytes) {
        Packet wr;
        wr.type = PacketType::kPageCopyWrite;
        wr.line_addr = p.line_addr + off;
        wr.size_bytes = mem_write_req_bytes(line_bytes);
        enqueue_vault(std::move(wr), now + noc_latency_ps_);
      }
      break;
    }
    default:
      throw std::logic_error(std::string("Hmc: unexpected packet: ") +
                             packet_type_name(p.type));
  }
}

void Hmc::enqueue_vault(Packet&& p, TimePs now) {
  // Single-lookup contract: the packet was routed here, so decode against
  // this stack — the vault/bank/row split is stack-relative and must follow
  // the routing decision, not a second (possibly since-migrated) lookup.
  const DramCoord coord = ctx_.amap->decode_at(p.line_addr, id_);
  // Misrouting tripwire, only meaningful while the mapping cannot shift
  // between the sender's lookup and our arrival.
  if (!ctx_.amap->policy().volatile_mapping() &&
      ctx_.amap->hmc_of(p.line_addr) != id_) {
    throw std::logic_error("Hmc: packet for another stack");
  }
  // Both callers add exactly one intra-stack NoC traversal before `now`.
  if (ctx_.latency != nullptr) ctx_.latency->add_link(p, 0, noc_latency_ps_);
  auto& backlog = vault_backlog_.at(coord.vault);
  backlog.push(std::move(p), now);
  // The NSU's local-vault fast path lands here from another clock domain;
  // make sure a sleeping stack wakes for it.
  const TimePs ready = backlog.back_ready_ps();
  if (ready < wake_internal_) wake_internal_ = ready;
}

void Hmc::on_vault_complete(const DramRequest& req, TimePs done_ps) {
  auto it = inflight_.find(req.token);
  if (it == inflight_.end()) throw std::logic_error("Hmc: completion for unknown token");
  Packet p = std::move(it->second);
  inflight_.erase(it);
  const unsigned line_bytes = ctx_.amap->line_bytes();

  if (ctx_.latency != nullptr) {
    // Split vault residency into DRAM service (deterministic tCL/tBURST
    // approximation of the FR-FCFS service slot) and FR-FCFS queueing.
    const DramTiming& t = ctx_.cfg->hmc.timing;
    const TimePs service_ps = tick_time_ps(
        req.is_write ? t.tBURST : t.tCL + t.tBURST, ctx_.cfg->clocks.dram_khz);
    ctx_.latency->add_vault(p, req.enqueue_ps, done_ps, service_ps, id_);
  }

  switch (p.type) {
    case PacketType::kMemRead: {
      // Baseline line fetch: whole line back to the GPU.
      ++mem_reads_completed_;
      ctx_.energy->dram_read_bytes += line_bytes;
      ctx_.energy->hmc_noc_bytes += line_bytes;
      Packet resp;
      resp.type = PacketType::kMemReadResp;
      resp.line_addr = p.line_addr;
      resp.token = p.token;
      resp.oid = p.oid;
      resp.tenant = p.tenant;
      resp.dst_node = static_cast<std::uint16_t>(ctx_.net->gpu_node());
      resp.size_bytes = mem_read_resp_bytes();
      if (ctx_.latency != nullptr) ctx_.latency->transfer(p, resp);
      send_from_stack(std::move(resp), done_ps);
      break;
    }
    case PacketType::kMemWrite: {
      // Write-through store: data already applied functionally at the SM.
      ++mem_writes_completed_;
      ctx_.energy->dram_write_bytes += p.size_bytes - mem_write_req_bytes(0);
      if (ctx_.latency != nullptr) {
        ctx_.latency->finish(p, PathClass::kGpuWrite, done_ps, id_);
      }
      break;
    }
    case PacketType::kRdf: {
      // Read-and-forward: only the touched words travel to the target NSU.
      ++rdf_completed_;
      ctx_.energy->dram_read_bytes += line_bytes;
      Packet resp;
      resp.type = PacketType::kRdfResp;
      resp.oid = p.oid;
      resp.tenant = p.tenant;
      resp.line_addr = p.line_addr;
      resp.mask = p.mask;
      resp.expected_mask = p.expected_mask;
      resp.target_nsu = p.target_nsu;
      resp.mem_width = p.mem_width;
      resp.mem_f32 = p.mem_f32;
      resp.lane_data.assign(kWarpWidth, 0);
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (p.mask & (LaneMask{1} << lane)) {
          resp.lane_data[lane] =
              ctx_.gmem->load_reg(p.lane_addrs[lane], p.mem_width, p.mem_f32);
        }
      }
      resp.size_bytes = rdf_resp_packet_bytes(popcount_mask(p.mask), p.mem_width);
      if (ctx_.latency != nullptr) {
        // Local/remote is decided here, where the final target is known
        // even under the optimal-target-selection ablation.
        ctx_.latency->transfer(p, resp);
        ctx_.latency->set_path(resp, p.target_nsu == id_ ? PathClass::kRdfLocal
                                                         : PathClass::kRdfRemote);
      }
      if (p.target_nsu == id_) {
        ctx_.energy->hmc_noc_bytes += resp.size_bytes;
        if (ctx_.latency != nullptr) ctx_.latency->add_link(resp, 0, noc_latency_ps_);
        nsu_->receive(std::move(resp), done_ps + noc_latency_ps_);
      } else {
        // Remote forward: the consuming NSU pulls from a page homed here —
        // the migration policy's signal to move the page toward it.
        const PageMove mv = ctx_.amap->policy().note_remote_access(
            p.line_addr / ctx_.amap->page_bytes(), static_cast<HmcId>(p.target_nsu));
        resp.dst_node = p.target_nsu;
        send_from_stack(std::move(resp), done_ps);
        if (mv.moved) begin_page_copy(mv.page_id, mv.from, mv.to, done_ps);
      }
      break;
    }
    case PacketType::kNsuWrite: {
      // Apply the store functionally, ack the NSU, and invalidate any stale
      // copy in the GPU caches (§4.2).
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (p.mask & (LaneMask{1} << lane)) {
          ctx_.gmem->store_reg(p.lane_addrs[lane], p.lane_data[lane], p.mem_width, p.mem_f32);
        }
      }
      ++nsu_writes_completed_;
      ctx_.energy->dram_write_bytes += popcount_mask(p.mask) * p.mem_width;

      Packet ack;
      ack.type = PacketType::kNsuWriteAck;
      ack.oid = p.oid;
      ack.tenant = p.tenant;
      ack.size_bytes = small_packet_bytes();
      if (ctx_.latency != nullptr) ctx_.latency->transfer(p, ack);
      const unsigned origin = p.src_node;  // the NSU that issued the write
      if (origin == id_) {
        ctx_.energy->hmc_noc_bytes += ack.size_bytes;
        if (ctx_.latency != nullptr) ctx_.latency->add_link(ack, 0, noc_latency_ps_);
        nsu_->receive(std::move(ack), done_ps + noc_latency_ps_);
      } else {
        // Remote NSU write into a page homed here: same migration signal as
        // the RDF remote-forward path.
        const PageMove mv = ctx_.amap->policy().note_remote_access(
            p.line_addr / ctx_.amap->page_bytes(), static_cast<HmcId>(origin));
        ack.dst_node = static_cast<std::uint16_t>(origin);
        send_from_stack(std::move(ack), done_ps);
        if (mv.moved) begin_page_copy(mv.page_id, mv.from, mv.to, done_ps);
      }

      Packet inval;
      inval.type = PacketType::kCacheInval;
      inval.line_addr = p.line_addr;
      inval.tenant = p.tenant;
      inval.dst_node = static_cast<std::uint16_t>(ctx_.net->gpu_node());
      inval.size_bytes = inval_packet_bytes();
      send_from_stack(std::move(inval), done_ps);
      break;
    }
    case PacketType::kPageCopyRead: {
      // One line of a migrating page read at the old home; when the page is
      // fully up, one bulk packet carries it to the new home (route_packet
      // splits it back into vault writes there).
      ++page_copy_reads_completed_;
      ctx_.energy->dram_read_bytes += line_bytes;
      ctx_.energy->hmc_noc_bytes += line_bytes;
      auto pc = pending_copies_.find(p.token);
      if (pc == pending_copies_.end()) {
        throw std::logic_error("Hmc: page-copy read without a pending copy");
      }
      if (--pc->second.lines_left == 0) {
        Packet bulk;
        bulk.type = PacketType::kPageCopy;
        bulk.line_addr = pc->second.page_id * ctx_.amap->page_bytes();
        bulk.dst_node = static_cast<std::uint16_t>(pc->second.to);
        bulk.size_bytes = static_cast<std::uint32_t>(kPktHeaderBytes + kAddrBytes +
                                                     ctx_.amap->page_bytes());
        pending_copies_.erase(pc);
        send_from_stack(std::move(bulk), done_ps);
      }
      break;
    }
    case PacketType::kPageCopyWrite: {
      ++page_copy_writes_completed_;
      ctx_.energy->dram_write_bytes += line_bytes;
      break;
    }
    default:
      throw std::logic_error("Hmc: unexpected completed request type");
  }
}

void Hmc::begin_page_copy(std::uint64_t page_id, HmcId from, HmcId to, TimePs now) {
  if (from == id_) {
    start_page_copy(page_id, to, now);
    return;
  }
  // The threshold crossed on a stale in-flight access served here after the
  // page had already moved away: kick the copy off at the stack whose
  // vaults actually hold the lines.
  Packet req;
  req.type = PacketType::kPageCopyRead;
  req.line_addr = page_id * ctx_.amap->page_bytes();
  req.target_nsu = static_cast<std::uint8_t>(to);
  req.dst_node = static_cast<std::uint16_t>(from);
  req.size_bytes = small_packet_bytes();
  send_from_stack(std::move(req), now);
}

void Hmc::start_page_copy(std::uint64_t page_id, HmcId to, TimePs now) {
  const unsigned line_bytes = ctx_.amap->line_bytes();
  const std::uint64_t page_bytes = ctx_.amap->page_bytes();
  const std::uint64_t cookie = next_copy_++;
  pending_copies_.emplace(
      cookie, PageCopy{page_id, to, static_cast<unsigned>(page_bytes / line_bytes)});
  for (std::uint64_t off = 0; off < page_bytes; off += line_bytes) {
    Packet rd;
    rd.type = PacketType::kPageCopyRead;
    rd.line_addr = page_id * page_bytes + off;
    rd.token = cookie;
    rd.size_bytes = mem_read_req_bytes();
    ctx_.energy->hmc_noc_bytes += rd.size_bytes;
    enqueue_vault(std::move(rd), now + noc_latency_ps_);
  }
}

void Hmc::export_stats(StatSet& out, const std::string& prefix) const {
  Distribution qlat;
  for (const auto& v : vaults_) {
    if (v->queue_latency_ps.count() > 0) {
      // Merge by moments (min/max are approximate across vaults).
      qlat.record(v->queue_latency_ps.min());
      qlat.record(v->queue_latency_ps.max());
    }
  }
  double lat_sum = 0.0;
  std::uint64_t lat_n = 0;
  for (const auto& v : vaults_) {
    lat_sum += v->queue_latency_ps.sum();
    lat_n += v->queue_latency_ps.count();
  }
  out.set(prefix + ".qlat.mean", lat_n ? lat_sum / static_cast<double>(lat_n) : 0.0);
  out.set(prefix + ".qlat.max", qlat.max());
  out.set(prefix + ".activates", static_cast<double>(total_activates()));
  out.set(prefix + ".reads", static_cast<double>(total_reads()));
  out.set(prefix + ".writes", static_cast<double>(total_writes()));
  out.set(prefix + ".packets_routed", static_cast<double>(packets_routed_));
  out.set(prefix + ".mem_reads_completed", static_cast<double>(mem_reads_completed_));
  out.set(prefix + ".mem_writes_completed", static_cast<double>(mem_writes_completed_));
  out.set(prefix + ".rdf_completed", static_cast<double>(rdf_completed_));
  out.set(prefix + ".nsu_writes_completed", static_cast<double>(nsu_writes_completed_));
  out.set(prefix + ".page_copy_reads", static_cast<double>(page_copy_reads_completed_));
  out.set(prefix + ".page_copy_writes", static_cast<double>(page_copy_writes_completed_));
  nsu_->export_stats(out, prefix + ".nsu");
}

}  // namespace sndp
