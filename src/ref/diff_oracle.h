// Differential correctness oracle: timing simulator vs reference interpreter.
//
// The paper's central correctness claim (§3) is that partitioned execution
// is semantics-preserving — translation stays on the GPU, computation moves
// to the NSU, and the result is identical at any offload ratio and any data
// placement.  This module turns that claim into a checked property: for a
// workload, it runs the same initialized memory image through
//
//   (a) the scalar reference interpreter (src/ref/ref_interp.*), and
//   (b) the full timing simulator under a matrix of configurations
//       (baseline GPU-only, NDP at fixed static ratios, the dynamic
//       governor with and without cache-awareness, 1/2/4 HMC stacks),
//
// and asserts byte-identical output regions AND byte-identical full final
// memory images.  Any coalescer, cache, NoC, buffer, or NDP-codegen bug
// that corrupts a single byte of data fails the oracle, no matter how
// plausible the timing stats look.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "offload/analyzer.h"
#include "workloads/workload.h"

namespace sndp {

// One configuration under test.
struct OraclePoint {
  std::string label;
  SystemConfig cfg{};
  AnalyzerOptions analyzer{};
};

// The standing matrix: baseline, NDP at static offload ratios
// {0, 0.25, 0.5, 1.0}, dynamic governor with and without cache-awareness,
// stack counts {1, 2, 4}, the placement-policy spread, and parallel-in-time
// spot checks at 2 and 4 partitions.  `base` supplies everything else
// (clocks, cache geometry, seeds); its governor mode/ratio fields are
// overridden per point.
std::vector<OraclePoint> oracle_matrix(const SystemConfig& base);

// Outcome of one (workload, config) differential check.
struct DiffOutcome {
  std::string workload;
  std::string label;
  bool sim_completed = false;   // timing sim ran to completion (not valve/abort)
  bool sim_verified = false;    // workload host oracle on the sim image
  bool outputs_match = false;   // output_regions() byte-identical to reference
  bool image_matches = false;   // whole final memory byte-identical
  std::string detail;           // first mismatch / failure description

  bool ok() const { return sim_completed && sim_verified && outputs_match && image_matches; }
};

struct DiffReport {
  std::string workload;
  bool ref_completed = false;
  std::string ref_error;
  std::vector<DiffOutcome> outcomes;

  bool ok() const {
    if (!ref_completed) return false;
    for (const DiffOutcome& o : outcomes) {
      if (!o.ok()) return false;
    }
    return true;
  }
};

// Runs `workload_name` through the reference interpreter once and through
// the timing simulator once per point, comparing final memory images.
// Setup is performed exactly once, with the rng stream the Simulator
// itself would use for the first point, and the initial image is deep-
// copied per run — every execution sees identical inputs.
DiffReport diff_check_workload(const std::string& workload_name, ProblemScale scale,
                               const std::vector<OraclePoint>& points);

// Multi-tenant axis: set up all `workload_names` in one shared memory image
// (the exact per-tenant bases and setup seeds Simulator::run_tenants uses),
// replay each tenant's program INDEPENDENTLY through the reference
// interpreter — tenants never share state, so sequential replay is the
// semantic ground truth for concurrent execution — and compare against one
// concurrent timing-simulator run per point: per-tenant output regions and
// the whole final image must be byte-identical.  Locality-profile points
// are run without a profile (the auto-profile is per-kernel).
DiffReport diff_check_tenants(const std::vector<std::string>& workload_names,
                              ProblemScale scale, const std::vector<OraclePoint>& points);

// Formats a report as an aligned human-readable table (one line per point).
std::string to_string(const DiffReport& report);

}  // namespace sndp
