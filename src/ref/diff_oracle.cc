#include "ref/diff_oracle.h"

#include <cstdio>
#include <sstream>

#include "offload/codegen.h"
#include "ref/placement_profile.h"
#include "ref/ref_interp.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace sndp {

std::vector<OraclePoint> oracle_matrix(const SystemConfig& base) {
  std::vector<OraclePoint> points;
  auto add = [&](const std::string& label, OffloadMode mode, double ratio,
                 unsigned num_hmcs) {
    OraclePoint p;
    p.label = label;
    p.cfg = base;
    p.cfg.governor.mode = mode;
    p.cfg.governor.static_ratio = ratio;
    p.cfg.num_hmcs = num_hmcs;
    points.push_back(std::move(p));
  };
  add("baseline", OffloadMode::kOff, 1.0, base.num_hmcs);
  add("ndp@0.00", OffloadMode::kStaticRatio, 0.0, base.num_hmcs);
  add("ndp@0.25", OffloadMode::kStaticRatio, 0.25, base.num_hmcs);
  add("ndp@0.50", OffloadMode::kStaticRatio, 0.5, base.num_hmcs);
  add("ndp@1.00", OffloadMode::kStaticRatio, 1.0, base.num_hmcs);
  add("dyn", OffloadMode::kDynamic, 1.0, base.num_hmcs);
  add("dyn-cache", OffloadMode::kDynamicCache, 1.0, base.num_hmcs);
  // Data placement spread: the hypercube degenerates (1 stack), halves, or
  // uses the full base stack count — unrestricted placement must not change
  // a single result byte.
  add("ndp@1.00/1-stack", OffloadMode::kStaticRatio, 1.0, 1);
  add("ndp@1.00/2-stack", OffloadMode::kStaticRatio, 1.0, 2);
  add("ndp@1.00/4-stack", OffloadMode::kStaticRatio, 1.0, 4);
  // Placement-policy axis: every policy must be invisible to the memory
  // image — only timing and traffic may change.  Migration runs with an
  // aggressively low threshold so pages actually move mid-run.
  auto add_policy = [&](const std::string& label, PlacementPolicyKind kind) {
    OraclePoint p;
    p.label = label;
    p.cfg = base;
    p.cfg.governor.mode = OffloadMode::kStaticRatio;
    p.cfg.governor.static_ratio = 1.0;
    p.cfg.placement.policy = kind;
    points.push_back(std::move(p));
  };
  add_policy("ndp@1.00/first-touch", PlacementPolicyKind::kFirstTouch);
  add_policy("ndp@1.00/locality", PlacementPolicyKind::kLocality);
  add_policy("ndp@1.00/migration", PlacementPolicyKind::kMigration);
  points.back().cfg.placement.migration_threshold = 16;
  // Parallel-in-time spot checks: a sharded run must leave the same final
  // memory image serial execution does.  2 and 4 partitions under the
  // dynamic cache-aware governor (the configuration with the most
  // cross-partition traffic); stats-level bit-identity across all
  // workloads is gated separately in tests/test_simulator.cc.
  {
    OraclePoint p;
    p.label = "dyn-cache/2-part";
    p.cfg = base;
    p.cfg.governor.mode = OffloadMode::kDynamicCache;
    p.cfg.governor.static_ratio = 1.0;
    p.cfg.parallel_partitions = 2;
    points.push_back(p);
    p.label = "dyn-cache/4-part";
    p.cfg.parallel_partitions = 4;
    points.push_back(std::move(p));
  }
  return points;
}

DiffReport diff_check_workload(const std::string& workload_name, ProblemScale scale,
                               const std::vector<OraclePoint>& points) {
  DiffReport report;
  report.workload = workload_name;
  if (points.empty()) return report;

  // Setup once, with the same rng stream Simulator::run derives, so the
  // image under test is the image a normal run would see.
  auto wl = make_workload(workload_name, scale);
  GlobalMemory initial;
  MemoryAllocator alloc;
  Rng rng(points.front().cfg.placement_seed ^ 0xABCDEF);
  wl->setup(initial, alloc, rng);

  const std::vector<OutputRegion> regions = wl->output_regions();

  // Reference execution on a copy of the initial image.
  GlobalMemory ref_mem = initial;
  const RefResult ref = ref_run(wl->program(), wl->launch(), ref_mem);
  report.ref_completed = ref.completed;
  report.ref_error = ref.error;
  if (!ref.completed) return report;
  if (!wl->verify(ref_mem)) {
    report.ref_completed = false;
    report.ref_error = "reference image fails the workload's host oracle";
    return report;
  }

  for (const OraclePoint& point : points) {
    DiffOutcome out;
    out.workload = workload_name;
    out.label = point.label;

    GlobalMemory sim_mem = initial;
    try {
      const KernelImage image = analyze_and_generate(wl->program(), point.analyzer);
      SystemConfig cfg = point.cfg;
      // run_image() bypasses Simulator::run's auto-profiling, so a locality
      // point needs its profile built here, from the same pristine image.
      if (cfg.placement.policy == PlacementPolicyKind::kLocality &&
          cfg.placement.locality_profile == nullptr) {
        cfg.placement.locality_profile = build_placement_profile(
            wl->program(), wl->launch(), initial, cfg, point.analyzer);
      }
      Simulator sim(cfg);
      const RunResult r =
          sim.run_image(image, wl->launch(), sim_mem, workload_name + "/" + point.label);
      out.sim_completed = r.completed;
      if (!r.completed) {
        out.detail = r.aborted ? "aborted" : "hit the simulated-time safety valve";
        report.outcomes.push_back(std::move(out));
        continue;
      }
    } catch (const std::exception& e) {
      out.detail = std::string("simulator threw: ") + e.what();
      report.outcomes.push_back(std::move(out));
      continue;
    }
    out.sim_verified = wl->verify(sim_mem);

    char buf[160];
    Addr where = 0;
    out.outputs_match = true;
    for (const OutputRegion& region : regions) {
      if (!sim_mem.equal_range(ref_mem, region.base, region.bytes, &where)) {
        out.outputs_match = false;
        std::snprintf(buf, sizeof(buf),
                      "output region '%s' differs at 0x%llx (ref byte %02x, sim byte %02x)",
                      region.name.c_str(), static_cast<unsigned long long>(where),
                      static_cast<unsigned>(ref_mem.read(where, 1)),
                      static_cast<unsigned>(sim_mem.read(where, 1)));
        out.detail = buf;
        break;
      }
    }
    out.image_matches = sim_mem.equal_contents(ref_mem, &where);
    if (!out.image_matches && out.detail.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "memory image differs at 0x%llx (ref byte %02x, sim byte %02x)",
                    static_cast<unsigned long long>(where),
                    static_cast<unsigned>(ref_mem.read(where, 1)),
                    static_cast<unsigned>(sim_mem.read(where, 1)));
      out.detail = buf;
    }
    report.outcomes.push_back(std::move(out));
  }
  return report;
}

DiffReport diff_check_tenants(const std::vector<std::string>& workload_names,
                              ProblemScale scale, const std::vector<OraclePoint>& points) {
  DiffReport report;
  for (const std::string& n : workload_names) {
    report.workload += (report.workload.empty() ? "" : "+") + n;
  }
  if (points.empty() || workload_names.empty()) return report;

  // Shared-image setup, replicating Simulator::run_tenants exactly: one
  // allocator rounded to a fresh 16 MiB slice per tenant, tenant 0 on the
  // classic seed, later tenants on the perturbed stream.
  std::vector<std::unique_ptr<Workload>> wls;
  GlobalMemory initial;
  MemoryAllocator alloc;
  for (unsigned t = 0; t < workload_names.size(); ++t) {
    wls.push_back(make_workload(workload_names[t], scale));
    if (t > 0) alloc.alloc(0, kTenantBaseAlign);
    Rng rng(tenant_setup_seed(points.front().cfg.placement_seed, t));
    wls[t]->setup(initial, alloc, rng);
  }

  // Reference: each tenant's program replayed independently on the shared
  // image.  Address spaces are disjoint, so replay order is immaterial and
  // the result is the unique interference-free ground truth.
  GlobalMemory ref_mem = initial;
  for (unsigned t = 0; t < wls.size(); ++t) {
    const RefResult ref = ref_run(wls[t]->program(), wls[t]->launch(), ref_mem);
    if (!ref.completed) {
      report.ref_error = "tenant " + std::to_string(t) + ": " + ref.error;
      return report;
    }
    if (!wls[t]->verify(ref_mem)) {
      report.ref_error =
          "tenant " + std::to_string(t) + " reference image fails the host oracle";
      return report;
    }
  }
  report.ref_completed = true;

  for (const OraclePoint& point : points) {
    DiffOutcome out;
    out.workload = report.workload;
    out.label = point.label;

    GlobalMemory sim_mem = initial;
    try {
      std::vector<KernelImage> images;
      images.reserve(wls.size());
      for (const auto& wl : wls) {
        images.push_back(analyze_and_generate(wl->program(), point.analyzer));
      }
      std::vector<TenantJob> jobs;
      for (unsigned t = 0; t < wls.size(); ++t) {
        TenantJob job;
        job.image = &images[t];
        job.launch = wls[t]->launch();
        job.name = wls[t]->name();
        jobs.push_back(std::move(job));
      }
      Simulator sim(point.cfg);
      const RunResult r =
          sim.run_images(jobs, sim_mem, report.workload + "/" + point.label);
      out.sim_completed = r.completed;
      if (!r.completed) {
        out.detail = r.aborted ? "aborted" : "hit the simulated-time safety valve";
        report.outcomes.push_back(std::move(out));
        continue;
      }
    } catch (const std::exception& e) {
      out.detail = std::string("simulator threw: ") + e.what();
      report.outcomes.push_back(std::move(out));
      continue;
    }

    out.sim_verified = true;
    for (const auto& wl : wls) out.sim_verified = out.sim_verified && wl->verify(sim_mem);

    char buf[160];
    Addr where = 0;
    out.outputs_match = true;
    for (unsigned t = 0; t < wls.size() && out.outputs_match; ++t) {
      for (const OutputRegion& region : wls[t]->output_regions()) {
        if (!sim_mem.equal_range(ref_mem, region.base, region.bytes, &where)) {
          out.outputs_match = false;
          std::snprintf(buf, sizeof(buf),
                        "tenant %u region '%s' differs at 0x%llx (ref %02x, sim %02x)", t,
                        region.name.c_str(), static_cast<unsigned long long>(where),
                        static_cast<unsigned>(ref_mem.read(where, 1)),
                        static_cast<unsigned>(sim_mem.read(where, 1)));
          out.detail = buf;
          break;
        }
      }
    }
    out.image_matches = sim_mem.equal_contents(ref_mem, &where);
    if (!out.image_matches && out.detail.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "memory image differs at 0x%llx (ref byte %02x, sim byte %02x)",
                    static_cast<unsigned long long>(where),
                    static_cast<unsigned>(ref_mem.read(where, 1)),
                    static_cast<unsigned>(sim_mem.read(where, 1)));
      out.detail = buf;
    }
    report.outcomes.push_back(std::move(out));
  }
  return report;
}

std::string to_string(const DiffReport& report) {
  std::ostringstream os;
  if (!report.ref_completed) {
    os << report.workload << ": REFERENCE FAILED: " << report.ref_error << "\n";
    return os.str();
  }
  for (const DiffOutcome& o : report.outcomes) {
    char line[256];
    std::snprintf(line, sizeof(line), "%-8s %-18s %-4s%s%s\n", o.workload.c_str(),
                  o.label.c_str(), o.ok() ? "ok" : "FAIL",
                  o.detail.empty() ? "" : "  ", o.detail.c_str());
    os << line;
  }
  return os.str();
}

}  // namespace sndp
