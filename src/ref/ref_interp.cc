#include "ref/ref_interp.h"

#include <array>
#include <unordered_map>
#include <vector>

namespace sndp {

namespace {

enum class RefWarpState : std::uint8_t { kReady, kAtBarrier, kFinished };

struct RefWarp {
  unsigned pc = 0;
  LaneMask active = 0;
  RefWarpState state = RefWarpState::kReady;
  std::array<ThreadCtx, kWarpWidth> lanes{};

  LaneMask exec_mask(const Instr& in) const {
    if (in.guard_pred == kNoPred) return active;
    LaneMask m = 0;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(active & (LaneMask{1} << lane))) continue;
      if (lanes[lane].preds[static_cast<unsigned>(in.guard_pred)] == in.guard_sense) {
        m |= LaneMask{1} << lane;
      }
    }
    return m;
  }
};

// One CTA's interpreter state: its warps plus the private scratchpad.
struct RefCta {
  std::vector<RefWarp> warps;
  std::unordered_map<Addr, RegValue> shm;
  unsigned at_barrier = 0;
};

// Runs `warp` until it blocks (barrier), finishes, or exhausts `budget`.
// Returns false on a structural error (recorded in `err`).
bool run_warp(const Program& prog, RefCta& cta, RefWarp& w, GlobalMemory& mem,
              const RefOptions& opts, std::uint64_t warp_uid,
              std::uint64_t budget_left, std::uint64_t& instrs, std::string& err) {
  const std::vector<Instr>& code = prog.code();
  while (w.state == RefWarpState::kReady) {
    if (instrs >= budget_left) return true;  // budget exhausted; caller decides
    if (w.pc >= code.size()) {
      err = "pc ran off the end of the program";
      return false;
    }
    const Instr& in = code[w.pc];
    ++instrs;
    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kOfldBeg:
      case Opcode::kOfldEnd:
        ++w.pc;
        break;

      case Opcode::kBra: {
        const LaneMask lanes = w.exec_mask(in);
        if (lanes != 0 && lanes != w.active) {
          err = "divergent branch at pc " + std::to_string(w.pc);
          return false;
        }
        w.pc = lanes == 0 ? w.pc + 1 : static_cast<unsigned>(in.target);
        break;
      }

      case Opcode::kBar:
        w.state = RefWarpState::kAtBarrier;
        ++cta.at_barrier;
        break;

      case Opcode::kExit:
        w.state = RefWarpState::kFinished;
        break;

      case Opcode::kLd:
      case Opcode::kLdc: {
        const LaneMask lanes = w.exec_mask(in);
        std::array<Addr, kWarpWidth> addrs{};
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (!(lanes & (LaneMask{1} << lane))) continue;
          ThreadCtx& t = w.lanes[lane];
          addrs[lane] = effective_address(in, t);
          t.regs[in.dst] = mem.load_reg(addrs[lane], in.mem_width, in.mem_f32);
        }
        // LDC reads constant tables — not a placement-relevant access.
        if (opts.mem_observer && lanes != 0 && in.op == Opcode::kLd) {
          opts.mem_observer({w.pc, /*is_store=*/false, lanes, addrs.data(), warp_uid});
        }
        ++w.pc;
        break;
      }

      case Opcode::kSt: {
        const LaneMask lanes = w.exec_mask(in);
        std::array<Addr, kWarpWidth> addrs{};
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (!(lanes & (LaneMask{1} << lane))) continue;
          ThreadCtx& t = w.lanes[lane];
          addrs[lane] = effective_address(in, t);
          mem.store_reg(addrs[lane], t.regs[in.src[1]], in.mem_width, in.mem_f32);
        }
        if (opts.mem_observer && lanes != 0) {
          opts.mem_observer({w.pc, /*is_store=*/true, lanes, addrs.data(), warp_uid});
        }
        ++w.pc;
        break;
      }

      case Opcode::kShmLd: {
        const LaneMask lanes = w.exec_mask(in);
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (!(lanes & (LaneMask{1} << lane))) continue;
          ThreadCtx& t = w.lanes[lane];
          auto it = cta.shm.find(effective_address(in, t));
          t.regs[in.dst] = it == cta.shm.end() ? 0 : it->second;
        }
        ++w.pc;
        break;
      }

      case Opcode::kShmSt: {
        const LaneMask lanes = w.exec_mask(in);
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (!(lanes & (LaneMask{1} << lane))) continue;
          ThreadCtx& t = w.lanes[lane];
          cta.shm[effective_address(in, t)] = t.regs[in.src[1]];
        }
        ++w.pc;
        break;
      }

      default: {
        // ALU / SFU: per-lane architectural update.
        const LaneMask lanes = w.exec_mask(in);
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (lanes & (LaneMask{1} << lane)) execute_alu(in, w.lanes[lane]);
        }
        ++w.pc;
        break;
      }
    }
  }
  return true;
}

}  // namespace

RefResult ref_run(const Program& prog, const LaunchParams& launch, GlobalMemory& mem,
                  const RefOptions& opts) {
  RefResult result;
  prog.validate();

  for (unsigned cta_id = 0; cta_id < launch.num_ctas; ++cta_id) {
    RefCta cta;
    cta.warps.resize(launch.warps_per_cta());
    for (unsigned wi = 0; wi < cta.warps.size(); ++wi) {
      RefWarp& w = cta.warps[wi];
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        const unsigned tid_in_cta = wi * kWarpWidth + lane;
        if (tid_in_cta >= launch.cta_threads) break;
        w.active |= LaneMask{1} << lane;
        ThreadCtx& t = w.lanes[lane];
        t.regs[0] = static_cast<RegValue>(cta_id) * launch.cta_threads + tid_in_cta;
        t.regs[1] = launch.total_threads();
        t.regs[2] = cta_id;
        t.regs[3] = tid_in_cta;
      }
    }

    // Round-robin warps until every one finishes.  A full pass with no
    // progress and no barrier release is a deadlock.
    while (true) {
      bool all_finished = true;
      bool progressed = false;
      for (RefWarp& w : cta.warps) {
        if (w.state != RefWarpState::kReady) {
          all_finished = all_finished && w.state == RefWarpState::kFinished;
          continue;
        }
        all_finished = false;
        const std::uint64_t before = result.instrs;
        const std::uint64_t warp_uid =
            static_cast<std::uint64_t>(cta_id) * launch.warps_per_cta() +
            static_cast<std::uint64_t>(&w - cta.warps.data());
        if (!run_warp(prog, cta, w, mem, opts, warp_uid, opts.max_instrs, result.instrs,
                      result.error)) {
          return result;
        }
        progressed = progressed || result.instrs != before;
        if (result.instrs >= opts.max_instrs) {
          result.error = "instruction budget exhausted";
          return result;
        }
      }
      if (all_finished) break;

      // Barrier convergence (mirrors Sm::handle_barrier: all warps of the
      // CTA must arrive, finished warps never can).
      if (cta.at_barrier == cta.warps.size()) {
        cta.at_barrier = 0;
        for (RefWarp& w : cta.warps) {
          if (w.state == RefWarpState::kAtBarrier) {
            w.state = RefWarpState::kReady;
            ++w.pc;  // past BAR
          }
        }
        continue;
      }
      if (!progressed) {
        result.error = "barrier deadlock: a warp exited while siblings wait at BAR";
        return result;
      }
    }
  }

  result.completed = true;
  return result;
}

}  // namespace sndp
