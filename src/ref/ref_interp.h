// Functional reference interpreter for the sndp mini-ISA.
//
// A scalar, serial, architecture-free executor: no caches, no coalescing,
// no NoC, no NDP, no clocks — just the ISA's architectural semantics
// applied to a flat memory image.  It is the *oracle* side of the
// differential correctness harness (src/ref/diff_oracle.*): the paper's
// partitioned-execution mechanism is semantics-preserving, so the timing
// simulator must produce a byte-identical memory image at any offload
// ratio and any data placement.
//
// Semantics mirrored from the timing simulator (gpu/sm.cc):
//  * launch registers R0 = global tid, R1 = total threads, R2 = CTA id,
//    R3 = tid within the CTA;
//  * branches must be warp-uniform across live lanes (guard mask all-or-
//    nothing) — a divergent branch is reported as an error, exactly where
//    the SM throws;
//  * BAR is CTA-wide and releases only when every warp of the CTA (counting
//    finished warps as absent) reaches it; a warp that EXITs while siblings
//    wait at a barrier deadlocks the timing simulator, so the reference
//    reports it as an error instead of hanging;
//  * the scratchpad is a per-CTA word map keyed by byte address holding
//    whole register values (matching the SM's shm_ model: SHM.ST stores
//    the full 64-bit register, SHM.LD returns it or 0 when untouched);
//  * LDC reads global memory (small read-only tables);
//  * OFLD.BEG / OFLD.END are no-ops, so both original workload programs
//    and codegen-produced GPU images execute.
//
// Execution order: CTAs run serially in id order; within a CTA, warps run
// round-robin, each to its next barrier (or exit).  For the data-race-free
// kernels this project evaluates — and the fuzzer generates — the result
// is independent of any interleaving, which is what makes a serial
// reference a valid oracle for the massively-interleaved timing simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "isa/program.h"
#include "memfunc/global_memory.h"
#include "sim/context.h"

namespace sndp {

// One global-memory warp access (LD or ST — not LDC/SHM), reported to
// RefOptions::mem_observer.  `addrs` points at a kWarpWidth array; only
// lanes set in `lanes` are valid.  warp_uid is cta_id * warps_per_cta + the
// warp's index within the CTA — stable across the whole run.
struct RefMemAccess {
  unsigned pc = 0;
  bool is_store = false;
  LaneMask lanes = 0;
  const Addr* addrs = nullptr;
  std::uint64_t warp_uid = 0;
};

struct RefOptions {
  // Total dynamic instruction budget across all threads; exceeded means
  // "did not terminate" (completed == false), the reference's equivalent
  // of the simulator's simulated-time safety valve.
  std::uint64_t max_instrs = 200'000'000;
  // When set, called once per executed LD/ST with the per-lane effective
  // addresses (the placement profiler's feed; see ref/placement_profile.*).
  std::function<void(const RefMemAccess&)> mem_observer;
};

struct RefResult {
  bool completed = false;           // ran every CTA to EXIT within budget
  std::uint64_t instrs = 0;         // dynamic warp-instructions executed
  std::string error;                // non-empty: structural failure (divergent
                                    // branch, barrier deadlock, bad opcode)
};

// Executes `prog` for the whole grid against `mem`, mutating it in place.
RefResult ref_run(const Program& prog, const LaunchParams& launch, GlobalMemory& mem,
                  const RefOptions& opts = {});

}  // namespace sndp
