// Locality-aware placement profiling pre-pass (feeds PlacementPolicyKind::
// kLocality).
//
// Runs the reference interpreter over a COPY of the launch-time memory
// image with the LD/ST observer attached, replays the SM's §4.1.1 target
// selection per offload-block instance (majority page-home vote of the
// instance's first memory access, under the random hash the real run would
// start from), and credits every page the instance touches to that target
// stack.  The profile's final answer places each page on the stack whose
// NSU accumulated the most lane-access votes — i.e. where the data's
// consumers actually live, instead of a random stack.
//
// The pre-pass is purely functional (no timing), deterministic, and leaves
// the caller's memory untouched, so running it before the timed simulation
// is free of side effects.
#pragma once

#include <memory>

#include "common/config.h"
#include "mem/placement.h"
#include "memfunc/global_memory.h"
#include "offload/analyzer.h"
#include "sim/context.h"

namespace sndp {

std::shared_ptr<const PlacementProfile> build_placement_profile(
    const Program& prog, const LaunchParams& launch, const GlobalMemory& initial,
    const SystemConfig& cfg, const AnalyzerOptions& analyzer_opts = {});

}  // namespace sndp
