#include "ref/placement_profile.h"

#include <unordered_map>
#include <vector>

#include "ref/ref_interp.h"

namespace sndp {
namespace {

// Per-warp instance tracking: which accepted block (if any) the warp's pc
// currently falls in, and the §4.1.1 target its current trip through that
// block voted for.
struct WarpProfileState {
  int block = -1;        // index into the accepted-block list, -1 = outside
  unsigned last_pc = 0;  // previous observed access pc (re-entry detection)
  HmcId target = 0;
  bool target_set = false;
};

}  // namespace

std::shared_ptr<const PlacementProfile> build_placement_profile(
    const Program& prog, const LaunchParams& launch, const GlobalMemory& initial,
    const SystemConfig& cfg, const AnalyzerOptions& analyzer_opts) {
  auto profile = std::make_shared<PlacementProfile>();

  const AnalysisResult analysis = analyze(prog, analyzer_opts);
  if (analysis.accepted.empty()) return profile;  // nothing offloads: no votes

  const std::uint64_t page_bytes = cfg.page_bytes;
  const std::uint64_t seed = cfg.placement_seed;
  const unsigned num_hmcs = cfg.num_hmcs;

  // pc -> accepted-block index, for O(1) observer dispatch.
  std::unordered_map<unsigned, int> block_of_pc;
  for (std::size_t b = 0; b < analysis.accepted.size(); ++b) {
    const BlockCandidate& c = analysis.accepted[b];
    for (unsigned pc = c.begin; pc < c.end; ++pc) {
      block_of_pc.emplace(pc, static_cast<int>(b));
    }
  }

  // votes[page][stack] — lane accesses credited to the instance's target.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> votes;
  std::unordered_map<std::uint64_t, WarpProfileState> warps;

  RefOptions opts;
  opts.mem_observer = [&](const RefMemAccess& a) {
    const auto bit = block_of_pc.find(a.pc);
    if (bit == block_of_pc.end()) return;  // access outside any offload block

    WarpProfileState& w = warps[a.warp_uid];
    // New instance: different block, or a loop brought the warp back to (or
    // before) its previous access in the same block.
    if (w.block != bit->second || a.pc <= w.last_pc) {
      w.block = bit->second;
      w.target_set = false;
    }
    w.last_pc = a.pc;

    if (!w.target_set) {
      // §4.1.1 target selection replayed under the random mapping the real
      // run starts from: majority page-home of the first access's lanes,
      // ties to the lowest stack (matching Sm's votes[h] > votes[best]).
      std::vector<unsigned> tv(num_hmcs, 0);
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (!(a.lanes & (LaneMask{1} << lane))) continue;
        ++tv[random_page_home(a.addrs[lane] / page_bytes, seed, num_hmcs)];
      }
      unsigned best = 0;
      for (unsigned h = 1; h < num_hmcs; ++h) {
        if (tv[h] > tv[best]) best = h;
      }
      w.target = static_cast<HmcId>(best);
      w.target_set = true;
    }

    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(a.lanes & (LaneMask{1} << lane))) continue;
      auto& pv = votes[a.addrs[lane] / page_bytes];
      if (pv.empty()) pv.assign(num_hmcs, 0);
      ++pv[w.target];
      ++profile->votes;
    }
  };

  GlobalMemory scratch = initial;  // the pre-pass must not disturb the run
  ref_run(prog, launch, scratch, opts);

  for (const auto& [page, pv] : votes) {
    unsigned best = 0;
    for (unsigned h = 1; h < num_hmcs; ++h) {
      if (pv[h] > pv[best]) best = h;
    }
    profile->home.emplace(page, static_cast<HmcId>(best));
  }
  profile->pages_profiled = profile->home.size();
  return profile;
}

}  // namespace sndp
