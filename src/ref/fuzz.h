// Property-based NDP-equivalence fuzzing.
//
// Generates random well-formed mini-ISA kernels — mixes of strided loads,
// indirect (data-dependent) loads, divergent predicated operations, stores,
// integer/float ALU chains, and an optional warp-uniform loop — plus random
// system configurations, and cross-checks the timing simulator against the
// reference interpreter byte-for-byte.  Failing cases are shrunk to a
// minimal op list and dumped to a reproducer file that can be replayed.
//
// Generation invariants (so that both executors are comparable):
//  * every address is masked into a power-of-two array, so kernels never
//    touch memory outside their arrays;
//  * branches are warp-uniform (loop counters come from immediates);
//    divergence is expressed with predication, like the evaluated kernels;
//  * integer operands stay small (masked), so no signed overflow (clean
//    under UBSan); float values stay in [0, 2) plus whatever ALU chains
//    produce — NaN/Inf propagation is fine because both sides run the very
//    same execute_alu();
//  * every thread stores only to its own slots, so kernels are data-race-
//    free and results are interleaving-independent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "isa/program.h"
#include "memfunc/global_memory.h"
#include "sim/context.h"
#include "workloads/workload.h"

namespace sndp {

// One generator step.  Each op appends a few instructions to the kernel
// body; removing any subset still yields a well-formed kernel (that is
// what makes shrinking trivial).
struct FuzzOp {
  enum class Kind : std::uint8_t {
    kStridedLoad,    // r = A[(gtid * stride + offset) & mask]
    kIndirectLoad,   // r = B[I[(gtid + offset) & mask]]  (data-dependent addr)
    kGuardedLoad,    // predicated strided load (divergent lanes)
    kFloatAlu,       // facc = facc <op> r  (FADD/FSUB/FMUL/FMIN/FMAX/FFMA)
    kIntAlu,         // iacc = iacc <op> (r & 0xFFFF)  (IADD/ISUB/XOR/AND/OR/IMIN/IMAX)
    kStore,          // OUT2[op_slot * total + gtid] = facc
    kGuardedStore,   // predicated variant of kStore (divergent lanes)
  };
  Kind kind = Kind::kFloatAlu;
  std::uint32_t a = 0;  // stride / alu-op selector
  std::uint32_t b = 0;  // offset / immediate salt
  std::uint32_t c = 0;  // predicate compare value (divergence shape)
};

struct FuzzSpec {
  std::uint64_t seed = 0;    // generation seed (also salts the input data)
  LaunchParams launch{64, 2};
  unsigned loop_trips = 0;   // 0: straight-line; N: uniform loop over the body
  std::vector<FuzzOp> ops;

  // Config shape, applied over SystemConfig::small_test().
  OffloadMode mode = OffloadMode::kAlways;
  double static_ratio = 1.0;
  unsigned num_hmcs = 4;
  PlacementPolicyKind placement = PlacementPolicyKind::kRandom;
  unsigned migration_threshold = 64;  // only meaningful for kMigration
  unsigned partitions = 1;   // parallel-in-time shards (1 = serial)
  unsigned tenants = 1;      // concurrent copies of the kernel (1 = classic)
  unsigned arbiter = 0;      // TenantArbiter as int (tenants > 1 only)

  // Operator axis (src/workloads/ops): when non-empty, the case runs this
  // operator-library workload ("GEMM"/"SPMV"/"REDUCE"/"ATTN") at the tile
  // config `op_variant` selects instead of the generated kernel.  The op
  // list / launch / loop / tenant fields are ignored for such cases — the
  // operator brings its own kernel and launch geometry.
  std::string op_workload;
  unsigned op_variant = 0;

  std::string to_text() const;                           // reproducer format
  static std::optional<FuzzSpec> from_text(const std::string& text);
};

// Fixed data-array geometry of every fuzz kernel (power-of-two element
// counts so index masking is a single AND).
inline constexpr std::uint64_t kFuzzElems = 1024;

// Address-space stride between tenants.  Every tenant's arrays live at
// the classic bases plus tenant * stride; the whole single-tenant layout
// fits well below the stride, so tenant slices never overlap.
inline constexpr Addr kFuzzTenantStride = 0x100000;

// Derives a random spec from `seed` (pure function of the seed).  The
// tenant axis is drawn LAST, so every pre-tenant seed keeps the exact
// kernel/config shape it had before the axis existed.
FuzzSpec generate_spec(std::uint64_t seed);

// Builds the kernel program for a spec.  Deterministic.  `tenant` shifts
// every array base by tenant * kFuzzTenantStride; tenant 0 is the classic
// single-kernel program byte-for-byte.
Program build_fuzz_program(const FuzzSpec& spec, unsigned tenant = 0);

// Populates the input arrays for a spec (pure function of spec.seed).
// Covers every tenant's slice; each tenant's data is salted with its id so
// cross-tenant address confusion changes observable bytes.
void init_fuzz_memory(const FuzzSpec& spec, GlobalMemory& mem);

// The SystemConfig a spec runs under.
SystemConfig fuzz_config(const FuzzSpec& spec);

// Builds the operator-library workload an operator-mode spec selects:
// `variant` (mod 4) picks among hand-chosen tile/size configs per operator,
// covering accept and reject analyzer outcomes.  Throws on unknown names.
std::unique_ptr<Workload> make_fuzz_operator(const std::string& name, unsigned variant);

// Runs one differential case: reference vs timing simulator on identical
// images.  Returns std::nullopt when the images are byte-identical, or a
// human-readable mismatch description.
std::optional<std::string> run_fuzz_case(const FuzzSpec& spec);

// Greedy delta-debugging over spec.ops (then loop removal and launch
// shrinking): returns the smallest spec that still fails.
FuzzSpec shrink_fuzz_case(const FuzzSpec& spec);

// Writes seed + spec + disassembly + failure detail to `path`.  Returns
// false on I/O failure.
bool write_fuzz_reproducer(const std::string& path, const FuzzSpec& spec,
                           const std::string& detail);

}  // namespace sndp
