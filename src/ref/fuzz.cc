#include "ref/fuzz.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "offload/codegen.h"
#include "ref/placement_profile.h"
#include "ref/ref_interp.h"
#include "sim/simulator.h"
#include "workloads/ops/ops.h"
#include "workloads/registry.h"
#include "workloads/wl_util.h"

namespace sndp {

namespace {

// Fixed memory layout: power-of-two input arrays, write-only output arrays.
constexpr Addr kBaseA = 0x10000;    // f64[kFuzzElems]
constexpr Addr kBaseB = 0x20000;    // f64[kFuzzElems]
constexpr Addr kBaseI = 0x30000;    // u64[kFuzzElems], values in [0, kFuzzElems)
constexpr Addr kBaseOut = 0x40000;  // accumulators: 2 * total_threads * 8
constexpr Addr kBaseOut2 = 0x60000; // per-store-op slots: n_stores * total * 8

// Register conventions (R0-R3 are the launch registers).
constexpr unsigned kLoopReg = 4;
constexpr unsigned kFaccReg = 5;
constexpr unsigned kIaccReg = 6;
constexpr unsigned kBaseRegA = 16, kBaseRegB = 17, kBaseRegI = 18;
constexpr unsigned kBaseRegOut = 19, kBaseRegOut2 = 20;
constexpr unsigned kScratchFirst = 21, kScratchCount = 7;
constexpr unsigned kLoopPred = 0, kLoadPred = 1, kStorePred = 2;

constexpr std::uint64_t kIdxMask = kFuzzElems - 1;

}  // namespace

FuzzSpec generate_spec(std::uint64_t seed) {
  Rng rng(seed ^ 0xF022DEC0DEull);
  FuzzSpec spec;
  spec.seed = seed;

  const unsigned threads[] = {32, 48, 64, 96, 128};
  spec.launch.cta_threads = threads[rng.next_below(5)];
  spec.launch.num_ctas = 1 + static_cast<unsigned>(rng.next_below(4));
  spec.loop_trips = rng.bernoulli(0.5) ? 1 + static_cast<unsigned>(rng.next_below(4)) : 0;

  switch (rng.next_below(6)) {
    case 0: spec.mode = OffloadMode::kOff; break;
    case 1: spec.mode = OffloadMode::kDynamic; break;
    case 2: spec.mode = OffloadMode::kDynamicCache; break;
    case 3:
      spec.mode = OffloadMode::kStaticRatio;
      spec.static_ratio = 0.25 + 0.25 * static_cast<double>(rng.next_below(3));
      break;
    default: spec.mode = OffloadMode::kAlways; break;
  }
  const unsigned hmcs[] = {1, 2, 4};
  spec.num_hmcs = hmcs[rng.next_below(3)];
  // Placement axis: half the cases stay on the default random hash; the
  // rest spread across the alternate policies, with migration biased toward
  // storm thresholds (lots of mid-run re-homing) to stress pinned lookups.
  switch (rng.next_below(8)) {
    case 0: spec.placement = PlacementPolicyKind::kFirstTouch; break;
    case 1: spec.placement = PlacementPolicyKind::kLocality; break;
    case 2:
    case 3:
      spec.placement = PlacementPolicyKind::kMigration;
      spec.migration_threshold = 1 + static_cast<unsigned>(rng.next_below(32));
      break;
    default: spec.placement = PlacementPolicyKind::kRandom; break;
  }

  const unsigned n_ops = 3 + static_cast<unsigned>(rng.next_below(14));
  for (unsigned i = 0; i < n_ops; ++i) {
    FuzzOp op;
    const std::uint64_t k = rng.next_below(100);
    if (k < 25) {
      op.kind = FuzzOp::Kind::kStridedLoad;
    } else if (k < 40) {
      op.kind = FuzzOp::Kind::kIndirectLoad;
    } else if (k < 50) {
      op.kind = FuzzOp::Kind::kGuardedLoad;
    } else if (k < 70) {
      op.kind = FuzzOp::Kind::kFloatAlu;
    } else if (k < 85) {
      op.kind = FuzzOp::Kind::kIntAlu;
    } else if (k < 95) {
      op.kind = FuzzOp::Kind::kStore;
    } else {
      op.kind = FuzzOp::Kind::kGuardedStore;
    }
    op.a = rng.next_u32();
    op.b = rng.next_u32();
    op.c = 1 + static_cast<std::uint32_t>(rng.next_below(kWarpWidth - 1));
    spec.ops.push_back(op);
  }

  // Parallel-in-time axis, drawn last so pre-partition seeds keep their
  // shape.  Mutating placements (first-touch, migration) fall back to
  // serial anyway, so only shard the policies that actually parallelize —
  // the run must still be byte-identical to the reference.
  if ((spec.placement == PlacementPolicyKind::kRandom ||
       spec.placement == PlacementPolicyKind::kLocality) &&
      rng.bernoulli(0.5)) {
    spec.partitions = rng.bernoulli(0.5) ? 4 : 2;
  }

  // Tenant axis, drawn last of all so pre-tenant seeds keep their shape.
  // A quarter of the cases run 2-3 concurrent copies of the kernel in
  // disjoint address slices, under a random arbiter policy.
  if (rng.bernoulli(0.25)) {
    spec.tenants = 2 + static_cast<unsigned>(rng.next_below(2));
    spec.arbiter = static_cast<unsigned>(rng.next_below(3));
  }

  // Operator axis, drawn after everything else so pre-operator seeds keep
  // their shape.  A fifth of the cases swap the generated kernel for an
  // operator-library workload (GEMM/SpMV/reduction/attention) at a random
  // tile config, reusing the config axes above — real address patterns and
  // guarded epilogues the synthetic op soup cannot produce.
  if (rng.bernoulli(0.2)) {
    const auto& names = operator_names();
    spec.op_workload = names[rng.next_below(names.size())];
    spec.op_variant = static_cast<unsigned>(rng.next_below(4));
  }
  return spec;
}

Program build_fuzz_program(const FuzzSpec& spec, unsigned tenant) {
  ProgramBuilder pb;
  const unsigned total = spec.launch.total_threads();
  const Addr toff = static_cast<Addr>(tenant) * kFuzzTenantStride;

  pb.movi(kBaseRegA, static_cast<std::int64_t>(kBaseA + toff))
      .movi(kBaseRegB, static_cast<std::int64_t>(kBaseB + toff))
      .movi(kBaseRegI, static_cast<std::int64_t>(kBaseI + toff))
      .movi(kBaseRegOut, static_cast<std::int64_t>(kBaseOut + toff))
      .movi(kBaseRegOut2, static_cast<std::int64_t>(kBaseOut2 + toff))
      .movi(kFaccReg, 0)      // facc = +0.0
      .mov(kIaccReg, 0)       // iacc starts as the thread id
      .movi(kLoopReg, 0)
      .label("body");

  unsigned scratch = 0;
  auto next_scratch = [&]() {
    const unsigned r = kScratchFirst + scratch;
    scratch = (scratch + 1) % kScratchCount;
    return r;
  };
  unsigned store_slot = 0;

  for (const FuzzOp& op : spec.ops) {
    const unsigned r = next_scratch();
    switch (op.kind) {
      case FuzzOp::Kind::kStridedLoad: {
        const auto stride = static_cast<std::int64_t>(1 + (op.a & 63));
        const bool f32 = (op.a & 0x100) != 0;
        // idx = (gtid * stride + loop + offset) & mask; addr = A + idx * w.
        pb.madi(r, 0, stride, kLoopReg)
            .alui(Opcode::kIAdd, r, r, static_cast<std::int64_t>(op.b & kIdxMask))
            .alui(Opcode::kAnd, r, r, static_cast<std::int64_t>(kIdxMask))
            .madi(r, r, f32 ? 4 : 8, kBaseRegA)
            .ld(r, r, 0, f32 ? 4 : 8, f32)
            .alu(Opcode::kFAdd, kFaccReg, kFaccReg, r);
        break;
      }
      case FuzzOp::Kind::kIndirectLoad: {
        // idx = (gtid + loop + offset) & mask; v = I[idx]; r = B[v].
        pb.alu(Opcode::kIAdd, r, 0, kLoopReg)
            .alui(Opcode::kIAdd, r, r, static_cast<std::int64_t>(op.b & kIdxMask))
            .alui(Opcode::kAnd, r, r, static_cast<std::int64_t>(kIdxMask))
            .madi(r, r, 8, kBaseRegI)
            .ld(r, r)
            .madi(r, r, 8, kBaseRegB)
            .ld(r, r)
            .alu(Opcode::kFAdd, kFaccReg, kFaccReg, r);
        break;
      }
      case FuzzOp::Kind::kGuardedLoad: {
        const auto stride = static_cast<std::int64_t>(1 + (op.a & 31));
        // Divergent: only lanes with tid-in-CTA % warp < c load and fold.
        pb.alui(Opcode::kAnd, r, 3, kWarpWidth - 1)
            .isetpi(kLoadPred, CmpOp::kLt, r, static_cast<std::int64_t>(op.c))
            .madi(r, 0, stride, kLoopReg)
            .alui(Opcode::kAnd, r, r, static_cast<std::int64_t>(kIdxMask))
            .madi(r, r, 8, kBaseRegA)
            .pred(kLoadPred)
            .ld(r, r)
            .pred(kLoadPred)
            .alu(Opcode::kFAdd, kFaccReg, kFaccReg, r);
        break;
      }
      case FuzzOp::Kind::kFloatAlu: {
        static constexpr Opcode kOps[] = {Opcode::kFAdd, Opcode::kFSub, Opcode::kFMul,
                                          Opcode::kFMin, Opcode::kFMax};
        pb.movi(r, static_cast<std::int64_t>(1 + (op.b & 31)))
            .unary(Opcode::kI2F, r, r);
        if ((op.a & 7) == 5) {
          pb.fma(kFaccReg, kFaccReg, r, kFaccReg);
        } else {
          pb.alu(kOps[op.a % 5], kFaccReg, kFaccReg, r);
        }
        break;
      }
      case FuzzOp::Kind::kIntAlu: {
        static constexpr Opcode kOps[] = {Opcode::kIAdd, Opcode::kISub, Opcode::kIMul,
                                          Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,
                                          Opcode::kIMin, Opcode::kIMax};
        pb.alui(kOps[op.a % 8], kIaccReg, kIaccReg,
                static_cast<std::int64_t>(op.b & 0xFFFF))
            .alui(Opcode::kAnd, kIaccReg, kIaccReg, 0xFFFFF);
        break;
      }
      case FuzzOp::Kind::kStore: {
        const auto off = static_cast<std::int64_t>(store_slot++ * total * 8);
        pb.madi(r, 0, 8, kBaseRegOut2)
            .st(r, (op.a & 1) ? kIaccReg : kFaccReg, off);
        break;
      }
      case FuzzOp::Kind::kGuardedStore: {
        const auto off = static_cast<std::int64_t>(store_slot++ * total * 8);
        pb.alui(Opcode::kAnd, r, 3, kWarpWidth - 1)
            .isetpi(kStorePred, CmpOp::kGe, r, static_cast<std::int64_t>(op.c))
            .madi(r, 0, 8, kBaseRegOut2)
            .pred(kStorePred)
            .st(r, (op.a & 1) ? kIaccReg : kFaccReg, off);
        break;
      }
    }
  }

  if (spec.loop_trips > 0) {
    pb.alui(Opcode::kIAdd, kLoopReg, kLoopReg, 1)
        .isetpi(kLoopPred, CmpOp::kLt, kLoopReg,
                static_cast<std::int64_t>(spec.loop_trips))
        .pred(kLoopPred)
        .bra("body");
  }

  // Epilogue (never shrunk away): persist both accumulators.
  const unsigned r = next_scratch();
  pb.madi(r, 0, 8, kBaseRegOut)
      .st(r, kFaccReg)
      .st(r, kIaccReg, static_cast<std::int64_t>(spec.launch.total_threads()) * 8)
      .exit();
  return pb.build();
}

void init_fuzz_memory(const FuzzSpec& spec, GlobalMemory& mem) {
  // Tenant 0's salt is zero, so single-tenant images are byte-identical to
  // the pre-tenant layout.  Later tenants get distinct data: if the fabric
  // ever routes one tenant's traffic into another's slice, bytes differ.
  for (unsigned t = 0; t < std::max(1u, spec.tenants); ++t) {
    const Addr toff = static_cast<Addr>(t) * kFuzzTenantStride;
    const std::uint64_t salt = static_cast<std::uint64_t>(t) << 40;
    for (std::uint64_t i = 0; i < kFuzzElems; ++i) {
      mem.write_f64(kBaseA + toff + 8 * i, wl::value(i, spec.seed ^ 0xA ^ salt));
      mem.write_f64(kBaseB + toff + 8 * i, wl::value(i, spec.seed ^ 0xB ^ salt) * 2.0);
      mem.write_u64(kBaseI + toff + 8 * i,
                    wl::index(i, kFuzzElems, spec.seed ^ 0x1 ^ salt));
    }
  }
}

SystemConfig fuzz_config(const FuzzSpec& spec) {
  SystemConfig cfg = SystemConfig::small_test();
  cfg.governor.mode = spec.mode;
  cfg.governor.static_ratio = spec.static_ratio;
  cfg.governor.epoch_cycles = 500;  // several epochs even in short runs
  cfg.num_hmcs = spec.num_hmcs;
  cfg.placement_seed = 0x5EED ^ spec.seed;
  cfg.placement.policy = spec.placement;
  cfg.placement.migration_threshold = spec.migration_threshold;
  cfg.parallel_partitions = spec.partitions;
  if (spec.tenants > 1) {
    cfg.tenancy.arbiter = static_cast<TenantArbiter>(spec.arbiter % 3);
  }
  return cfg;
}

std::unique_ptr<Workload> make_fuzz_operator(const std::string& name, unsigned variant) {
  const unsigned v = variant % 4;
  // Variants chosen to straddle the analyzer's accept/reject boundary
  // (GEMM tile_k=1 and REDUCE unroll<8 score non-positive and run on the
  // GPU; the rest offload) and to vary indirection depth and masking.
  if (name == "GEMM") {
    static constexpr GemmConfig kV[] = {
        {16, 16, 16, 2}, {16, 16, 16, 1}, {8, 16, 32, 8}, {24, 8, 16, 4}};
    return std::make_unique<GemmOperator>(ProblemScale::kTiny, kV[v]);
  }
  if (name == "SPMV") {
    static constexpr SpmvConfig kV[] = {
        {128, 2, 64}, {256, 4, 128}, {64, 8, 32}, {512, 3, 256}};
    return std::make_unique<SpmvOperator>(ProblemScale::kTiny, kV[v]);
  }
  if (name == "REDUCE") {
    static constexpr ReduceConfig kV[] = {
        {128, 8, 2, false}, {64, 16, 4, true}, {256, 4, 4, false}, {64, 8, 8, true}};
    return std::make_unique<ReduceOperator>(ProblemScale::kTiny, kV[v]);
  }
  if (name == "ATTN") {
    static constexpr AttnConfig kV[] = {
        {64, 4, 32, true}, {64, 2, 32, false}, {128, 8, 64, true}, {64, 4, 16, false}};
    return std::make_unique<AttnOperator>(ProblemScale::kTiny, kV[v]);
  }
  throw std::invalid_argument("make_fuzz_operator: unknown operator " + name);
}

namespace {

// Operator-mode differential case: the operator brings its own kernel,
// launch, and host verify(); the spec contributes the config axes.  Runs
// single-tenant regardless of the tenant axis (operators join tenant mixes
// through the diff oracle and test_operators instead).
std::optional<std::string> run_operator_case(const FuzzSpec& spec) {
  std::unique_ptr<Workload> wl;
  GlobalMemory initial;
  try {
    wl = make_fuzz_operator(spec.op_workload, spec.op_variant);
    MemoryAllocator alloc;
    Rng rng(spec.seed ^ 0x0Bul);
    wl->setup(initial, alloc, rng);
  } catch (const std::exception& e) {
    return std::string("operator setup failed: ") + e.what();
  }

  GlobalMemory ref_mem = initial;
  const RefResult ref = ref_run(wl->program(), wl->launch(), ref_mem);
  if (!ref.completed) {
    return "reference failed: " + (ref.error.empty() ? "budget exhausted" : ref.error);
  }

  GlobalMemory sim_mem = initial;
  try {
    SystemConfig cfg = fuzz_config(spec);
    if (cfg.placement.policy == PlacementPolicyKind::kLocality) {
      cfg.placement.locality_profile =
          build_placement_profile(wl->program(), wl->launch(), initial, cfg);
    }
    const KernelImage image = analyze_and_generate(wl->program());
    Simulator sim(cfg);
    const RunResult r = sim.run_image(image, wl->launch(), sim_mem, spec.op_workload);
    if (!r.completed) {
      return std::string("simulator did not complete: ") +
             (r.aborted ? "aborted" : "hit the simulated-time safety valve");
    }
  } catch (const std::exception& e) {
    return std::string("simulator threw: ") + e.what();
  }

  if (!wl->verify(sim_mem)) return "operator host verify failed on the sim image";
  Addr where = 0;
  if (!sim_mem.equal_contents(ref_mem, &where)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "memory mismatch at 0x%llx: ref byte %02x, sim byte %02x",
                  static_cast<unsigned long long>(where),
                  static_cast<unsigned>(ref_mem.read(where, 1)),
                  static_cast<unsigned>(sim_mem.read(where, 1)));
    return std::string(buf);
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> run_fuzz_case(const FuzzSpec& spec) {
  if (!spec.op_workload.empty()) return run_operator_case(spec);
  const unsigned tenants = std::max(1u, spec.tenants);
  std::vector<Program> progs;
  try {
    for (unsigned t = 0; t < tenants; ++t) progs.push_back(build_fuzz_program(spec, t));
  } catch (const std::exception& e) {
    return std::string("program build failed: ") + e.what();
  }

  GlobalMemory initial;
  init_fuzz_memory(spec, initial);

  // Reference: each tenant's program replayed independently — disjoint
  // slices make sequential replay the ground truth for concurrent runs.
  GlobalMemory ref_mem = initial;
  for (unsigned t = 0; t < tenants; ++t) {
    const RefResult ref = ref_run(progs[t], spec.launch, ref_mem);
    if (!ref.completed) {
      return "tenant " + std::to_string(t) + " reference failed: " +
             (ref.error.empty() ? "budget exhausted" : ref.error);
    }
  }

  GlobalMemory sim_mem = initial;
  try {
    SystemConfig cfg = fuzz_config(spec);
    // run_image() bypasses Simulator::run's auto-profiling; locality cases
    // build their profile here from the same pristine image (single-tenant
    // only — the profile is per-kernel, so tenant mixes run unprofiled).
    if (cfg.placement.policy == PlacementPolicyKind::kLocality && tenants == 1) {
      cfg.placement.locality_profile =
          build_placement_profile(progs[0], spec.launch, initial, cfg);
    }
    std::vector<KernelImage> images;
    images.reserve(tenants);
    for (const Program& p : progs) images.push_back(analyze_and_generate(p));
    Simulator sim(cfg);
    RunResult r;
    if (tenants == 1) {
      r = sim.run_image(images[0], spec.launch, sim_mem, "fuzz");
    } else {
      std::vector<TenantJob> jobs;
      for (unsigned t = 0; t < tenants; ++t) {
        TenantJob job;
        job.image = &images[t];
        job.launch = spec.launch;
        job.name = "fuzz-t" + std::to_string(t);
        // Give the weighted/strict arbiters distinct knobs to act on.
        job.weight = 1.0 + t;
        job.priority = t;
        jobs.push_back(std::move(job));
      }
      r = sim.run_images(jobs, sim_mem, "fuzz");
    }
    if (!r.completed) {
      return std::string("simulator did not complete: ") +
             (r.aborted ? "aborted" : "hit the simulated-time safety valve");
    }
  } catch (const std::exception& e) {
    return std::string("simulator threw: ") + e.what();
  }

  Addr where = 0;
  if (!sim_mem.equal_contents(ref_mem, &where)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "memory mismatch at 0x%llx: ref byte %02x, sim byte %02x",
                  static_cast<unsigned long long>(where),
                  static_cast<unsigned>(ref_mem.read(where, 1)),
                  static_cast<unsigned>(sim_mem.read(where, 1)));
    return std::string(buf);
  }
  return std::nullopt;
}

FuzzSpec shrink_fuzz_case(const FuzzSpec& spec) {
  FuzzSpec cur = spec;
  unsigned budget = 200;  // bound on differential re-runs during shrinking
  auto still_fails = [&](const FuzzSpec& candidate) {
    if (budget == 0) return false;
    --budget;
    return run_fuzz_case(candidate).has_value();
  };

  // Greedy delta debugging over the op list: halves first, then singles.
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    for (std::size_t chunk = std::max<std::size_t>(cur.ops.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (std::size_t start = 0; start + chunk <= cur.ops.size();) {
        FuzzSpec candidate = cur;
        candidate.ops.erase(candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
                            candidate.ops.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        if (still_fails(candidate)) {
          cur = std::move(candidate);
          changed = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }

  // Structural simplifications, kept only if the failure persists.
  // Tenants first: a mix that still fails single-tenant is a classic bug
  // and every later shrink gets cheaper; otherwise walk the count down
  // toward the smallest failing mix.
  while (cur.tenants > 1 && budget > 0) {
    FuzzSpec candidate = cur;
    candidate.tenants = 1;
    if (still_fails(candidate)) {
      cur = std::move(candidate);
      break;
    }
    candidate = cur;
    candidate.tenants = cur.tenants - 1;
    if (!still_fails(candidate)) break;
    cur = std::move(candidate);
  }
  // Operator cases: try the default tile config before the kernel-shape
  // shrinks (which are no-ops for them — the operator brings its own
  // kernel, so the op-list pass above already emptied the unused list).
  if (!cur.op_workload.empty() && cur.op_variant != 0) {
    FuzzSpec candidate = cur;
    candidate.op_variant = 0;
    if (still_fails(candidate)) cur = std::move(candidate);
  }
  if (cur.loop_trips > 0) {
    FuzzSpec candidate = cur;
    candidate.loop_trips = 0;
    if (still_fails(candidate)) cur = std::move(candidate);
  }
  if (cur.launch.num_ctas > 1) {
    FuzzSpec candidate = cur;
    candidate.launch.num_ctas = 1;
    if (still_fails(candidate)) cur = std::move(candidate);
  }
  if (cur.launch.cta_threads > kWarpWidth) {
    FuzzSpec candidate = cur;
    candidate.launch.cta_threads = kWarpWidth;
    if (still_fails(candidate)) cur = std::move(candidate);
  }
  return cur;
}

std::string FuzzSpec::to_text() const {
  std::ostringstream os;
  os << "sndp-fuzz-repro-v1\n";
  os << "seed " << seed << "\n";
  os << "launch " << launch.cta_threads << " " << launch.num_ctas << "\n";
  os << "loop " << loop_trips << "\n";
  os << "mode " << static_cast<int>(mode) << " " << static_ratio << "\n";
  os << "hmcs " << num_hmcs << "\n";
  os << "placement " << static_cast<int>(placement) << " " << migration_threshold
     << "\n";
  os << "partitions " << partitions << "\n";
  os << "tenants " << tenants << " " << arbiter << "\n";
  if (!op_workload.empty()) os << "opwl " << op_workload << " " << op_variant << "\n";
  for (const FuzzOp& op : ops) {
    os << "op " << static_cast<int>(op.kind) << " " << op.a << " " << op.b << " " << op.c
       << "\n";
  }
  os << "end\n";
  return os.str();
}

std::optional<FuzzSpec> FuzzSpec::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "sndp-fuzz-repro-v1") return std::nullopt;
  FuzzSpec spec;
  spec.ops.clear();
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") return spec;
    if (key == "seed") {
      ls >> spec.seed;
    } else if (key == "launch") {
      ls >> spec.launch.cta_threads >> spec.launch.num_ctas;
    } else if (key == "loop") {
      ls >> spec.loop_trips;
    } else if (key == "mode") {
      int m = 0;
      ls >> m >> spec.static_ratio;
      spec.mode = static_cast<OffloadMode>(m);
    } else if (key == "hmcs") {
      ls >> spec.num_hmcs;
    } else if (key == "placement") {
      // Optional (absent in pre-placement reproducers, which default to
      // the random policy those runs actually used).
      int kind = 0;
      ls >> kind >> spec.migration_threshold;
      spec.placement = static_cast<PlacementPolicyKind>(kind);
    } else if (key == "partitions") {
      // Optional (absent in pre-parallel reproducers, which ran serial).
      ls >> spec.partitions;
    } else if (key == "tenants") {
      // Optional (absent in pre-tenant reproducers, which ran one kernel).
      ls >> spec.tenants >> spec.arbiter;
    } else if (key == "opwl") {
      // Optional (absent in pre-operator reproducers, which ran the
      // generated kernel).
      ls >> spec.op_workload >> spec.op_variant;
    } else if (key == "op") {
      int kind = 0;
      FuzzOp op;
      ls >> kind >> op.a >> op.b >> op.c;
      op.kind = static_cast<FuzzOp::Kind>(kind);
      spec.ops.push_back(op);
    } else if (!key.empty() && key[0] != '#') {
      return std::nullopt;  // unknown directive: refuse to guess
    }
    if (ls.fail()) return std::nullopt;
  }
  return std::nullopt;  // no `end` marker
}

bool write_fuzz_reproducer(const std::string& path, const FuzzSpec& spec,
                           const std::string& detail) {
  std::ofstream out(path);
  if (!out) return false;
  out << spec.to_text();
  out << "# detail: " << detail << "\n";
  out << "# replay: SNDP_FUZZ_REPRO=<this file> ./sndp_fuzz_tests\n";
  out << "# disassembly:\n";
  std::string disasm;
  if (spec.op_workload.empty()) {
    disasm = build_fuzz_program(spec).disassemble();
  } else {
    try {
      auto wl = make_fuzz_operator(spec.op_workload, spec.op_variant);
      GlobalMemory mem;
      MemoryAllocator alloc;
      Rng rng(spec.seed ^ 0x0Bul);
      wl->setup(mem, alloc, rng);
      disasm = wl->program().disassemble();
    } catch (const std::exception& e) {
      disasm = std::string("(operator setup failed: ") + e.what() + ")";
    }
  }
  std::istringstream dis(disasm);
  std::string line;
  while (std::getline(dis, line)) out << "#   " << line << "\n";
  return static_cast<bool>(out);
}

}  // namespace sndp
