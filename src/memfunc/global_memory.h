// Functional backing store for the simulated physical address space.
//
// The simulator is functional as well as timing-accurate: loads return real
// data, the NSU computes on real register values, and stores mutate this
// store — so every workload's output can be checked against a host oracle
// regardless of which execution path (GPU or partitioned NDP) produced it.
//
// Storage is sparse: 64 KiB frames allocated on first touch, so a 32 GiB
// address space costs only what the workload touches.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sndp {

class GlobalMemory {
 public:
  static constexpr std::uint64_t kFrameBytes = 64 * 1024;

  GlobalMemory() = default;
  GlobalMemory(GlobalMemory&& other) noexcept : frames_(std::move(other.frames_)) {}
  GlobalMemory& operator=(GlobalMemory&& other) noexcept {
    if (this != &other) frames_ = std::move(other.frames_);
    return *this;
  }
  // Deep copy: snapshot the whole address space (e.g., to run the same
  // initialized memory image under several configurations).
  GlobalMemory(const GlobalMemory& other);
  GlobalMemory& operator=(const GlobalMemory& other);

  // Raw access; crosses frame boundaries correctly.  width in [1, 8].
  std::uint64_t read(Addr addr, unsigned width) const;
  void write(Addr addr, std::uint64_t value, unsigned width);

  // Typed helpers.
  std::uint64_t read_u64(Addr a) const { return read(a, 8); }
  std::uint32_t read_u32(Addr a) const { return static_cast<std::uint32_t>(read(a, 4)); }
  double read_f64(Addr a) const;
  float read_f32(Addr a) const;
  void write_u64(Addr a, std::uint64_t v) { write(a, v, 8); }
  void write_u32(Addr a, std::uint32_t v) { write(a, v, 4); }
  void write_f64(Addr a, double v);
  void write_f32(Addr a, float v);

  // Register-value load/store honoring the ISA's mem_width / mem_f32
  // semantics (float32 in memory <-> double in registers).
  RegValue load_reg(Addr a, unsigned width, bool f32) const;
  void store_reg(Addr a, RegValue v, unsigned width, bool f32);

  std::size_t frames_allocated() const { return frames_.size(); }
  std::uint64_t bytes_allocated() const { return frames_.size() * kFrameBytes; }

  // Concurrent mode: guard the frame table with a reader/writer lock so
  // partitions on different threads can fault frames in simultaneously
  // (the lazy insert in frame_for_write can rehash the table under a
  // concurrent lookup).  Frame *contents* are not guarded — the simulated
  // machine's memory model allows racing accesses to the same bytes, and
  // the parallel scheduler's horizon windows keep timing deterministic
  // regardless of which thread's write lands (identity tests are the
  // oracle).  Off by default: the serial path pays one predictable branch.
  void set_concurrent(bool on) { concurrent_ = on; }

  // Byte-exact comparison of an address range against another image.
  // Returns true when every byte matches; otherwise writes the first
  // differing address to `first_diff` (if non-null) and returns false.
  bool equal_range(const GlobalMemory& other, Addr base, std::uint64_t bytes,
                   Addr* first_diff = nullptr) const;

  // Byte-exact comparison of the whole address space (the union of both
  // images' allocated frames; an absent frame compares as zeros).
  bool equal_contents(const GlobalMemory& other, Addr* first_diff = nullptr) const;

 private:
  const std::uint8_t* frame_for_read(std::uint64_t frame_id) const;
  std::uint8_t* frame_for_write(std::uint64_t frame_id);

  std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> frames_;
  mutable std::shared_mutex frames_mu_;
  bool concurrent_ = false;
  static const std::uint8_t kZeroFrame[kFrameBytes];
};

// Bump allocator carving arrays out of the simulated address space.
// Allocations are padded to a requested alignment (default: 128 B line).
class MemoryAllocator {
 public:
  explicit MemoryAllocator(Addr base = 0x10000, unsigned alignment = 128)
      : next_(base), alignment_(alignment) {}

  Addr alloc(std::uint64_t bytes);
  Addr alloc(std::uint64_t bytes, unsigned alignment);

  Addr high_water() const { return next_; }

 private:
  Addr next_;
  unsigned alignment_;
};

}  // namespace sndp
