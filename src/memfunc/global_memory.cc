#include "memfunc/global_memory.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "isa/isa.h"

namespace sndp {

const std::uint8_t GlobalMemory::kZeroFrame[GlobalMemory::kFrameBytes] = {};

GlobalMemory::GlobalMemory(const GlobalMemory& other) { *this = other; }

GlobalMemory& GlobalMemory::operator=(const GlobalMemory& other) {
  if (this == &other) return *this;
  frames_.clear();
  frames_.reserve(other.frames_.size());
  for (const auto& [id, frame] : other.frames_) {
    auto copy = std::make_unique<std::uint8_t[]>(kFrameBytes);
    std::memcpy(copy.get(), frame.get(), kFrameBytes);
    frames_.emplace(id, std::move(copy));
  }
  return *this;
}

const std::uint8_t* GlobalMemory::frame_for_read(std::uint64_t frame_id) const {
  if (concurrent_) {
    std::shared_lock lock(frames_mu_);
    auto it = frames_.find(frame_id);
    // Frame storage is stable once inserted; only the table itself needs
    // the lock (a concurrent first-touch insert may rehash it).
    return it == frames_.end() ? kZeroFrame : it->second.get();
  }
  auto it = frames_.find(frame_id);
  return it == frames_.end() ? kZeroFrame : it->second.get();
}

std::uint8_t* GlobalMemory::frame_for_write(std::uint64_t frame_id) {
  if (concurrent_) {
    {
      std::shared_lock lock(frames_mu_);
      auto it = frames_.find(frame_id);
      if (it != frames_.end()) return it->second.get();
    }
    std::unique_lock lock(frames_mu_);
    auto& slot = frames_[frame_id];
    if (!slot) {
      slot = std::make_unique<std::uint8_t[]>(kFrameBytes);
      std::memset(slot.get(), 0, kFrameBytes);
    }
    return slot.get();
  }
  auto& slot = frames_[frame_id];
  if (!slot) {
    slot = std::make_unique<std::uint8_t[]>(kFrameBytes);
    std::memset(slot.get(), 0, kFrameBytes);
  }
  return slot.get();
}

std::uint64_t GlobalMemory::read(Addr addr, unsigned width) const {
  if (width == 0 || width > 8) throw std::invalid_argument("GlobalMemory::read: bad width");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    const Addr a = addr + i;
    const std::uint8_t byte = frame_for_read(a / kFrameBytes)[a % kFrameBytes];
    value |= static_cast<std::uint64_t>(byte) << (8 * i);
  }
  return value;
}

void GlobalMemory::write(Addr addr, std::uint64_t value, unsigned width) {
  if (width == 0 || width > 8) throw std::invalid_argument("GlobalMemory::write: bad width");
  for (unsigned i = 0; i < width; ++i) {
    const Addr a = addr + i;
    frame_for_write(a / kFrameBytes)[a % kFrameBytes] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

double GlobalMemory::read_f64(Addr a) const { return bits_to_f64(read(a, 8)); }

float GlobalMemory::read_f32(Addr a) const {
  const std::uint32_t bits = read_u32(a);
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

void GlobalMemory::write_f64(Addr a, double v) { write(a, f64_to_bits(v), 8); }

void GlobalMemory::write_f32(Addr a, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u32(a, bits);
}

RegValue GlobalMemory::load_reg(Addr a, unsigned width, bool f32) const {
  if (f32) return f64_to_bits(static_cast<double>(read_f32(a)));
  return read(a, width);  // zero-extended
}

void GlobalMemory::store_reg(Addr a, RegValue v, unsigned width, bool f32) {
  if (f32) {
    write_f32(a, static_cast<float>(bits_to_f64(v)));
  } else {
    write(a, v, width);
  }
}

bool GlobalMemory::equal_range(const GlobalMemory& other, Addr base, std::uint64_t bytes,
                               Addr* first_diff) const {
  Addr a = base;
  std::uint64_t left = bytes;
  while (left > 0) {
    const std::uint64_t frame_id = a / kFrameBytes;
    const std::uint64_t off = a % kFrameBytes;
    const std::uint64_t chunk = std::min<std::uint64_t>(left, kFrameBytes - off);
    const std::uint8_t* mine = frame_for_read(frame_id) + off;
    const std::uint8_t* theirs = other.frame_for_read(frame_id) + off;
    if (std::memcmp(mine, theirs, chunk) != 0) {
      for (std::uint64_t i = 0; i < chunk; ++i) {
        if (mine[i] != theirs[i]) {
          if (first_diff != nullptr) *first_diff = a + i;
          return false;
        }
      }
    }
    a += chunk;
    left -= chunk;
  }
  return true;
}

bool GlobalMemory::equal_contents(const GlobalMemory& other, Addr* first_diff) const {
  // Visit the union of allocated frames; compare each against the other
  // image's frame (or zeros).  Pick the lowest differing address within a
  // frame so diagnostics are stable regardless of hash order.
  bool equal = true;
  Addr lowest = ~Addr{0};
  auto visit = [&](std::uint64_t frame_id) {
    const std::uint8_t* mine = frame_for_read(frame_id);
    const std::uint8_t* theirs = other.frame_for_read(frame_id);
    if (mine == theirs || std::memcmp(mine, theirs, kFrameBytes) == 0) return;
    for (std::uint64_t i = 0; i < kFrameBytes; ++i) {
      if (mine[i] != theirs[i]) {
        equal = false;
        lowest = std::min(lowest, frame_id * kFrameBytes + i);
        return;
      }
    }
  };
  for (const auto& [id, frame] : frames_) visit(id);
  for (const auto& [id, frame] : other.frames_) {
    if (frames_.find(id) == frames_.end()) visit(id);
  }
  if (!equal && first_diff != nullptr) *first_diff = lowest;
  return equal;
}

Addr MemoryAllocator::alloc(std::uint64_t bytes) { return alloc(bytes, alignment_); }

Addr MemoryAllocator::alloc(std::uint64_t bytes, unsigned alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    throw std::invalid_argument("MemoryAllocator: alignment must be a power of two");
  }
  next_ = (next_ + alignment - 1) & ~static_cast<Addr>(alignment - 1);
  const Addr base = next_;
  next_ += bytes;
  return base;
}

}  // namespace sndp
