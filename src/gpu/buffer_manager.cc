#include "gpu/buffer_manager.h"

#include <stdexcept>

namespace sndp {

NdpBufferManager::NdpBufferManager(const NdpBufferConfig& cfg, unsigned num_hmcs) : cfg_(cfg) {
  credits_.resize(num_hmcs, Credits{cfg.nsu_cmd_entries, cfg.nsu_read_data_entries,
                                    cfg.nsu_write_addr_entries});
}

bool NdpBufferManager::try_reserve(unsigned hmc, unsigned rd, unsigned wta) {
  Credits& c = credits_.at(hmc);
  if (c.cmd < 1 || c.rd < rd || c.wta < wta) {
    ++denials_;
    if (c.cmd < 1) ++denials_cmd_;
    if (c.rd < rd) ++denials_rd_;
    if (c.wta < wta) ++denials_wta_;
    return false;
  }
  c.cmd -= 1;
  c.rd -= rd;
  c.wta -= wta;
  ++grants_;
  return true;
}

void NdpBufferManager::release(unsigned hmc, unsigned cmd, unsigned rd, unsigned wta) {
  Credits& c = credits_.at(hmc);
  c.cmd += cmd;
  c.rd += rd;
  c.wta += wta;
  if (c.cmd > cfg_.nsu_cmd_entries || c.rd > cfg_.nsu_read_data_entries ||
      c.wta > cfg_.nsu_write_addr_entries) {
    throw std::logic_error("NdpBufferManager: credit overflow (double release)");
  }
}

bool NdpBufferManager::all_idle() const {
  for (const Credits& c : credits_) {
    if (c.cmd != cfg_.nsu_cmd_entries || c.rd != cfg_.nsu_read_data_entries ||
        c.wta != cfg_.nsu_write_addr_entries) {
      return false;
    }
  }
  return true;
}

void NdpBufferManager::export_stats(StatSet& out) const {
  out.set("bufmgr.grants", static_cast<double>(grants_));
  out.set("bufmgr.denials", static_cast<double>(denials_));
  out.set("bufmgr.denials_cmd", static_cast<double>(denials_cmd_));
  out.set("bufmgr.denials_rd", static_cast<double>(denials_rd_));
  out.set("bufmgr.denials_wta", static_cast<double>(denials_wta_));
}

}  // namespace sndp
