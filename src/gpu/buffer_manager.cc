#include "gpu/buffer_manager.h"

#include <cmath>
#include <stdexcept>

namespace sndp {

NdpBufferManager::NdpBufferManager(const NdpBufferConfig& cfg, unsigned num_hmcs) : cfg_(cfg) {
  credits_.resize(num_hmcs, Credits{cfg.nsu_cmd_entries, cfg.nsu_read_data_entries,
                                    cfg.nsu_write_addr_entries});
}

void NdpBufferManager::set_tenancy(unsigned num_tenants, double credit_share) {
  if (credit_share <= 0.0 || num_tenants == 0) {
    tenant_use_.clear();
    return;
  }
  const double share = credit_share > 1.0 ? 1.0 : credit_share;
  quota_rd_ = static_cast<unsigned>(
      std::ceil(share * static_cast<double>(cfg_.nsu_read_data_entries)));
  quota_wta_ = static_cast<unsigned>(
      std::ceil(share * static_cast<double>(cfg_.nsu_write_addr_entries)));
  tenant_use_.assign(credits_.size(), std::vector<TenantUse>(num_tenants));
}

bool NdpBufferManager::try_reserve(unsigned hmc, unsigned rd, unsigned wta, unsigned tenant) {
  Credits& c = credits_.at(hmc);
  if (c.cmd < 1 || c.rd < rd || c.wta < wta) {
    ++denials_;
    if (c.cmd < 1) ++denials_cmd_;
    if (c.rd < rd) ++denials_rd_;
    if (c.wta < wta) ++denials_wta_;
    return false;
  }
  if (!tenant_use_.empty()) {
    TenantUse& u = tenant_use_.at(hmc).at(tenant);
    if (u.rd + rd > quota_rd_ || u.wta + wta > quota_wta_) {
      ++denials_;
      ++denials_qos_;
      return false;
    }
    u.rd += rd;
    u.wta += wta;
  }
  c.cmd -= 1;
  c.rd -= rd;
  c.wta -= wta;
  ++grants_;
  return true;
}

void NdpBufferManager::release(unsigned hmc, unsigned cmd, unsigned rd, unsigned wta,
                               unsigned tenant) {
  Credits& c = credits_.at(hmc);
  c.cmd += cmd;
  c.rd += rd;
  c.wta += wta;
  if (c.cmd > cfg_.nsu_cmd_entries || c.rd > cfg_.nsu_read_data_entries ||
      c.wta > cfg_.nsu_write_addr_entries) {
    throw std::logic_error("NdpBufferManager: credit overflow (double release)");
  }
  if (!tenant_use_.empty()) {
    TenantUse& u = tenant_use_.at(hmc).at(tenant);
    if (u.rd < rd || u.wta < wta) {
      throw std::logic_error("NdpBufferManager: tenant credit underflow");
    }
    u.rd -= rd;
    u.wta -= wta;
  }
}

bool NdpBufferManager::all_idle() const {
  for (const Credits& c : credits_) {
    if (c.cmd != cfg_.nsu_cmd_entries || c.rd != cfg_.nsu_read_data_entries ||
        c.wta != cfg_.nsu_write_addr_entries) {
      return false;
    }
  }
  return true;
}

void NdpBufferManager::export_stats(StatSet& out) const {
  out.set("bufmgr.grants", static_cast<double>(grants_));
  out.set("bufmgr.denials", static_cast<double>(denials_));
  out.set("bufmgr.denials_cmd", static_cast<double>(denials_cmd_));
  out.set("bufmgr.denials_rd", static_cast<double>(denials_rd_));
  out.set("bufmgr.denials_wta", static_cast<double>(denials_wta_));
  if (!tenant_use_.empty()) {
    out.set("bufmgr.denials_qos", static_cast<double>(denials_qos_));
  }
}

}  // namespace sndp
