// Per-warp scoreboard: tracks when each register / predicate becomes
// readable.  In-order issue with variable-latency completion (ALU pipelines
// and memory) hazards are enforced by requiring all sources AND the
// destination to be ready at issue (RAW + WAW + WAR for in-order reads).
#pragma once

#include <array>

#include "common/types.h"
#include "isa/isa.h"

namespace sndp {

// Cycle-stack profiler classification of a timed producer: which machine
// level the consumer's dep-stall cycles are waiting on.  Pending loads are
// classified retroactively by the fill's serve class instead.
enum class DepSource : std::uint8_t {
  kPipe,  // ALU / SFU pipeline latency
  kL1,    // L1 hit / shared-memory / constant access latency
};

class Scoreboard {
 public:
  // A register still waiting on a memory fill has no known ready cycle.
  static constexpr Cycle kPendingLoad = ~Cycle{0};

  void reset() {
    reg_ready_.fill(0);
    pred_ready_.fill(0);
    reg_src_.fill(static_cast<std::uint8_t>(DepSource::kPipe));
  }

  bool reg_ready(unsigned r, Cycle now) const { return reg_ready_[r] <= now; }
  bool pred_ready(unsigned p, Cycle now) const { return pred_ready_[p] <= now; }

  // Can `instr` issue at `now` without a data hazard?
  bool can_issue(const Instr& instr, Cycle now) const {
    bool ok = true;
    for_each_src_reg(instr, [&](std::uint8_t r) { ok = ok && reg_ready(r, now); });
    if (instr.writes_reg() && !reg_ready(instr.dst, now)) ok = false;
    if (instr.guard_pred != kNoPred &&
        !pred_ready(static_cast<unsigned>(instr.guard_pred), now)) {
      ok = false;
    }
    if (instr.writes_pred() && !pred_ready(instr.pred_dst, now)) ok = false;
    return ok;
  }

  // True if `instr` reads or writes a register still waiting on a memory
  // fill.  Such an instruction cannot issue at any future cycle until the
  // fill arrives (kPendingLoad never self-resolves), which is what lets a
  // fully load-blocked SM sleep between clock edges.
  bool blocked_on_pending_load(const Instr& instr) const {
    bool pending = false;
    for_each_src_reg(instr, [&](std::uint8_t r) {
      pending = pending || reg_ready_[r] == kPendingLoad;
    });
    if (instr.writes_reg() && reg_ready_[instr.dst] == kPendingLoad) pending = true;
    return pending;
  }

  // Earliest cycle at which can_issue(instr) becomes true assuming no
  // further scoreboard updates; kPendingLoad if a needed register awaits a
  // memory fill (the wake must then come from the fill delivery instead).
  Cycle ready_cycle(const Instr& instr) const {
    Cycle c = 0;
    const auto fold = [&](Cycle when) { c = when > c ? when : c; };
    for_each_src_reg(instr, [&](std::uint8_t r) { fold(reg_ready_[r]); });
    if (instr.writes_reg()) fold(reg_ready_[instr.dst]);
    if (instr.guard_pred != kNoPred) fold(pred_ready_[static_cast<unsigned>(instr.guard_pred)]);
    if (instr.writes_pred()) fold(pred_ready_[instr.pred_dst]);
    return c;
  }

  // The producer class behind the binding constraint: among the registers /
  // predicates `instr` needs that are not ready at `now` (excluding pending
  // loads), the DepSource tag of the one with the latest ready cycle — the
  // producer the stall actually waits out.  kPipe when nothing qualifies
  // (predicates are always ALU-produced).
  DepSource blocking_source(const Instr& instr, Cycle now) const {
    Cycle worst = now;
    DepSource src = DepSource::kPipe;
    const auto fold = [&](Cycle when, DepSource tag) {
      if (when == kPendingLoad || when <= worst) return;
      worst = when;
      src = tag;
    };
    for_each_src_reg(instr,
                     [&](std::uint8_t r) { fold(reg_ready_[r], reg_source(r)); });
    if (instr.writes_reg()) fold(reg_ready_[instr.dst], reg_source(instr.dst));
    if (instr.guard_pred != kNoPred) {
      fold(pred_ready_[static_cast<unsigned>(instr.guard_pred)], DepSource::kPipe);
    }
    if (instr.writes_pred()) fold(pred_ready_[instr.pred_dst], DepSource::kPipe);
    return src;
  }

  void set_reg_ready_at(unsigned r, Cycle when) { reg_ready_[r] = when; }
  void set_reg_ready_at(unsigned r, Cycle when, DepSource tag) {
    reg_ready_[r] = when;
    reg_src_[r] = static_cast<std::uint8_t>(tag);
  }
  void set_pred_ready_at(unsigned p, Cycle when) { pred_ready_[p] = when; }
  void mark_load_pending(unsigned r) { reg_ready_[r] = kPendingLoad; }
  void complete_load(unsigned r, Cycle now) { reg_ready_[r] = now; }

 private:
  DepSource reg_source(unsigned r) const { return static_cast<DepSource>(reg_src_[r]); }

  std::array<Cycle, kNumRegs> reg_ready_{};
  std::array<Cycle, kNumPreds> pred_ready_{};
  std::array<std::uint8_t, kNumRegs> reg_src_{};
};

}  // namespace sndp
