// Per-warp scoreboard: tracks when each register / predicate becomes
// readable.  In-order issue with variable-latency completion (ALU pipelines
// and memory) hazards are enforced by requiring all sources AND the
// destination to be ready at issue (RAW + WAW + WAR for in-order reads).
#pragma once

#include <array>

#include "common/types.h"
#include "isa/isa.h"

namespace sndp {

class Scoreboard {
 public:
  // A register still waiting on a memory fill has no known ready cycle.
  static constexpr Cycle kPendingLoad = ~Cycle{0};

  void reset() {
    reg_ready_.fill(0);
    pred_ready_.fill(0);
  }

  bool reg_ready(unsigned r, Cycle now) const { return reg_ready_[r] <= now; }
  bool pred_ready(unsigned p, Cycle now) const { return pred_ready_[p] <= now; }

  // Can `instr` issue at `now` without a data hazard?
  bool can_issue(const Instr& instr, Cycle now) const {
    bool ok = true;
    for_each_src_reg(instr, [&](std::uint8_t r) { ok = ok && reg_ready(r, now); });
    if (instr.writes_reg() && !reg_ready(instr.dst, now)) ok = false;
    if (instr.guard_pred != kNoPred &&
        !pred_ready(static_cast<unsigned>(instr.guard_pred), now)) {
      ok = false;
    }
    if (instr.writes_pred() && !pred_ready(instr.pred_dst, now)) ok = false;
    return ok;
  }

  // True if `instr` reads or writes a register still waiting on a memory
  // fill.  Such an instruction cannot issue at any future cycle until the
  // fill arrives (kPendingLoad never self-resolves), which is what lets a
  // fully load-blocked SM sleep between clock edges.
  bool blocked_on_pending_load(const Instr& instr) const {
    bool pending = false;
    for_each_src_reg(instr, [&](std::uint8_t r) {
      pending = pending || reg_ready_[r] == kPendingLoad;
    });
    if (instr.writes_reg() && reg_ready_[instr.dst] == kPendingLoad) pending = true;
    return pending;
  }

  // Earliest cycle at which can_issue(instr) becomes true assuming no
  // further scoreboard updates; kPendingLoad if a needed register awaits a
  // memory fill (the wake must then come from the fill delivery instead).
  Cycle ready_cycle(const Instr& instr) const {
    Cycle c = 0;
    const auto fold = [&](Cycle when) { c = when > c ? when : c; };
    for_each_src_reg(instr, [&](std::uint8_t r) { fold(reg_ready_[r]); });
    if (instr.writes_reg()) fold(reg_ready_[instr.dst]);
    if (instr.guard_pred != kNoPred) fold(pred_ready_[static_cast<unsigned>(instr.guard_pred)]);
    if (instr.writes_pred()) fold(pred_ready_[instr.pred_dst]);
    return c;
  }

  void set_reg_ready_at(unsigned r, Cycle when) { reg_ready_[r] = when; }
  void set_pred_ready_at(unsigned p, Cycle when) { pred_ready_[p] = when; }
  void mark_load_pending(unsigned r) { reg_ready_[r] = kPendingLoad; }
  void complete_load(unsigned r, Cycle now) { reg_ready_[r] = now; }

 private:
  std::array<Cycle, kNumRegs> reg_ready_{};
  std::array<Cycle, kNumPreds> pred_ready_{};
};

}  // namespace sndp
