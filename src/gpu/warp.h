// Warp state on an SM: per-lane architectural contexts, control state, the
// scoreboard, and the per-warp offload context used during partitioned
// execution.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "gpu/coalescer.h"
#include "gpu/scoreboard.h"
#include "isa/isa.h"
#include "isa/program.h"
#include "noc/packet.h"

namespace sndp {

enum class WarpState : std::uint8_t {
  kInvalid,      // slot unused
  kReady,        // can be considered for issue
  kWaitBarrier,  // parked at BAR until the CTA converges
  kWaitAck,      // parked at OFLD.END until the NSU acknowledges
  kFinished,     // ran EXIT
};

const char* warp_state_name(WarpState s);

// GPU-side state of one offloaded block instance (§4.1.1).
struct GpuOffloadCtx {
  const OffloadBlockInfo* info = nullptr;
  std::uint64_t instance = 0;
  unsigned target = kInvalidId;  // chosen by the first memory instruction
  bool credits_granted = false;
  std::uint32_t seq = 0;  // per memory instruction, GPU and NSU in lockstep
  // "Pending packet buffer" content: packets generated before the target is
  // known / credits granted (the command packet is always held[0]).
  std::vector<Packet> held;
  // Optimal-target ablation: per-HMC access votes accumulated over the
  // whole block (the buffering cost the paper rejects, §4.1.1/Fig. 5).
  std::vector<unsigned> votes;
};

// Memoized coalescing result: a warp stalled on resources retries the same
// memory instruction every cycle; its addresses cannot change while it is
// stalled, so the (expensive, divergent) coalesce is computed once per
// issue attempt stream and invalidated when the warp actually issues.
struct CoalesceCache {
  unsigned pc = kInvalidId;
  std::uint64_t stamp = ~std::uint64_t{0};
  LaneMask lanes = 0;
  std::array<Addr, kWarpWidth> addrs{};
  std::vector<LineAccess> lines;

  bool valid_for(unsigned pc_now, std::uint64_t stamp_now) const {
    return pc == pc_now && stamp == stamp_now;
  }
};

struct Warp {
  WarpId id = kInvalidId;
  unsigned cta_slot = kInvalidId;
  unsigned cta_id = 0;
  unsigned tenant = 0;  // owning kernel stream (0 on the single-tenant path)
  WarpState state = WarpState::kInvalid;
  unsigned pc = 0;
  LaneMask active = 0;  // lanes that hold live threads
  std::array<ThreadCtx, kWarpWidth> lanes{};
  Scoreboard scoreboard{};
  unsigned outstanding_loads = 0;
  std::uint64_t issue_stamp = 0;  // incremented per issued instruction
  CoalesceCache coalesce_cache;
  std::uint32_t cur_block = 0xFFFFFFFFu;  // static block id while inside a block
  std::unique_ptr<GpuOffloadCtx> ofld;  // non-null while inside an offloaded block

  bool valid() const { return state != WarpState::kInvalid; }
  unsigned active_count() const { return popcount_mask(active); }

  // Lanes of `instr` that will actually execute: alive AND guard-passing.
  LaneMask exec_mask(const Instr& instr) const {
    if (instr.guard_pred == kNoPred) return active;
    LaneMask m = 0;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(active & (LaneMask{1} << lane))) continue;
      if (lanes[lane].preds[static_cast<unsigned>(instr.guard_pred)] == instr.guard_sense) {
        m |= LaneMask{1} << lane;
      }
    }
    return m;
  }
};

}  // namespace sndp
