// Streaming Multiprocessor: in-order SIMT core with a greedy-then-oldest
// warp scheduler, per-warp scoreboards, a coalescing LSU in front of a
// write-through L1, and the GPU side of the partitioned execution protocol
// (offload decision, packet generation, pending/ready NDP packet buffers).
//
// Stall taxonomy follows the paper's Fig. 8: every cycle with no issued
// instruction is classified as Dependency Stall (some warp's operands were
// not ready), ExecUnitBusy (some warp was ready but its execution resource
// was occupied), or Warp Idle (no warp had a valid instruction — includes
// warps blocked on barriers or on offload ACKs).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "gpu/coalescer.h"
#include "gpu/warp.h"
#include "mem/cache.h"
#include "obs/cycle_stack.h"
#include "sim/clock.h"
#include "sim/context.h"
#include "sim/timed_channel.h"

namespace sndp {

inline constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;

// Which machine level served a line fill (cycle-stack profiler): an L2
// slice hit, the line's home-stack DRAM, or a remote stack.  Rides the
// fill channel so dep-pending stall cycles can be re-billed to the level
// that actually served the blocking load.
enum class LineServe : std::uint8_t { kL2, kDramLocal, kDramRemote };

// Per-tenant CTA retirement progress, owned by the Gpu and updated by the
// SMs at CTA completion.  `finish_cycle` is the SM cycle at which the
// tenant's last CTA retired — the per-tenant runtime used for slowdown /
// fairness reporting (deterministic and fast-forward-invariant: CTA
// completion happens at an issued EXIT, never on a skipped edge).
struct TenantCtaProgress {
  unsigned total = 0;
  unsigned done = 0;
  Cycle finish_cycle = 0;
  bool finished() const { return done >= total; }
};

class Sm final : public Tickable {
 public:
  Sm(SmId id, const SystemContext& ctx);

  void tick(Cycle cycle, TimePs now) override;

  // Fast-forward wake hint: 0/now while the SM can make progress on its
  // own; otherwise the earliest of (a) an ingress-channel delivery, (b) a
  // known self-resolve cycle (ALU/SFU/LSU frees up, a timed scoreboard
  // entry becomes readable); never while fully drained.  Maintained at the
  // end of tick() and lowered by deliver_line / deliver_ofld_ack /
  // assign_cta / on_egress_pop.
  TimePs next_work_ps(TimePs /*now*/) override { return wake_ps_; }

  // The GPU drained a packet from out(): an egress-full warp may now be
  // issuable, so a sleeping SM must retry at its next edge.
  void on_egress_pop(TimePs now) {
    if (now < wake_ps_) wake_ps_ = now;
  }

  // Flush skipped-cycle stall/active counters up to the end of the run;
  // called by the Simulator with the SM domain's consumed-edge count before
  // stats are read.  Idempotent.
  void finalize(Cycle end_cycle);

  // Wiring for cross-component wake hints (set by the Gpu at construction):
  // egress pushes lower the L2 drain hint; CTA completions re-arm the
  // dispatcher.
  void set_l2_wake(TimePs* wake) { l2_wake_ = wake; }
  void set_dispatch_wake(bool* wake) { dispatch_wake_ = wake; }
  void set_tenant_progress(std::vector<TenantCtaProgress>* p) { tenant_progress_ = p; }

  // --- CTA management (driven by the Gpu's dispatcher) --------------------
  bool can_accept_cta(unsigned tenant = 0) const;
  void assign_cta(unsigned cta_id, unsigned tenant = 0);
  // True while any warp is live or memory/NDP operations are in flight.
  bool busy() const;

  // --- Ingress (driven by the Gpu core) ------------------------------------
  // A cache line this SM requested is available (L2 hit or DRAM fill).
  void deliver_line(Addr line_addr, TimePs ready_ps,
                    LineServe serve = LineServe::kDramLocal);
  void deliver_ofld_ack(Packet p, TimePs ready_ps);
  void invalidate_line(Addr line_addr) { l1_.invalidate(line_addr); }

  // --- Egress ---------------------------------------------------------------
  // Packets toward the L2 slices / link ports (drained by the Gpu core).
  TimedChannel<Packet>& out() { return out_; }

  SmId id() const { return id_; }
  const Cache& l1() const { return l1_; }
  void export_stats(StatSet& out, const std::string& prefix) const;

  // Flow-audit accessors (src/obs/stats_audit.*).
  std::uint64_t offloads_started() const { return offloads_started_; }
  std::uint64_t inline_blocks() const { return inline_blocks_; }
  std::uint64_t ofld_acks() const { return ofld_acks_; }
  std::uint64_t inline_block_instrs() const { return inline_block_instrs_; }
  std::uint64_t acked_block_instrs() const { return acked_block_instrs_; }
  std::uint64_t rdf_probe_packets() const { return rdf_packets_; }
  std::uint64_t rdf_probe_l1_hits() const { return rdf_l1_hits_; }

  // Per-tenant issued-instruction counts (size = ctx.num_tenants(); index 0
  // is the whole SM on the single-tenant path).
  const std::vector<std::uint64_t>& issued_by_tenant() const { return issued_by_tenant_; }

  // --- Cycle-stack profiler (src/obs/cycle_stack.*) ------------------------
  // Per-tenant bucket counters; empty rows when SystemConfig::profile is
  // off.  counted_cycles() is every cycle the profiler accounted for —
  // active_cycles plus the no-warp cycles the legacy counters never count —
  // and equals the elapsed SM cycle count once flushed via finalize().
  const SmCycleStack& cycle_stack() const { return cyc_; }
  std::uint64_t counted_cycles() const { return active_cycles + no_warp_cycles_; }
  std::uint64_t no_warp_cycles() const { return no_warp_cycles_; }
  // Split of the no-warp total: cycles before the SM's last activity
  // (waiting on CTA dispatch) vs. the drained tail after it.
  std::uint64_t no_warp_dispatch_cycles() const { return no_warp_snapshot_; }
  std::uint64_t no_warp_drained_cycles() const { return no_warp_cycles_ - no_warp_snapshot_; }

  // Fig. 8 counters (public for cheap aggregation).
  std::uint64_t issued_instrs = 0;
  std::uint64_t active_cycles = 0;   // cycles with at least one valid warp
  std::uint64_t stall_dependency = 0;
  std::uint64_t stall_exec_busy = 0;
  std::uint64_t stall_warp_idle = 0;

 private:
  struct LoadTracker {
    bool valid = false;
    unsigned warp = 0;
    std::uint8_t dst = kNoReg;
    unsigned lines_pending = 0;
  };
  struct CtaSlot {
    bool valid = false;
    unsigned cta_id = 0;
    unsigned num_warps = 0;
    unsigned at_barrier = 0;
    unsigned finished = 0;
    unsigned tenant = 0;
  };

  enum class IssueOutcome { kIssued, kDependency, kExecBusy };

  // What each skipped (slept) cycle would have counted in naive stepping.
  // kNoWarp cycles are outside active_cycles — the legacy counters ignore
  // them; the cycle-stack profiler accounts them (dispatch idle / drained).
  enum class GapClass { kNone, kDependency, kExecBusy, kWarpIdle, kNoWarp };

  // Why the first exec-busy warp of the cycle was blocked: a real unit /
  // queue conflict, or NDP pending-buffer credit starvation.
  enum class BusyCause : std::uint8_t { kUnit, kCredit };

  // "No self-resolve cycle": the blocked warp can only be unblocked by an
  // external event (memory fill, ACK, egress drain).
  static constexpr Cycle kCycleNever = ~Cycle{0};

  // One scheduling attempt for `warp` at this cycle.
  IssueOutcome try_issue(Warp& warp, Cycle cycle, TimePs now);
  void execute_alu_warp(Warp& warp, const Instr& in, Cycle cycle);
  IssueOutcome issue_mem_inline(Warp& warp, const Instr& in, Cycle cycle, TimePs now);
  IssueOutcome issue_mem_offload(Warp& warp, const Instr& in, Cycle cycle, TimePs now);
  void begin_offload(Warp& warp, const Instr& in, Cycle cycle, TimePs now);
  void end_offload_or_inline(Warp& warp, Cycle cycle, TimePs now);
  void handle_branch(Warp& warp, const Instr& in);
  void handle_barrier(Warp& warp);
  void handle_exit(Warp& warp);
  void complete_tracker(unsigned idx, Cycle cycle, LineServe serve);
  void retry_credit_grants(TimePs now);
  const CoalesceCache& coalesced(Warp& w, const Instr& in, LaneMask lanes);
  void emit_or_hold(Warp& warp, Packet&& p, TimePs now);
  void push_out(Packet&& p, TimePs ready_ps);
  void apply_gap(Cycle gap);
  // Cycle-stack helpers (profiler on only).
  void classify_stall_cycle(Cycle cycle, bool saw_dep, bool saw_busy);
  void add_stall_cycles(Cycle n);
  void flush_pending_dep(Warp& w);
  unsigned alloc_tracker();
  unsigned free_trackers() const;
  unsigned pending_total() const { return pending_count_; }

  SmId id_;
  const SystemContext& ctx_;
  const SmConfig& cfg_;
  Cache l1_;
  Coalescer coalescer_;

  std::vector<Warp> warps_;
  std::vector<CtaSlot> ctas_;
  std::vector<LoadTracker> trackers_;
  unsigned greedy_ptr_ = 0;  // GTO scheduler: last-issued warp first
  Cycle now_cycle_ = 0;      // current SM cycle

  // Functional scratchpad storage, keyed by (CTA slot << 48) | address.
  std::unordered_map<std::uint64_t, RegValue> shm_;

  // Execution-resource occupancy (cycle when the unit frees up).
  Cycle alu_busy_until_ = 0;
  Cycle sfu_busy_until_ = 0;
  Cycle lsu_busy_until_ = 0;

  unsigned free_warps_ = 0;      // incrementally tracked (dispatch fast path)
  unsigned free_cta_slots_ = 0;
  unsigned awaiting_grant_ = 0;  // warps with an ungranted credit reservation
  unsigned active_trackers_ = 0; // valid LoadTrackers (incremental, for busy())

  // Fast-forward state (see next_work_ps / finalize).
  bool fast_forward_ = false;
  TimePs wake_ps_ = 0;
  GapClass gap_class_ = GapClass::kNone;
  Cycle next_expected_cycle_ = 0;
  // Set by every kExecBusy return in try_issue: the cycle at which a retry
  // could succeed (unit-busy cases), or kCycleNever when only an external
  // event unblocks (egress/MSHR/tracker exhaustion).
  Cycle retry_cycle_ = 0;
  TimePs* l2_wake_ = nullptr;
  bool* dispatch_wake_ = nullptr;
  std::vector<TenantCtaProgress>* tenant_progress_ = nullptr;
  std::vector<std::uint64_t> issued_by_tenant_;

  struct LineFill {
    Addr line_addr = 0;
    LineServe serve = LineServe::kDramLocal;
  };

  TimedChannel<Packet> out_;           // "ready packet buffer" toward the GPU core
  TimedChannel<LineFill> line_fills_;  // lines arriving from L2/DRAM
  TimedChannel<Packet> acks_in_;       // offload ACKs
  unsigned pending_count_ = 0;     // held NDP packets across all warps

  std::uint64_t next_instance_ = 1;  // offload instance ids (unique per SM)

  // Extra stats.
  std::uint64_t offloads_started_ = 0;
  std::uint64_t inline_blocks_ = 0;
  std::uint64_t ofld_acks_ = 0;           // NSU completion ACKs drained
  std::uint64_t inline_block_instrs_ = 0; // mirrors governor on_block_complete
  std::uint64_t acked_block_instrs_ = 0;  // mirrors governor on_block_complete
  std::uint64_t rdf_packets_ = 0;
  std::uint64_t rdf_l1_hits_ = 0;
  std::uint64_t wta_packets_ = 0;
  std::uint64_t pending_full_stalls_ = 0;

  // --- Cycle-stack profiler state (untouched when profile_ is false). ------
  bool profile_ = false;
  SmCycleStack cyc_;  // rows: tenants + shared; no-warp accrues in the
                      // shared kDispatchIdle bucket (drained split on read)
  std::uint64_t no_warp_cycles_ = 0;
  std::uint64_t no_warp_snapshot_ = 0;  // no_warp_cycles_ at last active tick
  // Retroactive dep attribution: cycles parked in kDepPending per warp, and
  // the worst serve class seen among that warp's fills since its last issue.
  std::vector<std::uint64_t> pending_dep_cycles_;
  std::vector<std::uint8_t> warp_worst_serve_;
  // Per-cycle attribution scratch, reset each issue scan.
  unsigned dep_warp_ = kInvalidId;    // first warp that returned kDependency
  unsigned busy_warp_ = kInvalidId;   // first warp that returned kExecBusy
  BusyCause busy_warp_cause_ = BusyCause::kUnit;
  BusyCause busy_cause_ = BusyCause::kUnit;  // set by every kExecBusy return
  // Refined class of the cycle the sleep decision froze (valid while
  // gap_class_ != kNone/kNoWarp); replayed by apply_gap.
  SmBucket gap_bucket_ = SmBucket::kIssue;
  unsigned gap_row_ = 0;
  unsigned gap_pending_warp_ = kInvalidId;
};

}  // namespace sndp
