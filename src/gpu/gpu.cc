#include "gpu/gpu.h"

#include <algorithm>
#include <stdexcept>

#include "ctrl/governor.h"
#include "energy/energy_model.h"
#include "gpu/wta_tracker.h"
#include "mem/address_map.h"
#include "memfunc/global_memory.h"
#include "ndp/ro_cache.h"
#include "noc/net_port.h"
#include "obs/epoch_timeline.h"
#include "obs/latency.h"

namespace sndp {

Gpu::Gpu(const SystemContext& ctx)
    : ctx_(ctx), epoch_tick_member_(*this), core_tick_(*this), l2_tick_(*this) {
  const SystemConfig& cfg = *ctx_.cfg;
  fast_forward_ = cfg.fast_forward;
  const unsigned num_tenants = ctx_.num_tenants();
  total_ctas_t_.resize(num_tenants);
  next_cta_t_.assign(num_tenants, 0);
  dispatched_.assign(num_tenants, 0);
  tenant_progress_.resize(num_tenants);
  t_l2_hits_.assign(num_tenants, 0);
  t_l2_misses_.assign(num_tenants, 0);
  t_l2_merged_.assign(num_tenants, 0);
  govs_.resize(num_tenants);
  for (unsigned t = 0; t < num_tenants; ++t) {
    total_ctas_t_[t] = ctx_.launch_of(t).num_ctas;
    tenant_progress_[t].total = total_ctas_t_[t];
    ctas_left_ += total_ctas_t_[t];
    govs_[t] = ctx_.governor_of(t);
  }
  sms_.reserve(cfg.num_sms);
  for (unsigned i = 0; i < cfg.num_sms; ++i) {
    sms_.push_back(std::make_unique<Sm>(i, ctx_));
    sms_.back()->set_l2_wake(&l2_wake_);
    sms_.back()->set_dispatch_wake(&dispatch_wake_);
    sms_.back()->set_tenant_progress(&tenant_progress_);
  }
  // One L2 slice per HMC link; each slice gets an equal share of the 2 MB.
  CacheConfig slice_cfg = cfg.l2;
  slice_cfg.size_bytes = cfg.l2.size_bytes / cfg.num_hmcs;
  slices_.resize(cfg.num_hmcs);
  for (unsigned s = 0; s < cfg.num_hmcs; ++s) {
    slices_[s].cache = std::make_unique<Cache>(slice_cfg, "l2." + std::to_string(s));
  }
}

bool Gpu::idle() const {
  if (ctas_left_ != 0) return false;
  for (const auto& sm : sms_) {
    if (sm->busy()) return false;
  }
  for (const L2Slice& s : slices_) {
    if (!s.in.empty() || !s.urgent.empty()) return false;
  }
  return true;
}

std::uint64_t Gpu::total_stall_dependency() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->stall_dependency;
  return n;
}
std::uint64_t Gpu::total_stall_exec_busy() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->stall_exec_busy;
  return n;
}
std::uint64_t Gpu::total_stall_warp_idle() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->stall_warp_idle;
  return n;
}
std::uint64_t Gpu::total_issued() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->issued_instrs;
  return n;
}

std::uint64_t Gpu::issued_by_tenant(unsigned t) const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->issued_by_tenant().at(t);
  return n;
}

void Gpu::epoch_tick(Cycle cycle) {
  // Replay the governor's epoch clock for fast-forwarded SM cycles.  Runs
  // before the SMs tick, so gap-cycle epoch rollovers land ahead of this
  // edge's issue decisions — exactly the naive interleaving, where each dead
  // cycle's core_tick() preceded the wake edge.  The current edge's own
  // on_sm_cycle() stays in core_tick() (after the SMs, matching naive
  // registration order).
  if (cycle > epoch_next_expected_) {
    for (OffloadGovernor* g : govs_) g->advance_cycles(cycle - epoch_next_expected_);
  }
  epoch_next_expected_ = cycle + 1;
}

unsigned Gpu::pick_tenant(const Sm& sm) const {
  const unsigned num_tenants = static_cast<unsigned>(total_ctas_t_.size());
  auto eligible = [&](unsigned t) {
    return next_cta_t_[t] < total_ctas_t_[t] && sm.can_accept_cta(t);
  };
  switch (ctx_.cfg->tenancy.arbiter) {
    case TenantArbiter::kRoundRobin:
      for (unsigned k = 0; k < num_tenants; ++k) {
        const unsigned t = (tenant_rr_ + k) % num_tenants;
        if (eligible(t)) return t;
      }
      return kInvalidId;
    case TenantArbiter::kWeightedShare: {
      // Argmin of dispatched/weight: the tenant furthest below its share
      // gets the slot.  Strict < keeps ties on the lowest tenant id, so the
      // choice is deterministic.
      unsigned best = kInvalidId;
      double best_score = 0.0;
      for (unsigned t = 0; t < num_tenants; ++t) {
        if (!eligible(t)) continue;
        const double wt =
            ctx_.tenants != nullptr && (*ctx_.tenants)[t].weight > 0.0
                ? (*ctx_.tenants)[t].weight
                : 1.0;
        const double score = static_cast<double>(dispatched_[t]) / wt;
        if (best == kInvalidId || score < best_score) {
          best = t;
          best_score = score;
        }
      }
      return best;
    }
    case TenantArbiter::kStrictPriority: {
      unsigned best = kInvalidId;
      unsigned best_prio = 0;
      for (unsigned t = 0; t < num_tenants; ++t) {
        if (!eligible(t)) continue;
        const unsigned prio = ctx_.tenants != nullptr ? (*ctx_.tenants)[t].priority : 0;
        if (best == kInvalidId || prio < best_prio) {
          best = t;
          best_prio = prio;
        }
      }
      return best;
    }
  }
  return kInvalidId;
}

void Gpu::core_tick(Cycle /*cycle*/, TimePs /*now*/) {
  for (OffloadGovernor* g : govs_) g->on_sm_cycle();
  // CTA dispatcher: at most one new CTA per SM per cycle, round-robin over
  // SMs; the arbiter picks the tenant each freed slot serves.
  if (ctas_left_ == 0) return;
  if (dispatch_wake_) {
    dispatch_wake_ = false;
    dispatch_blocked_ = false;
  }
  // A scan that assigns nothing has no side effects (dispatch_rr_ and the
  // arbiter state only move on assignment), and can_accept_cta() can only
  // flip true when a CTA retires — which raises dispatch_wake_.  So
  // skipping scans while blocked is exact in both stepping modes.
  if (dispatch_blocked_) return;
  const unsigned n = static_cast<unsigned>(sms_.size());
  const unsigned num_tenants = static_cast<unsigned>(total_ctas_t_.size());
  bool assigned = false;
  for (unsigned i = 0; i < n && ctas_left_ != 0; ++i) {
    Sm& sm = *sms_[(dispatch_rr_ + i) % n];
    const unsigned t = pick_tenant(sm);
    if (t == kInvalidId) continue;
    sm.assign_cta(next_cta_t_[t]++, t);
    --ctas_left_;
    ++dispatched_[t];
    tenant_rr_ = (t + 1) % num_tenants;
    dispatch_rr_ = (dispatch_rr_ + i + 1) % n;
    assigned = true;
  }
  if (!assigned) dispatch_blocked_ = true;
}

TimePs Gpu::core_next_work_ps() const {
  if (ctas_left_ == 0) return kTimeNever;   // every tenant's queue drained
  if (dispatch_blocked_ && !dispatch_wake_) return kTimeNever;
  return 0;  // CTAs remain and a slot may be free: dispatch this edge
}

void Gpu::finalize(Cycle end_cycle) {
  if (end_cycle > epoch_next_expected_) {
    for (OffloadGovernor* g : govs_) g->advance_cycles(end_cycle - epoch_next_expected_);
    epoch_next_expected_ = end_cycle;
  }
  for (auto& sm : sms_) sm->finalize(end_cycle);
}

void Gpu::sync_cycle_stacks(Cycle end_cycle) {
  // Sm::finalize is idempotent and clamps to end_cycle, so a mid-run flush
  // just splits the gap the next awake tick would have replayed in one go.
  for (auto& sm : sms_) sm->finalize(end_cycle);
}

SmCycleStack Gpu::cycle_stack() const {
  SmCycleStack agg;
  agg.init(ctx_.num_tenants());
  if (!ctx_.cfg->profile) return agg;
  for (const auto& sm : sms_) {
    agg.accumulate(sm->cycle_stack());
    agg.move(agg.shared_row(), static_cast<std::size_t>(SmBucket::kDispatchIdle),
             static_cast<std::size_t>(SmBucket::kDrained), sm->no_warp_drained_cycles());
  }
  return agg;
}

std::uint64_t Gpu::total_counted_cycles() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->counted_cycles();
  return n;
}

void Gpu::send_to_network(Packet&& p, TimePs now) {
  p.src_node = static_cast<std::uint16_t>(ctx_.net->gpu_node());
  ctx_.net->send(std::move(p), now);
}

TimePs Gpu::l2_next_work_ps() const {
  // Cached earliest delivery among SM egress + slice queues, plus the live
  // network RX front (lowered by remote HMC ticks between our edges).
  TimePs w = l2_wake_;
  const auto& rx = ctx_.net->rx(ctx_.net->gpu_node());
  if (!rx.empty() && rx.front_ready_ps() < w) w = rx.front_ready_ps();
  return w;
}

void Gpu::l2_tick(Cycle cycle, TimePs now) {
  // Epoch-timeline sampling: record the slices' cumulative counters at the
  // first consumed L2 edge at/after each epoch boundary (fast-forward only
  // skips edges at which these counters are frozen, so the sampled values
  // are mode-independent).
  if (timeline_ != nullptr && timeline_->l2_due(now)) {
    timeline_->poll_l2(now, total_l2_hits(), total_l2_misses());
  }

  // With nothing deliverable at this edge the whole tick is a no-op (every
  // stage below only pops ready channel heads), so it can be skipped.
  if (fast_forward_ && l2_next_work_ps() > now) return;

  // 1. Move SM egress packets into the right slice queue (the on-die
  //    crossbar; its latency was already added by the SM).
  for (auto& smp : sms_) {
    for (unsigned moved = 0; moved < 2; ++moved) {
      auto p = smp->out().pop_ready(now);
      if (!p) break;
      // The drain may unblock an egress-full warp; wake the SM so it can
      // retry at its next edge.
      smp->on_egress_pop(now);
      unsigned slice;
      switch (p->type) {
        case PacketType::kMemRead:
        case PacketType::kMemWrite:
        case PacketType::kRdf:
          slice = ctx_.amap->hmc_of(p->line_addr);
          break;
        default:
          slice = p->dst_node;  // CMD / WTA / RdfResp travel to the target HMC
          break;
      }
      ctx_.energy->gpu_wire_bytes += p->size_bytes;
      if (ctx_.latency != nullptr) {
        ctx_.latency->queue_hop(*p, now, "sm_egress", ctx_.cfg->num_hmcs);
      }
      if (is_urgent_packet(p->type)) {
        slices_.at(slice).urgent.push(std::move(*p), now);
      } else {
        slices_.at(slice).in.push(std::move(*p), now);
      }
    }
  }

  // 2. Slice processing.
  for (unsigned s = 0; s < slices_.size(); ++s) process_slice(s, cycle, now);

  // 3. Network RX.
  auto& rx = ctx_.net->rx(ctx_.net->gpu_node());
  while (auto p = rx.pop_ready(now)) handle_rx(std::move(*p), now);

  // Recompute the cached wake over everything this tick drains.  SM pushes
  // between L2 edges lower it directly through the Sm::set_l2_wake pointer.
  // Maintained in both stepping modes: naive serial stepping never reads
  // it, but a naive parallel partition paces its windows on these hints.
  {
    TimePs w = kTimeNever;
    for (auto& smp : sms_) {
      if (!smp->out().empty()) w = std::min(w, smp->out().front_ready_ps());
    }
    for (const L2Slice& s : slices_) {
      if (!s.in.empty()) w = std::min(w, s.in.front_ready_ps());
      if (!s.urgent.empty()) w = std::min(w, s.urgent.front_ready_ps());
    }
    l2_wake_ = w;
  }
}

void Gpu::process_slice(unsigned slice_idx, Cycle /*cycle*/, TimePs now) {
  L2Slice& slice = slices_[slice_idx];
  const TimePs l2_latency_ps =
      ctx_.cfg->l2.latency_cycles * tick_time_ps(1, ctx_.cfg->clocks.l2_khz);

  // Urgent pass-throughs (offload commands) go straight to the link; they
  // never touch the L2 arrays and must not queue behind request floods.
  while (auto p = slice.urgent.pop_ready(now)) {
    if (ctx_.latency != nullptr) {
      ctx_.latency->queue_hop(*p, now, "l2_slice", ctx_.cfg->num_hmcs);
    }
    send_to_network(std::move(*p), now);
  }

  for (unsigned served = 0; served < 2; ++served) {
    if (!slice.in.ready(now)) return;
    const Packet& head = slice.in.front();

    if (head.type == PacketType::kMemRead) {
      ++ctx_.energy->l2_accesses;
      const auto result = slice.cache->access_read(head.line_addr, head.token);
      if (result == CacheAccessResult::kMshrFull) return;  // retry next cycle
      ++l2_read_reqs_;
      Packet p = slice.in.pop();
      if (ctx_.latency != nullptr) {
        ctx_.latency->queue_hop(p, now, "l2_slice", ctx_.cfg->num_hmcs);
      }
      const bool in_block = p.oid.block != kNoBlock;
      const unsigned touched = popcount_mask(p.mask) * p.mem_width;
      // Per-tenant L2 outcomes are counted here, at the same site as
      // l2_read_reqs_, so the per-tenant sums reconcile exactly with the
      // fabric total (RDF probes below bump the slice caches' own counters
      // and would contaminate a cache-counter-based split).
      OffloadGovernor* gov = ctx_.governor_of(p.tenant);
      if (result == CacheAccessResult::kHit) {
        ++t_l2_hits_.at(p.tenant);
        if (in_block) gov->cache_table().record_load_line(p.oid.block, true, touched);
        ctx_.energy->gpu_wire_bytes += kLineBytes;
        if (ctx_.latency != nullptr) {
          ctx_.latency->add_cache(p, l2_latency_ps);
          ctx_.latency->finish(p, PathClass::kGpuReadL2, now + l2_latency_ps,
                               ctx_.cfg->num_hmcs);
        }
        sms_.at(static_cast<std::size_t>(p.token))
            ->deliver_line(p.line_addr, now + l2_latency_ps, LineServe::kL2);
      } else if (result == CacheAccessResult::kMissNew) {
        ++t_l2_misses_.at(p.tenant);
        if (in_block) gov->cache_table().record_load_line(p.oid.block, false, 0);
        // Pin the destination to this slice's stack: the MSHR lives here, so
        // the fill (src_node of the response) must come back to the same
        // slice even if the page migrates while the miss is outstanding.
        p.dst_node = static_cast<std::uint16_t>(slice_idx);
        send_to_network(std::move(p), now);
      } else {
        // Merged into an existing L2 MSHR: this request's lifetime ends
        // here; the merged-into request's response will serve it.
        ++t_l2_merged_.at(p.tenant);
        if (in_block) gov->cache_table().record_load_line(p.oid.block, false, 0);
        if (ctx_.latency != nullptr) ctx_.latency->cancel(p);
      }
      continue;
    }

    Packet p = slice.in.pop();
    if (ctx_.latency != nullptr) {
      ctx_.latency->queue_hop(p, now, "l2_slice", ctx_.cfg->num_hmcs);
    }
    switch (p.type) {
      case PacketType::kMemWrite: {
        ++ctx_.energy->l2_accesses;
        slice.cache->write_touch(p.line_addr);
        p.dst_node = static_cast<std::uint16_t>(slice_idx);  // same pin as kMissNew
        send_to_network(std::move(p), now);
        break;
      }
      case PacketType::kRdf: {
        // Probe the L2 on the way out (Fig. 6(a)): a hit turns the request
        // into a response carrying the cached words.
        ++ctx_.energy->l2_accesses;
        ++rdf_l2_probes_;
        const bool hit = slice.cache->probe(p.line_addr);
        const bool in_block = p.oid.block != kNoBlock;
        if (in_block) {
          ctx_.governor_of(p.tenant)->cache_table().record_load_line(
              p.oid.block, hit, hit ? popcount_mask(p.mask) * p.mem_width : 0);
        }
        if (hit) {
          ++rdf_l2_hits_;
          p.type = PacketType::kRdfResp;
          if (ctx_.latency != nullptr) ctx_.latency->set_path(p, PathClass::kRdfCacheHit);
          p.dst_node = p.target_nsu;
          p.lane_data.assign(kWarpWidth, 0);
          for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            if (p.mask & (LaneMask{1} << lane)) {
              p.lane_data[lane] =
                  ctx_.gmem->load_reg(p.lane_addrs[lane], p.mem_width, p.mem_f32);
            }
          }
          const bool ro_hit = ctx_.ro_cache->lookup_or_insert(p.target_nsu, p.line_addr);
          p.size_bytes = ro_hit
                             ? small_packet_bytes() + kAddrBytes
                             : rdf_resp_packet_bytes(popcount_mask(p.mask), p.mem_width);
          ctx_.energy->gpu_wire_bytes += p.size_bytes;
        }
        send_to_network(std::move(p), now);
        break;
      }
      case PacketType::kOfldCmd:
      case PacketType::kWta:
      case PacketType::kRdfResp:
        send_to_network(std::move(p), now);
        break;
      default:
        throw std::logic_error(std::string("Gpu: unexpected packet at L2 slice: ") +
                               packet_type_name(p.type));
    }
  }
}

void Gpu::handle_rx(Packet&& p, TimePs now) {
  ++rx_packets_;
  if (ctx_.latency != nullptr) {
    ctx_.latency->queue_hop(p, now, "gpu_rx", ctx_.cfg->num_hmcs);
  }
  switch (p.type) {
    case PacketType::kMemReadResp: {
      ++mem_read_resps_;
      if (ctx_.latency != nullptr) {
        ctx_.latency->add_link(p, 0, ctx_.cfg->xbar_latency_ps);
        ctx_.latency->finish(p, PathClass::kGpuReadDram, now + ctx_.cfg->xbar_latency_ps,
                             ctx_.cfg->num_hmcs);
      }
      // The serving stack IS the slice that holds the MSHR (kMissNew pins
      // dst to its slice) — a fresh hmc_of here could land on a different
      // slice after a migration and strand the MSHR tokens.
      const unsigned slice_idx = p.src_node;
      ++ctx_.energy->l2_accesses;
      // Dep-stall attribution: a fill from the line's current home stack is
      // local DRAM; anything else (possible under volatile mappings, where
      // the home moved while the miss was outstanding) is remote.
      const LineServe serve = p.src_node == ctx_.amap->hmc_of(p.line_addr)
                                  ? LineServe::kDramLocal
                                  : LineServe::kDramRemote;
      for (std::uint64_t token : slices_.at(slice_idx).cache->fill(p.line_addr)) {
        ctx_.energy->gpu_wire_bytes += kLineBytes;
        sms_.at(static_cast<std::size_t>(token))
            ->deliver_line(p.line_addr, now + ctx_.cfg->xbar_latency_ps, serve);
      }
      break;
    }
    case PacketType::kCacheInval: {
      ++invals_received_;
      if (ctx_.amap->policy().volatile_mapping()) {
        // Under migration the line may be cached in the slice of an older
        // mapping; sweep all slices rather than trust a live lookup.
        for (L2Slice& s : slices_) s.cache->invalidate(p.line_addr);
      } else {
        slices_.at(ctx_.amap->hmc_of(p.line_addr)).cache->invalidate(p.line_addr);
      }
      for (auto& sm : sms_) sm->invalidate_line(p.line_addr);
      // §4.1.1: this invalidation retires one in-flight WTA for its HMC.
      // (The tracker aggregates across stacks under a volatile mapping, so
      // a since-migrated key still retires the right count.)
      ctx_.wta_tracker->on_invalidation(ctx_.amap->hmc_of(p.line_addr));
      break;
    }
    case PacketType::kOfldAck: {
      // Data-buffer credits ride on the ACK (§4.3).
      ctx_.bufmgr->release(p.target_nsu, 0, p.credit_read_data, p.credit_write_addr,
                           p.tenant);
      if (ctx_.latency != nullptr) {
        ctx_.latency->add_link(p, 0, ctx_.cfg->xbar_latency_ps);
        ctx_.latency->finish(p, PathClass::kOfldCmd, now + ctx_.cfg->xbar_latency_ps,
                             ctx_.cfg->num_hmcs);
      }
      const SmId sm = p.oid.sm;
      sms_.at(sm)->deliver_ofld_ack(std::move(p), now + ctx_.cfg->xbar_latency_ps);
      break;
    }
    case PacketType::kCredit: {
      ctx_.bufmgr->release(p.target_nsu, p.credit_cmd, p.credit_read_data,
                           p.credit_write_addr, p.tenant);
      if (ctx_.latency != nullptr) {
        ctx_.latency->finish(p, PathClass::kCredit, now, ctx_.cfg->num_hmcs);
      }
      break;
    }
    default:
      throw std::logic_error(std::string("Gpu: unexpected RX packet: ") +
                             packet_type_name(p.type));
  }
}

std::uint64_t Gpu::total_l1_hits() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->l1().hits;
  return n;
}

std::uint64_t Gpu::total_l1_misses() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->l1().misses;
  return n;
}

std::uint64_t Gpu::total_l1_merged() const {
  std::uint64_t n = 0;
  for (const auto& sm : sms_) n += sm->l1().merged_misses;
  return n;
}

std::uint64_t Gpu::total_l2_hits() const {
  std::uint64_t n = 0;
  for (const L2Slice& s : slices_) n += s.cache->hits;
  return n;
}

std::uint64_t Gpu::total_l2_misses() const {
  std::uint64_t n = 0;
  for (const L2Slice& s : slices_) n += s.cache->misses;
  return n;
}

std::uint64_t Gpu::total_l2_merged() const {
  std::uint64_t n = 0;
  for (const L2Slice& s : slices_) n += s.cache->merged_misses;
  return n;
}

void Gpu::export_stats(StatSet& out) const {
  out.set("gpu.issued_instrs", static_cast<double>(total_issued()));
  out.set("gpu.stall_dependency", static_cast<double>(total_stall_dependency()));
  out.set("gpu.stall_exec_busy", static_cast<double>(total_stall_exec_busy()));
  out.set("gpu.stall_warp_idle", static_cast<double>(total_stall_warp_idle()));
  out.set("gpu.invalidations", static_cast<double>(invals_received_));
  out.set("gpu.rdf_l2_probes", static_cast<double>(rdf_l2_probes_));
  out.set("gpu.rdf_l2_hits", static_cast<double>(rdf_l2_hits_));
  out.set("gpu.l2_read_reqs", static_cast<double>(l2_read_reqs_));
  out.set("gpu.mem_read_resps", static_cast<double>(mem_read_resps_));
  out.set("gpu.rx_packets", static_cast<double>(rx_packets_));
  // Aggregate caches.
  out.set("gpu.l1_hits", static_cast<double>(total_l1_hits()));
  out.set("gpu.l1_misses", static_cast<double>(total_l1_misses()));
  out.set("gpu.l2_hits", static_cast<double>(total_l2_hits()));
  out.set("gpu.l2_misses", static_cast<double>(total_l2_misses()));
  // Tenant-keyed stats only exist on multi-tenant runs, so the classic
  // single-kernel stat set (golden-stats pins) is byte-identical.
  if (total_ctas_t_.size() > 1) {
    for (unsigned t = 0; t < total_ctas_t_.size(); ++t) {
      const std::string p = "gpu.t" + std::to_string(t);
      out.set(p + ".issued_instrs", static_cast<double>(issued_by_tenant(t)));
      out.set(p + ".l2_hits", static_cast<double>(t_l2_hits_[t]));
      out.set(p + ".l2_misses", static_cast<double>(t_l2_misses_[t]));
      out.set(p + ".l2_merged", static_cast<double>(t_l2_merged_[t]));
      out.set(p + ".ctas", static_cast<double>(dispatched_[t]));
      out.set(p + ".finish_cycle", static_cast<double>(tenant_progress_[t].finish_cycle));
    }
  }
  for (unsigned i = 0; i < sms_.size(); ++i) {
    if (i < 4) sms_[i]->export_stats(out, "sm" + std::to_string(i));
  }
}

}  // namespace sndp
