// Credit-based NDP buffer manager (paper §4.3, deadlock prevention).
//
// Lives on the GPU and tracks, per HMC, the free entries of the NSU's
// offload-command, read-data and write-address buffers.  An SM reserves all
// buffers a block needs atomically at OFLD.BEG; the NSU returns credits as
// entries free up (command credit when a warp slot is claimed, data credits
// piggybacked on the offload ACK).  Reservations never exceed capacity, so
// every in-flight packet is guaranteed an ejection slot — no deadlock.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/stats.h"

namespace sndp {

class NdpBufferManager {
 public:
  NdpBufferManager(const NdpBufferConfig& cfg, unsigned num_hmcs);

  // QoS credit partitioning (DESIGN.md "Multi-tenant serving"): cap the
  // rd/wta entries one tenant may hold per HMC at ceil(share * capacity).
  // share == 0 (the default) disables partitioning entirely — reserve and
  // release then ignore the tenant argument, which keeps the single-tenant
  // path bit-identical.
  void set_tenancy(unsigned num_tenants, double credit_share);

  // Atomically reserve (1 offload command, `rd` read-data entries, `wta`
  // write-address entries) on `hmc` for `tenant`.  Returns false (reserving
  // nothing) when any buffer — or the tenant's QoS share — lacks space.
  bool try_reserve(unsigned hmc, unsigned rd, unsigned wta, unsigned tenant = 0);

  // Credits returned by the NSU (tenant from the credit/ACK packet).
  void release(unsigned hmc, unsigned cmd, unsigned rd, unsigned wta,
               unsigned tenant = 0);

  unsigned free_cmd(unsigned hmc) const { return credits_.at(hmc).cmd; }
  unsigned free_read_data(unsigned hmc) const { return credits_.at(hmc).rd; }
  unsigned free_write_addr(unsigned hmc) const { return credits_.at(hmc).wta; }

  // All credits back home (used as an end-of-run invariant).
  bool all_idle() const;

  // Capacities for the flow audit's credit-conservation checks.
  const NdpBufferConfig& config() const { return cfg_; }
  unsigned num_hmcs() const { return static_cast<unsigned>(credits_.size()); }

  void export_stats(StatSet& out) const;

  std::uint64_t qos_denials() const { return denials_qos_; }

 private:
  struct Credits {
    unsigned cmd, rd, wta;
  };
  struct TenantUse {
    unsigned rd = 0, wta = 0;
  };
  NdpBufferConfig cfg_;
  std::vector<Credits> credits_;
  // Per-(hmc, tenant) held entries; empty unless credit partitioning is on.
  std::vector<std::vector<TenantUse>> tenant_use_;
  unsigned quota_rd_ = 0;
  unsigned quota_wta_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t denials_ = 0;
  std::uint64_t denials_cmd_ = 0;
  std::uint64_t denials_rd_ = 0;
  std::uint64_t denials_wta_ = 0;
  std::uint64_t denials_qos_ = 0;
};

}  // namespace sndp
