#include "gpu/coalescer.h"

namespace sndp {

std::vector<LineAccess> Coalescer::coalesce(const std::array<Addr, kWarpWidth>& addrs,
                                            LaneMask mask, unsigned width) const {
  std::vector<LineAccess> lines;
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (!(mask & (LaneMask{1} << lane))) continue;
    const Addr line = addrs[lane] & ~static_cast<Addr>(line_bytes_ - 1);
    LineAccess* entry = nullptr;
    for (LineAccess& la : lines) {
      if (la.line_addr == line) {
        entry = &la;
        break;
      }
    }
    if (entry == nullptr) {
      lines.push_back(LineAccess{line, 0, false});
      entry = &lines.back();
    }
    entry->lanes |= LaneMask{1} << lane;
  }
  // Alignment check (§4.1.1): within each line, the k-th active lane that
  // falls in the line must sit at word slot k of that line.  The slot index
  // is counted per line — a warp whose accesses span multiple lines (e.g.
  // 8 B loads covering two 128 B lines) is still fully coalesced, because
  // the lanes of each later line start again at that line's base.
  for (LineAccess& la : lines) {
    Addr slot = 0;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(la.lanes & (LaneMask{1} << lane))) continue;
      if (addrs[lane] != la.line_addr + slot * width) {
        la.misaligned = true;
        break;
      }
      ++slot;
    }
  }
  return lines;
}

}  // namespace sndp
