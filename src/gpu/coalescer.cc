#include "gpu/coalescer.h"

namespace sndp {

std::vector<LineAccess> Coalescer::coalesce(const std::array<Addr, kWarpWidth>& addrs,
                                            LaneMask mask, unsigned width) const {
  std::vector<LineAccess> lines;
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (!(mask & (LaneMask{1} << lane))) continue;
    const Addr line = addrs[lane] & ~static_cast<Addr>(line_bytes_ - 1);
    LineAccess* entry = nullptr;
    for (LineAccess& la : lines) {
      if (la.line_addr == line) {
        entry = &la;
        break;
      }
    }
    if (entry == nullptr) {
      lines.push_back(LineAccess{line, 0, false});
      entry = &lines.back();
    }
    entry->lanes |= LaneMask{1} << lane;
  }
  // Alignment check (§4.1.1): lane i must sit at word slot i of the line.
  for (LineAccess& la : lines) {
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(la.lanes & (LaneMask{1} << lane))) continue;
      if (addrs[lane] != la.line_addr + static_cast<Addr>(lane) * width) {
        la.misaligned = true;
        break;
      }
    }
  }
  return lines;
}

}  // namespace sndp
