// §4.1.1, "Handling dynamic memory management": the GPU keeps a counter of
// in-flight WTA packets per HMC.  When the runtime needs to migrate a page
// (e.g. swap between host and device memory), writes to the new page stall
// until the destination HMC's counter drains to zero — guaranteeing no
// not-yet-performed NDP store can land in the page after migration.  The
// counter increments per WTA packet generated and decrements as the
// corresponding cache-invalidation packet (one per NSU DRAM write, which is
// 1:1 with WTA packets at line granularity) returns to the GPU.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sndp {

class WtaInflightTracker {
 public:
  explicit WtaInflightTracker(unsigned num_hmcs) : inflight_(num_hmcs, 0) {}

  // Volatile-mapping (migration) mode: a WTA's generation-time stack and its
  // invalidation-time stack can disagree once the page moved, so per-stack
  // counters would leak/underflow.  Collapse to one aggregate counter —
  // coarser (quiescence becomes all-stacks) but still a sound §4.1.1
  // conservative bound.  Set before the first WTA.
  void set_aggregate(bool on) { aggregate_ = on; }

  void on_wta_generated(unsigned hmc) {
    const unsigned slot = aggregate_ ? 0 : hmc;
    ++inflight_.at(slot);
    max_seen_ = std::max(max_seen_, inflight_[slot]);
    ++total_;
  }

  void on_invalidation(unsigned hmc) {
    const unsigned slot = aggregate_ ? 0 : hmc;
    if (inflight_.at(slot) == 0) {
      throw std::logic_error("WtaInflightTracker: invalidation without in-flight WTA");
    }
    --inflight_[slot];
  }

  unsigned inflight(unsigned hmc) const { return inflight_.at(aggregate_ ? 0 : hmc); }

  // Safe to remap pages on `hmc` (no NDP store can still be in flight there).
  bool quiescent(unsigned hmc) const { return inflight(hmc) == 0; }
  bool all_quiescent() const {
    for (unsigned v : inflight_) {
      if (v != 0) return false;
    }
    return true;
  }

  unsigned max_seen() const { return max_seen_; }
  std::uint64_t total() const { return total_; }

 private:
  std::vector<unsigned> inflight_;
  unsigned max_seen_ = 0;
  std::uint64_t total_ = 0;
  bool aggregate_ = false;
};

}  // namespace sndp
