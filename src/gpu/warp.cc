#include "gpu/warp.h"

namespace sndp {

const char* warp_state_name(WarpState s) {
  switch (s) {
    case WarpState::kInvalid: return "invalid";
    case WarpState::kReady: return "ready";
    case WarpState::kWaitBarrier: return "wait-barrier";
    case WarpState::kWaitAck: return "wait-ack";
    case WarpState::kFinished: return "finished";
  }
  return "?";
}

}  // namespace sndp
