// The GPU chip: SMs, address-sliced L2 (one slice per HMC link), the CTA
// dispatcher, the NDP buffer manager, and the chip-level packet plumbing
// between SMs, L2 slices, the off-chip links, and the NSUs.
//
// Three tick surfaces, registered in different clock domains by the
// Simulator:
//   * epoch_tick() (SM clock, registered first): governor epoch-clock
//                  catch-up for fast-forwarded cycles.
//   * core_tick()  (SM clock): CTA dispatch + governor epoch clock.
//   * l2_tick()    (L2 clock): SM egress -> slice queues, slice processing,
//                              network RX handling.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "gpu/buffer_manager.h"
#include "gpu/sm.h"
#include "mem/cache.h"
#include "sim/clock.h"
#include "sim/context.h"

namespace sndp {

class EpochTimeline;

class Gpu {
 public:
  explicit Gpu(const SystemContext& ctx);

  // Tick adapters (see Simulator for domain registration).  EpochTick must
  // be registered BEFORE the SMs: when the SM domain wakes from a
  // fast-forward gap it replays the governor's epoch-clock advancement for
  // the skipped cycles, which in naive stepping happened before the wake
  // edge's SM completions.  It never has work of its own (CoreTick keeps
  // the current edge's on_sm_cycle()).
  class EpochTick final : public Tickable {
   public:
    explicit EpochTick(Gpu& gpu) : gpu_(gpu) {}
    void tick(Cycle cycle, TimePs /*now*/) override { gpu_.epoch_tick(cycle); }
    TimePs next_work_ps(TimePs /*now*/) override { return kTimeNever; }

   private:
    Gpu& gpu_;
  };
  class CoreTick final : public Tickable {
   public:
    explicit CoreTick(Gpu& gpu) : gpu_(gpu) {}
    void tick(Cycle cycle, TimePs now) override { gpu_.core_tick(cycle, now); }
    TimePs next_work_ps(TimePs /*now*/) override { return gpu_.core_next_work_ps(); }

   private:
    Gpu& gpu_;
  };
  class L2Tick final : public Tickable {
   public:
    explicit L2Tick(Gpu& gpu) : gpu_(gpu) {}
    void tick(Cycle cycle, TimePs now) override { gpu_.l2_tick(cycle, now); }
    TimePs next_work_ps(TimePs /*now*/) override { return gpu_.l2_next_work_ps(); }

   private:
    Gpu& gpu_;
  };

  std::vector<std::unique_ptr<Sm>>& sms() { return sms_; }
  EpochTick& epoch_tickable() { return epoch_tick_member_; }
  CoreTick& core_tickable() { return core_tick_; }
  L2Tick& l2_tickable() { return l2_tick_; }

  // Flush fast-forward-deferred per-cycle accounting (governor epoch clock,
  // per-SM stall/active counters) up to the SM domain's consumed-edge count;
  // called by the Simulator before stats are read.
  void finalize(Cycle end_cycle);

  // Cycle-stack profiler: flush every SM's pending fast-forward gap up to
  // `end_cycle` (exact — a sleeping SM's gap class is constant, so the
  // split replay lands in the same buckets) WITHOUT advancing the governor
  // epoch clock.  Called at epoch boundaries before the audit / timeline
  // read the stacks, so boundary values are stepping-mode-independent.
  void sync_cycle_stacks(Cycle end_cycle);
  // Machine-wide SM stack: per-tenant bucket sums over all SMs, with each
  // SM's post-last-activity no-warp tail re-billed from dispatch-idle to
  // drained.  Empty rows when profiling is off.
  SmCycleStack cycle_stack() const;
  std::uint64_t total_counted_cycles() const;

  bool idle() const;
  // CTAs not yet dispatched, summed over ALL tenants — the completion /
  // valve end-game must wait for every tenant's queue to drain, not just
  // tenant 0's (DESIGN.md "Multi-tenant serving").
  unsigned ctas_remaining() const { return ctas_left_; }

  // Per-tenant CTA retirement progress (finish cycles for slowdown tables).
  const std::vector<TenantCtaProgress>& tenant_progress() const { return tenant_progress_; }
  // Per-tenant aggregates (index 0 is the whole machine single-tenant).
  std::uint64_t issued_by_tenant(unsigned t) const;
  std::uint64_t tenant_l2_hits(unsigned t) const { return t_l2_hits_.at(t); }
  std::uint64_t tenant_l2_misses(unsigned t) const { return t_l2_misses_.at(t); }
  std::uint64_t tenant_l2_merged(unsigned t) const { return t_l2_merged_.at(t); }

  // Aggregate Fig. 8 stall counters over all SMs.
  std::uint64_t total_stall_dependency() const;
  std::uint64_t total_stall_exec_busy() const;
  std::uint64_t total_stall_warp_idle() const;
  std::uint64_t total_issued() const;
  std::uint64_t invalidations_received() const { return invals_received_; }

  // Aggregates + flow counters for the stats audit / epoch timeline.
  std::uint64_t total_l1_hits() const;
  std::uint64_t total_l1_misses() const;
  std::uint64_t total_l1_merged() const;
  std::uint64_t total_l2_hits() const;
  std::uint64_t total_l2_misses() const;
  std::uint64_t total_l2_merged() const;
  std::uint64_t l2_read_reqs() const { return l2_read_reqs_; }
  std::uint64_t mem_read_resps() const { return mem_read_resps_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rdf_l2_probes() const { return rdf_l2_probes_; }
  std::uint64_t rdf_l2_hits() const { return rdf_l2_hits_; }

  // Per-epoch timeline hook: the L2 slices poll their cumulative counters at
  // the first consumed L2 edge at/after each epoch boundary.
  void set_timeline(EpochTimeline* timeline) { timeline_ = timeline; }

  void export_stats(StatSet& out) const;

 private:
  void epoch_tick(Cycle cycle);
  void core_tick(Cycle cycle, TimePs now);
  // Arbiter: the tenant whose next CTA the freed slot on `sm` should take,
  // or kInvalidId when no tenant is dispatchable there.  Stateless on
  // failure (arbiter state moves only when a CTA is actually assigned), so
  // the dispatch_blocked_ fast-forward latch stays exact.
  unsigned pick_tenant(const Sm& sm) const;
  void l2_tick(Cycle cycle, TimePs now);
  void process_slice(unsigned slice, Cycle cycle, TimePs now);
  void handle_rx(Packet&& p, TimePs now);
  void send_to_network(Packet&& p, TimePs now);
  TimePs core_next_work_ps() const;
  TimePs l2_next_work_ps() const;

  const SystemContext& ctx_;
  std::vector<std::unique_ptr<Sm>> sms_;

  struct L2Slice {
    std::unique_ptr<Cache> cache;
    TimedChannel<Packet> in;      // cache-touching + bulk traffic, 2/cycle
    TimedChannel<Packet> urgent;  // pass-through offload commands (no L2 work)
  };
  std::vector<L2Slice> slices_;

  EpochTick epoch_tick_member_;
  CoreTick core_tick_;
  L2Tick l2_tick_;

  // Per-tenant CTA queues (size 1 on the single-tenant path, where the
  // dispatch order reduces exactly to the classic scalar dispatcher).
  std::vector<unsigned> total_ctas_t_;
  std::vector<unsigned> next_cta_t_;
  unsigned ctas_left_ = 0;   // sum over tenants of (total - next)
  unsigned dispatch_rr_ = 0; // SM round-robin pointer
  unsigned tenant_rr_ = 0;   // kRoundRobin arbiter pointer
  std::vector<std::uint64_t> dispatched_;  // kWeightedShare shares
  std::vector<class OffloadGovernor*> govs_;  // one per tenant
  std::vector<TenantCtaProgress> tenant_progress_;
  std::vector<std::uint64_t> t_l2_hits_, t_l2_misses_, t_l2_merged_;

  // Fast-forward state.  `dispatch_blocked_` latches "a full dispatcher scan
  // assigned nothing" (such scans are side-effect-free, so skipping them is
  // exact); any SM completing a CTA raises `dispatch_wake_` to force a
  // rescan.  `l2_wake_` caches the earliest pending delivery among SM egress
  // and slice queues; SM pushes lower it directly (see Sm::set_l2_wake).
  bool fast_forward_ = false;
  bool dispatch_blocked_ = false;
  bool dispatch_wake_ = false;
  TimePs l2_wake_ = 0;
  Cycle epoch_next_expected_ = 0;

  std::uint64_t invals_received_ = 0;
  std::uint64_t rdf_l2_probes_ = 0;
  std::uint64_t rdf_l2_hits_ = 0;
  std::uint64_t l2_read_reqs_ = 0;   // kMemRead packets retired at a slice
  std::uint64_t mem_read_resps_ = 0; // kMemReadResp fills received
  std::uint64_t rx_packets_ = 0;     // all packets ejected from the NoC here

  EpochTimeline* timeline_ = nullptr;
};

}  // namespace sndp
