// The GPU chip: SMs, address-sliced L2 (one slice per HMC link), the CTA
// dispatcher, the NDP buffer manager, and the chip-level packet plumbing
// between SMs, L2 slices, the off-chip links, and the NSUs.
//
// Two tick surfaces, registered in different clock domains by the
// Simulator:
//   * core_tick()  (SM clock): CTA dispatch + governor epoch clock.
//   * l2_tick()    (L2 clock): SM egress -> slice queues, slice processing,
//                              network RX handling.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "gpu/buffer_manager.h"
#include "gpu/sm.h"
#include "mem/cache.h"
#include "sim/clock.h"
#include "sim/context.h"

namespace sndp {

class Gpu {
 public:
  explicit Gpu(const SystemContext& ctx);

  // Tick adapters (see Simulator for domain registration).
  class CoreTick final : public Tickable {
   public:
    explicit CoreTick(Gpu& gpu) : gpu_(gpu) {}
    void tick(Cycle cycle, TimePs now) override { gpu_.core_tick(cycle, now); }

   private:
    Gpu& gpu_;
  };
  class L2Tick final : public Tickable {
   public:
    explicit L2Tick(Gpu& gpu) : gpu_(gpu) {}
    void tick(Cycle cycle, TimePs now) override { gpu_.l2_tick(cycle, now); }

   private:
    Gpu& gpu_;
  };

  std::vector<std::unique_ptr<Sm>>& sms() { return sms_; }
  CoreTick& core_tickable() { return core_tick_; }
  L2Tick& l2_tickable() { return l2_tick_; }

  bool idle() const;
  unsigned ctas_remaining() const { return total_ctas_ - next_cta_; }

  // Aggregate Fig. 8 stall counters over all SMs.
  std::uint64_t total_stall_dependency() const;
  std::uint64_t total_stall_exec_busy() const;
  std::uint64_t total_stall_warp_idle() const;
  std::uint64_t total_issued() const;
  std::uint64_t invalidations_received() const { return invals_received_; }

  void export_stats(StatSet& out) const;

 private:
  void core_tick(Cycle cycle, TimePs now);
  void l2_tick(Cycle cycle, TimePs now);
  void process_slice(unsigned slice, Cycle cycle, TimePs now);
  void handle_rx(Packet&& p, TimePs now);
  void send_to_network(Packet&& p, TimePs now);

  const SystemContext& ctx_;
  std::vector<std::unique_ptr<Sm>> sms_;

  struct L2Slice {
    std::unique_ptr<Cache> cache;
    TimedChannel<Packet> in;      // cache-touching + bulk traffic, 2/cycle
    TimedChannel<Packet> urgent;  // pass-through offload commands (no L2 work)
  };
  std::vector<L2Slice> slices_;

  CoreTick core_tick_;
  L2Tick l2_tick_;

  unsigned total_ctas_ = 0;
  unsigned next_cta_ = 0;
  unsigned dispatch_rr_ = 0;

  std::uint64_t invals_received_ = 0;
  std::uint64_t rdf_l2_probes_ = 0;
  std::uint64_t rdf_l2_hits_ = 0;
};

}  // namespace sndp
