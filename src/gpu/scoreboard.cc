// Scoreboard is header-only; this TU anchors the module.
#include "gpu/scoreboard.h"
