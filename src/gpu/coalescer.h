// Memory-access coalescer: groups a warp's per-lane addresses into cache
// line transactions and classifies each as aligned or misaligned.
//
// Paper §4.1.1: a line access is aligned iff the k-th active lane falling
// in the line reads exactly
//   CacheLineBaseAddr + k * WordSize
// (slots counted per line, so a unit-stride warp spanning several lines is
// aligned in every line) — the canonical fully-coalesced pattern whose
// per-lane offsets need not be carried in RDF/WTA packets.  Anything else
// ships explicit offsets.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"

namespace sndp {

struct LineAccess {
  Addr line_addr = 0;
  LaneMask lanes = 0;  // which lanes fall in this line
  bool misaligned = false;
};

class Coalescer {
 public:
  explicit Coalescer(unsigned line_bytes) : line_bytes_(line_bytes) {}

  // `addrs[lane]` is valid where `mask` has the bit set; `width` is the
  // per-lane access size in bytes.  Line order follows first-touching lane.
  std::vector<LineAccess> coalesce(const std::array<Addr, kWarpWidth>& addrs, LaneMask mask,
                                   unsigned width) const;

  unsigned line_bytes() const { return line_bytes_; }

 private:
  unsigned line_bytes_;
};

}  // namespace sndp
