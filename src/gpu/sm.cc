#include "gpu/sm.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ctrl/governor.h"
#include "energy/energy_model.h"
#include "gpu/buffer_manager.h"
#include "gpu/wta_tracker.h"
#include "mem/address_map.h"
#include "memfunc/global_memory.h"
#include "ndp/ro_cache.h"
#include "obs/latency.h"

namespace sndp {

Sm::Sm(SmId id, const SystemContext& ctx)
    : id_(id),
      ctx_(ctx),
      cfg_(ctx.cfg->sm),
      l1_(ctx.cfg->sm.l1d, "l1"),
      coalescer_(cfg_.l1d.line_bytes) {
  warps_.resize(cfg_.max_warps());
  for (unsigned i = 0; i < warps_.size(); ++i) warps_[i].id = i;
  ctas_.resize(cfg_.max_ctas);
  // One tracker per potential outstanding load: warps x 1 is enough for an
  // in-order core, with slack for scheduling overlap.
  trackers_.resize(cfg_.max_warps() * 2);
  free_warps_ = cfg_.max_warps();
  free_cta_slots_ = cfg_.max_ctas;
  fast_forward_ = ctx.cfg->fast_forward;
  issued_by_tenant_.resize(ctx.num_tenants(), 0);
  profile_ = ctx.cfg->profile;
  if (profile_) {
    cyc_.init(ctx.num_tenants());
    pending_dep_cycles_.assign(cfg_.max_warps(), 0);
    warp_worst_serve_.assign(cfg_.max_warps(), 0);
  }
}

bool Sm::can_accept_cta(unsigned tenant) const {
  return free_cta_slots_ > 0 && free_warps_ >= ctx_.launch_of(tenant).warps_per_cta();
}

void Sm::assign_cta(unsigned cta_id, unsigned tenant) {
  unsigned slot = kInvalidId;
  for (unsigned i = 0; i < ctas_.size(); ++i) {
    if (!ctas_[i].valid) {
      slot = i;
      break;
    }
  }
  if (slot == kInvalidId) throw std::logic_error("Sm: assign_cta with no free slot");
  const LaunchParams& lp = ctx_.launch_of(tenant);
  CtaSlot& cta = ctas_[slot];
  cta = CtaSlot{true, cta_id, lp.warps_per_cta(), 0, 0, tenant};

  unsigned created = 0;
  for (Warp& w : warps_) {
    if (created == cta.num_warps) break;
    if (w.valid()) continue;
    const WarpId wid = w.id;
    w = Warp{};
    w.id = wid;
    w.cta_slot = slot;
    w.cta_id = cta_id;
    w.tenant = tenant;
    w.state = WarpState::kReady;
    w.pc = 0;
    const unsigned warp_in_cta = created;
    LaneMask active = 0;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      const unsigned tid_in_cta = warp_in_cta * kWarpWidth + lane;
      if (tid_in_cta >= lp.cta_threads) break;
      active |= LaneMask{1} << lane;
      ThreadCtx& t = w.lanes[lane];
      t = ThreadCtx{};
      t.regs[0] = static_cast<RegValue>(cta_id) * lp.cta_threads + tid_in_cta;  // R0: gtid
      t.regs[1] = lp.total_threads();                                           // R1
      t.regs[2] = cta_id;                                                       // R2
      t.regs[3] = tid_in_cta;                                                   // R3
    }
    w.active = active;
    ++created;
  }
  if (created != cta.num_warps) throw std::logic_error("Sm: not enough free warp slots");
  free_warps_ -= created;
  --free_cta_slots_;
  wake_ps_ = 0;  // new warps: the issue stage has work next edge
}

bool Sm::busy() const {
  return free_warps_ < static_cast<unsigned>(warps_.size()) || active_trackers_ != 0 ||
         !out_.empty() || !line_fills_.empty() || !acks_in_.empty() || pending_count_ != 0;
}

void Sm::deliver_line(Addr line_addr, TimePs ready_ps, LineServe serve) {
  line_fills_.push(LineFill{line_addr, serve}, ready_ps);
  const TimePs t = line_fills_.back_ready_ps();
  if (t < wake_ps_) wake_ps_ = t;
}

void Sm::deliver_ofld_ack(Packet p, TimePs ready_ps) {
  acks_in_.push(std::move(p), ready_ps);
  const TimePs t = acks_in_.back_ready_ps();
  if (t < wake_ps_) wake_ps_ = t;
}

unsigned Sm::alloc_tracker() {
  for (unsigned i = 0; i < trackers_.size(); ++i) {
    if (!trackers_[i].valid) return i;
  }
  return kInvalidId;
}

unsigned Sm::free_trackers() const {
  unsigned n = 0;
  for (const LoadTracker& t : trackers_) n += t.valid ? 0 : 1;
  return n;
}

void Sm::complete_tracker(unsigned idx, Cycle cycle, LineServe serve) {
  LoadTracker& t = trackers_.at(idx);
  if (!t.valid || t.lines_pending == 0) throw std::logic_error("Sm: bad tracker completion");
  if (profile_) {
    // Remember the deepest level that served any of this warp's fills; the
    // warp's parked dep-pending cycles are re-billed to it at next issue.
    auto& worst = warp_worst_serve_[t.warp];
    worst = std::max(worst, static_cast<std::uint8_t>(serve));
  }
  if (--t.lines_pending > 0) return;
  Warp& w = warps_.at(t.warp);
  w.scoreboard.complete_load(t.dst, cycle);
  if (w.outstanding_loads == 0) throw std::logic_error("Sm: load count underflow");
  --w.outstanding_loads;
  t.valid = false;
  --active_trackers_;
}

const CoalesceCache& Sm::coalesced(Warp& w, const Instr& in, LaneMask lanes) {
  CoalesceCache& cc = w.coalesce_cache;
  if (!cc.valid_for(w.pc, w.issue_stamp)) {
    cc.pc = w.pc;
    cc.stamp = w.issue_stamp;
    cc.lanes = lanes;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (lanes & (LaneMask{1} << lane)) cc.addrs[lane] = effective_address(in, w.lanes[lane]);
    }
    cc.lines = coalescer_.coalesce(cc.addrs, lanes, in.mem_width);
  }
  return cc;
}

void Sm::push_out(Packet&& p, TimePs ready_ps) {
  out_.push(std::move(p), ready_ps);
  if (l2_wake_ != nullptr) {
    const TimePs t = out_.back_ready_ps();
    if (t < *l2_wake_) *l2_wake_ = t;
  }
}

void Sm::emit_or_hold(Warp& warp, Packet&& p, TimePs now) {
  GpuOffloadCtx& ctx = *warp.ofld;
  if (ctx.credits_granted) {
    push_out(std::move(p), now);
  } else {
    ctx.held.push_back(std::move(p));
    ++pending_count_;
  }
}

void Sm::retry_credit_grants(TimePs now) {
  if (awaiting_grant_ == 0) return;
  for (Warp& w : warps_) {
    if (!w.valid() || !w.ofld) continue;
    GpuOffloadCtx& ctx = *w.ofld;
    if (ctx.credits_granted || ctx.target == kInvalidId) continue;
    if (!ctx_.bufmgr->try_reserve(ctx.target, ctx.info->num_loads, ctx.info->num_stores,
                                  w.tenant)) {
      continue;
    }
    ctx.credits_granted = true;
    --awaiting_grant_;
    for (Packet& p : ctx.held) {
      // The target NSU was unknown when these were generated.
      p.target_nsu = static_cast<std::uint8_t>(ctx.target);
      if (p.type == PacketType::kOfldCmd || p.type == PacketType::kWta ||
          p.type == PacketType::kRdfResp) {
        p.dst_node = static_cast<std::uint16_t>(ctx.target);
      }
      // Pending-buffer residency (waiting for the credit grant) is queueing.
      if (ctx_.latency != nullptr) {
        ctx_.latency->queue_hop(p, now, "credit_grant", ctx_.cfg->num_hmcs);
      }
      push_out(std::move(p), now);
    }
    pending_count_ -= static_cast<unsigned>(ctx.held.size());
    ctx.held.clear();
  }
}

void Sm::apply_gap(Cycle gap) {
  // Replay what each skipped cycle would have counted under naive stepping.
  switch (gap_class_) {
    case GapClass::kDependency:
      active_cycles += gap;
      stall_dependency += gap;
      break;
    case GapClass::kExecBusy:
      active_cycles += gap;
      stall_exec_busy += gap;
      break;
    case GapClass::kWarpIdle:
      active_cycles += gap;
      stall_warp_idle += gap;
      break;
    case GapClass::kNoWarp:
      if (profile_) {
        no_warp_cycles_ += gap;
        cyc_.add(cyc_.shared_row(), static_cast<std::size_t>(SmBucket::kDispatchIdle), gap);
      }
      return;
    case GapClass::kNone:
      return;
  }
  // The blocked state a sleeping SM froze in is constant across the gap, so
  // the refined bucket recorded at the sleep decision replays verbatim.
  if (profile_) add_stall_cycles(gap);
}

// Account `n` stall cycles to the bucket classify_stall_cycle() chose.
void Sm::add_stall_cycles(Cycle n) {
  cyc_.add(gap_row_, static_cast<std::size_t>(gap_bucket_), n);
  if (gap_pending_warp_ != kInvalidId) pending_dep_cycles_[gap_pending_warp_] += n;
}

// Pick the refined bucket (and owning tenant row) for one no-issue cycle
// with at least one valid warp, mirroring the Fig. 8 priority exactly:
// dependency before exec-busy before warp-idle.  The result is stored in
// gap_{bucket,row,pending_warp}_ so the sleep path replays the same class.
void Sm::classify_stall_cycle(Cycle cycle, bool saw_dep, bool saw_busy) {
  gap_pending_warp_ = kInvalidId;
  if (saw_dep) {
    const Warp& w = warps_[dep_warp_];
    gap_row_ = w.tenant;
    const Instr& in = ctx_.image_of(w.tenant)->gpu.at(w.pc);
    if (w.scoreboard.blocked_on_pending_load(in)) {
      // In-flight load: park the cycle; re-billed to the serving level
      // (L2 / local DRAM / remote DRAM) when the warp issues again.
      gap_bucket_ = SmBucket::kDepPending;
      gap_pending_warp_ = dep_warp_;
    } else {
      gap_bucket_ = w.scoreboard.blocking_source(in, cycle) == DepSource::kL1
                        ? SmBucket::kDepL1
                        : SmBucket::kDepPipe;
    }
  } else if (saw_busy) {
    gap_row_ = warps_[busy_warp_].tenant;
    gap_bucket_ = busy_warp_cause_ == BusyCause::kCredit ? SmBucket::kCreditWait
                                                         : SmBucket::kExecBusy;
  } else {
    // Warp idle: attribute to the first valid warp in slot order, with any
    // warp parked on an offload ACK taking precedence over one parked at a
    // barrier, and either over a finished (draining) warp.
    const Warp* first = nullptr;
    const Warp* ack = nullptr;
    const Warp* barrier = nullptr;
    for (const Warp& w : warps_) {
      if (!w.valid()) continue;
      if (first == nullptr) first = &w;
      if (w.state == WarpState::kWaitAck) {
        ack = &w;
        break;
      }
      if (barrier == nullptr && w.state == WarpState::kWaitBarrier) barrier = &w;
    }
    if (ack != nullptr) {
      gap_bucket_ = SmBucket::kOfldParked;
      gap_row_ = ack->tenant;
    } else if (barrier != nullptr) {
      gap_bucket_ = SmBucket::kBarrier;
      gap_row_ = barrier->tenant;
    } else {
      gap_bucket_ = SmBucket::kWarpDrain;
      gap_row_ = first != nullptr ? first->tenant : cyc_.shared_row();
    }
  }
  add_stall_cycles(1);
}

// Re-bill a warp's parked dep-pending cycles to the deepest level that
// served its fills.  Called at the warp's next issue (the stall just ended)
// — a sum-preserving move inside the warp's tenant row.
void Sm::flush_pending_dep(Warp& w) {
  std::uint64_t& parked = pending_dep_cycles_[w.id];
  if (parked == 0) return;
  SmBucket to = SmBucket::kDepL2;
  switch (static_cast<LineServe>(warp_worst_serve_[w.id])) {
    case LineServe::kL2: to = SmBucket::kDepL2; break;
    case LineServe::kDramLocal: to = SmBucket::kDepDramLocal; break;
    case LineServe::kDramRemote: to = SmBucket::kDepDramRemote; break;
  }
  cyc_.move(w.tenant, static_cast<std::size_t>(SmBucket::kDepPending),
            static_cast<std::size_t>(to), parked);
  parked = 0;
  warp_worst_serve_[w.id] = 0;
}

void Sm::finalize(Cycle end_cycle) {
  if (end_cycle > next_expected_cycle_) {
    apply_gap(end_cycle - next_expected_cycle_);
    next_expected_cycle_ = end_cycle;
  }
}

void Sm::tick(Cycle cycle, TimePs now) {
  if (fast_forward_ && wake_ps_ > now) return;  // asleep; counters deferred
  if (cycle > next_expected_cycle_) apply_gap(cycle - next_expected_cycle_);
  next_expected_cycle_ = cycle + 1;
  now_cycle_ = cycle;

  // Line fills (L2 hits and DRAM fills) wake trackers through the L1 MSHRs.
  while (auto line = line_fills_.pop_ready(now)) {
    for (std::uint64_t token : l1_.fill(line->line_addr)) {
      complete_tracker(static_cast<unsigned>(token), cycle, line->serve);
    }
  }

  // Offload acknowledgments.
  while (auto ack = acks_in_.pop_ready(now)) {
    Warp& w = warps_.at(ack->oid.warp);
    if (!w.ofld || w.ofld->instance != ack->oid.instance || w.state != WarpState::kWaitAck) {
      throw std::logic_error("Sm: stray offload ACK");
    }
    const OffloadBlockInfo& info = *w.ofld->info;
    for (std::size_t r = 0; r < ack->reg_ids.size(); ++r) {
      const unsigned reg = ack->reg_ids[r];
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (w.active & (LaneMask{1} << lane)) {
          w.lanes[lane].regs[reg] = ack->reg_values[r * kWarpWidth + lane];
        }
      }
      w.scoreboard.set_reg_ready_at(reg, cycle);
    }
    ++ofld_acks_;
    acked_block_instrs_ += info.body_size();
    ctx_.governor_of(w.tenant)->on_block_complete(info.body_size());
    w.ofld.reset();
    w.cur_block = kNoBlock;
    w.state = WarpState::kReady;
    ++w.pc;  // past OFLD.END
  }

  retry_credit_grants(now);

  // --- Issue stage (GTO: greedy warp first, then oldest by slot id). -------
  bool any_warp = false;
  for (const Warp& w : warps_) any_warp = any_warp || w.valid();
  if (any_warp) {
    ++active_cycles;
    // The no-warp total is constant across any contiguous active period, so
    // refreshing the snapshot at every active tick is fast-forward-invariant
    // and leaves it holding the pre-last-activity share (dispatch idle).
    if (profile_) no_warp_snapshot_ = no_warp_cycles_;
  } else if (profile_) {
    ++no_warp_cycles_;
    cyc_.add(cyc_.shared_row(), static_cast<std::size_t>(SmBucket::kDispatchIdle), 1);
  }

  bool saw_dep = false;
  bool saw_busy = false;
  bool any_ready = false;
  bool issued = false;
  // Earliest cycle at which any blocked ready warp could unblock on its own
  // (timed scoreboard entry, exec unit freeing up); kCycleNever when every
  // blocker needs an external event.  Complete only when nothing issued —
  // which is the only case the sleep decision reads it.
  Cycle self_wake = kCycleNever;

  if (profile_) {
    dep_warp_ = kInvalidId;
    busy_warp_ = kInvalidId;
  }

  auto consider = [&](Warp& w) -> bool {
    if (w.state != WarpState::kReady) return false;
    any_ready = true;
    switch (try_issue(w, cycle, now)) {
      case IssueOutcome::kIssued:
        issued = true;
        ++issued_instrs;
        ++issued_by_tenant_[w.tenant];
        ++w.issue_stamp;  // invalidates the warp's coalesce memo
        if (profile_) {
          cyc_.add(w.tenant, static_cast<std::size_t>(SmBucket::kIssue), 1);
          flush_pending_dep(w);
        }
        return true;
      case IssueOutcome::kDependency:
        saw_dep = true;
        if (profile_ && dep_warp_ == kInvalidId) dep_warp_ = w.id;
        self_wake = std::min(
            self_wake, w.scoreboard.ready_cycle(ctx_.image_of(w.tenant)->gpu.at(w.pc)));
        return false;
      case IssueOutcome::kExecBusy:
        saw_busy = true;
        if (profile_ && busy_warp_ == kInvalidId) {
          busy_warp_ = w.id;
          busy_warp_cause_ = busy_cause_;
        }
        self_wake = std::min(self_wake, retry_cycle_);
        return false;
    }
    return false;
  };

  if (greedy_ptr_ < warps_.size() && consider(warps_[greedy_ptr_])) {
    // keep greedy_ptr_
  } else {
    for (unsigned i = 0; i < warps_.size() && !issued; ++i) {
      if (i == greedy_ptr_) continue;
      if (consider(warps_[i])) greedy_ptr_ = i;
    }
  }

  if (!issued && any_warp) {
    // Fig. 8 classification.
    if (saw_dep) {
      ++stall_dependency;
    } else if (saw_busy) {
      ++stall_exec_busy;
    } else {
      ++stall_warp_idle;
      (void)any_ready;
    }
    if (profile_) classify_stall_cycle(cycle, saw_dep, saw_busy);
  }

  // Decide whether the SM can sleep (hints are maintained in both stepping
  // modes — naive serial stepping never reads them, but a naive parallel
  // partition paces its windows on them).  It can whenever nothing issued and no
  // credit grant is being polled: every blocked ready warp then stays
  // blocked — and its retry stays side-effect-free — until either a known
  // future cycle (self_wake: exec unit frees, timed scoreboard entry
  // resolves) or an external event that lowers wake_ps_ (line fill, ACK,
  // egress drain).  The gap class records what each slept cycle counts as
  // in Fig. 8, mirroring the dependency-before-busy priority above.
  gap_class_ = GapClass::kNone;
  if (!busy()) {
    // Fully drained (the last warp may have exited this very cycle): only a
    // new CTA re-arms the SM, and assign_cta lowers the hint directly.
    // Slept edges carry no warps: no-warp cycles for the profiler.
    gap_class_ = GapClass::kNoWarp;
    wake_ps_ = kTimeNever;
    return;
  }
  wake_ps_ = now;  // default: busy at the next edge
  if (issued || awaiting_grant_ != 0) return;
  if (any_ready) {
    gap_class_ = saw_dep ? GapClass::kDependency : GapClass::kExecBusy;
  } else if (any_warp) {
    gap_class_ = GapClass::kWarpIdle;
  } else {
    // Busy (trackers / egress draining) but no resident warp: the profiler
    // still has to account these cycles somewhere — no-warp.
    gap_class_ = GapClass::kNoWarp;
  }
  TimePs wake = kTimeNever;
  if (!line_fills_.empty()) wake = std::min(wake, line_fills_.front_ready_ps());
  if (!acks_in_.empty()) wake = std::min(wake, acks_in_.front_ready_ps());
  if (self_wake != kCycleNever) {
    wake = std::min(wake, tick_time_ps(self_wake, ctx_.cfg->clocks.sm_khz));
  }
  wake_ps_ = wake;
}

Sm::IssueOutcome Sm::try_issue(Warp& w, Cycle cycle, TimePs now) {
  const Instr& in = ctx_.image_of(w.tenant)->gpu.at(w.pc);
  busy_cause_ = BusyCause::kUnit;  // overridden by the credit-starved site

  if (!w.scoreboard.can_issue(in, cycle)) return IssueOutcome::kDependency;

  // @NSU instructions are replaced by NOPs on the GPU while the block is
  // offloaded (duplicated address-calculation instructions still run here).
  if (w.ofld && in.on_nsu && !in.addr_calc) {
    ++w.pc;
    ctx_.energy->sm_lane_ops += 1;  // the NOP still flows down the pipe
    return IssueOutcome::kIssued;
  }

  switch (in.op) {
    case Opcode::kNop:
      ++w.pc;
      return IssueOutcome::kIssued;

    case Opcode::kBra:
      handle_branch(w, in);
      return IssueOutcome::kIssued;

    case Opcode::kBar:
      handle_barrier(w);
      return IssueOutcome::kIssued;

    case Opcode::kExit:
      handle_exit(w);
      return IssueOutcome::kIssued;

    case Opcode::kOfldBeg:
      begin_offload(w, in, cycle, now);
      return IssueOutcome::kIssued;

    case Opcode::kOfldEnd:
      end_offload_or_inline(w, cycle, now);
      return IssueOutcome::kIssued;

    case Opcode::kLd:
    case Opcode::kSt:
      if (w.ofld) return issue_mem_offload(w, in, cycle, now);
      return issue_mem_inline(w, in, cycle, now);

    case Opcode::kShmLd:
    case Opcode::kShmSt:
    case Opcode::kLdc:
      return issue_mem_inline(w, in, cycle, now);

    default: {
      // ALU / SFU.
      const bool sfu = in.exec_class() == ExecClass::kSfu;
      Cycle& busy = sfu ? sfu_busy_until_ : alu_busy_until_;
      if (busy > cycle) {
        retry_cycle_ = busy;  // unit frees at a known cycle
        return IssueOutcome::kExecBusy;
      }
      busy = cycle + (sfu ? cfg_.sfu_ii : cfg_.alu_ii);
      execute_alu_warp(w, in, cycle);
      ++w.pc;
      return IssueOutcome::kIssued;
    }
  }
}

void Sm::execute_alu_warp(Warp& w, const Instr& in, Cycle cycle) {
  const LaneMask lanes = w.exec_mask(in);
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (lanes & (LaneMask{1} << lane)) execute_alu(in, w.lanes[lane]);
  }
  const bool sfu = in.exec_class() == ExecClass::kSfu;
  const Cycle done = cycle + (sfu ? cfg_.sfu_latency : cfg_.alu_latency);
  if (in.writes_reg()) w.scoreboard.set_reg_ready_at(in.dst, done, DepSource::kPipe);
  if (in.writes_pred()) w.scoreboard.set_pred_ready_at(in.pred_dst, done);
  ctx_.energy->sm_lane_ops += popcount_mask(lanes);
}

void Sm::handle_branch(Warp& w, const Instr& in) {
  const LaneMask lanes = w.exec_mask(in);
  if (lanes != 0 && lanes != w.active) {
    throw std::logic_error("Sm: divergent branch — kernels must use predication");
  }
  ctx_.energy->sm_lane_ops += popcount_mask(w.active);
  w.pc = lanes == 0 ? w.pc + 1 : static_cast<unsigned>(in.target);
}

void Sm::handle_barrier(Warp& w) {
  CtaSlot& cta = ctas_.at(w.cta_slot);
  w.state = WarpState::kWaitBarrier;
  if (++cta.at_barrier < cta.num_warps) return;
  // Everyone arrived: release.
  cta.at_barrier = 0;
  for (Warp& other : warps_) {
    if (other.valid() && other.cta_slot == w.cta_slot &&
        other.state == WarpState::kWaitBarrier) {
      other.state = WarpState::kReady;
      ++other.pc;
    }
  }
}

void Sm::handle_exit(Warp& w) {
  w.state = WarpState::kFinished;
  CtaSlot& cta = ctas_.at(w.cta_slot);
  if (++cta.finished < cta.num_warps) return;
  // CTA complete: free the slot and its warps.
  for (Warp& other : warps_) {
    if (other.valid() && other.cta_slot == w.cta_slot) {
      if (other.state != WarpState::kFinished) {
        throw std::logic_error("Sm: CTA completed with unfinished warp");
      }
      other.state = WarpState::kInvalid;
      other.ofld.reset();
      ++free_warps_;
    }
  }
  const unsigned tenant = cta.tenant;
  cta.valid = false;
  ++free_cta_slots_;
  if (tenant_progress_ != nullptr && tenant < tenant_progress_->size()) {
    TenantCtaProgress& tp = (*tenant_progress_)[tenant];
    if (++tp.done == tp.total) tp.finish_cycle = now_cycle_;
  }
  if (dispatch_wake_ != nullptr) *dispatch_wake_ = true;
}

void Sm::begin_offload(Warp& w, const Instr& in, Cycle /*cycle*/, TimePs now) {
  const auto block_id = static_cast<unsigned>(in.imm);
  const OffloadBlockInfo& info = ctx_.image_of(w.tenant)->blocks.at(block_id);
  w.cur_block = block_id;

  if (!ctx_.governor_of(w.tenant)->decide(info, w.active_count())) {
    ++inline_blocks_;
    ++w.pc;
    return;
  }

  ++offloads_started_;
  ++awaiting_grant_;
  w.ofld = std::make_unique<GpuOffloadCtx>();
  w.ofld->info = &info;
  w.ofld->instance = next_instance_++;

  Packet cmd;
  cmd.type = PacketType::kOfldCmd;
  cmd.tenant = static_cast<std::uint8_t>(w.tenant);
  cmd.oid = OffloadPacketId{id_, w.id, 0, block_id, w.ofld->instance};
  cmd.line_addr = info.nsu_entry;  // "physical start PC" field (Fig. 4(a))
  cmd.mask = w.active;
  cmd.reg_ids = info.regs_in;
  cmd.reg_values.assign(info.regs_in.size() * kWarpWidth, 0);
  for (std::size_t r = 0; r < info.regs_in.size(); ++r) {
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      cmd.reg_values[r * kWarpWidth + lane] = w.lanes[lane].regs[info.regs_in[r]];
    }
  }
  if (info.needs_preds) {
    cmd.lane_preds.assign(kWarpWidth, 0);
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      std::uint8_t bits = 0;
      for (unsigned p = 0; p < kNumPreds; ++p) {
        bits |= static_cast<std::uint8_t>(w.lanes[lane].preds[p] ? 1u << p : 0u);
      }
      cmd.lane_preds[lane] = bits;
    }
  }
  cmd.size_bytes = cmd_packet_bytes(static_cast<unsigned>(info.regs_in.size()),
                                    w.active_count(), info.needs_preds);
  // The cmd->ACK span opens here: time spent held waiting for the target
  // decision and the credit grant is part of the round trip (as queueing).
  if (ctx_.latency != nullptr) ctx_.latency->start(cmd, now, ctx_.cfg->num_hmcs);
  // Target NSU is unknown until the first memory instruction: hold the
  // command in the pending packet buffer.
  w.ofld->held.push_back(std::move(cmd));
  ++pending_count_;
  ++w.pc;
}

void Sm::end_offload_or_inline(Warp& w, Cycle /*cycle*/, TimePs now) {
  if (!w.ofld) {
    // Inline execution of the block just finished.
    const KernelImage& image = *ctx_.image_of(w.tenant);
    const OffloadBlockInfo& info =
        image.blocks.at(static_cast<unsigned>(image.gpu.at(w.pc).imm));
    inline_block_instrs_ += info.body_size();
    ctx_.governor_of(w.tenant)->on_block_complete(info.body_size());
    w.cur_block = kNoBlock;
    ++w.pc;
    return;
  }
  // Offloaded: block until the NSU acknowledges.  Under the optimal-target
  // ablation the target is decided here, over all accumulated votes.  If no
  // memory instruction executed (fully predicated-off block), fall back to
  // a fixed target so the command can still be delivered.
  if (w.ofld->target == kInvalidId) {
    unsigned best = 0;
    if (!w.ofld->votes.empty()) {
      for (unsigned h = 1; h < w.ofld->votes.size(); ++h) {
        if (w.ofld->votes[h] > w.ofld->votes[best]) best = h;
      }
    }
    w.ofld->target = best;
    retry_credit_grants(now);
  }
  w.state = WarpState::kWaitAck;
}

Sm::IssueOutcome Sm::issue_mem_inline(Warp& w, const Instr& in, Cycle cycle, TimePs now) {
  if (lsu_busy_until_ > cycle) {
    retry_cycle_ = lsu_busy_until_;
    return IssueOutcome::kExecBusy;
  }
  const LaneMask lanes = w.exec_mask(in);
  if (lanes == 0) {
    ++w.pc;
    return IssueOutcome::kIssued;
  }

  // Scratchpad / constant space: fixed latency, no off-chip traffic.
  if (in.op == Opcode::kShmLd || in.op == Opcode::kLdc) {
    lsu_busy_until_ = cycle + 1;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(lanes & (LaneMask{1} << lane))) continue;
      ThreadCtx& t = w.lanes[lane];
      const Addr a = effective_address(in, t);
      if (in.op == Opcode::kShmLd) {
        const std::uint64_t key = (static_cast<std::uint64_t>(w.cta_slot) << 48) | a;
        auto it = shm_.find(key);
        t.regs[in.dst] = it == shm_.end() ? 0 : it->second;
      } else {
        t.regs[in.dst] = ctx_.gmem->load_reg(a, in.mem_width, in.mem_f32);
      }
    }
    w.scoreboard.set_reg_ready_at(in.dst, cycle + cfg_.shm_latency, DepSource::kL1);
    ctx_.energy->sm_lane_ops += popcount_mask(lanes);
    ++w.pc;
    return IssueOutcome::kIssued;
  }
  if (in.op == Opcode::kShmSt) {
    lsu_busy_until_ = cycle + 1;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (!(lanes & (LaneMask{1} << lane))) continue;
      ThreadCtx& t = w.lanes[lane];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(w.cta_slot) << 48) | effective_address(in, t);
      shm_[key] = t.regs[in.src[1]];
    }
    ctx_.energy->sm_lane_ops += popcount_mask(lanes);
    ++w.pc;
    return IssueOutcome::kIssued;
  }

  // Cheap structural pre-checks before paying for address generation —
  // stalled warps retry every cycle, so this path must stay light.  All of
  // these resolve only on external events: an egress drain (on_egress_pop)
  // or a line fill freeing MSHRs/trackers (deliver_line).
  if (out_.size() >= ctx_.cfg->ndp_buffers.sm_ready_entries) {
    retry_cycle_ = kCycleNever;
    return IssueOutcome::kExecBusy;  // egress queue full
  }
  unsigned tracker_idx = kInvalidId;
  if (in.op == Opcode::kLd) {
    if (l1_.mshr_free() == 0) {
      retry_cycle_ = kCycleNever;
      return IssueOutcome::kExecBusy;
    }
    tracker_idx = alloc_tracker();
    if (tracker_idx == kInvalidId) {
      retry_cycle_ = kCycleNever;
      return IssueOutcome::kExecBusy;
    }
  }

  // Global loads/stores: coalesce (memoized across stalled retries).
  const CoalesceCache& cc = coalesced(w, in, lanes);
  const auto& addrs = cc.addrs;
  const auto& lines = cc.lines;
  const auto n_lines = static_cast<unsigned>(lines.size());

  if (out_.size() + n_lines > ctx_.cfg->ndp_buffers.sm_ready_entries) {
    retry_cycle_ = kCycleNever;
    return IssueOutcome::kExecBusy;  // egress queue full
  }

  if (in.op == Opcode::kLd) {
    if (l1_.mshr_free() < n_lines) {
      retry_cycle_ = kCycleNever;
      return IssueOutcome::kExecBusy;
    }

    LoadTracker& tracker = trackers_[tracker_idx];
    tracker = LoadTracker{true, w.id, in.dst, 0};
    ++active_trackers_;
    for (const LineAccess& la : lines) {
      ++ctx_.energy->l1_accesses;
      switch (l1_.access_read(la.line_addr, tracker_idx)) {
        case CacheAccessResult::kHit: {
          // Cache-locality statistics for the governor (§7.3): L1 hits are
          // recorded here, L1 misses at the L2 slice with the L2 outcome.
          if (w.cur_block != kNoBlock) {
            ctx_.governor_of(w.tenant)->cache_table().record_load_line(
                w.cur_block, true, popcount_mask(la.lanes) * in.mem_width);
          }
          break;
        }
        case CacheAccessResult::kMissNew: {
          ++tracker.lines_pending;
          Packet p;
          p.type = PacketType::kMemRead;
          p.tenant = static_cast<std::uint8_t>(w.tenant);
          p.line_addr = la.line_addr;
          p.token = id_;  // L2-level waiter identity: which SM to wake
          p.oid.sm = id_;
          p.oid.block = w.cur_block;
          p.mask = la.lanes;
          p.mem_width = in.mem_width;
          p.size_bytes = mem_read_req_bytes();
          if (ctx_.latency != nullptr) {
            ctx_.latency->start(p, now, ctx_.cfg->num_hmcs);
            ctx_.latency->add_link(p, 0, ctx_.cfg->xbar_latency_ps);
          }
          push_out(std::move(p), now + ctx_.cfg->xbar_latency_ps);
          break;
        }
        case CacheAccessResult::kMissMerged:
          ++tracker.lines_pending;
          break;
        case CacheAccessResult::kMshrFull:
          throw std::logic_error("Sm: MSHR full despite headroom check");
      }
    }
    // Functional data is read at issue (write-through memory is current).
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (lanes & (LaneMask{1} << lane)) {
        w.lanes[lane].regs[in.dst] = ctx_.gmem->load_reg(addrs[lane], in.mem_width, in.mem_f32);
      }
    }
    if (tracker.lines_pending == 0) {
      // All lines hit in the L1.
      tracker.valid = false;
      --active_trackers_;
      w.scoreboard.set_reg_ready_at(in.dst, cycle + cfg_.l1d.latency_cycles, DepSource::kL1);
    } else {
      w.scoreboard.mark_load_pending(in.dst);
      ++w.outstanding_loads;
    }
  } else {
    // Store: write-through, no-allocate, fire-and-forget (relaxed model).
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (lanes & (LaneMask{1} << lane)) {
        ctx_.gmem->store_reg(addrs[lane], w.lanes[lane].regs[in.src[1]], in.mem_width,
                             in.mem_f32);
      }
    }
    for (const LineAccess& la : lines) {
      ++ctx_.energy->l1_accesses;
      l1_.write_touch(la.line_addr);
      ctx_.ro_cache->invalidate(la.line_addr);
      Packet p;
      p.type = PacketType::kMemWrite;
      p.tenant = static_cast<std::uint8_t>(w.tenant);
      p.line_addr = la.line_addr;
      p.oid.sm = id_;
      p.oid.block = w.cur_block;
      const unsigned touched = popcount_mask(la.lanes) * in.mem_width;
      p.size_bytes = mem_write_req_bytes(touched);
      if (ctx_.latency != nullptr) {
        ctx_.latency->start(p, now, ctx_.cfg->num_hmcs);
        ctx_.latency->add_link(p, 0, ctx_.cfg->xbar_latency_ps);
      }
      push_out(std::move(p), now + ctx_.cfg->xbar_latency_ps);
    }
    if (w.cur_block != kNoBlock) {
      ctx_.governor_of(w.tenant)->cache_table().record_store_bytes(
          w.cur_block, popcount_mask(lanes) * in.mem_width);
    }
  }

  ctx_.energy->sm_lane_ops += popcount_mask(lanes);
  lsu_busy_until_ = cycle + n_lines;
  ++w.pc;
  return IssueOutcome::kIssued;
}

Sm::IssueOutcome Sm::issue_mem_offload(Warp& w, const Instr& in, Cycle cycle, TimePs now) {
  if (lsu_busy_until_ > cycle) {
    retry_cycle_ = lsu_busy_until_;
    return IssueOutcome::kExecBusy;
  }
  GpuOffloadCtx& ofld = *w.ofld;
  const LaneMask lanes = w.exec_mask(in);
  if (lanes == 0) {
    ++ofld.seq;
    ++w.pc;
    return IssueOutcome::kIssued;
  }

  const CoalesceCache& cc = coalesced(w, in, lanes);
  const auto& addrs = cc.addrs;
  const auto& lines = cc.lines;
  const auto n_lines = static_cast<unsigned>(lines.size());

  // Capacity: packets either enter the pending buffer (credits not granted
  // yet) or the ready/egress queue.
  if (!ofld.credits_granted) {
    if (pending_count_ + n_lines > ctx_.cfg->ndp_buffers.sm_pending_entries) {
      ++pending_full_stalls_;
      busy_cause_ = BusyCause::kCredit;
      // Mutating retry (the stall counter advances every cycle): the SM must
      // NOT sleep through this state, so demand a retry at the very next edge.
      retry_cycle_ = cycle + 1;
      return IssueOutcome::kExecBusy;
    }
  } else if (out_.size() + n_lines > ctx_.cfg->ndp_buffers.sm_ready_entries) {
    retry_cycle_ = kCycleNever;  // unblocked only by an egress drain
    return IssueOutcome::kExecBusy;
  }

  // Target NSU selection.  Paper policy (§4.1.1): the first memory
  // instruction's majority HMC, fixed for the rest of the block.  Ablation
  // (optimal_target_selection): accumulate votes over every access and
  // decide at OFLD.END — faithful to the "huge buffer" cost, since all
  // packets sit in the pending buffer until then.
  if (ctx_.cfg->optimal_target_selection) {
    if (ofld.votes.empty()) ofld.votes.assign(ctx_.cfg->num_hmcs, 0);
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (lanes & (LaneMask{1} << lane)) ++ofld.votes[ctx_.amap->hmc_of(addrs[lane])];
    }
  } else if (ofld.target == kInvalidId) {
    std::vector<unsigned> votes(ctx_.cfg->num_hmcs, 0);
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      if (lanes & (LaneMask{1} << lane)) ++votes[ctx_.amap->hmc_of(addrs[lane])];
    }
    unsigned best = 0;
    for (unsigned h = 1; h < votes.size(); ++h) {
      if (votes[h] > votes[best]) best = h;
    }
    ofld.target = best;
    retry_credit_grants(now);
  }

  const OffloadPacketId oid{id_, w.id, ofld.seq, w.cur_block, ofld.instance};

  if (in.op == Opcode::kLd) {
    for (const LineAccess& la : lines) {
      ++ctx_.energy->l1_accesses;
      ++rdf_packets_;
      const bool hit = l1_.probe(la.line_addr);
      if (hit && w.cur_block != kNoBlock) {
        ctx_.governor_of(w.tenant)->cache_table().record_load_line(
            w.cur_block, true, popcount_mask(la.lanes) * in.mem_width);
      }
      Packet p;
      p.tenant = static_cast<std::uint8_t>(w.tenant);
      p.oid = oid;
      p.line_addr = la.line_addr;
      p.mask = la.lanes;
      p.expected_mask = lanes;
      p.target_nsu = static_cast<std::uint8_t>(ofld.target);
      p.mem_width = in.mem_width;
      p.mem_f32 = in.mem_f32;
      p.misaligned = la.misaligned;
      if (hit) {
        ++rdf_l1_hits_;
        // RDF hit in the L1: ship the cached words straight to the NSU.
        p.type = PacketType::kRdfResp;
        p.dst_node = static_cast<std::uint16_t>(ofld.target);
        p.lane_data.assign(kWarpWidth, 0);
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (la.lanes & (LaneMask{1} << lane)) {
            p.lane_data[lane] = ctx_.gmem->load_reg(addrs[lane], in.mem_width, in.mem_f32);
          }
        }
        // §7.1 extension: if the target NSU's read-only cache already holds
        // this line, send a tiny reference instead of the data.
        const bool ro_hit = ofld.target != kInvalidId &&
                            ctx_.ro_cache->lookup_or_insert(ofld.target, la.line_addr);
        p.size_bytes = ro_hit ? small_packet_bytes() + kAddrBytes
                              : rdf_resp_packet_bytes(popcount_mask(la.lanes), in.mem_width);
      } else {
        p.type = PacketType::kRdf;
        p.dst_node = static_cast<std::uint16_t>(ctx_.amap->hmc_of(la.line_addr));
        p.lane_addrs.assign(kWarpWidth, 0);
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (la.lanes & (LaneMask{1} << lane)) p.lane_addrs[lane] = addrs[lane];
        }
        p.size_bytes = rdf_wta_packet_bytes(popcount_mask(la.lanes), la.misaligned);
      }
      if (ctx_.latency != nullptr) {
        ctx_.latency->start(p, now, ctx_.cfg->num_hmcs);
        // RDFs served from the L1 short-circuit DRAM entirely — their own
        // path class.  Vault-served RDFs get local/remote at the HMC, where
        // the final target NSU is known even under the ablation.
        if (hit) ctx_.latency->set_path(p, PathClass::kRdfCacheHit);
        ctx_.latency->add_link(p, 0, ctx_.cfg->xbar_latency_ps);
      }
      emit_or_hold(w, std::move(p), now + ctx_.cfg->xbar_latency_ps);
    }
  } else {
    // Store: ship the write addresses to the target NSU.
    for (const LineAccess& la : lines) {
      ++wta_packets_;
      ctx_.wta_tracker->on_wta_generated(ctx_.amap->hmc_of(la.line_addr));
      ctx_.ro_cache->invalidate(la.line_addr);
      Packet p;
      p.type = PacketType::kWta;
      p.tenant = static_cast<std::uint8_t>(w.tenant);
      p.oid = oid;
      p.line_addr = la.line_addr;
      p.mask = la.lanes;
      p.expected_mask = lanes;
      p.dst_node = static_cast<std::uint16_t>(ofld.target);
      p.target_nsu = static_cast<std::uint8_t>(ofld.target);
      p.mem_width = in.mem_width;
      p.mem_f32 = in.mem_f32;
      p.misaligned = la.misaligned;
      p.lane_addrs.assign(kWarpWidth, 0);
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (la.lanes & (LaneMask{1} << lane)) p.lane_addrs[lane] = addrs[lane];
      }
      p.size_bytes = rdf_wta_packet_bytes(popcount_mask(la.lanes), la.misaligned);
      emit_or_hold(w, std::move(p), now + ctx_.cfg->xbar_latency_ps);
    }
    if (w.cur_block != kNoBlock) {
      ctx_.governor_of(w.tenant)->cache_table().record_store_bytes(
          w.cur_block, popcount_mask(lanes) * in.mem_width);
    }
  }

  ctx_.energy->sm_lane_ops += popcount_mask(lanes);
  lsu_busy_until_ = cycle + n_lines;
  ++ofld.seq;
  ++w.pc;
  return IssueOutcome::kIssued;
}

void Sm::export_stats(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".issued_instrs", static_cast<double>(issued_instrs));
  out.set(prefix + ".active_cycles", static_cast<double>(active_cycles));
  out.set(prefix + ".stall_dependency", static_cast<double>(stall_dependency));
  out.set(prefix + ".stall_exec_busy", static_cast<double>(stall_exec_busy));
  out.set(prefix + ".stall_warp_idle", static_cast<double>(stall_warp_idle));
  out.set(prefix + ".offloads_started", static_cast<double>(offloads_started_));
  out.set(prefix + ".inline_blocks", static_cast<double>(inline_blocks_));
  out.set(prefix + ".ofld_acks", static_cast<double>(ofld_acks_));
  out.set(prefix + ".inline_block_instrs", static_cast<double>(inline_block_instrs_));
  out.set(prefix + ".acked_block_instrs", static_cast<double>(acked_block_instrs_));
  out.set(prefix + ".rdf_packets", static_cast<double>(rdf_packets_));
  out.set(prefix + ".rdf_l1_hits", static_cast<double>(rdf_l1_hits_));
  out.set(prefix + ".wta_packets", static_cast<double>(wta_packets_));
  out.set(prefix + ".pending_full_stalls", static_cast<double>(pending_full_stalls_));
}

}  // namespace sndp
