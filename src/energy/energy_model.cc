#include "energy/energy_model.h"

namespace sndp {

void EnergyBreakdown::export_stats(StatSet& out) const {
  out.set("energy.gpu_j", gpu_j);
  out.set("energy.nsu_j", nsu_j);
  out.set("energy.hmc_noc_j", hmc_noc_j);
  out.set("energy.offchip_j", offchip_j);
  out.set("energy.dram_j", dram_j);
  out.set("energy.total_j", total());
}

EnergyBreakdown EnergyModel::compute(const EnergyCounters& c, TimePs runtime_ps,
                                     unsigned num_sms, unsigned num_hmcs,
                                     bool ndp_enabled) const {
  const double seconds = static_cast<double>(runtime_ps) * 1e-12;
  EnergyBreakdown e;

  // GPU: core dynamic + cache arrays + on-die wires + static.  SM static
  // power accrues per active SM-cycle (idle SMs power-gate); the shared L2
  // and chip infrastructure accrue for the whole runtime.
  (void)num_sms;
  e.gpu_j = static_cast<double>(c.sm_lane_ops) * cfg_.sm_op_j +
            static_cast<double>(c.l1_accesses) * cfg_.l1_access_j +
            static_cast<double>(c.l2_accesses) * cfg_.l2_access_j +
            static_cast<double>(c.gpu_wire_bytes) * 8.0 * cfg_.gpu_wire_j_per_bit +
            cfg_.sm_static_w * c.sm_active_seconds + cfg_.l2_static_w * seconds;

  // NSU: dynamic ops + static (only when the NDP machinery is powered;
  // with NDP off the NSUs and memory-network links are power-gated, §5).
  e.nsu_j = static_cast<double>(c.nsu_lane_ops) * cfg_.nsu_op_j;
  if (ndp_enabled) e.nsu_j += cfg_.nsu_static_w * num_hmcs * seconds;

  e.hmc_noc_j = static_cast<double>(c.hmc_noc_bytes) * 8.0 * cfg_.hmc_noc_j_per_bit +
                cfg_.hmc_static_w * num_hmcs * seconds;

  // Off-chip: 2 pJ/bit on every traversed link plus per-link static power.
  // GPU links are always on; the 3 memory-network links per HMC only count
  // when NDP is enabled.
  const double gpu_links = static_cast<double>(num_hmcs);
  const double cube_links = ndp_enabled ? 1.5 * num_hmcs : 0.0;  // 3 per HMC, shared
  e.offchip_j = static_cast<double>(c.offchip_bytes) * 8.0 * cfg_.offchip_j_per_bit +
                cfg_.link_static_w * (gpu_links + cube_links) * seconds;

  e.dram_j = static_cast<double>(c.dram_activates) * cfg_.dram_activate_j +
             static_cast<double>(c.dram_read_bytes + c.dram_write_bytes) * 8.0 *
                 cfg_.dram_row_read_j_per_bit;
  return e;
}

}  // namespace sndp
