// Energy accounting (paper §5 / Fig. 10).
//
// Components increment raw event counters during simulation; at the end of
// a run EnergyModel converts them into joules using the paper's published
// constants (11.8 nJ per 4 KB row activation, 4 pJ/bit row-buffer access,
// 2 pJ/bit off-chip links) plus static power integrated over the runtime.
// The breakdown matches Fig. 10's five categories: GPU, NSU, intra-HMC NoC,
// off-chip interconnect, and DRAM.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace sndp {

struct EnergyCounters {
  // GPU core events.
  std::uint64_t sm_lane_ops = 0;     // executed instructions x active lanes
  std::uint64_t l1_accesses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t gpu_wire_bytes = 0;  // on-die data movement (SM <-> L2 <-> links)
  // NSU events.
  std::uint64_t nsu_lane_ops = 0;
  // Memory-side events.
  std::uint64_t hmc_noc_bytes = 0;   // vault <-> logic-layer movement
  std::uint64_t dram_activates = 0;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  // Off-chip bytes come from the Network's link counters.
  std::uint64_t offchip_bytes = 0;
  // Sum over SMs of cycles with at least one live warp, in seconds (idle
  // SMs are power-gated, so SM static power is charged per active cycle —
  // this is what makes Baseline_MoreCore energy-neutral, as in Fig. 10).
  double sm_active_seconds = 0.0;

  // Fold another counter set into this one.  Parallel runs give each
  // partition its own shard and merge at the end; every field is a plain
  // sum, so the merged totals match a serial run's exactly (the
  // double-precision field only ever accumulates exact multiples of a
  // clock period, well within 2^53).
  void add(const EnergyCounters& o) {
    sm_lane_ops += o.sm_lane_ops;
    l1_accesses += o.l1_accesses;
    l2_accesses += o.l2_accesses;
    gpu_wire_bytes += o.gpu_wire_bytes;
    nsu_lane_ops += o.nsu_lane_ops;
    hmc_noc_bytes += o.hmc_noc_bytes;
    dram_activates += o.dram_activates;
    dram_read_bytes += o.dram_read_bytes;
    dram_write_bytes += o.dram_write_bytes;
    offchip_bytes += o.offchip_bytes;
    sm_active_seconds += o.sm_active_seconds;
  }
};

struct EnergyBreakdown {
  double gpu_j = 0.0;
  double nsu_j = 0.0;
  double hmc_noc_j = 0.0;
  double offchip_j = 0.0;
  double dram_j = 0.0;
  double total() const { return gpu_j + nsu_j + hmc_noc_j + offchip_j + dram_j; }

  void export_stats(StatSet& out) const;
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyConfig& cfg) : cfg_(cfg) {}

  // `runtime_ps` integrates static power; `num_sms`/`num_hmcs` scale it.
  EnergyBreakdown compute(const EnergyCounters& c, TimePs runtime_ps, unsigned num_sms,
                          unsigned num_hmcs, bool ndp_enabled) const;

 private:
  EnergyConfig cfg_;
};

}  // namespace sndp
