#include "offload/codegen.h"

#include <stdexcept>

namespace sndp {

KernelImage generate(const Program& original, const std::vector<BlockCandidate>& blocks) {
  // Blocks must be sorted and non-overlapping.
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    if (blocks[i].end > blocks[i + 1].begin) {
      throw std::invalid_argument("generate: overlapping offload blocks");
    }
  }

  KernelImage image;
  std::vector<Instr> gpu;
  std::vector<Instr> nsu;
  std::vector<unsigned> new_index(original.size() + 1, 0);

  std::size_t next_block = 0;
  for (unsigned i = 0; i <= original.size(); ++i) {
    const bool block_starts =
        next_block < blocks.size() && blocks[next_block].begin == i;
    if (block_starts) {
      const BlockCandidate& c = blocks[next_block];
      OffloadBlockInfo info;
      info.block_id = static_cast<unsigned>(next_block);
      info.num_loads = c.num_loads;
      info.num_stores = c.num_stores;
      info.regs_in = c.regs_in;
      info.regs_out = c.regs_out;
      info.indirect_single_load = c.indirect_single_load;
      info.needs_preds = c.needs_preds;
      info.static_score = c.score;

      // GPU: OFLD.BEG marker.  A branch targeting the old block start must
      // land on the marker so offload decisions precede the block.
      new_index[i] = static_cast<unsigned>(gpu.size());
      info.gpu_begin = static_cast<unsigned>(gpu.size());
      Instr beg;
      beg.op = Opcode::kOfldBeg;
      beg.imm = static_cast<std::int64_t>(info.block_id);
      gpu.push_back(beg);

      // NSU: entry marker.
      info.nsu_entry = static_cast<unsigned>(nsu.size());
      nsu.push_back(beg);

      // Body.  new_index[i] stays at the OFLD.BEG: a branch targeting the
      // block start must re-run the offload decision.
      for (unsigned k = i; k < c.end; ++k) {
        if (k != i) new_index[k] = static_cast<unsigned>(gpu.size());
        Instr in = original.at(k);
        const unsigned rel = k - c.begin;
        in.on_nsu = c.on_nsu[rel];
        in.addr_calc = c.addr_calc[rel];
        gpu.push_back(in);
        // NSU code: loads, stores, and NSU-side ALU; address-calculation
        // instructions (unless duplicated) and other GPU-only work removed.
        if (in.is_global_mem() || in.on_nsu) {
          Instr t = in;
          t.addr_calc = false;
          nsu.push_back(t);
          ++info.nsu_inst_count;
        }
      }

      Instr fin;
      fin.op = Opcode::kOfldEnd;
      fin.imm = static_cast<std::int64_t>(info.block_id);
      info.gpu_end = static_cast<unsigned>(gpu.size());
      gpu.push_back(fin);
      nsu.push_back(fin);

      image.blocks.push_back(std::move(info));
      ++next_block;
      i = c.end - 1;  // the for-loop ++ moves past the block body
      continue;
    }
    if (i < original.size()) {
      new_index[i] = static_cast<unsigned>(gpu.size());
      gpu.push_back(original.at(i));
    } else {
      new_index[i] = static_cast<unsigned>(gpu.size());
    }
  }

  // Re-resolve branch targets.
  for (Instr& in : gpu) {
    if (in.op == Opcode::kBra) {
      in.target = static_cast<std::int32_t>(new_index.at(static_cast<unsigned>(in.target)));
    }
  }

  image.gpu = Program(std::move(gpu));
  image.nsu = Program(std::move(nsu));
  image.gpu.validate();
  return image;
}

KernelImage analyze_and_generate(const Program& original, const AnalyzerOptions& opts) {
  const AnalysisResult analysis = analyze(original, opts);
  return generate(original, analysis.accepted);
}

}  // namespace sndp
