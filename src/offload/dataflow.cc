#include "offload/dataflow.h"

namespace sndp {

RegSet read_set(const Instr& instr) {
  RegSet set;
  for_each_src_reg(instr, [&](std::uint8_t r) { set.set(r); });
  return set;
}

RegSet write_set(const Instr& instr) {
  RegSet set;
  if (instr.writes_reg()) set.set(instr.dst);
  return set;
}

std::vector<bool> address_slice(const Program& prog, unsigned begin, unsigned end) {
  std::vector<bool> in_slice(end - begin, false);
  // Walk backwards keeping the set of registers that are "address sources":
  // a register needed (transitively) to compute a memory base address that
  // is *defined later* in the range.
  RegSet needed;
  for (unsigned i = end; i-- > begin;) {
    const Instr& in = prog.at(i);
    if (in.writes_reg() && needed.test(in.dst)) {
      in_slice[i - begin] = true;
      needed.reset(in.dst);
      needed |= read_set(in);
    }
    if (in.is_global_mem()) {
      needed.set(in.src[0]);  // base address register
    }
  }
  return in_slice;
}

std::vector<bool> load_data_consumers(const Program& prog, unsigned begin, unsigned end) {
  std::vector<bool> consumes(end - begin, false);
  RegSet tainted;
  for (unsigned i = begin; i < end; ++i) {
    const Instr& in = prog.at(i);
    const bool reads_taint = (read_set(in) & tainted).any();
    if (reads_taint) consumes[i - begin] = true;
    if (in.op == Opcode::kLd) {
      tainted.set(in.dst);
    } else if (in.writes_reg()) {
      if (reads_taint) {
        tainted.set(in.dst);  // taint propagates through ALU chains
      } else {
        tainted.reset(in.dst);  // redefinition from clean sources kills taint
      }
    }
  }
  return consumes;
}

namespace {

// Successor instruction indices of `i` for liveness purposes.
void for_each_successor(const Program& prog, unsigned i, auto&& fn) {
  const Instr& in = prog.at(i);
  if (in.op == Opcode::kExit) return;
  if (in.op == Opcode::kBra) {
    fn(static_cast<unsigned>(in.target));
    // A guarded branch can fall through; an unguarded one always jumps.
    if (in.guard_pred == kNoPred) return;
  }
  if (i + 1 < prog.size()) fn(i + 1);
}

}  // namespace

RegSet live_registers_at(const Program& prog, unsigned index) {
  const unsigned n = static_cast<unsigned>(prog.size());
  std::vector<RegSet> live_in(n + 1);  // live_in[i] = live before instruction i
  bool changed = true;
  while (changed) {
    changed = false;
    for (unsigned i = n; i-- > 0;) {
      const Instr& in = prog.at(i);
      RegSet out;
      for_each_successor(prog, i, [&](unsigned s) { out |= live_in[s]; });
      RegSet next = out;
      // A guarded write may not execute: it does not kill the register.
      if (in.writes_reg() && in.guard_pred == kNoPred) next.reset(in.dst);
      next |= read_set(in);
      if (next != live_in[i]) {
        live_in[i] = next;
        changed = true;
      }
    }
  }
  return index < n ? live_in[index] : RegSet{};
}

bool live_outside(const Program& prog, unsigned begin, unsigned end, unsigned reg) {
  (void)begin;
  return live_registers_at(prog, end).test(reg);
}

}  // namespace sndp
