#include "offload/target_selection.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace sndp {

TargetSelectionStats simulate_target_selection(unsigned num_hmcs, unsigned num_accesses,
                                               TargetPolicy policy, unsigned trials, Rng& rng) {
  if (num_hmcs == 0 || num_accesses == 0 || trials == 0) {
    throw std::invalid_argument("simulate_target_selection: zero-sized input");
  }
  double total = 0.0;
  std::vector<unsigned> counts(num_hmcs);
  for (unsigned t = 0; t < trials; ++t) {
    std::fill(counts.begin(), counts.end(), 0u);
    unsigned first = 0;
    for (unsigned a = 0; a < num_accesses; ++a) {
      const unsigned h = static_cast<unsigned>(rng.next_below(num_hmcs));
      if (a == 0) first = h;
      ++counts[h];
    }
    const unsigned local = policy == TargetPolicy::kFirstAccess
                               ? counts[first]
                               : *std::max_element(counts.begin(), counts.end());
    total += static_cast<double>(num_accesses - local) / static_cast<double>(num_accesses);
  }
  return TargetSelectionStats{total / static_cast<double>(trials)};
}

}  // namespace sndp
