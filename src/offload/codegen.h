// Offload code generation (paper §3.2, Fig. 3).
//
// Takes the original program plus the analyzer's accepted candidates and
// emits a KernelImage:
//  * GPU program: OFLD.BEG / OFLD.END markers inserted around each block,
//    branch targets re-resolved, @NSU and address-calculation roles stamped
//    on the in-block instructions.  Non-offloaded instances execute the
//    block inline, so the original instructions are preserved.
//  * NSU program: per block, OFLD.BEG; the block's loads, stores and
//    NSU-side ALU ops (address-calculation instructions removed, the
//    one-to-one ISA translation of §3.2); OFLD.END.
#pragma once

#include "isa/program.h"
#include "offload/analyzer.h"

namespace sndp {

KernelImage generate(const Program& original, const std::vector<BlockCandidate>& blocks);

// Convenience: analyze + generate in one step.
KernelImage analyze_and_generate(const Program& original, const AnalyzerOptions& opts = {});

}  // namespace sndp
