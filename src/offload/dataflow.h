// Register dataflow utilities used by the offload-block analyzer:
// address slices (which ALU ops feed memory addresses), load-data taint
// (which registers transitively hold values loaded inside a region), and
// conservative liveness (is a register read outside a region).
#pragma once

#include <bitset>
#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace sndp {

using RegSet = std::bitset<kNumRegs>;

// Registers read by `instr` (excluding immediates / unused slots).
RegSet read_set(const Instr& instr);

// Register written by `instr` (empty set if none).
RegSet write_set(const Instr& instr);

// For the half-open instruction range [begin, end) of `prog`, returns a
// bool per instruction in the range: true if the instruction is part of
// some memory instruction's *address slice* — it transitively produces the
// base-address register (src[0]) of a global LD/ST inside the range.
// Address slices stay on the GPU under partitioned execution (§4.1).
std::vector<bool> address_slice(const Program& prog, unsigned begin, unsigned end);

// For [begin, end), returns a bool per instruction: true if the instruction
// consumes load data — it reads a register that transitively derives from
// the result of a global LD inside the range.
std::vector<bool> load_data_consumers(const Program& prog, unsigned begin, unsigned end);

// Registers live at the program point just before instruction `index`
// (index == prog.size() is the exit point: nothing live).  Computed by a
// backward dataflow fixpoint over the full CFG (branches, loops).  Writes
// under a guard predicate do not kill (the write may not happen).
RegSet live_registers_at(const Program& prog, unsigned index);

// True if `reg` is live at the program point `end` — i.e., a path from the
// end of a block [*, end) reads it before writing it.
bool live_outside(const Program& prog, unsigned begin, unsigned end, unsigned reg);

}  // namespace sndp
