#include "offload/analyzer.h"

#include <algorithm>
#include <array>
#include <optional>
#include <sstream>

#include "offload/dataflow.h"

namespace sndp {
namespace {

bool run_breaker(const Instr& in) {
  // Instructions that can never be inside an offload block (§3.1): control
  // flow, synchronization, scratchpad and constant-space accesses.
  switch (in.op) {
    case Opcode::kBra:
    case Opcode::kBar:
    case Opcode::kExit:
    case Opcode::kShmLd:
    case Opcode::kShmSt:
    case Opcode::kLdc:
    case Opcode::kOfldBeg:
    case Opcode::kOfldEnd:
      return true;
    default:
      return false;
  }
}

// Tracks, per register, whether it is tainted by in-region load data and
// which instruction produced its current value.
struct TaintState {
  std::array<bool, kNumRegs> tainted{};
  std::array<int, kNumRegs> producer{};  // -1: defined before the region
  std::array<int, kNumPreds> pred_producer{};

  TaintState() {
    producer.fill(-1);
    pred_producer.fill(-1);
  }
};

// Finds the first index in [begin, end) where load data (or an in-region
// predicate definition) is consumed by something that must stay on the GPU,
// and returns the index to split at (one past the producing instruction).
// Returns nullopt if the region is conflict-free.
std::optional<unsigned> find_conflict_split(const Program& prog, unsigned begin, unsigned end) {
  const auto slice = address_slice(prog, begin, end);
  TaintState st;
  for (unsigned i = begin; i < end; ++i) {
    const Instr& in = prog.at(i);

    // Guard predicate defined in-region and used by a potentially NSU-side
    // instruction: the predicate cannot be marshalled mid-block, so the
    // block must start after its definition.
    if (in.guard_pred != kNoPred && (in.is_global_mem() || in.is_alu())) {
      const int pp = st.pred_producer[static_cast<unsigned>(in.guard_pred)];
      if (pp >= 0) return static_cast<unsigned>(pp) + 1;
    }

    // Memory address base derived from in-region load data.
    if (in.is_global_mem() && st.tainted[in.src[0]]) {
      return static_cast<unsigned>(st.producer[in.src[0]]) + 1;
    }

    // GPU-side consumers (address-slice ALU or predicate compare) of
    // tainted data.
    const bool gpu_side = slice[i - begin] || in.writes_pred();
    if (gpu_side) {
      int latest = -1;
      for_each_src_reg(in, [&](std::uint8_t r) {
        if (st.tainted[r]) latest = std::max(latest, st.producer[r]);
      });
      if (latest >= 0) return static_cast<unsigned>(latest) + 1;
    }

    // Update taint / producers.
    if (in.op == Opcode::kLd) {
      st.tainted[in.dst] = true;
      st.producer[in.dst] = static_cast<int>(i);
    } else if (in.writes_reg()) {
      bool reads_taint = false;
      for_each_src_reg(in, [&](std::uint8_t r) { reads_taint = reads_taint || st.tainted[r]; });
      st.tainted[in.dst] = reads_taint;
      st.producer[in.dst] = static_cast<int>(i);
    }
    if (in.writes_pred()) st.pred_producer[in.pred_dst] = static_cast<int>(i);
  }
  return std::nullopt;
}

// Builds a fully-classified candidate for the conflict-free region
// [begin, end), or nullopt when the region has no global memory access.
std::optional<BlockCandidate> classify(const Program& prog, unsigned begin, unsigned end) {
  const unsigned n = end - begin;
  const auto slice = address_slice(prog, begin, end);
  std::vector<bool> on_nsu(n, false);

  // Pass 1: mark ALU instructions consuming in-region load data — their
  // operands only exist on the NSU.  (Conflicting consumers were split away
  // by find_conflict_split, so everything marked here is safe to move.)
  {
    const auto consumers = load_data_consumers(prog, begin, end);
    for (unsigned i = 0; i < n; ++i) {
      const Instr& in = prog.at(begin + i);
      if (consumers[i] && in.is_alu() && !in.writes_pred()) on_nsu[i] = true;
    }
  }

  // Pass 2: backward closure — sources of NSU-side instructions (store data
  // and on-NSU ALU operands) must be NSU-available.  An in-region ALU
  // producer gets pulled onto the NSU (duplicated there if it is also part
  // of an address slice); whatever is still needed at region entry becomes
  // the live-in register set.  A single backward walk reaches the fixpoint
  // because marking a producer only adds requirements further upstream.
  auto backward_needs = [&prog](unsigned lo, unsigned hi, std::vector<bool>& nsu_flags) {
    RegSet needed;
    // Guard context of each need: under which guard do the readers of this
    // value run?  kUncond when any reader is unguarded (or readers disagree);
    // otherwise the encoded (pred, sense) shared by every reader so far.
    constexpr std::int16_t kUncond = -1;
    std::array<std::int16_t, kNumRegs> need_guard{};
    need_guard.fill(kUncond);
    auto encode = [](const Instr& in) {
      return static_cast<std::int16_t>(in.guard_pred * 2 + (in.guard_sense ? 1 : 0));
    };
    auto add_need = [&](const Instr& reader, std::uint8_t r) {
      const std::int16_t g = reader.guard_pred == kNoPred ? kUncond : encode(reader);
      if (!needed.test(r)) {
        needed.set(r);
        need_guard[r] = g;
      } else if (need_guard[r] != g) {
        need_guard[r] = kUncond;
      }
    };
    for (unsigned i = hi; i-- > lo;) {
      const Instr& in = prog.at(i);
      if (in.writes_reg() && needed.test(in.dst)) {
        // An unguarded write satisfies the need outright.  A guarded write
        // defines only its active lanes, so it satisfies the need only when
        // every reader runs under that same guard; otherwise the inactive
        // lanes still read the value from before the region, and the need
        // (hence the live-in) survives.  Mirrors the live-out rule below.
        if (in.guard_pred == kNoPred || need_guard[in.dst] == encode(in)) {
          needed.reset(in.dst);
        }
        // Loads materialize in NSU registers already; ALU producers are
        // pulled onto the NSU (duplicated there if also address-slice).
        if (in.is_alu() && !in.writes_pred()) nsu_flags[i - lo] = true;
      }
      if (nsu_flags[i - lo]) {
        for_each_src_reg(in, [&](std::uint8_t r) { add_need(in, r); });
      }
      if (in.op == Opcode::kSt) add_need(in, in.src[1]);  // store data operand
    }
    return needed;
  };
  RegSet regs_in = backward_needs(begin, end, on_nsu);

  // Trim the candidate to the span covering memory instructions and
  // NSU-side ALU work; leading/trailing GPU-only instructions execute
  // outside the block unchanged.
  unsigned span_lo = n, span_hi = 0;
  for (unsigned i = 0; i < n; ++i) {
    const Instr& in = prog.at(begin + i);
    if (in.is_global_mem() || on_nsu[i]) {
      span_lo = std::min(span_lo, i);
      span_hi = std::max(span_hi, i + 1);
    }
  }
  bool has_mem = false;
  for (unsigned i = 0; i < n; ++i) {
    if (prog.at(begin + i).is_global_mem()) has_mem = true;
  }
  if (!has_mem) return std::nullopt;

  BlockCandidate c;
  c.begin = begin + span_lo;
  c.end = begin + span_hi;
  const unsigned m = c.end - c.begin;
  c.on_nsu.assign(on_nsu.begin() + span_lo, on_nsu.begin() + span_lo + m);
  c.addr_calc.resize(m, false);
  {
    // Recompute the address slice relative to the final span so producers
    // that were trimmed out are not marked.
    const auto span_slice = address_slice(prog, c.begin, c.end);
    for (unsigned i = 0; i < m; ++i) c.addr_calc[i] = span_slice[i];
  }

  // Recompute live-ins relative to the final span (trimming removes only
  // GPU-only instructions, but the entry point moved).
  regs_in = backward_needs(c.begin, c.end, c.on_nsu);

  // NSU-pulled *clean* producers (backward-closure instructions that do not
  // consume in-region load data, e.g. a MOV feeding store data) are
  // duplicated on the GPU like address-slice instructions: later GPU-side
  // instructions in the block may read their results, and only a GPU-side
  // copy keeps the register file coherent while the block is offloaded.
  // (Load-data consumers cannot be duplicated — their operands exist only
  // on the NSU — but no GPU-side instruction reads those: the conflict
  // splitter already cut the region at any such flow.)
  {
    const auto span_consumers = load_data_consumers(prog, c.begin, c.end);
    for (unsigned i = 0; i < m; ++i) {
      if (c.on_nsu[i] && !span_consumers[i]) c.addr_calc[i] = true;
    }
  }

  // Live-outs: registers whose value at block exit was produced only on the
  // NSU (a load, or a non-duplicated NSU ALU) and is read after the span.
  // An unguarded later write by a GPU-side or duplicated instruction means
  // the GPU already holds the final value — writing the NSU's copy back
  // would clobber it with a stale one.
  RegSet produced;
  for (unsigned i = 0; i < m; ++i) {
    const Instr& in = prog.at(c.begin + i);
    if (in.op == Opcode::kLd || (c.on_nsu[i] && !c.addr_calc[i] && in.writes_reg())) {
      produced.set(in.dst);
    } else if (in.writes_reg() && in.guard_pred == kNoPred) {
      produced.reset(in.dst);
    }
    if (in.is_global_mem()) {
      if (in.op == Opcode::kLd) ++c.num_loads;
      else ++c.num_stores;
    }
    if ((c.on_nsu[i] || in.is_global_mem()) && in.guard_pred != kNoPred) c.needs_preds = true;
  }
  for (unsigned r = 0; r < kNumRegs; ++r) {
    if (regs_in.test(r)) c.regs_in.push_back(static_cast<std::uint8_t>(r));
    if (produced.test(r) && live_outside(prog, c.begin, c.end, r)) {
      c.regs_out.push_back(static_cast<std::uint8_t>(r));
    }
  }

  // Eq. 1 (per-thread bytes): traffic saved by the memory instructions
  // minus the register-marshalling overhead.
  double traffic = 0.0;
  for (unsigned i = 0; i < m; ++i) {
    const Instr& in = prog.at(c.begin + i);
    if (in.is_global_mem()) traffic += in.mem_width;
  }
  c.score = traffic - 8.0 * static_cast<double>(c.regs_in.size() + c.regs_out.size());
  return c;
}

// Is the base address of the memory instruction at `idx` derived from data
// loaded earlier in the same basic block [bb_begin, idx)?
bool address_is_indirect(const Program& prog, unsigned bb_begin, unsigned idx) {
  TaintState st;
  for (unsigned i = bb_begin; i < idx; ++i) {
    const Instr& in = prog.at(i);
    if (in.op == Opcode::kLd) {
      st.tainted[in.dst] = true;
    } else if (in.writes_reg()) {
      bool reads_taint = false;
      for_each_src_reg(in, [&](std::uint8_t r) { reads_taint = reads_taint || st.tainted[r]; });
      st.tainted[in.dst] = reads_taint;
    }
  }
  return st.tainted[prog.at(idx).src[0]];
}

// Builds a single-instruction indirect-load block (§4.4).
BlockCandidate make_indirect_block(const Program& prog, unsigned idx) {
  BlockCandidate c;
  c.begin = idx;
  c.end = idx + 1;
  c.num_loads = 1;
  c.on_nsu.assign(1, false);
  c.addr_calc.assign(1, false);
  const Instr& in = prog.at(idx);
  if (in.guard_pred != kNoPred) c.needs_preds = true;
  if (live_outside(prog, idx, idx + 1, in.dst)) c.regs_out.push_back(in.dst);
  c.indirect_single_load = true;
  c.score = static_cast<double>(in.mem_width) - 8.0 * static_cast<double>(c.regs_out.size());
  return c;
}

}  // namespace

AnalysisResult analyze(const Program& prog, const AnalyzerOptions& opts) {
  AnalysisResult result;
  const auto bb_starts = prog.basic_block_starts();

  auto bb_begin_of = [&](unsigned idx) {
    unsigned begin = 0;
    for (unsigned s : bb_starts) {
      if (s <= idx) begin = s;
      else break;
    }
    return begin;
  };

  // Enumerate maximal offloadable runs (within one BB, no breakers).
  std::vector<std::pair<unsigned, unsigned>> runs;
  {
    unsigned i = 0;
    const unsigned n = static_cast<unsigned>(prog.size());
    while (i < n) {
      if (run_breaker(prog.at(i))) {
        ++i;
        continue;
      }
      unsigned j = i;
      while (j < n && !run_breaker(prog.at(j)) &&
             bb_begin_of(j) == bb_begin_of(i)) {
        ++j;
      }
      runs.emplace_back(i, j);
      i = j;
    }
  }

  // Recursively split runs at taint conflicts, then classify and score.
  std::vector<std::pair<unsigned, unsigned>> work(runs.rbegin(), runs.rend());
  std::vector<BlockCandidate> candidates;
  while (!work.empty()) {
    auto [begin, end] = work.back();
    work.pop_back();
    if (begin >= end) continue;
    if (auto split = find_conflict_split(prog, begin, end)) {
      // Process the halves in order; push the tail first (stack).
      work.emplace_back(*split, end);
      work.emplace_back(begin, *split);
      continue;
    }
    if (auto cand = classify(prog, begin, end)) candidates.push_back(*cand);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const BlockCandidate& a, const BlockCandidate& b) { return a.begin < b.begin; });

  for (auto& c : candidates) {
    const bool too_long = c.num_loads > opts.max_mem_insts || c.num_stores > opts.max_mem_insts;
    if (!too_long && c.score > opts.min_score) {
      result.accepted.push_back(std::move(c));
      continue;
    }
    // §4.4: salvage single indirect loads from rejected candidates.
    if (opts.indirect_rule) {
      const unsigned bb = bb_begin_of(c.begin);
      for (unsigned i = c.begin; i < c.end; ++i) {
        if (prog.at(i).op == Opcode::kLd && address_is_indirect(prog, bb, i)) {
          result.accepted.push_back(make_indirect_block(prog, i));
        }
      }
    }
    result.rejected.push_back(std::move(c));
  }
  return result;
}

std::string to_string(const BlockCandidate& c) {
  std::ostringstream os;
  os << "[" << c.begin << "," << c.end << ") loads=" << c.num_loads
     << " stores=" << c.num_stores << " in=" << c.regs_in.size()
     << " out=" << c.regs_out.size() << " score=" << c.score
     << (c.indirect_single_load ? " indirect" : "");
  return os.str();
}

}  // namespace sndp
