// Analytical Monte-Carlo model behind the target-NSU selection policy study
// (paper Fig. 5): with memory accesses spread uniformly over the HMCs, how
// much inter-stack traffic does "target = HMC of the first access" cost
// versus the optimal "target = HMC with the most accesses"?
//
// Traffic metric: the fraction of a block's memory accesses that are remote
// to the chosen target NSU and therefore cross the memory network
// (normalized so that all-remote == 1.0, matching the figure's scale).
#pragma once

#include "common/rng.h"

namespace sndp {

enum class TargetPolicy {
  kFirstAccess,  // the paper's policy (bounded state)
  kOptimal,      // needs unbounded address buffering (rejected by the paper)
};

struct TargetSelectionStats {
  double mean_traffic = 0.0;  // normalized remote-access fraction
};

TargetSelectionStats simulate_target_selection(unsigned num_hmcs, unsigned num_accesses,
                                               TargetPolicy policy, unsigned trials, Rng& rng);

}  // namespace sndp
