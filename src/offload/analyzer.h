// Static offload-block identification (paper §3.1).
//
// The analyzer scans each basic block for contiguous regions of plain
// load/store/ALU instructions and scores them with Eq. 1:
//
//     Score = GPUTrafficReduction - OffloadOverhead
//
// where GPUTrafficReduction sums the data bytes of every global LD/ST in
// the region (offloading keeps that data off the GPU links) and
// OffloadOverhead counts the live-in/live-out register bytes that must be
// marshalled between GPU and NSU.  Address-calculation instructions are
// excluded from the overhead — they execute on the GPU either way (§4.1).
//
// Structural rules enforced here:
//  * Blocks never span basic blocks, barriers, or scratchpad/constant
//    accesses (§3.1).
//  * Predicate-setting compares always stay on the GPU; a block cannot use
//    a predicate defined inside itself on an NSU-side instruction.
//  * No value may flow from an in-block load into an in-block memory
//    address or compare: such regions are split after the feeding load so
//    the loaded value returns to the GPU (as a live-out register) before
//    the dependent block begins.  This is exactly how x = B[A[i]] becomes
//    two blocks, the second being a "single indirect load" block (§4.4).
//  * Any single indirect load (address derived from memory data) is added
//    as its own offload block even when Eq. 1 rejects it (§4.4) — the
//    static score cannot see the divergence savings.
#pragma once

#include <string>
#include <vector>

#include "isa/program.h"

namespace sndp {

struct AnalyzerOptions {
  double min_score = 0.0;       // accept candidates with Score > min_score
  bool indirect_rule = true;    // §4.4
  unsigned max_mem_insts = 64;  // bound from the seq-number field width
};

// A candidate/accepted region prior to code generation.
struct BlockCandidate {
  unsigned begin = 0;  // original program index of the first instruction
  unsigned end = 0;    // one past the last instruction
  unsigned num_loads = 0;
  unsigned num_stores = 0;
  std::vector<std::uint8_t> regs_in;
  std::vector<std::uint8_t> regs_out;
  // Per-instruction roles, relative to `begin`.
  std::vector<bool> on_nsu;
  std::vector<bool> addr_calc;
  bool needs_preds = false;
  bool indirect_single_load = false;
  double score = 0.0;
};

struct AnalysisResult {
  std::vector<BlockCandidate> accepted;
  std::vector<BlockCandidate> rejected;  // scored but not profitable
};

// Analyze `prog` and return accepted (and rejected) candidates, in
// program order, non-overlapping.
AnalysisResult analyze(const Program& prog, const AnalyzerOptions& opts = {});

std::string to_string(const BlockCandidate& c);

}  // namespace sndp
