// Shared helpers for workload generators: deterministic pseudo-random data
// so that both the device initialization and the host oracle can recompute
// any element from its index without storing a copy.
#pragma once

#include <cstdint>

namespace sndp::wl {

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

// Deterministic value in [0, 1) for element `i` of stream `salt`.
inline double value(std::uint64_t i, std::uint64_t salt) {
  return static_cast<double>(mix(i ^ (salt * 0x9E3779B97F4A7C15ull)) >> 11) * 0x1.0p-53;
}

// Deterministic index in [0, n) — used for irregular/indirect access
// patterns (BFS edges, MiniFE columns).
inline std::uint64_t index(std::uint64_t i, std::uint64_t n, std::uint64_t salt) {
  return mix(i ^ (salt * 0xBF58476D1CE4E5B9ull)) % n;
}

}  // namespace sndp::wl
