#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void KmnWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  n_ = pick<std::uint64_t>(2048, 256 * 1024, 1024 * 1024);
  x_ = alloc.alloc(n_ * 8);
  d_ = alloc.alloc(n_ * 8);
  for (std::uint64_t i = 0; i < n_; ++i) {
    mem.write_f64(x_ + 8 * i, wl::value(i, 21) * 2.0);
  }

  // Distance-map phase of k-means: D[i] = X[i]^2 (the squared-magnitude
  // term of the distance computation, centers folded out).  Streaming, zero
  // reuse, a 3-instruction offload block exactly as in Table 1 — the
  // paper's best NDP case (up to 66.8% speedup).  Grid-stride over the
  // feature stream, like the Rodinia kernel's per-object feature loop.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(x_))
      .movi(17, static_cast<std::int64_t>(d_))
      .mov(7, 0)
      .movi(6, static_cast<std::int64_t>(n_))
      .label("loop")
      .madi(8, 7, 8, 16)
      .madi(9, 7, 8, 17)
      .ld(10, 8)
      .alu(Opcode::kFMul, 12, 10, 10)  // squared
      .st(9, 12)
      .alu(Opcode::kIAdd, 7, 7, 1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(n_ / 256 / kGridStride)};
}

bool KmnWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double x = wl::value(i, 21) * 2.0;
    if (mem.read_f64(d_ + 8 * i) != x * x) return false;
  }
  return true;
}

std::vector<OutputRegion> KmnWorkload::output_regions() const {
  return {{"D", d_, n_ * 8}};
}

}  // namespace sndp
