#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void FwtWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  n_ = pick<std::uint64_t>(1024, 65536, 262144);  // butterfly pairs
  data_ = alloc.alloc(2 * n_ * 8);
  out_ = alloc.alloc(2 * n_ * 8);
  for (std::uint64_t i = 0; i < 2 * n_; ++i) mem.write_f64(data_ + 8 * i, wl::value(i, 61));

  // One butterfly stage — out[i] = d[i] + d[i+n], out[i+n] = d[i] - d[i+n]
  // — then a barrier, then the normalization pass out[*] /= 2.  Two offload
  // blocks separated by the CTA barrier (blocks never span BAR, §3.1).
  const auto half = static_cast<std::int64_t>(n_ * 8);
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(data_))
      .movi(17, static_cast<std::int64_t>(out_))
      .madi(8, 0, 8, 16)   // &d[i]
      .madi(9, 0, 8, 17)   // &out[i]
      .ld(10, 8)           // d[i]
      .ld(11, 8, half)     // d[i+n]
      .alu(Opcode::kFAdd, 12, 10, 11)
      .alu(Opcode::kFSub, 13, 10, 11)
      .st(9, 12)
      .st(9, 13, half)
      .bar()
      // Normalization of this thread's own two elements.
      .ld(14, 9)
      .alui(Opcode::kFDiv, 14, 14, 2)
      .st(9, 14)
      .ld(15, 9, half)
      .alui(Opcode::kFDiv, 15, 15, 2)
      .st(9, 15, half)
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(n_ / 256)};
}

bool FwtWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double a = wl::value(i, 61);
    const double b = wl::value(n_ + i, 61);
    if (mem.read_f64(out_ + 8 * i) != (a + b) / 2.0) return false;
    if (mem.read_f64(out_ + 8 * (n_ + i)) != (a - b) / 2.0) return false;
  }
  return true;
}

std::vector<OutputRegion> FwtWorkload::output_regions() const {
  return {{"OUT", out_, 2 * n_ * 8}};
}

}  // namespace sndp
