// The ten evaluated workloads (paper Table 1).  Each reproduces the memory
// and compute signature the NDP mechanism cares about: streaming vs cached
// access, regular vs divergent/indirect addressing, and the offload-block
// shapes the paper's static analyzer extracted.
#pragma once

#include "workloads/workload.h"

namespace sndp {

// Streaming kernels use grid-stride loops: each thread covers this many
// elements, like the original CUDA kernels whose grids are capped.
inline constexpr unsigned kGridStride = 4;

// VADD — vector addition (CUDA SDK): C[i] = A[i] + B[i].  Pure streaming;
// one 4-instruction offload block (LD, LD, FADD, ST).
class VaddWorkload final : public Workload {
 public:
  explicit VaddWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "VADD"; }
  std::string description() const override { return "Vector addition (streaming)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t n_ = 0;
  Addr a_ = 0, b_ = 0, c_ = 0;
};

// SP — scalar (dot) product partials (CUDA SDK): P[i] = A[i] * B[i].
class SpWorkload final : public Workload {
 public:
  explicit SpWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "SP"; }
  std::string description() const override { return "Scalar-product partials (streaming)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t n_ = 0;
  Addr a_ = 0, b_ = 0, p_ = 0;
};

// KMN — k-means distance kernel (Rodinia): per (object, feature) partial
// distance D = (x - c)^2 over a large streamed feature matrix.  The paper's
// biggest NDP winner: bandwidth-bound, no reuse.
class KmnWorkload final : public Workload {
 public:
  explicit KmnWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "KMN"; }
  std::string description() const override { return "K-means distance map (streaming)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t n_ = 0;
  Addr x_ = 0, d_ = 0;
};

// BPROP — back propagation (Rodinia): out[j] = sum_i W[i][j] * IN[i] with a
// tiny input vector that lives in the GPU caches.  The pathological case of
// §7.1: offloading pushes cache-hit data across the GPU links every block.
class BpropWorkload final : public Workload {
 public:
  explicit BpropWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "BPROP"; }
  std::string description() const override {
    return "Back propagation (cached 68 B input structure)";
  }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

  static constexpr unsigned kInputs = 16;  // 16 x 8 B > the paper's 68 B structure

 private:
  std::uint64_t neurons_ = 0;
  Addr w_ = 0, in_ = 0, out_ = 0;
};

// BFS — breadth-first-search relaxation step (Rodinia): per node, gather
// values of its neighbors through an edge list — divergent indirect loads
// that become single-instruction offload blocks (§4.4).
class BfsWorkload final : public Workload {
 public:
  explicit BfsWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "BFS"; }
  std::string description() const override { return "BFS gather (divergent indirect loads)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

  static constexpr unsigned kDegree = 2;

 private:
  std::uint64_t nodes_ = 0;
  Addr edges_ = 0, val_ = 0, dist_ = 0, res_ = 0;
};

// BICG — BiCGStab kernel (Polybench): two independent streamed
// multiply-accumulate products per element (the paper's 4+4 blocks).
class BicgWorkload final : public Workload {
 public:
  explicit BicgWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "BICG"; }
  std::string description() const override { return "BiCG partial products (two streams)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t n_ = 0;
  Addr a_ = 0, p_ = 0, r_ = 0, q_ = 0, s_ = 0;
};

// FWT — fast Walsh transform (CUDA SDK): butterfly stage (large block) plus
// a scaling pass (small block), separated by a CTA barrier.
class FwtWorkload final : public Workload {
 public:
  explicit FwtWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "FWT"; }
  std::string description() const override { return "Fast Walsh transform butterfly"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t n_ = 0;  // butterflies (pairs)
  Addr data_ = 0, out_ = 0;
};

// MiniFE — finite-element sparse matvec fragment (Mantevo): indirect
// gather x[col[k]] feeding a streamed product, P[k] = A[k] * x[col[k]].
class MinifeWorkload final : public Workload {
 public:
  explicit MinifeWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "MiniFE"; }
  std::string description() const override { return "FEM sparse matvec gather"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t nnz_ = 0;
  std::uint64_t ncols_ = 0;
  Addr a_ = 0, col_ = 0, x_ = 0, p_ = 0;
};

// STN — 3-D stencil (Parboil): 7-point stencil whose neighbor loads enjoy
// high L1/L2 locality — NDP hurts it until the cache-aware governor
// suppresses the block (§7.3).
class StnWorkload final : public Workload {
 public:
  explicit StnWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "STN"; }
  std::string description() const override { return "7-point stencil (cache-friendly)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

 private:
  std::uint64_t nx_ = 0, ny_ = 0, nz_ = 0;
  Addr in_ = 0, out_ = 0;
};

// STCL — streamcluster distance loop (Rodinia): points re-read per center
// (cache-resident), centers tiny — another cache-sensitive workload.
class StclWorkload final : public Workload {
 public:
  explicit StclWorkload(ProblemScale scale) : Workload(scale) {}
  std::string name() const override { return "STCL"; }
  std::string description() const override { return "Streamcluster distances (cache-friendly)"; }
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;

  static constexpr unsigned kDims = 4;
  static constexpr unsigned kCenters = 2;

 private:
  std::uint64_t points_ = 0;
  Addr pts_ = 0, ctr_ = 0, out_ = 0;
};

}  // namespace sndp
