#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void BpropWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  neurons_ = pick<std::uint64_t>(2048, 16384, 65536);
  w_ = alloc.alloc(neurons_ * kInputs * 8);
  in_ = alloc.alloc(kInputs * 8);
  out_ = alloc.alloc(neurons_ * 8);
  for (std::uint64_t i = 0; i < kInputs; ++i) mem.write_f64(in_ + 8 * i, wl::value(i, 31));
  for (std::uint64_t i = 0; i < neurons_ * kInputs; ++i) {
    mem.write_f64(w_ + 8 * i, wl::value(i, 32));
  }

  // out[j] = sum_i W[i][j] * IN[i].  IN is a tiny structure (like the
  // paper's 68 B BPROP constant) that always hits in the GPU caches, but an
  // offloaded instance pushes it across the GPU link on every RDF hit —
  // the §7.1 pathology.  W[i][j] is laid out with j contiguous so the
  // weight loads coalesce and stream.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(w_))
      .movi(17, static_cast<std::int64_t>(in_))
      .movi(18, static_cast<std::int64_t>(out_))
      .mov(7, 0)
      .movi(6, static_cast<std::int64_t>(neurons_))
      .label("loop")
      .madi(8, 7, 8, 16);  // &W[0][j]
  for (unsigned i = 0; i < kInputs; ++i) {
    const auto w_off = static_cast<std::int64_t>(i * neurons_ * 8);
    pb.ld(10, 8, w_off);                          // W[i][j] — streaming
    pb.ld(11, 17, static_cast<std::int64_t>(i * 8));  // IN[i] — cache resident
    if (i == 0) {
      pb.alu(Opcode::kFMul, 12, 10, 11);
    } else {
      pb.fma(12, 10, 11, 12);
    }
  }
  pb.madi(9, 7, 8, 18)
      .st(9, 12)
      .alu(Opcode::kIAdd, 7, 7, 1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(neurons_ / 256 / kGridStride)};
}

bool BpropWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t j = 0; j < neurons_; ++j) {
    double acc = 0.0;
    for (unsigned i = 0; i < kInputs; ++i) {
      const double w = wl::value(static_cast<std::uint64_t>(i) * neurons_ + j, 32);
      const double in = wl::value(i, 31);
      acc = i == 0 ? w * in : w * in + acc;
    }
    if (mem.read_f64(out_ + 8 * j) != acc) return false;
  }
  return true;
}

std::vector<OutputRegion> BpropWorkload::output_regions() const {
  return {{"OUT", out_, neurons_ * 8}};
}

}  // namespace sndp
