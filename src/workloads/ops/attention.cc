#include <cmath>
#include <sstream>
#include <stdexcept>

#include "workloads/ops/ops.h"
#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

AttnOperator::AttnOperator(ProblemScale scale) : Workload(scale) {
  cfg_ = pick<AttnConfig>({256, 4, 128, true}, {4096, 8, 1024, true}, {16384, 16, 4096, true});
}

AttnOperator::AttnOperator(ProblemScale scale, const AttnConfig& cfg)
    : Workload(scale), cfg_(cfg) {
  if (cfg_.ctx == 0 || cfg_.keys < 2) {
    throw std::invalid_argument("AttnConfig: need ctx >= 1 and keys >= 2");
  }
}

unsigned AttnOperator::valid_keys() const {
  return cfg_.masked ? cfg_.keys - cfg_.keys / 4 : cfg_.keys;
}

std::string AttnOperator::description() const {
  std::ostringstream os;
  os << "Attention-shaped gather-softmax-scatter, " << cfg_.queries << " queries x "
     << cfg_.ctx << " ctx over " << cfg_.keys << " keys"
     << (cfg_.masked ? " (masked)" : "");
  return os.str();
}

void AttnOperator::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  const std::uint64_t q = cfg_.queries, c = cfg_.ctx, keys = cfg_.keys;
  idx_ = alloc.alloc(q * c * 8);
  s_ = alloc.alloc(keys * 8);
  v_ = alloc.alloc(keys * 8);
  out_ = alloc.alloc(q * 8);
  for (std::uint64_t i = 0; i < q * c; ++i) {
    mem.write_u64(idx_ + 8 * i, wl::index(i, keys, 27));
  }
  for (std::uint64_t i = 0; i < keys; ++i) {
    mem.write_f64(s_ + 8 * i, wl::value(i, 28));
    mem.write_f64(v_ + 8 * i, wl::value(i, 29));
  }

  // One thread per query, two uniform passes over its ctx window: a FMAX
  // pass for m, then w = 1/(1 + m - s) weights (FDIV), normalized at the
  // end.  Both passes gather S/V through the index table, so the gathered
  // addresses come from load data.  In the masked variant a guarded MOVI
  // zeroes the weight of out-of-range entries, and a query whose window is
  // entirely masked (denom == 0) falls back to out = 0.0 through a second
  // guarded MOVI in the scatter epilogue.  That epilogue MOVI is a guarded
  // producer fed only by pre-region values — the exact shape that exposed
  // the analyzer's backward_needs live-in bug (the un-fixed analyzer
  // offloads the scatter with an empty live-in set and every unmasked
  // query stores NSU garbage instead of acc/denom).
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(idx_))
      .movi(17, static_cast<std::int64_t>(s_))
      .movi(18, static_cast<std::int64_t>(v_))
      .movi(19, static_cast<std::int64_t>(out_))
      .movi(6, static_cast<std::int64_t>(q))
      .movi(14, static_cast<std::int64_t>(c))
      .movi(24, ops::f64_bits(1.0))
      .movi(30, static_cast<std::int64_t>(valid_keys()))
      .mov(7, 0)  // q = gtid
      .label("query")
      .alu(Opcode::kIMul, 9, 7, 14)
      .madi(8, 9, 8, 16)  // &idx[q*ctx]
      .movi(5, 0)         // m = 0.0 (scores are >= 0)
      .movi(12, 0)        // j = 0
      .label("mx")
      .ld(10, 8)            // k = idx[...]
      .madi(11, 10, 8, 17)  // &S[k]
      .ld(13, 11)           // s
      .alu(Opcode::kFMax, 5, 5, 13)
      .alui(Opcode::kIAdd, 8, 8, 8)
      .alui(Opcode::kIAdd, 12, 12, 1)
      .isetp(0, CmpOp::kLt, 12, 14)
      .pred(0)
      .bra("mx")
      .madi(8, 9, 8, 16)  // rewind the index pointer
      .movi(26, 0)        // denom = 0.0
      .movi(28, 0)        // acc = 0.0
      .movi(12, 0)
      .label("wsum")
      .ld(10, 8)
      .madi(11, 10, 8, 17)
      .ld(13, 11)                      // s
      .alu(Opcode::kFSub, 20, 5, 13)   // m - s
      .alui(Opcode::kFAdd, 20, 20, 1)  // 1 + m - s
      .alu(Opcode::kFDiv, 21, 24, 20);  // w
  if (cfg_.masked) {
    pb.isetp(1, CmpOp::kLt, 10, 30)  // P1: k below the mask limit
        .pred(1, /*sense=*/false)
        .movi(21, 0);  // masked entries get zero weight
  }
  pb.alu(Opcode::kFAdd, 26, 26, 21)  // denom += w
      .madi(22, 10, 8, 18)           // &V[k]
      .ld(23, 22)
      .fma(28, 21, 23, 28)  // acc += w * v
      .alui(Opcode::kIAdd, 8, 8, 8)
      .alui(Opcode::kIAdd, 12, 12, 1)
      .isetp(0, CmpOp::kLt, 12, 14)
      .pred(0)
      .bra("wsum");
  pb.alu(Opcode::kFDiv, 29, 28, 26);  // out = acc / denom
  if (cfg_.masked) {
    pb.movi(31, 0)                     // 0.0 for the compare
        .fsetp(2, CmpOp::kGt, 26, 31)  // P2: any weight survived the mask
        .pred(2, /*sense=*/false)
        .movi(29, 0);  // fully-masked window: out = 0.0 (not 0/0)
  }
  pb.madi(27, 7, 8, 19)
      .st(27, 29)
      .alu(Opcode::kIAdd, 7, 7, 1)  // q += total threads
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("query")
      .exit();
  program_ = pb.build();
  launch_ = ops::pick_launch(q);
}

bool AttnOperator::verify(const GlobalMemory& mem) const {
  const std::uint64_t c = cfg_.ctx, keys = cfg_.keys;
  const std::uint64_t valid = valid_keys();
  for (std::uint64_t qi = 0; qi < cfg_.queries; ++qi) {
    auto key_at = [&](std::uint64_t j) { return wl::index(qi * c + j, keys, 27); };
    double m = 0.0;
    for (std::uint64_t j = 0; j < c; ++j) m = std::fmax(m, wl::value(key_at(j), 28));
    double denom = 0.0, acc = 0.0;
    for (std::uint64_t j = 0; j < c; ++j) {
      const std::uint64_t k = key_at(j);
      double w = 1.0 / ((m - wl::value(k, 28)) + 1.0);
      if (cfg_.masked && k >= valid) w = 0.0;
      denom = denom + w;
      acc = w * wl::value(k, 29) + acc;  // unfused FFMA order
    }
    const double expect = denom > 0.0 ? acc / denom : 0.0;
    if (mem.read_f64(out_ + 8 * qi) != expect) return false;
  }
  return true;
}

std::vector<OutputRegion> AttnOperator::output_regions() const {
  return {{"out", out_, std::uint64_t{cfg_.queries} * 8}};
}

}  // namespace sndp
