#include <sstream>
#include <stdexcept>

#include "workloads/ops/ops.h"
#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

SpmvOperator::SpmvOperator(ProblemScale scale) : Workload(scale) {
  cfg_ = pick<SpmvConfig>({512, 4, 256}, {4096, 8, 1024}, {16384, 8, 4096});
}

SpmvOperator::SpmvOperator(ProblemScale scale, const SpmvConfig& cfg)
    : Workload(scale), cfg_(cfg) {
  if (cfg_.max_nnz == 0 || cfg_.cols == 0) {
    throw std::invalid_argument("SpmvConfig: max_nnz and cols must be positive");
  }
}

std::string SpmvOperator::description() const {
  std::ostringstream os;
  os << "CSR SpMV, " << cfg_.rows << " rows x <=" << cfg_.max_nnz << " nnz, "
     << cfg_.cols << "-entry x";
  return os.str();
}

void SpmvOperator::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  const std::uint64_t rows = cfg_.rows;
  row_len_.resize(rows);
  std::uint64_t nnz = 0;
  for (std::uint64_t r = 0; r < rows; ++r) {
    row_len_[r] = 1 + wl::index(r, cfg_.max_nnz, 26);
    nnz += row_len_[r];
  }
  val_ = alloc.alloc(nnz * 8);
  col_ = alloc.alloc(nnz * 8);
  row_ptr_ = alloc.alloc((rows + 1) * 8);
  x_ = alloc.alloc(std::uint64_t{cfg_.cols} * 8);
  y_ = alloc.alloc(rows * 8);
  std::uint64_t k = 0;
  for (std::uint64_t r = 0; r < rows; ++r) {
    mem.write_u64(row_ptr_ + 8 * r, k);
    for (std::uint64_t j = 0; j < row_len_[r]; ++j, ++k) {
      mem.write_f64(val_ + 8 * k, wl::value(k, 24));
      mem.write_u64(col_ + 8 * k, wl::index(k, cfg_.cols, 25));
    }
  }
  mem.write_u64(row_ptr_ + 8 * rows, k);
  for (std::uint64_t i = 0; i < cfg_.cols; ++i) mem.write_f64(x_ + 8 * i, wl::value(i, 23));

  // One thread per row.  The inner loop runs a warp-uniform max_nnz trips;
  // the loaded row bounds feed a per-lane predicate that masks the tail,
  // and the loaded column index feeds the x-gather's address — both flows
  // force conflict splits, and short rows contribute explicit +0.0 terms
  // through the @!P1 MOVI.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(val_))
      .movi(17, static_cast<std::int64_t>(col_))
      .movi(18, static_cast<std::int64_t>(row_ptr_))
      .movi(19, static_cast<std::int64_t>(x_))
      .movi(15, static_cast<std::int64_t>(y_))
      .movi(6, static_cast<std::int64_t>(rows))
      .movi(14, static_cast<std::int64_t>(cfg_.max_nnz))
      .mov(7, 0)  // r = gtid
      .label("row")
      .madi(8, 7, 8, 18)
      .ld(9, 8)      // start = row_ptr[r]
      .ld(10, 8, 8)  // end   = row_ptr[r+1]
      .movi(5, 0)    // acc = 0.0
      .movi(12, 0)   // j = 0
      .label("nz")
      .alu(Opcode::kIAdd, 13, 9, 12)   // k = start + j
      .isetp(1, CmpOp::kLt, 13, 10)    // P1: k inside the row
      .madi(20, 13, 8, 17)
      .pred(1)
      .ld(21, 20)           // c = col[k]
      .madi(22, 21, 8, 19)  // &x[c] — address from load data
      .pred(1)
      .ld(23, 22)  // xv = x[c]
      .madi(24, 13, 8, 16)
      .pred(1)
      .ld(25, 24)                      // v = val[k]
      .alu(Opcode::kFMul, 26, 25, 23)  // term = v * xv
      .pred(1, /*sense=*/false)
      .movi(26, 0)  // masked lanes contribute +0.0
      .alu(Opcode::kFAdd, 5, 5, 26)
      .alui(Opcode::kIAdd, 12, 12, 1)
      .isetp(0, CmpOp::kLt, 12, 14)
      .pred(0)
      .bra("nz")
      .madi(27, 7, 8, 15)
      .st(27, 5)
      .alu(Opcode::kIAdd, 7, 7, 1)  // r += total threads
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("row")
      .exit();
  program_ = pb.build();
  launch_ = ops::pick_launch(rows);
}

bool SpmvOperator::verify(const GlobalMemory& mem) const {
  std::uint64_t start = 0;
  for (std::uint64_t r = 0; r < cfg_.rows; ++r) {
    const std::uint64_t end = start + row_len_[r];
    double acc = 0.0;
    for (std::uint64_t j = 0; j < cfg_.max_nnz; ++j) {
      const std::uint64_t k = start + j;
      const double term =
          k < end ? wl::value(k, 24) * wl::value(wl::index(k, cfg_.cols, 25), 23) : 0.0;
      acc = acc + term;
    }
    if (mem.read_f64(y_ + 8 * r) != acc) return false;
    start = end;
  }
  return true;
}

std::vector<OutputRegion> SpmvOperator::output_regions() const {
  return {{"y", y_, std::uint64_t{cfg_.rows} * 8}};
}

}  // namespace sndp
