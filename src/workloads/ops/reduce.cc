#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "workloads/ops/ops.h"
#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

ReduceOperator::ReduceOperator(ProblemScale scale) : Workload(scale) {
  cfg_ = pick<ReduceConfig>({256, 8, 2, false}, {4096, 16, 4, false}, {8192, 32, 8, false});
}

ReduceOperator::ReduceOperator(ProblemScale scale, const ReduceConfig& cfg)
    : Workload(scale), cfg_(cfg) {
  if (cfg_.unroll == 0 || cfg_.len % cfg_.unroll != 0) {
    throw std::invalid_argument("ReduceConfig: unroll must divide len");
  }
}

std::string ReduceOperator::description() const {
  std::ostringstream os;
  os << "Batched sum/min/max reduction, " << cfg_.batches << " x " << cfg_.len
     << " (unroll " << cfg_.unroll << (cfg_.interleaved ? ", interleaved)" : ")");
  return os.str();
}

void ReduceOperator::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  const std::uint64_t batches = cfg_.batches, len = cfg_.len;
  in_ = alloc.alloc(batches * len * 8);
  sum_ = alloc.alloc(batches * 8);
  min_ = alloc.alloc(batches * 8);
  max_ = alloc.alloc(batches * 8);
  for (std::uint64_t i = 0; i < batches * len; ++i) mem.write_f64(in_ + 8 * i, wl::value(i, 31));

  // One thread per batch.  Element j of batch b lives at b*len+j
  // (contiguous) or j*batches+b (interleaved); all data is in [0, 1), so
  // sum/min/max start at 0.0 / 1.0 / 0.0.  The three accumulators are both
  // live-in and live-out of the unrolled inner block, which prices the
  // block at 8*unroll - 48 bytes: unroll 8 offloads, anything less must be
  // rejected by the analyzer.
  const std::int64_t stride = cfg_.interleaved ? static_cast<std::int64_t>(batches) * 8 : 8;
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(in_))
      .movi(17, static_cast<std::int64_t>(sum_))
      .movi(18, static_cast<std::int64_t>(min_))
      .movi(19, static_cast<std::int64_t>(max_))
      .movi(6, static_cast<std::int64_t>(batches))
      .movi(14, static_cast<std::int64_t>(len))
      .mov(7, 0)  // b = gtid
      .label("batch");
  if (cfg_.interleaved) {
    pb.madi(8, 7, 8, 16);  // &in[b]
  } else {
    pb.alu(Opcode::kIMul, 9, 7, 14).madi(8, 9, 8, 16);  // &in[b*len]
  }
  pb.movi(5, 0)                       // sum = 0.0
      .movi(11, ops::f64_bits(1.0))   // min = 1.0 (all data < 1)
      .movi(12, 0)                    // max = 0.0 (all data >= 0)
      .movi(13, 0)                    // j = 0
      .label("elems");
  for (unsigned u = 0; u < cfg_.unroll; ++u) {
    pb.ld(20, 8, stride * u)
        .alu(Opcode::kFAdd, 5, 5, 20)
        .alu(Opcode::kFMin, 11, 11, 20)
        .alu(Opcode::kFMax, 12, 12, 20);
  }
  pb.alui(Opcode::kIAdd, 8, 8, stride * cfg_.unroll)
      .alui(Opcode::kIAdd, 13, 13, cfg_.unroll)
      .isetp(0, CmpOp::kLt, 13, 14)
      .pred(0)
      .bra("elems")
      .madi(21, 7, 8, 17)
      .st(21, 5)
      .madi(22, 7, 8, 18)
      .st(22, 11)
      .madi(23, 7, 8, 19)
      .st(23, 12)
      .alu(Opcode::kIAdd, 7, 7, 1)  // b += total threads
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("batch")
      .exit();
  program_ = pb.build();
  launch_ = ops::pick_launch(batches);
}

bool ReduceOperator::verify(const GlobalMemory& mem) const {
  for (std::uint64_t b = 0; b < cfg_.batches; ++b) {
    double sum = 0.0, mn = 1.0, mx = 0.0;
    for (std::uint64_t j = 0; j < cfg_.len; ++j) {
      const std::uint64_t i = cfg_.interleaved ? j * cfg_.batches + b : b * cfg_.len + j;
      const double v = wl::value(i, 31);
      sum = sum + v;
      mn = std::fmin(mn, v);
      mx = std::fmax(mx, v);
    }
    if (mem.read_f64(sum_ + 8 * b) != sum) return false;
    if (mem.read_f64(min_ + 8 * b) != mn) return false;
    if (mem.read_f64(max_ + 8 * b) != mx) return false;
  }
  return true;
}

std::vector<OutputRegion> ReduceOperator::output_regions() const {
  const std::uint64_t bytes = std::uint64_t{cfg_.batches} * 8;
  return {{"sum", sum_, bytes}, {"min", min_, bytes}, {"max", max_, bytes}};
}

}  // namespace sndp
