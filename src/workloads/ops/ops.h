// Operator library (ROADMAP "Operator-level workloads"): real operators —
// tiled GEMM, SpMV over CSR, batched reduction, and an attention-shaped
// gather-softmax-scatter — emitted as mini-ISA programs from tile/size
// configs.  Each operator is an ordinary Workload: it allocates and
// initializes its arrays, builds the kernel with ProgramBuilder, names its
// result ranges via output_regions(), and recomputes the answer in verify()
// with bit-exact operation order, so the differential oracle and the host
// oracle both gate it for free.
//
// Unlike the ten Table-1 kernels (which mimic the paper's signatures), the
// operators are built to be adversarial for the offload pipeline: K-loop
// unrolling changes the Eq.1 score sign, CSR gathers feed addresses and
// predicates from load data (conflict splits + §4.4 salvage), reductions
// carry fat accumulator live-in/live-out sets, and the masked attention
// variant guards non-self-reading producers (the shape that exposed the
// backward_needs live-in bug).
#pragma once

#include "workloads/workload.h"

namespace sndp {

// GEMM: C[M x N] = A[M x K] * B[K x N], doubles, one thread per C element
// over a grid-stride loop.  Row/column are recovered from the flat element
// index with IDIV/IREM (opcodes no Table-1 kernel emits), and the K loop is
// unrolled by tile_k — tile_k = 1 scores 0 and stays on the GPU, larger
// tiles offload.
struct GemmConfig {
  unsigned m = 32, n = 32, k = 32;
  unsigned tile_k = 4;  // K-loop unroll factor; must divide k
};

class GemmOperator final : public Workload {
 public:
  explicit GemmOperator(ProblemScale scale);
  GemmOperator(ProblemScale scale, const GemmConfig& cfg);
  std::string name() const override { return "GEMM"; }
  std::string description() const override;
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;
  const GemmConfig& config() const { return cfg_; }

 private:
  GemmConfig cfg_;
  Addr a_ = 0, b_ = 0, c_ = 0;
};

// SpMV over CSR: y[r] = sum_k val[k] * x[col[k]] for k in
// [row_ptr[r], row_ptr[r+1]).  One thread per row; the inner loop runs a
// warp-uniform max_nnz trips and masks the tail with predication, so short
// rows contribute explicit +0.0 terms.  The column gather feeds both an
// address (indirect load) and, via the row bounds, a predicate — the two
// flows the conflict splitter exists for.
struct SpmvConfig {
  unsigned rows = 4096;
  unsigned max_nnz = 8;  // uniform trip count; row lengths are 1..max_nnz
  unsigned cols = 1024;  // x-vector length
};

class SpmvOperator final : public Workload {
 public:
  explicit SpmvOperator(ProblemScale scale);
  SpmvOperator(ProblemScale scale, const SpmvConfig& cfg);
  std::string name() const override { return "SPMV"; }
  std::string description() const override;
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;
  const SpmvConfig& config() const { return cfg_; }

 private:
  SpmvConfig cfg_;
  std::vector<std::uint64_t> row_len_;  // filled at setup; oracle reuses it
  Addr val_ = 0, col_ = 0, row_ptr_ = 0, x_ = 0, y_ = 0;
};

// Batched reduction: one thread per batch folds `len` elements into three
// accumulators (sum / min / max), unrolled by `unroll`.  The accumulators
// ride the block boundary as live-in AND live-out registers, so the Eq.1
// score only turns positive at unroll = 8 — below that the analyzer must
// reject the block.  `interleaved` switches the element stride from
// contiguous (batch-major) to batch-interleaved, which defeats coalescing
// and spreads each batch across placement pages.
struct ReduceConfig {
  unsigned batches = 4096;
  unsigned len = 16;    // elements per batch; must be a multiple of unroll
  unsigned unroll = 4;  // inner-loop unroll factor
  bool interleaved = false;
};

class ReduceOperator final : public Workload {
 public:
  explicit ReduceOperator(ProblemScale scale);
  ReduceOperator(ProblemScale scale, const ReduceConfig& cfg);
  std::string name() const override { return "REDUCE"; }
  std::string description() const override;
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;
  const ReduceConfig& config() const { return cfg_; }

 private:
  ReduceConfig cfg_;
  Addr in_ = 0, sum_ = 0, min_ = 0, max_ = 0;
};

// Attention-shaped gather-softmax-scatter: per query q, gather `ctx` scores
// through an index table, compute softmax-shaped weights w = 1/(1 + m - s)
// (the mini-ISA has no exp; FDIV stands in), and scatter the weighted,
// normalized sum of the gathered values.  Two uniform passes (max, then
// weight/accumulate).  With `masked`, index entries >= valid keys get their
// weight zeroed by a guarded MOVI — a guarded producer that does NOT read
// its own destination, which is exactly the shape the analyzer's backward
// walk used to mishandle (see Analyzer.GuardedProducerKeepsLiveIn).
struct AttnConfig {
  unsigned queries = 4096;
  unsigned ctx = 8;      // gathered entries per query (uniform trip count)
  unsigned keys = 1024;  // score/value table size
  bool masked = true;    // zero weights for index entries >= 3/4 * keys
};

class AttnOperator final : public Workload {
 public:
  explicit AttnOperator(ProblemScale scale);
  AttnOperator(ProblemScale scale, const AttnConfig& cfg);
  std::string name() const override { return "ATTN"; }
  std::string description() const override;
  void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) override;
  bool verify(const GlobalMemory& mem) const override;
  std::vector<OutputRegion> output_regions() const override;
  const AttnConfig& config() const { return cfg_; }
  unsigned valid_keys() const;

 private:
  AttnConfig cfg_;
  Addr idx_ = 0, s_ = 0, v_ = 0, out_ = 0;
};

namespace ops {

// Grid-stride launch geometry shared by the generators: `work_items` must
// be a multiple of kGridStride; each thread covers exactly kGridStride
// items, so the do-while grid-stride loop never over-runs.
LaunchParams pick_launch(std::uint64_t work_items);

// Raw bit pattern of a double, for MOVI-materialized float constants.
std::int64_t f64_bits(double v);

}  // namespace ops

}  // namespace sndp
