#include <cstring>
#include <sstream>
#include <stdexcept>

#include "workloads/ops/ops.h"
#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

namespace ops {

LaunchParams pick_launch(std::uint64_t work_items) {
  if (work_items == 0 || work_items % kGridStride != 0) {
    throw std::invalid_argument("operator work size must be a positive multiple of kGridStride");
  }
  const std::uint64_t threads = work_items / kGridStride;
  for (unsigned cta : {256u, 128u, 64u, 32u, 16u}) {
    if (threads % cta == 0) {
      return LaunchParams{cta, static_cast<unsigned>(threads / cta)};
    }
  }
  throw std::invalid_argument("operator thread count has no CTA-sized divisor");
}

std::int64_t f64_bits(double v) {
  std::int64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace ops

GemmOperator::GemmOperator(ProblemScale scale) : Workload(scale) {
  cfg_ = pick<GemmConfig>({16, 16, 16, 2}, {32, 32, 32, 4}, {64, 64, 64, 4});
}

GemmOperator::GemmOperator(ProblemScale scale, const GemmConfig& cfg)
    : Workload(scale), cfg_(cfg) {
  if (cfg_.tile_k == 0 || cfg_.k % cfg_.tile_k != 0) {
    throw std::invalid_argument("GemmConfig: tile_k must divide k");
  }
}

std::string GemmOperator::description() const {
  std::ostringstream os;
  os << "Tiled GEMM " << cfg_.m << "x" << cfg_.n << "x" << cfg_.k
     << " (K-unroll " << cfg_.tile_k << ")";
  return os.str();
}

void GemmOperator::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  const std::uint64_t m = cfg_.m, n = cfg_.n, k = cfg_.k;
  a_ = alloc.alloc(m * k * 8);
  b_ = alloc.alloc(k * n * 8);
  c_ = alloc.alloc(m * n * 8);
  for (std::uint64_t i = 0; i < m * k; ++i) mem.write_f64(a_ + 8 * i, wl::value(i, 21));
  for (std::uint64_t i = 0; i < k * n; ++i) mem.write_f64(b_ + 8 * i, wl::value(i, 22));

  // One thread per C element: row = i / N, col = i % N (IDIV/IREM), then a
  // K loop unrolled by tile_k walking A by 8 B and B by a row (N * 8 B).
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(a_))
      .movi(17, static_cast<std::int64_t>(b_))
      .movi(18, static_cast<std::int64_t>(c_))
      .movi(6, static_cast<std::int64_t>(m * n))
      .movi(20, static_cast<std::int64_t>(k))
      .movi(21, static_cast<std::int64_t>(n))
      .mov(7, 0)  // i = gtid
      .label("elem")
      .alu(Opcode::kIDiv, 8, 7, 21)  // row
      .alu(Opcode::kIRem, 9, 7, 21)  // col
      .alu(Opcode::kIMul, 10, 8, 20)
      .madi(10, 10, 8, 16)  // &A[row][0]
      .madi(11, 9, 8, 17)   // &B[0][col]
      .movi(5, 0)           // acc = 0.0
      .movi(12, 0)          // kk = 0
      .label("kloop");
  for (unsigned u = 0; u < cfg_.tile_k; ++u) {
    pb.ld(22, 10, 8 * u)
        .ld(23, 11, static_cast<std::int64_t>(8 * n) * u)
        .fma(5, 22, 23, 5);
  }
  pb.alui(Opcode::kIAdd, 10, 10, 8 * cfg_.tile_k)
      .alui(Opcode::kIAdd, 11, 11, static_cast<std::int64_t>(8 * n) * cfg_.tile_k)
      .alui(Opcode::kIAdd, 12, 12, cfg_.tile_k)
      .isetp(0, CmpOp::kLt, 12, 20)
      .pred(0)
      .bra("kloop")
      .madi(14, 7, 8, 18)  // &C[i]
      .st(14, 5)
      .alu(Opcode::kIAdd, 7, 7, 1)  // i += total threads
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("elem")
      .exit();
  program_ = pb.build();
  launch_ = ops::pick_launch(m * n);
}

bool GemmOperator::verify(const GlobalMemory& mem) const {
  const std::uint64_t n = cfg_.n, k = cfg_.k;
  for (std::uint64_t i = 0; i < std::uint64_t{cfg_.m} * n; ++i) {
    const std::uint64_t row = i / n, col = i % n;
    double acc = 0.0;
    for (std::uint64_t kk = 0; kk < k; ++kk) {
      // FFMA evaluates as an unfused multiply-add; mirror that exactly.
      acc = wl::value(row * k + kk, 21) * wl::value(kk * n + col, 22) + acc;
    }
    if (mem.read_f64(c_ + 8 * i) != acc) return false;
  }
  return true;
}

std::vector<OutputRegion> GemmOperator::output_regions() const {
  return {{"C", c_, std::uint64_t{cfg_.m} * cfg_.n * 8}};
}

}  // namespace sndp
