#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void MinifeWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  nnz_ = pick<std::uint64_t>(2048, 131072, 524288);
  // x[] must not fit in the L2 (the paper's 128x64x64 grid does not), or
  // the gather loses its divergence cost on the baseline.
  ncols_ = nnz_ * 2;
  a_ = alloc.alloc(nnz_ * 8);
  col_ = alloc.alloc(nnz_ * 8);
  x_ = alloc.alloc(ncols_ * 8);
  p_ = alloc.alloc(nnz_ * 8);
  for (std::uint64_t k = 0; k < nnz_; ++k) {
    mem.write_f64(a_ + 8 * k, wl::value(k, 71));
    mem.write_u64(col_ + 8 * k, wl::index(k, ncols_, 72));
  }
  for (std::uint64_t c = 0; c < ncols_; ++c) mem.write_f64(x_ + 8 * c, wl::value(c, 73));

  // Sparse matvec partials: P[k] = A[k] * x[col[k]].  The x[] gather is
  // indirect through the streamed column index — the column load ends one
  // block and the gather + product + store form the next (the analyzer's
  // taint split).
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(a_))
      .movi(17, static_cast<std::int64_t>(col_))
      .movi(18, static_cast<std::int64_t>(x_))
      .movi(19, static_cast<std::int64_t>(p_))
      .mov(7, 0)
      .movi(6, static_cast<std::int64_t>(nnz_))
      .label("loop")
      .madi(8, 7, 8, 16)   // &A[k]
      .madi(9, 7, 8, 17)   // &col[k]
      .ld(10, 9)           // c = col[k]
      .madi(11, 10, 8, 18) // &x[c]  — address from loaded data: block split
      .ld(12, 11)          // x[c] — divergent gather
      .ld(13, 8)           // A[k]
      .alu(Opcode::kFMul, 14, 12, 13)
      .madi(15, 7, 8, 19)
      .st(15, 14)
      .alu(Opcode::kIAdd, 7, 7, 1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(nnz_ / 256 / kGridStride)};
}

bool MinifeWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t k = 0; k < nnz_; ++k) {
    const double expect = wl::value(wl::index(k, ncols_, 72), 73) * wl::value(k, 71);
    if (mem.read_f64(p_ + 8 * k) != expect) return false;
  }
  return true;
}

std::vector<OutputRegion> MinifeWorkload::output_regions() const {
  return {{"P", p_, nnz_ * 8}};
}

}  // namespace sndp
