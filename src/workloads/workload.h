// Workload framework: each of the paper's ten evaluated workloads
// (Table 1) is a generator that allocates and initializes data in the
// functional memory, emits a kernel in the sndp mini-ISA with the same
// memory/compute signature as the original CUDA code, and provides a host
// oracle that verifies the simulated output.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "isa/program.h"
#include "memfunc/global_memory.h"
#include "sim/context.h"

namespace sndp {

// One result-bearing address range of a workload: the kernel writes it and
// the host oracle reads it.  The manifest lets tools that compare or dump
// final memory images (the differential oracle, future checkpointing) know
// which ranges carry the answer — everything else is input or scratch.
struct OutputRegion {
  std::string name;          // e.g. "C" for VADD's result vector
  Addr base = 0;
  std::uint64_t bytes = 0;
};

// Input sizes are scaled from the paper so a simulation finishes in
// seconds; kTiny additionally shrinks for unit tests.
enum class ProblemScale { kTiny, kSmall, kLarge };

class Workload {
 public:
  explicit Workload(ProblemScale scale) : scale_(scale) {}
  virtual ~Workload() = default;

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  // Allocate arrays, write initial data, build the kernel.
  virtual void setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& rng) = 0;

  // Check the simulated output against a host oracle.
  virtual bool verify(const GlobalMemory& mem) const = 0;

  // Result-bearing address ranges (valid after setup()).  Every workload
  // must name each buffer its verify() reads.
  virtual std::vector<OutputRegion> output_regions() const = 0;

  const Program& program() const { return program_; }
  const LaunchParams& launch() const { return launch_; }
  ProblemScale scale() const { return scale_; }

 protected:
  // Scale helper: picks between tiny/small/large variants.
  template <typename T>
  T pick(T tiny, T small, T large) const {
    switch (scale_) {
      case ProblemScale::kTiny: return tiny;
      case ProblemScale::kSmall: return small;
      case ProblemScale::kLarge: return large;
    }
    return small;
  }

  ProblemScale scale_;
  Program program_;
  LaunchParams launch_{};
};

}  // namespace sndp
