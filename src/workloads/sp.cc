#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void SpWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  n_ = pick<std::uint64_t>(2048, 256 * 1024, 1024 * 1024);
  a_ = alloc.alloc(n_ * 8);
  b_ = alloc.alloc(n_ * 8);
  p_ = alloc.alloc(n_ * 8);
  for (std::uint64_t i = 0; i < n_; ++i) {
    mem.write_f64(a_ + 8 * i, wl::value(i, 11));
    mem.write_f64(b_ + 8 * i, wl::value(i, 12));
  }

  // P[i] = A[i] * B[i] — the per-element partial of the dot product (the
  // tree reduction runs on the host in the oracle), as a grid-stride loop.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(a_))
      .movi(17, static_cast<std::int64_t>(b_))
      .movi(18, static_cast<std::int64_t>(p_))
      .mov(7, 0)
      .movi(6, static_cast<std::int64_t>(n_))
      .label("loop")
      .madi(8, 7, 8, 16)
      .madi(9, 7, 8, 17)
      .madi(10, 7, 8, 18)
      .ld(11, 8)
      .ld(12, 9)
      .alu(Opcode::kFMul, 13, 11, 12)
      .st(10, 13)
      .alu(Opcode::kIAdd, 7, 7, 1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(n_ / 256 / kGridStride)};
}

bool SpWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t i = 0; i < n_; ++i) {
    if (mem.read_f64(p_ + 8 * i) != wl::value(i, 11) * wl::value(i, 12)) return false;
  }
  return true;
}

std::vector<OutputRegion> SpWorkload::output_regions() const {
  return {{"P", p_, n_ * 8}};
}

}  // namespace sndp
