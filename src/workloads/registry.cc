#include "workloads/registry.h"

#include <stdexcept>

#include "workloads/ops/ops.h"
#include "workloads/workloads.h"

namespace sndp {

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> kNames = {"BPROP", "BFS",    "BICG", "FWT",  "KMN",
                                                  "MiniFE", "SP",    "STN",  "STCL", "VADD"};
  return kNames;
}

const std::vector<std::string>& operator_names() {
  static const std::vector<std::string> kNames = {"GEMM", "SPMV", "REDUCE", "ATTN"};
  return kNames;
}

const std::vector<std::string>& all_workload_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names = workload_names();
    const auto& ops = operator_names();
    names.insert(names.end(), ops.begin(), ops.end());
    return names;
  }();
  return kNames;
}

std::unique_ptr<Workload> make_workload(const std::string& name, ProblemScale scale) {
  if (name == "BPROP") return std::make_unique<BpropWorkload>(scale);
  if (name == "BFS") return std::make_unique<BfsWorkload>(scale);
  if (name == "BICG") return std::make_unique<BicgWorkload>(scale);
  if (name == "FWT") return std::make_unique<FwtWorkload>(scale);
  if (name == "KMN") return std::make_unique<KmnWorkload>(scale);
  if (name == "MiniFE") return std::make_unique<MinifeWorkload>(scale);
  if (name == "SP") return std::make_unique<SpWorkload>(scale);
  if (name == "STN") return std::make_unique<StnWorkload>(scale);
  if (name == "STCL") return std::make_unique<StclWorkload>(scale);
  if (name == "VADD") return std::make_unique<VaddWorkload>(scale);
  if (name == "GEMM") return std::make_unique<GemmOperator>(scale);
  if (name == "SPMV") return std::make_unique<SpmvOperator>(scale);
  if (name == "REDUCE") return std::make_unique<ReduceOperator>(scale);
  if (name == "ATTN") return std::make_unique<AttnOperator>(scale);
  throw std::invalid_argument("make_workload: unknown workload '" + name + "'");
}

}  // namespace sndp
