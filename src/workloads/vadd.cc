#include <cmath>

#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void VaddWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  n_ = pick<std::uint64_t>(2048, 256 * 1024, 1024 * 1024);
  a_ = alloc.alloc(n_ * 8);
  b_ = alloc.alloc(n_ * 8);
  c_ = alloc.alloc(n_ * 8);
  for (std::uint64_t i = 0; i < n_; ++i) {
    mem.write_f64(a_ + 8 * i, wl::value(i, 1));
    mem.write_f64(b_ + 8 * i, wl::value(i, 2));
  }

  // C[i] = A[i] + B[i] (paper Fig. 2's running example), written as the
  // canonical grid-stride loop: each thread covers kGridStride elements,
  // so every warp executes the offload block several times and block
  // instances across the machine desynchronize (as in the real SDK kernel).
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(a_))
      .movi(17, static_cast<std::int64_t>(b_))
      .movi(18, static_cast<std::int64_t>(c_))
      .mov(7, 0)  // i = tid
      .movi(6, static_cast<std::int64_t>(n_))
      .label("loop")
      .madi(8, 7, 8, 16)   // &A[i]
      .madi(9, 7, 8, 17)   // &B[i]
      .madi(10, 7, 8, 18)  // &C[i]
      .ld(11, 8)
      .ld(12, 9)
      .alu(Opcode::kFAdd, 13, 11, 12)
      .st(10, 13)
      .alu(Opcode::kIAdd, 7, 7, 1)  // i += total threads (R1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(n_ / 256 / kGridStride)};
}

bool VaddWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t i = 0; i < n_; ++i) {
    const double expect = wl::value(i, 1) + wl::value(i, 2);
    if (mem.read_f64(c_ + 8 * i) != expect) return false;
  }
  return true;
}

std::vector<OutputRegion> VaddWorkload::output_regions() const {
  return {{"C", c_, n_ * 8}};
}

}  // namespace sndp
