#include <cmath>

#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {
namespace {

// The kernel clamps neighbor indices to [0, n-1]; the oracle replicates it.
std::int64_t clamp_idx(std::int64_t i, std::int64_t n) {
  if (i < 0) return 0;
  if (i >= n) return n - 1;
  return i;
}

float f32_value(std::uint64_t i) { return static_cast<float>(wl::value(i, 81)); }

}  // namespace

void StnWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  nx_ = pick<std::uint64_t>(256, 1024, 2048);
  ny_ = pick<std::uint64_t>(8, 16, 32);
  nz_ = pick<std::uint64_t>(1, 8, 8);
  const std::uint64_t n = nx_ * ny_ * nz_;
  in_ = alloc.alloc(n * 4);
  out_ = alloc.alloc(n * 4);
  for (std::uint64_t i = 0; i < n; ++i) mem.write_f32(in_ + 4 * i, f32_value(i));

  // 7-point stencil over a flat index with clamped offsets.  Neighbor loads
  // overlap heavily between adjacent threads and warps, so the GPU caches
  // absorb most of them — the workload the cache-aware governor must
  // protect (§7.3).  The per-thread coefficients (alpha, beta) are computed
  // on the GPU before the block and become live-in register transfers,
  // making naive offloading doubly wasteful.
  const auto N = static_cast<std::int64_t>(n);
  const auto sx = std::int64_t{1};
  const auto sy = static_cast<std::int64_t>(nx_);
  const auto sz = static_cast<std::int64_t>(nx_ * ny_);
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(in_))
      .movi(17, static_cast<std::int64_t>(out_))
      // alpha = 1 + (tid % 3), beta = 2: per-thread live-in context.
      .alui(Opcode::kIRem, 20, 0, 3)
      .alui(Opcode::kIAdd, 20, 20, 1)
      .unary(Opcode::kI2F, 20, 20)  // alpha (double)
      .movi(21, 2)
      .unary(Opcode::kI2F, 21, 21)  // beta
      // The barrier (the Parboil kernel syncs after staging) keeps the
      // coefficient computation out of the offload block, so alpha/beta are
      // genuine live-in register transfers rather than recomputable on the
      // NSU.
      .bar();
  // Clamped neighbor indices (address slice — stays on the GPU).
  struct Off {
    unsigned reg;
    std::int64_t delta;
  };
  const Off offs[6] = {{24, -sx}, {25, +sx}, {26, -sy}, {27, +sy}, {28, -sz}, {29, +sz}};
  for (const Off& o : offs) {
    pb.alui(Opcode::kIAdd, o.reg, 0, o.delta)
        .alui(Opcode::kIMax, o.reg, o.reg, 0)
        .alui(Opcode::kIMin, o.reg, o.reg, N - 1)
        .madi(o.reg, o.reg, 4, 16);  // byte address
  }
  pb.madi(8, 0, 4, 16)    // &in[i]
      .madi(9, 0, 4, 17)  // &out[i]
      // The offload block: 7 loads, sum, scale — ~15 NSU instructions.
      .ld(10, 8, 0, 4, true)  // center (f32)
      .ld(11, 24, 0, 4, true)
      .ld(12, 25, 0, 4, true)
      .alu(Opcode::kFAdd, 13, 11, 12)
      .ld(11, 26, 0, 4, true)
      .alu(Opcode::kFAdd, 13, 13, 11)
      .ld(11, 27, 0, 4, true)
      .alu(Opcode::kFAdd, 13, 13, 11)
      .ld(11, 28, 0, 4, true)
      .alu(Opcode::kFAdd, 13, 13, 11)
      .ld(11, 29, 0, 4, true)
      .alu(Opcode::kFAdd, 13, 13, 11)
      .alui(Opcode::kFDiv, 13, 13, 8)        // average-ish of neighbors
      .alu(Opcode::kFMul, 13, 13, 20)        // * alpha (live-in)
      .fma(13, 10, 21, 13)                   // + center * beta (live-in)
      .st(9, 13, 0, 4, true)
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(n / 256)};
}

bool StnWorkload::verify(const GlobalMemory& mem) const {
  const auto n = static_cast<std::int64_t>(nx_ * ny_ * nz_);
  const auto sy = static_cast<std::int64_t>(nx_);
  const auto sz = static_cast<std::int64_t>(nx_ * ny_);
  for (std::int64_t i = 0; i < n; ++i) {
    const double alpha = 1.0 + static_cast<double>(i % 3);
    const double beta = 2.0;
    const double center = static_cast<double>(f32_value(static_cast<std::uint64_t>(i)));
    double sum = 0.0;
    const std::int64_t deltas[6] = {-1, +1, -sy, +sy, -sz, +sz};
    // Match the kernel's left-to-right FADD chain exactly.
    double acc = static_cast<double>(f32_value(clamp_idx(i + deltas[0], n))) +
                 static_cast<double>(f32_value(clamp_idx(i + deltas[1], n)));
    for (int d = 2; d < 6; ++d) {
      acc += static_cast<double>(f32_value(clamp_idx(i + deltas[d], n)));
    }
    sum = acc / 8.0;
    sum *= alpha;
    sum = center * beta + sum;
    const float expect = static_cast<float>(sum);
    if (mem.read_f32(out_ + 4 * i) != expect) return false;
  }
  return true;
}

std::vector<OutputRegion> StnWorkload::output_regions() const {
  return {{"OUT", out_, nx_ * ny_ * nz_ * 4}};
}

}  // namespace sndp
