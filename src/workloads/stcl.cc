#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void StclWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  points_ = pick<std::uint64_t>(2048, 131072, 262144);
  pts_ = alloc.alloc(points_ * kDims * 8);
  ctr_ = alloc.alloc(kCenters * kDims * 8);
  out_ = alloc.alloc(points_ * 8);
  for (std::uint64_t i = 0; i < points_ * kDims; ++i) {
    mem.write_f64(pts_ + 8 * i, wl::value(i, 91));
  }
  for (std::uint64_t i = 0; i < kCenters * kDims; ++i) {
    mem.write_f64(ctr_ + 8 * i, wl::value(i, 92));
  }

  // Streamcluster distance loop: for each center c,
  //   dist_c = sum_d (pt[d] - ctr[c][d])^2,   out[p] = sum_c dist_c.
  // The point coordinates are re-read on every center iteration (L1 hits
  // after the first) and the center table is tiny — a cache-friendly
  // workload that NDP must learn to leave on the GPU (§7.1/§7.3).  The
  // loop body is one offload block; the running total crosses block
  // instances as a live-in + live-out register.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(pts_))
      .movi(17, static_cast<std::int64_t>(ctr_))
      .movi(18, static_cast<std::int64_t>(out_))
      .madi(8, 0, 8 * kDims, 16)  // &pt[p][0]
      .movi(20, 0)                // total = +0.0
      .movi(21, 0)                // c = 0
      .label("center_loop")
      .madi(9, 21, 8 * kDims, 17);  // &ctr[c][0]
  for (unsigned d = 0; d < kDims; ++d) {
    pb.ld(10, 8, static_cast<std::int64_t>(8 * d));   // pt[d] — cached re-read
    pb.ld(11, 9, static_cast<std::int64_t>(8 * d));   // ctr[c][d] — tiny table
    pb.alu(Opcode::kFSub, 12, 10, 11);
    if (d == 0) {
      pb.alu(Opcode::kFMul, 13, 12, 12);
    } else {
      pb.fma(13, 12, 12, 13);
    }
  }
  pb.alu(Opcode::kFAdd, 20, 20, 13)  // total += dist_c
      .alui(Opcode::kIAdd, 21, 21, 1)
      .isetpi(0, CmpOp::kLt, 21, kCenters)
      .pred(0)
      .bra("center_loop")
      .madi(9, 0, 8, 18)
      .st(9, 20)
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(points_ / 256)};
}

bool StclWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t p = 0; p < points_; ++p) {
    double total = 0.0;
    for (unsigned c = 0; c < kCenters; ++c) {
      double dist = 0.0;
      for (unsigned d = 0; d < kDims; ++d) {
        const double pt = wl::value(p * kDims + d, 91);
        const double ct = wl::value(static_cast<std::uint64_t>(c) * kDims + d, 92);
        const double t = pt - ct;
        dist = d == 0 ? t * t : t * t + dist;
      }
      total += dist;
    }
    if (mem.read_f64(out_ + 8 * p) != total) return false;
  }
  return true;
}

std::vector<OutputRegion> StclWorkload::output_regions() const {
  return {{"OUT", out_, points_ * 8}};
}

}  // namespace sndp
