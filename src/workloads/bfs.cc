#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void BfsWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  // The node arrays must exceed the 2 MB L2 or the "divergent" gathers all
  // hit on chip and NDP has nothing to save (the paper uses 1M nodes).
  nodes_ = pick<std::uint64_t>(2048, 131072, 524288);
  edges_ = alloc.alloc(nodes_ * kDegree * 8);
  val_ = alloc.alloc(nodes_ * 8);
  dist_ = alloc.alloc(nodes_ * 8);
  res_ = alloc.alloc(nodes_ * 8);
  for (std::uint64_t v = 0; v < nodes_; ++v) {
    mem.write_f64(val_ + 8 * v, wl::value(v, 41));
    mem.write_f64(dist_ + 8 * v, wl::value(v, 42));
    for (unsigned e = 0; e < kDegree; ++e) {
      mem.write_u64(edges_ + 8 * (v * kDegree + e),
                    wl::index(v * kDegree + e, nodes_, 43));
    }
  }

  // Per node: gather val[] and dist[] of its neighbors through the edge
  // list.  The neighbor ids are (pseudo)random, so the two dependent loads
  // are divergent — the analyzer turns each into a single-instruction
  // indirect offload block (§4.4) and the NDP path fetches only the touched
  // words instead of whole cache lines.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(edges_))
      .movi(17, static_cast<std::int64_t>(val_))
      .movi(18, static_cast<std::int64_t>(dist_))
      .movi(19, static_cast<std::int64_t>(res_))
      .mov(7, 0)
      .movi(6, static_cast<std::int64_t>(nodes_))
      .label("loop")
      .movi(20, 0)  // acc = +0.0 (bit pattern)
      .madi(8, 7, 8 * kDegree, 16);
  for (unsigned e = 0; e < kDegree; ++e) {
    pb.ld(10, 8, static_cast<std::int64_t>(8 * e));  // eid — streaming, regular
    pb.madi(11, 10, 8, 17);                           // &val[eid]   (address from data)
    pb.ld(12, 11);                                    // indirect block #1
    pb.madi(13, 10, 8, 18);                           // &dist[eid]
    pb.ld(14, 13);                                    // indirect block #2
    pb.alu(Opcode::kFAdd, 20, 20, 12);
    pb.alu(Opcode::kFAdd, 20, 20, 14);
  }
  pb.madi(9, 7, 8, 19)
      .st(9, 20)
      .alu(Opcode::kIAdd, 7, 7, 1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(nodes_ / 256 / kGridStride)};
}

bool BfsWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t v = 0; v < nodes_; ++v) {
    double acc = 0.0;
    for (unsigned e = 0; e < kDegree; ++e) {
      const std::uint64_t eid = wl::index(v * kDegree + e, nodes_, 43);
      acc += wl::value(eid, 41);
      acc += wl::value(eid, 42);
    }
    if (mem.read_f64(res_ + 8 * v) != acc) return false;
  }
  return true;
}

std::vector<OutputRegion> BfsWorkload::output_regions() const {
  return {{"RES", res_, nodes_ * 8}};
}

}  // namespace sndp
