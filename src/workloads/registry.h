// Workload factory: make any of the paper's Table 1 workloads by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace sndp {

// Names in Table 1 order: BPROP BFS BICG FWT KMN MiniFE SP STN STCL VADD.
const std::vector<std::string>& workload_names();

// Operator-library generators (src/workloads/ops): GEMM SPMV REDUCE ATTN.
const std::vector<std::string>& operator_names();

// Table-1 workloads followed by the operators — everything make_workload
// accepts.
const std::vector<std::string>& all_workload_names();

// Throws std::invalid_argument for unknown names.
std::unique_ptr<Workload> make_workload(const std::string& name, ProblemScale scale);

}  // namespace sndp
