// Workload base is header-only; this TU anchors the module.
#include "workloads/workload.h"
