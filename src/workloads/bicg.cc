#include "workloads/wl_util.h"
#include "workloads/workloads.h"

namespace sndp {

void BicgWorkload::setup(GlobalMemory& mem, MemoryAllocator& alloc, Rng& /*rng*/) {
  n_ = pick<std::uint64_t>(2048, 131072, 524288);
  a_ = alloc.alloc(2 * n_ * 8);  // A followed by A^T stripe
  p_ = alloc.alloc(n_ * 8);
  r_ = alloc.alloc(n_ * 8);
  q_ = alloc.alloc(n_ * 8);
  s_ = alloc.alloc(n_ * 8);
  for (std::uint64_t i = 0; i < 2 * n_; ++i) mem.write_f64(a_ + 8 * i, wl::value(i, 51));
  for (std::uint64_t i = 0; i < n_; ++i) {
    mem.write_f64(p_ + 8 * i, wl::value(i, 52));
    mem.write_f64(r_ + 8 * i, wl::value(i, 53));
  }

  // The two BiCG partial products: q[i] = A[i] * p[i] and
  // s[i] = A^T[i] * r[i].  A scratchpad staging store of the first product
  // sits between them (as the Polybench kernel stages data in shared
  // memory), which both exercises the SHM path and splits the region into
  // the paper's two offload blocks.
  ProgramBuilder pb;
  pb.movi(16, static_cast<std::int64_t>(a_))
      .movi(17, static_cast<std::int64_t>(p_))
      .movi(18, static_cast<std::int64_t>(r_))
      .movi(19, static_cast<std::int64_t>(q_))
      .movi(20, static_cast<std::int64_t>(s_))
      .movi(24, 0)
      .mov(7, 0)
      .movi(6, static_cast<std::int64_t>(n_))
      .label("loop")
      // Block 1: q[i] = A[i] * p[i].
      .madi(8, 7, 8, 16)
      .madi(9, 7, 8, 17)
      .madi(10, 7, 8, 19)
      .ld(11, 8)
      .ld(12, 9)
      .alu(Opcode::kFMul, 13, 11, 12)
      .st(10, 13)
      // Scratchpad staging (never inside an offload block, §3.1).
      .madi(25, 3, 8, 24)
      .shm_st(25, 13)
      // Block 2: s[i] = A^T[i] * r[i].
      .madi(8, 7, 8, 16)
      .alui(Opcode::kIAdd, 8, 8, static_cast<std::int64_t>(n_ * 8))
      .madi(9, 7, 8, 18)
      .madi(10, 7, 8, 20)
      .ld(11, 8)
      .ld(12, 9)
      .alu(Opcode::kFMul, 13, 11, 12)
      .st(10, 13)
      .alu(Opcode::kIAdd, 7, 7, 1)
      .isetp(0, CmpOp::kLt, 7, 6)
      .pred(0)
      .bra("loop")
      .exit();
  program_ = pb.build();
  launch_ = LaunchParams{256, static_cast<unsigned>(n_ / 256 / kGridStride)};
}

bool BicgWorkload::verify(const GlobalMemory& mem) const {
  for (std::uint64_t i = 0; i < n_; ++i) {
    if (mem.read_f64(q_ + 8 * i) != wl::value(i, 51) * wl::value(i, 52)) return false;
    if (mem.read_f64(s_ + 8 * i) != wl::value(n_ + i, 51) * wl::value(i, 53)) return false;
  }
  return true;
}

std::vector<OutputRegion> BicgWorkload::output_regions() const {
  return {{"Q", q_, n_ * 8}, {"S", s_, n_ * 8}};
}

}  // namespace sndp
