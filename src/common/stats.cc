#include "common/stats.h"

#include <sstream>
#include <stdexcept>

namespace sndp {

double StatSet::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::out_of_range("StatSet: no stat named '" + name + "'");
  }
  return it->second;
}

double StatSet::get_or(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

void StatSet::merge(const std::string& prefix, const StatSet& other) {
  for (const auto& [name, value] : other.values_) {
    values_[prefix + name] += value;
  }
}

double StatSet::sum_matching(const std::string& prefix, const std::string& suffix) const {
  double total = 0.0;
  // values_ is ordered; restrict the scan to keys starting with prefix.
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    const std::string& key = it->first;
    if (key.compare(0, prefix.size(), prefix) != 0) break;
    if (key.size() >= prefix.size() + suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += it->second;
    }
  }
  return total;
}

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : values_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

void Distribution::export_to(StatSet& out, const std::string& name) const {
  out.set(name + ".count", static_cast<double>(count_));
  out.set(name + ".sum", sum_);
  out.set(name + ".mean", mean());
  out.set(name + ".min", min());
  out.set(name + ".max", max());
}

}  // namespace sndp
