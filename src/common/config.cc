#include "common/config.h"

#include <bit>
#include <stdexcept>

namespace sndp {

SystemConfig SystemConfig::paper() {
  return SystemConfig{};  // defaults reproduce Table 2
}

SystemConfig SystemConfig::paper_more_core() {
  SystemConfig cfg;
  cfg.num_sms = 72;  // Baseline_MoreCore: 64 + 8 additional SMs
  return cfg;
}

SystemConfig SystemConfig::paper_2x() {
  SystemConfig cfg;
  cfg.num_sms = 128;  // §7.3: number of compute units doubled
  return cfg;
}

SystemConfig SystemConfig::small_test() {
  SystemConfig cfg;
  cfg.num_sms = 4;
  cfg.num_hmcs = 4;
  cfg.sm.max_threads = 256;  // 8 warps per SM
  cfg.sm.max_ctas = 4;
  cfg.l2.size_bytes = 256 * KiB;
  cfg.hmc.num_vaults = 4;
  cfg.hmc.banks_per_vault = 4;
  cfg.hmc.memory_bytes = 64 * MiB;
  return cfg;
}

void SystemConfig::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("SystemConfig: ") + what);
  };
  require(num_sms >= 1, "need at least one SM");
  // Non-power-of-two stack counts ride an incomplete hypercube (every
  // single-bit-flip edge whose endpoints both exist); the upper bound keeps
  // node ids inside the packet's 8-bit target-NSU field.
  require(num_hmcs >= 1 && num_hmcs <= 255, "HMC count must be in [1, 255]");
  require(parallel_partitions >= 1, "parallel_partitions must be >= 1");
  require(placement.policy != PlacementPolicyKind::kMigration ||
              placement.migration_threshold >= 1,
          "migration threshold must be at least 1");
  require(sm.warp_width == kWarpWidth, "warp width must be 32");
  require(sm.max_threads % sm.warp_width == 0, "SM thread count must be warp-aligned");
  require(std::has_single_bit(static_cast<std::uint64_t>(sm.l1d.line_bytes)),
          "L1 line size must be a power of two");
  require(sm.l1d.line_bytes == l2.line_bytes, "L1/L2 line sizes must match");
  require(sm.l1d.num_sets() >= 1 && l2.num_sets() >= 1, "cache must have >= 1 set");
  require(std::has_single_bit(page_bytes), "page size must be a power of two");
  require(page_bytes >= l2.line_bytes, "page must hold at least one line");
  require(std::has_single_bit(static_cast<std::uint64_t>(hmc.num_vaults)),
          "vault count must be a power of two");
  require(std::has_single_bit(static_cast<std::uint64_t>(hmc.banks_per_vault)),
          "bank count must be a power of two");
  require(hmc.memory_bytes % page_bytes == 0, "HMC capacity must be page-aligned");
  require(clocks.sm_khz > 0 && clocks.dram_khz > 0 && clocks.nsu_khz > 0 &&
              clocks.l2_khz > 0 && clocks.xbar_khz > 0,
          "all clock frequencies must be positive");
  require(governor.epoch_cycles > 0, "epoch length must be positive");
  require(governor.step_min <= governor.step_max, "step_min must be <= step_max");
  require(ndp_buffers.nsu_cmd_entries >= 1, "need at least one offload command entry");
}

}  // namespace sndp
