#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sndp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  // Counters are doubles holding exact integers; print them without the
  // exponent/decimal noise %.17g would add.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::comma_for_value() {
  if (!scopes_.empty() && !pending_key_) {
    if (scopes_.back() == Scope::kObject) {
      throw std::logic_error("JsonWriter: value inside object without key()");
    }
    if (scope_has_items_.back()) out_.push_back(',');
    scope_has_items_.back() = true;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_.push_back('{');
  scopes_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  out_.push_back('}');
  scopes_.pop_back();
  scope_has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_.push_back('[');
  scopes_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::kArray || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  out_.push_back(']');
  scopes_.pop_back();
  scope_has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (scopes_.empty() || scopes_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (scope_has_items_.back()) out_.push_back(',');
  scope_has_items_.back() = true;
  out_.push_back('"');
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_for_value();
  out_.push_back('"');
  out_ += json_escape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  if (!scopes_.empty() || pending_key_) {
    throw std::logic_error("JsonWriter: str() with unterminated scopes");
  }
  return out_;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str() << '\n';
  return static_cast<bool>(out);
}

}  // namespace sndp
