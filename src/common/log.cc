#include "common/log.h"

#include <atomic>
#include <cstdarg>

namespace sndp {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}
}  // namespace

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void Log::write(LogLevel lvl, const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[%s][%s] ", level_name(lvl), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace sndp
