// Unit helpers: bandwidth / frequency / size conversions used when turning
// the paper's Table 2 into simulator parameters.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace sndp {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

// Picoseconds per byte for a given bandwidth in GB/s (decimal GB, as link
// vendors quote).  20 GB/s -> 50 ps/B.
constexpr double ps_per_byte(double gb_per_s) { return 1000.0 / gb_per_s; }

// Serialization delay of `bytes` over a `gb_per_s` link, rounded up to ps.
constexpr TimePs serialize_ps(std::uint64_t bytes, double gb_per_s) {
  const double ps = static_cast<double>(bytes) * ps_per_byte(gb_per_s);
  return static_cast<TimePs>(ps + 0.999999);
}

// Period of a clock in ps for a frequency given in MHz (rounded to nearest).
constexpr TimePs period_ps_from_mhz(double mhz) {
  return static_cast<TimePs>(1e6 / mhz + 0.5);
}

// Exact tick->time mapping that avoids cumulative rounding drift:
// time(n) = n * 1e6 / mhz  (in ps), computed in integer arithmetic.
constexpr TimePs tick_time_ps(Cycle n, std::uint64_t freq_khz) {
  // 1 tick = 1e9 ps / freq_khz.
  return static_cast<TimePs>((static_cast<unsigned __int128>(n) * 1000000000ull) / freq_khz);
}

}  // namespace sndp
