// Statistics registry: named counters and simple distributions.
//
// Components own their counters as plain uint64/double members for speed and
// export them into a StatSet at the end of a run; the StatSet provides the
// uniform view that benches print and tests assert on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sndp {

// A flat, ordered name -> value map.  Values are doubles (counters fit
// exactly up to 2^53, far beyond any counter in our runs).
class StatSet {
 public:
  void set(const std::string& name, double value) { values_[name] = value; }
  void add(const std::string& name, double value) { values_[name] += value; }

  bool contains(const std::string& name) const { return values_.count(name) != 0; }
  double get(const std::string& name) const;
  // Returns `fallback` when missing instead of throwing.
  double get_or(const std::string& name, double fallback) const;

  const std::map<std::string, double>& values() const { return values_; }

  // Merge another StatSet under a prefix, e.g. "sm3." + name.
  void merge(const std::string& prefix, const StatSet& other);

  // Sum of all stats whose name matches "prefix*suffix" with a single '*'
  // wildcard standing for any infix (used to aggregate per-SM counters).
  double sum_matching(const std::string& prefix, const std::string& suffix) const;

  std::string to_string() const;

 private:
  std::map<std::string, double> values_;
};

// Streaming distribution: count / sum / min / max, O(1) memory.
class Distribution {
 public:
  void record(double v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    sum_ += v;
    ++count_;
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void export_to(StatSet& out, const std::string& name) const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0, min_ = 0.0, max_ = 0.0;
};

}  // namespace sndp
