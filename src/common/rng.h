// Deterministic, fast pseudo-random generator (xoshiro256**) used everywhere
// randomness is needed (page placement, offload-ratio sampling, workload
// data).  std::mt19937 is avoided so the stream is stable across standard
// library versions — determinism is a tested invariant of this simulator.
#pragma once

#include <cstdint>

namespace sndp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the xoshiro state.
    auto splitmix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = splitmix();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound == 0 is invalid.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // modulo bias is negligible for our bounds (<< 2^32) but we still use
    // the widening-multiply method for uniformity.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace sndp
