// Minimal leveled logging.  Off by default; enabled per-run for debugging.
// Kept deliberately simple (printf-style) so it never perturbs timing paths.
#pragma once

#include <cstdio>
#include <string>

namespace sndp {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) <= static_cast<int>(level()); }

  // printf-style logging with a subsystem tag.
  static void write(LogLevel lvl, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

#define SNDP_LOG(lvl, tag, ...)                              \
  do {                                                       \
    if (::sndp::Log::enabled(lvl)) {                         \
      ::sndp::Log::write(lvl, tag, __VA_ARGS__);             \
    }                                                        \
  } while (0)

#define SNDP_ERROR(tag, ...) SNDP_LOG(::sndp::LogLevel::kError, tag, __VA_ARGS__)
#define SNDP_WARN(tag, ...) SNDP_LOG(::sndp::LogLevel::kWarn, tag, __VA_ARGS__)
#define SNDP_INFO(tag, ...) SNDP_LOG(::sndp::LogLevel::kInfo, tag, __VA_ARGS__)
#define SNDP_DEBUG(tag, ...) SNDP_LOG(::sndp::LogLevel::kDebug, tag, __VA_ARGS__)
#define SNDP_TRACE(tag, ...) SNDP_LOG(::sndp::LogLevel::kTrace, tag, __VA_ARGS__)

}  // namespace sndp
