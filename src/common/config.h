// System configuration.  The default values of every struct reproduce the
// paper's Table 2 ("System configuration") and the NDP parameters given in
// §5 and §7.2.  Benches use these defaults; tests may shrink the system.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "common/units.h"

namespace sndp {

// ---------------------------------------------------------------------------
// Clocks (Table 2: "SM, Xbar, L2 clock: 700, 1250, 700 MHz"; NSU: 350 MHz;
// DRAM: tCK = 1.50 ns -> 666.67 MHz).
// ---------------------------------------------------------------------------
struct ClockConfig {
  std::uint64_t sm_khz = 700'000;
  std::uint64_t xbar_khz = 1'250'000;
  std::uint64_t l2_khz = 700'000;
  std::uint64_t dram_khz = 666'667;  // tCK = 1.5 ns
  std::uint64_t nsu_khz = 350'000;
};

// ---------------------------------------------------------------------------
// Cache geometry (Table 2).
// ---------------------------------------------------------------------------
struct CacheConfig {
  std::uint64_t size_bytes = 32 * KiB;
  unsigned ways = 4;
  unsigned line_bytes = 128;
  unsigned mshr_entries = 48;
  // Accesses the cache can begin per cycle (ports).
  unsigned ports = 1;
  // Tag/array access latency, in the owning clock domain's cycles.
  unsigned latency_cycles = 1;

  unsigned num_sets() const {
    return static_cast<unsigned>(size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes));
  }
};

// ---------------------------------------------------------------------------
// SM configuration (Table 2).
// ---------------------------------------------------------------------------
struct SmConfig {
  unsigned max_threads = 1536;
  unsigned max_ctas = 8;
  unsigned max_registers = 32768;
  std::uint64_t scratchpad_bytes = 48 * KiB;
  unsigned warp_width = kWarpWidth;

  // Execution model: single dual-purpose issue port; ALU ops have a fixed
  // pipeline depth (latency) and an initiation interval per op class.
  unsigned alu_latency = 10;     // cycles until result is ready
  unsigned sfu_latency = 20;     // MUL/DIV/transcendental class
  unsigned alu_ii = 1;           // initiation interval (issue occupancy)
  unsigned sfu_ii = 2;
  unsigned shm_latency = 24;     // scratchpad access
  unsigned max_warps() const { return max_threads / warp_width; }

  CacheConfig l1d{.size_bytes = 32 * KiB, .ways = 4, .line_bytes = 128,
                  .mshr_entries = 48, .ports = 1, .latency_cycles = 25};
};

// ---------------------------------------------------------------------------
// DRAM timing (Table 2: DDR3-1333H-like vault timing, in tCK units).
// ---------------------------------------------------------------------------
struct DramTiming {
  unsigned tRP = 9;
  unsigned tCCD = 4;
  unsigned tRCD = 9;
  unsigned tCL = 9;
  unsigned tWR = 12;
  unsigned tRAS = 24;
  // Data burst occupancy of the vault data bus for one 128 B line: with
  // tCCD = 4 a line streams out in 4 tCK (~21.3 GB/s/vault, ~341 GB/s/stack,
  // matching the paper's ~320 GB/s peak per-HMC figure).
  unsigned tBURST = 4;
};

// ---------------------------------------------------------------------------
// HMC stack (Table 2).
// ---------------------------------------------------------------------------
struct HmcConfig {
  unsigned num_vaults = 16;
  unsigned banks_per_vault = 16;
  std::uint64_t memory_bytes = 4 * GiB;
  unsigned vault_queue_size = 64;  // FR-FCFS request queue entries
  DramTiming timing{};
  std::uint64_t row_bytes = 4 * KiB;  // DRAM row (page) size, for energy
};

// ---------------------------------------------------------------------------
// Link / network configuration (Table 2: all off-chip links 20 GB/s per
// direction; GPU has 8 bidirectional links; each HMC has 4 — 1 to the GPU
// and 3 forming the 3-D hypercube memory network).
// ---------------------------------------------------------------------------
struct LinkConfig {
  double gb_per_s = 20.0;        // per direction
  unsigned header_bytes = 8;     // per-packet routing/CRC overhead
  TimePs propagation_ps = 3200;  // ~3.2 ns flight + SerDes
  unsigned router_latency_cycles = 2;  // per-hop router pipeline (DRAM clock)
  unsigned credits_per_port = 16;      // input-buffer credits, in packets
};

// ---------------------------------------------------------------------------
// NSU (Table 2, "NDP-specific configuration").
// ---------------------------------------------------------------------------
struct NsuConfig {
  unsigned max_warps = 48;
  unsigned warp_width = kWarpWidth;
  // Physical SIMD lanes (§4.5): a 32-wide warp instruction issues over
  // warp_width / simd_lanes cycles (temporal SIMT), occupying the single
  // issue port — the NSU is deliberately much weaker than an SM.
  unsigned simd_lanes = 16;
  std::uint64_t icache_bytes = 4 * KiB;
  std::uint64_t const_cache_bytes = 4 * KiB;
  unsigned alu_latency = 10;
  unsigned sfu_latency = 20;
  unsigned alu_ii = 1;
  unsigned sfu_ii = 2;
  // Optional read-only cache (paper §7.1 suggests it to fix BPROP-like
  // workloads); disabled in the paper's main configuration.
  bool read_only_cache = false;
  std::uint64_t read_only_cache_bytes = 2 * KiB;
};

// ---------------------------------------------------------------------------
// NDP buffers (Table 2).
// ---------------------------------------------------------------------------
struct NdpBufferConfig {
  unsigned sm_pending_entries = 300;  // 8 B x 300 per SM
  unsigned sm_ready_entries = 64;     // 8 B x 64 per SM
  unsigned nsu_read_data_entries = 256;   // 128 B x 256 per NSU
  unsigned nsu_write_addr_entries = 256;  // 128 B x 256 per NSU
  unsigned nsu_cmd_entries = 10;          // offload command buffer
};

// ---------------------------------------------------------------------------
// Offload governor (§7.1-7.3).
// ---------------------------------------------------------------------------
enum class OffloadMode {
  kOff,          // baseline: never offload
  kAlways,       // naive NDP: offload every block instance
  kStaticRatio,  // offload each instance with fixed probability
  kDynamic,      // hill-climbing dynamic ratio (Algorithm 1)
  kDynamicCache, // dynamic ratio + cache-locality-aware suppression (§7.3)
};

struct GovernorConfig {
  OffloadMode mode = OffloadMode::kOff;
  double static_ratio = 1.0;

  // Algorithm 1 parameters (§7.2).
  Cycle epoch_cycles = 30'000;  // in SM cycles
  double initial_ratio = 0.1;
  double initial_step = 0.15;
  double step_unit = 0.05;   // granularity of step-size change
  double step_min = 0.05;
  double step_max = 0.15;
  unsigned history_window = 4;

  // Cache-aware decision (§7.3): blocks are scored optimistically until this
  // many instances have been observed.
  unsigned warmup_instances = 32;
  // Extension beyond the paper's Benefit equation: also charge the data an
  // offloaded instance would push across the GPU links when its loads HIT
  // in the caches (RDF cache-hit responses, the §7.1 BPROP pathology).
  // Makes borderline cache-friendly blocks suppress decisively.
  bool model_hit_push_cost = true;
};

// ---------------------------------------------------------------------------
// Multi-tenant serving (DESIGN.md "Multi-tenant serving").  N kernel streams
// are resident at once, each with its own program, address-space base, CTA
// queue, and offload governor.  The arbiter picks which tenant's next CTA a
// freed SM slot goes to; the QoS knobs bound how much NSU/NoC capacity one
// tenant can hold.  All defaults are "off": with one tenant every code path
// below reduces to the single-kernel behavior bit-for-bit (a tested
// invariant).
// ---------------------------------------------------------------------------
enum class TenantArbiter : std::uint8_t {
  kRoundRobin,      // rotate across tenants with CTAs remaining
  kWeightedShare,   // argmin of dispatched[t] / weight[t] (tie: lowest id)
  kStrictPriority,  // lowest priority value wins outright
};

struct TenancyConfig {
  TenantArbiter arbiter = TenantArbiter::kRoundRobin;
  // Per-tenant cap on resident NSU warp slots (head-of-line enforced at
  // command spawn).  0 = unlimited (single-tenant semantics).
  unsigned nsu_warp_quota = 0;
  // Fraction of each NSU's read-data/write-address credit pools one tenant
  // may hold (0 < share <= 1).  0 = no partitioning (single-tenant
  // semantics).
  double credit_share = 0.0;
};

// ---------------------------------------------------------------------------
// Data-placement policy (src/mem/placement.*).  kRandom reproduces the
// paper's seeded page hash bit-for-bit and is the default everywhere.
// ---------------------------------------------------------------------------
enum class PlacementPolicyKind : std::uint8_t {
  kRandom,      // seeded hash (§5 "random mapping of pages")
  kFirstTouch,  // round-robin at first lookup of each page
  kLocality,    // reference-interpreter profile: page lives where its NSU is
  kMigration,   // random start + hot-page re-homing on remote traffic
};

struct PlacementProfile;  // mem/placement.h: page -> preferred-stack map

struct PlacementConfig {
  PlacementPolicyKind policy = PlacementPolicyKind::kRandom;
  // kMigration: remote NSU accesses to a page (since its last move) that
  // trigger a re-home onto the majority remote accessor.
  std::uint32_t migration_threshold = 64;
  // kLocality: profile from the reference-interpreter pre-pass
  // (src/ref/placement_profile.*).  Simulator::run builds it automatically
  // when null; run_image callers supply their own (unprofiled pages fall
  // back to the random hash).
  std::shared_ptr<const PlacementProfile> locality_profile;
};

// ---------------------------------------------------------------------------
// Energy model constants (§5).  Units: joules per event / per bit.
// ---------------------------------------------------------------------------
struct EnergyConfig {
  // DRAM (Rambus-derived numbers quoted in the paper).
  double dram_activate_j = 11.8e-9;       // per 4 KB row activation
  double dram_row_read_j_per_bit = 4e-12; // row-buffer read; writes alike
  // All off-chip links (GPU<->HMC and HMC<->HMC): 2 pJ/bit [Poulton'07].
  double offchip_j_per_bit = 2e-12;
  // On-die wire energy for data movement across a 20 mm x 30 mm GPU die,
  // derived from Keckler et al. [27]: ~60 fJ/bit/mm, ~12.5 mm average span.
  double gpu_wire_j_per_bit = 0.75e-12;
  // Intra-HMC NoC (vault xbar + TSV) per bit.
  double hmc_noc_j_per_bit = 0.5e-12;
  // Core dynamic energy per executed warp-instruction (per active lane).
  double sm_op_j = 12e-12;
  double nsu_op_j = 6e-12;  // leaner core: no MMU/TLB/tex/coalescer
  // Cache array energies.
  double l1_access_j = 20e-12;
  double l2_access_j = 60e-12;
  // Static (leakage + constant clocking) power per unit, watts.  Kept low
  // relative to dynamic energy so Fig. 10's behavior (energy tracks traffic
  // and runtime, Baseline_MoreCore energy-neutral) reproduces.
  double sm_static_w = 0.25;
  double nsu_static_w = 0.06;
  double l2_static_w = 0.20;       // whole L2
  double hmc_static_w = 0.40;      // per stack, excluding NSU
  double link_static_w = 0.08;     // per active link endpoint pair
};

// ---------------------------------------------------------------------------
// Whole-system configuration.
// ---------------------------------------------------------------------------
struct SystemConfig {
  unsigned num_sms = 64;
  unsigned num_hmcs = 8;
  ClockConfig clocks{};
  SmConfig sm{};
  CacheConfig l2{.size_bytes = 2 * MiB, .ways = 16, .line_bytes = 128,
                 .mshr_entries = 48, .ports = 1, .latency_cycles = 8};
  HmcConfig hmc{};
  LinkConfig link{};
  NsuConfig nsu{};
  NdpBufferConfig ndp_buffers{};
  GovernorConfig governor{};
  TenancyConfig tenancy{};
  EnergyConfig energy{};

  // Data page size for the page->HMC placement (§5: 4 KB pages).
  std::uint64_t page_bytes = 4 * KiB;
  std::uint64_t placement_seed = 0x5EED;
  PlacementConfig placement{};

  // On-die interconnect latency between an SM and an L2 slice / link port.
  TimePs xbar_latency_ps = 8000;  // ~10 cycles at 1.25 GHz

  // Ablation (Fig. 5 made dynamic): choose the target NSU from ALL of a
  // block's memory accesses instead of the first instruction's majority.
  // Requires buffering every packet until OFLD.END — the cost the paper
  // rejects; modeled faithfully through the pending packet buffer.
  bool optimal_target_selection = false;

  // Simulation safety valve: abort if simulated time exceeds this.
  TimePs max_time_ps = 500ull * 1000 * 1000 * 1000;  // 500 ms simulated

  // Idle-aware scheduler fast-forward (`sim.fast_forward`): skip clock
  // edges at which no component has pending work.  Results — every stat,
  // tick index, and ps timestamp — are bit-identical with the flag on or
  // off (a tested invariant); off exists as the naive reference for that
  // test and for perf comparisons (bench/perf_throughput).
  bool fast_forward = true;

  // Conservative parallel-in-time execution (`sim.parallel_partitions`,
  // DESIGN.md "Parallel-in-time simulation"): partition one run by HMC
  // stack across N threads (partition 0 = GPU/SM/L2 hub on the calling
  // thread, others = contiguous stack groups), advancing in horizon
  // windows bounded by the minimum cross-partition NoC latency.  Results
  // are bit-identical to serial (a tested invariant).  1 = serial path,
  // untouched.  Values above num_hmcs+1 are clamped; configurations the
  // horizon math cannot cover (mutating placement policies, lookahead <= 0)
  // fall back to serial with a warning.
  unsigned parallel_partitions = 1;

  // Flow-conservation stats audit (`sim.audit`): cross-check every
  // component's counters against each other at each governor epoch boundary
  // and at end-of-run (src/obs/stats_audit.*).  On by default — the checks
  // are a handful of integer compares per epoch; `--no-audit` disables them
  // for perf measurement runs.
  bool audit = true;

  // Request-lifecycle latency tracing (`sim.latency_trace`, src/obs/
  // latency.*): stamp every tracked packet at each hop and aggregate
  // per-path-class log2 latency histograms.  On by default (a few integer
  // adds per hop); `--no-latency` disables it entirely — with the knob off
  // no PacketTiming field is ever touched.  `latency_sample`: every Nth
  // tracked request per packet type also records a full per-hop span
  // (Chrome-trace flow events); 0 disables span capture.
  bool latency_trace = true;
  unsigned latency_sample = 64;

  // Machine-wide cycle-stack profiler (`cyc.*`, src/obs/cycle_stack.*):
  // exhaustive top-down cycle accounting — every counted cycle of every SM,
  // NSU, and vault lands in exactly one bucket, keyed per tenant, and the
  // stats audit enforces bucket-sum == component active cycles at every
  // epoch boundary.  On by default (a few integer adds per component
  // cycle); `--no-profile` disables it — with the knob off no bucket
  // counter is ever touched and the exported stats are bit-identical to a
  // build without the profiler.
  bool profile = true;

  // When non-empty, write a Chrome-trace JSON of packet flights and
  // offload lifecycles here at the end of the run (view in Perfetto).
  std::string trace_path;

  // Named presets.
  static SystemConfig paper();           // Table 2, 64 SMs + 8 HMCs
  static SystemConfig paper_more_core(); // Baseline_MoreCore: 72 SMs
  static SystemConfig paper_2x();        // §7.3: doubled compute units
  static SystemConfig small_test();      // shrunk system for unit tests

  // Validate invariants (power-of-two HMC count for the hypercube, cache
  // geometry divisibility, ...).  Throws std::invalid_argument on error.
  void validate() const;
};

}  // namespace sndp
