// Minimal deterministic JSON writer.
//
// The sweep runner, the Chrome-trace writer, and the bench harnesses all
// emit JSON; this is the one escaping/formatting implementation they share.
// Determinism is a hard requirement (serial and parallel sweeps must produce
// byte-identical documents), so numbers are formatted with a fixed,
// locale-independent rule: integral doubles up to 2^53 print as integers,
// everything else as shortest-round-trip %.17g, NaN/Inf as null.
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("cycles").value(1234.0);
//   w.key("stats").begin_object();
//   ...
//   w.end_object();
//   w.end_object();
//   std::string doc = w.str();
//
// The writer inserts commas automatically; mismatched begin/end pairs throw
// std::logic_error from str().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sndp {

// Escapes `s` for inclusion inside a JSON string literal: quote, backslash,
// \b \f \n \r \t by name, all other chars < 0x20 as \u00XX.
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Emits the key for the next value (only valid inside an object).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& null();

  // Formats a double exactly like value(double) does (exposed for callers
  // that build JSON fragments by hand, e.g. the trace writer's timestamps).
  static std::string number(double v);

  // The finished document.  Throws std::logic_error if begin/end calls are
  // unbalanced.
  std::string str() const;

  // Writes str() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  enum class Scope { kObject, kArray };
  void comma_for_value();

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> scope_has_items_;
  bool pending_key_ = false;
};

}  // namespace sndp
