// Core scalar types and identifiers shared across the simulator.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace sndp {

// Global simulated time, in picoseconds.  64 bits of picoseconds covers
// ~213 days of simulated time, far beyond any run we do.
using TimePs = std::uint64_t;
inline constexpr TimePs kTimeNever = std::numeric_limits<TimePs>::max();

// Cycle count within one clock domain.
using Cycle = std::uint64_t;

// Physical byte address in the (flat, simulated) memory space.
using Addr = std::uint64_t;

// Component identifiers.  Small integers; -1 (wrapped) means "invalid".
using SmId = std::uint32_t;
using HmcId = std::uint32_t;
using VaultId = std::uint32_t;
using WarpId = std::uint32_t;
inline constexpr std::uint32_t kInvalidId = std::numeric_limits<std::uint32_t>::max();

// A register value.  The ISA is untyped at the storage level: 64 raw bits,
// interpreted by each opcode as signed/unsigned integer or double.
using RegValue = std::uint64_t;

// Lane mask for a warp (up to 32 lanes).
using LaneMask = std::uint32_t;

inline constexpr unsigned kWarpWidth = 32;
inline constexpr LaneMask kFullMask = 0xFFFFFFFFu;

}  // namespace sndp
