// Optional NSU read-only cache (paper §7.1).
//
// The paper observes that BPROP's small cache-resident input structure is
// pushed over the GPU links on every offloaded instance and suggests "a
// small read-only cache to each NSU with minimal cost".  This models it:
// the GPU keeps a deterministic mirror of each NSU's read-only cache
// contents (the GPU sees every line it ships, so the mirror is exact); when
// an RDF cache-hit response would re-send a line the NSU already holds, a
// tiny reference packet is sent instead of the data.  Any store to a cached
// line invalidates it (the GPU also sees every store: it generates both the
// write-through traffic and the WTA addresses).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

class RoCacheMirror {
 public:
  // `line_bytes` sizes the per-NSU capacity in lines.
  RoCacheMirror(unsigned num_nsus, const NsuConfig& cfg, unsigned line_bytes)
      : enabled_(cfg.read_only_cache),
        capacity_(static_cast<unsigned>(cfg.read_only_cache_bytes / line_bytes)),
        nsus_(num_nsus) {}

  bool enabled() const { return enabled_; }

  // Returns true if `line` is already cached at `nsu` (LRU refresh);
  // otherwise inserts it (evicting LRU) and returns false.
  bool lookup_or_insert(unsigned nsu, Addr line) {
    if (!enabled_ || capacity_ == 0) return false;
    PerNsu& n = nsus_.at(nsu);
    auto it = n.index.find(line);
    if (it != n.index.end()) {
      n.lru.splice(n.lru.begin(), n.lru, it->second);
      ++hits_;
      return true;
    }
    if (n.lru.size() >= capacity_) {
      n.index.erase(n.lru.back());
      n.lru.pop_back();
      ++evictions_;
    }
    n.lru.push_front(line);
    n.index[line] = n.lru.begin();
    ++fills_;
    return false;
  }

  // A store touched `line`: drop it from every NSU's cache (read-only data
  // must never go stale).
  void invalidate(Addr line) {
    if (!enabled_) return;
    for (PerNsu& n : nsus_) {
      auto it = n.index.find(line);
      if (it == n.index.end()) continue;
      n.lru.erase(it->second);
      n.index.erase(it);
      ++invalidations_;
    }
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t fills() const { return fills_; }
  std::uint64_t invalidations() const { return invalidations_; }

 private:
  struct PerNsu {
    std::list<Addr> lru;  // front = most recent
    std::unordered_map<Addr, std::list<Addr>::iterator> index;
  };

  bool enabled_;
  unsigned capacity_;
  std::vector<PerNsu> nsus_;
  std::uint64_t hits_ = 0;
  std::uint64_t fills_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace sndp
