#include "ndp/nsu.h"

#include <stdexcept>

#include "mem/address_map.h"
#include "noc/net_port.h"
#include "obs/epoch_timeline.h"
#include "obs/latency.h"

namespace sndp {

Nsu::Nsu(HmcId hmc_id, const SystemContext& ctx, SendFn send_network, SendFn send_local_vault)
    : hmc_id_(hmc_id),
      ctx_(ctx),
      send_network_(std::move(send_network)),
      send_local_vault_(std::move(send_local_vault)),
      cfg_(ctx.cfg->nsu),
      read_data_(ctx.cfg->ndp_buffers.nsu_read_data_entries),
      write_addr_(ctx.cfg->ndp_buffers.nsu_write_addr_entries),
      cmds_(ctx.cfg->ndp_buffers.nsu_cmd_entries) {
  warps_.resize(cfg_.max_warps);
  fast_forward_ = ctx.cfg->fast_forward;
  profile_ = ctx.cfg->profile;
  if (profile_) cyc_.init(ctx.num_tenants());
}

void Nsu::receive(Packet&& p, TimePs now) { in_.push(std::move(p), now); }

bool Nsu::idle() const {
  return in_.empty() && cmds_.empty() && valid_warps_ == 0;
}

unsigned Nsu::active_warps() const { return valid_warps_; }

void Nsu::finalize(Cycle end_cycle) {
  if (end_cycle > next_expected_cycle_) {
    const Cycle tail = end_cycle - next_expected_cycle_;
    tick_count_ += tail;
    // The slept tail had no warps, no commands, and no ready ingress: idle.
    if (profile_) {
      cyc_.add(cyc_.shared_row(), static_cast<std::size_t>(NsuBucket::kIdle), tail);
    }
    next_expected_cycle_ = end_cycle;
  }
}

double Nsu::avg_occupancy() const {
  if (tick_count_ == 0) return 0.0;
  return static_cast<double>(occupancy_accum_) /
         (static_cast<double>(tick_count_) * cfg_.max_warps);
}

double Nsu::icache_utilization() const {
  // 8 B per instruction, as a fraction of the 4 KB I-cache (Fig. 11).
  const double bytes = static_cast<double>(icache_pcs_.size()) * 8.0;
  return bytes / static_cast<double>(cfg_.icache_bytes);
}

LaneMask Nsu::exec_mask(const NsuWarp& warp, const Instr& instr) const {
  if (instr.guard_pred == kNoPred) return warp.active;
  LaneMask m = 0;
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (!(warp.active & (LaneMask{1} << lane))) continue;
    if (warp.lanes[lane].preds[static_cast<unsigned>(instr.guard_pred)] == instr.guard_sense) {
      m |= LaneMask{1} << lane;
    }
  }
  return m;
}

void Nsu::tick(Cycle cycle, TimePs now) {
  // Epoch-timeline sampling at the first consumed NSU edge at/after each
  // boundary, before this edge's occupancy is accumulated.  Asleep edges
  // leave occupancy_accum_ frozen, so the value is fast-forward-invariant.
  if (timeline_ != nullptr && timeline_->nsu_due(timeline_src_, now)) {
    timeline_->poll_nsu(timeline_src_, now, occupancy_accum_);
  }
  if (fast_forward_ && next_work_ps(now) > now) return;  // still asleep
  // Skipped/slept edges each counted one naive tick with zero occupancy.
  // An edge is only slept when no warps are resident, the command buffer is
  // empty, and no ingress packet was ready — i.e. the NSU was idle — so the
  // compensation bills the whole gap to the idle bucket.
  if (profile_ && cycle > next_expected_cycle_) {
    cyc_.add(cyc_.shared_row(), static_cast<std::size_t>(NsuBucket::kIdle),
             cycle - next_expected_cycle_);
  }
  tick_count_ += cycle - next_expected_cycle_ + 1;
  next_expected_cycle_ = cycle + 1;
  occupancy_accum_ += valid_warps_;

  // Ingress.
  while (auto p = in_.pop_ready(now)) {
    if (ctx_.latency != nullptr) ctx_.latency->queue_hop(*p, now, "nsu_rx", hmc_id_);
    switch (p->type) {
      case PacketType::kOfldCmd:
        cmds_.push(std::move(*p));
        break;
      case PacketType::kRdfResp:
        // The RDF span ends at delivery into the read-data buffer; the wait
        // until the consuming warp issues is NSU-side execution state, not
        // part of the fetch round trip.
        if (ctx_.latency != nullptr) ctx_.latency->finish_stamped(*p, now, hmc_id_);
        read_data_.deposit(*p);
        break;
      case PacketType::kWta:
        write_addr_.deposit(*p);
        break;
      case PacketType::kNsuWriteAck: {
        if (ctx_.latency != nullptr) ctx_.latency->finish_stamped(*p, now, hmc_id_);
        bool matched = false;
        for (NsuWarp& w : warps_) {
          if (w.valid && w.oid.sm == p->oid.sm && w.oid.warp == p->oid.warp &&
              w.oid.instance == p->oid.instance) {
            if (w.pending_writes == 0) throw std::logic_error("Nsu: unexpected write ack");
            --w.pending_writes;
            matched = true;
            break;
          }
        }
        if (!matched) throw std::logic_error("Nsu: write ack for unknown warp");
        break;
      }
      default:
        throw std::logic_error(std::string("Nsu: unexpected packet ") +
                               packet_type_name(p->type));
    }
  }

  try_spawn(cycle, now);

  // Single-issue with temporal SIMT: a warp instruction occupies the issue
  // port for warp_width / simd_lanes cycles (§4.5).  OFLD markers are
  // bookkeeping (spawn-time init / ack-wait), not lane work — they do not
  // hold the port.
  if (issue_busy_until_ > cycle) {
    // The issue port is occupied by a prior multi-cycle instruction: lane
    // work is in flight, so the cycle is execution for the holding tenant.
    if (profile_) {
      cyc_.add(issue_busy_tenant_, static_cast<std::size_t>(NsuBucket::kExec), 1);
    }
    return;
  }
  const unsigned n = static_cast<unsigned>(warps_.size());
  bool stepped = false;
  bool any_ready = false;
  unsigned stepped_tenant = 0;
  unsigned starved_tenant = 0;
  for (unsigned i = 0; i < n; ++i) {
    NsuWarp& w = warps_[(rr_next_ + i) % n];
    if (!w.valid || w.ready_cycle > cycle) continue;
    if (!any_ready) {
      any_ready = true;
      starved_tenant = w.tenant;
    }
    const Instr& next = ctx_.image_of(w.tenant)->nsu.at(w.pc);
    // Port occupancy: markers are bookkeeping (0 cycles); loads/stores move
    // a full line through the NDP buffer port (1 cycle); lane ALU work pays
    // the temporal-SIMT initiation interval.
    unsigned hold = 0;
    if (next.is_global_mem()) {
      hold = 1;
    } else if (next.op != Opcode::kOfldBeg && next.op != Opcode::kOfldEnd) {
      hold = (cfg_.warp_width + cfg_.simd_lanes - 1) / cfg_.simd_lanes;
    }
    // Capture before step_warp: finishing a warp (kOfldEnd) clears the slot.
    const unsigned tenant = w.tenant;
    if (step_warp(w, cycle, now)) {
      stepped = true;
      stepped_tenant = tenant;
      rr_next_ = (rr_next_ + i + 1) % n;
      issue_busy_until_ = cycle + hold;
      issue_busy_tenant_ = tenant;
      break;
    }
  }
  if (!profile_) return;
  // Classify this counted cycle into exactly one bucket (StatsAudit checks
  // bucket sum == tick count).  Priority: progress beats starvation beats
  // quota pressure beats latency wait.
  if (stepped) {
    cyc_.add(stepped_tenant, static_cast<std::size_t>(NsuBucket::kExec), 1);
  } else if (any_ready) {
    // A warp was ready to issue but every attempt blocked on missing RDF
    // data, a missing WTA, or outstanding write acks: ingress starvation.
    cyc_.add(starved_tenant, static_cast<std::size_t>(NsuBucket::kIngressStarved), 1);
  } else if (spawn_quota_blocked_) {
    cyc_.add(quota_tenant_, static_cast<std::size_t>(NsuBucket::kQuotaBlocked), 1);
  } else if (valid_warps_ > 0) {
    // Resident warps are all waiting out instruction latency: execution.
    unsigned tenant = cyc_.shared_row();
    for (const NsuWarp& w : warps_) {
      if (w.valid) {
        tenant = w.tenant;
        break;
      }
    }
    cyc_.add(tenant, static_cast<std::size_t>(NsuBucket::kExec), 1);
  } else {
    cyc_.add(cyc_.shared_row(), static_cast<std::size_t>(NsuBucket::kIdle), 1);
  }
}

void Nsu::try_spawn(Cycle cycle, TimePs now) {
  const unsigned quota = ctx_.cfg->tenancy.nsu_warp_quota;
  spawn_quota_blocked_ = false;
  while (!cmds_.empty()) {
    NsuWarp* slot = nullptr;
    for (NsuWarp& w : warps_) {
      if (!w.valid) {
        slot = &w;
        break;
      }
    }
    if (slot == nullptr) return;  // all warp slots busy; commands wait

    // Per-tenant warp-slot quota (QoS knob; 0 = unlimited).  Head-of-line
    // semantics: if the NEXT command's tenant is at its quota, spawning
    // stops entirely until one of that tenant's warps retires — simple,
    // deterministic, and order-preserving (commands are never reordered).
    if (quota > 0 && ctx_.num_tenants() > 1) {
      const unsigned head_tenant = cmds_.front().tenant;
      unsigned resident = 0;
      for (const NsuWarp& w : warps_) {
        if (w.valid && w.tenant == head_tenant) ++resident;
      }
      if (resident >= quota) {
        spawn_quota_blocked_ = true;
        quota_tenant_ = head_tenant;
        return;
      }
    }

    Packet cmd = cmds_.pop();
    // Command-buffer residency (waiting for a free warp slot) is queueing;
    // the stamp then parks on the warp until the ACK is emitted.
    if (ctx_.latency != nullptr) ctx_.latency->queue_hop(cmd, now, "nsu_spawn", hmc_id_);
    *slot = NsuWarp{};
    slot->valid = true;
    ++valid_warps_;
    slot->lt = cmd.lt;
    slot->oid = cmd.oid;
    slot->tenant = cmd.tenant;
    slot->pc = static_cast<unsigned>(cmd.line_addr);  // start PC field
    slot->active = cmd.mask;
    slot->ready_cycle = cycle + 1;
    // Initialize live-in registers and predicate bits.
    for (std::size_t r = 0; r < cmd.reg_ids.size(); ++r) {
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        slot->lanes[lane].regs[cmd.reg_ids[r]] = cmd.reg_values[r * kWarpWidth + lane];
      }
    }
    if (!cmd.lane_preds.empty()) {
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        for (unsigned p = 0; p < kNumPreds; ++p) {
          slot->lanes[lane].preds[p] = (cmd.lane_preds[lane] >> p) & 1;
        }
      }
    }
    // The command-buffer entry is free as soon as the warp spawns: return
    // the credit to the GPU-side buffer manager (§4.3).
    Packet credit;
    credit.type = PacketType::kCredit;
    credit.src_node = static_cast<std::uint16_t>(hmc_id_);
    credit.dst_node = static_cast<std::uint16_t>(ctx_.net->gpu_node());
    credit.size_bytes = small_packet_bytes();
    credit.target_nsu = static_cast<std::uint8_t>(hmc_id_);
    credit.credit_cmd = 1;
    credit.tenant = cmd.tenant;
    if (ctx_.latency != nullptr) ctx_.latency->start(credit, now, hmc_id_);
    send_network_(std::move(credit), now);
  }
}

bool Nsu::step_warp(NsuWarp& warp, Cycle cycle, TimePs now) {
  const Program& prog = ctx_.image_of(warp.tenant)->nsu;
  const Instr& in = prog.at(warp.pc);
  icache_pcs_.insert(warp.pc);

  switch (in.op) {
    case Opcode::kOfldBeg:
      // Register initialization already happened at spawn; one cycle.
      ++warp.pc;
      warp.ready_cycle = cycle + 1;
      ++instrs_;
      return true;

    case Opcode::kLd: {
      const LaneMask lanes = exec_mask(warp, in);
      OffloadPacketId oid = warp.oid;
      oid.seq = warp.seq;
      if (lanes == 0) {
        ++warp.seq;
        ++warp.pc;
        warp.ready_cycle = cycle + 1;
        ++instrs_;
        return true;
      }
      const NdpBufferKey key = NdpBufferKey::of(oid);
      if (!read_data_.complete(key)) {
        ++stall_read_wait_;
        return false;  // data not yet in the read-data buffer
      }
      const ReadDataBuffer::Entry entry = read_data_.take(key);
      if (entry.expected != lanes) {
        throw std::logic_error("Nsu: read-data lane mask mismatch with GPU");
      }
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (lanes & (LaneMask{1} << lane)) warp.lanes[lane].regs[in.dst] = entry.data[lane];
      }
      ++warp.freed_read_entries;
      lane_ops_ += popcount_mask(lanes);
      ++instrs_;
      ++warp.seq;
      ++warp.pc;
      warp.ready_cycle = cycle + 2;  // buffer read port
      return true;
    }

    case Opcode::kSt: {
      const LaneMask lanes = exec_mask(warp, in);
      OffloadPacketId oid = warp.oid;
      oid.seq = warp.seq;
      if (lanes == 0) {
        ++warp.seq;
        ++warp.pc;
        warp.ready_cycle = cycle + 1;
        ++instrs_;
        return true;
      }
      const NdpBufferKey key = NdpBufferKey::of(oid);
      if (!write_addr_.complete(key)) return false;  // WTA not yet arrived
      const WriteAddrBuffer::Entry entry = write_addr_.take(key);
      if (entry.expected != lanes) {
        throw std::logic_error("Nsu: write-address lane mask mismatch with GPU");
      }
      // Group lanes by destination line and emit one write per line.
      const unsigned line_bytes = ctx_.amap->line_bytes();
      unsigned num_lines = 0;
      LaneMask remaining = lanes;
      while (remaining != 0) {
        const unsigned first = static_cast<unsigned>(std::countr_zero(remaining));
        const Addr line = entry.addrs[first] & ~static_cast<Addr>(line_bytes - 1);
        LaneMask line_lanes = 0;
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (!(remaining & (LaneMask{1} << lane))) continue;
          if ((entry.addrs[lane] & ~static_cast<Addr>(line_bytes - 1)) == line) {
            line_lanes |= LaneMask{1} << lane;
          }
        }
        remaining &= ~line_lanes;
        ++num_lines;

        Packet wr;
        wr.type = PacketType::kNsuWrite;
        wr.oid = oid;
        wr.line_addr = line;
        wr.mask = line_lanes;
        wr.mem_width = entry.width;
        wr.mem_f32 = entry.f32;
        wr.misaligned = entry.misaligned;
        wr.tenant = static_cast<std::uint8_t>(warp.tenant);
        wr.size_bytes = nsu_write_packet_bytes(popcount_mask(line_lanes), entry.width,
                                               entry.misaligned);
        wr.lane_addrs.assign(kWarpWidth, 0);
        wr.lane_data.assign(kWarpWidth, 0);
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
          if (line_lanes & (LaneMask{1} << lane)) {
            wr.lane_addrs[lane] = entry.addrs[lane];
            wr.lane_data[lane] = warp.lanes[lane].regs[in.src[1]];
          }
        }
        const HmcId dest = ctx_.amap->hmc_of(line);
        wr.src_node = static_cast<std::uint16_t>(hmc_id_);
        wr.dst_node = static_cast<std::uint16_t>(dest);
        ++write_packets_;
        if (ctx_.latency != nullptr) {
          ctx_.latency->start(wr, now, hmc_id_);
          ctx_.latency->set_path(wr, dest == hmc_id_ ? PathClass::kNsuWriteLocal
                                                     : PathClass::kNsuWriteRemote);
        }
        if (dest == hmc_id_) {
          send_local_vault_(std::move(wr), now);
        } else {
          send_network_(std::move(wr), now);
        }
      }
      warp.pending_writes += num_lines;
      ++warp.freed_write_entries;
      lane_ops_ += popcount_mask(lanes);
      ++instrs_;
      ++warp.seq;
      ++warp.pc;
      warp.ready_cycle = cycle + num_lines;  // one write per cycle
      return true;
    }

    case Opcode::kOfldEnd:
      if (warp.pending_writes > 0) return false;  // wait for DRAM write acks
      finish_warp(warp, now);
      ++instrs_;
      return true;

    default: {
      // NSU-side ALU work.
      if (!in.is_alu()) {
        throw std::logic_error(std::string("Nsu: unexpected opcode in NSU code: ") +
                               opcode_name(in.op));
      }
      const LaneMask lanes = exec_mask(warp, in);
      for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (lanes & (LaneMask{1} << lane)) execute_alu(in, warp.lanes[lane]);
      }
      lane_ops_ += popcount_mask(lanes);
      ++instrs_;
      ++warp.pc;
      const bool sfu = in.exec_class() == ExecClass::kSfu;
      warp.ready_cycle = cycle + (sfu ? cfg_.sfu_latency : cfg_.alu_latency);
      return true;
    }
  }
}

void Nsu::finish_warp(NsuWarp& warp, TimePs now) {
  const OffloadBlockInfo& info = ctx_.image_of(warp.tenant)->blocks.at(warp.oid.block);

  Packet ack;
  ack.type = PacketType::kOfldAck;
  ack.oid = warp.oid;
  ack.tenant = static_cast<std::uint8_t>(warp.tenant);
  ack.src_node = static_cast<std::uint16_t>(hmc_id_);
  ack.dst_node = static_cast<std::uint16_t>(ctx_.net->gpu_node());
  ack.mask = warp.active;
  ack.size_bytes = ofld_ack_packet_bytes(static_cast<unsigned>(info.regs_out.size()),
                                         popcount_mask(warp.active));
  ack.reg_ids = info.regs_out;
  ack.reg_values.assign(info.regs_out.size() * kWarpWidth, 0);
  for (std::size_t r = 0; r < info.regs_out.size(); ++r) {
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
      ack.reg_values[r * kWarpWidth + lane] = warp.lanes[lane].regs[info.regs_out[r]];
    }
  }
  // Piggyback the freed data-buffer credits on the ACK (§4.3).
  ack.credit_read_data = static_cast<std::uint16_t>(info.num_loads);
  ack.credit_write_addr = static_cast<std::uint16_t>(info.num_stores);
  ack.target_nsu = static_cast<std::uint8_t>(hmc_id_);
  if (ctx_.latency != nullptr) {
    ctx_.latency->adopt(ack, warp.lt);
    // Spawn-to-ACK time is NSU execution, not queueing: advance the stamp
    // so it lands in the "other" segment at finish.
    ctx_.latency->exec_hop(ack, now, "nsu_exec", hmc_id_);
  }
  send_network_(std::move(ack), now);

  ++blocks_completed_;
  finished_block_instrs_ += info.body_size();
  warp = NsuWarp{};  // slot free; next command can spawn on a later tick
  --valid_warps_;
}

void Nsu::export_stats(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".lane_ops", static_cast<double>(lane_ops_));
  out.set(prefix + ".instrs", static_cast<double>(instrs_));
  out.set(prefix + ".blocks_completed", static_cast<double>(blocks_completed_));
  out.set(prefix + ".finished_block_instrs", static_cast<double>(finished_block_instrs_));
  out.set(prefix + ".write_packets", static_cast<double>(write_packets_));
  out.set(prefix + ".stall_read_wait", static_cast<double>(stall_read_wait_));
  out.set(prefix + ".avg_occupancy", avg_occupancy());
  out.set(prefix + ".icache_utilization", icache_utilization());
}

}  // namespace sndp
