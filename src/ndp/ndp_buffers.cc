#include "ndp/ndp_buffers.h"

#include <stdexcept>

namespace sndp {

void ReadDataBuffer::deposit(const Packet& p) {
  const NdpBufferKey key = NdpBufferKey::of(p.oid);
  Entry& e = entries_[key];
  if (entries_.size() > capacity_) {
    throw std::logic_error("ReadDataBuffer: over capacity — credit protocol violated");
  }
  if ((e.accumulated & p.mask) != 0) {
    throw std::logic_error("ReadDataBuffer: duplicate lanes in RDF response");
  }
  e.accumulated |= p.mask;
  e.expected |= p.expected_mask;
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (p.mask & (LaneMask{1} << lane)) e.data[lane] = p.lane_data[lane];
  }
}

bool ReadDataBuffer::complete(const NdpBufferKey& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.expected != 0 &&
         it->second.accumulated == it->second.expected;
}

ReadDataBuffer::Entry ReadDataBuffer::take(const NdpBufferKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) throw std::logic_error("ReadDataBuffer: take() of absent entry");
  Entry e = it->second;
  entries_.erase(it);
  return e;
}

void WriteAddrBuffer::deposit(const Packet& p) {
  const NdpBufferKey key = NdpBufferKey::of(p.oid);
  Entry& e = entries_[key];
  if (entries_.size() > capacity_) {
    throw std::logic_error("WriteAddrBuffer: over capacity — credit protocol violated");
  }
  if ((e.accumulated & p.mask) != 0) {
    throw std::logic_error("WriteAddrBuffer: duplicate lanes in WTA packet");
  }
  e.accumulated |= p.mask;
  e.expected |= p.expected_mask;
  e.width = p.mem_width;
  e.f32 = p.mem_f32;
  e.misaligned = e.misaligned || p.misaligned;
  for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
    if (p.mask & (LaneMask{1} << lane)) e.addrs[lane] = p.lane_addrs[lane];
  }
}

bool WriteAddrBuffer::complete(const NdpBufferKey& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.expected != 0 &&
         it->second.accumulated == it->second.expected;
}

WriteAddrBuffer::Entry WriteAddrBuffer::take(const NdpBufferKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) throw std::logic_error("WriteAddrBuffer: take() of absent entry");
  Entry e = it->second;
  entries_.erase(it);
  return e;
}

void CmdBuffer::push(Packet cmd) {
  if (queue_.size() >= capacity_) {
    throw std::logic_error("CmdBuffer: over capacity — credit protocol violated");
  }
  queue_.push_back(std::move(cmd));
}

Packet CmdBuffer::pop() {
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  return p;
}

}  // namespace sndp
