// The NSU-side NDP buffers (paper §4.1.2, Table 2): the read-data buffer
// (RDF responses merge here until every expected lane has arrived), the
// write-address buffer (WTA packets merge likewise), and the offload
// command queue.  Entries are keyed by the offload packet id; capacity is
// guaranteed by the GPU-side credit reservation, which these classes also
// double-check at runtime.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/types.h"
#include "noc/packet.h"

namespace sndp {

struct NdpBufferKey {
  SmId sm = 0;
  WarpId warp = 0;
  std::uint64_t instance = 0;
  std::uint32_t seq = 0;

  friend bool operator==(const NdpBufferKey&, const NdpBufferKey&) = default;

  static NdpBufferKey of(const OffloadPacketId& oid) {
    return NdpBufferKey{oid.sm, oid.warp, oid.instance, oid.seq};
  }
};

struct NdpBufferKeyHash {
  std::size_t operator()(const NdpBufferKey& k) const {
    std::uint64_t h = k.instance * 0x9E3779B97F4A7C15ull;
    h ^= (static_cast<std::uint64_t>(k.sm) << 40) ^ (static_cast<std::uint64_t>(k.warp) << 20) ^
         k.seq;
    h *= 0xBF58476D1CE4E5B9ull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

// Read-data buffer: accumulates RDF response words per lane.
class ReadDataBuffer {
 public:
  explicit ReadDataBuffer(unsigned capacity) : capacity_(capacity) {}

  struct Entry {
    LaneMask accumulated = 0;
    LaneMask expected = 0;
    std::array<RegValue, kWarpWidth> data{};
  };

  // Merge an RDF response (creates the entry on first arrival).
  void deposit(const Packet& rdf_resp);

  bool complete(const NdpBufferKey& key) const;
  // Remove and return a complete entry.
  Entry take(const NdpBufferKey& key);

  std::size_t size() const { return entries_.size(); }
  unsigned capacity() const { return capacity_; }

 private:
  unsigned capacity_;
  std::unordered_map<NdpBufferKey, Entry, NdpBufferKeyHash> entries_;
};

// Write-address buffer: accumulates WTA lane addresses.
class WriteAddrBuffer {
 public:
  explicit WriteAddrBuffer(unsigned capacity) : capacity_(capacity) {}

  struct Entry {
    LaneMask accumulated = 0;
    LaneMask expected = 0;
    std::array<Addr, kWarpWidth> addrs{};
    std::uint8_t width = 8;
    bool f32 = false;
    bool misaligned = false;
  };

  void deposit(const Packet& wta);

  bool complete(const NdpBufferKey& key) const;
  Entry take(const NdpBufferKey& key);

  std::size_t size() const { return entries_.size(); }
  unsigned capacity() const { return capacity_; }

 private:
  unsigned capacity_;
  std::unordered_map<NdpBufferKey, Entry, NdpBufferKeyHash> entries_;
};

// Offload-command queue (10 entries in the paper's configuration).
class CmdBuffer {
 public:
  explicit CmdBuffer(unsigned capacity) : capacity_(capacity) {}

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  // Head-of-line peek (the NSU's per-tenant warp quota inspects the next
  // command's tenant without dequeueing it).
  const Packet& front() const { return queue_.front(); }
  void push(Packet cmd);
  Packet pop();

 private:
  unsigned capacity_;
  std::deque<Packet> queue_;
};

}  // namespace sndp
