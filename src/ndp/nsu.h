// NSU — the Near-data-processing SIMD Unit on each HMC's logic layer
// (paper §4.1.2, §4.5).
//
// Deliberately minimal, matching the standardized design: no MMU/TLB, no
// data cache, no coalescer (addresses arrive pre-translated from the GPU in
// WTA packets / pre-fetched data in RDF responses), a small instruction
// cache, and warp slots fed by the offload command buffer.  Runs at half
// the SM clock (350 MHz; §7.6 sweeps it lower).
#pragma once

#include <array>
#include <functional>
#include <set>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "isa/program.h"
#include "ndp/ndp_buffers.h"
#include "noc/packet.h"
#include "obs/cycle_stack.h"
#include "sim/clock.h"
#include "sim/context.h"
#include "sim/timed_channel.h"

namespace sndp {

class EpochTimeline;

class Nsu final : public Tickable {
 public:
  // `send_network`: forward a packet into the inter-stack network / GPU
  // link.  `send_local_vault`: hand a write to a vault in this same stack
  // (intra-HMC NoC, no off-chip link).  Both are provided by the owning HMC.
  using SendFn = std::function<void(Packet&&, TimePs)>;

  Nsu(HmcId hmc_id, const SystemContext& ctx, SendFn send_network, SendFn send_local_vault);

  void tick(Cycle cycle, TimePs now) override;

  // Live warps and buffered commands need the issue pipeline every cycle;
  // otherwise the NSU only wakes for its ingress channel.  tick_count_ is
  // the one per-cycle stat, compensated for skipped edges (see tick() and
  // finalize()).
  TimePs next_work_ps(TimePs /*now*/) override {
    if (valid_warps_ > 0 || !cmds_.empty()) return 0;
    if (!in_.empty()) return in_.front_ready_ps();
    return kTimeNever;
  }

  // Flush the skipped-tick compensation up to the end of the run; called by
  // the Simulator with the NSU domain's consumed-edge count before stats
  // are read.  Idempotent.
  void finalize(Cycle end_cycle);

  // Packet ingress (offload commands, RDF responses, WTA, write acks).
  void receive(Packet&& p, TimePs now);

  bool idle() const;
  unsigned active_warps() const;

  // Stats (Fig. 11).
  double avg_occupancy() const;          // mean busy warp slots / max_warps
  double icache_utilization() const;     // touched instruction bytes / icache size
  std::uint64_t lane_ops() const { return lane_ops_; }
  void export_stats(StatSet& out, const std::string& prefix) const;

  // Flow-audit accessors (src/obs/stats_audit.*).
  std::uint64_t instrs() const { return instrs_; }
  std::uint64_t blocks_completed() const { return blocks_completed_; }
  std::uint64_t finished_block_instrs() const { return finished_block_instrs_; }
  std::uint64_t occupancy_accum() const { return occupancy_accum_; }

  // Cycle-stack profiler (src/obs/cycle_stack.*): every counted NSU cycle
  // lands in exactly one bucket, so the stack's total equals counted_cycles()
  // at any instant — compensation for slept edges updates both together.
  const NsuCycleStack& cycle_stack() const { return cyc_; }
  std::uint64_t counted_cycles() const { return tick_count_; }

  // Per-epoch timeline hook: this NSU polls its cumulative occupancy at the
  // first consumed NSU edge at/after each epoch boundary.  `src` is this
  // NSU's index in the timeline's per-source series.
  void set_timeline(EpochTimeline* timeline, unsigned src) {
    timeline_ = timeline;
    timeline_src_ = src;
  }

 private:
  struct NsuWarp {
    bool valid = false;
    OffloadPacketId oid{};  // sm / warp / instance / block of this execution
    unsigned tenant = 0;    // owning tenant (program + QoS accounting key)
    unsigned pc = 0;
    std::uint32_t seq = 0;
    Cycle ready_cycle = 0;
    unsigned pending_writes = 0;
    LaneMask active = 0;
    std::array<ThreadCtx, kWarpWidth> lanes{};
    // Credits to piggyback on the offload ACK (§4.3).
    unsigned freed_read_entries = 0;
    unsigned freed_write_entries = 0;
    // Latency stamp parked from the kOfldCmd across execution; copied onto
    // the kOfldAck so the cmd->ACK span covers the whole round trip.
    PacketTiming lt{};
  };

  void try_spawn(Cycle cycle, TimePs now);
  // Attempts to execute the instruction at warp.pc.  Returns true if the
  // warp made progress (instruction executed or skipped).
  bool step_warp(NsuWarp& warp, Cycle cycle, TimePs now);
  void finish_warp(NsuWarp& warp, TimePs now);
  LaneMask exec_mask(const NsuWarp& warp, const Instr& instr) const;

  HmcId hmc_id_;
  const SystemContext& ctx_;
  SendFn send_network_;
  SendFn send_local_vault_;
  const NsuConfig& cfg_;

  std::vector<NsuWarp> warps_;
  unsigned valid_warps_ = 0;    // live slots in warps_ (incremental)
  bool fast_forward_ = false;
  Cycle next_expected_cycle_ = 0;  // skipped-tick compensation watermark
  unsigned rr_next_ = 0;        // round-robin issue pointer
  Cycle issue_busy_until_ = 0;  // temporal-SIMT occupancy of the issue port
  unsigned issue_busy_tenant_ = 0;  // tenant of the port-holding warp
  bool spawn_quota_blocked_ = false;  // try_spawn hit the warp quota this tick
  unsigned quota_tenant_ = 0;         // tenant of the quota-blocked head command
  ReadDataBuffer read_data_;
  WriteAddrBuffer write_addr_;
  CmdBuffer cmds_;
  TimedChannel<Packet> in_;

  EpochTimeline* timeline_ = nullptr;
  unsigned timeline_src_ = 0;

  // Stats.
  std::uint64_t lane_ops_ = 0;
  std::uint64_t instrs_ = 0;
  std::uint64_t blocks_completed_ = 0;
  std::uint64_t finished_block_instrs_ = 0;  // body instrs of completed blocks
  std::uint64_t occupancy_accum_ = 0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t write_packets_ = 0;
  std::uint64_t stall_read_wait_ = 0;
  std::set<unsigned> icache_pcs_;

  // Cycle-stack profiler state (zero-cost when cfg.profile is off).
  bool profile_ = false;
  NsuCycleStack cyc_;
};

}  // namespace sndp
