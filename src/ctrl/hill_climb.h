// Algorithm 1 (§7.2): epoch-based hill climbing on the offload ratio with
// an adaptive step size.
//
// At the end of each epoch the controller is fed the epoch's instruction
// throughput over offload-block instructions.  If throughput dropped, the
// direction of ratio movement reverses.  A sliding window of
// direction-change events adapts the step: frequent reversals (we are
// circling the optimum) shrink the step; steady progress grows it.  The
// ratio is only moved while it stays inside [step_unit, 1 - step_unit].
#pragma once

#include <deque>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

class HillClimbController {
 public:
  explicit HillClimbController(const GovernorConfig& cfg);

  double ratio() const { return ratio_; }
  double step() const { return step_; }
  int direction() const { return dir_; }

  // Call at the end of each epoch with the measured average IPC of
  // offload-block instructions during that epoch.  An epoch in which no
  // offload-block instruction retired carries no throughput information:
  // pass has_signal = false and the controller holds its entire state
  // (ratio, direction, step, baseline IPC) instead of treating the zero
  // IPC as a collapse and spuriously reversing direction.
  void end_epoch(double avg_ipc, bool has_signal = true);

  unsigned epochs_seen() const { return epochs_; }

 private:
  GovernorConfig cfg_;
  double ratio_;
  double step_;
  int dir_ = +1;
  double prev_ipc_ = 0.0;
  bool have_prev_ = false;
  std::deque<bool> dir_change_history_;
  unsigned epochs_ = 0;
};

}  // namespace sndp
