// The offload governor: one per simulated system.  Combines the offload
// mode (§6-7), the hill-climbing dynamic ratio (Algorithm 1), and the
// cache-locality-aware suppression (§7.3) into a single per-instance
// decision made at every OFLD.BEG.
#pragma once

#include <functional>
#include <memory>

#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ctrl/cache_aware.h"
#include "ctrl/hill_climb.h"
#include "isa/program.h"

namespace sndp {

// State published to the epoch observer when an epoch boundary rolls.  The
// observer fires on the SM clock domain at a deterministic cycle, in every
// offload mode (the epoch clock always runs; only the hill-climb update is
// gated on the dynamic modes), which makes it the natural sampling hook for
// the per-epoch timeline and the stats audit.
struct EpochRollInfo {
  std::uint64_t epoch = 0;     // 0-based index of the epoch that just ended
  double ipc = 0.0;            // offload-block instrs / epoch_cycles
  std::uint64_t block_instrs = 0;  // offload-block instrs this epoch
  double ratio = 0.0;          // ratio AFTER this boundary's update
  double step = 0.0;
  int direction = 0;
};

class OffloadGovernor {
 public:
  OffloadGovernor(const GovernorConfig& cfg, unsigned num_blocks, unsigned line_bytes,
                  std::uint64_t seed);

  // Decision for one warp instance of `info` with `active_threads` lanes.
  bool decide(const OffloadBlockInfo& info, unsigned active_threads);

  // A warp instance of a block finished (inline or via NSU ACK):
  // contributes its instruction count to the epoch throughput metric.
  void on_block_complete(unsigned instr_count) {
    epoch_instrs_ += instr_count;
    total_block_instrs_ += instr_count;
  }

  // Called at most once, before the run starts: fires at every epoch
  // boundary, after the hill-climb update for that boundary.
  using EpochObserver = std::function<void(const EpochRollInfo&)>;
  void set_epoch_observer(EpochObserver obs) { observer_ = std::move(obs); }

  // Total offload-block instructions ever reported (audit cross-check
  // against the SMs' inline + ACK-drain mirrors).
  std::uint64_t total_block_instrs() const { return total_block_instrs_; }

  // Advance the epoch clock (call once per SM cycle, from one place).
  void on_sm_cycle();

  // Replay `n` consecutive on_sm_cycle() calls with no interleaved
  // completions — exact epoch-clock catch-up for fast-forwarded SM cycles
  // (no SM is awake during a skipped cycle, so no on_block_complete() could
  // have landed inside the gap).
  void advance_cycles(Cycle n);

  CacheAwareTable& cache_table() { return cache_table_; }
  const CacheAwareTable& cache_table() const { return cache_table_; }

  double current_ratio() const;
  OffloadMode mode() const { return cfg_.mode; }

  void export_stats(StatSet& out) const;

 private:
  void roll_epoch();

  GovernorConfig cfg_;
  Rng rng_;
  HillClimbController hill_;
  CacheAwareTable cache_table_;
  Cycle cycle_in_epoch_ = 0;
  std::uint64_t epoch_instrs_ = 0;
  std::uint64_t total_block_instrs_ = 0;
  EpochObserver observer_;

  // Stats.
  std::uint64_t decisions_ = 0;
  std::uint64_t offloads_ = 0;
  std::uint64_t suppressed_by_cache_ = 0;
  unsigned epochs_ = 0;
  Distribution ratio_history_;
};

}  // namespace sndp
