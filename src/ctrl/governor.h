// The offload governor: one per simulated system.  Combines the offload
// mode (§6-7), the hill-climbing dynamic ratio (Algorithm 1), and the
// cache-locality-aware suppression (§7.3) into a single per-instance
// decision made at every OFLD.BEG.
#pragma once

#include <memory>

#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ctrl/cache_aware.h"
#include "ctrl/hill_climb.h"
#include "isa/program.h"

namespace sndp {

class OffloadGovernor {
 public:
  OffloadGovernor(const GovernorConfig& cfg, unsigned num_blocks, unsigned line_bytes,
                  std::uint64_t seed);

  // Decision for one warp instance of `info` with `active_threads` lanes.
  bool decide(const OffloadBlockInfo& info, unsigned active_threads);

  // A warp instance of a block finished (inline or via NSU ACK):
  // contributes its instruction count to the epoch throughput metric.
  void on_block_complete(unsigned instr_count) { epoch_instrs_ += instr_count; }

  // Advance the epoch clock (call once per SM cycle, from one place).
  void on_sm_cycle();

  // Replay `n` consecutive on_sm_cycle() calls with no interleaved
  // completions — exact epoch-clock catch-up for fast-forwarded SM cycles
  // (no SM is awake during a skipped cycle, so no on_block_complete() could
  // have landed inside the gap).
  void advance_cycles(Cycle n);

  CacheAwareTable& cache_table() { return cache_table_; }
  const CacheAwareTable& cache_table() const { return cache_table_; }

  double current_ratio() const;
  OffloadMode mode() const { return cfg_.mode; }

  void export_stats(StatSet& out) const;

 private:
  void roll_epoch();

  GovernorConfig cfg_;
  Rng rng_;
  HillClimbController hill_;
  CacheAwareTable cache_table_;
  Cycle cycle_in_epoch_ = 0;
  std::uint64_t epoch_instrs_ = 0;

  // Stats.
  std::uint64_t decisions_ = 0;
  std::uint64_t offloads_ = 0;
  std::uint64_t suppressed_by_cache_ = 0;
  unsigned epochs_ = 0;
  Distribution ratio_history_;
};

}  // namespace sndp
