#include "ctrl/cache_aware.h"

#include <cmath>
#include <limits>

namespace sndp {

CacheAwareTable::CacheAwareTable(unsigned num_blocks, const GovernorConfig& cfg,
                                 unsigned line_bytes)
    : stats_(num_blocks), cfg_(cfg), line_bytes_(line_bytes) {}

void CacheAwareTable::record_instance(unsigned block, unsigned active_threads) {
  BlockStats& s = stats_.at(block);
  ++s.instances;
  s.active_threads += active_threads;
}

void CacheAwareTable::record_load_line(unsigned block, bool hit, unsigned touched_bytes) {
  BlockStats& s = stats_.at(block);
  ++s.lines;
  if (hit) {
    ++s.line_hits;
    s.hit_touched_bytes += touched_bytes;
  }
}

void CacheAwareTable::record_store_bytes(unsigned block, unsigned bytes) {
  stats_.at(block).store_bytes += bytes;
}

double CacheAwareTable::avg_lines_per_instance(unsigned block) const {
  const BlockStats& s = stats_.at(block);
  if (s.instances == 0) return 0.0;
  return static_cast<double>(s.lines) / static_cast<double>(s.instances);
}

double CacheAwareTable::miss_rate(unsigned block) const {
  const BlockStats& s = stats_.at(block);
  if (s.lines == 0) return 1.0;
  return 1.0 - static_cast<double>(s.line_hits) / static_cast<double>(s.lines);
}

double CacheAwareTable::score(unsigned block, const OffloadBlockInfo& info) const {
  const BlockStats& s = stats_.at(block);
  if (s.instances < cfg_.warmup_instances) {
    return std::numeric_limits<double>::infinity();  // optimistic until measured
  }
  const double avg_active =
      static_cast<double>(s.active_threads) / static_cast<double>(s.instances);
  const double load_benefit =
      std::ceil(avg_lines_per_instance(block) * miss_rate(block)) *
      static_cast<double>(line_bytes_);
  const double store_benefit =
      static_cast<double>(s.store_bytes) / static_cast<double>(s.instances);
  const double overhead =
      8.0 * static_cast<double>(info.regs_in.size() + info.regs_out.size()) * avg_active;
  // Extension (see GovernorConfig::model_hit_push_cost): cache-hit lines
  // become RDF-hit data pushes over the GPU link when offloaded — but only
  // the words the lanes touch, measured per line.  Divergent gathers push
  // ~one word per hit line (cheap); broadcast/coalesced hits push the whole
  // warp's words (the §7.1 pathology).
  double hit_push_cost = 0.0;
  if (cfg_.model_hit_push_cost) {
    hit_push_cost =
        static_cast<double>(s.hit_touched_bytes) / static_cast<double>(s.instances);
  }
  return load_benefit + store_benefit - overhead - hit_push_cost;
}

}  // namespace sndp
