// Cache-locality-aware offload decision (§7.3).
//
// For each static offload block, the GPU accumulates how many cache lines
// the block's loads touch per warp instance and how often those lines hit
// in the GPU caches — measured both from RDF probes (offloaded instances)
// and from ordinary loads (inline instances), so the estimate stays fresh
// whichever way the block executes.  The runtime benefit estimate is
//
//   Benefit = ceil(AvgNumCacheLines * AvgCacheMissRate) * CacheLineSize
//           + NumStoreInsts * WordSize * ActiveThreads
//
// (the GPU traffic a warp instance would generate if executed inline), and
// the block is suppressed from offloading whenever
// Benefit - RegisterTransferBytes <= 0.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "isa/program.h"

namespace sndp {

class CacheAwareTable {
 public:
  CacheAwareTable(unsigned num_blocks, const GovernorConfig& cfg, unsigned line_bytes);

  // One warp instance of `block` began executing (inline or offloaded).
  void record_instance(unsigned block, unsigned active_threads);
  // One cache-line probe for a load in `block`: whether it hit in the L1 or
  // L2, and how many bytes of it the active lanes actually touch (what an
  // RDF-hit response would push over the GPU link).
  void record_load_line(unsigned block, bool hit, unsigned touched_bytes);
  // Store bytes a warp instance of `block` writes (sampled once per instance).
  void record_store_bytes(unsigned block, unsigned bytes);

  double avg_lines_per_instance(unsigned block) const;
  double miss_rate(unsigned block) const;

  // §7.3 score: Benefit (bytes saved per instance) minus the register
  // transfer overhead.  Optimistic (+inf) until warmup_instances observed.
  double score(unsigned block, const OffloadBlockInfo& info) const;
  bool should_offload(unsigned block, const OffloadBlockInfo& info) const {
    return score(block, info) > 0.0;
  }

  std::uint64_t instances(unsigned block) const { return stats_.at(block).instances; }

 private:
  struct BlockStats {
    std::uint64_t instances = 0;
    std::uint64_t lines = 0;
    std::uint64_t line_hits = 0;
    std::uint64_t hit_touched_bytes = 0;  // bytes an offload would push on hits
    std::uint64_t store_bytes = 0;
    std::uint64_t active_threads = 0;
  };
  std::vector<BlockStats> stats_;
  GovernorConfig cfg_;
  unsigned line_bytes_;
};

}  // namespace sndp
