#include "ctrl/governor.h"

namespace sndp {

OffloadGovernor::OffloadGovernor(const GovernorConfig& cfg, unsigned num_blocks,
                                 unsigned line_bytes, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), hill_(cfg), cache_table_(num_blocks, cfg, line_bytes) {}

double OffloadGovernor::current_ratio() const {
  switch (cfg_.mode) {
    case OffloadMode::kOff: return 0.0;
    case OffloadMode::kAlways: return 1.0;
    case OffloadMode::kStaticRatio: return cfg_.static_ratio;
    case OffloadMode::kDynamic:
    case OffloadMode::kDynamicCache: return hill_.ratio();
  }
  return 0.0;
}

bool OffloadGovernor::decide(const OffloadBlockInfo& info, unsigned active_threads) {
  ++decisions_;
  cache_table_.record_instance(info.block_id, active_threads);

  bool offload = false;
  switch (cfg_.mode) {
    case OffloadMode::kOff:
      break;
    case OffloadMode::kAlways:
      offload = true;
      break;
    case OffloadMode::kStaticRatio:
      offload = rng_.bernoulli(cfg_.static_ratio);
      break;
    case OffloadMode::kDynamic:
      offload = rng_.bernoulli(hill_.ratio());
      break;
    case OffloadMode::kDynamicCache:
      if (!cache_table_.should_offload(info.block_id, info)) {
        ++suppressed_by_cache_;
        offload = false;
      } else {
        offload = rng_.bernoulli(hill_.ratio());
      }
      break;
  }
  if (offload) ++offloads_;
  return offload;
}

void OffloadGovernor::roll_epoch() {
  const double ipc =
      static_cast<double>(epoch_instrs_) / static_cast<double>(cfg_.epoch_cycles);
  const bool dynamic = cfg_.mode == OffloadMode::kDynamic ||
                       cfg_.mode == OffloadMode::kDynamicCache;
  if (dynamic) {
    // An epoch with zero offload-block instructions carries no throughput
    // signal — the climber holds instead of reading it as a collapse.
    hill_.end_epoch(ipc, /*has_signal=*/epoch_instrs_ != 0);
    ratio_history_.record(hill_.ratio());
  }
  if (observer_) {
    EpochRollInfo info;
    info.epoch = epochs_;
    info.ipc = ipc;
    info.block_instrs = epoch_instrs_;
    info.ratio = current_ratio();
    info.step = hill_.step();
    info.direction = hill_.direction();
    observer_(info);
  }
  ++epochs_;
  cycle_in_epoch_ = 0;
  epoch_instrs_ = 0;
}

void OffloadGovernor::on_sm_cycle() {
  if (++cycle_in_epoch_ < cfg_.epoch_cycles) return;
  roll_epoch();
}

void OffloadGovernor::advance_cycles(Cycle n) {
  while (n > 0) {
    const Cycle room = cfg_.epoch_cycles - cycle_in_epoch_;
    if (n < room) {
      cycle_in_epoch_ += n;
      return;
    }
    n -= room;
    roll_epoch();  // the room-th cycle hits the epoch boundary
  }
}

void OffloadGovernor::export_stats(StatSet& out) const {
  out.set("governor.decisions", static_cast<double>(decisions_));
  out.set("governor.offloads", static_cast<double>(offloads_));
  out.set("governor.suppressed_by_cache", static_cast<double>(suppressed_by_cache_));
  out.set("governor.epochs", static_cast<double>(epochs_));
  out.set("governor.block_instrs", static_cast<double>(total_block_instrs_));
  out.set("governor.final_ratio", current_ratio());
  ratio_history_.export_to(out, "governor.ratio");
}

}  // namespace sndp
