#include "ctrl/hill_climb.h"

#include <algorithm>

namespace sndp {

HillClimbController::HillClimbController(const GovernorConfig& cfg)
    : cfg_(cfg), ratio_(cfg.initial_ratio), step_(cfg.initial_step) {}

void HillClimbController::end_epoch(double avg_ipc, bool has_signal) {
  ++epochs_;
  // An idle/empty epoch (no offload-block instruction retired) says nothing
  // about the current ratio: don't record it as a baseline, don't compare
  // against it, don't move.  The next informative epoch climbs against the
  // last informative baseline.
  if (!has_signal) return;
  if (!have_prev_) {
    // "At the end of each epoch except for the first": only record the
    // baseline throughput.
    prev_ipc_ = avg_ipc;
    have_prev_ = true;
    return;
  }

  if (avg_ipc < prev_ipc_) {
    dir_ = -dir_;  // reverse direction if getting worse
    dir_change_history_.push_back(true);
  } else {
    dir_change_history_.push_back(false);
  }
  if (dir_change_history_.size() > cfg_.history_window) dir_change_history_.pop_front();

  unsigned n_changes = 0;
  for (bool changed : dir_change_history_) n_changes += changed ? 1 : 0;

  if (n_changes > cfg_.history_window / 2 && cfg_.step_min < step_) {
    step_ -= cfg_.step_unit;  // oscillating near the optimum: refine
  } else if (step_ < cfg_.step_max) {
    step_ += cfg_.step_unit;  // steady progress: move faster
  }
  step_ = std::clamp(step_, cfg_.step_min, cfg_.step_max);

  ratio_ += static_cast<double>(dir_) * step_;
  // Bounce at the walls: with the ratio pinned at 0 or 1 the throughput
  // signal goes flat, so the climber must turn around to keep probing (the
  // paper notes the algorithm "continually tries non-zero offload ratios").
  if (ratio_ <= 0.0) {
    ratio_ = 0.0;
    dir_ = +1;
  } else if (ratio_ >= 1.0) {
    ratio_ = 1.0;
    dir_ = -1;
  }

  prev_ipc_ = avg_ipc;
}

}  // namespace sndp
