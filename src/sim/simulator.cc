#include "sim/simulator.h"

#include "sim/trace.h"

#include <array>
#include <stdexcept>
#include <vector>

#include "common/log.h"
#include "ctrl/governor.h"
#include "gpu/gpu.h"
#include "gpu/wta_tracker.h"
#include "ndp/ro_cache.h"
#include "mem/address_map.h"
#include "mem/hmc.h"
#include "memfunc/global_memory.h"
#include "noc/net_port.h"
#include "noc/network.h"
#include "obs/stats_audit.h"
#include "sim/parallel.h"
#include "offload/codegen.h"
#include "ref/placement_profile.h"
#include "workloads/workload.h"

namespace sndp {

Simulator::Simulator(const SystemConfig& cfg) : cfg_(cfg) { cfg_.validate(); }

RunResult Simulator::run(Workload& workload) {
  GlobalMemory gmem;
  MemoryAllocator alloc;
  Rng rng(cfg_.placement_seed ^ 0xABCDEF);
  workload.setup(gmem, alloc, rng);
  const KernelImage image = analyze_and_generate(workload.program(), analyzer_opts_);
  // Locality placement: build the profiling pre-pass over the reference
  // interpreter automatically when the caller did not supply a profile.
  // (Reads a copy of the launch-time memory image; gmem is untouched.)
  const bool auto_profile = cfg_.placement.policy == PlacementPolicyKind::kLocality &&
                            cfg_.placement.locality_profile == nullptr;
  if (auto_profile) {
    cfg_.placement.locality_profile = build_placement_profile(
        workload.program(), workload.launch(), gmem, cfg_, analyzer_opts_);
  }
  RunResult result = run_image(image, workload.launch(), gmem, workload.name());
  // The auto-built profile is specific to this workload; drop it so a reused
  // Simulator re-profiles the next one.
  if (auto_profile) cfg_.placement.locality_profile = nullptr;
  result.verified = workload.verify(gmem);
  if (final_memory_sink_ != nullptr) *final_memory_sink_ = gmem;
  return result;
}

RunResult Simulator::run_image(const KernelImage& image, const LaunchParams& launch,
                               GlobalMemory& gmem, const std::string& name) {
  TenantJob job;
  job.image = &image;
  job.launch = launch;
  job.name = name;
  return run_images({job}, gmem, name);
}

RunResult Simulator::run_tenants(const std::vector<TenantDesc>& tenants,
                                 const std::string& name) {
  if (tenants.empty()) throw std::invalid_argument("run_tenants: no tenants");
  GlobalMemory gmem;
  MemoryAllocator alloc;
  std::vector<KernelImage> images;
  images.reserve(tenants.size());
  std::vector<TenantJob> jobs;
  jobs.reserve(tenants.size());
  for (unsigned t = 0; t < tenants.size(); ++t) {
    Workload& wl = *tenants[t].workload;
    // Round the shared allocator up to a fresh 16 MiB slice so tenant
    // address spaces are disjoint; tenant 0 starts at the classic base with
    // the classic seed, so its layout and contents are byte-identical to a
    // solo run of the same workload.
    if (t > 0) alloc.alloc(0, kTenantBaseAlign);
    Rng rng(tenant_setup_seed(cfg_.placement_seed, t));
    wl.setup(gmem, alloc, rng);
    images.push_back(analyze_and_generate(wl.program(), analyzer_opts_));
  }
  // (No locality auto-profile here: the profile is per-kernel, and the
  // placement policy takes one profile per run.  Multi-tenant locality
  // placement needs an explicitly supplied merged profile.)
  for (unsigned t = 0; t < tenants.size(); ++t) {
    TenantJob job;
    job.image = &images[t];
    job.launch = tenants[t].workload->launch();
    job.name = tenants[t].workload->name();
    job.weight = tenants[t].weight;
    job.priority = tenants[t].priority;
    jobs.push_back(std::move(job));
  }
  RunResult result = run_images(jobs, gmem, name);
  bool all_ok = true;
  for (unsigned t = 0; t < tenants.size(); ++t) {
    const bool ok = tenants[t].workload->verify(gmem);
    if (t < result.tenants.size()) result.tenants[t].verified = ok;
    all_ok = all_ok && ok;
  }
  result.verified = all_ok;
  if (final_memory_sink_ != nullptr) *final_memory_sink_ = gmem;
  return result;
}

RunResult Simulator::run_images(const std::vector<TenantJob>& jobs, GlobalMemory& gmem,
                                const std::string& name) {
  if (jobs.empty() || jobs[0].image == nullptr) {
    throw std::invalid_argument("run_images: no tenant jobs");
  }
  const KernelImage& image = *jobs[0].image;
  const LaunchParams& launch = jobs[0].launch;
  const unsigned num_tenants = static_cast<unsigned>(jobs.size());
  RunResult result;
  result.workload = name;

  AddressMap amap(cfg_);
  Network net(cfg_);
  TraceWriter trace;
  if (!cfg_.trace_path.empty()) {
    for (unsigned h = 0; h < cfg_.num_hmcs; ++h) {
      trace.name_row(static_cast<int>(h), "HMC " + std::to_string(h));
    }
    trace.name_row(static_cast<int>(cfg_.num_hmcs), "GPU");
    trace.name_row(static_cast<int>(cfg_.num_hmcs) + 1, "Governor");
    net.set_trace(&trace);
  }
  // Parallel-in-time plan (DESIGN.md "Parallel-in-time simulation"): the
  // effective partition count, clamped to one partition per stack plus the
  // hub.  Configurations the horizon math cannot cover fall back to serial
  // with a warning rather than silently losing bit-identity.
  unsigned num_parts = cfg_.parallel_partitions;
  if (num_parts > cfg_.num_hmcs + 1) num_parts = cfg_.num_hmcs + 1;
  TimePs lookahead_ps = 0;
  if (num_parts > 1) {
    if (cfg_.placement.policy == PlacementPolicyKind::kFirstTouch ||
        cfg_.placement.policy == PlacementPolicyKind::kMigration) {
      // These policies mutate the page map on lookups issued concurrently
      // from every partition; the outcome would depend on thread timing.
      SNDP_WARN("sim", "parallel_partitions: mutating placement policy; falling back to serial");
      num_parts = 1;
    } else {
      lookahead_ps = parallel_lookahead_ps(cfg_);
      if (lookahead_ps <= 0) {
        SNDP_WARN("sim",
                  "parallel_partitions: link latency does not cover a clock period; "
                  "falling back to serial");
        num_parts = 1;
      }
    }
  }
  const bool parallel = num_parts > 1;
  const unsigned num_groups = parallel ? num_parts - 1 : 1;
  // Stack h belongs to partition 1 + group(h); groups are contiguous and
  // balanced, members in ascending HMC id (their serial relative order).
  auto group_of_hmc = [&](unsigned h) {
    if (!parallel) return 0u;
    return static_cast<unsigned>(static_cast<std::uint64_t>(h) * num_groups / cfg_.num_hmcs);
  };

  // Request-lifecycle latency tracer (cfg_.latency_trace): a null ctx
  // pointer is the zero-cost-disabled path — no stamp is ever touched.
  // Parallel runs force span sampling off: the span table is shared mutable
  // state the per-partition shards cannot carry, and every other summary
  // field merges exactly (`sim.latency_spans*` are the only keys a parallel
  // run reports differently from a serial one).
  std::unique_ptr<LatencyTracer> latency;
  std::vector<std::unique_ptr<LatencyTracer>> lat_shards;  // partitions 1..P-1
  if (cfg_.latency_trace) {
    latency = std::make_unique<LatencyTracer>(parallel ? 0 : cfg_.latency_sample);
    latency->set_num_tenants(num_tenants);
    net.set_latency(latency.get());
    if (parallel) {
      for (unsigned g = 0; g < num_groups; ++g) {
        lat_shards.push_back(std::make_unique<LatencyTracer>(0));
        lat_shards.back()->set_num_tenants(num_tenants);
      }
    }
  }
  EnergyCounters counters;
  // Parallel runs accumulate energy into per-partition shards, merged into
  // `counters` after the run; every field is an exact sum (and the one
  // double is hub-only), so the merge is bit-identical to serial.
  std::vector<EnergyCounters> energy_shards(parallel ? num_parts : 0);
  OffloadGovernor governor(cfg_.governor, static_cast<unsigned>(image.blocks.size()),
                           cfg_.l2.line_bytes, cfg_.placement_seed ^ 0x60BE44);
  // One governor per tenant: each climbs its own offload ratio from its own
  // completion signal, so one tenant's phase change cannot contaminate
  // another's epoch stats.  Tenant 0 keeps the exact classic seed/ctor;
  // later tenants perturb the seed by their index.
  std::vector<std::unique_ptr<OffloadGovernor>> extra_govs;
  std::vector<OffloadGovernor*> all_govs{&governor};
  for (unsigned t = 1; t < num_tenants; ++t) {
    extra_govs.push_back(std::make_unique<OffloadGovernor>(
        cfg_.governor, static_cast<unsigned>(jobs[t].image->blocks.size()), cfg_.l2.line_bytes,
        (cfg_.placement_seed ^ 0x60BE44) ^ (static_cast<std::uint64_t>(t) << 32)));
    all_govs.push_back(extra_govs.back().get());
  }
  std::vector<TenantInfo> tenant_table;
  if (num_tenants > 1) {
    for (unsigned t = 0; t < num_tenants; ++t) {
      TenantInfo ti;
      ti.image = jobs[t].image;
      ti.launch = jobs[t].launch;
      ti.governor = all_govs[t];
      ti.weight = jobs[t].weight;
      ti.priority = jobs[t].priority;
      tenant_table.push_back(ti);
    }
  }
  NdpBufferManager bufmgr(cfg_.ndp_buffers, cfg_.num_hmcs);
  if (num_tenants > 1) bufmgr.set_tenancy(num_tenants, cfg_.tenancy.credit_share);
  RoCacheMirror ro_cache(cfg_.num_hmcs, cfg_.nsu, cfg_.l2.line_bytes);
  WtaInflightTracker wta_tracker(cfg_.num_hmcs);
  // Under a volatile mapping (migration) a WTA's generation-time stack and
  // its invalidation-time stack can disagree; collapse to one counter.
  wta_tracker.set_aggregate(amap.policy().volatile_mapping());

  // One context per partition (components hold references, so the vector is
  // sized up front and never reallocated).  Partition 0 is the hub
  // (GPU/SM/L2); partition 1+g owns stack group g.  Each partition gets its
  // own NetworkPort — a passthrough in serial mode, a deferred-send log in
  // parallel mode — and its own energy/latency shard in parallel mode.
  std::vector<SystemContext> ctxs(num_parts);
  std::vector<NetworkPort> ports;
  ports.reserve(num_parts);
  for (unsigned p = 0; p < num_parts; ++p) ports.emplace_back(net);
  for (unsigned p = 0; p < num_parts; ++p) {
    SystemContext& ctx = ctxs[p];
    ctx.cfg = &cfg_;
    ctx.amap = &amap;
    ctx.gmem = &gmem;
    ctx.net = &ports[p];
    ctx.governor = &governor;
    ctx.bufmgr = &bufmgr;
    ctx.energy = parallel ? &energy_shards[p] : &counters;
    ctx.ro_cache = &ro_cache;
    ctx.wta_tracker = &wta_tracker;
    ctx.latency = (p == 0 || !parallel) ? latency.get()
                                        : (cfg_.latency_trace ? lat_shards[p - 1].get() : nullptr);
    ctx.image = &image;
    ctx.launch = launch;
    if (num_tenants > 1) ctx.tenants = &tenant_table;
  }
  gmem.set_concurrent(parallel);

  Gpu gpu(ctxs[0]);
  std::vector<std::unique_ptr<Hmc>> hmcs;
  for (unsigned h = 0; h < cfg_.num_hmcs; ++h) {
    hmcs.push_back(std::make_unique<Hmc>(h, ctxs[parallel ? 1 + group_of_hmc(h) : 0]));
  }

  // Observability: per-epoch timeline (always on — the polls are one
  // compare in the hot paths) and the flow-conservation audit (cfg_.audit).
  EpochTimeline timeline(cfg_, cfg_.num_hmcs);
  gpu.set_timeline(&timeline);
  net.set_timeline(&timeline);
  for (unsigned h = 0; h < cfg_.num_hmcs; ++h) hmcs[h]->nsu().set_timeline(&timeline, h);
  // Migration counter: one dram-domain poller suffices (stack 0 ticks first
  // at every dram edge, and the poll sits before its fast-forward return).
  hmcs[0]->set_timeline(&timeline);

  StatsAudit audit;
  // Merged views over the per-partition shards.  During the run `counters`
  // (and the hub tracer) hold everything in serial mode and nothing in
  // parallel mode; after the post-run merge the shards are cleared, so
  // these lambdas are exact at every audit point in both modes.
  auto energy_now = [&] {
    EnergyCounters e = counters;
    for (const EnergyCounters& sh : energy_shards) e.add(sh);
    return e;
  };
  auto latency_now = [&] {
    LatencySummary ls = latency->summary();
    for (const auto& sh : lat_shards) ls.merge_from(sh->summary());
    return ls;
  };
  auto collect_audit = [&] {
    AuditSnapshot s;
    for (const auto& sm : gpu.sms()) {
      s.sm_issued += sm->issued_instrs;
      s.offloads_started += sm->offloads_started();
      s.inline_blocks += sm->inline_blocks();
      s.ofld_acks += sm->ofld_acks();
      s.inline_block_instrs += sm->inline_block_instrs();
      s.acked_block_instrs += sm->acked_block_instrs();
      s.sm_rdf_probes += sm->rdf_probe_packets();
      s.sm_rdf_l1_hits += sm->rdf_probe_l1_hits();
      s.l1_hits += sm->l1().hits;
      s.l1_miss_new += sm->l1().misses;
      s.l1_merged += sm->l1().merged_misses;
    }
    s.l2_hits = gpu.total_l2_hits();
    s.l2_miss_new = gpu.total_l2_misses();
    s.l2_merged = gpu.total_l2_merged();
    s.l2_read_reqs = gpu.l2_read_reqs();
    s.rdf_l2_probes = gpu.rdf_l2_probes();
    s.rdf_l2_hits = gpu.rdf_l2_hits();
    s.mem_read_resps = gpu.mem_read_resps();
    s.gpu_rx_packets = gpu.rx_packets();
    for (const OffloadGovernor* g : all_govs) s.gov_block_instrs += g->total_block_instrs();
    if (num_tenants > 1) {
      s.tenant_issued.resize(num_tenants);
      s.tenant_l2_reads.resize(num_tenants);
      s.tenant_gov_instrs.resize(num_tenants);
      for (unsigned t = 0; t < num_tenants; ++t) {
        s.tenant_issued[t] = gpu.issued_by_tenant(t);
        s.tenant_l2_reads[t] =
            gpu.tenant_l2_hits(t) + gpu.tenant_l2_misses(t) + gpu.tenant_l2_merged(t);
        s.tenant_gov_instrs[t] = all_govs[t]->total_block_instrs();
      }
    }
    s.net_injected = net.packets_injected();
    s.net_in_flight = net.in_flight_packets();
    s.link_bytes = net.total_link_bytes();
    s.class_bytes = net.total_offchip_bytes();
    for (const auto& hmc : hmcs) {
      s.hmc_rx_packets += hmc->packets_routed();
      s.vault_reads += hmc->total_reads();
      s.vault_writes += hmc->total_writes();
      s.vault_activates += hmc->total_activates();
      s.mem_read_completions += hmc->mem_reads_completed();
      s.rdf_completions += hmc->rdf_completed();
      s.mem_write_completions += hmc->mem_writes_completed();
      s.nsu_write_completions += hmc->nsu_writes_completed();
      s.page_copy_read_completions += hmc->page_copy_reads_completed();
      s.page_copy_write_completions += hmc->page_copy_writes_completed();
      s.nsu_blocks_completed += hmc->nsu().blocks_completed();
      s.nsu_instrs += hmc->nsu().instrs();
      s.nsu_lane_ops += hmc->nsu().lane_ops();
      s.nsu_finished_block_instrs += hmc->nsu().finished_block_instrs();
    }
    const EnergyCounters ec = energy_now();
    s.dram_read_bytes = ec.dram_read_bytes;
    s.dram_write_bytes = ec.dram_write_bytes;
    for (unsigned h = 0; h < cfg_.num_hmcs; ++h) {
      s.buf_free_cmd += bufmgr.free_cmd(h);
      s.buf_free_read_data += bufmgr.free_read_data(h);
      s.buf_free_write_addr += bufmgr.free_write_addr(h);
    }
    s.buf_cap_cmd = static_cast<std::uint64_t>(cfg_.ndp_buffers.nsu_cmd_entries) * cfg_.num_hmcs;
    s.buf_cap_read_data =
        static_cast<std::uint64_t>(cfg_.ndp_buffers.nsu_read_data_entries) * cfg_.num_hmcs;
    s.buf_cap_write_addr =
        static_cast<std::uint64_t>(cfg_.ndp_buffers.nsu_write_addr_entries) * cfg_.num_hmcs;
    s.energy_dram_activates = ec.dram_activates;
    s.energy_offchip_bytes = ec.offchip_bytes;
    s.energy_nsu_lane_ops = ec.nsu_lane_ops;
    s.line_bytes = cfg_.l2.line_bytes;
    s.warp_width = kWarpWidth;
    s.pages_migrated = amap.policy().pages_migrated();
    s.migration_bytes = amap.policy().migration_bytes();
    s.page_bytes = cfg_.page_bytes;
    if (latency != nullptr) {
      const LatencySummary ls = latency_now();
      s.latency_on = true;
      for (std::size_t c = 0; c < kNumPathClasses; ++c) {
        s.lat_counts[c] = ls.per_class[c].count();
      }
      s.lat_started = ls.started;
      s.lat_finished = ls.finished;
      s.lat_cancelled = ls.cancelled;
    }
    if (cfg_.profile) {
      s.cyc_on = true;
      for (const auto& sm : gpu.sms()) {
        s.cyc_sm_sum.push_back(sm->cycle_stack().total());
        s.cyc_sm_counted.push_back(sm->counted_cycles());
      }
      const SmCycleStack machine = gpu.cycle_stack();
      for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
        const std::uint64_t n = machine.bucket_total(b);
        switch (sm_bucket_group(static_cast<SmBucket>(b))) {
          case SmBucketGroup::kIssue: s.cyc_sm_issue += n; break;
          case SmBucketGroup::kExecBusy: s.cyc_sm_exec_group += n; break;
          case SmBucketGroup::kDep: s.cyc_sm_dep_group += n; break;
          case SmBucketGroup::kWarpIdle: s.cyc_sm_warp_idle_group += n; break;
          case SmBucketGroup::kNoWarp: break;
        }
      }
      s.cyc_sm_dep_pending =
          machine.bucket_total(static_cast<std::size_t>(SmBucket::kDepPending));
      s.sm_stall_dependency = gpu.total_stall_dependency();
      s.sm_stall_exec_busy = gpu.total_stall_exec_busy();
      s.sm_stall_warp_idle = gpu.total_stall_warp_idle();
      for (const auto& hmc : hmcs) {
        s.cyc_nsu_sum.push_back(hmc->nsu().cycle_stack().total());
        s.cyc_nsu_counted.push_back(hmc->nsu().counted_cycles());
        for (unsigned v = 0; v < hmc->num_vaults(); ++v) {
          s.cyc_vault_sum.push_back(hmc->vault(v).cycle_stack().total());
          s.cyc_vault_counted.push_back(hmc->vault(v).counted_cycles());
        }
      }
      if (num_tenants > 1) {
        s.cyc_tenant_issue.resize(num_tenants);
        for (unsigned t = 0; t < num_tenants; ++t) {
          s.cyc_tenant_issue[t] =
              machine.rows[t][static_cast<std::size_t>(SmBucket::kIssue)];
        }
      }
    }
    return s;
  };

  // In parallel mode the epoch observer fires mid-window on the hub's
  // thread while the stack partitions are still running, so the audit
  // snapshot (which reads every partition's counters) is deferred to the
  // next horizon barrier.  stats_audit.h documents epoch checks as
  // every-instant invariants, so checking them at the barrier — a globally
  // consistent instant — is sound, and the number of checks matches serial.
  // The timeline hook stays inline: it reads only hub-owned state.
  std::vector<std::uint64_t> pending_epoch_audits;
  governor.set_epoch_observer([&](const EpochRollInfo& info) {
    std::uint64_t issued = 0, l1_hits = 0, l1_misses = 0;
    for (const auto& sm : gpu.sms()) {
      issued += sm->issued_instrs;
      l1_hits += sm->l1().hits;
      l1_misses += sm->l1().misses;
    }
    // Boundary-sync the SM cycle stacks so the timeline sample (and the
    // epoch audit) sees every cycle up to the boundary classified.  The
    // EpochTick replays fast-forwarded boundaries before any SM does work at
    // the wake edge, so syncing to the boundary cycle here is exact in both
    // stepping modes; the SMs are hub-owned, so it is also safe mid-window
    // under `--partitions`.
    std::array<std::uint64_t, kNumSmBuckets> stack_totals{};
    if (cfg_.profile) {
      gpu.sync_cycle_stacks((info.epoch + 1) * cfg_.governor.epoch_cycles);
      const SmCycleStack machine = gpu.cycle_stack();
      for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
        stack_totals[b] = machine.bucket_total(b);
      }
    }
    timeline.on_epoch(info.epoch, info.ipc, info.block_instrs, info.ratio,
                      info.step, info.direction, issued, l1_hits, l1_misses,
                      cfg_.profile ? stack_totals.data() : nullptr);
    if (cfg_.audit) {
      if (parallel) {
        pending_epoch_audits.push_back(info.epoch);
      } else {
        audit.check_epoch(info.epoch, collect_audit());
      }
    }
  });

  // Clock domains (Table 2).
  ClockDomain sm_domain("sm", cfg_.clocks.sm_khz);
  ClockDomain l2_domain("l2", cfg_.clocks.l2_khz);
  // EpochTick must precede the SMs (it replays the governor epoch clock for
  // fast-forwarded cycles, which in naive order ran before the wake edge);
  // CoreTick stays after them, matching the naive per-cycle sequence.
  sm_domain.add(&gpu.epoch_tickable());
  for (auto& sm : gpu.sms()) sm_domain.add(sm.get());
  sm_domain.add(&gpu.core_tickable());
  l2_domain.add(&gpu.l2_tickable());
  // DRAM + NSU domains: one global pair in serial mode, one pair per stack
  // partition in parallel mode; members keep their serial relative order
  // (ascending HMC id) either way.
  std::vector<std::unique_ptr<ClockDomain>> dram_domains;
  std::vector<std::unique_ptr<ClockDomain>> nsu_domains;
  std::vector<unsigned> group_base(num_groups, cfg_.num_hmcs);  // first HMC id per group
  for (unsigned g = 0; g < num_groups; ++g) {
    dram_domains.push_back(std::make_unique<ClockDomain>("dram", cfg_.clocks.dram_khz));
    nsu_domains.push_back(std::make_unique<ClockDomain>("nsu", cfg_.clocks.nsu_khz));
  }
  for (unsigned h = 0; h < cfg_.num_hmcs; ++h) {
    const unsigned g = group_of_hmc(h);
    if (h < group_base[g]) group_base[g] = h;
    dram_domains[g]->add(hmcs[h].get());
  }
  for (unsigned h = 0; h < cfg_.num_hmcs; ++h) nsu_domains[group_of_hmc(h)]->add(&hmcs[h]->nsu());

  // Partition schedulers.  `sched` is the hub partition (and the only
  // scheduler in serial mode, where it owns all four domains exactly as
  // before); each stack partition gets its own scheduler over its
  // dram + nsu domains.  Scheduler registration order mirrors the serial
  // sm < l2 < dram < nsu order within every partition.
  Scheduler sched(cfg_.fast_forward);
  sched.set_time_limit(cfg_.max_time_ps);
  sched.add(&sm_domain);
  sched.add(&l2_domain);
  std::vector<std::unique_ptr<Scheduler>> stack_scheds;
  if (parallel) {
    for (unsigned g = 0; g < num_groups; ++g) {
      auto s = std::make_unique<Scheduler>(cfg_.fast_forward);
      s->set_time_limit(cfg_.max_time_ps);
      s->add(dram_domains[g].get());
      s->add(nsu_domains[g].get());
      stack_scheds.push_back(std::move(s));
    }
  } else {
    sched.add(dram_domains[0].get());
    sched.add(nsu_domains[0].get());
  }

  // Parallel wiring: every port defers sends for barrier replay, stamped
  // with the calling tick context so the coordinator can reconstruct the
  // serial scheduler's global tick order (domain ranks follow the serial
  // sm=0 < l2=1 < dram=2 < nsu=3 registration order; member ranks are the
  // serial global member indices).
  std::vector<TickOrderProbe> probes(num_parts);
  if (parallel) {
    for (unsigned p = 0; p < num_parts; ++p) {
      ports[p].set_deferred(true);
      ports[p].set_order_probe(&probes[p]);
    }
    sm_domain.set_order_probe(&probes[0], 0, 0);
    l2_domain.set_order_probe(&probes[0], 1, 0);
    for (unsigned g = 0; g < num_groups; ++g) {
      dram_domains[g]->set_order_probe(&probes[1 + g], 2, group_base[g]);
      nsu_domains[g]->set_order_probe(&probes[1 + g], 3, group_base[g]);
    }
  }

  auto system_idle = [&] {
    if (!gpu.idle() || !net.idle()) return false;
    for (const auto& hmc : hmcs) {
      if (!hmc->idle()) return false;
    }
    return true;
  };

  // Main loop.  The full idle scan is cheap now that per-component busy
  // checks are O(1), so it runs between single steps and the run stops on
  // the exact edge where the system drains — identically in both stepping
  // modes.  In fast-forward mode the scan is further gated on the
  // scheduler's quiescent flag (one flag read in the common case); a
  // quiescent-but-not-idle system (in-flight state no hint covers — a
  // modeling bug) dead-marches to the valve instead of spinning.
  bool completed = false;
  bool aborted = false;
  TimePs final_now = 0;
  std::uint64_t parallel_windows = 0;
  if (parallel) {
    // Parallel-in-time main loop (sim/parallel.*): the coordinator runs the
    // hub partition on this thread and each stack partition on a worker,
    // advancing all of them window-by-window to the same completed /
    // valve-stop / abort outcome the serial loop above reaches.  Abort is
    // polled at barriers instead of every 64 steps — aborted runs make no
    // bit-identity promise.
    std::vector<Scheduler*> parts;
    parts.push_back(&sched);
    for (auto& s : stack_scheds) parts.push_back(s.get());
    std::vector<NetworkPort*> port_ptrs;
    for (auto& p : ports) port_ptrs.push_back(&p);
    ParallelHooks hooks;
    hooks.system_idle = system_idle;
    if (abort_poll_) hooks.abort_poll = abort_poll_;
    hooks.on_barrier = [&] {
      for (const std::uint64_t e : pending_epoch_audits) audit.check_epoch(e, collect_audit());
      pending_epoch_audits.clear();
    };
    const ParallelOutcome outcome =
        run_parallel(parts, port_ptrs, net, lookahead_ps, cfg_.max_time_ps, hooks);
    completed = outcome.completed;
    aborted = outcome.aborted;
    final_now = outcome.final_ps;
    parallel_windows = outcome.windows;
    // Sends can be deferred no longer.  Epochs that rolled after the last
    // barrier (or that the fast-forward flush below rolls) are audited after
    // the finalize/merge block, where the counters are settled.
    for (auto& p : ports) p.set_deferred(false);
  } else {
    unsigned poll_countdown = 64;
    while (true) {
      const bool maybe_idle = cfg_.fast_forward ? sched.quiescent() : true;
      if (maybe_idle && system_idle()) {
        completed = true;
        break;
      }
      if (sched.now() >= cfg_.max_time_ps) break;
      if (cfg_.fast_forward && sched.quiescent()) {
        sched.advance_to_limit();
        continue;
      }
      sched.step();
      if (--poll_countdown == 0) {
        poll_countdown = 64;
        if (abort_poll_ && abort_poll_()) {
          aborted = true;
          break;
        }
      }
    }
    final_now = sched.now();
  }

  // Flush fast-forward-deferred per-cycle accounting (stall/active
  // counters, governor epoch clock, NSU tick counts) up to each domain's
  // consumed-edge count.  No-ops in naive mode.
  gpu.finalize(sm_domain.next_cycle());
  for (unsigned h = 0; h < cfg_.num_hmcs; ++h) {
    hmcs[h]->nsu().finalize(nsu_domains[group_of_hmc(h)]->next_cycle());
    // Vault cycle stacks: derive the idle bucket once, from the dram domain's
    // consumed-edge count (busy classification happened live at each edge).
    hmcs[h]->finalize(dram_domains[group_of_hmc(h)]->next_cycle());
  }

  // Merge the parallel shards back into the primary accumulators (exact
  // integer sums / histogram merges; no-ops in serial mode) so everything
  // below sees the same totals a serial run computes in place.
  for (const EnergyCounters& sh : energy_shards) counters.add(sh);
  energy_shards.clear();
  if (latency != nullptr) {
    for (const auto& sh : lat_shards) latency->merge_from(*sh);
  }
  lat_shards.clear();
  gmem.set_concurrent(false);

  // Epochs deferred past the last barrier — including one the gpu.finalize
  // flush above may roll when the final fast-forward region crosses an
  // epoch boundary — get their audit here, against the merged totals.
  // Serial mode audits these inline in the observer, so the per-run
  // check_epoch count stays identical.
  for (const std::uint64_t e : pending_epoch_audits) audit.check_epoch(e, collect_audit());
  pending_epoch_audits.clear();

  // Flush the timeline's lazily-polled series (L2, links, NSU occupancy) to
  // end-of-run values for epochs no consumed edge of their domain reached,
  // and assemble the per-epoch samples.
  {
    std::vector<std::uint64_t> occ;
    occ.reserve(hmcs.size());
    for (const auto& hmc : hmcs) occ.push_back(hmc->nsu().occupancy_accum());
    timeline.finalize(gpu.total_l2_hits(), gpu.total_l2_misses(), net.gpu_up_bytes(),
                      net.gpu_down_bytes(), net.cube_bytes(), occ,
                      amap.policy().pages_migrated());
  }
  result.timeline = timeline.samples();

  result.completed = completed;
  result.aborted = aborted;
  result.sm_cycles = sm_domain.now_cycle();
  result.runtime_ps = final_now;
  result.stall_dependency = gpu.total_stall_dependency();
  result.stall_exec_busy = gpu.total_stall_exec_busy();
  result.stall_warp_idle = gpu.total_stall_warp_idle();
  result.ipc = result.sm_cycles
                   ? static_cast<double>(gpu.total_issued()) / static_cast<double>(result.sm_cycles)
                   : 0.0;
  result.gpu_link_bytes = net.gpu_up_bytes() + net.gpu_down_bytes();
  result.cube_link_bytes = net.cube_bytes();
  // Machine cycle-stack summary: everything is finalized above, so the SM
  // stacks cover every SM cycle and the vault stacks carry their idle tails.
  result.cycle_stack.enabled = cfg_.profile;
  result.cycle_stack.tenants = num_tenants;
  if (cfg_.profile) {
    result.cycle_stack.sm = gpu.cycle_stack();
    result.cycle_stack.nsu.init(num_tenants);
    result.cycle_stack.vault.init(num_tenants);
    for (const auto& hmc : hmcs) {
      result.cycle_stack.nsu.accumulate(hmc->nsu().cycle_stack());
      result.cycle_stack.vault.accumulate(hmc->vault_cycle_stack());
    }
  }
  {
    auto it = net.bytes_by_type().find(PacketType::kCacheInval);
    result.inval_bytes = it == net.bytes_by_type().end() ? 0 : it->second;
  }

  // Fold DRAM and NSU counters into the energy counters.  The lane-op fold
  // was missing until the flow audit's energy-mirror check flagged it: NSU
  // dynamic energy always computed as zero.
  for (const auto& hmc : hmcs) {
    counters.dram_activates += hmc->total_activates();
    counters.nsu_lane_ops += hmc->nsu().lane_ops();
  }
  counters.offchip_bytes = net.total_offchip_bytes();
  {
    std::uint64_t active = 0;
    for (const auto& sm : gpu.sms()) active += sm->active_cycles;
    counters.sm_active_seconds =
        static_cast<double>(active) / (static_cast<double>(cfg_.clocks.sm_khz) * 1e3);
  }
  result.counters = counters;

  const bool ndp_enabled = cfg_.governor.mode != OffloadMode::kOff;
  result.energy = EnergyModel(cfg_.energy)
                      .compute(counters, result.runtime_ps, cfg_.num_sms, cfg_.num_hmcs,
                               ndp_enabled);

  // Final flow-conservation audit.  Strict equalities (everything issued was
  // retired, credits home, energy mirrors consistent) only hold on a drained
  // run; valve-stopped or aborted runs get the monotonic/inequality subset.
  if (cfg_.audit) audit.check_final(collect_audit(), completed && !aborted);

  // End-of-run invariants: with everything drained, all NSU buffer credits
  // must be home and no WTA can still be in flight (§4.1.1 page-migration
  // safety).  (Only meaningful when the run completed.)
  if (completed && !bufmgr.all_idle()) {
    throw std::logic_error("Simulator: NDP buffer credits leaked");
  }
  if (completed && !wta_tracker.all_quiescent()) {
    throw std::logic_error("Simulator: in-flight WTA counter leaked");
  }

  // Per-tenant results + stats (multi-tenant runs only: single-tenant stat
  // sets and golden pins stay byte-identical).
  if (num_tenants > 1) {
    for (unsigned t = 0; t < num_tenants; ++t) {
      TenantResult tr;
      tr.name = jobs[t].name;
      tr.finish_cycle = gpu.tenant_progress()[t].finish_cycle;
      tr.issued = gpu.issued_by_tenant(t);
      tr.l2_hits = gpu.tenant_l2_hits(t);
      tr.l2_misses = gpu.tenant_l2_misses(t);
      tr.l2_merged = gpu.tenant_l2_merged(t);
      tr.gov_block_instrs = all_govs[t]->total_block_instrs();
      result.stats.set("gov.t" + std::to_string(t) + ".block_instrs",
                       static_cast<double>(tr.gov_block_instrs));
      result.tenants.push_back(std::move(tr));
    }
  }

  // Export stats.
  gpu.export_stats(result.stats);
  governor.export_stats(result.stats);
  bufmgr.export_stats(result.stats);
  net.export_stats(result.stats);
  for (unsigned h = 0; h < hmcs.size(); ++h) {
    hmcs[h]->export_stats(result.stats, "hmc" + std::to_string(h));
  }
  result.energy.export_stats(result.stats);
  amap.export_stats(result.stats);
  result.stats.set("wta.max_inflight", static_cast<double>(wta_tracker.max_seen()));
  result.stats.set("wta.total", static_cast<double>(wta_tracker.total()));
  result.stats.set("rocache.hits", static_cast<double>(ro_cache.hits()));
  result.stats.set("rocache.fills", static_cast<double>(ro_cache.fills()));
  result.stats.set("rocache.invalidations", static_cast<double>(ro_cache.invalidations()));
  result.stats.set("sim.sm_cycles", static_cast<double>(result.sm_cycles));
  result.stats.set("sim.runtime_ps", static_cast<double>(result.runtime_ps));
  result.stats.set("sim.ipc", result.ipc);
  result.stats.set("sim.completed", completed ? 1.0 : 0.0);
  result.stats.set("sim.aborted", aborted ? 1.0 : 0.0);
  // How far past the valve the run's reported time landed (at most one
  // clock edge with the in-burst check) — nonzero only for valve-stopped
  // runs, so incomplete runs are diagnosable from the stats alone.
  const TimePs overshoot =
      (!completed && !aborted && result.runtime_ps > cfg_.max_time_ps)
          ? result.runtime_ps - cfg_.max_time_ps
          : 0;
  result.stats.set("sim.valve_overshoot_ps", static_cast<double>(overshoot));
  // Parallel-execution diagnostics (the `sim.parallel_*` keys are the only
  // intentionally partition-dependent stats; identity tests exclude them).
  result.stats.set("sim.parallel_partitions", static_cast<double>(num_parts));
  result.stats.set("sim.parallel_windows", static_cast<double>(parallel_windows));
  timeline.export_stats(result.stats);
  export_cycle_stats(result.cycle_stack, result.stats);
  if (latency != nullptr) {
    result.latency_enabled = true;
    result.latency = latency->summary();
    latency->export_stats(result.stats);
  }
  if (cfg_.audit) audit.export_stats(result.stats);

  if (!completed && !aborted) {
    SNDP_WARN("sim", "run '%s' hit the simulated-time safety valve", name.c_str());
  }
  if (!cfg_.trace_path.empty()) {
    timeline.emit_trace(trace, static_cast<int>(cfg_.num_hmcs) + 1);
    if (latency != nullptr) latency->emit_trace(trace);
    const bool wrote = trace.write(cfg_.trace_path);
    if (!wrote) {
      SNDP_WARN("sim", "failed to write trace to '%s'", cfg_.trace_path.c_str());
    }
    result.stats.set("sim.trace_write_failed", wrote ? 0.0 : 1.0);
    result.stats.set("trace.events", static_cast<double>(trace.size()));
    result.stats.set("trace.dropped_events", static_cast<double>(trace.dropped()));
  }

  // Audit failures are modeling bugs, not workload outcomes — fail loudly,
  // after the stats/trace artifacts above are flushed so the violation is
  // diagnosable from them.  Mirrors the buffer-credit-leak throw.
  if (cfg_.audit && !audit.ok()) {
    throw std::logic_error("Simulator: stats audit failed: " + audit.first_violation_message());
  }
  return result;
}

}  // namespace sndp
