// Deterministic multi-clock-domain scheduler.
//
// Every timed component implements Tickable and registers with one
// ClockDomain.  The Scheduler advances global time to the earliest pending
// domain edge and ticks every member of that domain in registration order —
// fully deterministic, no heap churn per component.  Tick indices map to
// picosecond timestamps exactly (no cumulative rounding drift) via
// tick_time_ps(), so e.g. a 700 MHz domain and a 666.667 MHz DRAM domain
// stay phase-correct over arbitrarily long runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace sndp {

class Tickable {
 public:
  virtual ~Tickable() = default;
  // `cycle` is this domain's tick index; `now` is the global time in ps.
  virtual void tick(Cycle cycle, TimePs now) = 0;
};

class ClockDomain {
 public:
  ClockDomain(std::string name, std::uint64_t freq_khz)
      : name_(std::move(name)), freq_khz_(freq_khz) {}

  const std::string& name() const { return name_; }
  std::uint64_t freq_khz() const { return freq_khz_; }
  Cycle now_cycle() const { return next_cycle_ == 0 ? 0 : next_cycle_ - 1; }
  Cycle next_cycle() const { return next_cycle_; }
  TimePs next_time() const { return tick_time_ps(next_cycle_, freq_khz_); }
  TimePs period_hint_ps() const { return period_ps_from_mhz(static_cast<double>(freq_khz_) / 1000.0); }

  void add(Tickable* t) { members_.push_back(t); }

  // Tick all members once at the current edge.
  void run_tick() {
    const TimePs t = next_time();
    for (Tickable* m : members_) m->tick(next_cycle_, t);
    ++next_cycle_;
  }

 private:
  std::string name_;
  std::uint64_t freq_khz_;
  Cycle next_cycle_ = 0;
  std::vector<Tickable*> members_;
};

// Advances a set of clock domains in global-time order.  Domains whose edges
// coincide are ticked in registration order.
class Scheduler {
 public:
  void add(ClockDomain* domain) { domains_.push_back(domain); }

  TimePs now() const { return now_; }

  // Advance to the next edge and tick it.  Returns the new global time.
  TimePs step();

  // Run until `deadline_ps` (inclusive) or until `idle()` returns true when
  // checked between steps.  Returns false if the deadline was hit first.
  template <typename IdlePred>
  bool run_until_idle(IdlePred&& idle, TimePs deadline_ps) {
    while (!idle()) {
      if (now_ >= deadline_ps) return false;
      step();
    }
    return true;
  }

 private:
  std::vector<ClockDomain*> domains_;
  TimePs now_ = 0;
};

}  // namespace sndp
