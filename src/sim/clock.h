// Deterministic multi-clock-domain scheduler with idle-aware fast-forward.
//
// Every timed component implements Tickable and registers with one
// ClockDomain.  The Scheduler advances global time to the earliest pending
// domain edge and ticks every member of that domain in registration order —
// fully deterministic, no heap churn per component.  Tick indices map to
// picosecond timestamps exactly (no cumulative rounding drift) via
// tick_time_ps(), so e.g. a 700 MHz domain and a 666.667 MHz DRAM domain
// stay phase-correct over arbitrarily long runs.
//
// Fast-forward (see DESIGN.md "Scheduler and fast-forward"): members may
// override next_work_ps() to report the earliest time they could do work.
// With set_fast_forward(true) the Scheduler skips — consumes without
// ticking — every edge at which no member of the domain has work.  Skipped
// edges still advance the domain's tick index, so the cycle <-> ps mapping
// and all tick arguments are bit-identical to naive stepping; the contract
// is that a member whose hint lies in the future would have treated those
// ticks as no-ops anyway (components that count per-cycle stats compensate
// for the skipped cycles themselves; see Sm/Nsu/OffloadGovernor).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace sndp {

class Tickable {
 public:
  virtual ~Tickable() = default;
  // `cycle` is this domain's tick index; `now` is the global time in ps.
  virtual void tick(Cycle cycle, TimePs now) = 0;
  // Earliest global time (ps) at which this member has pending work, or
  // kTimeNever for "none until externally poked".  The default — "always
  // busy" — keeps unmodified components exactly as before.  A hint must be
  // conservative: claiming a future/never wake while work is pending at an
  // earlier edge breaks the bit-identity contract.
  //
  // Contract for the `now` argument (audited across every override for the
  // parallel-in-time scheduler, whose lookahead is built on these hints):
  // `now` is advisory context — the caller's current global time — and a
  // hint must be a pure function of the member's own pending-work state,
  // NEVER of `now`.  The returned time may lie in the past relative to
  // `now` (e.g. a vault completion that became ready between two DRAM
  // edges); callers compare it against their own edge times, so "at or
  // before the pending edge" simply means busy.  Every override in the tree
  // (Hmc, VaultController, Sm, Gpu::{Epoch,Core,L2}Tick, Nsu) ignores `now`
  // accordingly; only the "always busy" default echoes it back.
  virtual TimePs next_work_ps(TimePs now) { return now; }
};

// Identifies the tick whose body is currently executing: the edge instant,
// the owning domain's scheduler registration rank, and the member's global
// registration rank within that domain.  A ClockDomain fills one of these
// (set_order_probe) immediately before each member tick; a deferred
// NetworkPort snapshots it to reconstruct the serial scheduler's global
// tick order when replaying cross-partition sends (noc/net_port.h).
struct TickOrderProbe {
  TimePs now = 0;
  std::uint8_t domain_rank = 0;
  std::uint32_t member_rank = 0;
};

class ClockDomain {
 public:
  ClockDomain(std::string name, std::uint64_t freq_khz)
      : name_(std::move(name)), freq_khz_(freq_khz) {}

  const std::string& name() const { return name_; }
  std::uint64_t freq_khz() const { return freq_khz_; }
  Cycle now_cycle() const { return next_cycle_ == 0 ? 0 : next_cycle_ - 1; }
  Cycle next_cycle() const { return next_cycle_; }
  TimePs next_time() const { return tick_time_ps(next_cycle_, freq_khz_); }
  TimePs period_hint_ps() const { return period_ps_from_mhz(static_cast<double>(freq_khz_) / 1000.0); }

  void add(Tickable* t) { members_.push_back(t); }

  // Parallel mode: publish the calling tick context (instant, domain rank,
  // member rank) into `probe` before each member tick.  `member_base` is
  // this domain's first member's rank in the serial scheduler's global
  // member order, so ranks stay comparable across partitions.
  void set_order_probe(TickOrderProbe* probe, std::uint8_t domain_rank,
                       std::uint32_t member_base) {
    probe_ = probe;
    domain_rank_ = domain_rank;
    member_base_ = member_base;
  }

  // Tick all members once at the current edge.
  void run_tick() {
    const TimePs t = next_time();
    if (probe_ == nullptr) {
      for (Tickable* m : members_) m->tick(next_cycle_, t);
    } else {
      probe_->now = t;
      probe_->domain_rank = domain_rank_;
      for (std::uint32_t i = 0; i < members_.size(); ++i) {
        probe_->member_rank = member_base_ + i;
        members_[i]->tick(next_cycle_, t);
      }
    }
    ++next_cycle_;
  }

  // --- fast-forward support -------------------------------------------

  // Smallest tick index whose edge lands at or after `t`.
  Cycle first_cycle_at_or_after(TimePs t) const {
    // tick_time_ps(n) = floor(n * 1e9 / khz); for integral t,
    // tick_time_ps(n) >= t  <=>  n >= ceil(t * khz / 1e9).
    const auto num = static_cast<unsigned __int128>(t) * freq_khz_;
    return static_cast<Cycle>((num + 999'999'999u) / 1'000'000'000u);
  }

  // Time of the first edge at which some member has work: next_time() if a
  // member is busy now, the first edge at/after the earliest member wake
  // otherwise, kTimeNever if every member is quiescent.
  TimePs next_work_time(TimePs now) {
    const TimePs edge = next_time();
    TimePs wake = kTimeNever;
    for (Tickable* m : members_) {
      const TimePs w = m->next_work_ps(now);
      if (w <= edge) return edge;  // busy at (or before) the pending edge
      if (w < wake) wake = w;
    }
    if (wake == kTimeNever) return kTimeNever;
    return tick_time_ps(first_cycle_at_or_after(wake), freq_khz_);
  }

  // Consume — without ticking — every edge strictly before `t`.  The tick
  // index advances exactly as if those edges had been (no-op) ticked.
  void skip_until(TimePs t) {
    const Cycle c = first_cycle_at_or_after(t);
    if (c > next_cycle_) next_cycle_ = c;
  }

  // Consume the current edge without ticking it.
  void skip_tick() { ++next_cycle_; }

 private:
  std::string name_;
  std::uint64_t freq_khz_;
  Cycle next_cycle_ = 0;
  std::vector<Tickable*> members_;
  TickOrderProbe* probe_ = nullptr;
  std::uint8_t domain_rank_ = 0;
  std::uint32_t member_base_ = 0;
};

// Advances a set of clock domains in global-time order.  Domains whose edges
// coincide are ticked in registration order.
class Scheduler {
 public:
  explicit Scheduler(bool fast_forward = false) : fast_forward_(fast_forward) {}

  void add(ClockDomain* domain) {
    domains_.push_back(domain);
    work_edge_.push_back(kTimeNever);
  }

  TimePs now() const { return now_; }

  bool fast_forward() const { return fast_forward_; }
  void set_fast_forward(bool on) { fast_forward_ = on; }

  // Upper bound on useful simulated time (the safety valve).  Fast-forward
  // never jumps past the first edge at/after this limit, mirroring where a
  // naive step loop with a `now() >= limit` guard would stop.
  void set_time_limit(TimePs limit_ps) { limit_ps_ = limit_ps; }

  // True after a step() found no pending work in any domain.  Cleared by
  // any step that ticks real work.  With fast-forward off the flag is still
  // maintained-on-quiescence only when step() is the fast-forward variant;
  // naive callers should use their own idle predicate.
  bool quiescent() const { return quiescent_; }

  // Advance to the next edge and tick it.  Returns the new global time.
  // In fast-forward mode, edges with no pending member work are consumed
  // without ticking; if no domain reports any pending work the call sets
  // quiescent() and returns without advancing (the caller decides whether
  // the system is done or deadlocked — see advance_to_limit()).
  TimePs step();

  // Dead-march to the time limit: consume every remaining edge strictly
  // before the first edge at/after the limit, then consume the edge(s) at
  // that instant, without ticking.  Only meaningful in fast-forward mode
  // when quiescent() is set but the system is not idle (a deadlock); naive
  // stepping reaches the same state by ticking dead edges one by one.
  TimePs advance_to_limit();

  // --- parallel-in-time windows (DESIGN.md "Parallel-in-time simulation").
  // A partition-local Scheduler executes one horizon window at a time under
  // a coordinator; the methods below factor the serial step()/valve logic
  // so each partition reproduces exactly the tick/skip sequence the global
  // serial scheduler would have applied to its domains.

  // Earliest local work instant at/after the current position (kTimeNever
  // when every local member is quiescent).  Pure poll — nothing advances.
  TimePs poll_bid();

  // Execute every local work target strictly below min(end, time limit),
  // with serial step semantics (fast-forward skip/tick per edge, or naive
  // tick-everything marching when fast-forward is off).  Returns the next
  // bid: the earliest remaining local work instant (>= end, or at/after the
  // time limit, or kTimeNever when locally quiescent).  Targets at/after
  // the time limit are never executed here — whether to run the final
  // valve-clamped step is a global decision (see run_valve_step).
  TimePs run_window(TimePs end);

  // Minimum over the local domains of the first edge at/after the time
  // limit — one partition's contribution to the global valve edge.
  TimePs local_valve_edge() const;

  // The serial scheduler's final step when all remaining work lies at/after
  // the time limit: clamp to `global_valve_edge` (the minimum over ALL
  // partitions' domains of the first edge at/after the limit — the caller
  // computes it globally; a local minimum would diverge), consume edges
  // below it, and tick/skip coinciding edges exactly as serial step() does.
  void run_valve_step(TimePs global_valve_edge);

  // Bring every local domain to the global final instant `f` after the last
  // window: in fast-forward mode consume (without ticking) all edges
  // strictly before `f` plus — when `consume_edge_at_f` — the edge at `f`
  // itself, mirroring the skip_until/skip_tick the serial scheduler applied
  // to remote domains at its final step.  In naive mode, tick every local
  // edge at or before `f` (serial naive stepping ticks dead edges too).
  void finish_to(TimePs f, bool consume_edge_at_f);

  // Run until `deadline_ps` (inclusive) or until `idle()` returns true when
  // checked between steps.  Returns false if the deadline was hit first.
  template <typename IdlePred>
  bool run_until_idle(IdlePred&& idle, TimePs deadline_ps) {
    while (!idle()) {
      if (now_ >= deadline_ps) return false;
      if (fast_forward_ && quiescent_) return false;  // stuck: no pending work
      step();
    }
    return true;
  }

 private:
  TimePs naive_step();

  std::vector<ClockDomain*> domains_;
  std::vector<TimePs> work_edge_;  // per-domain scratch, valid within step()
  TimePs now_ = 0;
  TimePs limit_ps_ = kTimeNever;
  bool fast_forward_ = false;
  bool quiescent_ = false;
};

}  // namespace sndp
