// Shared, non-owning wiring context handed to every timed component, plus
// the kernel-launch descriptor.  All pointers are owned by the Simulator
// and outlive the components.
#pragma once

#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

class AddressMap;
class GlobalMemory;
class LatencyTracer;
class NetworkPort;
class OffloadGovernor;
class NdpBufferManager;
class RoCacheMirror;
class WtaInflightTracker;
struct EnergyCounters;
struct KernelImage;

// Kernel grid: num_ctas thread blocks of cta_threads threads each.
// Thread register conventions at launch:
//   R0 = global thread id, R1 = total thread count,
//   R2 = CTA id,           R3 = thread id within the CTA.
struct LaunchParams {
  unsigned cta_threads = 256;
  unsigned num_ctas = 1;
  unsigned total_threads() const { return cta_threads * num_ctas; }
  unsigned warps_per_cta() const { return (cta_threads + kWarpWidth - 1) / kWarpWidth; }
};

// One resident kernel stream (DESIGN.md "Multi-tenant serving").  The
// Simulator owns the images and governors; the table is shared read-only by
// every component via SystemContext.  Tenant 0 of a single-tenant run is
// the classic single-kernel path.
struct TenantInfo {
  const KernelImage* image = nullptr;
  LaunchParams launch{};
  OffloadGovernor* governor = nullptr;
  double weight = 1.0;     // kWeightedShare arbiter share
  unsigned priority = 0;   // kStrictPriority rank (lower wins)
};

struct SystemContext {
  const SystemConfig* cfg = nullptr;
  AddressMap* amap = nullptr;  // non-const: placement lookups may assign/migrate
  GlobalMemory* gmem = nullptr;
  // All cross-component traffic goes through the port, not the Network
  // directly: in parallel mode the port defers sends into a per-partition
  // log the coordinator replays in serial order (noc/net_port.h).  In
  // serial mode it is a zero-cost passthrough.
  NetworkPort* net = nullptr;
  OffloadGovernor* governor = nullptr;
  NdpBufferManager* bufmgr = nullptr;
  EnergyCounters* energy = nullptr;
  RoCacheMirror* ro_cache = nullptr;
  WtaInflightTracker* wta_tracker = nullptr;
  // Non-null iff SystemConfig::latency_trace — the single guard every
  // instrumentation site uses (src/obs/latency.*).
  LatencyTracer* latency = nullptr;
  const KernelImage* image = nullptr;
  LaunchParams launch{};

  // Tenant table (null or size 1 = single-tenant: every helper falls back
  // to the legacy image/launch/governor fields, so components written
  // against the helpers behave identically on the classic path).
  const std::vector<TenantInfo>* tenants = nullptr;

  unsigned num_tenants() const {
    return tenants ? static_cast<unsigned>(tenants->size()) : 1u;
  }
  const KernelImage* image_of(unsigned t) const {
    return (tenants && t < tenants->size()) ? (*tenants)[t].image : image;
  }
  const LaunchParams& launch_of(unsigned t) const {
    return (tenants && t < tenants->size()) ? (*tenants)[t].launch : launch;
  }
  OffloadGovernor* governor_of(unsigned t) const {
    return (tenants && t < tenants->size() && (*tenants)[t].governor)
               ? (*tenants)[t].governor
               : governor;
  }
};

}  // namespace sndp
