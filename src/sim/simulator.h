// Top-level facade: builds the whole system (GPU + HMCs + memory network +
// governor) for a workload, runs it to completion, and returns a RunResult
// with timing, traffic, stall, and energy statistics.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto cfg = SystemConfig::paper();
//   cfg.governor.mode = OffloadMode::kDynamicCache;
//   VaddWorkload wl(ProblemScale::kSmall);
//   RunResult r = Simulator(cfg).run(wl);
//   std::cout << r.sm_cycles << " cycles, verified=" << r.verified << "\n";
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "energy/energy_model.h"
#include "isa/program.h"
#include "obs/epoch_timeline.h"
#include "obs/latency.h"
#include "offload/analyzer.h"
#include "sim/context.h"

namespace sndp {

class Workload;

struct RunResult {
  std::string workload;
  bool completed = false;  // false: hit the simulated-time safety valve
  bool aborted = false;    // an external abort poll stopped the run early
  bool verified = false;   // workload oracle check on final memory contents
  Cycle sm_cycles = 0;
  TimePs runtime_ps = 0;
  double ipc = 0.0;

  // Fig. 8 stall cycles (aggregated over SMs).
  std::uint64_t stall_dependency = 0;
  std::uint64_t stall_exec_busy = 0;
  std::uint64_t stall_warp_idle = 0;

  // Off-chip traffic split (bytes).
  std::uint64_t gpu_link_bytes = 0;
  std::uint64_t cube_link_bytes = 0;
  std::uint64_t inval_bytes = 0;  // §4.2 coherence overhead

  EnergyCounters counters{};
  EnergyBreakdown energy{};
  StatSet stats;

  // One sample per governor epoch (Fig. 8 dynamics): offload ratio, IPCs,
  // hit rates, link utilization, NSU occupancy.  Also serialized as the
  // `timeline` array in the sndp-sweep-v1 JSON.
  std::vector<EpochSample> timeline;

  // Request-lifecycle latency histograms (src/obs/latency.*); empty when
  // `SystemConfig::latency_trace` is off (latency_enabled distinguishes a
  // disabled run from a run with no tracked requests).
  bool latency_enabled = false;
  LatencySummary latency;

  double speedup_vs(const RunResult& baseline) const {
    return static_cast<double>(baseline.sm_cycles) / static_cast<double>(sm_cycles);
  }
};

class Simulator {
 public:
  explicit Simulator(const SystemConfig& cfg);

  // Runs `workload` to completion on a freshly-built system.
  RunResult run(Workload& workload);

  // For tests: run a pre-built kernel image directly (the workload's setup
  // must already have populated `gmem`).
  RunResult run_image(const KernelImage& image, const LaunchParams& launch,
                      class GlobalMemory& gmem, const std::string& name);

  const AnalyzerOptions& analyzer_options() const { return analyzer_opts_; }
  void set_analyzer_options(const AnalyzerOptions& opts) { analyzer_opts_ = opts; }

  // Optional external abort hook, polled between tick bursts.  Returning
  // true stops the run early with result.aborted set (used by SweepRunner
  // for per-point wall-clock timeouts).  The callback must be cheap.
  using AbortPoll = std::function<bool()>;
  void set_abort_poll(AbortPoll poll) { abort_poll_ = std::move(poll); }

  // Final-memory snapshot hook: when set, run(Workload&) deep-copies the
  // functional memory image into `sink` after the run (post-verify), so
  // callers that go through the workload path — the differential oracle,
  // image-dumping tools — can inspect or compare the final memory without
  // re-running setup themselves.
  void set_final_memory_sink(class GlobalMemory* sink) { final_memory_sink_ = sink; }

 private:
  SystemConfig cfg_;
  AnalyzerOptions analyzer_opts_{};
  AbortPoll abort_poll_;
  class GlobalMemory* final_memory_sink_ = nullptr;
};

}  // namespace sndp
