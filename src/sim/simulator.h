// Top-level facade: builds the whole system (GPU + HMCs + memory network +
// governor) for a workload, runs it to completion, and returns a RunResult
// with timing, traffic, stall, and energy statistics.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto cfg = SystemConfig::paper();
//   cfg.governor.mode = OffloadMode::kDynamicCache;
//   VaddWorkload wl(ProblemScale::kSmall);
//   RunResult r = Simulator(cfg).run(wl);
//   std::cout << r.sm_cycles << " cycles, verified=" << r.verified << "\n";
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "energy/energy_model.h"
#include "isa/program.h"
#include "obs/epoch_timeline.h"
#include "obs/latency.h"
#include "offload/analyzer.h"
#include "sim/context.h"

namespace sndp {

class Workload;

// One resident kernel stream in a multi-tenant run: a pre-built kernel image
// plus its launch geometry and arbiter inputs (weight for kWeightedShare,
// priority for kStrictPriority; both ignored by kRoundRobin).
struct TenantJob {
  const KernelImage* image = nullptr;
  LaunchParams launch{};
  std::string name;
  double weight = 1.0;
  unsigned priority = 0;
};

// A tenant described at the workload level (run_tenants builds the image and
// address space itself).  The workload object must outlive the call.
struct TenantDesc {
  Workload* workload = nullptr;
  double weight = 1.0;
  unsigned priority = 0;
};

// Per-tenant slice of a multi-tenant run (RunResult::tenants; empty on
// single-tenant runs so classic results are unchanged).
struct TenantResult {
  std::string name;
  bool verified = false;     // only set by the run_tenants path
  Cycle finish_cycle = 0;    // SM cycle at which the tenant's last CTA retired
  std::uint64_t issued = 0;  // SM instructions issued on this tenant's warps
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_merged = 0;
  std::uint64_t gov_block_instrs = 0;  // this tenant's governor climb signal
};

// Deterministic per-tenant setup parameters, shared by the timing path
// (Simulator::run_tenants) and the reference replay (diff_check_tenants):
// tenant 0 uses the exact classic seed (so its address space and contents
// are byte-identical to a solo run); later tenants perturb it by a
// golden-ratio stride.  Address spaces are kept disjoint by rounding the
// shared allocator up to a 16 MiB boundary before each tenant's setup.
inline std::uint64_t tenant_setup_seed(std::uint64_t placement_seed, unsigned tenant) {
  return (placement_seed ^ 0xABCDEFull) + 0x9E3779B97F4A7C15ull * tenant;
}
inline constexpr std::uint64_t kTenantBaseAlign = std::uint64_t{1} << 24;  // 16 MiB

struct RunResult {
  std::string workload;
  bool completed = false;  // false: hit the simulated-time safety valve
  bool aborted = false;    // an external abort poll stopped the run early
  bool verified = false;   // workload oracle check on final memory contents
  Cycle sm_cycles = 0;
  TimePs runtime_ps = 0;
  double ipc = 0.0;

  // Fig. 8 stall cycles (aggregated over SMs).
  std::uint64_t stall_dependency = 0;
  std::uint64_t stall_exec_busy = 0;
  std::uint64_t stall_warp_idle = 0;

  // Off-chip traffic split (bytes).
  std::uint64_t gpu_link_bytes = 0;
  std::uint64_t cube_link_bytes = 0;
  std::uint64_t inval_bytes = 0;  // §4.2 coherence overhead

  EnergyCounters counters{};
  EnergyBreakdown energy{};
  StatSet stats;

  // One sample per governor epoch (Fig. 8 dynamics): offload ratio, IPCs,
  // hit rates, link utilization, NSU occupancy.  Also serialized as the
  // `timeline` array in the sndp-sweep-v1 JSON.
  std::vector<EpochSample> timeline;

  // Request-lifecycle latency histograms (src/obs/latency.*); empty when
  // `SystemConfig::latency_trace` is off (latency_enabled distinguishes a
  // disabled run from a run with no tracked requests).
  bool latency_enabled = false;
  LatencySummary latency;

  // Machine-wide cycle stacks (src/obs/cycle_stack.*): per-tenant SM / NSU /
  // vault bucket counters, exhaustive over each component's counted cycles.
  // `cycle_stack.enabled` is false when `SystemConfig::profile` is off.
  CycleStackSummary cycle_stack;

  // Per-tenant results; empty on single-tenant runs.
  std::vector<TenantResult> tenants;

  double speedup_vs(const RunResult& baseline) const {
    return static_cast<double>(baseline.sm_cycles) / static_cast<double>(sm_cycles);
  }
};

class Simulator {
 public:
  explicit Simulator(const SystemConfig& cfg);

  // Runs `workload` to completion on a freshly-built system.
  RunResult run(Workload& workload);

  // For tests: run a pre-built kernel image directly (the workload's setup
  // must already have populated `gmem`).  Delegates to run_images with a
  // single job, so the single-tenant path is the one-job multi-tenant path.
  RunResult run_image(const KernelImage& image, const LaunchParams& launch,
                      class GlobalMemory& gmem, const std::string& name);

  // Multi-tenant core: N kernel streams resident at once, CTAs co-scheduled
  // under cfg.tenancy.arbiter, each tenant with its own offload governor.
  // All tenants share `gmem` (their address spaces must be disjoint for the
  // isolation invariants to hold — run_tenants arranges this).  One job is
  // bit-identical to the classic run_image path.
  RunResult run_images(const std::vector<TenantJob>& jobs, class GlobalMemory& gmem,
                       const std::string& name);

  // Workload-level multi-tenant entry: sets up each tenant in its own
  // 16 MiB-aligned slice of one shared GlobalMemory (tenant 0 laid out
  // exactly as a solo run would), builds each image, runs them
  // concurrently, and verifies every tenant's output region.
  RunResult run_tenants(const std::vector<TenantDesc>& tenants, const std::string& name);

  const AnalyzerOptions& analyzer_options() const { return analyzer_opts_; }
  void set_analyzer_options(const AnalyzerOptions& opts) { analyzer_opts_ = opts; }

  // Optional external abort hook, polled between tick bursts.  Returning
  // true stops the run early with result.aborted set (used by SweepRunner
  // for per-point wall-clock timeouts).  The callback must be cheap.
  using AbortPoll = std::function<bool()>;
  void set_abort_poll(AbortPoll poll) { abort_poll_ = std::move(poll); }

  // Final-memory snapshot hook: when set, run(Workload&) deep-copies the
  // functional memory image into `sink` after the run (post-verify), so
  // callers that go through the workload path — the differential oracle,
  // image-dumping tools — can inspect or compare the final memory without
  // re-running setup themselves.
  void set_final_memory_sink(class GlobalMemory* sink) { final_memory_sink_ = sink; }

 private:
  SystemConfig cfg_;
  AnalyzerOptions analyzer_opts_{};
  AbortPoll abort_poll_;
  class GlobalMemory* final_memory_sink_ = nullptr;
};

}  // namespace sndp
