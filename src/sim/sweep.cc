#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/json.h"
#include "mem/placement.h"
#include "workloads/registry.h"

namespace sndp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void outcome_to_json(JsonWriter& w, const SweepOutcome& o) {
  const RunResult& r = o.result;
  w.begin_object();
  w.key("id").value(o.point.id);
  w.key("workload").value(o.point.workload);
  w.key("seed").value(static_cast<std::uint64_t>(o.point.cfg.placement_seed));
  w.key("placement").value(placement_policy_name(o.point.cfg.placement.policy));
  w.key("num_hmcs").value(static_cast<std::uint64_t>(o.point.cfg.num_hmcs));
  w.key("ran").value(o.ran);
  w.key("error").value(o.error);
  w.key("completed").value(r.completed);
  w.key("aborted").value(r.aborted);
  w.key("verified").value(r.verified);
  w.key("sm_cycles").value(static_cast<std::uint64_t>(r.sm_cycles));
  w.key("runtime_ps").value(static_cast<std::uint64_t>(r.runtime_ps));
  w.key("ipc").value(r.ipc);
  w.key("stall").begin_object();
  w.key("dependency").value(r.stall_dependency);
  w.key("exec_busy").value(r.stall_exec_busy);
  w.key("warp_idle").value(r.stall_warp_idle);
  w.end_object();
  w.key("traffic").begin_object();
  w.key("gpu_link_bytes").value(r.gpu_link_bytes);
  w.key("cube_link_bytes").value(r.cube_link_bytes);
  w.key("inval_bytes").value(r.inval_bytes);
  w.end_object();
  w.key("energy_j").begin_object();
  w.key("gpu").value(r.energy.gpu_j);
  w.key("nsu").value(r.energy.nsu_j);
  w.key("hmc_noc").value(r.energy.hmc_noc_j);
  w.key("offchip").value(r.energy.offchip_j);
  w.key("dram").value(r.energy.dram_j);
  w.key("total").value(r.energy.total());
  w.end_object();
  w.key("counters").begin_object();
  w.key("sm_lane_ops").value(r.counters.sm_lane_ops);
  w.key("nsu_lane_ops").value(r.counters.nsu_lane_ops);
  w.key("l1_accesses").value(r.counters.l1_accesses);
  w.key("l2_accesses").value(r.counters.l2_accesses);
  w.key("gpu_wire_bytes").value(r.counters.gpu_wire_bytes);
  w.key("hmc_noc_bytes").value(r.counters.hmc_noc_bytes);
  w.key("dram_activates").value(r.counters.dram_activates);
  w.key("dram_read_bytes").value(r.counters.dram_read_bytes);
  w.key("dram_write_bytes").value(r.counters.dram_write_bytes);
  w.key("offchip_bytes").value(r.counters.offchip_bytes);
  w.key("sm_active_seconds").value(r.counters.sm_active_seconds);
  w.end_object();
  // Per-epoch governor/metrics timeline (Fig. 8 dynamics).  Deterministic
  // sim content — must stay ahead of the "timing" object below.
  w.key("timeline").begin_array();
  for (const EpochSample& s : r.timeline) {
    w.begin_object();
    w.key("epoch").value(s.epoch);
    w.key("end_cycle").value(static_cast<std::uint64_t>(s.end_cycle));
    w.key("end_ps").value(static_cast<std::uint64_t>(s.end_ps));
    w.key("ratio").value(s.ratio);
    w.key("step").value(s.step);
    w.key("direction").value(static_cast<std::int64_t>(s.direction));
    w.key("epoch_ipc").value(s.epoch_ipc);
    w.key("block_instrs").value(s.block_instrs);
    w.key("sm_ipc").value(s.sm_ipc);
    w.key("l1_hit_rate").value(s.l1_hit_rate);
    w.key("l2_hit_rate").value(s.l2_hit_rate);
    w.key("gpu_up_util").value(s.gpu_up_util);
    w.key("gpu_down_util").value(s.gpu_down_util);
    w.key("cube_util").value(s.cube_util);
    w.key("nsu_occupancy").value(s.nsu_occupancy);
    w.key("valve_pressure").value(s.valve_pressure);
    w.key("pages_migrated").value(s.pages_migrated);
    w.end_object();
  }
  w.end_array();
  // Request-lifecycle latency histograms (src/obs/latency.*).  Like the
  // timeline, this is deterministic sim content and must precede "timing".
  if (r.latency_enabled) {
    const LatencySummary& lat = r.latency;
    w.key("latency").begin_object();
    w.key("started").value(lat.started);
    w.key("finished").value(lat.finished);
    w.key("cancelled").value(lat.cancelled);
    w.key("spans_sampled").value(lat.spans_sampled);
    w.key("spans_dropped").value(lat.spans_dropped);
    w.key("classes").begin_object();
    for (std::size_t c = 0; c < kNumPathClasses; ++c) {
      const Log2Histogram& h = lat.per_class[c];
      w.key(path_class_name(static_cast<PathClass>(c))).begin_object();
      w.key("count").value(h.count());
      w.key("sum_ps").value(h.sum());
      w.key("min_ps").value(h.min());
      w.key("max_ps").value(h.max());
      w.key("p50_ps").value(h.percentile(0.50));
      w.key("p95_ps").value(h.percentile(0.95));
      w.key("p99_ps").value(h.percentile(0.99));
      w.key("segments_ps").begin_object();
      for (std::size_t seg = 0; seg < kNumLatSegments; ++seg) {
        w.key(lat_segment_name(static_cast<LatSegment>(seg)))
            .value(lat.seg_sum_ps[c][seg]);
      }
      w.end_object();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  // Machine-wide cycle stacks (src/obs/cycle_stack.*).  Deterministic sim
  // content — must precede "timing".  Machine totals per component; the
  // per-tenant rows (plus the shared row) appear only on multi-tenant runs,
  // mirroring the `cyc.*` stat export.
  if (r.cycle_stack.enabled) {
    const CycleStackSummary& cs = r.cycle_stack;
    auto emit_row = [&w](const auto& stack, unsigned row, auto name_of,
                         std::size_t nbuckets) {
      w.begin_object();
      for (std::size_t b = 0; b < nbuckets; ++b) {
        w.key(name_of(b)).value(stack.rows[row][b]);
      }
      w.key("total").value(stack.row_total(row));
      w.end_object();
    };
    auto emit_totals = [&w](const auto& stack, auto name_of, std::size_t nbuckets) {
      w.begin_object();
      for (std::size_t b = 0; b < nbuckets; ++b) {
        w.key(name_of(b)).value(stack.bucket_total(b));
      }
      w.key("total").value(stack.total());
      w.end_object();
    };
    const auto sm_name = [](std::size_t b) {
      return sm_bucket_name(static_cast<SmBucket>(b));
    };
    const auto nsu_name = [](std::size_t b) {
      return nsu_bucket_name(static_cast<NsuBucket>(b));
    };
    const auto vault_name = [](std::size_t b) {
      return vault_bucket_name(static_cast<VaultBucket>(b));
    };
    w.key("cycle_stack").begin_object();
    w.key("tenants").value(static_cast<std::uint64_t>(cs.tenants));
    w.key("sm");
    emit_totals(cs.sm, sm_name, kNumSmBuckets);
    w.key("nsu");
    emit_totals(cs.nsu, nsu_name, kNumNsuBuckets);
    w.key("vault");
    emit_totals(cs.vault, vault_name, kNumVaultBuckets);
    if (cs.tenants > 1) {
      w.key("rows").begin_array();
      for (unsigned row = 0; row <= cs.tenants; ++row) {
        w.begin_object();
        w.key("row").value(row == cs.tenants ? "shared" : "t" + std::to_string(row));
        w.key("sm");
        emit_row(cs.sm, row, sm_name, kNumSmBuckets);
        w.key("nsu");
        emit_row(cs.nsu, row, nsu_name, kNumNsuBuckets);
        w.key("vault");
        emit_row(cs.vault, row, vault_name, kNumVaultBuckets);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.key("stats").begin_object();
  for (const auto& [name, value] : r.stats.values()) {
    w.key(name).value(value);
  }
  w.end_object();
  // Per-tenant results (multi-tenant runs only; deterministic sim content).
  if (!r.tenants.empty()) {
    w.key("tenants").begin_array();
    for (const TenantResult& t : r.tenants) {
      w.begin_object();
      w.key("name").value(t.name);
      w.key("verified").value(t.verified);
      w.key("finish_cycle").value(static_cast<std::uint64_t>(t.finish_cycle));
      w.key("issued_instrs").value(t.issued);
      w.key("l2_hits").value(t.l2_hits);
      w.key("l2_misses").value(t.l2_misses);
      w.key("l2_merged").value(t.l2_merged);
      w.key("gov_block_instrs").value(t.gov_block_instrs);
      w.end_object();
    }
    w.end_array();
  }
  // Wall-clock metadata: the ONLY per-point content allowed to differ
  // between serial and parallel runs of the same sweep.
  w.key("timing").begin_object();
  w.key("wall_seconds").value(o.wall_seconds);
  w.key("timed_out").value(o.timed_out);
  w.end_object();
  w.end_object();
}

}  // namespace

std::size_t SweepRunner::add(SweepPoint point) {
  if (ran_) throw std::logic_error("SweepRunner: add() after run()");
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::uint64_t SweepRunner::derived_seed(std::uint64_t base_seed, const std::string& point_id) {
  return splitmix64(base_seed ^ fnv1a(point_id));
}

void SweepRunner::run_point(std::size_t index) {
  SweepOutcome& out = outcomes_[index];
  out.point = points_[index];
  const auto start = Clock::now();
  try {
    Simulator sim(out.point.cfg);
    sim.set_analyzer_options(out.point.analyzer);
    if (opts_.point_timeout_s > 0.0) {
      // Decimate the steady_clock reads: the poll runs once per 64-edge
      // burst, which is far hotter than a syscall-backed clock wants.
      auto counter = std::make_shared<unsigned>(0);
      const double budget = opts_.point_timeout_s;
      auto timed_out = &out.timed_out;
      sim.set_abort_poll([start, budget, counter, timed_out] {
        if ((++*counter & 0x3F) != 0) return false;
        if (seconds_since(start) < budget) return false;
        *timed_out = true;
        return true;
      });
    }
    auto wl = make_workload(out.point.workload, out.point.scale);
    out.result = sim.run(*wl);
    out.ran = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_seconds = seconds_since(start);
}

const std::vector<SweepOutcome>& SweepRunner::run() {
  if (ran_) return outcomes_;
  ran_ = true;
  outcomes_.resize(points_.size());

  unsigned jobs = opts_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min<unsigned>(jobs, std::max<std::size_t>(points_.size(), 1));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;
  const auto sweep_start = Clock::now();

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points_.size()) return;
      run_point(i);
      const std::size_t finished = done.fetch_add(1) + 1;
      if (opts_.progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(stderr, "\r[%zu/%zu] %-48s %6.1fs ", finished, points_.size(),
                     points_[i].id.c_str(), seconds_since(sweep_start));
        if (finished == points_.size()) std::fputc('\n', stderr);
        std::fflush(stderr);
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return outcomes_;
}

const RunResult& SweepRunner::result(std::size_t index) const {
  const SweepOutcome& o = outcome(index);
  if (!o.ran) {
    throw std::runtime_error("sweep point '" + o.point.id + "' failed: " +
                             (o.error.empty() ? "not run" : o.error));
  }
  return o.result;
}

std::string sweep_to_json(const std::vector<SweepOutcome>& outcomes, unsigned jobs) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("sndp-sweep-v1");
  w.key("points").begin_array();
  for (const SweepOutcome& o : outcomes) outcome_to_json(w, o);
  w.end_array();
  double wall = 0.0;
  for (const SweepOutcome& o : outcomes) wall += o.wall_seconds;
  w.key("meta").begin_object();
  w.key("jobs").value(jobs);
  w.key("num_points").value(static_cast<std::uint64_t>(outcomes.size()));
  w.key("total_point_wall_seconds").value(wall);
  w.end_object();
  w.end_object();
  return w.str();
}

bool write_sweep_json(const std::string& path, const std::vector<SweepOutcome>& outcomes,
                      unsigned jobs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = sweep_to_json(outcomes, jobs);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace sndp
