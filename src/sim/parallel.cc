#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/units.h"
#include "noc/net_port.h"
#include "noc/network.h"
#include "sim/clock.h"

namespace sndp {

TimePs parallel_lookahead_ps(const SystemConfig& cfg) {
  // Earliest cross-partition arrival for a send issued at tick instant T:
  // the sender's `now` argument is >= T - (one period of its clock) + 1
  // (a vault completion is discovered at the next DRAM edge after it
  // becomes ready), and Network::send adds at least the header
  // serialization plus one link propagation before delivery.
  const TimePs min_wire =
      cfg.link.propagation_ps + serialize_ps(cfg.link.header_bytes, cfg.link.gb_per_s);
  TimePs max_period = 0;
  for (const std::uint64_t khz :
       {cfg.clocks.sm_khz, cfg.clocks.l2_khz, cfg.clocks.dram_khz, cfg.clocks.nsu_khz}) {
    // Upper bound on the spacing between consecutive edges of this clock.
    const TimePs period = tick_time_ps(1, khz) + 1;
    if (period > max_period) max_period = period;
  }
  return min_wire > max_period ? min_wire - max_period : 0;
}

namespace {

// Commands broadcast from the coordinator to the worker partitions.  The
// command word plus its operands are published before a release-increment
// of `seq`; workers acquire-load `seq`, execute, then release-decrement
// `pending` — which is the full happens-before edge for both the command
// operands and everything the window execution wrote.
enum class Cmd : std::uint8_t { kWindow, kValve, kFinish, kStop };

struct Control {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<unsigned> pending{0};
  Cmd cmd = Cmd::kWindow;
  TimePs a = 0;     // window end / valve edge / final instant
  bool flag = false;  // kFinish: consume the edge at `a`

  void publish(Cmd c, TimePs a_ps, bool f, unsigned workers) {
    cmd = c;
    a = a_ps;
    flag = f;
    pending.store(workers, std::memory_order_relaxed);
    seq.fetch_add(1, std::memory_order_release);
  }

  void wait_done() const {
    unsigned spins = 0;
    while (pending.load(std::memory_order_acquire) != 0) {
      if (++spins > 128) std::this_thread::yield();
    }
  }
};

void run_command(Scheduler& part, const Control& ctl) {
  switch (ctl.cmd) {
    case Cmd::kWindow:
      part.run_window(ctl.a);
      break;
    case Cmd::kValve:
      part.run_valve_step(ctl.a);
      break;
    case Cmd::kFinish:
      part.finish_to(ctl.a, ctl.flag);
      break;
    case Cmd::kStop:
      break;
  }
}

void worker_loop(Scheduler& part, Control& ctl) {
  std::uint64_t seen = 0;
  while (true) {
    unsigned spins = 0;
    while (ctl.seq.load(std::memory_order_acquire) == seen) {
      // Spin briefly, then yield: on a machine with fewer cores than
      // partitions the yield hands the quantum to whoever holds the work.
      if (++spins > 128) std::this_thread::yield();
    }
    ++seen;
    if (ctl.cmd == Cmd::kStop) {
      ctl.pending.fetch_sub(1, std::memory_order_release);
      return;
    }
    run_command(part, ctl);
    ctl.pending.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace

ParallelOutcome run_parallel(const std::vector<Scheduler*>& parts,
                             const std::vector<NetworkPort*>& ports, Network& net,
                             TimePs lookahead_ps, TimePs limit_ps,
                             const ParallelHooks& hooks) {
  ParallelOutcome out;
  const unsigned workers = static_cast<unsigned>(parts.size()) - 1;

  Control ctl;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned p = 1; p <= workers; ++p) {
    threads.emplace_back(worker_loop, std::ref(*parts[p]), std::ref(ctl));
  }

  // Broadcast a command, run the hub's share on this thread, wait for the
  // workers, then replay every deferred send through the shared Network in
  // serial tick order (the replay sort key reconstructs the serial
  // scheduler's global tick order; see noc/net_port.h).
  std::vector<NetworkPort::DeferredSend> replay;
  auto barrier = [&](Cmd cmd, TimePs a, bool flag) {
    ctl.publish(cmd, a, flag, workers);
    run_command(*parts[0], ctl);
    ctl.wait_done();
    replay.clear();
    for (NetworkPort* port : ports) {
      auto& log = port->pending_sends();
      for (auto& d : log) replay.push_back(std::move(d));
      log.clear();
    }
    std::stable_sort(replay.begin(), replay.end(),
                     [](const NetworkPort::DeferredSend& x, const NetworkPort::DeferredSend& y) {
                       if (x.order_ps != y.order_ps) return x.order_ps < y.order_ps;
                       if (x.domain_rank != y.domain_rank) return x.domain_rank < y.domain_rank;
                       return x.member_rank < y.member_rank;
                     });
    for (auto& d : replay) net.send(std::move(d.pkt), d.now_arg);
    if (hooks.on_barrier) hooks.on_barrier();
  };

  auto stop_workers = [&] {
    ctl.publish(Cmd::kStop, 0, false, workers);
    ctl.wait_done();
    for (std::thread& t : threads) t.join();
  };

  bool any_window = false;
  while (true) {
    // Post-replay bids.  The workers are parked at the barrier, so polling
    // their schedulers from this thread is race-free, and the poll sees
    // every packet the replay just delivered.
    TimePs window_start = kTimeNever;
    for (Scheduler* part : parts) {
      const TimePs bid = part->poll_bid();
      if (bid < window_start) window_start = bid;
    }

    if (window_start == kTimeNever) {
      if (hooks.system_idle()) {
        out.completed = true;
        break;
      }
      // Quiescent but not idle: in-flight state no hint covers (a modeling
      // bug).  Serial dead-marches to the valve without ticking; mirror it.
      TimePs valve_edge = kTimeNever;
      for (const Scheduler* part : parts) {
        valve_edge = std::min(valve_edge, part->local_valve_edge());
      }
      barrier(Cmd::kFinish, valve_edge, /*consume*/ true);
      ++out.windows;  // the fix-up pass counts as one barrier
      out.final_ps = valve_edge;
      stop_workers();
      return out;
    }

    if (window_start >= limit_ps) {
      // All remaining work sits at/after the time limit: run the serial
      // scheduler's single valve-clamped step, globally.
      TimePs valve_edge = kTimeNever;
      for (const Scheduler* part : parts) {
        valve_edge = std::min(valve_edge, part->local_valve_edge());
      }
      barrier(Cmd::kValve, valve_edge, false);
      ++out.windows;
      out.final_ps = valve_edge;
      stop_workers();
      return out;
    }

    barrier(Cmd::kWindow, window_start + lookahead_ps, false);
    ++out.windows;
    any_window = true;

    if (hooks.abort_poll && hooks.abort_poll()) {
      out.aborted = true;
      break;
    }
  }

  // Completed or aborted: bring every partition to the final instant (the
  // serial scheduler's last step consumed edges up to and including it on
  // every domain).  A run that never executed a window left no edge
  // consumed anywhere — exactly like the serial quiescent first step.
  TimePs final_ps = 0;
  for (const Scheduler* part : parts) final_ps = std::max(final_ps, part->now());
  if (any_window) barrier(Cmd::kFinish, final_ps, /*consume*/ true);
  out.final_ps = final_ps;
  stop_workers();
  return out;
}

}  // namespace sndp
