// TimedChannel<T>: an in-order message channel with per-message delivery
// times.  The sender pushes with an absolute ready time; the receiver polls
// with the current time and pops messages whose time has come.  FIFO order
// is preserved even if a later push computes an earlier ready time (the
// ready time is clamped to be monotonic, which models an in-order pipe).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/types.h"

namespace sndp {

template <typename T>
class TimedChannel {
 public:
  void push(T msg, TimePs ready_ps) {
    if (!queue_.empty() && ready_ps < queue_.back().ready_ps) {
      ready_ps = queue_.back().ready_ps;  // keep FIFO / in-order semantics
    }
    queue_.push_back(Entry{ready_ps, std::move(msg)});
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // True if the head message is deliverable at `now`.
  bool ready(TimePs now) const { return !queue_.empty() && queue_.front().ready_ps <= now; }

  // Peek at the head message (must be non-empty).
  const T& front() const { return queue_.front().msg; }
  TimePs front_ready_ps() const { return queue_.front().ready_ps; }
  // Delivery time of the most recently pushed message (after the monotonic
  // clamp) — what a fast-forward wake hint should be lowered to on push.
  TimePs back_ready_ps() const { return queue_.back().ready_ps; }

  // Pop the head if deliverable at `now`.
  std::optional<T> pop_ready(TimePs now) {
    if (!ready(now)) return std::nullopt;
    T msg = std::move(queue_.front().msg);
    queue_.pop_front();
    return msg;
  }

  // Pop unconditionally (used when draining at end of simulation).
  T pop() {
    T msg = std::move(queue_.front().msg);
    queue_.pop_front();
    return msg;
  }

 private:
  struct Entry {
    TimePs ready_ps;
    T msg;
  };
  std::deque<Entry> queue_;
};

}  // namespace sndp
