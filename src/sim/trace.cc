#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "common/json.h"

namespace sndp {
namespace {

// Full JSON string escaping (shared with the sweep/stats writers): control
// characters in event or row names must not leak into the document raw, or
// Perfetto/chrome://tracing rejects the whole trace.
std::string escape(const std::string& s) { return json_escape(s); }

double us(TimePs ps) { return static_cast<double>(ps) * 1e-6; }

}  // namespace

void TraceWriter::complete(const std::string& name, const std::string& category, int tid,
                           TimePs start_ps, TimePs dur_ps) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{'X', name, category, tid, start_ps, dur_ps});
}

void TraceWriter::instant(const std::string& name, const std::string& category, int tid,
                          TimePs at_ps) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{'i', name, category, tid, at_ps, 0});
}

void TraceWriter::counter(const std::string& name, int tid, TimePs at_ps, double value) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{'C', name, "counter", tid, at_ps, 0, value});
}

void TraceWriter::flow(char phase, const std::string& name, const std::string& category, int tid,
                       TimePs at_ps, std::uint64_t id) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{phase, name, category, tid, at_ps, 0, 0.0, id});
}

void TraceWriter::name_row(int tid, const std::string& name) {
  row_names_.emplace_back(tid, name);
}

std::string TraceWriter::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : row_names_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << escape(name) << "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\""
       << escape(e.name) << "\",\"cat\":\"" << escape(e.category) << "\",\"ts\":" << us(e.start_ps);
    if (e.phase == 'X') os << ",\"dur\":" << us(e.dur_ps);
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    // JsonWriter::number keeps NaN/Inf out of the document (they would make
    // the whole trace unparseable).
    if (e.phase == 'C') os << ",\"args\":{\"value\":" << JsonWriter::number(e.value) << '}';
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      os << ",\"id\":" << e.flow_id;
      if (e.phase == 'f') os << ",\"bp\":\"e\"";
    }
    os << '}';
  }
  // Chrome-trace allows arbitrary top-level keys next to traceEvents; use
  // one to surface capacity drops so a truncated trace is diagnosable from
  // the file itself.
  os << "],\"metadata\":{\"emitted_events\":" << events_.size()
     << ",\"dropped_events\":" << dropped_ << "}}";
  return os.str();
}

bool TraceWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace sndp
