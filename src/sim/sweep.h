// Parallel experiment sweep runner.
//
// The paper's evaluation (Figs. 5-11, Tables 1-2) is a grid of independent
// (SystemConfig, workload) simulations; `Simulator::run_image` owns all of
// its state, so the grid is embarrassingly parallel.  SweepRunner executes
// the points on a thread pool and guarantees that the results — including
// every StatSet counter — are byte-identical to a serial run:
//
//   * each point's seed is a pure function of the point itself (the
//     caller-set `cfg.placement_seed`, optionally derived per point with
//     `derived_seed()`), never of execution order or thread identity;
//   * outcomes are stored by submission index, so iteration order is the
//     submission order regardless of which worker finished first;
//   * the only nondeterministic fields (wall-clock timing, timeout flags)
//     are segregated into SweepOutcome metadata and the "timing" object of
//     the JSON export, never into RunResult/StatSet.
//
// Per-point wall-clock timeouts are implemented with Simulator's abort
// poll: a timed-out point is marked `timed_out` and its partial result has
// `aborted == true`.  A point whose Simulator throws is recorded in
// `error` instead of tearing down the whole sweep.
//
// Typical use (see bench/bench_util.h):
//
//   SweepRunner runner({.jobs = 4});
//   auto i = runner.add({.id = "VADD/dyn", .workload = "VADD", .cfg = cfg});
//   runner.run();
//   const RunResult& r = runner.result(i);
//   write_sweep_json("out.json", runner.outcomes());
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "offload/analyzer.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace sndp {

struct SweepPoint {
  std::string id;  // unique human-readable label, e.g. "fig09/VADD/static0.4"
  std::string workload;
  ProblemScale scale = ProblemScale::kSmall;
  SystemConfig cfg{};
  AnalyzerOptions analyzer{};
};

struct SweepOutcome {
  SweepPoint point;
  RunResult result;
  bool ran = false;       // the simulator produced a result (even if aborted)
  bool timed_out = false; // the per-point wall-clock timeout fired
  std::string error;      // non-empty: the simulator threw
  double wall_seconds = 0.0;  // timing metadata; excluded from determinism
};

struct SweepOptions {
  unsigned jobs = 1;            // worker threads; 0 = hardware_concurrency
  double point_timeout_s = 0.0; // wall-clock budget per point; 0 = unlimited
  bool progress = false;        // live progress line on stderr
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

  // Queues a point; returns its index.  Points run in submission order
  // under jobs == 1.
  std::size_t add(SweepPoint point);

  std::size_t size() const { return points_.size(); }

  // Executes every queued point; returns the outcomes in submission order.
  // Safe to call once.
  const std::vector<SweepOutcome>& run();

  const std::vector<SweepOutcome>& outcomes() const { return outcomes_; }
  const SweepOutcome& outcome(std::size_t index) const { return outcomes_.at(index); }

  // The RunResult for a point; throws std::runtime_error (with the point id
  // and the recorded error) if the point failed to run.
  const RunResult& result(std::size_t index) const;

  // Deterministic per-point seed derivation: a pure function of a base seed
  // and the point id, stable across platforms, threads, and runs.  Callers
  // that want distinct placements per point without hand-picking seeds use
  //   point.cfg.placement_seed = SweepRunner::derived_seed(base, point.id);
  static std::uint64_t derived_seed(std::uint64_t base_seed, const std::string& point_id);

 private:
  void run_point(std::size_t index);

  SweepOptions opts_;
  std::vector<SweepPoint> points_;
  std::vector<SweepOutcome> outcomes_;
  bool ran_ = false;
};

// Serializes sweep outcomes to the sndp-sweep-v1 JSON document: one entry
// per point with identity, completion flags, headline metrics, the energy
// breakdown, and the full StatSet counter map.  Wall-clock data lives under
// the per-point "timing" key and the top-level "meta" key so consumers can
// strip it when diffing serial vs parallel runs.
std::string sweep_to_json(const std::vector<SweepOutcome>& outcomes, unsigned jobs);

// Writes sweep_to_json() to `path`; returns false on I/O failure.
bool write_sweep_json(const std::string& path, const std::vector<SweepOutcome>& outcomes,
                      unsigned jobs);

}  // namespace sndp
