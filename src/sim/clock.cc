#include "sim/clock.h"

#include <stdexcept>

namespace sndp {

TimePs Scheduler::naive_step() {
  // Find the earliest edge.
  TimePs earliest = kTimeNever;
  for (const ClockDomain* d : domains_) {
    const TimePs t = d->next_time();
    if (t < earliest) earliest = t;
  }
  now_ = earliest;
  // Tick every domain whose edge lands exactly at this instant, in
  // registration order (deterministic tie-break).
  for (ClockDomain* d : domains_) {
    if (d->next_time() == earliest) d->run_tick();
  }
  return now_;
}

TimePs Scheduler::step() {
  if (domains_.empty()) throw std::logic_error("Scheduler: no clock domains");
  if (!fast_forward_) return naive_step();

  // Earliest edge with pending work across all domains.  Hints are
  // re-polled every step: a tick in one domain may have pushed work into
  // another (cross-domain channels), so cached values would go stale.
  TimePs target = kTimeNever;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    work_edge_[i] = domains_[i]->next_work_time(now_);
    if (work_edge_[i] < target) target = work_edge_[i];
  }
  quiescent_ = (target == kTimeNever);
  if (quiescent_) return now_;  // nothing to do; caller decides what's next

  if (target >= limit_ps_) {
    // Work exists only at/after the valve.  Naive stepping would tick dead
    // edges up to the first edge at/after the limit and stop there; land on
    // that same edge.  If the work edge *is* that edge, it still ticks.
    TimePs valve_edge = kTimeNever;
    for (const ClockDomain* d : domains_) {
      const TimePs t =
          tick_time_ps(d->first_cycle_at_or_after(limit_ps_), d->freq_khz());
      if (t < valve_edge) valve_edge = t;
    }
    if (valve_edge < target) target = valve_edge;
  }

  now_ = target;
  for (ClockDomain* d : domains_) {
    d->skip_until(target);  // consume workless edges below the target
    if (d->next_time() != target) continue;
    // Re-poll this domain's work at the edge: an earlier domain ticking at
    // this same instant may have pushed work that is consumable right now
    // (e.g. a zero-latency channel push), which the pre-step hint missed.
    if (d->next_work_time(target) == target) {
      d->run_tick();
    } else {
      d->skip_tick();  // edge coincides, but this domain's work is later
    }
  }
  return now_;
}

TimePs Scheduler::advance_to_limit() {
  if (domains_.empty()) throw std::logic_error("Scheduler: no clock domains");
  if (!fast_forward_) {
    while (now_ < limit_ps_) naive_step();
    return now_;
  }
  TimePs valve_edge = kTimeNever;
  for (const ClockDomain* d : domains_) {
    const TimePs t =
        tick_time_ps(d->first_cycle_at_or_after(limit_ps_), d->freq_khz());
    if (t < valve_edge) valve_edge = t;
  }
  for (ClockDomain* d : domains_) {
    d->skip_until(valve_edge);
    if (d->next_time() == valve_edge) d->skip_tick();
  }
  now_ = valve_edge;
  return now_;
}

}  // namespace sndp
