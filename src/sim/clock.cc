#include "sim/clock.h"

#include <stdexcept>

namespace sndp {

TimePs Scheduler::step() {
  if (domains_.empty()) throw std::logic_error("Scheduler: no clock domains");
  // Find the earliest edge.
  TimePs earliest = kTimeNever;
  for (const ClockDomain* d : domains_) {
    const TimePs t = d->next_time();
    if (t < earliest) earliest = t;
  }
  now_ = earliest;
  // Tick every domain whose edge lands exactly at this instant, in
  // registration order (deterministic tie-break).
  for (ClockDomain* d : domains_) {
    if (d->next_time() == earliest) d->run_tick();
  }
  return now_;
}

}  // namespace sndp
