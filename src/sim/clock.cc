#include "sim/clock.h"

#include <stdexcept>

namespace sndp {

TimePs Scheduler::naive_step() {
  // Find the earliest edge.
  TimePs earliest = kTimeNever;
  for (const ClockDomain* d : domains_) {
    const TimePs t = d->next_time();
    if (t < earliest) earliest = t;
  }
  now_ = earliest;
  // Tick every domain whose edge lands exactly at this instant, in
  // registration order (deterministic tie-break).
  for (ClockDomain* d : domains_) {
    if (d->next_time() == earliest) d->run_tick();
  }
  return now_;
}

TimePs Scheduler::step() {
  if (domains_.empty()) throw std::logic_error("Scheduler: no clock domains");
  if (!fast_forward_) return naive_step();

  // Earliest edge with pending work across all domains.  Hints are
  // re-polled every step: a tick in one domain may have pushed work into
  // another (cross-domain channels), so cached values would go stale.
  TimePs target = kTimeNever;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    work_edge_[i] = domains_[i]->next_work_time(now_);
    if (work_edge_[i] < target) target = work_edge_[i];
  }
  quiescent_ = (target == kTimeNever);
  if (quiescent_) return now_;  // nothing to do; caller decides what's next

  if (target >= limit_ps_) {
    // Work exists only at/after the valve.  Naive stepping would tick dead
    // edges up to the first edge at/after the limit and stop there; land on
    // that same edge.  If the work edge *is* that edge, it still ticks.
    TimePs valve_edge = kTimeNever;
    for (const ClockDomain* d : domains_) {
      const TimePs t =
          tick_time_ps(d->first_cycle_at_or_after(limit_ps_), d->freq_khz());
      if (t < valve_edge) valve_edge = t;
    }
    if (valve_edge < target) target = valve_edge;
  }

  now_ = target;
  for (ClockDomain* d : domains_) {
    d->skip_until(target);  // consume workless edges below the target
    if (d->next_time() != target) continue;
    // Re-poll this domain's work at the edge: an earlier domain ticking at
    // this same instant may have pushed work that is consumable right now
    // (e.g. a zero-latency channel push), which the pre-step hint missed.
    if (d->next_work_time(target) == target) {
      d->run_tick();
    } else {
      d->skip_tick();  // edge coincides, but this domain's work is later
    }
  }
  return now_;
}

TimePs Scheduler::poll_bid() {
  TimePs target = kTimeNever;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const TimePs t = domains_[i]->next_work_time(now_);
    if (t < target) target = t;
  }
  return target;
}

TimePs Scheduler::local_valve_edge() const {
  TimePs edge = kTimeNever;
  for (const ClockDomain* d : domains_) {
    const TimePs t =
        tick_time_ps(d->first_cycle_at_or_after(limit_ps_), d->freq_khz());
    if (t < edge) edge = t;
  }
  return edge;
}

TimePs Scheduler::run_window(TimePs end) {
  if (domains_.empty()) throw std::logic_error("Scheduler: no clock domains");
  while (true) {
    // Poll all local domains for the earliest work target, exactly as the
    // serial step() does globally.
    TimePs target = kTimeNever;
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      work_edge_[i] = domains_[i]->next_work_time(now_);
      if (work_edge_[i] < target) target = work_edge_[i];
    }
    quiescent_ = (target == kTimeNever);
    // A target at/after the window end is the partition's bid for the next
    // window; one at/after the time limit belongs to the globally decided
    // valve step (run_valve_step) — either way, stop without executing.
    if (target >= end || target >= limit_ps_) return target;
    quiescent_ = false;

    if (fast_forward_) {
      // Serial fast-forward step body at `target` (no valve clamp: targets
      // at/after the limit never reach this point).
      now_ = target;
      for (ClockDomain* d : domains_) {
        d->skip_until(target);
        if (d->next_time() != target) continue;
        if (d->next_work_time(target) == target) {
          d->run_tick();
        } else {
          d->skip_tick();
        }
      }
    } else {
      // Naive marching: tick EVERY local edge up to and including the work
      // target — serial naive stepping ticks workless edges too, and the
      // per-cycle counters some components keep in naive mode depend on it.
      while (true) {
        TimePs earliest = kTimeNever;
        for (const ClockDomain* d : domains_) {
          const TimePs t = d->next_time();
          if (t < earliest) earliest = t;
        }
        if (earliest > target) break;
        now_ = earliest;
        for (ClockDomain* d : domains_) {
          if (d->next_time() == earliest) d->run_tick();
        }
      }
    }
  }
}

void Scheduler::run_valve_step(TimePs global_valve_edge) {
  if (fast_forward_) {
    // The serial step() with its target clamped to the valve edge.  Every
    // remaining local work target is >= the global edge (it is the minimum
    // first-edge-at/after-limit over all partitions), so the re-poll at a
    // coinciding edge ticks exactly when local work lands on the edge.
    now_ = global_valve_edge;
    for (ClockDomain* d : domains_) {
      d->skip_until(global_valve_edge);
      if (d->next_time() != global_valve_edge) continue;
      if (d->next_work_time(global_valve_edge) == global_valve_edge) {
        d->run_tick();
      } else {
        d->skip_tick();
      }
    }
  } else {
    // Serial naive stepping breaks out of the main loop only after the step
    // whose instant reaches the limit, so every edge up to and including
    // the valve edge gets ticked.
    finish_to(global_valve_edge, true);
    now_ = global_valve_edge;
  }
}

void Scheduler::finish_to(TimePs f, bool consume_edge_at_f) {
  if (fast_forward_) {
    for (ClockDomain* d : domains_) {
      d->skip_until(f);
      if (consume_edge_at_f && d->next_time() == f) d->skip_tick();
    }
  } else {
    // Tick every local edge at or before `f` in time order (serial naive
    // stepping ticked these same dead edges before the run ended).
    while (true) {
      TimePs earliest = kTimeNever;
      for (const ClockDomain* d : domains_) {
        const TimePs t = d->next_time();
        if (t < earliest) earliest = t;
      }
      if (earliest > f) break;
      now_ = earliest;
      for (ClockDomain* d : domains_) {
        if (d->next_time() == earliest) d->run_tick();
      }
    }
  }
  if (f > now_) now_ = f;
}

TimePs Scheduler::advance_to_limit() {
  if (domains_.empty()) throw std::logic_error("Scheduler: no clock domains");
  if (!fast_forward_) {
    while (now_ < limit_ps_) naive_step();
    return now_;
  }
  TimePs valve_edge = kTimeNever;
  for (const ClockDomain* d : domains_) {
    const TimePs t =
        tick_time_ps(d->first_cycle_at_or_after(limit_ps_), d->freq_khz());
    if (t < valve_edge) valve_edge = t;
  }
  for (ClockDomain* d : domains_) {
    d->skip_until(valve_edge);
    if (d->next_time() == valve_edge) d->skip_tick();
  }
  now_ = valve_edge;
  return now_;
}

}  // namespace sndp
