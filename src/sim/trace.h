// Chrome-trace (about://tracing, Perfetto) event writer.
//
// When `SystemConfig::trace_path` is set, the simulator records packet
// flights and offload-block lifecycles and writes a JSON trace at the end
// of the run.  Rows (tids) group events by component: one row per HMC link
// direction, one per NSU, one for the GPU.  Load a trace with
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sndp {

class TraceWriter {
 public:
  // Complete ("X") event: [start_ps, start_ps + dur_ps) on row `tid`.
  void complete(const std::string& name, const std::string& category, int tid,
                TimePs start_ps, TimePs dur_ps);
  // Instant ("i") event.
  void instant(const std::string& name, const std::string& category, int tid, TimePs at_ps);
  // Counter ("C") event: a named series sampled at `at_ps`.  Perfetto draws
  // one stacked chart per (name, tid) pair.
  void counter(const std::string& name, int tid, TimePs at_ps, double value);
  // Flow event: phase must be 's' (start), 't' (step) or 'f' (finish).
  // Events with the same `id` are drawn as one arrow chain between the
  // slices enclosing them; 'f' is emitted with "bp":"e" so it binds to the
  // enclosing slice's end.
  void flow(char phase, const std::string& name, const std::string& category, int tid,
            TimePs at_ps, std::uint64_t id);
  // Names a row in the viewer.
  void name_row(int tid, const std::string& name);

  std::size_t size() const { return events_.size(); }

  // Serializes to Chrome-trace JSON (timestamps in microseconds).
  std::string to_json() const;
  // Writes to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

  // Bound the trace to keep giant runs tractable; events past the cap are
  // dropped (counted in dropped()).
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  struct Event {
    char phase;  // 'X', 'i', 'C', or flow 's'/'t'/'f'
    std::string name;
    std::string category;
    int tid;
    TimePs start_ps;
    TimePs dur_ps;
    double value = 0.0;       // counter ('C') events only
    std::uint64_t flow_id = 0;  // flow ('s'/'t'/'f') events only
  };
  std::vector<Event> events_;
  std::vector<std::pair<int, std::string>> row_names_;
  std::size_t capacity_ = 2'000'000;
  std::uint64_t dropped_ = 0;
};

}  // namespace sndp
