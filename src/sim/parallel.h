// Conservative parallel-in-time execution of one simulation run
// (DESIGN.md "Parallel-in-time simulation").
//
// One run is partitioned by HMC stack: partition 0 (the hub) owns the
// GPU/SM/L2 clock domains, every other partition owns the DRAM + NSU
// domains of a contiguous group of stacks.  Each partition advances on its
// own thread through horizon windows [W, E) with E = W + L, where the
// lookahead L is derived from the minimum cross-partition network latency:
// every cross-partition effect funnels through Network::send, whose
// earliest possible arrival is `now + header-serialization + propagation`,
// and the sender's `now` lags its tick instant by less than one clock
// period (an Hmc forwards vault completions with their ready time), so
//
//   L = propagation_ps + serialize_ps(header_bytes) - max clock period
//
// guarantees every packet sent inside a window arrives at or after the
// window's end.  Inside a window each partition applies the serial
// scheduler's exact step semantics to its own domains
// (Scheduler::run_window); sends are deferred into per-partition logs
// (NetworkPort) and replayed through the untouched single-threaded Network
// at the barrier, sorted into serial tick order — which makes link
// reservations, timeline polls, and every counter bit-identical to a
// serial run.  The coordinator (which doubles as the hub's thread) owns
// all global decisions: window bounds, quiescence/idle detection, the
// safety-valve step, and the final fix-up that brings lagging partitions'
// tick indices to the run's final instant.
#pragma once

#include <functional>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace sndp {

class Network;
class NetworkPort;
class Scheduler;

// The window lookahead for `cfg`, in ps.  Zero (or negative, clamped to
// zero) means the topology's link latency cannot cover one clock period and
// parallel execution must fall back to serial.
TimePs parallel_lookahead_ps(const SystemConfig& cfg);

struct ParallelOutcome {
  bool completed = false;
  bool aborted = false;
  TimePs final_ps = 0;   // the serial scheduler's final now()
  std::uint64_t windows = 0;  // horizon barriers executed (diagnostics only)
};

struct ParallelHooks {
  // All hooks run on the coordinator thread, strictly between windows.
  std::function<bool()> system_idle;          // required
  std::function<bool()> abort_poll;           // optional
  std::function<void()> on_barrier;           // optional: deferred epoch audits
};

// Runs the partitioned main loop.  `parts[0]` is the hub partition, run on
// the calling thread; each other partition gets a worker thread.  `ports`
// are the per-partition NetworkPorts (already switched to deferred mode)
// whose logs the coordinator replays through `net` at each barrier.
// Mirrors the serial Simulator main loop's completed/valve/deadlock/abort
// semantics; after it returns, every partition's domains sit at the exact
// tick indices the serial scheduler would have left them at.
ParallelOutcome run_parallel(const std::vector<Scheduler*>& parts,
                             const std::vector<NetworkPort*>& ports, Network& net,
                             TimePs lookahead_ps, TimePs limit_ps,
                             const ParallelHooks& hooks);

}  // namespace sndp
