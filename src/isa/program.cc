#include "isa/program.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace sndp {

void Program::validate() const {
  int ofld_depth = 0;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    if (in.op == Opcode::kBra) {
      if (in.target < 0 || static_cast<std::size_t>(in.target) >= code_.size()) {
        throw std::invalid_argument("Program: branch target out of range at " + std::to_string(i));
      }
    }
    if (in.writes_reg() && in.dst >= kNumRegs) {
      throw std::invalid_argument("Program: dst register out of range at " + std::to_string(i));
    }
    for_each_src_reg(in, [&](std::uint8_t r) {
      if (r >= kNumRegs) {
        throw std::invalid_argument("Program: src register out of range at " + std::to_string(i));
      }
    });
    if (in.guard_pred != kNoPred && static_cast<unsigned>(in.guard_pred) >= kNumPreds) {
      throw std::invalid_argument("Program: guard predicate out of range at " + std::to_string(i));
    }
    if (in.writes_pred() && in.pred_dst >= kNumPreds) {
      throw std::invalid_argument("Program: pred dst out of range at " + std::to_string(i));
    }
    if (in.is_mem() && in.mem_width != 4 && in.mem_width != 8) {
      throw std::invalid_argument("Program: memory width must be 4 or 8 at " + std::to_string(i));
    }
    if (in.op == Opcode::kOfldBeg) ++ofld_depth;
    if (in.op == Opcode::kOfldEnd) {
      if (--ofld_depth < 0) {
        throw std::invalid_argument("Program: OFLD.END without OFLD.BEG at " + std::to_string(i));
      }
    }
  }
  if (ofld_depth != 0) throw std::invalid_argument("Program: unbalanced OFLD markers");
}

std::vector<unsigned> Program::basic_block_starts() const {
  std::set<unsigned> starts;
  if (code_.empty()) return {};
  starts.insert(0);
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    if (in.op == Opcode::kBra) {
      starts.insert(static_cast<unsigned>(in.target));
      if (i + 1 < code_.size()) starts.insert(static_cast<unsigned>(i + 1));
    } else if (in.op == Opcode::kBar || in.op == Opcode::kExit) {
      // Barriers end a block too: offload blocks must not span them.
      if (i + 1 < code_.size()) starts.insert(static_cast<unsigned>(i + 1));
    }
  }
  return {starts.begin(), starts.end()};
}

std::string Program::disassemble() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    os << i << ":\t" << to_string(code_[i]) << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------------

Instr& ProgramBuilder::push(Instr instr) {
  instr.guard_pred = pending_pred_;
  instr.guard_sense = pending_sense_;
  pending_pred_ = kNoPred;
  pending_sense_ = true;
  code_.push_back(instr);
  return code_.back();
}

ProgramBuilder& ProgramBuilder::movi(unsigned rd, std::int64_t imm) {
  Instr in;
  in.op = Opcode::kMovI;
  in.dst = static_cast<std::uint8_t>(rd);
  in.imm = imm;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::mov(unsigned rd, unsigned rs) {
  Instr in;
  in.op = Opcode::kMov;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs);
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::alu(Opcode op, unsigned rd, unsigned rs0, unsigned rs1) {
  Instr in;
  in.op = op;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.src[1] = static_cast<std::uint8_t>(rs1);
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::alui(Opcode op, unsigned rd, unsigned rs0, std::int64_t imm) {
  Instr in;
  in.op = op;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.imm = imm;
  in.use_imm = true;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::mad(unsigned rd, unsigned rs0, unsigned rs1, unsigned rs2) {
  Instr in;
  in.op = Opcode::kIMad;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src = {static_cast<std::uint8_t>(rs0), static_cast<std::uint8_t>(rs1),
            static_cast<std::uint8_t>(rs2)};
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::madi(unsigned rd, unsigned rs0, std::int64_t imm, unsigned rs2) {
  Instr in;
  in.op = Opcode::kIMad;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src = {static_cast<std::uint8_t>(rs0), kNoReg, static_cast<std::uint8_t>(rs2)};
  in.imm = imm;
  in.use_imm = true;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::fma(unsigned rd, unsigned rs0, unsigned rs1, unsigned rs2) {
  Instr in;
  in.op = Opcode::kFFma;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src = {static_cast<std::uint8_t>(rs0), static_cast<std::uint8_t>(rs1),
            static_cast<std::uint8_t>(rs2)};
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::unary(Opcode op, unsigned rd, unsigned rs0) {
  Instr in;
  in.op = op;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(rs0);
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::ld(unsigned rd, unsigned addr_reg, std::int64_t offset,
                                   unsigned width, bool f32) {
  Instr in;
  in.op = Opcode::kLd;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(addr_reg);
  in.imm = offset;
  in.mem_width = static_cast<std::uint8_t>(width);
  in.mem_f32 = f32;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::st(unsigned addr_reg, unsigned data_reg, std::int64_t offset,
                                   unsigned width, bool f32) {
  Instr in;
  in.op = Opcode::kSt;
  in.src[0] = static_cast<std::uint8_t>(addr_reg);
  in.src[1] = static_cast<std::uint8_t>(data_reg);
  in.imm = offset;
  in.mem_width = static_cast<std::uint8_t>(width);
  in.mem_f32 = f32;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::shm_ld(unsigned rd, unsigned addr_reg, std::int64_t offset) {
  Instr in;
  in.op = Opcode::kShmLd;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(addr_reg);
  in.imm = offset;
  in.mem_width = 8;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::shm_st(unsigned addr_reg, unsigned data_reg, std::int64_t offset) {
  Instr in;
  in.op = Opcode::kShmSt;
  in.src[0] = static_cast<std::uint8_t>(addr_reg);
  in.src[1] = static_cast<std::uint8_t>(data_reg);
  in.imm = offset;
  in.mem_width = 8;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::ldc(unsigned rd, unsigned addr_reg, std::int64_t offset,
                                    unsigned width, bool f32) {
  Instr in;
  in.op = Opcode::kLdc;
  in.dst = static_cast<std::uint8_t>(rd);
  in.src[0] = static_cast<std::uint8_t>(addr_reg);
  in.imm = offset;
  in.mem_width = static_cast<std::uint8_t>(width);
  in.mem_f32 = f32;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::isetp(unsigned pd, CmpOp cmp, unsigned rs0, unsigned rs1) {
  Instr in;
  in.op = Opcode::kISetp;
  in.pred_dst = static_cast<std::uint8_t>(pd);
  in.cmp = cmp;
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.src[1] = static_cast<std::uint8_t>(rs1);
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::isetpi(unsigned pd, CmpOp cmp, unsigned rs0, std::int64_t imm) {
  Instr in;
  in.op = Opcode::kISetp;
  in.pred_dst = static_cast<std::uint8_t>(pd);
  in.cmp = cmp;
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.imm = imm;
  in.use_imm = true;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::fsetp(unsigned pd, CmpOp cmp, unsigned rs0, unsigned rs1) {
  Instr in;
  in.op = Opcode::kFSetp;
  in.pred_dst = static_cast<std::uint8_t>(pd);
  in.cmp = cmp;
  in.src[0] = static_cast<std::uint8_t>(rs0);
  in.src[1] = static_cast<std::uint8_t>(rs1);
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::pred(unsigned pd, bool sense) {
  pending_pred_ = static_cast<std::int8_t>(pd);
  pending_sense_ = sense;
  return *this;
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  labels_.emplace_back(name, static_cast<unsigned>(code_.size()));
  return *this;
}

ProgramBuilder& ProgramBuilder::bra(const std::string& label) {
  Instr in;
  in.op = Opcode::kBra;
  fixups_.emplace_back(static_cast<unsigned>(code_.size()), label);
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::bar() {
  Instr in;
  in.op = Opcode::kBar;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::exit() {
  Instr in;
  in.op = Opcode::kExit;
  push(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() {
  Instr in;
  push(in);
  return *this;
}

Program ProgramBuilder::build() {
  for (const auto& [idx, name] : fixups_) {
    auto it = std::find_if(labels_.begin(), labels_.end(),
                           [&](const auto& l) { return l.first == name; });
    if (it == labels_.end()) {
      throw std::invalid_argument("ProgramBuilder: undefined label '" + name + "'");
    }
    code_[idx].target = static_cast<std::int32_t>(it->second);
  }
  Program prog(std::move(code_));
  prog.validate();
  code_.clear();
  labels_.clear();
  fixups_.clear();
  return prog;
}

}  // namespace sndp
