// A small SIMT instruction set, playing the role PTX/SASS plays for the
// paper's static analyzer and partitioned-execution runtime.
//
// Design points:
//  * Unified 64-bit register file R0..R31 per thread; registers are raw
//    bits, interpreted per opcode (signed int, unsigned int, or double).
//  * Separate 1-bit predicate file P0..P7; any instruction may carry a
//    guard predicate (@P / @!P) for per-lane divergence without branches.
//  * Branches (BRA) must be warp-uniform across active lanes — intra-warp
//    divergence is expressed with predication, which is how the evaluated
//    kernels behave after reconvergence anyway.
//  * Memory ops address a flat physical space: addr = R[src0] + imm.
//    Width 4 or 8 bytes; `f32` memory ops convert float <-> double between
//    memory and register so register-level float math is always double.
//  * OFLD_BEG / OFLD_END bracket offload blocks (paper Fig. 3).  They are
//    emitted by the offload code generator, not written by hand.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sndp {

inline constexpr unsigned kNumRegs = 32;
inline constexpr unsigned kNumPreds = 8;
inline constexpr std::uint8_t kNoReg = 0xFF;
inline constexpr std::int8_t kNoPred = -1;

enum class Opcode : std::uint8_t {
  kNop,
  // Moves.
  kMov,   // Rd = Rs0
  kMovI,  // Rd = imm (full 64-bit immediate)
  // Integer ALU (signed semantics where it matters).
  kIAdd,  // Rd = Rs0 + Rs1/imm
  kISub,
  kIMul,
  kIMad,  // Rd = Rs0 * Rs1 + Rs2   (uses three sources)
  kIDiv,
  kIRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kIMin,
  kIMax,
  // Float ALU (double precision in registers).
  kFAdd,
  kFSub,
  kFMul,
  kFFma,  // Rd = Rs0 * Rs1 + Rs2
  kFDiv,
  kFMin,
  kFMax,
  kFSqrt,
  kFAbs,
  kFNeg,
  // Conversions.
  kI2F,
  kF2I,
  // Predicate-setting compare: Pd = cmp(Rs0, Rs1/imm).
  kISetp,
  kFSetp,
  // Memory.  Address = R[src0] + imm.
  kLd,     // global load into Rd
  kSt,     // global store of Rs1
  kShmLd,  // scratchpad ("shared memory") load — never offloaded
  kShmSt,  // scratchpad store — never offloaded
  kLdc,    // constant-space load (small read-only tables)
  // Control.
  kBra,  // warp-uniform branch to `target`, optionally guarded
  kBar,  // CTA-wide barrier — never inside an offload block
  kExit,
  // NDP markers (emitted by offload codegen).
  kOfldBeg,  // imm = offload block id
  kOfldEnd,  // imm = offload block id
};

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

// Execution-resource class an opcode occupies on the SM / NSU.
enum class ExecClass : std::uint8_t { kAlu, kSfu, kMem, kCtrl };

struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t dst = kNoReg;
  std::array<std::uint8_t, 3> src{kNoReg, kNoReg, kNoReg};
  std::int64_t imm = 0;
  bool use_imm = false;  // second ALU operand is `imm` instead of src[1]

  // Memory attributes.
  std::uint8_t mem_width = 0;  // 4 or 8 bytes; 0 for non-memory ops
  bool mem_f32 = false;        // float<->double conversion at the mem boundary

  // Predication.
  std::int8_t guard_pred = kNoPred;  // -1: unguarded
  bool guard_sense = true;           // true: @P, false: @!P
  std::uint8_t pred_dst = 0;         // for *Setp
  CmpOp cmp = CmpOp::kEq;

  // Control.
  std::int32_t target = -1;  // resolved instruction index for kBra

  // NDP annotations (filled in by the offload analyzer / codegen).
  bool on_nsu = false;      // "@NSU": skipped on GPU when the block offloads
  bool addr_calc = false;   // feeds a memory address: always runs on the GPU

  bool is_mem() const {
    return op == Opcode::kLd || op == Opcode::kSt || op == Opcode::kShmLd ||
           op == Opcode::kShmSt || op == Opcode::kLdc;
  }
  bool is_global_mem() const { return op == Opcode::kLd || op == Opcode::kSt; }
  bool is_alu() const;
  bool writes_reg() const { return dst != kNoReg; }
  bool writes_pred() const { return op == Opcode::kISetp || op == Opcode::kFSetp; }
  unsigned num_srcs() const;
  ExecClass exec_class() const;
};

// Per-thread architectural state.
struct ThreadCtx {
  std::array<RegValue, kNumRegs> regs{};
  std::array<bool, kNumPreds> preds{};
};

// Evaluates whether `instr`'s guard passes for this thread.
bool guard_passes(const Instr& instr, const ThreadCtx& ctx);

// Executes a non-memory, non-control instruction on one thread's registers.
// Memory and control ops are handled by the cores (they need the machine).
void execute_alu(const Instr& instr, ThreadCtx& ctx);

// Computes the effective address of a memory instruction for one thread.
Addr effective_address(const Instr& instr, const ThreadCtx& ctx);

// Bit-level float helpers shared with the functional memory.
double bits_to_f64(RegValue bits);
RegValue f64_to_bits(double value);

// Invokes `fn(reg_id)` for every register this instruction actually reads
// (skipping the slot an immediate occupies and unused slots).
template <typename Fn>
void for_each_src_reg(const Instr& instr, Fn&& fn) {
  const bool three_src = instr.op == Opcode::kIMad || instr.op == Opcode::kFFma;
  const unsigned total = three_src ? 3 : instr.num_srcs();
  for (unsigned i = 0; i < total; ++i) {
    if (i == 1 && instr.use_imm) continue;
    if (instr.src[i] != kNoReg) fn(instr.src[i]);
  }
}

const char* opcode_name(Opcode op);
const char* cmp_name(CmpOp op);
std::string to_string(const Instr& instr);

}  // namespace sndp
