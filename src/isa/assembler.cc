#include "isa/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace sndp {
namespace {

struct Token {
  std::string text;
};

// Splits a line into tokens; separators are whitespace and commas; bracket
// expressions like [R5+8] come out as a single token.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_bracket = false;
  for (char c : line) {
    if (c == ';' || c == '#') break;
    if (c == '[') in_bracket = true;
    if (c == ']') in_bracket = false;
    if (!in_bracket && (std::isspace(static_cast<unsigned char>(c)) || c == ',')) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

struct Parser {
  unsigned line_no = 0;

  [[noreturn]] void fail(const std::string& msg) const { throw AsmError(line_no, msg); }

  unsigned parse_reg(const std::string& tok) const {
    const std::string t = upper(tok);
    if (t.size() < 2 || t[0] != 'R') fail("expected register, got '" + tok + "'");
    const unsigned n = parse_uint(t.substr(1));
    if (n >= kNumRegs) fail("register out of range: " + tok);
    return n;
  }

  unsigned parse_pred(const std::string& tok) const {
    const std::string t = upper(tok);
    if (t.size() < 2 || t[0] != 'P') fail("expected predicate, got '" + tok + "'");
    const unsigned n = parse_uint(t.substr(1));
    if (n >= kNumPreds) fail("predicate out of range: " + tok);
    return n;
  }

  unsigned parse_uint(const std::string& s) const {
    try {
      std::size_t pos = 0;
      const unsigned long v = std::stoul(s, &pos, 0);
      if (pos != s.size()) fail("bad number: " + s);
      return static_cast<unsigned>(v);
    } catch (const AsmError&) {
      throw;
    } catch (...) {
      fail("bad number: " + s);
    }
  }

  std::int64_t parse_imm(const std::string& s) const {
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(s, &pos, 0);
      if (pos != s.size()) fail("bad immediate: " + s);
      return v;
    } catch (const AsmError&) {
      throw;
    } catch (...) {
      fail("bad immediate: " + s);
    }
  }

  bool is_reg(const std::string& tok) const {
    const std::string t = upper(tok);
    return t.size() >= 2 && t[0] == 'R' &&
           std::isdigit(static_cast<unsigned char>(t[1]));
  }

  // "[R5+8]" or "[R5]" or "[R5-16]" -> (reg, offset)
  std::pair<unsigned, std::int64_t> parse_mem(const std::string& tok) const {
    if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']') {
      fail("expected [Rn+off], got '" + tok + "'");
    }
    const std::string body = tok.substr(1, tok.size() - 2);
    std::size_t split = body.find_first_of("+-", 1);
    const std::string reg = body.substr(0, split);
    std::int64_t off = 0;
    if (split != std::string::npos) off = parse_imm(body.substr(split));
    return {parse_reg(reg), off};
  }

  std::optional<CmpOp> parse_cmp(const std::string& tok) const {
    static const std::map<std::string, CmpOp> kMap = {
        {"EQ", CmpOp::kEq}, {"NE", CmpOp::kNe}, {"LT", CmpOp::kLt},
        {"LE", CmpOp::kLe}, {"GT", CmpOp::kGt}, {"GE", CmpOp::kGe}};
    auto it = kMap.find(upper(tok));
    if (it == kMap.end()) return std::nullopt;
    return it->second;
  }
};

const std::map<std::string, Opcode>& mnemonic_map() {
  static const std::map<std::string, Opcode> kMap = {
      {"NOP", Opcode::kNop},     {"MOV", Opcode::kMov},     {"MOVI", Opcode::kMovI},
      {"IADD", Opcode::kIAdd},   {"ISUB", Opcode::kISub},   {"IMUL", Opcode::kIMul},
      {"IMAD", Opcode::kIMad},   {"IDIV", Opcode::kIDiv},   {"IREM", Opcode::kIRem},
      {"AND", Opcode::kAnd},     {"OR", Opcode::kOr},       {"XOR", Opcode::kXor},
      {"SHL", Opcode::kShl},     {"SHR", Opcode::kShr},     {"IMIN", Opcode::kIMin},
      {"IMAX", Opcode::kIMax},   {"FADD", Opcode::kFAdd},   {"FSUB", Opcode::kFSub},
      {"FMUL", Opcode::kFMul},   {"FFMA", Opcode::kFFma},   {"FDIV", Opcode::kFDiv},
      {"FMIN", Opcode::kFMin},   {"FMAX", Opcode::kFMax},   {"FSQRT", Opcode::kFSqrt},
      {"FABS", Opcode::kFAbs},   {"FNEG", Opcode::kFNeg},   {"I2F", Opcode::kI2F},
      {"F2I", Opcode::kF2I},     {"ISETP", Opcode::kISetp}, {"FSETP", Opcode::kFSetp},
      {"LD", Opcode::kLd},       {"ST", Opcode::kSt},       {"SHM.LD", Opcode::kShmLd},
      {"SHM.ST", Opcode::kShmSt},{"LDC", Opcode::kLdc},     {"BRA", Opcode::kBra},
      {"BAR", Opcode::kBar},     {"EXIT", Opcode::kExit}};
  return kMap;
}

}  // namespace

Program assemble(const std::string& source) {
  ProgramBuilder b;
  Parser p;
  std::istringstream stream(source);
  std::string line;
  while (std::getline(stream, line)) {
    ++p.line_no;
    auto toks = tokenize(line);
    if (toks.empty()) continue;

    // Label?
    if (toks[0].back() == ':') {
      b.label(toks[0].substr(0, toks[0].size() - 1));
      toks.erase(toks.begin());
      if (toks.empty()) continue;
    }

    // Guard predicate prefix: @P0 or @!P1.
    if (toks[0][0] == '@') {
      std::string g = toks[0].substr(1);
      bool sense = true;
      if (!g.empty() && g[0] == '!') {
        sense = false;
        g = g.substr(1);
      }
      b.pred(p.parse_pred(g), sense);
      toks.erase(toks.begin());
      if (toks.empty()) p.fail("guard with no instruction");
    }

    // Mnemonic with optional width suffix.
    std::string mnem = upper(toks[0]);
    unsigned width = 8;
    bool f32 = false;
    if (auto dot = mnem.rfind('.'); dot != std::string::npos) {
      const std::string suffix = mnem.substr(dot + 1);
      if (suffix == "32") { width = 4; mnem = mnem.substr(0, dot); }
      else if (suffix == "64") { width = 8; mnem = mnem.substr(0, dot); }
      else if (suffix == "F32") { width = 4; f32 = true; mnem = mnem.substr(0, dot); }
      // "SHM.LD"/"SHM.ST" keep their dot — handled by full-name lookup below.
    }
    auto it = mnemonic_map().find(mnem);
    if (it == mnemonic_map().end()) {
      it = mnemonic_map().find(upper(toks[0]));  // e.g. SHM.LD
      if (it == mnemonic_map().end()) p.fail("unknown mnemonic '" + toks[0] + "'");
      mnem = upper(toks[0]);
      width = 8;
      f32 = false;
    }
    const Opcode op = it->second;
    const auto args = std::vector<std::string>(toks.begin() + 1, toks.end());
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        p.fail(mnem + ": expected " + std::to_string(n) + " operands, got " +
               std::to_string(args.size()));
      }
    };

    switch (op) {
      case Opcode::kNop: need(0); b.nop(); break;
      case Opcode::kBar: need(0); b.bar(); break;
      case Opcode::kExit: need(0); b.exit(); break;
      case Opcode::kMovI: need(2); b.movi(p.parse_reg(args[0]), p.parse_imm(args[1])); break;
      case Opcode::kMov: need(2); b.mov(p.parse_reg(args[0]), p.parse_reg(args[1])); break;
      case Opcode::kBra: need(1); b.bra(args[0]); break;
      case Opcode::kLd:
      case Opcode::kLdc: {
        need(2);
        auto [reg, off] = p.parse_mem(args[1]);
        if (op == Opcode::kLd) b.ld(p.parse_reg(args[0]), reg, off, width, f32);
        else b.ldc(p.parse_reg(args[0]), reg, off, width, f32);
        break;
      }
      case Opcode::kSt: {
        need(2);
        auto [reg, off] = p.parse_mem(args[0]);
        b.st(reg, p.parse_reg(args[1]), off, width, f32);
        break;
      }
      case Opcode::kShmLd: {
        need(2);
        auto [reg, off] = p.parse_mem(args[1]);
        b.shm_ld(p.parse_reg(args[0]), reg, off);
        break;
      }
      case Opcode::kShmSt: {
        need(2);
        auto [reg, off] = p.parse_mem(args[0]);
        b.shm_st(reg, p.parse_reg(args[1]), off);
        break;
      }
      case Opcode::kISetp:
      case Opcode::kFSetp: {
        need(4);
        auto cmp = p.parse_cmp(args[1]);
        if (!cmp) p.fail("bad compare op '" + args[1] + "'");
        const unsigned pd = p.parse_pred(args[0]);
        const unsigned rs0 = p.parse_reg(args[2]);
        if (op == Opcode::kISetp) {
          if (p.is_reg(args[3])) b.isetp(pd, *cmp, rs0, p.parse_reg(args[3]));
          else b.isetpi(pd, *cmp, rs0, p.parse_imm(args[3]));
        } else {
          b.fsetp(pd, *cmp, rs0, p.parse_reg(args[3]));
        }
        break;
      }
      case Opcode::kIMad:
      case Opcode::kFFma: {
        need(4);
        const unsigned rd = p.parse_reg(args[0]);
        const unsigned rs0 = p.parse_reg(args[1]);
        const unsigned rs2 = p.parse_reg(args[3]);
        if (p.is_reg(args[2])) {
          if (op == Opcode::kIMad) b.mad(rd, rs0, p.parse_reg(args[2]), rs2);
          else b.fma(rd, rs0, p.parse_reg(args[2]), rs2);
        } else {
          if (op == Opcode::kFFma) p.fail("FFMA immediate operand not supported");
          b.madi(rd, rs0, p.parse_imm(args[2]), rs2);
        }
        break;
      }
      case Opcode::kFSqrt:
      case Opcode::kFAbs:
      case Opcode::kFNeg:
      case Opcode::kI2F:
      case Opcode::kF2I:
        need(2);
        b.unary(op, p.parse_reg(args[0]), p.parse_reg(args[1]));
        break;
      default: {
        // Binary ALU: Rd, Rs0, (Rs1 | imm).
        need(3);
        const unsigned rd = p.parse_reg(args[0]);
        const unsigned rs0 = p.parse_reg(args[1]);
        if (p.is_reg(args[2])) b.alu(op, rd, rs0, p.parse_reg(args[2]));
        else b.alui(op, rd, rs0, p.parse_imm(args[2]));
        break;
      }
    }
  }
  try {
    return b.build();
  } catch (const std::invalid_argument& e) {
    throw AsmError(p.line_no, e.what());
  }
}

}  // namespace sndp
